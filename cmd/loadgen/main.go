// Command loadgen is a closed-loop load driver for malschedd: a fixed
// number of workers each keep exactly one POST /v1/solve in flight,
// replaying instances from testdata/ (plus optionally larger generated
// ones) and reporting throughput, latency percentiles and the server's
// cache behaviour. With -c 500 it holds 500 concurrent in-flight solves —
// the serving scale target of EXPERIMENTS.md E12.
//
//	loadgen -addr http://127.0.0.1:8080 -c 500 -d 20s [-testdata testdata]
//	        [-gen 4] [-algo auto] [-no-cache] [-deadline-ms 0] [-edits 0]
//
// With -edits N > 0 the driver exercises the v2 delta path instead: each
// base instance is solved once through POST /v2/solve (priming the
// server's captured LP state), then every request edits N random tasks of
// a random base and posts base-fingerprint + edits to /v2/solve. The
// report adds the server's delta outcomes (warm = basis transplant, cold
// = full re-solve); N <= 8 with -algo paper should be nearly all warm.
//
// Overload responses (429/503, the server's admission and deadline
// shedding) are counted separately from hard failures and retried with
// jittered exponential backoff when -retries > 0; a shed request that
// stays shed after its retries is reported but does not trip the non-zero
// exit — being asked to back off is the protocol working, not an error.
//
// The exit status is non-zero if any request failed hard (transport error,
// 4xx/5xx outside the shed statuses), so the E12 "zero errors under load"
// criterion is scriptable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"malsched"
	"malsched/internal/gen"
)

// request mirrors internal/server.SolveRequest / SolveRequestV2 (the cmd
// keeps no import on the server internals; the wire format is the
// contract). Base and Edits are v2-only and stay empty on /v1 requests.
type request struct {
	Instance    *malsched.Instance `json:"instance,omitempty"`
	Base        string             `json:"base,omitempty"`
	Edits       []taskEdit         `json:"edits,omitempty"`
	Algo        string             `json:"algo,omitempty"`
	DeadlineMS  float64            `json:"deadline_ms,omitempty"`
	NoCache     bool               `json:"no_cache,omitempty"`
	Formulation string             `json:"formulation,omitempty"`
}

// taskEdit mirrors internal/server.TaskEdit.
type taskEdit struct {
	Task  int       `json:"task"`
	Times []float64 `json:"times"`
}

// namedInstance is one instance of the replay mix.
type namedInstance struct {
	name string
	in   *malsched.Instance
	fp   string // base fingerprint, filled by prime() in -edits mode
}

type workerStats struct {
	latencies []time.Duration
	outcomes  map[string]int
	deltas    map[string]int
	sheds     int // 429/503 after retries: backpressure, not failure
	degraded  int // answers labeled degraded:true by the fallback ladder
	errs      int
	errSample string
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "malschedd base URL")
	c := flag.Int("c", 16, "concurrent in-flight requests (closed loop)")
	d := flag.Duration("d", 10*time.Second, "run duration")
	testdataDir := flag.String("testdata", "testdata", "directory of instance JSON files")
	genExtra := flag.Int("gen", 0, "additional generated layered n=96 m=16 instances in the mix")
	algo := flag.String("algo", "", "algo field for every request (empty = auto routing)")
	formulation := flag.String("formulation", "", "formulation field for every request: lazy, segment, mincut or dense (empty = auto; v2 only, forces /v2/solve)")
	deadlineMS := flag.Float64("deadline-ms", 0, "deadline_ms field for every request")
	noCache := flag.Bool("no-cache", false, "bypass the server's result cache (cold path)")
	edits := flag.Int("edits", 0, "v2 delta workload: edit this many random tasks of a solved base per request (0 = plain /v1 replay)")
	retries := flag.Int("retries", 0, "retries per request on shed responses (429/503), with jittered exponential backoff")
	seed := flag.Int64("seed", 411, "seed for generated instances and edits")
	flag.Parse()

	mix, err := loadMix(*testdataDir, *genExtra, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	var names []string
	for _, ni := range mix {
		names = append(names, ni.name)
	}
	mode := "/v1/solve replay"
	if *edits > 0 {
		mode = fmt.Sprintf("/v2/solve delta (%d edits/request)", *edits)
	}
	fmt.Printf("loadgen: %d workers for %v against %s, %s (%d instances: %v)\n",
		*c, *d, *addr, mode, len(mix), names)

	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *c,
			MaxIdleConnsPerHost: *c,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	var bodies [][]byte
	url := *addr + "/v1/solve"
	if *edits > 0 || *formulation != "" {
		// Formulation pins are a v2-only request field (v1 ignores
		// unknown fields by contract, which would silently drop the pin).
		url = *addr + "/v2/solve"
	}
	if *edits > 0 {
		if err := prime(client, url, mix, *algo); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: priming bases: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, ni := range mix {
			raw, err := json.Marshal(request{Instance: ni.in, Algo: *algo, DeadlineMS: *deadlineMS, NoCache: *noCache, Formulation: *formulation})
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(2)
			}
			bodies = append(bodies, raw)
		}
	}

	var next atomic.Int64 // round-robin instance cursor across workers
	stats := make([]workerStats, *c)
	deadline := time.Now().Add(*d)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int, st *workerStats) {
			defer wg.Done()
			st.outcomes = make(map[string]int)
			st.deltas = make(map[string]int)
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(deadline) {
				i := int(next.Add(1))
				var body []byte
				if *edits > 0 {
					base := mix[i%len(mix)]
					raw, err := json.Marshal(request{
						Base:  base.fp,
						Edits: randomEdits(base.in, *edits, rng),
						Algo:  *algo, DeadlineMS: *deadlineMS, NoCache: *noCache,
						Formulation: *formulation,
					})
					if err != nil {
						st.errs++
						continue
					}
					body = raw
				} else {
					body = bodies[i%len(bodies)]
				}
				t0 := time.Now()
				res, err := solveOnce(client, url, body, *retries, rng)
				lat := time.Since(t0)
				if err != nil {
					st.errs++
					if st.errSample == "" {
						st.errSample = err.Error()
					}
					continue
				}
				if res.shed {
					st.sheds++
					continue
				}
				st.latencies = append(st.latencies, lat)
				st.outcomes[res.cache]++
				if res.delta != "" {
					st.deltas[res.delta]++
				}
				if res.degraded {
					st.degraded++
				}
			}
		}(w, &stats[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	outcomes := map[string]int{}
	deltas := map[string]int{}
	sheds, degraded, errs, errSample := 0, 0, 0, ""
	for i := range stats {
		all = append(all, stats[i].latencies...)
		for k, v := range stats[i].outcomes {
			outcomes[k] += v
		}
		for k, v := range stats[i].deltas {
			deltas[k] += v
		}
		sheds += stats[i].sheds
		degraded += stats[i].degraded
		errs += stats[i].errs
		if errSample == "" {
			errSample = stats[i].errSample
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Printf("requests: %d ok, %d shed (429/503), %d hard failures in %.1fs — %.1f req/s\n",
		len(all), sheds, errs, elapsed.Seconds(), float64(len(all))/elapsed.Seconds())
	fmt.Printf("cache: hit %d, shared %d, miss %d, bypass %d\n",
		outcomes["hit"], outcomes["shared"], outcomes["miss"], outcomes["bypass"])
	if degraded > 0 {
		fmt.Printf("degraded answers: %d (fallback ladder)\n", degraded)
	}
	if *edits > 0 {
		fmt.Printf("delta: warm %d, cold %d\n", deltas["warm"], deltas["cold"])
	}
	if len(all) > 0 {
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(all, 50), pct(all, 90), pct(all, 99), all[len(all)-1].Round(time.Microsecond))
	}
	reportFormulations(client, *addr)
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests failed (first: %s)\n", errs, errSample)
		os.Exit(1)
	}
	// Sheds deliberately do not trip the exit: a 429/503 with Retry-After
	// is the server protecting itself, which is exactly the behaviour
	// under test in overload runs.
}

// reportFormulations scrapes the server's versioned /metrics document
// (schema_version >= 2) and prints the per-formulation phase-1 section —
// how the server's formulation router actually spread this run's solves.
// Silent on older servers or scrape failures: the report is advisory.
func reportFormulations(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Formulations  map[string]struct {
			Solves   int64 `json:"solves"`
			Cuts     int64 `json:"cuts"`
			Rounds   int64 `json:"rounds"`
			WarmHits int64 `json:"warm_hits"`
			Degrades int64 `json:"degrades"`
		} `json:"formulations"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil || doc.SchemaVersion < 2 {
		return
	}
	names := make([]string, 0, len(doc.Formulations))
	for name := range doc.Formulations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := doc.Formulations[name]
		fmt.Printf("formulation %-8s solves %d, cuts %d, rounds %d, warm %d, degrades %d\n",
			name, f.Solves, f.Cuts, f.Rounds, f.WarmHits, f.Degrades)
	}
}

// loadMix reads every testdata instance and appends genExtra generated
// layered instances.
func loadMix(dir string, genExtra int, seed int64) ([]namedInstance, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var mix []namedInstance
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		in, err := malsched.ReadJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		mix = append(mix, namedInstance{name: filepath.Base(p), in: in})
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < genExtra; i++ {
		g := gen.Layered(12, 8, 2, rng) // n = 96
		in := &malsched.Instance{M: 16, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), 16, rng)}
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Succs(v) {
				in.Edges = append(in.Edges, [2]int{v, w})
			}
		}
		mix = append(mix, namedInstance{name: fmt.Sprintf("gen-layered-%d", i), in: in})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("no instances found under %s and -gen 0", dir)
	}
	return mix, nil
}

// prime solves each base once through /v2/solve, recording its fingerprint
// (and, server-side, the captured LP state the delta workload transplants).
func prime(client *http.Client, url string, mix []namedInstance, algo string) error {
	for i := range mix {
		raw, err := json.Marshal(request{Instance: mix[i].in, Algo: algo})
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", mix[i].name, resp.StatusCode, truncate(data, 200))
		}
		fp, err := extract(data, "fingerprint")
		if err != nil {
			return fmt.Errorf("%s: %w", mix[i].name, err)
		}
		mix[i].fp = fp
	}
	return nil
}

// randomEdits rescales `count` distinct random tasks of base by up to
// ±10%, preserving each time vector's shape so the edit stays within the
// delta path's structure contract.
func randomEdits(base *malsched.Instance, count int, rng *rand.Rand) []taskEdit {
	n := len(base.Tasks)
	if count > n {
		count = n
	}
	out := make([]taskEdit, count)
	seen := make(map[int]bool, count)
	for e := 0; e < count; e++ {
		task := rng.Intn(n)
		for seen[task] {
			task = rng.Intn(n)
		}
		seen[task] = true
		factor := 0.9 + 0.2*rng.Float64()
		src := base.Tasks[task].Times
		times := make([]float64, len(src))
		for i, v := range src {
			times[i] = v * factor
		}
		out[e] = taskEdit{Task: task, Times: times}
	}
	return out
}

// solveResult is one request's classified outcome: a 200 with its labels,
// or shed (429/503 still standing after the retry budget).
type solveResult struct {
	cache    string
	delta    string
	degraded bool
	shed     bool
}

// solveOnce posts one request and extracts the response's cache outcome
// (and delta/degraded labels, when present) without a full JSON decode
// (the driver shares a machine with the server in the E12 setup;
// client-side parsing must stay out of the way). Shed responses (429/503)
// are retried up to `retries` times with jittered exponential backoff —
// the jitter decorrelates retry storms across the driver's workers — and
// classified shed, never as errors, when they persist.
func solveOnce(client *http.Client, url string, body []byte, retries int, rng *rand.Rand) (solveResult, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return solveResult{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return solveResult{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if attempt < retries {
				base := 25 * time.Millisecond << uint(attempt)
				time.Sleep(base + time.Duration(rng.Int63n(int64(base))))
				continue
			}
			return solveResult{shed: true}, nil
		}
		if resp.StatusCode != http.StatusOK {
			return solveResult{}, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 200))
		}
		cache, err := extract(data, "cache")
		if err != nil {
			return solveResult{}, err
		}
		delta, _ := extract(data, "delta") // v1 responses have none
		return solveResult{
			cache:    cache,
			delta:    delta,
			degraded: bytes.Contains(data, []byte(`"degraded":true`)),
		}, nil
	}
}

// extract pulls the string value of a top-level field out of a response
// body by marker scan.
func extract(data []byte, field string) (string, error) {
	marker := `"` + field + `":"`
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		return "", fmt.Errorf("response without %s field: %s", field, truncate(data, 200))
	}
	rest := data[i+len(marker):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated %s field", field)
	}
	return string(rest[:j]), nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// pct returns the p-th percentile of sorted latencies (nearest rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx].Round(time.Microsecond)
}
