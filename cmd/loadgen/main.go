// Command loadgen is a closed-loop load driver for malschedd: a fixed
// number of workers each keep exactly one POST /v1/solve in flight,
// replaying instances from testdata/ (plus optionally larger generated
// ones) and reporting throughput, latency percentiles and the server's
// cache behaviour. With -c 500 it holds 500 concurrent in-flight solves —
// the serving scale target of EXPERIMENTS.md E12.
//
//	loadgen -addr http://127.0.0.1:8080 -c 500 -d 20s [-testdata testdata]
//	        [-gen 4] [-algo auto] [-no-cache] [-deadline-ms 0]
//
// The exit status is non-zero if any request failed, so the E12 "zero
// errors under load" criterion is scriptable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"malsched"
	"malsched/internal/gen"
)

// request mirrors internal/server.SolveRequest (the cmd keeps no import on
// the server internals; the wire format is the contract).
type request struct {
	Instance   *malsched.Instance `json:"instance"`
	Algo       string             `json:"algo,omitempty"`
	DeadlineMS float64            `json:"deadline_ms,omitempty"`
	NoCache    bool               `json:"no_cache,omitempty"`
}

type workerStats struct {
	latencies []time.Duration
	outcomes  map[string]int
	errs      int
	errSample string
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "malschedd base URL")
	c := flag.Int("c", 16, "concurrent in-flight requests (closed loop)")
	d := flag.Duration("d", 10*time.Second, "run duration")
	testdataDir := flag.String("testdata", "testdata", "directory of instance JSON files")
	genExtra := flag.Int("gen", 0, "additional generated layered n=96 m=16 instances in the mix")
	algo := flag.String("algo", "", "algo field for every request (empty = auto routing)")
	deadlineMS := flag.Float64("deadline-ms", 0, "deadline_ms field for every request")
	noCache := flag.Bool("no-cache", false, "bypass the server's result cache (cold path)")
	seed := flag.Int64("seed", 411, "seed for generated instances")
	flag.Parse()

	bodies, names, err := loadMix(*testdataDir, *genExtra, *seed, *algo, *deadlineMS, *noCache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("loadgen: %d workers for %v against %s (%d instances: %s)\n",
		*c, *d, *addr, len(bodies), names)

	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *c,
			MaxIdleConnsPerHost: *c,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	url := *addr + "/v1/solve"

	var next atomic.Int64 // round-robin instance cursor across workers
	stats := make([]workerStats, *c)
	deadline := time.Now().Add(*d)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(st *workerStats) {
			defer wg.Done()
			st.outcomes = make(map[string]int)
			for time.Now().Before(deadline) {
				body := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				outcome, err := solveOnce(client, url, body)
				lat := time.Since(t0)
				if err != nil {
					st.errs++
					if st.errSample == "" {
						st.errSample = err.Error()
					}
					continue
				}
				st.latencies = append(st.latencies, lat)
				st.outcomes[outcome]++
			}
		}(&stats[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	outcomes := map[string]int{}
	errs, errSample := 0, ""
	for i := range stats {
		all = append(all, stats[i].latencies...)
		for k, v := range stats[i].outcomes {
			outcomes[k] += v
		}
		errs += stats[i].errs
		if errSample == "" {
			errSample = stats[i].errSample
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Printf("requests: %d ok, %d errors in %.1fs — %.1f req/s\n",
		len(all), errs, elapsed.Seconds(), float64(len(all))/elapsed.Seconds())
	fmt.Printf("cache: hit %d, shared %d, miss %d, bypass %d\n",
		outcomes["hit"], outcomes["shared"], outcomes["miss"], outcomes["bypass"])
	if len(all) > 0 {
		fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
			pct(all, 50), pct(all, 90), pct(all, 99), all[len(all)-1].Round(time.Microsecond))
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests failed (first: %s)\n", errs, errSample)
		os.Exit(1)
	}
}

// loadMix reads every testdata instance and appends genExtra generated
// layered instances, returning pre-marshalled request bodies.
func loadMix(dir string, genExtra int, seed int64, algo string, deadlineMS float64, noCache bool) ([][]byte, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, "", err
	}
	var bodies [][]byte
	var names []string
	marshal := func(name string, in *malsched.Instance) error {
		raw, err := json.Marshal(request{Instance: in, Algo: algo, DeadlineMS: deadlineMS, NoCache: noCache})
		if err != nil {
			return err
		}
		bodies = append(bodies, raw)
		names = append(names, name)
		return nil
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, "", err
		}
		in, err := malsched.ReadJSON(f)
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", p, err)
		}
		if err := marshal(filepath.Base(p), in); err != nil {
			return nil, "", err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < genExtra; i++ {
		g := gen.Layered(12, 8, 2, rng) // n = 96
		in := &malsched.Instance{M: 16, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), 16, rng)}
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Succs(v) {
				in.Edges = append(in.Edges, [2]int{v, w})
			}
		}
		if err := marshal(fmt.Sprintf("gen-layered-%d", i), in); err != nil {
			return nil, "", err
		}
	}
	if len(bodies) == 0 {
		return nil, "", fmt.Errorf("no instances found under %s and -gen 0", dir)
	}
	return bodies, fmt.Sprint(names), nil
}

// solveOnce posts one request and extracts the response's cache outcome
// without a full JSON decode (the driver shares a machine with the server
// in the E12 setup; client-side parsing must stay out of the way).
func solveOnce(client *http.Client, url string, body []byte) (string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 200))
	}
	const marker = `"cache":"`
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		return "", fmt.Errorf("response without cache field: %s", truncate(data, 200))
	}
	rest := data[i+len(marker):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated cache field")
	}
	return string(rest[:j]), nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// pct returns the p-th percentile of sorted latencies (nearest rank).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx].Round(time.Microsecond)
}
