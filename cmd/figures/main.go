// Command figures regenerates the data behind the paper's figures:
//
//	figures -fig 1    speedup s(l) and work w(p(l)) series (CSV)
//	figures -fig 2    a schedule with its "heavy" path (ASCII Gantt)
//	figures -fig 3    Lemma 4.6 property Omega1 example functions (CSV)
//	figures -fig 4    Lemma 4.6 property Omega2 example functions (CSV)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"malsched/internal/core"
	"malsched/internal/gen"
	"malsched/internal/malleable"
	"malsched/internal/nlp"
	"malsched/internal/params"
	"malsched/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-4)")
	m := flag.Int("m", 16, "machine size")
	flag.Parse()
	switch *fig {
	case 1:
		fig1(*m)
	case 2:
		fig2(*m)
	case 3:
		fig3(*m)
	case 4:
		fig4()
	default:
		fmt.Fprintln(os.Stderr, "usage: figures -fig 1|2|3|4 [-m M]")
		os.Exit(2)
	}
}

// fig1 emits the concave speedup and the convex work-vs-processing-time
// diagrams of Fig. 1 for the paper's example task p(l) = p(1) l^-d.
func fig1(m int) {
	task := malleable.PowerLaw("example", 100, 0.6, m)
	fmt.Println("# Fig 1 (left): speedup s(l), concave in l")
	rows := make([][]float64, 0, m)
	for l := 0; l <= m; l++ {
		rows = append(rows, []float64{float64(l), task.Speedup(l)})
	}
	trace.CSV(os.Stdout, []string{"l", "s"}, rows)
	fmt.Println("# Fig 1 (right): work w(p(l)) vs processing time p(l), convex")
	rows = rows[:0]
	for l := m; l >= 1; l-- {
		rows = append(rows, []float64{task.Time(l), task.Work(l)})
	}
	trace.CSV(os.Stdout, []string{"p", "w"}, rows)
}

// fig2 builds a schedule with the two-phase algorithm and prints its Gantt
// chart together with the heavy path of Lemma 4.3.
func fig2(m int) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Layered(4, 3, 2, rng)
	in := gen.Instance(g, gen.FamilyPowerLaw, m, rng)
	res, err := core.Solve(in, core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Fig 2: schedule on m=%d (mu=%d, rho=%.2f) with heavy path\n", m, res.Params.Mu, res.Params.Rho)
	if err := trace.Gantt(os.Stdout, res.Schedule, 72); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := res.Schedule.HeavyPath(in.G, res.Params.Mu)
	fmt.Printf("heavy path (task ids, by start time): %v\n", path)
	cls := res.Schedule.Classify(res.Params.Mu)
	fmt.Printf("slot classes: |T1|=%.3f |T2|=%.3f |T3|=%.3f (Cmax=%.3f)\n",
		cls.T1, cls.T2, cls.T3, res.Makespan)
}

// fig3 emits the A/B branch functions whose unique crossing in mu is the
// Lemma 4.8 minimiser — the concrete instance of Lemma 4.6's property
// Omega1 (Fig. 3): A increasing, B decreasing.
func fig3(m int) {
	rho := 0.26
	A, B := nlp.ABFunctions(m, rho)
	fmt.Printf("# Fig 3 (Omega1): A(mu) increasing, B(mu) decreasing, m=%d rho=%.2f\n", m, rho)
	var rows [][]float64
	lo, hi := 1.0, float64(m+1)/2
	for i := 0; i <= 100; i++ {
		mu := lo + (hi-lo)*float64(i)/100
		rows = append(rows, []float64{mu, A(mu), B(mu)})
	}
	trace.CSV(os.Stdout, []string{"mu", "A", "B"}, rows)
	x0, minimises, found := nlp.UniqueCrossing(A, B, lo, hi, 4000)
	fmt.Printf("# crossing at mu=%.6f (Lemma 4.8: %.6f), minimises max: %v, found: %v\n",
		x0, params.MuFromLemma48(m, rho), minimises, found)
}

// fig4 emits a generic Omega2 example (both derivatives non-vanishing with
// the same sign): f(x)=2-1/(x+1), g(x)=x^2 on [0,2].
func fig4() {
	f := func(x float64) float64 { return 2 - 1/(x+1) }
	g := func(x float64) float64 { return x * x }
	fmt.Println("# Fig 4 (Omega2): f and g both increasing, unique crossing")
	var rows [][]float64
	for i := 0; i <= 100; i++ {
		x := 2 * float64(i) / 100
		rows = append(rows, []float64{x, f(x), g(x)})
	}
	trace.CSV(os.Stdout, []string{"x", "f", "g"}, rows)
	x0, minimises, found := nlp.UniqueCrossing(f, g, 0, 2, 4000)
	fmt.Printf("# crossing at x=%.6f, minimises max{f,g}: %v, found: %v\n", x0, minimises, found)
}
