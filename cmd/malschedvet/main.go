// Command malschedvet is the repo's custom vet suite: six analyzers that
// turn the bug classes chaos testing kept rediscovering into build-time
// errors. `make lint` and the CI lint job run it over ./...; it exits
// nonzero when any invariant is violated. DESIGN.md §10 catalogs the
// analyzers and the //malsched: annotation vocabulary.
//
// Usage:
//
//	go run ./cmd/malschedvet [-dir moduleroot] [packages...]
//
// Each analyzer is gated to the packages where its invariant applies
// (matched by import-path suffix, so the suite works on any module
// mirroring the repo layout — which is also what the self-test uses):
//
//	ctxdetach   internal/server, internal/engine
//	cancelpoll  internal/lp, internal/flow, internal/listsched, internal/allot
//	retryafter  internal/server
//	faulthook   all packages
//	noalloc     all packages
//	errlabel    all packages
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"malsched/internal/analysis"
	"malsched/internal/analysis/cancelpoll"
	"malsched/internal/analysis/ctxdetach"
	"malsched/internal/analysis/errlabel"
	"malsched/internal/analysis/faulthook"
	"malsched/internal/analysis/noalloc"
	"malsched/internal/analysis/retryafter"
)

// A gate binds an analyzer to the import paths it checks.
type gate struct {
	analyzer *analysis.Analyzer
	match    func(importPath string) bool
}

func suffixes(sfx ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range sfx {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

func all(string) bool { return true }

var suite = []gate{
	{ctxdetach.Analyzer, suffixes("internal/server", "internal/engine")},
	{cancelpoll.Analyzer, suffixes("internal/lp", "internal/flow", "internal/listsched", "internal/allot")},
	{retryafter.Analyzer, suffixes("internal/server")},
	{faulthook.Analyzer, all},
	{noalloc.Analyzer, all},
	{errlabel.Analyzer, all},
}

func main() {
	args := os.Args[1:]
	dir := "."
	if len(args) >= 2 && args[0] == "-dir" {
		dir, args = args[1], args[2:]
	}
	os.Exit(vet(dir, args, os.Stdout, os.Stderr))
}

// vet runs the suite and returns the process exit code: 0 clean, 1 with
// violations, 2 on load/internal errors.
func vet(dir string, patterns []string, out, errOut io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(errOut, "malschedvet: %v\n", err)
		return 2
	}
	violations := 0
	for _, pkg := range pkgs {
		for _, g := range suite {
			if !g.match(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(g.analyzer, pkg)
			if err != nil {
				fmt.Fprintf(errOut, "malschedvet: %v\n", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintln(out, d)
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(errOut, "malschedvet: %d violation(s)\n", violations)
		return 1
	}
	return 0
}
