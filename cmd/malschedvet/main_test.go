package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module so the gate is exercised
// end-to-end: go list resolution, suffix-gated analyzers, exit codes.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module vetselftest\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestInjectedViolationFails is the gate's self-test: a module with a
// known ctxdetach violation must make the suite exit nonzero. If this
// test fails, the CI lint gate has silently rotted.
func TestInjectedViolationFails(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/server/server.go": `package server

import "context"

func detached() context.Context {
	return context.Background()
}
`,
	})
	var out, errOut bytes.Buffer
	if code := vet(dir, []string{"./..."}, &out, &errOut); code != 1 {
		t.Fatalf("vet on injected violation: exit %d, want 1\nout: %s\nerr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "ctxdetach") || !strings.Contains(out.String(), "context.Background()") {
		t.Errorf("diagnostic should name the analyzer and the call, got:\n%s", out.String())
	}
}

// TestCleanModulePasses pins the inverse: annotated or out-of-gate code
// exits 0.
func TestCleanModulePasses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		// Annotated detach inside the gated package.
		"internal/server/server.go": `package server

import "context"

func job() context.Context {
	//malsched:detach accepted job outlives its submitter
	return context.Background()
}
`,
		// Un-annotated Background outside any gated package.
		"cmd/tool/main.go": `package main

import "context"

func main() {
	_ = context.Background()
}
`,
	})
	var out, errOut bytes.Buffer
	if code := vet(dir, []string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("vet on clean module: exit %d, want 0\nout: %s\nerr: %s", code, out.String(), errOut.String())
	}
}

// TestSuiteCleanOnRepo runs the full suite over the repo itself — the
// tree must stay violation-free, mirroring the CI lint job.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errOut bytes.Buffer
	if code := vet("../..", []string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("malschedvet is red on the repo (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}
