// Command geninstance writes a random problem instance as JSON:
//
//	geninstance -dag layered -family powerlaw -n 12 -m 8 -seed 1 > inst.json
//
// DAG families: chain, independent, forkjoin, layered, outtree, erdos,
// seriesparallel, cholesky. Task families: powerlaw, amdahl, capped,
// random, mixed.
//
// Huge instances (10^5-10^6 tasks) are practical with -distinct: tasks then
// share processing-time vectors drawn from a pool of that size (unnamed, as
// gen.TasksShared), so generation and the JSON stay linear in n rather than
// n*m per-task vectors. -width widens the layered family beyond the default
// 3-task layers:
//
//	geninstance -dag independent -n 1000000 -m 64 -distinct 64 > huge.json
//	geninstance -dag layered -n 100000 -width 20 -m 256 -distinct 64 > wide.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"malsched"
	"malsched/internal/dag"
	"malsched/internal/gen"
)

func main() {
	dagName := flag.String("dag", "layered", "DAG family")
	family := flag.String("family", "mixed", "task family")
	n := flag.Int("n", 12, "task count (interpretation depends on family)")
	m := flag.Int("m", 8, "machine size")
	seed := flag.Int64("seed", 1, "random seed")
	p := flag.Float64("p", 0.3, "edge probability (erdos)")
	width := flag.Int("width", 3, "layer width (layered)")
	distinct := flag.Int("distinct", 0, "share processing-time vectors from a pool of this size (0 = per-task vectors)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *dag.DAG
	switch *dagName {
	case "chain":
		g = gen.Chain(*n)
	case "independent":
		g = gen.Independent(*n)
	case "forkjoin":
		g = gen.ForkJoin(*n - 2)
	case "layered":
		w := *width
		if w < 1 {
			w = 1
		}
		d := (*n + w - 1) / w
		g = gen.Layered(d, w, 2, rng)
	case "outtree":
		g = gen.OutTree(*n, rng)
	case "erdos":
		g = gen.ErdosDAG(*n, *p, rng)
	case "seriesparallel":
		g = gen.SeriesParallel(*n, rng)
	case "cholesky":
		g = gen.Cholesky(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown dag family %q\n", *dagName)
		os.Exit(2)
	}

	var fam gen.TaskFamily
	switch *family {
	case "powerlaw":
		fam = gen.FamilyPowerLaw
	case "amdahl":
		fam = gen.FamilyAmdahl
	case "capped":
		fam = gen.FamilyCapped
	case "random":
		fam = gen.FamilyRandom
	case "mixed":
		fam = gen.FamilyMixed
	default:
		fmt.Fprintf(os.Stderr, "unknown task family %q\n", *family)
		os.Exit(2)
	}

	var tasks []malsched.Task
	if *distinct > 0 {
		tasks = gen.TasksShared(fam, g.N(), *m, *distinct, rng)
	} else {
		tasks = gen.Tasks(fam, g.N(), *m, rng)
	}
	inst := &malsched.Instance{M: *m, Tasks: tasks}
	for _, e := range g.Edges() {
		inst.Edges = append(inst.Edges, e)
	}
	if err := inst.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "generated invalid instance:", err)
		os.Exit(1)
	}
	if err := malsched.WriteJSON(os.Stdout, inst); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
