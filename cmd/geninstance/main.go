// Command geninstance writes a random problem instance as JSON:
//
//	geninstance -dag layered -family powerlaw -n 12 -m 8 -seed 1 > inst.json
//
// DAG families: chain, independent, forkjoin, layered, outtree, erdos,
// seriesparallel, cholesky. Task families: powerlaw, amdahl, capped,
// random, mixed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"malsched"
	"malsched/internal/dag"
	"malsched/internal/gen"
)

func main() {
	dagName := flag.String("dag", "layered", "DAG family")
	family := flag.String("family", "mixed", "task family")
	n := flag.Int("n", 12, "task count (interpretation depends on family)")
	m := flag.Int("m", 8, "machine size")
	seed := flag.Int64("seed", 1, "random seed")
	p := flag.Float64("p", 0.3, "edge probability (erdos)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *dag.DAG
	switch *dagName {
	case "chain":
		g = gen.Chain(*n)
	case "independent":
		g = gen.Independent(*n)
	case "forkjoin":
		g = gen.ForkJoin(*n - 2)
	case "layered":
		w := 3
		d := (*n + w - 1) / w
		g = gen.Layered(d, w, 2, rng)
	case "outtree":
		g = gen.OutTree(*n, rng)
	case "erdos":
		g = gen.ErdosDAG(*n, *p, rng)
	case "seriesparallel":
		g = gen.SeriesParallel(*n, rng)
	case "cholesky":
		g = gen.Cholesky(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown dag family %q\n", *dagName)
		os.Exit(2)
	}

	var fam gen.TaskFamily
	switch *family {
	case "powerlaw":
		fam = gen.FamilyPowerLaw
	case "amdahl":
		fam = gen.FamilyAmdahl
	case "capped":
		fam = gen.FamilyCapped
	case "random":
		fam = gen.FamilyRandom
	case "mixed":
		fam = gen.FamilyMixed
	default:
		fmt.Fprintf(os.Stderr, "unknown task family %q\n", *family)
		os.Exit(2)
	}

	inst := &malsched.Instance{M: *m, Tasks: gen.Tasks(fam, g.N(), *m, rng)}
	for _, e := range g.Edges() {
		inst.Edges = append(inst.Edges, e)
	}
	if err := inst.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "generated invalid instance:", err)
		os.Exit(1)
	}
	if err := malsched.WriteJSON(os.Stdout, inst); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
