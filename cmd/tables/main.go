// Command tables regenerates the numeric tables of the paper:
//
//	tables -table 2            Table 2: our algorithm's mu(m), rho(m), r(m)
//	tables -table 3            Table 3: the LTW [18] baseline ratios
//	tables -table 4            Table 4: grid solution of the min-max NLP (18)
//	tables -asymptotics        Section 4.3: polynomial roots and limits
//	tables -maxm 64            extend any table beyond the paper's m=33
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"malsched/internal/baseline"
	"malsched/internal/nlp"
	"malsched/internal/params"
	"malsched/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (2, 3 or 4)")
	asym := flag.Bool("asymptotics", false, "print the Section 4.3 asymptotic analysis")
	jz06 := flag.Bool("jz06", false, "print the JZ06 [13] comparison ratios (extension)")
	maxM := flag.Int("maxm", 33, "largest machine size m")
	dRho := flag.Float64("drho", 1e-4, "grid step for table 4")
	flag.Parse()

	switch {
	case *asym:
		asymptotics()
	case *jz06:
		tableJZ06(*maxM)
	case *table == 2:
		table2(*maxM)
	case *table == 3:
		table3(*maxM)
	case *table == 4:
		table4(*maxM, *dRho)
	default:
		fmt.Fprintln(os.Stderr, "usage: tables -table 2|3|4 [-maxm M] | tables -asymptotics | tables -jz06")
		os.Exit(2)
	}
}

func tableJZ06(maxM int) {
	fmt.Println("Extension: proven ratios of the earlier Jansen-Zhang algorithm [13]")
	fmt.Println("(weaker Assumption 2'; the paper's introduction quotes its 4.730598 asymptote)")
	var rows [][]string
	for m := 2; m <= maxM; m++ {
		mu, rho, r := baseline.JZ06Ratio(m)
		rows = append(rows, []string{
			fmt.Sprint(m), fmt.Sprint(mu), fmt.Sprintf("%.3f", rho), fmt.Sprintf("%.4f", r),
		})
	}
	trace.Table(os.Stdout, []string{"m", "mu(m)", "rho(m)", "r(m)"}, rows)
}

func table2(maxM int) {
	fmt.Println("Table 2: approximation ratios of the Jansen-Zhang algorithm")
	var rows [][]string
	for _, r := range params.Table2(maxM) {
		rows = append(rows, []string{
			fmt.Sprint(r.M), fmt.Sprint(r.Mu),
			fmt.Sprintf("%.3f", r.Rho), fmt.Sprintf("%.4f", r.R),
		})
	}
	trace.Table(os.Stdout, []string{"m", "mu(m)", "rho(m)", "r(m)"}, rows)
	fmt.Printf("\nCorollary 4.1 supremum: %.6f\n", params.CorollarySup())
}

func table3(maxM int) {
	fmt.Println("Table 3: approximation ratios of the LTW algorithm [18]")
	var rows [][]string
	for _, r := range baseline.Table3(maxM) {
		rows = append(rows, []string{
			fmt.Sprint(r.M), fmt.Sprint(r.Mu), fmt.Sprintf("%.4f", r.R),
		})
	}
	trace.Table(os.Stdout, []string{"m", "mu(m)", "r(m)"}, rows)
	fmt.Printf("\nasymptote: 3+sqrt(5) = %.6f\n", 3+math.Sqrt(5))
}

func table4(maxM int, dRho float64) {
	fmt.Printf("Table 4: numeric solution of min-max NLP (18), grid step %g\n", dRho)
	var rows [][]string
	for m := 2; m <= maxM; m++ {
		r := nlp.GridSolve(m, dRho)
		rows = append(rows, []string{
			fmt.Sprint(r.M), fmt.Sprint(r.Mu),
			fmt.Sprintf("%.3f", r.Rho), fmt.Sprintf("%.4f", r.R),
		})
	}
	trace.Table(os.Stdout, []string{"m", "mu(m)", "rho(m)", "r(m)"}, rows)
}

func asymptotics() {
	fmt.Println("Section 4.3: asymptotic behaviour of the approximation ratio")
	fmt.Println("limit polynomial: rho^6+6rho^5+3rho^4+14rho^3+21rho^2+24rho-8 = 0")
	fmt.Println("roots:")
	for _, r := range nlp.Roots(nlp.AsymptoticPolynomial()) {
		if math.Abs(imag(r)) < 1e-9 {
			fmt.Printf("  % .6f\n", real(r))
		} else {
			fmt.Printf("  % .6f %+.6fi\n", real(r), imag(r))
		}
	}
	rho, beta, r := nlp.AsymptoticOptimum()
	fmt.Printf("feasible root rho* = %.6f\n", rho)
	fmt.Printf("mu*/m            -> %.6f\n", beta)
	fmt.Printf("ratio r          -> %.6f\n", r)
	fmt.Printf("fixed rho-hat=0.26 supremum (Corollary 4.1): %.6f\n", params.CorollarySup())
}
