// Command malsched solves a scheduling instance from a JSON file:
//
//	malsched -in instance.json [-algo ours|ltw|seq|greedy|full] [-gantt]
//
// The instance format matches malsched.Instance:
//
//	{"m": 4, "tasks": [{"Name": "a", "Times": [4, 2.2, 1.6, 1.3]}, ...],
//	 "edges": [[0, 1], ...]}
package main

import (
	"flag"
	"fmt"
	"os"

	"malsched"
)

func main() {
	inPath := flag.String("in", "", "instance JSON file (required)")
	algo := flag.String("algo", "ours", "algorithm: ours, ltw, seq, greedy, full")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	width := flag.Int("width", 72, "gantt chart width")
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := malsched.ReadJSON(f)
	if err != nil {
		fatal(err)
	}

	var res *malsched.Result
	switch *algo {
	case "ours":
		res, err = malsched.Solve(in)
	case "ltw":
		res, err = malsched.SolveLTW(in)
	case "seq":
		res, err = malsched.SolveSequential(in)
	case "greedy":
		res, err = malsched.SolveGreedyCP(in)
	case "full":
		res, err = malsched.SolveFullAllotment(in)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	if err := malsched.Verify(in, res); err != nil {
		fatal(fmt.Errorf("produced schedule failed verification: %w", err))
	}

	fmt.Printf("algorithm:    %s\n", *algo)
	fmt.Printf("tasks:        %d on m=%d processors\n", len(in.Tasks), in.M)
	fmt.Printf("makespan:     %.6f\n", res.Makespan)
	if res.LowerBound > 0 {
		fmt.Printf("lower bound:  %.6f (max{L*, W*/m} <= OPT)\n", res.LowerBound)
		fmt.Printf("guarantee:    %.4f (proven worst case: %.4f)\n", res.Guarantee, res.ProvenRatio)
	}
	if res.Mu > 0 {
		fmt.Printf("parameters:   mu=%d rho=%.3f\n", res.Mu, res.Rho)
	}
	fmt.Println("allotment:")
	for j, it := range res.Schedule.Items {
		fmt.Printf("  task %2d (%s): %d procs, start %.4f, duration %.4f\n",
			j, in.Tasks[j].Name, it.Alloc, it.Start, it.Duration)
	}
	if *gantt {
		fmt.Println()
		if err := malsched.Gantt(os.Stdout, res.Schedule, *width); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "malsched:", err)
	os.Exit(1)
}
