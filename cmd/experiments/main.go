// Command experiments runs the empirical study (experiments E8/E9 of
// EXPERIMENTS.md): it measures realised makespans of the two-phase algorithm and
// the baselines against the LP lower bound across DAG families, task
// families and machine sizes, and (with -exact) against brute-force optimal
// makespans on tiny instances. The paper proves a worst-case ratio; the
// study confirms the proven bound holds and shows typical-case quality.
//
// The trial grid fans out across an internal/engine worker pool (-workers,
// default GOMAXPROCS), so wall-clock scales with cores while instance
// generation — and therefore every number printed — stays deterministic
// for a fixed -seed regardless of the worker count.
//
// -phase1 runs the phase-1 LP scaling study instead (EXPERIMENTS.md E11):
// the lazy-cut sparse simplex across instance sizes up to -phase1max
// tasks, reporting solve time, generated cuts and separation rounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"malsched/internal/allot"
	"malsched/internal/baseline"
	"malsched/internal/bruteforce"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/engine"
	"malsched/internal/gen"
	"malsched/internal/params"
	"malsched/internal/solver"
	"malsched/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 5, "instances per configuration")
	exact := flag.Bool("exact", false, "run the brute-force exact study instead")
	phase1 := flag.Bool("phase1", false, "run the phase-1 LP scaling study instead")
	phase1max := flag.Int("phase1max", 2000, "largest task count for -phase1")
	phase1form := flag.String("phase1formulation", "", "pin the -phase1 formulation: lazy, segment, mincut or dense (empty = auto routing)")
	n := flag.Int("n", 24, "tasks per instance (approximate)")
	workers := flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *phase1 {
		phase1Study(*seed, *phase1max, *phase1form)
		return
	}
	pool := engine.New(*workers)
	defer pool.Close()
	if *exact {
		exactStudy(pool, *seed, *trials)
		return
	}
	ratioStudy(pool, *seed, *trials, *n)
}

// phase1Study measures phase 1 across instance sizes (EXPERIMENTS.md E11,
// E16): layered DAGs, mixed task families, machine sizes growing with n.
// Each row reports the warm-workspace solve time, the model size, which
// formulation solved the row (pinned, or the router's pick), and that
// formulation's effort counters — lazy cuts and separation rounds on the
// simplex routes, sweep breakpoints and flow augmentations on mincut.
func phase1Study(seed int64, nmax int, formulation string) {
	fmt.Println("phase-1 LP scaling")
	fmt.Println("n\tm\tedges\tformulation\ttime\tcuts\trounds\tC*")
	ws := allot.NewWorkspace()
	ws.ForceFormulation = allot.Formulation(formulation)
	for _, cfg := range []struct{ n, m int }{
		{100, 16}, {200, 16}, {500, 32}, {1000, 64}, {2000, 64}, {5000, 64}, {10000, 64},
	} {
		if cfg.n > nmax {
			break
		}
		rng := rand.New(rand.NewSource(seed))
		w := 20
		g := gen.Layered(cfg.n/w, w, 3, rng)
		in := gen.Instance(g, gen.FamilyMixed, cfg.m, rng)
		start := time.Now()
		frac, err := allot.SolveLPWith(in, ws)
		el := time.Since(start)
		if err != nil {
			fmt.Printf("%d\t%d\t%d\tERROR: %v\n", cfg.n, cfg.m, g.M(), err)
			continue
		}
		fmt.Printf("%d\t%d\t%d\t%s\t%v\t%d\t%d\t%.4f\n",
			g.N(), cfg.m, g.M(), frac.Formulation, el.Round(time.Millisecond), frac.Cuts, frac.Rounds, frac.C)
	}
}

type dagFamily struct {
	name  string
	build func(n int, rng *rand.Rand) *dag.DAG
}

// trial is one solved instance of the grid: the instance is generated
// sequentially (deterministic for a fixed seed), the solving runs on the
// pool, and the ratios are aggregated in input order afterwards.
type trial struct {
	in *allot.Instance
	// Outputs: the ratios are written by the worker that runs the trial,
	// err by the pool after the batch (solve failure or cancellation).
	ours, ltw, seq, greedy, full float64
	err                          error
}

// run solves the trial's instance with the paper's algorithm and every
// baseline, recording each makespan / LP-lower-bound ratio. Every solve —
// ours and the four baselines — reuses the worker's cross-phase workspace.
func (tr *trial) run(ws *solver.Workspace) error {
	res, err := core.SolveWith(tr.in, core.Options{}, ws)
	if err != nil {
		return err
	}
	lb := res.LowerBound
	tr.ours = res.Makespan / lb
	if r, err := baseline.LTWWith(tr.in, ws); err == nil {
		tr.ltw = r.Makespan / lb
	}
	if r, err := baseline.SequentialWith(tr.in, ws); err == nil {
		tr.seq = r.Makespan / lb
	}
	if r, err := baseline.GreedyCPWith(tr.in, ws); err == nil {
		tr.greedy = r.Makespan / lb
	}
	if r, err := baseline.FullAllotmentWith(tr.in, ws); err == nil {
		tr.full = r.Makespan / lb
	}
	return nil
}

func ratioStudy(pool *engine.Pool, seed int64, trials, n int) {
	rng := rand.New(rand.NewSource(seed))
	dags := []dagFamily{
		{"chain", func(n int, r *rand.Rand) *dag.DAG { return gen.Chain(n) }},
		{"independent", func(n int, r *rand.Rand) *dag.DAG { return gen.Independent(n) }},
		{"forkjoin", func(n int, r *rand.Rand) *dag.DAG { return gen.ForkJoin(n - 2) }},
		{"layered", func(n int, r *rand.Rand) *dag.DAG { return gen.Layered((n+3)/4, 4, 2, r) }},
		{"outtree", func(n int, r *rand.Rand) *dag.DAG { return gen.OutTree(n, r) }},
		{"erdos", func(n int, r *rand.Rand) *dag.DAG { return gen.ErdosDAG(n, 0.25, r) }},
		{"cholesky", func(n int, r *rand.Rand) *dag.DAG { return gen.Cholesky(4) }},
	}
	ms := []int{4, 8, 16}

	// Generate the full grid sequentially so the shared rng stream — and
	// with it every instance — is independent of worker count.
	type config struct {
		df dagFamily
		m  int
		ts []*trial
	}
	var configs []*config
	var all []*trial
	var fns []engine.Func
	for i := range dags {
		for _, m := range ms {
			cfg := &config{df: dags[i], m: m}
			for t := 0; t < trials; t++ {
				g := cfg.df.build(n, rng)
				tr := &trial{in: gen.Instance(g, gen.FamilyMixed, m, rng)}
				cfg.ts = append(cfg.ts, tr)
				all = append(all, tr)
				fns = append(fns, tr.run)
			}
			configs = append(configs, cfg)
		}
	}

	// all[i] and fns[i] were appended together, so the pool's order-
	// preserving errors attach directly to their trials.
	for i, err := range pool.Run(context.Background(), fns) {
		all[i].err = err
	}

	fmt.Println("E8: makespan / LP-lower-bound by algorithm (mean over trials)")
	header := []string{"dag", "m", "ours", "proven", "ltw", "ltw-proven", "seq", "greedy", "full"}
	var rows [][]string
	for _, cfg := range configs {
		var ours, ltw, seq, greedy, full float64
		cnt := 0
		for _, tr := range cfg.ts {
			if tr.err != nil {
				fmt.Fprintf(os.Stderr, "%s m=%d: %v\n", cfg.df.name, cfg.m, tr.err)
				continue
			}
			ours += tr.ours
			ltw += tr.ltw
			seq += tr.seq
			greedy += tr.greedy
			full += tr.full
			cnt++
		}
		if cnt == 0 {
			continue
		}
		f := float64(cnt)
		_, ltwProven := baseline.LTWRatio(cfg.m)
		rows = append(rows, []string{
			cfg.df.name, fmt.Sprint(cfg.m),
			fmt.Sprintf("%.3f", ours/f),
			fmt.Sprintf("%.3f", params.Choose(cfg.m).R),
			fmt.Sprintf("%.3f", ltw/f),
			fmt.Sprintf("%.3f", ltwProven),
			fmt.Sprintf("%.3f", seq/f),
			fmt.Sprintf("%.3f", greedy/f),
			fmt.Sprintf("%.3f", full/f),
		})
	}
	trace.Table(os.Stdout, header, rows)
	fmt.Println("\nNote: columns are upper bounds on the true approximation factor")
	fmt.Println("(the denominator is the LP lower bound, not OPT).")
}

func exactStudy(pool *engine.Pool, seed int64, trials int) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("E9: exact ratios versus brute-force OPT on tiny instances")
	header := []string{"n", "m", "mean", "worst", "proven"}

	type exactTrial struct {
		in    *allot.Instance
		ratio float64
		err   error
	}
	configs := []struct{ n, m int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}, {6, 3}}
	grid := make([][]*exactTrial, len(configs))
	var all []*exactTrial
	var fns []engine.Func
	for c, cfg := range configs {
		for t := 0; t < trials; t++ {
			tr := &exactTrial{in: gen.Instance(gen.ErdosDAG(cfg.n, 0.35, rng), gen.FamilyMixed, cfg.m, rng)}
			grid[c] = append(grid[c], tr)
			all = append(all, tr)
			fns = append(fns, func(ws *solver.Workspace) error {
				opt := bruteforce.Optimal(tr.in)
				res, err := core.SolveWith(tr.in, core.Options{}, ws)
				if err != nil {
					return err
				}
				tr.ratio = res.Makespan / opt
				return nil
			})
		}
	}

	for i, err := range pool.Run(context.Background(), fns) {
		all[i].err = err
	}

	var rows [][]string
	for c, cfg := range configs {
		var sum, worst float64
		cnt := 0
		for _, tr := range grid[c] {
			if tr.err != nil {
				fmt.Fprintln(os.Stderr, tr.err)
				continue
			}
			sum += tr.ratio
			worst = math.Max(worst, tr.ratio)
			cnt++
		}
		if cnt == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprint(cfg.n), fmt.Sprint(cfg.m),
			fmt.Sprintf("%.4f", sum/float64(cnt)),
			fmt.Sprintf("%.4f", worst),
			fmt.Sprintf("%.4f", params.Choose(cfg.m).R),
		})
	}
	trace.Table(os.Stdout, header, rows)
}
