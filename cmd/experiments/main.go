// Command experiments runs the empirical study (experiment E8/E9 of
// DESIGN.md): it measures realised makespans of the two-phase algorithm and
// the baselines against the LP lower bound across DAG families, task
// families and machine sizes, and (with -exact) against brute-force optimal
// makespans on tiny instances. The paper proves a worst-case ratio; the
// study confirms the proven bound holds and shows typical-case quality.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"malsched/internal/baseline"
	"malsched/internal/bruteforce"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/params"
	"malsched/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 5, "instances per configuration")
	exact := flag.Bool("exact", false, "run the brute-force exact study instead")
	n := flag.Int("n", 24, "tasks per instance (approximate)")
	flag.Parse()

	if *exact {
		exactStudy(*seed, *trials)
		return
	}
	ratioStudy(*seed, *trials, *n)
}

type dagFamily struct {
	name  string
	build func(n int, rng *rand.Rand) *dag.DAG
}

func ratioStudy(seed int64, trials, n int) {
	rng := rand.New(rand.NewSource(seed))
	dags := []dagFamily{
		{"chain", func(n int, r *rand.Rand) *dag.DAG { return gen.Chain(n) }},
		{"independent", func(n int, r *rand.Rand) *dag.DAG { return gen.Independent(n) }},
		{"forkjoin", func(n int, r *rand.Rand) *dag.DAG { return gen.ForkJoin(n - 2) }},
		{"layered", func(n int, r *rand.Rand) *dag.DAG { return gen.Layered((n+3)/4, 4, 2, r) }},
		{"outtree", func(n int, r *rand.Rand) *dag.DAG { return gen.OutTree(n, r) }},
		{"erdos", func(n int, r *rand.Rand) *dag.DAG { return gen.ErdosDAG(n, 0.25, r) }},
		{"cholesky", func(n int, r *rand.Rand) *dag.DAG { return gen.Cholesky(4) }},
	}
	fmt.Println("E8: makespan / LP-lower-bound by algorithm (mean over trials)")
	header := []string{"dag", "m", "ours", "proven", "ltw", "ltw-proven", "seq", "greedy", "full"}
	var rows [][]string
	for _, df := range dags {
		for _, m := range []int{4, 8, 16} {
			var ours, ltw, seq, greedy, full float64
			cnt := 0
			for trial := 0; trial < trials; trial++ {
				g := df.build(n, rng)
				in := gen.Instance(g, gen.FamilyMixed, m, rng)
				res, err := core.Solve(in, core.Options{})
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s m=%d: %v\n", df.name, m, err)
					continue
				}
				lb := res.LowerBound
				ours += res.Makespan / lb
				if r, err := baseline.LTW(in); err == nil {
					ltw += r.Makespan / lb
				}
				if r, err := baseline.Sequential(in); err == nil {
					seq += r.Makespan / lb
				}
				if r, err := baseline.GreedyCP(in); err == nil {
					greedy += r.Makespan / lb
				}
				if r, err := baseline.FullAllotment(in); err == nil {
					full += r.Makespan / lb
				}
				cnt++
			}
			if cnt == 0 {
				continue
			}
			f := float64(cnt)
			_, ltwProven := baseline.LTWRatio(m)
			rows = append(rows, []string{
				df.name, fmt.Sprint(m),
				fmt.Sprintf("%.3f", ours/f),
				fmt.Sprintf("%.3f", params.Choose(m).R),
				fmt.Sprintf("%.3f", ltw/f),
				fmt.Sprintf("%.3f", ltwProven),
				fmt.Sprintf("%.3f", seq/f),
				fmt.Sprintf("%.3f", greedy/f),
				fmt.Sprintf("%.3f", full/f),
			})
		}
	}
	trace.Table(os.Stdout, header, rows)
	fmt.Println("\nNote: columns are upper bounds on the true approximation factor")
	fmt.Println("(the denominator is the LP lower bound, not OPT).")
}

func exactStudy(seed int64, trials int) {
	rng := rand.New(rand.NewSource(seed))
	fmt.Println("E9: exact ratios versus brute-force OPT on tiny instances")
	header := []string{"n", "m", "mean", "worst", "proven"}
	var rows [][]string
	for _, cfg := range []struct{ n, m int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}, {6, 3}} {
		var sum, worst float64
		for trial := 0; trial < trials; trial++ {
			in := gen.Instance(gen.ErdosDAG(cfg.n, 0.35, rng), gen.FamilyMixed, cfg.m, rng)
			opt := bruteforce.Optimal(in)
			res, err := core.Solve(in, core.Options{})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				continue
			}
			ratio := res.Makespan / opt
			sum += ratio
			worst = math.Max(worst, ratio)
		}
		rows = append(rows, []string{
			fmt.Sprint(cfg.n), fmt.Sprint(cfg.m),
			fmt.Sprintf("%.4f", sum/float64(trials)),
			fmt.Sprintf("%.4f", worst),
			fmt.Sprintf("%.4f", params.Choose(cfg.m).R),
		})
	}
	trace.Table(os.Stdout, header, rows)
}
