// Command benchgate is the CI benchmark-regression gate: it compares a
// current benchmark run against the previous push's baseline and exits
// non-zero when a key benchmark slowed down past the threshold.
//
//	benchgate -baseline BENCH_old.json -current BENCH_new.json \
//	          [-key 'BenchmarkPhase1LP/|BenchmarkList/'] [-threshold 1.25]
//
// Both files may be plain `go test -bench` output or `go test -json`
// streams (the BENCH_*.json records of `make bench-json`). A missing
// baseline file is not an error — the first run on a branch seeds the
// baseline instead of failing — and benchmarks present on only one side
// never gate, so adding or renaming benchmarks cannot wedge CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"malsched/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "", "baseline benchmark file (missing = seed run, exit 0)")
	currentPath := flag.String("current", "", "current benchmark file (required)")
	keyExpr := flag.String("key", ".", "regexp of gated benchmark names")
	threshold := flag.Float64("threshold", 1.25, "fail when new/old ns/op exceeds this on a gated benchmark")
	flag.Parse()
	if *currentPath == "" || *baselinePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	key, err := regexp.Compile(*keyExpr)
	if err != nil {
		fatal(fmt.Errorf("bad -key regexp: %w", err))
	}

	if _, err := os.Stat(*baselinePath); os.IsNotExist(err) {
		fmt.Printf("benchgate: no baseline at %s — seeding from current run\n", *baselinePath)
		return
	}
	baseline := parseFile(*baselinePath)
	current := parseFile(*currentPath)
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s", *currentPath))
	}

	deltas, regressed := benchfmt.Compare(baseline, current, key, *threshold)
	benchfmt.Format(os.Stdout, deltas, *threshold)
	if regressed {
		fmt.Fprintf(os.Stderr, "benchgate: key benchmark regressed past %.2fx against %s\n", *threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchgate: no gated regression")
}

func parseFile(path string) map[string]benchfmt.Result {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := benchfmt.Parse(f)
	if err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
