// Command malschedd is the malsched scheduling daemon: an HTTP JSON API
// over a shared solver pool with a content-addressed result cache and
// adaptive solver routing (see internal/server and DESIGN.md §8).
//
//	malschedd [-addr :8080] [-workers 0] [-cache-entries 4096]
//	          [-cache-shards 16] [-max-jobs 1024] [-max-body 268435456]
//	          [-max-pending 1024]
//
// Endpoints:
//
//	POST /v1/solve     {"instance": {...}, "algo": "auto", ...}
//	POST /v1/batch     {"instances": [{...}, ...]}
//	POST /v1/jobs      async submit -> {"id": ...}
//	GET  /v1/jobs/{id} poll
//	GET  /healthz      liveness: is the process up
//	GET  /readyz       readiness: accepting new work? 503 while draining
//	GET  /metrics      counters (also under expvar at /debug/vars)
//
// SIGINT/SIGTERM flip /readyz to 503 (so load balancers stop routing here)
// and then drain in-flight requests before exiting. Overload responses (429
// from the admission queue, 503 from job-slot pressure or deadline
// shedding) carry a Retry-After header.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"malsched/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 4096, "resident solution cache bound (negative disables)")
	cacheShards := flag.Int("cache-shards", 16, "cache shard count")
	maxJobs := flag.Int("max-jobs", 1024, "finished async jobs kept queryable")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = 256 MiB default; raise for million-task instances, negative disables)")
	maxPending := flag.Int("max-pending", 0, "admission bound: max requests waiting for a solver worker (0 = 1024 default); excess is shed with 429")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheShards:  *cacheShards,
		MaxJobs:      *maxJobs,
		MaxBodyBytes: *maxBody,
		MaxPending:   *maxPending,
	})
	defer srv.Close()
	expvar.Publish("malsched", srv.Stats())

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	hs := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("malschedd: listening on %s (%d workers, cache %d entries / %d shards)",
		*addr, srv.Workers(), *cacheEntries, *cacheShards)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("malschedd: %v, draining for up to %v", sig, *drain)
		srv.SetDraining(true) // flip /readyz first so balancers stop routing here
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("malschedd: drain incomplete: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "malschedd: %v\n", err)
			os.Exit(1)
		}
	}
}
