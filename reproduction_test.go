package malsched

// reproduction_test.go pins every headline number of the paper in one
// place, so `go test .` is a one-shot check that the reproduction still
// reproduces. Detailed per-table transcriptions live with the packages that
// compute them (internal/params, internal/baseline, internal/nlp).

import (
	"math"
	"testing"

	"malsched/internal/baseline"
	"malsched/internal/nlp"
	"malsched/internal/params"
)

func TestPaperHeadlineNumbers(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		// Abstract / Corollary 4.1: the approximation ratio.
		{"corollary ratio", params.CorollarySup(), 3.291919, 5e-7},
		// Theorem 4.1 small machines.
		{"r(2)", params.Choose(2).R, 2, 1e-9},
		// rho(3) = 0.098 is the paper's 3-decimal truncation of the exact
		// optimiser, so the objective matches the closed form only to ~1e-6.
		{"r(3) = 2(2+sqrt 3)/3", params.Choose(3).R, 2 * (2 + math.Sqrt(3)) / 3, 5e-5},
		{"r(4) = 8/3", params.Choose(4).R, 8.0 / 3, 1e-9},
		{"r(5)", params.Choose(5).R, 2.6868, 5e-5},
		// Eq. (19): the fixed rounding parameter.
		{"rho-hat", params.Choose(10).Rho, 0.26, 1e-12},
		// Section 4.3 asymptotics.
		{"asymptotic rho*", asymRho(), 0.261917, 5e-6},
		{"asymptotic mu*/m", asymBeta(), 0.325907, 5e-6},
		{"asymptotic ratio", asymR(), 3.291913, 5e-6},
		// Related-work anchors quoted in the introduction.
		{"LTW asymptote = 3+sqrt 5", ltwAsym(), 3 + math.Sqrt(5), 1e-3},
		{"JZ06 asymptote", jz06Asym(), 4.730598, 2e-3},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.7f, want %.7f (tol %g)", c.name, c.got, c.want, c.tol)
		}
	}
}

func asymRho() float64  { r, _, _ := nlp.AsymptoticOptimum(); return r }
func asymBeta() float64 { _, b, _ := nlp.AsymptoticOptimum(); return b }
func asymR() float64    { _, _, r := nlp.AsymptoticOptimum(); return r }
func ltwAsym() float64  { _, r := baseline.LTWRatio(20000); return r }
func jz06Asym() float64 { _, _, r := baseline.JZ06Ratio(20000); return r }

// The monotone structure of Table 2: r(m) increases toward the corollary
// supremum along the odd/even subsequences the paper's mu-rounding induces,
// and never exceeds it.
func TestRatioBoundedByCorollary(t *testing.T) {
	sup := params.CorollarySup()
	prevMax := 0.0
	for m := 2; m <= 2048; m *= 2 {
		r := params.Choose(m).R
		if r > sup {
			t.Errorf("r(%d) = %v exceeds the supremum %v", m, r, sup)
		}
		if r > prevMax {
			prevMax = r
		}
	}
	if prevMax < sup-0.01 {
		t.Errorf("ratios max out at %v, expected approach to %v", prevMax, sup)
	}
}
