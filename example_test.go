package malsched_test

import (
	"context"
	"fmt"

	"malsched"
)

// ExampleSolve schedules a two-stage pipeline with perfect-speedup tasks on
// two processors. Note the worst-case-optimal parameters for m=2 set the
// allotment cap mu=1, so the pipeline runs sequentially at exactly the
// proven factor 2 of the lower bound — the m=2 bound of Theorem 4.1 is
// tight on this instance. WithMu(2) would recover the optimum 4.
func ExampleSolve() {
	inst := &malsched.Instance{
		M: 2,
		Tasks: []malsched.Task{
			malsched.NewTask("stage1", []float64{4, 2}),
			malsched.NewTask("stage2", []float64{4, 2}),
		},
		Edges: [][2]int{{0, 1}},
	}
	res, err := malsched.Solve(inst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %.1f on %d processors (lower bound %.1f, proven ratio %.0f)\n",
		res.Makespan, inst.M, res.LowerBound, res.ProvenRatio)
	wide, err := malsched.Solve(inst, malsched.WithMu(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("with mu=2: makespan %.1f\n", wide.Makespan)
	// Output:
	// makespan 8.0 on 2 processors (lower bound 4.0, proven ratio 2)
	// with mu=2: makespan 4.0
}

// ExamplePool solves a batch of instances concurrently. Results come back
// in input order and are identical to sequential Solve calls for any worker
// count; each worker reuses its solver workspace across instances.
func ExamplePool() {
	stage := func(name string) malsched.Task { return malsched.NewTask(name, []float64{4, 2}) }
	batch := make([]*malsched.Instance, 3)
	for i := range batch {
		batch[i] = &malsched.Instance{
			M:     2,
			Tasks: []malsched.Task{stage("stage1"), stage("stage2")},
			Edges: [][2]int{{0, 1}},
		}
	}
	pool := malsched.NewPool(2) // 2 workers; 0 means GOMAXPROCS
	defer pool.Close()
	for i, out := range pool.SolveBatch(context.Background(), batch) {
		if out.Err != nil {
			panic(out.Err)
		}
		fmt.Printf("instance %d: makespan %.1f\n", i, out.Result.Makespan)
	}
	// Output:
	// instance 0: makespan 8.0
	// instance 1: makespan 8.0
	// instance 2: makespan 8.0
}

// ExampleParams looks up the paper's Theorem 4.1 parameters for a machine.
func ExampleParams() {
	mu, rho, ratio := malsched.Params(10)
	fmt.Printf("m=10: mu=%d rho=%.2f proven ratio %.4f\n", mu, rho, ratio)
	// Output:
	// m=10: mu=4 rho=0.26 proven ratio 3.0026
}

// ExampleOptimal cross-checks the algorithm against the exact optimum on a
// tiny instance.
func ExampleOptimal() {
	inst := &malsched.Instance{
		M: 2,
		Tasks: []malsched.Task{
			malsched.NewTask("a", []float64{3, 3}), // sequential
			malsched.NewTask("b", []float64{3, 3}),
		},
	}
	opt, err := malsched.Optimal(inst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("OPT = %.1f (run both tasks in parallel)\n", opt)
	// Output:
	// OPT = 3.0 (run both tasks in parallel)
}
