package malsched

import (
	"os"
	"path/filepath"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/baseline"
	"malsched/internal/listsched"
	"malsched/internal/params"
)

// TestListSchedulerMatchesReferenceOnCanned drives both LIST
// implementations with the real phase-1 allotments on every canned
// instance: the profile scheduler must produce byte-identical schedules to
// the retained seed implementation, for the paper's parameters and for
// every allotment the baselines feed it.
func TestListSchedulerMatchesReferenceOnCanned(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata instances found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			in, err := ReadJSON(f)
			if err != nil {
				t.Fatal(err)
			}
			ai, err := in.internal()
			if err != nil {
				t.Fatal(err)
			}
			frac, err := allot.SolveLP(ai)
			if err != nil {
				t.Fatal(err)
			}
			choice := params.Choose(ai.M)
			muLTW, _ := baseline.LTWRatio(ai.M)
			allocs := map[string][]int{
				"paper": listsched.CapAllotment(allot.Round(ai, frac, choice.Rho), choice.Mu),
				"ltw":   listsched.CapAllotment(allot.Round(ai, frac, 0.5), muLTW),
				"seq":   make([]int, ai.G.N()),
				"full":  make([]int, ai.G.N()),
			}
			for j := 0; j < ai.G.N(); j++ {
				allocs["seq"][j] = 1
				allocs["full"][j] = ai.M
			}
			for name, alloc := range allocs {
				got, err := listsched.Run(ai, alloc)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := listsched.RunReference(ai, alloc)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got.M != want.M || len(got.Items) != len(want.Items) {
					t.Fatalf("%s: schedule shape differs", name)
				}
				for j := range got.Items {
					if got.Items[j] != want.Items[j] {
						t.Errorf("%s: task %d: profile %+v, reference %+v",
							name, j, got.Items[j], want.Items[j])
					}
				}
			}
		})
	}
}
