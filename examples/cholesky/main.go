// Cholesky: schedule a tiled Cholesky factorisation task graph — the kind
// of dense linear-algebra workload that motivates malleable scheduling on
// large parallel machines (Section 1 of the paper). Each kernel (POTRF,
// TRSM, SYRK, GEMM) is a malleable task whose speedup follows a power law;
// the DAG interleaves narrow critical-path phases with wide update phases,
// which is exactly the regime where the two-phase algorithm's allotment
// balancing pays off. The example compares the algorithm against the naive
// baselines on machines of increasing size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"malsched"
	"malsched/internal/gen"
)

func main() {
	const tiles = 5
	g := gen.Cholesky(tiles)
	rng := rand.New(rand.NewSource(7))

	fmt.Printf("tiled Cholesky, %d tile-columns: %d kernels, %d dependencies\n",
		tiles, g.N(), g.M())
	fmt.Printf("%-4s  %-10s  %-10s  %-10s  %-10s  %-9s\n",
		"m", "two-phase", "ltw", "greedy", "sequential", "guarantee")

	for _, m := range []int{2, 4, 8, 16} {
		inst := &malsched.Instance{M: m}
		// Kernel costs scale with the usual flop counts; speedups are
		// power-law with exponents reflecting kernel parallelism (GEMM
		// scales best, POTRF worst).
		for v := 0; v < g.N(); v++ {
			base := 10 + 40*rng.Float64()
			d := 0.5 + 0.4*rng.Float64()
			inst.Tasks = append(inst.Tasks, malsched.PowerLawTask(fmt.Sprintf("k%d", v), base, d, m))
		}
		for _, e := range g.Edges() {
			inst.Edges = append(inst.Edges, e)
		}

		ours, err := malsched.Solve(inst)
		if err != nil {
			log.Fatal(err)
		}
		ltw, err := malsched.SolveLTW(inst)
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := malsched.SolveGreedyCP(inst)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := malsched.SolveSequential(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d  %-10.2f  %-10.2f  %-10.2f  %-10.2f  %.3fx\n",
			m, ours.Makespan, ltw.Makespan, greedy.Makespan, seq.Makespan, ours.Guarantee)
	}
	fmt.Println("\nguarantee = makespan / LP lower bound; Theorem 4.1 bounds it by r(m).")
}
