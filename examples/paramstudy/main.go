// Paramstudy: an ablation over the algorithm's two knobs — the rounding
// parameter rho and the allotment cap mu — on a fixed workload. The paper
// chooses rho-hat = 0.26 and mu from Eq. (20) to minimise the *worst-case*
// ratio; this study shows how the realised makespan responds on a typical
// instance, and that the paper's choice is competitive (the worst case
// optimum need not win on every instance, but it is never far off).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"malsched"
	"malsched/internal/gen"
)

func main() {
	const m = 12
	rng := rand.New(rand.NewSource(5))
	g := gen.Layered(5, 4, 2, rng)
	inst := &malsched.Instance{M: m, Tasks: nil}
	for v := 0; v < g.N(); v++ {
		inst.Tasks = append(inst.Tasks, malsched.PowerLawTask(fmt.Sprintf("t%d", v), 5+45*rng.Float64(), 0.4+0.5*rng.Float64(), m))
	}
	for _, e := range g.Edges() {
		inst.Edges = append(inst.Edges, e)
	}

	muStar, rhoStar, ratio := malsched.Params(m)
	fmt.Printf("paper's choice for m=%d: mu=%d rho=%.3f (proven ratio %.4f)\n\n", m, muStar, rhoStar, ratio)

	fmt.Println("rho sweep (mu fixed at paper's choice):")
	fmt.Printf("%-6s  %-10s  %-9s\n", "rho", "makespan", "vs bound")
	for _, rho := range []float64{0, 0.13, 0.26, 0.5, 0.75, 1} {
		res, err := malsched.Solve(inst, malsched.WithRho(rho))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-10.3f  %.3fx\n", rho, res.Makespan, res.Guarantee)
	}

	fmt.Println("\nmu sweep (rho fixed at paper's choice):")
	fmt.Printf("%-4s  %-10s  %-9s\n", "mu", "makespan", "vs bound")
	for mu := 1; mu <= (m+1)/2; mu++ {
		res, err := malsched.Solve(inst, malsched.WithMu(mu))
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if mu == muStar {
			marker = "  <- paper"
		}
		fmt.Printf("%-4d  %-10.3f  %.3fx%s\n", mu, res.Makespan, res.Guarantee, marker)
	}
}
