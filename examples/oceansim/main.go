// Oceansim: an adaptive-mesh ocean-circulation workload in the style of
// Blayo et al. [2] (the application that motivated the monotone-penalty
// malleable model). Each simulation step forks region solvers of unequal
// size (the adaptive mesh refines some regions), synchronises, and
// continues; refined regions are wide, well-parallelising tasks while
// coarse regions barely speed up. The example runs several steps, prints
// the schedule quality, and replays the schedule on the simulated machine
// to report per-processor utilisation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"malsched"
	"malsched/internal/sim"
)

func main() {
	const (
		m       = 8
		steps   = 4
		regions = 5
	)
	rng := rand.New(rand.NewSource(11))

	inst := &malsched.Instance{M: m}
	addTask := func(t malsched.Task) int {
		inst.Tasks = append(inst.Tasks, t)
		return len(inst.Tasks) - 1
	}
	prevSync := -1
	for s := 0; s < steps; s++ {
		// Fork: one solver per mesh region. Refined regions have more work
		// but parallelise well (Amdahl fraction small); coarse regions are
		// light and nearly sequential.
		var solvers []int
		for r := 0; r < regions; r++ {
			refined := rng.Float64() < 0.4
			var t malsched.Task
			if refined {
				t = malsched.AmdahlTask(fmt.Sprintf("s%d-refined%d", s, r), 30+20*rng.Float64(), 0.05, m)
			} else {
				t = malsched.AmdahlTask(fmt.Sprintf("s%d-coarse%d", s, r), 5+5*rng.Float64(), 0.6, m)
			}
			j := addTask(t)
			if prevSync >= 0 {
				inst.Edges = append(inst.Edges, [2]int{prevSync, j})
			}
			solvers = append(solvers, j)
		}
		// Join: boundary exchange, cheap and sequential.
		sync := addTask(malsched.NewTask(fmt.Sprintf("sync%d", s), constTimes(2, m)))
		for _, j := range solvers {
			inst.Edges = append(inst.Edges, [2]int{j, sync})
		}
		prevSync = sync
	}

	res, err := malsched.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := malsched.Verify(inst, res); err != nil {
		log.Fatal(err)
	}
	rep, err := sim.Replay(res.Schedule)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ocean simulation: %d steps x %d regions = %d tasks on m=%d\n",
		steps, regions, len(inst.Tasks), m)
	fmt.Printf("makespan   %.3f (lower bound %.3f, within %.3fx, proven %.3fx)\n",
		res.Makespan, res.LowerBound, res.Guarantee, res.ProvenRatio)
	fmt.Printf("machine utilisation: %.1f%%\n", 100*rep.Utilisation)
	for p, busy := range rep.BusyTime {
		fmt.Printf("  P%02d busy %.3f (%.1f%%)\n", p, busy, 100*busy/rep.Makespan)
	}
}

func constTimes(v float64, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = v
	}
	return out
}
