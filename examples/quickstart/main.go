// Quickstart: schedule a small pipeline of malleable tasks on 4 processors
// with the Jansen-Zhang two-phase algorithm and print the schedule, the
// certified lower bound and the realised guarantee.
package main

import (
	"fmt"
	"log"
	"os"

	"malsched"
)

func main() {
	// A four-stage pipeline with a diamond in the middle: prepare, then two
	// independent solves, then a merge. Times[l-1] = duration on l procs.
	inst := &malsched.Instance{
		M: 4,
		Tasks: []malsched.Task{
			malsched.NewTask("prepare", []float64{8, 4.5, 3.4, 2.9}),
			malsched.PowerLawTask("solveA", 20, 0.85, 4),
			malsched.AmdahlTask("solveB", 16, 0.15, 4),
			malsched.NewTask("merge", []float64{6, 3.4, 2.6, 2.2}),
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := malsched.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := malsched.Verify(inst, res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine:      m=%d identical processors\n", inst.M)
	fmt.Printf("parameters:   mu=%d rho=%.3f (Theorem 4.1 ratio %.4f)\n",
		res.Mu, res.Rho, res.ProvenRatio)
	fmt.Printf("makespan:     %.4f\n", res.Makespan)
	fmt.Printf("lower bound:  %.4f  =>  within %.2fx of optimal\n",
		res.LowerBound, res.Guarantee)
	fmt.Println()
	for j, it := range res.Schedule.Items {
		fmt.Printf("%-8s  %d procs  [%7.4f, %7.4f)\n",
			inst.Tasks[j].Name, it.Alloc, it.Start, it.Start+it.Duration)
	}
	fmt.Println()
	if err := malsched.Gantt(os.Stdout, res.Schedule, 64); err != nil {
		log.Fatal(err)
	}
}
