package malsched

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"malsched/internal/gen"
)

// layeredInstance builds the bench suite's layered shape (width 20, fan-in
// 3, mixed task families) as a public Instance.
func layeredInstance(n, m int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	const w = 20
	g := gen.Layered(n/w, w, 3, rng)
	ai := gen.Instance(g, gen.FamilyMixed, m, rng)
	in := &Instance{M: m, Tasks: ai.Tasks}
	for v := 0; v < g.N(); v++ {
		for _, succ := range g.Succs(v) {
			in.Edges = append(in.Edges, [2]int{v, succ})
		}
	}
	return in
}

// A solve submitted with an already-cancelled context must fail with the
// context's error immediately — no worker slot, no validation, no solve.
func TestPoolSolveAlreadyCancelled(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	in := layeredInstance(40, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, algo := range []Algorithm{AlgoPaper, AlgoGreedyCP} {
		t0 := time.Now()
		res, err := p.SolveAlgo(ctx, algo, in)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
		if res != nil {
			t.Fatalf("%v: got a result from a cancelled solve", algo)
		}
		if d := time.Since(t0); d > 100*time.Millisecond {
			t.Fatalf("%v: cancelled solve took %v, want immediate return", algo, d)
		}
	}
}

// The acceptance bar for cancellation latency: a cold paper solve of the
// n=2000/m=64 layered scenario must return within cancelLatencyBudget of
// its context being cancelled (the budget is build-dependent — see
// cancel_budget_*_test.go). The solver polls its cancel flag every simplex
// pivot and every 1024 phase-2 scheduling steps, so the bound holds no
// matter where in the pipeline the cancellation lands.
func TestPaperSolveCancelsWithinBudget(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	in := layeredInstance(2000, 64, 9)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := p.Solve(ctx, in)
		done <- outcome{err: err, at: time.Now()}
	}()

	// Let the solve get well inside phase 1 before pulling the plug.
	time.Sleep(250 * time.Millisecond)
	select {
	case o := <-done:
		// The machine solved 2000 tasks faster than the warm-up sleep;
		// nothing to cancel. The budget assertion is vacuous here, but
		// the pre-cancelled path is covered above.
		if o.err != nil {
			t.Fatalf("solve failed before cancellation: %v", o.err)
		}
		t.Skip("solve finished before cancellation could be exercised")
	default:
	}
	cancelled := time.Now()
	cancel()
	o := <-done
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.err)
	}
	if lat := o.at.Sub(cancelled); lat > cancelLatencyBudget {
		t.Fatalf("solve took %v to abort after cancellation (budget %v)", lat, cancelLatencyBudget)
	}
}
