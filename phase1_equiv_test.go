package malsched

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"malsched/internal/allot"
)

// TestPhase1MatchesReferenceOnCanned pins the lazy sparse phase 1 to the
// full dense reference build on every canned instance under testdata/ —
// the same instances every solver and the CLI run — completing the
// acceptance matrix: random DAG families are covered in
// internal/allot/lazy_test.go, the committed corpus here.
func TestPhase1MatchesReferenceOnCanned(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata instances found: %v", err)
	}
	ws := allot.NewWorkspace()
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			in, err := ReadJSON(f)
			if err != nil {
				t.Fatal(err)
			}
			ai, err := in.internal()
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := allot.SolveLPWith(ai, ws)
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			ref, err := allot.SolveLPReference(ai)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if d := math.Abs(sparse.C - ref.C); d > 1e-6*(1+math.Abs(ref.C)) {
				t.Errorf("optimum differs by %v: sparse %v, reference %v", d, sparse.C, ref.C)
			}
			if lb := math.Max(sparse.L, sparse.W/float64(ai.M)); lb > sparse.C+1e-6*(1+sparse.C) {
				t.Errorf("lower-bound certificate broken: max{L,W/m}=%v > C*=%v", lb, sparse.C)
			}
			// The parametric min-cut sweep must land on the same optimum
			// on the committed corpus (random families are covered in
			// internal/allot/mincut_test.go).
			ws.ForceFormulation = allot.FormulationMincut
			mc, err := allot.SolveLPWith(ai, ws)
			ws.ForceFormulation = ""
			if err != nil {
				t.Fatalf("mincut: %v", err)
			}
			if mc.Formulation != allot.FormulationMincut {
				t.Fatalf("mincut pin solved via %q", mc.Formulation)
			}
			if d := math.Abs(mc.C - ref.C); d > 1e-6*(1+math.Abs(ref.C)) {
				t.Errorf("mincut optimum differs by %v: mincut %v, reference %v", d, mc.C, ref.C)
			}
			if lb := math.Max(mc.L, mc.W/float64(ai.M)); lb > mc.C+1e-6*(1+mc.C) {
				t.Errorf("mincut certificate broken: max{L,W/m}=%v > C*=%v", lb, mc.C)
			}
		})
	}
}
