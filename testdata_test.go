package malsched

import (
	"os"
	"path/filepath"
	"testing"
)

// The canned instances under testdata/ are the CLI's reference inputs;
// every solver must handle all of them and every result must verify and
// stay within its proven ratio.
func TestCannedInstances(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata instances found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			in, err := ReadJSON(f)
			if err != nil {
				t.Fatalf("instance invalid: %v", err)
			}
			ours, err := Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(in, ours); err != nil {
				t.Fatal(err)
			}
			if ours.Guarantee > ours.ProvenRatio+1e-9 {
				t.Errorf("guarantee %.4f exceeds proven %.4f", ours.Guarantee, ours.ProvenRatio)
			}
			for name, solve := range map[string]func(*Instance) (*Result, error){
				"ltw": SolveLTW, "seq": SolveSequential, "greedy": SolveGreedyCP, "full": SolveFullAllotment,
			} {
				res, err := solve(in)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := Verify(in, res); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				if res.Makespan < ours.LowerBound-1e-9 {
					t.Errorf("%s beat the certified lower bound", name)
				}
			}
		})
	}
}
