package malsched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testBatch loads every canned instance (plus a few synthetic ones) as the
// reference batch for pool tests.
func testBatch(t *testing.T) []*Instance {
	t.Helper()
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata instances: %v", err)
	}
	var ins []*Instance
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		in, err := ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ins = append(ins, in)
	}
	ins = append(ins, exampleInstance())
	return ins
}

// fingerprint renders every observable field of a result so comparisons
// across solver paths are byte-level, not approximate.
func fingerprint(res *Result) string {
	return fmt.Sprintf("%.17g|%.17g|%.17g|%v|%d|%.17g|%.17g|%+v",
		res.Makespan, res.LowerBound, res.Guarantee, res.Alloc,
		res.Mu, res.Rho, res.ProvenRatio, res.Schedule.Items)
}

func TestPoolMatchesSequentialSolve(t *testing.T) {
	ins := testBatch(t)
	pool := NewPool(4)
	defer pool.Close()
	out := pool.SolveBatch(context.Background(), ins)
	if len(out) != len(ins) {
		t.Fatalf("got %d outcomes for %d instances", len(out), len(ins))
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("instance %d: %v", i, o.Err)
		}
		seq, err := Solve(ins[i])
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(o.Result) != fingerprint(seq) {
			t.Errorf("instance %d: pool result differs from sequential Solve:\n%s\n%s",
				i, fingerprint(o.Result), fingerprint(seq))
		}
		if err := Verify(ins[i], o.Result); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
}

func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	ins := testBatch(t)
	var reference []string
	for _, workers := range []int{1, 2, 8} {
		pool := NewPool(workers)
		// Two rounds per pool: the second runs on warm workspaces and must
		// still be byte-identical.
		for round := 0; round < 2; round++ {
			out := pool.SolveBatch(context.Background(), ins)
			var got []string
			for i, o := range out {
				if o.Err != nil {
					t.Fatalf("workers=%d round=%d instance %d: %v", workers, round, i, o.Err)
				}
				got = append(got, fingerprint(o.Result))
			}
			if reference == nil {
				reference = got
				continue
			}
			for i := range got {
				if got[i] != reference[i] {
					t.Errorf("workers=%d round=%d instance %d: result differs from workers=1",
						workers, round, i)
				}
			}
		}
		pool.Close()
	}
}

func TestPoolIsolatesInstanceErrors(t *testing.T) {
	good := exampleInstance()
	bad := &Instance{M: 2, Tasks: []Task{NewTask("x", []float64{1, 2})}} // increasing times
	pool := NewPool(2)
	defer pool.Close()
	out := pool.SolveBatch(context.Background(), []*Instance{good, bad, nil, good})
	if out[0].Err != nil || out[3].Err != nil {
		t.Errorf("healthy instances failed: %v %v", out[0].Err, out[3].Err)
	}
	if out[1].Err == nil {
		t.Error("invalid instance did not error")
	}
	if out[2].Err == nil {
		t.Error("nil instance did not error")
	}
	if out[0].Result == nil || out[0].Result.Makespan <= 0 {
		t.Errorf("degenerate result alongside failures: %+v", out[0].Result)
	}
}

func TestPoolSolveSingle(t *testing.T) {
	pool := NewPool(2, WithMu(2))
	defer pool.Close()
	in := exampleInstance()
	res, err := pool.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mu != 2 {
		t.Errorf("pool-level option ignored: mu=%d", res.Mu)
	}
	// Per-call options override pool options.
	res, err = pool.Solve(context.Background(), in, WithMu(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mu != 1 {
		t.Errorf("per-call option ignored: mu=%d", res.Mu)
	}
}

func TestPoolCancelledContext(t *testing.T) {
	ins := testBatch(t)
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, o := range pool.SolveBatch(ctx, ins) {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("instance %d: err=%v, want context.Canceled", i, o.Err)
		}
		if o.Result != nil {
			t.Errorf("instance %d: result produced under cancelled context", i)
		}
	}
	if _, err := pool.Solve(ctx, ins[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Solve: err=%v, want context.Canceled", err)
	}
}

func TestPoolClosed(t *testing.T) {
	pool := NewPool(1)
	pool.Close()
	if _, err := pool.Solve(context.Background(), exampleInstance()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Solve on closed pool: %v, want ErrPoolClosed", err)
	}
}

// TestPoolConcurrentSolvers stresses concurrent Pool.Solve callers sharing
// one pool; run with -race this checks the worker/workspace handoff.
func TestPoolConcurrentSolvers(t *testing.T) {
	ins := testBatch(t)
	pool := NewPool(4)
	defer pool.Close()
	want := make([]string, len(ins))
	for i, in := range ins {
		res, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(res)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 12; k++ {
				i := rng.Intn(len(ins))
				res, err := pool.Solve(context.Background(), ins[i])
				if err != nil {
					t.Errorf("instance %d: %v", i, err)
					return
				}
				if fingerprint(res) != want[i] {
					t.Errorf("instance %d: concurrent result differs from sequential", i)
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
}

// TestPoolCancelMidBatch cancels while the first solve of a batch is
// running on a single worker: the started solve must terminate promptly —
// completing if it beats the cancellation to the finish, or aborting with
// the context's error at a cancel-flag checkpoint (the race between the
// two is real and both outcomes are correct) — everything still queued
// must fail with the context's error, and the pool must stay usable.
func TestPoolCancelMidBatch(t *testing.T) {
	ins := testBatch(t)
	if len(ins) < 3 {
		t.Fatal("need at least 3 instances")
	}
	pool := NewPool(1)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	// Options run on the worker inside the solve, so this gate suspends the
	// first job mid-flight; jobs skipped after cancellation never reach it.
	gate := Option(func(o *solveConfig) {
		once.Do(func() { close(started) })
		<-release
	})
	go func() {
		<-started
		cancel()
		close(release)
	}()

	out := pool.SolveBatch(ctx, ins, gate)
	switch {
	case out[0].Err == nil:
		if out[0].Result == nil || out[0].Result.Makespan <= 0 {
			t.Errorf("started solve completed without a usable result: %+v", out[0].Result)
		}
	case errors.Is(out[0].Err, context.Canceled):
		if out[0].Result != nil {
			t.Errorf("started solve aborted but still produced a result")
		}
	default:
		t.Errorf("started solve: err=%v, want completion or context.Canceled", out[0].Err)
	}
	for i := 1; i < len(out); i++ {
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Errorf("queued instance %d: err=%v, want context.Canceled", i, out[i].Err)
		}
		if out[i].Result != nil {
			t.Errorf("queued instance %d produced a result after cancellation", i)
		}
	}
	// The worker survived the interrupted batch.
	if _, err := pool.Solve(context.Background(), ins[0]); err != nil {
		t.Errorf("pool unusable after cancelled batch: %v", err)
	}
}

// TestPoolRecoversPanickingSolve drives a panic through the public API (an
// option that panics stands in for any instance whose solve panics): the
// panicking job must come back as an error, siblings must be unaffected,
// and the worker must survive.
func TestPoolRecoversPanickingSolve(t *testing.T) {
	ins := testBatch(t)[:3]
	pool := NewPool(1) // serial execution: jobs run in submission order
	defer pool.Close()

	calls := 0
	boomSecond := Option(func(o *solveConfig) {
		calls++
		if calls == 2 {
			panic("kaboom")
		}
	})
	out := pool.SolveBatch(context.Background(), ins, boomSecond)
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "panic") {
		t.Errorf("panicking instance: err=%v, want panic error", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || out[i].Result == nil {
			t.Errorf("sibling %d: err=%v result=%v, want success", i, out[i].Err, out[i].Result)
		}
	}

	boomAlways := Option(func(o *solveConfig) { panic("kaboom") })
	if res, err := pool.Solve(context.Background(), ins[0], boomAlways); err == nil || res != nil {
		t.Errorf("Solve with panicking job: res=%v err=%v, want error", res, err)
	}
	if _, err := pool.Solve(context.Background(), ins[0]); err != nil {
		t.Errorf("pool unusable after panic: %v", err)
	}
}

// TestPoolZeroWorkerConfig: workers <= 0 means GOMAXPROCS, never a stuck
// zero-worker pool.
func TestPoolZeroWorkerConfig(t *testing.T) {
	for _, w := range []int{0, -7} {
		pool := NewPool(w)
		if pool.Workers() < 1 {
			t.Fatalf("NewPool(%d).Workers() = %d, want >= 1", w, pool.Workers())
		}
		if _, err := pool.Solve(context.Background(), exampleInstance()); err != nil {
			t.Errorf("NewPool(%d): solve failed: %v", w, err)
		}
		pool.Close()
	}
}

// TestPoolSolveAlgoMatchesTopLevel: every algorithm routed through the
// pool's workspace-reusing path must reproduce the top-level functions
// byte for byte.
func TestPoolSolveAlgoMatchesTopLevel(t *testing.T) {
	ins := testBatch(t)
	pool := NewPool(2)
	defer pool.Close()
	direct := map[Algorithm]func(*Instance) (*Result, error){
		AlgoPaper:         func(in *Instance) (*Result, error) { return Solve(in) },
		AlgoLTW:           SolveLTW,
		AlgoGreedyCP:      SolveGreedyCP,
		AlgoSequential:    SolveSequential,
		AlgoFullAllotment: SolveFullAllotment,
	}
	for algo, f := range direct {
		for i, in := range ins {
			want, err := f(in)
			if err != nil {
				t.Fatalf("%v direct instance %d: %v", algo, i, err)
			}
			got, err := pool.SolveAlgo(context.Background(), algo, in)
			if err != nil {
				t.Fatalf("%v pooled instance %d: %v", algo, i, err)
			}
			if fingerprint(got) != fingerprint(want) {
				t.Errorf("%v instance %d: pooled result differs from direct", algo, i)
			}
		}
	}
}

func TestPoolSolveAlgoErrors(t *testing.T) {
	pool := NewPool(1)
	if _, err := pool.SolveAlgo(context.Background(), AlgoLTW, nil); err == nil {
		t.Error("nil instance did not error")
	}
	if _, err := pool.SolveAlgo(context.Background(), Algorithm(99), exampleInstance()); err == nil {
		t.Error("unknown algorithm did not error")
	}
	pool.Close()
	if _, err := pool.SolveAlgo(context.Background(), AlgoPaper, exampleInstance()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("closed pool: err=%v, want ErrPoolClosed", err)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, algo := range []Algorithm{AlgoPaper, AlgoLTW, AlgoGreedyCP, AlgoSequential, AlgoFullAllotment} {
		got, err := ParseAlgorithm(algo.String())
		if err != nil || got != algo {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", algo.String(), got, err)
		}
	}
	for alias, want := range map[string]Algorithm{"ours": AlgoPaper, "sequential": AlgoSequential} {
		if got, err := ParseAlgorithm(alias); err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v, want %v", alias, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Error("unknown name did not error")
	}
}
