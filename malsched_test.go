package malsched

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func exampleInstance() *Instance {
	return &Instance{
		M: 4,
		Tasks: []Task{
			PowerLawTask("a", 8, 0.8, 4),
			PowerLawTask("b", 12, 0.6, 4),
			AmdahlTask("c", 10, 0.2, 4),
			CappedLinearTask("d", 6, 2, 4),
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
	}
}

func TestSolveEndToEnd(t *testing.T) {
	in := exampleInstance()
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(in, res); err != nil {
		t.Fatal(err)
	}
	if res.Guarantee > res.ProvenRatio+1e-9 {
		t.Errorf("guarantee %.4f exceeds proven ratio %.4f", res.Guarantee, res.ProvenRatio)
	}
	if res.Makespan <= 0 || res.LowerBound <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	mu, rho, ratio := Params(4)
	if res.Mu != mu || res.Rho != rho || res.ProvenRatio != ratio {
		t.Errorf("parameters differ from Params(4): %+v vs (%d,%v,%v)", res, mu, rho, ratio)
	}
}

func TestSolveOptions(t *testing.T) {
	in := exampleInstance()
	res, err := Solve(in, WithRho(0.5), WithMu(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 0.5 || res.Mu != 2 {
		t.Errorf("options ignored: rho=%v mu=%d", res.Rho, res.Mu)
	}
	for j, l := range res.Alloc {
		if l > 2 {
			t.Errorf("task %d allotted %d > mu", j, l)
		}
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	bad := &Instance{M: 2, Tasks: []Task{NewTask("x", []float64{1, 2})}}
	if bad.Validate() == nil {
		t.Error("increasing processing time accepted")
	}
	cyc := exampleInstance()
	cyc.Edges = append(cyc.Edges, [2]int{3, 0})
	if cyc.Validate() == nil {
		t.Error("cycle accepted")
	}
	rng := &Instance{M: 2, Tasks: []Task{NewTask("x", []float64{2, 1})}, Edges: [][2]int{{0, 5}}}
	if rng.Validate() == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestBaselinesAndComparison(t *testing.T) {
	in := exampleInstance()
	ours, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(*Instance) (*Result, error){
		"ltw": SolveLTW, "seq": SolveSequential, "greedy": SolveGreedyCP, "full": SolveFullAllotment,
	} {
		res, err := f(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(in, res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if res.Makespan < ours.LowerBound-1e-9 {
			t.Errorf("%s beat the LP lower bound: %v < %v", name, res.Makespan, ours.LowerBound)
		}
	}
}

func TestOptimalAgreesOnTinyInstance(t *testing.T) {
	in := &Instance{
		M: 2,
		Tasks: []Task{
			NewTask("a", []float64{4, 2}),
			NewTask("b", []float64{4, 2}),
		},
		Edges: [][2]int{{0, 1}},
	}
	opt, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-4) > 1e-9 {
		t.Errorf("OPT = %v, want 4", opt)
	}
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < opt-1e-9 {
		t.Errorf("algorithm beat OPT: %v < %v", res.Makespan, opt)
	}
	if res.Makespan > res.ProvenRatio*opt+1e-9 {
		t.Errorf("ratio violated: %v > %v * %v", res.Makespan, res.ProvenRatio, opt)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := exampleInstance()
	var b strings.Builder
	if err := WriteJSON(&b, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.M != in.M || len(back.Tasks) != len(in.Tasks) || len(back.Edges) != len(in.Edges) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.Tasks[0].Name != "a" || back.Tasks[0].Times[0] != in.Tasks[0].Times[0] {
		t.Errorf("task content lost: %+v", back.Tasks[0])
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"m":2,"tasks":[{"Name":"x","Times":[1,2]}],"edges":[]}`)); err == nil {
		t.Error("assumption-violating instance accepted")
	}
}

func TestGanttRendering(t *testing.T) {
	in := exampleInstance()
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Gantt(&b, res.Schedule, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "P00") {
		t.Errorf("gantt output missing rows:\n%s", b.String())
	}
}

func TestRandomTaskHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	task := RandomTask("r", 10, 6, rng)
	if err := task.Validate(6); err != nil {
		t.Errorf("RandomTask violates assumptions: %v", err)
	}
}
