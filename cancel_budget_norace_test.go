//go:build !race

package malsched

import "time"

// cancelLatencyBudget bounds how long a running solve may take to notice
// cancellation and return. The solver polls its cancel flag every simplex
// pivot and every scheduling chunk, so 50ms is generous on a plain build;
// the race-detector build (see cancel_budget_race_test.go) relaxes it —
// instrumentation slows individual pivots by an order of magnitude.
const cancelLatencyBudget = 50 * time.Millisecond
