module malsched

go 1.22
