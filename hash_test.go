package malsched

import (
	"bytes"
	"math"
	"regexp"
	"testing"
)

func fpInstance() *Instance {
	return &Instance{
		M: 8,
		Tasks: []Task{
			PowerLawTask("prep", 10, 0.8, 8),
			PowerLawTask("solve", 40, 0.9, 8),
			AmdahlTask("post", 5, 0.2, 8),
		},
		Edges: [][2]int{{0, 1}, {1, 2}},
	}
}

func TestFingerprintShape(t *testing.T) {
	fp := fpInstance().Fingerprint()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(fp) {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	if fpInstance().Fingerprint() != fpInstance().Fingerprint() {
		t.Fatal("same instance hashed twice gives different fingerprints")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a, b := fpInstance(), fpInstance()
	for i := range b.Tasks {
		b.Tasks[i].Name = "renamed"
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("renaming tasks changed the fingerprint")
	}
}

func TestFingerprintIgnoresEdgeOrderAndDuplicates(t *testing.T) {
	a, b := fpInstance(), fpInstance()
	b.Edges = [][2]int{{1, 2}, {0, 1}, {1, 2}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("edge permutation + duplicate changed the fingerprint")
	}
}

// midQuantum moves p to the middle of its quantization bucket, so that
// sub-quantum noise cannot straddle a rounding boundary. Quantization is a
// round, not an interval map: noise landing exactly on a boundary still
// flips the bucket, and the absorption guarantee is only for values away
// from one — which is what this helper sets up.
func midQuantum(p float64) float64 {
	bits := math.Float64bits(p)
	bits = bits&^0xFFF | 0x400
	return math.Float64frombits(bits)
}

func TestFingerprintQuantizesFloatNoise(t *testing.T) {
	a, b := fpInstance(), fpInstance()
	for i := range a.Tasks {
		for l := range a.Tasks[i].Times {
			p := midQuantum(a.Tasks[i].Times[l])
			a.Tasks[i].Times[l] = p
			b.Tasks[i].Times[l] = p * (1 + 1e-14) // well below the 40-bit quantum
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("sub-quantum float noise changed the fingerprint")
	}
}

func TestQuantize(t *testing.T) {
	if quantize(math.NaN()) != quantize(math.Float64frombits(0x7FF8000000000001)) {
		t.Error("NaN payloads not canonicalized")
	}
	if quantize(math.Inf(1)) != math.Float64bits(math.Inf(1)) || quantize(math.Inf(-1)) != math.Float64bits(math.Inf(-1)) {
		t.Error("infinities not preserved")
	}
	if quantize(1.0) != math.Float64bits(1.0) {
		t.Error("exactly representable value moved")
	}
	// A value a hair under a power of two rounds onto it (carry into the
	// exponent), matching how decimal rounding would behave.
	just := math.Float64frombits(math.Float64bits(2.0) - 1)
	if quantize(just) != math.Float64bits(2.0) {
		t.Errorf("carry rounding: quantize(%x) = %x, want bits of 2.0", just, quantize(just))
	}
	// The two float zeros compare equal and schedule identically, so they
	// must fingerprint identically (the sign bit would otherwise split
	// cache entries for the same problem).
	if quantize(math.Copysign(0, -1)) != quantize(0.0) {
		t.Error("-0.0 and +0.0 quantize differently")
	}
}

// TestFingerprintZeroSign: instances differing only in the sign of a zero
// processing time describe the same scheduling problem and must share a
// fingerprint. (Zero times are invalid for solving, but Fingerprint is
// total and the serving layer keys its cache before validation.)
func TestFingerprintZeroSign(t *testing.T) {
	mk := func(z float64) *Instance {
		return &Instance{
			M:     2,
			Tasks: []Task{NewTask("a", []float64{z, z})},
		}
	}
	if mk(math.Copysign(0, -1)).Fingerprint() != mk(0).Fingerprint() {
		t.Error("fingerprints split on the sign of a zero processing time")
	}
}

func TestFingerprintSeparatesDifferentInstances(t *testing.T) {
	base := fpInstance()
	seen := map[string]string{base.Fingerprint(): "base"}
	record := func(name string, in *Instance) {
		fp := in.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	m := fpInstance()
	m.M = 4
	record("different m", m)

	edge := fpInstance()
	edge.Edges = [][2]int{{0, 1}}
	record("dropped edge", edge)

	edgeFlip := fpInstance()
	edgeFlip.Edges = [][2]int{{1, 0}, {1, 2}}
	record("reversed edge", edgeFlip)

	times := fpInstance()
	times.Tasks[0].Times[3] *= 1.001 // well above the quantum
	record("perturbed time", times)

	perm := fpInstance()
	perm.Tasks[0], perm.Tasks[1] = perm.Tasks[1], perm.Tasks[0]
	record("swapped tasks", perm)

	fewer := fpInstance()
	fewer.Tasks = fewer.Tasks[:2]
	fewer.Edges = [][2]int{{0, 1}}
	record("fewer tasks", fewer)
}

// Task/edge counts must be framed: two tasks of 2 and 4 times must not hash
// like two tasks of 3 and 3 times, and a time moving across a task boundary
// must change the hash.
func TestFingerprintFraming(t *testing.T) {
	a := &Instance{M: 2, Tasks: []Task{
		{Times: []float64{4, 2}},
		{Times: []float64{6, 3, 2, 1}},
	}}
	b := &Instance{M: 2, Tasks: []Task{
		{Times: []float64{4, 2, 6}},
		{Times: []float64{3, 2, 1}},
	}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("task boundary shift did not change the fingerprint")
	}
}

func TestFingerprintTotalOnWeirdValues(t *testing.T) {
	in := &Instance{M: 1, Tasks: []Task{{Times: []float64{math.Inf(1)}}, {Times: []float64{math.NaN()}}}}
	fp1 := in.Fingerprint()
	in2 := &Instance{M: 1, Tasks: []Task{{Times: []float64{math.Inf(1)}}, {Times: []float64{math.NaN()}}}}
	if fp1 != in2.Fingerprint() {
		t.Error("non-finite values do not hash deterministically")
	}
}

// TestStructureFingerprintSharedAcrossNumbers: the structure fingerprint
// identifies the DAG shape only — instances equal in shape but differing in
// processing times must share the structure fingerprint while their full
// fingerprints differ. This is the delta path's admission condition: a
// cached basis is transplantable exactly when the LP layout matches, and
// the layout depends only on structure.
func TestStructureFingerprintSharedAcrossNumbers(t *testing.T) {
	a, b := fpInstance(), fpInstance()
	for i := range b.Tasks {
		for l := range b.Tasks[i].Times {
			b.Tasks[i].Times[l] *= 1.37 // scaling preserves monotonicity + concavity
		}
	}
	if a.StructureFingerprint() != b.StructureFingerprint() {
		t.Error("same shape, different numbers: structure fingerprints differ")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different numbers share a full fingerprint")
	}
}

func TestStructureFingerprintShape(t *testing.T) {
	sfp := fpInstance().StructureFingerprint()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(sfp) {
		t.Fatalf("structure fingerprint %q is not 64 hex chars", sfp)
	}
	if sfp == fpInstance().Fingerprint() {
		t.Fatal("structure fingerprint equals the full fingerprint")
	}
}

func TestStructureFingerprintIgnoresNamesAndEdgeNoise(t *testing.T) {
	a, b := fpInstance(), fpInstance()
	for i := range b.Tasks {
		b.Tasks[i].Name = "renamed"
	}
	b.Edges = [][2]int{{1, 2}, {0, 1}, {1, 2}}
	if a.StructureFingerprint() != b.StructureFingerprint() {
		t.Error("names / edge permutation + duplicate changed the structure fingerprint")
	}
}

func TestStructureFingerprintSeparatesShapes(t *testing.T) {
	base := fpInstance()
	seen := map[string]string{base.StructureFingerprint(): "base"}
	record := func(name string, in *Instance) {
		sfp := in.StructureFingerprint()
		if prev, dup := seen[sfp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[sfp] = name
	}

	m := fpInstance()
	m.M = 4
	record("different m", m)

	edge := fpInstance()
	edge.Edges = [][2]int{{0, 1}}
	record("dropped edge", edge)

	fewer := fpInstance()
	fewer.Tasks = fewer.Tasks[:2]
	fewer.Edges = [][2]int{{0, 1}}
	record("fewer tasks", fewer)

	widths := fpInstance()
	widths.Tasks[0].Times = widths.Tasks[0].Times[:4]
	record("shorter times vector", widths)
}

// The fingerprint must survive the package's own JSON round-trip: serving a
// stored instance back through the API must hit the same cache entry.
func TestFingerprintStableUnderJSONRoundTrip(t *testing.T) {
	in := fpInstance()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in.Fingerprint() != back.Fingerprint() {
		t.Error("JSON round-trip changed the fingerprint")
	}
}
