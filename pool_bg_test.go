package malsched

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTrySolveBackgroundMatchesForeground: a background solve must produce
// exactly the result a foreground solve of the same instance does (same
// workspaces, same algorithm path), delivered via the callback.
func TestTrySolveBackgroundMatchesForeground(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	in := exampleInstance()

	want, err := pool.SolveAlgo(context.Background(), AlgoPaper, in)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got *Result
	var gotErr error
	ok := pool.TrySolveBackground(AlgoPaper, in, func(res *Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		got, gotErr = res, err
	})
	if !ok {
		t.Fatal("background solve rejected on an idle pool")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := got != nil || gotErr != nil
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background solve did not complete within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Errorf("background result differs from foreground:\n bg %s\n fg %s", fingerprint(got), fingerprint(want))
	}
}

// TestTrySolveBackgroundRejectsBadArgs: nil instance or callback, and a
// closed pool, must refuse without running anything.
func TestTrySolveBackgroundRejectsBadArgs(t *testing.T) {
	pool := NewPool(1)
	in := exampleInstance()
	noop := func(*Result, error) {}
	if pool.TrySolveBackground(AlgoPaper, nil, noop) {
		t.Error("nil instance accepted")
	}
	if pool.TrySolveBackground(AlgoPaper, in, nil) {
		t.Error("nil callback accepted")
	}
	pool.Close()
	if pool.TrySolveBackground(AlgoPaper, in, noop) {
		t.Error("closed pool accepted a background solve")
	}
}
