# Targets mirror .github/workflows/ci.yml one-for-one, so a green `make ci`
# locally means a green pipeline.

GO ?= go

# The benchmark-smoke selection (verified against go test's slash-split
# -bench matching): Phase1LP, WorkspaceReuse/*, PoolThroughput/*,
# Phase2List (List$ matches its suffix; 27us, harmless), the phase-2
# profile scheduler at large n (BenchmarkList/*), and the retained
# reference implementation on its layered scenarios only — the reference
# on the erdos and saturated scenarios takes minutes per run and stays
# local-only (go test -bench ListReference .).
BENCH_SMOKE = Phase1LP|WorkspaceReuse|PoolThroughput|List$$|ListReference/layered

# The benchmarks the CI regression gate fails on (>25% ns/op growth vs the
# previous push's baseline): the phase-1 LP scenarios — including the PR-5
# additions that pin the devex/preprocessing/segment-formulation speedups
# (layered_n500_m32 and erdos_n500_m48 on the segment route,
# layered_n1000_m64 and layered_n2000_m64 on the lazy dual-restart route) —
# the phase-2 profile scheduler scenarios, and the serving paths — both
# the v1 solve/cache path (BenchmarkServe) and the v2 delta re-solve path
# (BenchmarkServeDelta, whose delta_warm/delta_cold counters benchgate
# shows next to the timings). Deliberately excludes the micro-benchmarks
# (Phase2List at 27us would gate on scheduler jitter).
BENCH_KEY = BenchmarkPhase1LP/|BenchmarkList/|BenchmarkServe/|BenchmarkServeDelta/

.PHONY: all build test race bench bench-json bench-gate chaos cover lint lint-selftest staticcheck govulncheck fuzz-smoke ci testdata

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI smoke job runs the same benchmarks with -benchtime=1x; locally the
# default benchtime gives stable numbers.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SMOKE)' -benchmem .

# Machine-readable benchmark records, one file per subsystem (seed copies
# are committed so the repo's bench trajectory has a baseline; CI uploads
# fresh ones per push and gates on them, see bench-gate). The files are
# go test -json streams; the Output fields carry the standard benchmark
# lines, so `jq -r 'select(.Action=="output").Output' | benchstat -` feeds
# them straight into benchstat, and cmd/benchgate parses them directly.
bench-json:
	$(GO) test -run '^$$' -bench 'Phase1LP|Phase1Reference/erdos|WorkspaceReuse' -benchtime=1x -benchmem -json . > BENCH_phase1.json
	$(GO) test -run '^$$' -bench 'List$$|ListReference/layered' -benchtime=1x -benchmem -json . > BENCH_phase2.json
	$(GO) test -run '^$$' -bench 'Serve' -benchtime=1x -benchmem -json ./internal/server > BENCH_serve.json

# Benchmark-regression gate: compare the current bench-json records against
# the previous run's copies in bench-baseline/ (CI restores that directory
# from the previous push via actions/cache; locally: mkdir bench-baseline &&
# cp BENCH_*.json bench-baseline/ before changing code). Missing baseline
# files seed instead of failing.
bench-gate:
	@for f in BENCH_phase1.json BENCH_phase2.json BENCH_serve.json; do \
		$(GO) run ./cmd/benchgate -baseline bench-baseline/$$f -current $$f \
			-key '$(BENCH_KEY)' -threshold 1.25 || exit 1; \
	done

# Fault-injection chaos run: the full loadgen-shaped workload at 500
# concurrent clients under the race detector, with every fault point armed
# at its CI rate and a fixed seed (the fault pattern is deterministic, so a
# red run reproduces bit-for-bit with the same seed). Mirrors the CI chaos
# job. Override the knobs like: make chaos CHAOS_CLIENTS=100 CHAOS_SEED=7
CHAOS_CLIENTS ?= 500
CHAOS_REQUESTS ?= 4
CHAOS_SEED ?= 1
chaos:
	$(GO) test -race -count=1 -run '^TestChaos$$' -v ./internal/server \
		-chaos.clients=$(CHAOS_CLIENTS) -chaos.requests=$(CHAOS_REQUESTS) -chaos.seed=$(CHAOS_SEED)

# Coverage profile + per-package summary + the internal/server floor the CI
# coverage job enforces (soft there, hard here). The extraction demands
# exactly one internal/server coverage line: zero means the package was
# skipped or renamed (a floor silently comparing "" >= 70 would pass), more
# than one means the grep is matching something it shouldn't — either way
# the target fails loudly instead of green-lighting garbage.
cover:
	$(GO) test -coverprofile=cover.out ./... > coverage.txt || { cat coverage.txt; exit 1; }
	@cat coverage.txt
	$(GO) tool cover -func=cover.out | tail -1
	@lines=$$(grep -o 'malsched/internal/server[[:space:]].*coverage: [0-9.]*' coverage.txt || true); \
	n=$$(printf '%s\n' "$$lines" | grep -c 'coverage:' || true); \
	if [ "$$n" -ne 1 ]; then \
		echo "cover: expected exactly one internal/server coverage line, found $$n" >&2; exit 1; \
	fi; \
	pct=$$(printf '%s\n' "$$lines" | grep -o '[0-9.]*$$'); \
	echo "internal/server coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { exit !(p >= 70) }' || { echo "internal/server below 70% floor" >&2; exit 1; }

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/malschedvet ./...

# Proves the lint gate can actually fail: the malschedvet self-tests build a
# scratch module, inject a known violation, and assert a nonzero exit (plus
# the clean-module and clean-repo passes). CI runs this next to lint so a
# silently-broken analyzer suite cannot keep rubber-stamping pushes.
lint-selftest:
	$(GO) test -count=1 ./cmd/malschedvet ./internal/analysis/...

# staticcheck runs when the binary is available (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@2024.1.1) and is skipped
# with a notice otherwise, so offline machines still get a green make ci.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (see Makefile for install hint)"; \
	fi

# govulncheck mirrors the staticcheck pattern: run when installed (locally:
# go install golang.org/x/vuln/cmd/govulncheck@latest), skip with a notice
# otherwise so offline machines still get a green make ci.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (see Makefile for install hint)"; \
	fi

# Short deterministic fuzz pass over the parsing/quantization surfaces; the
# corpora under testdata/fuzz (if any) plus 10s of generated inputs each.
# Mirrors the CI fuzz-smoke step. Longer local sessions: go test
# -fuzz FuzzQuantize -fuzztime 5m .
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseAlgorithm$$' -fuzztime=10s .
	$(GO) test -run '^$$' -fuzz '^FuzzParseFormulation$$' -fuzztime=10s .
	$(GO) test -run '^$$' -fuzz '^FuzzQuantize$$' -fuzztime=10s .

ci: lint lint-selftest staticcheck govulncheck build race
	$(GO) test -run '^$$' -bench '$(BENCH_SMOKE)' -benchtime=1x -benchmem .

# Regenerate the canned instances under testdata/ (families x machine sizes
# used by TestCannedInstances and the pool tests).
testdata:
	$(GO) run ./cmd/geninstance -dag chain -family powerlaw -n 10 -m 4 -seed 101 > testdata/chain_n10_m4.json
	$(GO) run ./cmd/geninstance -dag chain -family mixed -n 12 -m 16 -seed 102 > testdata/chain_n12_m16.json
	$(GO) run ./cmd/geninstance -dag forkjoin -family amdahl -n 10 -m 4 -seed 103 > testdata/forkjoin_n10_m4.json
	$(GO) run ./cmd/geninstance -dag forkjoin -family mixed -n 14 -m 16 -seed 104 > testdata/forkjoin_n14_m16.json
	$(GO) run ./cmd/geninstance -dag erdos -family mixed -n 12 -m 4 -p 0.25 -seed 105 > testdata/erdos_n12_m4.json
	$(GO) run ./cmd/geninstance -dag erdos -family random -n 16 -m 16 -p 0.2 -seed 106 > testdata/erdos_n16_m16.json
	$(GO) run ./cmd/geninstance -dag layered -family mixed -n 12 -m 8 -seed 107 > testdata/layered_n12_m8.json
	$(GO) run ./cmd/geninstance -dag layered -family mixed -n 24 -m 8 -seed 108 > testdata/layered_n24_m8.json
	$(GO) run ./cmd/geninstance -dag erdos -family mixed -n 32 -m 16 -p 0.15 -seed 109 > testdata/erdos_n32_m16.json
	$(GO) run ./cmd/geninstance -dag independent -family mixed -n 64 -m 8 -seed 110 > testdata/independent_n64_m8.json
