# Targets mirror .github/workflows/ci.yml one-for-one, so a green `make ci`
# locally means a green pipeline.

GO ?= go

.PHONY: all build test race bench lint ci testdata

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI smoke job runs the same benchmarks with -benchtime=1x; locally the
# default benchtime gives stable numbers.
bench:
	$(GO) test -run '^$$' -bench 'Phase1LP|WorkspaceReuse|PoolThroughput' -benchmem .

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

ci: lint build race
	$(GO) test -run '^$$' -bench 'Phase1LP|WorkspaceReuse|PoolThroughput' -benchtime=1x -benchmem .

# Regenerate the canned instances under testdata/ (families x machine sizes
# used by TestCannedInstances and the pool tests).
testdata:
	$(GO) run ./cmd/geninstance -dag chain -family powerlaw -n 10 -m 4 -seed 101 > testdata/chain_n10_m4.json
	$(GO) run ./cmd/geninstance -dag chain -family mixed -n 12 -m 16 -seed 102 > testdata/chain_n12_m16.json
	$(GO) run ./cmd/geninstance -dag forkjoin -family amdahl -n 10 -m 4 -seed 103 > testdata/forkjoin_n10_m4.json
	$(GO) run ./cmd/geninstance -dag forkjoin -family mixed -n 14 -m 16 -seed 104 > testdata/forkjoin_n14_m16.json
	$(GO) run ./cmd/geninstance -dag erdos -family mixed -n 12 -m 4 -p 0.25 -seed 105 > testdata/erdos_n12_m4.json
	$(GO) run ./cmd/geninstance -dag erdos -family random -n 16 -m 16 -p 0.2 -seed 106 > testdata/erdos_n16_m16.json
	$(GO) run ./cmd/geninstance -dag layered -family mixed -n 12 -m 8 -seed 107 > testdata/layered_n12_m8.json
