// Benchmarks regenerating every table and figure of the paper (experiments
// E1-E7 of EXPERIMENTS.md) plus end-to-end, ablation and phase-2 scaling
// benchmarks (E8-E10). Each BenchmarkTableN/BenchmarkFigN run both times
// the regeneration and re-verifies the headline numbers, so
// `go test -bench=. -benchmem` is the full reproduction harness.
package malsched

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/baseline"
	"malsched/internal/bruteforce"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/listsched"
	"malsched/internal/malleable"
	"malsched/internal/nlp"
	"malsched/internal/params"
	"malsched/internal/solver"
)

// E1 / Table 2: parameter and ratio table of the paper's algorithm.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := params.Table2(33)
		if len(rows) != 32 || math.Abs(rows[31].R-3.2144) > 5e-5 {
			b.Fatalf("table 2 corrupt: %+v", rows[len(rows)-1])
		}
	}
}

// E2 / Table 3: the LTW baseline ratio table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := baseline.Table3(33)
		if len(rows) != 32 || math.Abs(rows[0].R-4) > 1e-9 {
			b.Fatalf("table 3 corrupt: %+v", rows[0])
		}
	}
}

// E3 / Table 4: grid solution of the min-max NLP (18). The paper's grid
// step is 1e-4; benchmark one representative m at full resolution.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := nlp.GridSolve(33, 1e-4)
		if math.Abs(r.R-3.1794) > 5e-5 {
			b.Fatalf("table 4 entry m=33 corrupt: %+v", r)
		}
	}
}

// E4 / Fig 1: speedup and work-function series for the power-law task.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		task := malleable.PowerLaw("example", 100, 0.6, 64)
		f := malleable.NewFrontier(task, 64)
		if err := task.CheckAssumption2(); err != nil {
			b.Fatal(err)
		}
		if err := task.CheckWorkConvexInTime(); err != nil {
			b.Fatal(err)
		}
		if f.Segments() != 63 {
			b.Fatalf("frontier segments = %d", f.Segments())
		}
	}
}

// E5 / Fig 2: a full two-phase schedule plus heavy-path extraction and
// slot classification.
func BenchmarkFig2(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Layered(4, 3, 2, rng)
	in := gen.Instance(g, gen.FamilyPowerLaw, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		path := res.Schedule.HeavyPath(in.G, res.Params.Mu)
		if len(path) == 0 {
			b.Fatal("empty heavy path")
		}
		cls := res.Schedule.Classify(res.Params.Mu)
		if math.Abs(cls.T1+cls.T2+cls.T3-res.Makespan) > 1e-6 {
			b.Fatal("slot classes do not partition the horizon")
		}
	}
}

// E6 / Figs 3-4: Lemma 4.6 unique-crossing computation on the A/B branches.
func BenchmarkFig3and4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		A, B := nlp.ABFunctions(16, 0.26)
		x0, minimises, found := nlp.UniqueCrossing(A, B, 1, 8.5, 4000)
		if !found || !minimises {
			b.Fatalf("crossing failed: x0=%v", x0)
		}
	}
}

// E7 / Section 4.3: asymptotic polynomial roots and limits.
func BenchmarkAsymptotics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rho, beta, r := nlp.AsymptoticOptimum()
		if math.Abs(rho-0.261917) > 1e-5 || math.Abs(beta-0.325907) > 1e-5 || math.Abs(r-3.291913) > 1e-5 {
			b.Fatalf("asymptotics corrupt: %v %v %v", rho, beta, r)
		}
	}
}

// E8: end-to-end two-phase algorithm across instance scales. The LP phase
// dominates; sizes stay inside the dense-simplex envelope (DESIGN.md §7).
func BenchmarkEndToEnd(b *testing.B) {
	for _, cfg := range []struct{ n, m int }{{10, 4}, {20, 8}, {40, 16}, {60, 32}} {
		b.Run(fmt.Sprintf("n%d_m%d", cfg.n, cfg.m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			in := gen.Instance(gen.ErdosDAG(cfg.n, 0.2, rng), gen.FamilyMixed, cfg.m, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(in, core.Options{SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				if res.Guarantee > res.Params.R+1e-6 {
					b.Fatalf("guarantee %v exceeds proven %v", res.Guarantee, res.Params.R)
				}
			}
		})
	}
}

// phase1Scenario is one phase-1 LP workload (EXPERIMENTS.md E11): the
// sizes beyond a few hundred tasks were unreachable under the dense
// tableau (its footprint is O((n·m + E)^2) doubles) and exist only since
// the lazy-cut sparse revised simplex rewrite.
type phase1Scenario struct {
	name string
	n, m int
	dag  string // "erdos" or "layered"
	p    float64
	seed int64
	// force pins the phase-1 formulation ("" = the production auto
	// route by segment mass).
	force allot.Formulation
}

var phase1Scenarios = []phase1Scenario{
	{"erdos_n24_m8", 24, 8, "erdos", 0.2, 9, ""}, // the historical small scenario
	{"layered_n200_m16", 200, 16, "layered", 0, 9, ""},
	// Routes through the segment-variable formulation (segment mass in
	// the mid window; see internal/allot/segment.go).
	{"layered_n500_m32", 500, 32, "layered", 0, 9, allot.FormulationSegment},
	// Dense random precedence at scale: the scenario where transitive
	// reduction (internal/prep) pays — ~2/3 of its arcs are implied.
	{"erdos_n500_m48", 500, 48, "erdos", 0.03, 9, allot.FormulationSegment},
	// Above the segment window: the lazy-cut loop with dual restarts.
	{"layered_n1000_m64", 1000, 64, "layered", 0, 9, allot.FormulationLazy},
	{"layered_n2000_m64", 2000, 64, "layered", 0, 9, allot.FormulationLazy},
	// The parametric min-cut sweep on the ISSUE-5 headline scenario
	// (auto now routes it here; the pin keeps the measurement stable
	// against router retunes), and the scale the simplex paths never
	// reached.
	{"layered_n2000_m64_mincut", 2000, 64, "layered", 0, 9, allot.FormulationMincut},
	{"layered_n10000_m64", 10000, 64, "layered", 0, 9, ""},
}

func (sc phase1Scenario) build() *allot.Instance {
	rng := rand.New(rand.NewSource(sc.seed))
	var g *dag.DAG
	switch sc.dag {
	case "layered":
		w := 20
		g = gen.Layered(sc.n/w, w, 3, rng)
	default:
		g = gen.ErdosDAG(sc.n, sc.p, rng)
	}
	return gen.Instance(g, gen.FamilyMixed, sc.m, rng)
}

// E8/E11 (phase 1): the lazy-cut sparse LP across instance scales, run
// through a reusable workspace the way the engine's workers and any
// serious repeated-solve caller run it.
func BenchmarkPhase1LP(b *testing.B) {
	for _, sc := range phase1Scenarios {
		b.Run(sc.name, func(b *testing.B) {
			in := sc.build()
			ws := solver.NewWorkspace()
			ws.LP().ForceFormulation = sc.force
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Exactly the production phase-1 path (core.SolveWith):
				// preprocess, then solve the LP on the reduced instance.
				red := ws.Reduce(in)
				if _, err := allot.SolveLPWith(red, ws.LP()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E11 (baseline): the retained full dense build on the scenarios small
// enough for its O((rows+cols)^2) tableau; compare against
// BenchmarkPhase1LP on the same scenarios for the rewrite's speedup.
func BenchmarkPhase1Reference(b *testing.B) {
	for _, sc := range phase1Scenarios {
		if sc.n > 200 {
			continue // the dense tableau at n=500/m=32 already needs ~10 GB
		}
		b.Run(sc.name, func(b *testing.B) {
			in := sc.build()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := allot.SolveLPReference(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkspaceReuse isolates what workspace reuse buys on the phase-1
// LP: "fresh" allocates every solver buffer per solve (the seed path),
// "reused" runs warm. Compare allocs/op and B/op between the two.
func BenchmarkWorkspaceReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := gen.Instance(gen.ErdosDAG(24, 0.2, rng), gen.FamilyMixed, 8, rng)
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := allot.SolveLP(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		ws := allot.NewWorkspace()
		if _, err := allot.SolveLPWith(in, ws); err != nil {
			b.Fatal(err) // warm-up growth outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := allot.SolveLPWith(in, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolThroughput pushes a fixed batch through Pool.SolveBatch at
// increasing worker counts; ns/op is the wall-clock per batch, so the
// speedup across sub-benchmarks is the scaling curve.
func BenchmarkPoolThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	const batch = 32
	ins := make([]*Instance, batch)
	for i := range ins {
		ai := gen.Instance(gen.ErdosDAG(16, 0.2, rng), gen.FamilyMixed, 8, rng)
		ins[i] = &Instance{M: ai.M, Tasks: ai.Tasks, Edges: ai.G.Edges()}
	}
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			pool := NewPool(w)
			defer pool.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, o := range pool.SolveBatch(context.Background(), ins) {
					if o.Err != nil {
						b.Fatalf("instance %d: %v", j, o.Err)
					}
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}

// E8 (phase 2): LIST on a fixed allotment.
func BenchmarkPhase2List(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	in := gen.Instance(gen.ErdosDAG(60, 0.2, rng), gen.FamilyMixed, 16, rng)
	alloc := make([]int, 60)
	for j := range alloc {
		alloc[j] = 1 + rng.Intn(5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.Run(in, alloc); err != nil {
			b.Fatal(err)
		}
	}
}

// listScenario is one large-n phase-2 workload (EXPERIMENTS.md E10): the
// instance is generated deterministically, the allotment is a fixed random
// cap, and both LIST implementations can be driven on it.
type listScenario struct {
	name   string
	n, m   int
	dag    string // "layered", "erdos" or "independent"
	p      float64
	seed   int64
	maxCap int // random allotment cap; 0 means saturated (alloc = m)
}

var listScenarios = []listScenario{
	{"layered_n1000_m64", 1000, 64, "layered", 0, 20, 16},
	{"layered_n2000_m64", 2000, 64, "layered", 0, 21, 16},
	{"erdos_n2000_m128", 2000, 128, "erdos", 0.004, 22, 32},
	{"layered_n10000_m256", 10000, 256, "layered", 0, 23, 32},
	// The adversarial shape: every task allotted the whole machine, so
	// every commit raises the entire occupied horizon. Quadratic queue
	// churn for the retained lazy heap (RunLazyHeap), one wholesale bucket
	// advance per commit for the calendar queue (see the package doc of
	// internal/listsched). The reference needs ~12s at n=500 (kept
	// runnable for the EXPERIMENTS.md E10/E15 speedup figures) and minutes
	// beyond.
	{"independent_full_n500_m16", 500, 16, "independent", 0, 25, 0},
	{"independent_full_n2000_m16", 2000, 16, "independent", 0, 24, 0},
	// Extreme scale (E15): 10^5-10^6 tasks through the tiered timeline +
	// bucket queue, with shared processing-time vectors (gen.TasksShared)
	// so the instances themselves stay cheap to hold. The million-task
	// scenario is the serving demo's workload: one request, single-digit
	// seconds.
	{"layered_n100000_m256", 100_000, 256, "layered", 0, 26, 32},
	{"independent_full_n100000_m16", 100_000, 16, "independent", 0, 27, 0},
	// Mixed allotments with no precedence: the whole instance is READY at
	// once and heavy-allotment classes keep getting leapfrogged by light
	// tasks, so every implementation re-examines them repeatedly. The
	// class-grouped queue re-files whole (duration, allotment) classes per
	// probe instead of single tasks, ~16x faster than the retained lazy
	// heap here (E15) but still superlinear — which is why the million-task
	// scenario below uses the saturated shape, where wholesale bucket
	// advance makes the queue linear by construction.
	{"independent_mixed_n20000_m64", 20_000, 64, "independent", 0, 29, 16},
	{"independent_full_n1000000_m64", 1_000_000, 64, "independent", 0, 28, 0},
}

func (sc listScenario) build(b testing.TB) (*allot.Instance, []int) {
	rng := rand.New(rand.NewSource(sc.seed))
	var g *dag.DAG
	switch sc.dag {
	case "layered":
		w := 20
		g = gen.Layered(sc.n/w, w, 3, rng)
	case "erdos":
		g = gen.ErdosDAG(sc.n, sc.p, rng)
	case "independent":
		g = gen.Independent(sc.n)
	default:
		b.Fatalf("unknown dag %q", sc.dag)
	}
	var in *allot.Instance
	if sc.n >= 20_000 {
		// Shared processing-time vectors: per-task vectors at n=10^6/m=64
		// would cost ~512 MB before the scheduler even starts, and a
		// bounded set of task types is also what the class-grouped ready
		// queue exploits at scale (64 distinct vectors here).
		in = gen.InstanceShared(g, gen.FamilyMixed, sc.m, 64, rng)
	} else {
		in = gen.Instance(g, gen.FamilyMixed, sc.m, rng)
	}
	alloc := make([]int, g.N())
	for j := range alloc {
		if sc.maxCap == 0 {
			alloc[j] = sc.m
		} else {
			alloc[j] = 1 + rng.Intn(sc.maxCap)
		}
	}
	return in, alloc
}

// E10: the phase-2 profile scheduler at production scale (n up to 10 000,
// m up to 256). Compare against BenchmarkListReference on the same
// scenarios for the speedup of the incremental-profile rewrite.
func BenchmarkList(b *testing.B) {
	for _, sc := range listScenarios {
		b.Run(sc.name, func(b *testing.B) {
			in, alloc := sc.build(b)
			ws := listsched.NewWorkspace()
			if _, err := listsched.RunWith(in, alloc, ws); err != nil {
				b.Fatal(err) // warm-up growth outside the timed loop
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := listsched.RunWith(in, alloc, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 (baseline): the retained seed implementation of LIST on the smaller
// large-n scenarios, including the n=500 saturated shape (~12s per run —
// excluded from the CI smoke selection, which takes only the layered
// sub-benchmarks). The n=10000 and larger saturated scenarios are omitted
// entirely: the quadratic rescans make them minutes per run.
func BenchmarkListReference(b *testing.B) {
	for _, sc := range listScenarios {
		if sc.n > 2000 || (sc.maxCap == 0 && sc.n > 500) {
			continue
		}
		b.Run(sc.name, func(b *testing.B) {
			in, alloc := sc.build(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := listsched.RunReference(in, alloc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 (baseline comparison): LTW on the same instance as BenchmarkEndToEnd.
func BenchmarkBaselineLTW(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := gen.Instance(gen.ErdosDAG(20, 0.2, rng), gen.FamilyMixed, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LTW(in); err != nil {
			b.Fatal(err)
		}
	}
}

// E9: exact ratio against brute-force OPT on a tiny instance.
func BenchmarkExactRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	in := gen.Instance(gen.ErdosDAG(5, 0.35, rng), gen.FamilyMixed, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := bruteforce.Optimal(in)
		res, err := core.Solve(in, core.Options{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Makespan/opt > res.Params.R+1e-6 {
			b.Fatalf("ratio vs OPT %v exceeds proven %v", res.Makespan/opt, res.Params.R)
		}
	}
}

// Ablation: LP formulation (9) (work variables + supporting lines) versus
// the paper Remark's assignment formulation (10) — equal optima proven in
// the paper and verified in tests; this measures the solver-cost tradeoff.
func BenchmarkAblationLPFormulation(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	in := gen.Instance(gen.ErdosDAG(16, 0.2, rng), gen.FamilyMixed, 8, rng)
	b.Run("lp9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := allot.SolveLP(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := allot.SolveLP10(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the rounding parameter rho (DESIGN.md calls out rho-hat = 0.26
// as the paper's key choice versus LTW's 0.5).
func BenchmarkAblationRho(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	in := gen.Instance(gen.Layered(4, 4, 2, rng), gen.FamilyPowerLaw, 12, rng)
	for _, rho := range []float64{0, 0.26, 0.5, 1} {
		b.Run(fmt.Sprintf("rho%.2f", rho), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(in, core.Options{Rho: rho, RhoSet: true, SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Guarantee, "guarantee")
			}
		})
	}
}

// Ablation: the allotment cap mu.
func BenchmarkAblationMu(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	in := gen.Instance(gen.Layered(4, 4, 2, rng), gen.FamilyPowerLaw, 12, rng)
	for _, mu := range []int{1, 3, 5, 6} {
		b.Run(fmt.Sprintf("mu%d", mu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(in, core.Options{Mu: mu, SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Guarantee, "guarantee")
			}
		})
	}
}
