package malsched

import "malsched/internal/allot"

// SolverState is an opaque warm-start handle: the phase-1 LP basis and
// lazy-cut replay log captured after a paper-algorithm solve, tied to the
// structure fingerprint of the instance it came from. A state captured on
// one instance warm-starts the solve of any instance with the same
// StructureFingerprint — same DAG shape, machine size and per-task vector
// lengths, arbitrary processing-time edits — which is the serving layer's
// delta path: an edited instance re-solves in a handful of simplex pivots
// instead of a cold solve.
//
// A SolverState is immutable and safe to share across goroutines; the
// solver only reads it. Passing a state whose structure does not match the
// instance being solved is safe: the solve silently degrades to a cold
// solve, and the result is an exact optimum either way.
type SolverState struct {
	snap     *allot.LPSnapshot
	structFP string
}

// StructureFingerprint returns the structure fingerprint of the instance
// the state was captured from. Warm starts are only effective on instances
// with the same value (Instance.StructureFingerprint).
func (st *SolverState) StructureFingerprint() string {
	if st == nil {
		return ""
	}
	return st.structFP
}

// WithCapture asks the solve to export a SolverState in Result.State. The
// phase-1 LP is forced onto the lazy-cut formulation (the only one whose
// bases are transplantable), which can cost some speed on instances the
// solver would otherwise route to the segment formulation.
func WithCapture() Option {
	return func(o *solveConfig) { o.capture = true }
}

// WithWarmStart seeds the phase-1 LP from a previously captured state.
// A nil state, or one captured from a structurally different instance, is
// ignored (the solve runs cold). Only the paper algorithm consumes it.
func WithWarmStart(st *SolverState) Option {
	return func(o *solveConfig) { o.warm = st }
}

// EditDistance returns the number of task positions whose processing-time
// vectors differ between in and other under the fingerprint quantization
// (12 significant digits — the same equivalence Fingerprint uses), or -1
// when the two instances do not even share a task count. It is the edit
// metric of the serving layer's delta path: a request within the edit
// budget of a cached base re-solves warm from the base's SolverState.
func (in *Instance) EditDistance(other *Instance) int {
	if len(in.Tasks) != len(other.Tasks) {
		return -1
	}
	d := 0
	for j := range in.Tasks {
		if !quantizedTimesEqual(in.Tasks[j].Times, other.Tasks[j].Times) {
			d++
		}
	}
	return d
}

// quantizedTimesEqual reports whether two processing-time vectors are
// equal after fingerprint quantization.
//
//malsched:noalloc
func quantizedTimesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if quantize(a[i]) != quantize(b[i]) {
			return false
		}
	}
	return true
}
