package malsched

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseAlgorithm pins the parse/String contract: parsing never panics,
// a successful parse round-trips through the canonical name, and the
// canonical name is one of the documented five.
func FuzzParseAlgorithm(f *testing.F) {
	for _, seed := range []string{"paper", "ours", "ltw", "greedy", "seq", "sequential", "full", "", "PAPER", "paper ", "lt"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAlgorithm(s)
		if err != nil {
			if !strings.Contains(err.Error(), "unknown algorithm") {
				t.Fatalf("ParseAlgorithm(%q): unexpected error text %v", s, err)
			}
			return
		}
		name := a.String()
		switch name {
		case "paper", "ltw", "greedy", "seq", "full":
		default:
			t.Fatalf("ParseAlgorithm(%q) = %v with non-canonical name %q", s, a, name)
		}
		back, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q) does not round-trip: %v", name, err)
		}
		if back != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, round-trips to %v", s, a, back)
		}
	})
}

// FuzzParseFormulation pins that validation is a pure identity on the
// accepted set: a successful parse returns the input string unchanged and
// re-parses to itself, and rejection never panics.
func FuzzParseFormulation(f *testing.F) {
	for _, seed := range []string{"", "lazy", "segment", "mincut", "dense", "Lazy", "lazy ", "auto"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fm, err := ParseFormulation(s)
		if err != nil {
			if fm != "" {
				t.Fatalf("ParseFormulation(%q) returned %q alongside error %v", s, fm, err)
			}
			return
		}
		if string(fm) != s {
			t.Fatalf("ParseFormulation(%q) mutated the value to %q", s, fm)
		}
		back, err := ParseFormulation(string(fm))
		if err != nil || back != fm {
			t.Fatalf("ParseFormulation(%q) does not round-trip: %v, %v", fm, back, err)
		}
	})
}

// FuzzQuantize pins the quantization invariants the content-addressed cache
// depends on: quantize is idempotent, canonicalizes every NaN payload and
// both zero signs onto one value, and two processing times quantizing equal
// yield equal instance fingerprints (while distinct quantizations keep the
// fingerprints apart — no accidental collapse of genuinely different
// instances).
func FuzzQuantize(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(0.0, math.Copysign(0, -1))
	f.Add(math.NaN(), math.Float64frombits(0x7ff8000000000001))
	f.Add(math.Inf(1), math.MaxFloat64)
	f.Add(1.0, 1.0+1e-14)
	f.Add(1.0, 2.0)
	f.Fuzz(func(t *testing.T, x, y float64) {
		qx, qy := quantize(x), quantize(y)

		// Idempotence: re-quantizing a quantized value is the identity.
		if rq := quantize(math.Float64frombits(qx)); rq != qx {
			t.Fatalf("quantize not idempotent at %g: %#x -> %#x", x, qx, rq)
		}

		// Canonical folds.
		if math.IsNaN(x) && qx != math.Float64bits(math.NaN()) {
			t.Fatalf("NaN payload %#x not canonicalized: got %#x", math.Float64bits(x), qx)
		}
		if x == 0 && qx != 0 {
			t.Fatalf("zero (sign bit %v) quantized to %#x, want 0", math.Signbit(x), qx)
		}

		// Equal quantized values <=> equal fingerprints for instances that
		// differ only in that one processing time.
		mk := func(p float64) *Instance {
			return &Instance{M: 1, Tasks: []Task{NewTask("", []float64{p})}}
		}
		fx, fy := mk(x).Fingerprint(), mk(y).Fingerprint()
		if (qx == qy) != (fx == fy) {
			t.Fatalf("quantize(%g)=%#x quantize(%g)=%#x but fingerprint equality is %v",
				x, qx, y, qy, fx == fy)
		}
	})
}
