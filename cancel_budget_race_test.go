//go:build race

package malsched

import "time"

// Race-detector builds slow every pivot by roughly an order of magnitude;
// the cancellation machinery under test is identical, so the latency
// budget is relaxed rather than the assertion dropped.
const cancelLatencyBudget = 500 * time.Millisecond
