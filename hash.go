package malsched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// fingerprintVersion tags the canonical encoding; bump it whenever the
// encoding below changes so stale cache entries keyed on old fingerprints
// can never be confused with new ones.
const fingerprintVersion = "malsched-fp-v2" // v2: -0.0 canonicalized to +0.0

// fingerprintMantissaBits is the precision processing times are quantized
// to before hashing: the top 40 of float64's 52 mantissa bits, about 12
// significant decimal digits. That is far below any difference the solvers
// can distinguish (their tolerances sit around 1e-9 relative) while
// absorbing the trailing-bit noise that different producers of the "same"
// instance introduce (recomputed power laws, differently associated sums,
// ...). Quantization is a mantissa round in the bit pattern rather than a
// decimal format: the fingerprint sits on the serving layer's cache-hit
// path, where formatting ~n·m floats would dominate the hash.
const fingerprintMantissaBits = 40

// Fingerprint returns a content-addressed identity of the instance: the
// hex SHA-256 of a canonical encoding. Two instances receive the same
// fingerprint exactly when they describe the same scheduling problem:
//
//   - task names are ignored (they never influence a schedule's shape),
//   - edge order and duplicate edges are ignored (the precedence relation
//     is a set),
//   - processing times are quantized to 12 significant digits, so float
//     noise below solver tolerance does not split cache entries.
//
// Task order is significant — edges refer to task indices, so permuting
// tasks genuinely changes the instance. Fingerprint does not validate; it
// is defined for any instance value, including invalid ones.
//
// The fingerprint is the cache key of the serving layer's content-addressed
// result cache (internal/server), combined there with the algorithm and
// parameter overrides of the request.
func (in *Instance) Fingerprint() string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		h.Write(buf[:binary.PutUvarint(buf[:], v)])
	}

	h.Write([]byte(fingerprintVersion))
	writeUvarint(uint64(in.M))

	writeUvarint(uint64(len(in.Tasks)))
	var num [8]byte
	for _, t := range in.Tasks {
		writeUvarint(uint64(len(t.Times)))
		for _, p := range t.Times {
			binary.LittleEndian.PutUint64(num[:], quantize(p))
			h.Write(num[:])
		}
	}

	edges := canonicalEdges(in.Edges)
	writeUvarint(uint64(len(edges)))
	for _, e := range edges {
		// Signed varints: edge endpoints are indices and should be
		// non-negative, but Fingerprint is total, so encode faithfully.
		h.Write(buf[:binary.PutVarint(buf[:], int64(e[0]))])
		h.Write(buf[:binary.PutVarint(buf[:], int64(e[1]))])
	}

	return hex.EncodeToString(h.Sum(nil))
}

// structureFingerprintVersion tags the canonical structure encoding,
// independently of fingerprintVersion: the two encodings evolve separately
// (quantization changes bump the full fingerprint only).
const structureFingerprintVersion = "malsched-sfp-v1"

// StructureFingerprint returns a content-addressed identity of the
// instance's shape: the hex SHA-256 of a canonical encoding of everything
// except the processing-time values. Two instances share a structure
// fingerprint exactly when they have the same machine size, the same number
// of tasks, the same per-task Times vector lengths, and the same precedence
// relation (edge order and duplicates ignored, as in Fingerprint).
//
// Instances with equal structure fingerprints produce phase-1 LPs with
// identical row/column layouts under the lazy supporting-line formulation,
// which is what makes a cached simplex basis from one transplantable onto
// the other: the delta path of the v2 serving API accepts task edits
// against a cached base only when the structure fingerprints match.
func (in *Instance) StructureFingerprint() string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		h.Write(buf[:binary.PutUvarint(buf[:], v)])
	}

	h.Write([]byte(structureFingerprintVersion))
	writeUvarint(uint64(in.M))

	writeUvarint(uint64(len(in.Tasks)))
	for _, t := range in.Tasks {
		writeUvarint(uint64(len(t.Times)))
	}

	edges := canonicalEdges(in.Edges)
	writeUvarint(uint64(len(edges)))
	for _, e := range edges {
		h.Write(buf[:binary.PutVarint(buf[:], int64(e[0]))])
		h.Write(buf[:binary.PutVarint(buf[:], int64(e[1]))])
	}

	return hex.EncodeToString(h.Sum(nil))
}

// canonicalEdges returns the edge list sorted lexicographically with
// duplicates removed, without modifying the input.
func canonicalEdges(in [][2]int) [][2]int {
	edges := make([][2]int, len(in))
	copy(edges, in)
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	n := 0
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		edges[n] = e
		n++
	}
	return edges[:n]
}

// quantize rounds p's mantissa to its top fingerprintMantissaBits bits,
// to-nearest with carry into the exponent (so a value a hair under a power
// of two rounds onto it, exactly like decimal rounding would). NaNs are
// canonicalized to one payload; infinities already have a zero mantissa and
// pass through unchanged; -0.0 is canonicalized to +0.0 — the two compare
// equal and schedule identically, so leaving the sign bit in place would
// split cache entries for the same scheduling problem.
//
//malsched:noalloc
func quantize(p float64) uint64 {
	if math.IsNaN(p) {
		return math.Float64bits(math.NaN())
	}
	if math.IsInf(p, 0) {
		return math.Float64bits(p)
	}
	if p == 0 {
		return 0 // fold -0.0 onto +0.0
	}
	const drop = 52 - fingerprintMantissaBits
	bits := math.Float64bits(p)
	bits += 1 << (drop - 1)
	bits &^= 1<<drop - 1
	return bits
}
