package malsched

import (
	"fmt"

	"malsched/internal/allot"
	"malsched/internal/baseline"
	"malsched/internal/solver"
)

// Algorithm selects which solver a Pool runs for an instance. The zero
// value is AlgoPaper, the two-phase approximation algorithm of the paper;
// the remaining values are the baseline heuristics also exposed as
// top-level Solve* functions. The serving layer (cmd/malschedd) routes
// requests across these per its size/deadline heuristics.
type Algorithm int

const (
	// AlgoPaper is the Jansen–Zhang two-phase algorithm (Solve).
	AlgoPaper Algorithm = iota
	// AlgoLTW is the Lepère–Trystram–Woeginger baseline (SolveLTW).
	AlgoLTW
	// AlgoGreedyCP is the greedy critical-path heuristic (SolveGreedyCP).
	AlgoGreedyCP
	// AlgoSequential runs every task on one processor (SolveSequential).
	AlgoSequential
	// AlgoFullAllotment gives every task all m processors (SolveFullAllotment).
	AlgoFullAllotment
)

// String returns the canonical name: paper, ltw, greedy, seq, full.
func (a Algorithm) String() string {
	switch a {
	case AlgoPaper:
		return "paper"
	case AlgoLTW:
		return "ltw"
	case AlgoGreedyCP:
		return "greedy"
	case AlgoSequential:
		return "seq"
	case AlgoFullAllotment:
		return "full"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name to its Algorithm. It accepts the canonical
// names produced by String plus the aliases "ours" (the cmd/malsched CLI's
// historical name for the paper algorithm) and "sequential".
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "paper", "ours":
		return AlgoPaper, nil
	case "ltw":
		return AlgoLTW, nil
	case "greedy":
		return AlgoGreedyCP, nil
	case "seq", "sequential":
		return AlgoSequential, nil
	case "full":
		return AlgoFullAllotment, nil
	}
	return 0, fmt.Errorf("malsched: unknown algorithm %q (want paper, ltw, greedy, seq or full)", s)
}

// solveAlgoWith dispatches one solve to the selected algorithm, threading
// the reusable workspace through whichever path is taken. It is the shared
// implementation behind the top-level Solve* functions and Pool.SolveAlgo.
func solveAlgoWith(in *Instance, ws *solver.Workspace, algo Algorithm, opts []Option) (*Result, error) {
	switch algo {
	case AlgoPaper:
		return solveWith(in, ws, opts)
	case AlgoLTW:
		ai, err := in.internal()
		if err != nil {
			return nil, err
		}
		res, err := baseline.LTWWith(ai, ws)
		if err != nil {
			return nil, err
		}
		mu, r := baseline.LTWRatio(in.M)
		out := &Result{
			Schedule: res.Schedule, Makespan: res.Makespan, LowerBound: res.LowerBound,
			Alloc: res.Alpha, Mu: mu, Rho: 0.5, ProvenRatio: r,
		}
		if res.LowerBound > 0 {
			out.Guarantee = res.Makespan / res.LowerBound
		}
		return out, nil
	case AlgoSequential:
		return baselineResultWith(in, ws, baseline.SequentialWith)
	case AlgoGreedyCP:
		return baselineResultWith(in, ws, baseline.GreedyCPWith)
	case AlgoFullAllotment:
		return baselineResultWith(in, ws, baseline.FullAllotmentWith)
	}
	return nil, fmt.Errorf("malsched: unknown algorithm %v", algo)
}

func baselineResultWith(in *Instance, ws *solver.Workspace, f func(*allot.Instance, *solver.Workspace) (*baseline.Result, error)) (*Result, error) {
	ai, err := in.internal()
	if err != nil {
		return nil, err
	}
	res, err := f(ai, ws)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: res.Schedule, Makespan: res.Makespan, Alloc: res.Alpha}, nil
}
