package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"malsched/internal/cancelflag"
	"malsched/internal/solver"
)

// A Run with an already-cancelled context must fail fast without touching
// the job channel: here the pool's only worker is busy, so any attempt to
// hand the job to a worker would block until it frees up.
func TestPreCancelledRunConsumesNoWorkerSlot(t *testing.T) {
	p := New(1)
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	go p.RunOne(context.Background(), func(ws *solver.Workspace) error {
		close(started)
		<-release
		return nil
	})
	<-started // the single worker is now occupied

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	err := p.RunOne(ctx, func(ws *solver.Workspace) error { return nil })
	elapsed := time.Since(t0)
	close(release)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("pre-cancelled RunOne took %v; it must not wait for a worker", elapsed)
	}
}

func TestPanicIsErrPanicked(t *testing.T) {
	p := New(1)
	defer p.Close()
	err := p.RunOne(context.Background(), func(ws *solver.Workspace) error {
		panic("kaboom")
	})
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
}

// A context cancelled mid-job must set the workspace's cancel flag (the
// solver phases poll it) and surface as the context's error, not as the
// internal sentinel.
func TestMidJobCancellationSetsFlagAndMapsError(t *testing.T) {
	p := New(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := p.RunOne(ctx, func(ws *solver.Workspace) error {
		deadline := time.Now().Add(5 * time.Second)
		for !ws.CancelFlag().Canceled() {
			if time.Now().After(deadline) {
				t.Error("cancel flag never set")
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return cancelflag.ErrCanceled // what the solver hot loops return
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A previous job's cancellation must not leak into the next job on the
// same (pooled, workspace-reusing) worker.
func TestCancelFlagClearedBetweenJobs(t *testing.T) {
	p := New(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel2 := make(chan struct{})
	go func() { <-cancel2; cancel() }()
	p.RunOne(ctx, func(ws *solver.Workspace) error {
		close(cancel2)
		for !ws.CancelFlag().Canceled() {
			time.Sleep(time.Millisecond)
		}
		return cancelflag.ErrCanceled
	})
	err := p.RunOne(context.Background(), func(ws *solver.Workspace) error {
		if ws.CancelFlag().Canceled() {
			return errors.New("stale cancel flag on fresh job")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultBGDropDropsSubmission(t *testing.T) {
	p := New(1)
	defer p.Close()
	FaultBGDrop = func() bool { return true }
	defer func() { FaultBGDrop = nil }()
	if p.TryBackground(func(ws *solver.Workspace) error { return nil }) {
		t.Fatal("TryBackground accepted a submission the fault hook should drop")
	}
}
