package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malsched/internal/solver"
)

// waitFor polls cond for up to 5s; background jobs have no completion
// latch by design, so tests observe their side effects.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTryBackgroundRuns(t *testing.T) {
	p := New(2)
	defer p.Close()
	var ran atomic.Int32
	for i := 0; i < 4; i++ {
		if !p.TryBackground(func(ws *solver.Workspace) error {
			if ws == nil {
				t.Error("background job got a nil workspace")
			}
			ran.Add(1)
			return nil
		}) {
			t.Fatalf("enqueue %d rejected with an empty lane", i)
		}
	}
	waitFor(t, func() bool { return ran.Load() == 4 })
}

// TestTryBackgroundDropsWhenFull: with every worker parked and the lane at
// capacity, further enqueues must report false instead of blocking.
func TestTryBackgroundDropsWhenFull(t *testing.T) {
	p := New(1)
	defer p.Close()

	// Park the lone worker on a foreground job so nothing drains the lane.
	release := make(chan struct{})
	var fg sync.WaitGroup
	fg.Add(1)
	go func() {
		defer fg.Done()
		p.RunOne(context.Background(), func(ws *solver.Workspace) error {
			<-release
			return nil
		})
	}()
	waitFor(t, func() bool { return len(p.jobs) == 0 }) // worker picked it up

	depth := cap(p.bg)
	for i := 0; i < depth; i++ {
		if !p.TryBackground(func(ws *solver.Workspace) error { return nil }) {
			t.Fatalf("enqueue %d/%d rejected below capacity", i, depth)
		}
	}
	if p.TryBackground(func(ws *solver.Workspace) error { return nil }) {
		t.Error("enqueue past capacity accepted — TryBackground blocked or the lane is unbounded")
	}
	close(release)
	fg.Wait()
}

// TestBackgroundYieldsToForeground: a worker holding a full background
// backlog must still pick up foreground work promptly (the lane only
// drains when no foreground job is waiting at pick time).
func TestBackgroundYieldsToForeground(t *testing.T) {
	p := New(1)
	defer p.Close()

	var bgDone atomic.Int32
	slow := func(ws *solver.Workspace) error {
		time.Sleep(2 * time.Millisecond)
		bgDone.Add(1)
		return nil
	}
	for i := 0; i < 8; i++ {
		if !p.TryBackground(slow) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	// The foreground job must not wait for all eight 2ms background jobs.
	start := time.Now()
	if err := p.RunOne(context.Background(), func(ws *solver.Workspace) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait > 8*2*time.Millisecond {
		t.Errorf("foreground job waited %v behind the background backlog", wait)
	}
	waitFor(t, func() bool { return bgDone.Load() == 8 })
}

func TestTryBackgroundAfterClose(t *testing.T) {
	p := New(1)
	p.Close()
	if p.TryBackground(func(ws *solver.Workspace) error { return nil }) {
		t.Error("closed pool accepted a background job")
	}
}

// TestBackgroundPanicIsolated: a panicking background job must not kill
// its worker.
func TestBackgroundPanicIsolated(t *testing.T) {
	p := New(1)
	defer p.Close()
	if !p.TryBackground(func(ws *solver.Workspace) error { panic("boom") }) {
		t.Fatal("enqueue rejected")
	}
	var ran atomic.Bool
	if !p.TryBackground(func(ws *solver.Workspace) error { ran.Store(true); return nil }) {
		t.Fatal("second enqueue rejected")
	}
	waitFor(t, func() bool { return ran.Load() })
	// The worker must also still serve foreground jobs.
	if err := p.RunOne(context.Background(), func(ws *solver.Workspace) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
