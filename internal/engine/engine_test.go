package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malsched/internal/solver"
)

func TestRunPreservesOrder(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 64
	results := make([]int, n)
	fns := make([]Func, n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(ws *solver.Workspace) error {
			results[i] = i * i
			return nil
		}
	}
	for i, err := range p.Run(context.Background(), fns) {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for i, r := range results {
		if r != i*i {
			t.Errorf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

func TestRunIsolatesErrors(t *testing.T) {
	p := New(2)
	defer p.Close()
	boom := errors.New("boom")
	fns := []Func{
		func(ws *solver.Workspace) error { return nil },
		func(ws *solver.Workspace) error { return boom },
		func(ws *solver.Workspace) error { return nil },
	}
	errs := p.Run(context.Background(), fns)
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy jobs failed: %v %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], boom) {
		t.Errorf("errs[1] = %v, want boom", errs[1])
	}
}

func TestRunRecoversPanics(t *testing.T) {
	p := New(1)
	defer p.Close()
	fns := []Func{
		func(ws *solver.Workspace) error { panic("kaboom") },
		// The same (sole) worker must survive to run this one.
		func(ws *solver.Workspace) error { return nil },
	}
	errs := p.Run(context.Background(), fns)
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "kaboom") {
		t.Errorf("panic not converted to error: %v", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("worker did not survive the panic: %v", errs[1])
	}
}

func TestWorkersOwnDistinctWorkspaces(t *testing.T) {
	const workers = 4
	p := New(workers)
	defer p.Close()
	var mu sync.Mutex
	seen := make(map[*solver.Workspace]bool)
	var gate sync.WaitGroup
	gate.Add(workers)
	fns := make([]Func, workers)
	for i := range fns {
		fns[i] = func(ws *solver.Workspace) error {
			if ws == nil {
				return errors.New("nil workspace")
			}
			mu.Lock()
			seen[ws] = true
			mu.Unlock()
			// Hold every worker until all have checked in, so each of the
			// four jobs provably ran on a different worker.
			gate.Done()
			gate.Wait()
			return nil
		}
	}
	for i, err := range p.Run(context.Background(), fns) {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if len(seen) != workers {
		t.Errorf("saw %d distinct workspaces, want %d", len(seen), workers)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	fns := make([]Func, 8)
	for i := range fns {
		fns[i] = func(ws *solver.Workspace) error {
			atomic.AddInt32(&ran, 1)
			return nil
		}
	}
	for i, err := range p.Run(ctx, fns) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
	if n := atomic.LoadInt32(&ran); n != 0 {
		t.Errorf("%d jobs ran under a cancelled context", n)
	}
}

func TestRunCancelledMidBatch(t *testing.T) {
	const workers = 2
	p := New(workers)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())

	// The first two jobs occupy both workers and block on release; the
	// remaining jobs sit behind a context we cancel while the batch is in
	// flight, so cancellation provably lands mid-batch.
	started := make(chan struct{}, workers)
	release := make(chan struct{})
	const n = 10
	ran := int32(0)
	fns := make([]Func, n)
	for i := 0; i < n; i++ {
		blocking := i < workers
		fns[i] = func(ws *solver.Workspace) error {
			atomic.AddInt32(&ran, 1)
			if blocking {
				started <- struct{}{}
				<-release
			}
			return nil
		}
	}
	go func() {
		for i := 0; i < workers; i++ {
			<-started
		}
		cancel()
		close(release)
	}()
	errs := p.Run(ctx, fns)
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Errorf("in-flight job %d: %v", i, errs[i])
		}
	}
	for i := workers; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("queued job %d: %v, want context.Canceled", i, errs[i])
		}
	}
	if got := atomic.LoadInt32(&ran); got != workers {
		t.Errorf("%d jobs ran, want exactly %d", got, workers)
	}
}

func TestRunOnClosedPool(t *testing.T) {
	p := New(1)
	p.Close()
	p.Close() // idempotent
	err := p.RunOne(context.Background(), func(ws *solver.Workspace) error { return nil })
	if !errors.Is(err, ErrClosed) {
		t.Errorf("RunOne on closed pool: %v, want ErrClosed", err)
	}
}

func TestRunOne(t *testing.T) {
	p := New(0) // GOMAXPROCS default
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	err := p.RunOne(context.Background(), func(ws *solver.Workspace) error {
		return fmt.Errorf("expected")
	})
	if err == nil || err.Error() != "expected" {
		t.Errorf("RunOne error = %v", err)
	}
}

func TestConcurrentRunCallers(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fns := make([]Func, 16)
			for i := range fns {
				fns[i] = func(ws *solver.Workspace) error {
					time.Sleep(time.Microsecond)
					return nil
				}
			}
			for i, err := range p.Run(context.Background(), fns) {
				if err != nil {
					t.Errorf("job %d: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()
}
