// Package engine provides the concurrent batch-solving machinery behind
// malsched.Pool: a fixed set of long-lived worker goroutines, each owning a
// reusable cross-phase solver workspace (see internal/solver.Workspace), fed
// from a shared job channel.
//
// Jobs are plain closures receiving the worker's workspace, so the engine
// is independent of what is being solved; the public API layers instance
// conversion and result collection on top. Batches are order-preserving
// (result i belongs to input i regardless of which worker ran it), errors
// are isolated per job (one failing or panicking job never affects its
// siblings), and a cancelled context drains the remainder of a batch
// without running it.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"malsched/internal/cancelflag"
	"malsched/internal/solver"
)

// ErrClosed is reported for jobs submitted after Close.
var ErrClosed = errors.New("engine: pool is closed")

// ErrPanicked marks jobs that panicked on a worker; the panic value is
// wrapped into the message. Callers classify it with errors.Is.
var ErrPanicked = errors.New("engine: job panicked")

// Fault-injection hooks (internal/faultinject); nil in production builds,
// where each costs one pointer comparison.
var (
	// FaultSlowSolve, when non-nil, returns an extra delay a job sleeps
	// on its worker before running (0 for no delay on this job).
	FaultSlowSolve func() time.Duration
	// FaultBGDrop, when non-nil and returning true, drops a
	// TryBackground submission as if the lane were full.
	FaultBGDrop func() bool
)

// Func is one unit of work. It receives the calling worker's reusable
// workspace, which is valid only for the duration of the call.
type Func func(ws *solver.Workspace) error

// job couples a queued Func with its result slot and completion latch.
type job struct {
	ctx  context.Context
	fn   Func
	err  *error
	done *sync.WaitGroup
}

// Pool is a fixed-size worker pool. Workers and their workspaces live for
// the lifetime of the pool, so workspace warm-up cost is paid once, not per
// batch. All methods are safe for concurrent use, except that Close must
// not be called concurrently with itself.
//
// Besides the foreground job queue, the pool has a bounded background lane
// (TryBackground) that workers drain only when no foreground job is
// waiting — the serving layer's refine-behind queue. Background jobs are
// fire-and-forget: no completion latch, best-effort on Close.
type Pool struct {
	workers int
	jobs    chan job
	bg      chan Func
	wg      sync.WaitGroup // running workers

	mu     sync.RWMutex // guards closed vs. in-flight submissions
	closed bool
}

// New starts a pool of the given number of workers; workers <= 0 means
// GOMAXPROCS. The pool holds its goroutines until Close. The background
// lane buffers up to 4 jobs per worker (at least 16).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := 4 * workers
	if depth < 16 {
		depth = 16
	}
	p := &Pool{workers: workers, jobs: make(chan job), bg: make(chan Func, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down and waits for its workers to exit. Jobs
// submitted after Close fail with ErrClosed; Close does not interrupt jobs
// already running.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	ws := solver.NewWorkspace()
	for {
		// Foreground first: only when no foreground job is waiting does
		// the worker consider the background lane. A closed pool exits
		// immediately, dropping whatever the lane still holds (background
		// work is best-effort by contract).
		select {
		case j, ok := <-p.jobs:
			if !ok {
				return
			}
			*j.err = runJob(j.ctx, j.fn, ws)
			j.done.Done()
			continue
		default:
		}
		select {
		case j, ok := <-p.jobs:
			if !ok {
				return
			}
			*j.err = runJob(j.ctx, j.fn, ws)
			j.done.Done()
		case fn := <-p.bg:
			runBackground(fn, ws)
		}
	}
}

// runBackground executes one background job with the same panic isolation
// as foreground jobs; the error (if any) is the closure's own business.
func runBackground(fn Func, ws *solver.Workspace) {
	defer func() { recover() }()
	// A foreground job's cancellation must not leak into background work
	// sharing the workspace.
	ws.CancelFlag().Clear()
	fn(ws)
}

// TryBackground enqueues fn on the background lane without blocking. It
// reports false — and drops fn — when the lane is full or the pool is
// closed; callers that care count the drop. Background jobs run on the
// same workers (and warm workspaces) as foreground jobs, but only when
// the foreground queue is empty at pick time.
func (p *Pool) TryBackground(fn Func) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if FaultBGDrop != nil && FaultBGDrop() {
		return false
	}
	select {
	case p.bg <- fn:
		return true
	default:
		return false
	}
}

// runJob executes one job with context short-circuiting, live cancellation
// and panic isolation: a job queued behind a cancelled context is skipped, a
// context cancelled mid-solve sets the workspace's cancel flag (polled every
// pivot / scheduling step, so the solve aborts within microseconds), and a
// panicking job is converted into an error instead of killing the worker.
func runJob(ctx context.Context, fn Func, ws *solver.Workspace) (err error) {
	if e := ctx.Err(); e != nil {
		return e
	}
	// The flag lives on the pooled workspace, so a previous job's
	// cancellation must not leak into this one.
	flag := ws.CancelFlag()
	flag.Clear()
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				flag.Set()
			case <-stop:
			}
		}()
		// LIFO defers: the recover below runs first, so a panic is
		// reported as a panic even if cancellation raced it.
		defer func() {
			close(stop)
			// Wait the watcher out: a watcher that already woke on done
			// would otherwise set the flag after the NEXT job on this
			// pooled workspace cleared it, spuriously cancelling it.
			<-exited
			if errors.Is(err, cancelflag.ErrCanceled) && ctx.Err() != nil {
				err = ctx.Err()
			}
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrPanicked, r)
		}
	}()
	if FaultSlowSolve != nil {
		if d := FaultSlowSolve(); d > 0 {
			time.Sleep(d)
		}
	}
	return fn(ws)
}

// Run executes every Func on the pool and returns one error slot per input,
// order-preserving: errs[i] is the outcome of fns[i] no matter which worker
// ran it. Errors are isolated per job. When ctx is cancelled, jobs not yet
// started fail with the context's error, while running jobs abort at their
// next cancel-flag checkpoint (or complete, if they get there first); Run
// always waits for the jobs it managed to start.
func (p *Pool) Run(ctx context.Context, fns []Func) []error {
	if ctx == nil {
		//malsched:detach nil ctx selects the documented fire-and-forget contract; there is no caller context to inherit
		ctx = context.Background()
	}
	errs := make([]error, len(fns))

	// An already-cancelled context fails the whole batch up front without
	// touching the job channel, so no worker slot is consumed.
	if e := ctx.Err(); e != nil {
		for i := range errs {
			errs[i] = e
		}
		return errs
	}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	var done sync.WaitGroup
	done.Add(len(fns))
	cancelled := false
	for i, fn := range fns {
		if cancelled {
			errs[i] = ctx.Err()
			done.Done()
			continue
		}
		select {
		case p.jobs <- job{ctx: ctx, fn: fn, err: &errs[i], done: &done}:
		case <-ctx.Done():
			cancelled = true
			errs[i] = ctx.Err()
			done.Done()
		}
	}
	p.mu.RUnlock()

	done.Wait()
	return errs
}

// RunOne executes a single job on the pool and blocks for its result.
func (p *Pool) RunOne(ctx context.Context, fn Func) error {
	return p.Run(ctx, []Func{fn})[0]
}
