package benchfmt

import (
	"regexp"
	"strings"
	"testing"
)

const plainRun = `goos: linux
goarch: amd64
pkg: malsched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPhase1LP/chain_n24_m8-8         	     100	   2300000 ns/op	    2600 B/op	       9 allocs/op
BenchmarkPhase1LP/erdos_n200_m16-8       	      10	  45000000 ns/op
BenchmarkList/layered_n2000_m64-8        	     500	   2120000 ns/op	     120 B/op	       5 allocs/op
PASS
`

const jsonRun = `{"Action":"start","Package":"malsched"}
{"Action":"output","Package":"malsched","Output":"BenchmarkPhase1LP/chain_n24_m8-8 \t     100\t   2300000 ns/op\t    2600 B/op\t       9 allocs/op\n"}
{"Action":"output","Package":"malsched","Output":"some unrelated output\n"}
{"Action":"output","Package":"malsched","Output":"BenchmarkPhase1LP/chain_n24_m8-8 \t     120\t   2100000 ns/op\n"}
{"Action":"run","Package":"malsched"}
not even json
{"Action":"output","Package":"malsched","Output":"BenchmarkList/layered_n2000_m64-8 \t     500\t   2120000 ns/op\n"}
{"Action":"output","Package":"malsched","Output":"BenchmarkPhase1LP/layered_n500_m32     \t"}
{"Action":"output","Package":"malsched","Output":"       1\t1139829732 ns/op\t10372240 B/op\t   11467 allocs/op\n"}
`

func TestParsePlain(t *testing.T) {
	got, err := Parse(strings.NewReader(plainRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	r := got["BenchmarkPhase1LP/chain_n24_m8"]
	if r.NsPerOp != 2300000 || r.Samples != 1 {
		t.Errorf("chain result: %+v", r)
	}
	if _, ok := got["BenchmarkPhase1LP/chain_n24_m8-8"]; ok {
		t.Error("GOMAXPROCS suffix not stripped")
	}
}

func TestParseTestJSONAggregatesMin(t *testing.T) {
	got, err := Parse(strings.NewReader(jsonRun))
	if err != nil {
		t.Fatal(err)
	}
	r := got["BenchmarkPhase1LP/chain_n24_m8"]
	if r.NsPerOp != 2100000 {
		t.Errorf("min aggregation: ns/op = %v, want 2100000", r.NsPerOp)
	}
	if r.Samples != 2 {
		t.Errorf("samples = %d, want 2", r.Samples)
	}
	// test2json delivered this benchmark's name and measurement in separate
	// Output events; the parser must stitch them back together.
	if split := got["BenchmarkPhase1LP/layered_n500_m32"]; split.NsPerOp != 1139829732 {
		t.Errorf("split-event benchmark: %+v", split)
	}
	if len(got) != 3 {
		t.Errorf("parsed %d results, want 3", len(got))
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tmalsched\t2.7s",
		"BenchmarkBroken",
		"BenchmarkNoIters abc 123 ns/op",
		"Benchmark 100 5 ns/op", // name must be attached
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

// The gate's reason for existing: an injected 2x slowdown on a key
// benchmark must fail the comparison.
func TestCompareFailsOnInjected2xSlowdown(t *testing.T) {
	baseline, err := Parse(strings.NewReader(plainRun))
	if err != nil {
		t.Fatal(err)
	}
	slowed := strings.ReplaceAll(plainRun, "   2300000 ns/op", "   4600000 ns/op")
	current, err := Parse(strings.NewReader(slowed))
	if err != nil {
		t.Fatal(err)
	}
	key := regexp.MustCompile(`^BenchmarkPhase1LP/|^BenchmarkList/`)

	deltas, regressed := Compare(baseline, current, key, 1.25)
	if !regressed {
		t.Fatal("2x slowdown on a key benchmark did not regress the gate")
	}
	for _, d := range deltas {
		want := d.Name == "BenchmarkPhase1LP/chain_n24_m8"
		if d.Regressed != want {
			t.Errorf("%s: regressed = %v, want %v (ratio %.2f)", d.Name, d.Regressed, want, d.Ratio)
		}
	}

	// The same run compared against itself stays green.
	if _, regressed := Compare(baseline, baseline, key, 1.25); regressed {
		t.Error("identical runs regressed")
	}
}

func TestCompareThresholdIsStrict(t *testing.T) {
	base := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1000, Samples: 1}}
	key := regexp.MustCompile(`BenchmarkX`)
	at := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1250, Samples: 1}}
	if _, regressed := Compare(base, at, key, 1.25); regressed {
		t.Error("exactly-at-threshold regressed; the gate must be strict")
	}
	over := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1251, Samples: 1}}
	if _, regressed := Compare(base, over, key, 1.25); !regressed {
		t.Error("past-threshold did not regress")
	}
}

func TestCompareIgnoresNonKeyAndMissing(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkGated":   {Name: "BenchmarkGated", NsPerOp: 100, Samples: 1},
		"BenchmarkSide":    {Name: "BenchmarkSide", NsPerOp: 100, Samples: 1},
		"BenchmarkRemoved": {Name: "BenchmarkRemoved", NsPerOp: 100, Samples: 1},
	}
	current := map[string]Result{
		"BenchmarkGated": {Name: "BenchmarkGated", NsPerOp: 110, Samples: 1},
		"BenchmarkSide":  {Name: "BenchmarkSide", NsPerOp: 900, Samples: 1}, // 9x but not gated
		"BenchmarkNew":   {Name: "BenchmarkNew", NsPerOp: 100, Samples: 1},
	}
	deltas, regressed := Compare(baseline, current, regexp.MustCompile(`^BenchmarkGated$`), 1.25)
	if regressed {
		t.Error("non-key slowdown or missing benchmarks tripped the gate")
	}
	if len(deltas) != 4 {
		t.Errorf("got %d deltas, want 4 (union of names)", len(deltas))
	}
	var sb strings.Builder
	Format(&sb, deltas, 1.25)
	out := sb.String()
	for _, want := range []string{"BenchmarkGated", "BenchmarkNew", "BenchmarkRemoved", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

// Custom b.ReportMetric units (the serving delta-path counters) must be
// parsed into Extra — with B/op and allocs/op excluded — and surface in
// the formatted report.
func TestParseAndFormatExtraMetrics(t *testing.T) {
	line := "BenchmarkServeDelta/warm-8 \t       8\t   4900000 ns/op\t         1.000 delta_warm/op\t         0 delta_cold/op\t  165688 B/op\t    1199 allocs/op"
	res, ok := ParseLine(line)
	if !ok {
		t.Fatal("line rejected")
	}
	if res.NsPerOp != 4900000 {
		t.Errorf("ns/op = %v", res.NsPerOp)
	}
	if res.Extra["delta_warm/op"] != 1 || res.Extra["delta_cold/op"] != 0 {
		t.Errorf("extras = %v", res.Extra)
	}
	if _, ok := res.Extra["B/op"]; ok {
		t.Error("allocation metric leaked into Extra")
	}

	cur := map[string]Result{res.Name: res}
	old := map[string]Result{res.Name: {Name: res.Name, NsPerOp: 5000000, Samples: 1}}
	deltas, regressed := Compare(old, cur, regexp.MustCompile("."), 1.25)
	if regressed {
		t.Error("faster run regressed")
	}
	var buf strings.Builder
	Format(&buf, deltas, 1.25)
	if !strings.Contains(buf.String(), "[delta_cold/op=0 delta_warm/op=1]") {
		t.Errorf("report misses the delta counters:\n%s", buf.String())
	}
}
