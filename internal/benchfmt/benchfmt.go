// Package benchfmt parses Go benchmark output — plain `go test -bench`
// text or `go test -json` streams whose Output fields carry the benchmark
// lines (the BENCH_*.json records of `make bench-json`) — and compares two
// runs for the CI benchmark-regression gate (cmd/benchgate).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement. Repeated runs of the
// same name (from -count or re-runs inside one stream) are aggregated by
// minimum ns/op: the minimum is the least noisy estimator of the code's
// true cost under machine jitter, which only ever slows a run down.
type Result struct {
	Name    string
	NsPerOp float64
	// Samples is how many lines were aggregated into this result.
	Samples int
	// Extra holds the benchmark's custom b.ReportMetric values by unit
	// (e.g. "delta_warm/op" from the serving delta-path benchmarks); the
	// allocation metrics B/op and allocs/op are excluded. When lines are
	// aggregated, Extra follows the line the ns/op minimum came from.
	Extra map[string]float64
}

// testEvent is the subset of the `go test -json` (test2json) event shape
// the parser needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Parse reads benchmark results from r, accepting both plain benchmark
// text and test2json streams (detected per line; the two never mix within
// one). test2json chunks the original text stream arbitrarily — a slow
// benchmark's name and its measurement routinely arrive in separate Output
// events — so JSON output is reassembled per package before being split
// back into lines. Lines that are not benchmark results are ignored.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	add := func(line string) {
		res, ok := ParseLine(line)
		if !ok {
			return
		}
		if prev, seen := out[res.Name]; seen {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
				res.Extra = prev.Extra
			}
			res.Samples += prev.Samples
		}
		out[res.Name] = res
	}

	streams := make(map[string]*strings.Builder) // per-package Output text
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					b, ok := streams[ev.Package]
					if !ok {
						b = new(strings.Builder)
						streams[ev.Package] = b
						order = append(order, ev.Package)
					}
					b.WriteString(ev.Output)
				}
				continue
			}
		}
		add(line)
	}
	for _, pkg := range order {
		for _, line := range strings.Split(streams[pkg].String(), "\n") {
			add(line)
		}
	}
	return out, sc.Err()
}

// ParseLine parses one plain benchmark result line of the form
//
//	BenchmarkName-8   	     300	   8241595 ns/op	  150432 B/op	...
//
// reporting ok = false for anything else. The trailing -N GOMAXPROCS
// suffix is stripped so runs from machines with different core counts
// compare under the same name.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields[0]) == len("Benchmark") {
		return Result{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Samples: 1}
	haveNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			haveNs = true
		case "B/op", "allocs/op", "MB/s":
			// standard noise, not worth carrying
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	if !haveNs {
		return Result{}, false
	}
	return res, true
}

// Delta is one benchmark's baseline-to-current comparison.
type Delta struct {
	Name     string
	Old, New float64 // ns/op; <= 0 marks the side that is missing
	// Ratio is New/Old when both sides are present.
	Ratio float64
	// Key marks benchmarks the gate fails on (matched the key regexp).
	Key bool
	// Regressed is set when a key benchmark slowed past the threshold.
	Regressed bool
	// Extra carries the current run's custom metrics (Result.Extra) so
	// the report can show them — e.g. the serving benchmarks' delta-path
	// warm/cold counts.
	Extra map[string]float64
}

// Compare matches current results against the baseline. A key benchmark
// whose ns/op grew by more than threshold (1.25 = +25%) is marked
// regressed. Benchmarks present on only one side are reported with the
// missing side <= 0 and never regress — renames and new benchmarks must
// not wedge the gate. Deltas are sorted by name; regressed reports whether
// any delta regressed.
func Compare(baseline, current map[string]Result, key *regexp.Regexp, threshold float64) (deltas []Delta, regressed bool) {
	names := make(map[string]bool, len(baseline)+len(current))
	for name := range baseline {
		names[name] = true
	}
	for name := range current {
		names[name] = true
	}
	for name := range names {
		d := Delta{Name: name, Key: key != nil && key.MatchString(name)}
		if old, ok := baseline[name]; ok {
			d.Old = old.NsPerOp
		}
		if cur, ok := current[name]; ok {
			d.New = cur.NsPerOp
			d.Extra = cur.Extra
		}
		if d.Old > 0 && d.New > 0 {
			d.Ratio = d.New / d.Old
			d.Regressed = d.Key && d.Ratio > threshold
			regressed = regressed || d.Regressed
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, regressed
}

// Format renders deltas as an aligned report, flagging key benchmarks and
// regressions.
func Format(w io.Writer, deltas []Delta, threshold float64) {
	tw := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	tw("%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, d := range deltas {
		mark := "  "
		switch {
		case d.Regressed:
			mark = "!!"
		case d.Key:
			mark = " *"
		}
		old, cur, ratio := side(d.Old), side(d.New), "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", d.Ratio)
		}
		tw("%s %-53s %14s %14s %8s%s\n", mark, d.Name, old, cur, ratio, extras(d.Extra))
	}
	tw("(* = gated, !! = regressed past %.2fx)\n", threshold)
}

func side(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return strconv.FormatFloat(ns, 'f', 0, 64)
}

// extras renders a result's custom metrics as a trailing annotation
// ("  [delta_warm/op=1 delta_cold/op=0]"), sorted by unit for stable output.
func extras(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	var b strings.Builder
	b.WriteString("  [")
	for i, u := range units {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%g", u, m[u])
	}
	b.WriteByte(']')
	return b.String()
}
