package lp

import (
	"math"
	"math/rand"
	"testing"
)

// perturbNumbers returns a copy of p with the same structure (variables,
// rows, senses, sparsity pattern) but every number — objective, bounds,
// coefficients, rhs — multiplicatively perturbed by about eps. This is
// the shape of problem SolveHotWith exists for: the edited instance of
// the serving layer's delta path.
func perturbNumbers(p *Problem, r *rand.Rand, eps float64) *Problem {
	jitter := func(x float64) float64 {
		if x == 0 || math.IsInf(x, 0) {
			return x
		}
		return x * (1 + eps*r.NormFloat64())
	}
	q := NewProblem()
	for v := 0; v < p.NumVars(); v++ {
		q.AddVar("")
		q.SetObj(v, jitter(p.obj[v]))
		lo, hi := p.Bounds(v)
		if lo == hi {
			f := jitter(lo)
			q.SetBounds(v, f, f)
			continue
		}
		nl, nh := jitter(lo), jitter(hi)
		if nh < nl {
			nl, nh = nh, nl
		}
		q.SetBounds(v, nl, nh)
	}
	for _, c := range p.cons {
		terms := make([]Term, len(c.terms))
		for i, t := range c.terms {
			terms[i] = Term{t.Var, jitter(t.Coef)}
		}
		q.AddConstraint(c.sense, jitter(c.rhs), terms...)
	}
	return q
}

// TestSolveHotMatchesCold is the core differential test for the warm
// start: transplanting the basis of a solved LP onto a same-structure,
// perturbed-numbers LP must reach the same optimum a cold solve finds.
func TestSolveHotMatchesCold(t *testing.T) {
	hotWS, coldWS, baseWS := NewWorkspace(), NewWorkspace(), NewWorkspace()
	agreed := 0
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		base := NewProblem()
		buildBoundedLP(base, r, 2+r.Intn(8), 1+r.Intn(8))
		if _, err := base.SolveWith(baseWS); err != nil {
			continue // infeasible base: nothing to warm-start from
		}
		bas := baseWS.ExportBasis()
		if bas == nil {
			t.Fatalf("seed %d: no basis exported after successful solve", seed)
		}
		edited := perturbNumbers(base, r, 1e-3)
		hot, errH := edited.SolveHotWith(hotWS, bas)
		cold, errC := edited.SolveWith(coldWS)
		if (errH == nil) != (errC == nil) {
			t.Fatalf("seed %d: hot err=%v cold err=%v", seed, errH, errC)
		}
		if errH != nil {
			continue
		}
		tolObj := 1e-6 * (1 + math.Abs(cold.Obj))
		if math.Abs(hot.Obj-cold.Obj) > tolObj {
			t.Errorf("seed %d: objective hot %v != cold %v", seed, hot.Obj, cold.Obj)
		}
		checkFeasible(t, edited, hot.X, seed)
		agreed++
	}
	if agreed < 100 {
		t.Fatalf("only %d/200 seeds produced solvable pairs; generator broken", agreed)
	}
}

// TestSolveHotIdenticalProblem: re-solving the exact problem the basis
// came from must terminate without simplex work — the transplanted basis
// is already optimal, so both bound-shift and restore phases are empty.
func TestSolveHotIdenticalProblem(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewProblem()
	buildBoundedLP(p, r, 8, 6)
	ws := NewWorkspace()
	cold, err := p.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	coldObj := cold.Obj
	bas := ws.ExportBasis()
	hot, err := p.SolveHotWith(NewWorkspace(), bas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hot.Obj-coldObj) > 1e-9*(1+math.Abs(coldObj)) {
		t.Errorf("identical re-solve moved the objective: %v -> %v", coldObj, hot.Obj)
	}
	if hot.Stats.Phase1Iters != 0 {
		t.Errorf("warm start ran %d phase-1 iterations; must never need artificials", hot.Stats.Phase1Iters)
	}
}

// TestSolveHotFallsBack: structural mismatches between problem and basis
// must degrade to a correct cold solve, never fail.
func TestSolveHotFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := NewProblem()
	buildBoundedLP(p, r, 6, 4)
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, bas *Basis) {
		t.Helper()
		got, err := p.SolveHotWith(NewWorkspace(), bas)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
			t.Errorf("%s: objective %v != cold %v", name, got.Obj, want.Obj)
		}
	}
	check("nil basis", nil)
	check("wrong nvars", &Basis{Status: make([]int8, 3+p.NumConstraints()), NVars: 3, NRows: p.NumConstraints()})
	check("wrong nrows", &Basis{Status: make([]int8, p.NumVars()+1), NVars: p.NumVars(), NRows: 1})
	check("short status", &Basis{Status: make([]int8, 2), NVars: p.NumVars(), NRows: p.NumConstraints()})
	bad := make([]int8, p.NumVars()+p.NumConstraints())
	for i := range bad {
		bad[i] = 99
	}
	check("garbage statuses", &Basis{Status: bad, NVars: p.NumVars(), NRows: p.NumConstraints()})
	// All-basic and all-nonbasic status vectors have the wrong basic count.
	allB := make([]int8, p.NumVars()+p.NumConstraints())
	for i := range allB {
		allB[i] = stBasic
	}
	check("all basic", &Basis{Status: allB, NVars: p.NumVars(), NRows: p.NumConstraints()})
	check("all nonbasic", &Basis{Status: make([]int8, p.NumVars()+p.NumConstraints()), NVars: p.NumVars(), NRows: p.NumConstraints()})
}

// TestSolveHotBasisFromDifferentStructure: a basis from an unrelated LP
// of coincidentally matching dimensions must still land on the edited
// problem's optimum (via repair or fallback — correctness either way).
func TestSolveHotBasisFromDifferentStructure(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		a, b := NewProblem(), NewProblem()
		n, mrows := 3+r.Intn(5), 2+r.Intn(4)
		buildBoundedLP(a, r, n, mrows)
		buildBoundedLP(b, r, n, mrows)
		if a.NumConstraints() != b.NumConstraints() {
			continue
		}
		ws := NewWorkspace()
		if _, err := a.SolveWith(ws); err != nil {
			continue
		}
		bas := ws.ExportBasis()
		cold, errC := b.Solve()
		hot, errH := b.SolveHotWith(NewWorkspace(), bas)
		if (errH == nil) != (errC == nil) {
			t.Fatalf("seed %d: hot err=%v cold err=%v", seed, errH, errC)
		}
		if errC != nil {
			continue
		}
		if math.Abs(hot.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Errorf("seed %d: objective hot %v != cold %v", seed, hot.Obj, cold.Obj)
		}
		checkFeasible(t, b, hot.X, seed)
	}
}

// TestSolveHotThenReSolve: the delta path appends cut rows after a hot
// start, so a hot solve must leave the workspace in the state ReSolveWith
// expects (solvedVars/solvedRows valid, no artificials).
func TestSolveHotThenReSolve(t *testing.T) {
	r := rand.New(rand.NewSource(4)) // a seed whose perturbation stays feasible
	p := NewProblem()
	buildBoundedLP(p, r, 8, 5)
	ws := NewWorkspace()
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	bas := ws.ExportBasis()

	edited := perturbNumbers(p, r, 1e-3)
	hws := NewWorkspace()
	hot, err := edited.SolveHotWith(hws, bas)
	if err != nil {
		t.Fatal(err)
	}
	// Append a row pinning x0 at its current optimal value — feasible by
	// construction (the hot optimum satisfies it), weakly binding — and
	// re-solve warm; differential against a cold solve. The dual pivots
	// themselves are exercised by TestReSolveWarmMatchesCold; this test
	// checks the workspace handoff hot start -> row-append restart.
	edited.AddConstraint(LE, hot.X[0], Term{0, 1})
	warm, err := edited.ReSolveWith(hws)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := edited.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
		t.Errorf("resolve after hot start: objective warm %v != cold %v", warm.Obj, cold.Obj)
	}
	checkFeasible(t, edited, warm.X, 3)
}

// TestExportBasisInvalid: no solve, failed solve, or a phase-1 exit with
// artificials must yield a nil export.
func TestExportBasisInvalid(t *testing.T) {
	if bas := NewWorkspace().ExportBasis(); bas != nil {
		t.Error("fresh workspace exported a basis")
	}
	// Infeasible problem: x >= 1 and x <= 0.
	p := NewProblem()
	x := p.AddVar("x")
	p.AddConstraint(GE, 1, Term{x, 1})
	p.AddConstraint(LE, 0, Term{x, 1})
	ws := NewWorkspace()
	if _, err := p.SolveWith(ws); err == nil {
		t.Fatal("infeasible problem solved")
	}
	if bas := ws.ExportBasis(); bas != nil {
		t.Error("failed solve exported a basis")
	}
}

// TestSolveHotDeferPolish: under DeferPolish the hot solve must behave
// like SolveWith — perturbed answer first, exact after PolishWith.
func TestSolveHotDeferPolish(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	p := NewProblem()
	buildBoundedLP(p, r, 8, 6)
	ws := NewWorkspace()
	if _, err := p.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	bas := ws.ExportBasis()
	edited := perturbNumbers(p, r, 1e-3)
	cold, err := edited.Solve()
	if err != nil {
		t.Fatal(err)
	}
	hws := NewWorkspace()
	hws.DeferPolish = true
	if _, err := edited.SolveHotWith(hws, bas); err != nil {
		t.Fatal(err)
	}
	polished, err := edited.PolishWith(hws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(polished.Obj-cold.Obj) > 1e-9*(1+math.Abs(cold.Obj)) {
		t.Errorf("polished hot solve: objective %v != cold %v", polished.Obj, cold.Obj)
	}
}
