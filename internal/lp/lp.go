// Package lp implements linear-programming support for the allotment phase
// of the Jansen–Zhang algorithm: two from-scratch solvers for programs of
// the form
//
//	minimize  c·x
//	subject to  a_i·x  (<= | >= | =)  b_i,   lo_j <= x_j <= hi_j.
//
// Go's ecosystem has no standard LP solver, so both are built on the
// standard library only.
//
// The default solver (Solve / SolveWith / ReSolveWith) is a sparse
// bounded-variable revised simplex: constraint columns are stored in
// compressed sparse column form, the basis is maintained as a sparse LU
// factorization (Gilbert–Peierls left-looking, partial pivoting) updated
// with a product-form eta file and refactorized periodically, pricing is
// devex (reference-framework weights, bucketed partial pricing) with a
// Bland fallback on degenerate stalls, and variable bounds are handled
// implicitly (SetBounds) so domain rows never enter the constraint
// matrix. ReSolveWith warm-starts from the previous optimal basis with
// the dual simplex after rows were appended, which is what the lazy cut
// loop in internal/allot runs on.
//
// The original dense two-phase tableau solver is retained as SolveDense /
// SolveDenseWith (see dense.go): it is the differential-testing reference
// for the sparse core, exactly as listsched.RunReference is for the
// phase-2 scheduler.
//
// For repeated solves both solvers support amortised allocation through
// reusable workspaces (grown geometrically, reused across solves), and
// Problem.Reset lets a caller rebuild a same-shaped problem in place.
package lp

import (
	"errors"
	"fmt"
	"math"

	"malsched/internal/cancelflag"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x  = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. Variables default to the
// non-negative orthant [0, +Inf); SetBounds attaches general bounds that
// the sparse solver enforces implicitly, without constraint rows.
type Problem struct {
	nvars int
	obj   []float64 // objective coefficient per variable
	lo    []float64 // lower bound per variable
	hi    []float64 // upper bound per variable
	cons  []constraint
}

// NewProblem returns an empty minimisation problem.
func NewProblem() *Problem {
	return &Problem{}
}

// Reset clears the problem to empty while keeping the allocated capacity of
// its variable, objective, bound and constraint storage, so a caller
// rebuilding a same-shaped problem performs (almost) no allocation.
func (p *Problem) Reset() {
	p.nvars = 0
	p.obj = p.obj[:0]
	p.lo = p.lo[:0]
	p.hi = p.hi[:0]
	p.cons = p.cons[:0]
}

// AddVar introduces a new variable with default bounds [0, +Inf) and
// returns its index. The name documents the call site only; the solver
// does not retain it.
func (p *Problem) AddVar(name string) int {
	p.obj = append(p.obj, 0)
	p.lo = append(p.lo, 0)
	p.hi = append(p.hi, math.Inf(1))
	p.nvars++
	return p.nvars - 1
}

// NumVars returns the number of variables declared so far.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObj sets the objective coefficient of variable v.
func (p *Problem) SetObj(v int, c float64) {
	p.checkVar(v)
	p.obj[v] = c
}

// SetBounds restricts variable v to lo <= x_v <= hi. The sparse solver
// enforces bounds implicitly (they cost nothing per simplex iteration);
// the dense reference materialises them as explicit rows. lo must be
// finite (hi may be +Inf), lo <= hi, and neither may be NaN; lo == hi
// fixes the variable.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.checkVar(v)
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || lo > hi {
		panic(fmt.Sprintf("lp: invalid bounds [%v, %v] for variable %d", lo, hi, v))
	}
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) {
	p.checkVar(v)
	return p.lo[v], p.hi[v]
}

// AddConstraint appends the constraint terms (sense) rhs. After a Reset the
// term storage of previously built constraints is reused.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	if len(p.cons) < cap(p.cons) {
		// Reuse the retired constraint's term buffer (Reset keeps capacity).
		p.cons = p.cons[:len(p.cons)+1]
	} else {
		p.cons = append(p.cons, constraint{})
	}
	c := &p.cons[len(p.cons)-1]
	c.terms = append(c.terms[:0], terms...)
	c.sense = sense
	c.rhs = rhs
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.nvars {
		panic(fmt.Sprintf("lp: variable %d out of range (have %d)", v, p.nvars))
	}
}

// Solution is an optimal basic solution.
type Solution struct {
	X   []float64 // values of the original variables
	Obj float64   // objective value c·X
	// Stats describes the solver effort.
	Stats Stats
}

// Stats reports simplex effort for benchmarking and diagnostics.
type Stats struct {
	Rows        int // constraint rows
	Cols        int // structural + logical (+ artificial) columns
	Phase1Iters int
	Phase2Iters int // includes dual-simplex iterations of warm restarts
	// Factorizations counts basis (re)factorizations of the sparse solver;
	// the dense reference leaves it zero.
	Factorizations int
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
	ErrSingular   = errors.New("lp: basis is numerically singular")
	// ErrCanceled is returned when Workspace.Cancel was set mid-solve; it
	// aliases cancelflag.ErrCanceled so callers match either sentinel.
	ErrCanceled = cancelflag.ErrCanceled
)

// FaultLUFactor is a fault-injection hook (internal/faultinject): when
// non-nil and returning true, a basis factorization reports ErrSingular.
// nil in production builds — the cost there is one pointer comparison per
// factorization.
var FaultLUFactor func() bool

const tol = 1e-9

// grow returns s resized to n, reallocating geometrically when the capacity
// is insufficient. Contents are unspecified (callers zero-fill).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

// Solve runs the sparse revised simplex and returns an optimal solution.
// The returned Solution owns its X slice: it does not alias any solver
// state and stays valid indefinitely. The problem is left unmodified.
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.SolveWith(NewWorkspace())
	if err != nil {
		return nil, err
	}
	owned := *sol
	owned.X = append([]float64(nil), sol.X...)
	return &owned, nil
}

// SolveDense runs the dense two-phase tableau reference solver. Like
// Solve, the returned Solution owns its X slice.
func (p *Problem) SolveDense() (*Solution, error) {
	sol, err := p.SolveDenseWith(NewDenseWorkspace())
	if err != nil {
		return nil, err
	}
	owned := *sol
	owned.X = append([]float64(nil), sol.X...)
	return &owned, nil
}
