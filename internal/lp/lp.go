// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize  c·x
//	subject to  a_i·x  (<= | >= | =)  b_i,   x >= 0.
//
// Go's ecosystem has no standard LP solver, and the allotment phase of the
// Jansen–Zhang algorithm is a linear program (Eq. (9) of the paper), so this
// package is built from scratch on the standard library only. It uses the
// classic tableau method: phase 1 minimises the sum of artificial variables
// to find a basic feasible solution, phase 2 minimises the true objective.
// Dantzig pricing is used by default with a switch to Bland's rule after an
// iteration budget to guarantee termination on degenerate problems.
//
// For repeated solves the package supports amortised allocation: a Workspace
// owns the tableau, basis and pricing buffers (grown geometrically, reused
// across solves), and Problem.Reset lets a caller rebuild a same-shaped
// problem in place. See SolveWith.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x  = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. All variables are
// implicitly non-negative; bounded or free variables must be modelled with
// explicit constraints or variable splitting by the caller.
type Problem struct {
	nvars int
	obj   []float64 // objective coefficient per variable
	cons  []constraint
}

// NewProblem returns an empty minimisation problem.
func NewProblem() *Problem {
	return &Problem{}
}

// Reset clears the problem to empty while keeping the allocated capacity of
// its variable, objective and constraint storage, so a caller rebuilding a
// same-shaped problem performs (almost) no allocation.
func (p *Problem) Reset() {
	p.nvars = 0
	p.obj = p.obj[:0]
	p.cons = p.cons[:0]
}

// AddVar introduces a new non-negative variable and returns its index. The
// name documents the call site only; the solver does not retain it.
func (p *Problem) AddVar(name string) int {
	p.obj = append(p.obj, 0)
	p.nvars++
	return p.nvars - 1
}

// NumVars returns the number of variables declared so far.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObj sets the objective coefficient of variable v.
func (p *Problem) SetObj(v int, c float64) {
	p.checkVar(v)
	p.obj[v] = c
}

// AddConstraint appends the constraint terms (sense) rhs. After a Reset the
// term storage of previously built constraints is reused.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	if len(p.cons) < cap(p.cons) {
		// Reuse the retired constraint's term buffer (Reset keeps capacity).
		p.cons = p.cons[:len(p.cons)+1]
	} else {
		p.cons = append(p.cons, constraint{})
	}
	c := &p.cons[len(p.cons)-1]
	c.terms = append(c.terms[:0], terms...)
	c.sense = sense
	c.rhs = rhs
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.nvars {
		panic(fmt.Sprintf("lp: variable %d out of range (have %d)", v, p.nvars))
	}
}

// Solution is an optimal basic solution.
type Solution struct {
	X   []float64 // values of the original variables
	Obj float64   // objective value c·X
	// Stats describes the solver effort.
	Stats Stats
}

// Stats reports simplex effort for benchmarking and diagnostics.
type Stats struct {
	Rows        int // constraint rows
	Cols        int // structural + slack + artificial columns
	Phase1Iters int
	Phase2Iters int
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
)

const tol = 1e-9

// Workspace owns the solver's scratch memory: the dense tableau (backed by
// one flat buffer), the basis, the reduced-cost and cost rows, and the
// solution vector. Buffers grow geometrically and are reused across solves,
// so repeated SolveWith calls on same-shaped problems do near-zero
// allocation. A Workspace is owned by one goroutine at a time; it is not
// safe for concurrent use.
type Workspace struct {
	flat   []float64   // backing array for the tableau rows
	rows   [][]float64 // row views into flat
	basis  []int
	red    []float64 // reduced-cost row
	cost   []float64 // current phase's cost row
	x      []float64 // solution values, aliased by Solution.X
	senses []Sense   // per-row sense after rhs normalisation
	sol    Solution  // returned by SolveWith; overwritten by the next call
	sx     simplex
}

// NewWorkspace returns an empty workspace. The zero value is also ready to
// use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow returns s resized to n, reallocating geometrically when the capacity
// is insufficient. Contents are unspecified (callers zero-fill).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

// Solve runs two-phase simplex and returns an optimal solution. It is
// equivalent to SolveWith on a fresh workspace: the returned solution does
// not alias solver state and the problem is left unmodified.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWith(NewWorkspace())
}

// SolveWith runs two-phase simplex using ws's buffers (a nil ws behaves
// like Solve). The returned Solution and its X slice alias workspace memory
// and are invalidated by the next SolveWith call on the same workspace;
// callers keeping results across solves must copy them out. The problem
// itself is never modified, so it may be re-solved or rebuilt freely.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	m := len(p.cons)
	n := p.nvars
	if n == 0 {
		ws.sol = Solution{}
		return &ws.sol, nil
	}

	// Pass 1: normalise senses (a negative rhs flips LE<->GE) and count the
	// slack/surplus and artificial columns.
	ws.senses = grow(ws.senses, m)
	nslack, nart := 0, 0
	for i, c := range p.cons {
		s := c.sense
		if c.rhs < 0 {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		ws.senses[i] = s
		if s != EQ {
			nslack++
		}
		if s != LE {
			nart++
		}
	}
	total := n + nslack + nart
	artStart := n + nslack
	stride := total + 1

	// Pass 2: write the tableau directly into the flat workspace buffer:
	// m rows x (total+1) columns, last column = rhs.
	ws.flat = grow(ws.flat, m*stride)
	clear(ws.flat)
	ws.rows = grow(ws.rows, m)
	for i := 0; i < m; i++ {
		ws.rows[i] = ws.flat[i*stride : (i+1)*stride : (i+1)*stride]
	}
	ws.basis = grow(ws.basis, m)
	si, ai := 0, 0
	for i, c := range p.cons {
		row := ws.rows[i]
		neg := c.rhs < 0
		for _, t := range c.terms {
			if neg {
				row[t.Var] -= t.Coef
			} else {
				row[t.Var] += t.Coef
			}
		}
		rhs := c.rhs
		if neg {
			rhs = -rhs
		}
		row[total] = rhs
		switch ws.senses[i] {
		case LE:
			row[n+si] = 1
			ws.basis[i] = n + si
			si++
		case GE:
			row[n+si] = -1
			si++
			row[artStart+ai] = 1
			ws.basis[i] = artStart + ai
			ai++
		case EQ:
			row[artStart+ai] = 1
			ws.basis[i] = artStart + ai
			ai++
		}
	}

	ws.red = grow(ws.red, total)
	ws.cost = grow(ws.cost, total)
	s := &ws.sx
	*s = simplex{t: ws.rows, basis: ws.basis, ncols: total, nrows: m, red: ws.red}

	stats := Stats{Rows: m, Cols: total}
	if nart > 0 {
		// Phase 1: minimise the sum of artificials.
		cost := ws.cost
		clear(cost)
		for j := artStart; j < total; j++ {
			cost[j] = 1
		}
		obj, err := s.run(cost, artStart) // artificials allowed in phase 1
		stats.Phase1Iters = s.iters
		if err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		if obj > 1e-7 {
			return nil, ErrInfeasible
		}
		// Pivot remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if s.basis[i] >= artStart {
				pivoted := false
				for j := 0; j < artStart; j++ {
					if math.Abs(s.t[i][j]) > 1e-7 {
						s.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row: zero it (keeps indices stable).
					for j := range s.t[i] {
						s.t[i][j] = 0
					}
				}
			}
		}
	}

	// Phase 2: minimise the real objective; artificial columns forbidden.
	cost := ws.cost
	clear(cost)
	copy(cost, p.obj)
	forbid := total
	if nart > 0 {
		forbid = artStart
	}
	if _, err := s.run(cost, forbid); err != nil {
		return nil, err
	}
	stats.Phase2Iters = s.iters

	ws.x = grow(ws.x, n)
	clear(ws.x)
	for i, b := range s.basis {
		if b < n {
			ws.x[b] = s.t[i][total]
		}
	}
	obj := 0.0
	for v, c := range p.obj {
		obj += c * ws.x[v]
	}
	ws.sol = Solution{X: ws.x, Obj: obj, Stats: stats}
	return &ws.sol, nil
}

// simplex holds the working tableau. Columns >= limit are not eligible to
// enter the basis (used to freeze artificials in phase 2).
type simplex struct {
	t     [][]float64
	basis []int
	red   []float64 // reduced-cost scratch row, len ncols
	nrows int
	ncols int
	iters int // pivots performed in the most recent run
}

// run minimises cost·x over the current tableau. It returns the achieved
// objective value. Columns with index >= limit may not enter the basis.
func (s *simplex) run(cost []float64, limit int) (float64, error) {
	s.iters = 0
	// Build the reduced-cost row: z_j = cost_j - cost_B · column_j for the
	// current basis.
	red := s.red
	copy(red, cost)
	for i, b := range s.basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		row := s.t[i]
		for j := 0; j < s.ncols; j++ {
			red[j] -= cb * row[j]
		}
	}

	maxIter := 200 * (s.nrows + s.ncols)
	blandAfter := 20 * (s.nrows + s.ncols)
	for iter := 0; iter < maxIter; iter++ {
		s.iters = iter + 1
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -tol
			for j := 0; j < limit; j++ {
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		} else { // Bland: first eligible index, guarantees termination
			for j := 0; j < limit; j++ {
				if red[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// Recompute the objective from the final basis for numerical
			// hygiene (the incrementally tracked offset can drift).
			obj := 0.0
			for i, b := range s.basis {
				obj += cost[b] * s.t[i][s.ncols]
			}
			return obj, nil
		}

		// Ratio test for the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.nrows; i++ {
			a := s.t[i][enter]
			if a > tol {
				r := s.t[i][s.ncols] / a
				if r < bestRatio-tol || (r < bestRatio+tol && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}

		s.pivot(leave, enter)
		// Update the reduced-cost row with the same elimination.
		f := red[enter]
		if f != 0 {
			prow := s.t[leave]
			for j := 0; j < s.ncols; j++ {
				red[j] -= f * prow[j]
			}
			red[enter] = 0
		}
	}
	return 0, ErrIterLimit
}

// pivot performs a Gauss-Jordan pivot on element (r, c).
func (s *simplex) pivot(r, c int) {
	prow := s.t[r]
	pv := prow[c]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[c] = 1 // exact
	for i := 0; i < s.nrows; i++ {
		if i == r {
			continue
		}
		f := s.t[i][c]
		if f == 0 {
			continue
		}
		row := s.t[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[c] = 0 // exact
	}
	s.basis[r] = c
}
