// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize  c·x
//	subject to  a_i·x  (<= | >= | =)  b_i,   x >= 0.
//
// Go's ecosystem has no standard LP solver, and the allotment phase of the
// Jansen–Zhang algorithm is a linear program (Eq. (9) of the paper), so this
// package is built from scratch on the standard library only. It uses the
// classic tableau method: phase 1 minimises the sum of artificial variables
// to find a basic feasible solution, phase 2 minimises the true objective.
// Dantzig pricing is used by default with a switch to Bland's rule after an
// iteration budget to guarantee termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x  = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. All variables are
// implicitly non-negative; bounded or free variables must be modelled with
// explicit constraints or variable splitting by the caller.
type Problem struct {
	nvars int
	names []string
	obj   map[int]float64
	cons  []constraint
}

// NewProblem returns an empty minimisation problem.
func NewProblem() *Problem {
	return &Problem{obj: make(map[int]float64)}
}

// AddVar introduces a new non-negative variable and returns its index.
func (p *Problem) AddVar(name string) int {
	p.names = append(p.names, name)
	p.nvars++
	return p.nvars - 1
}

// NumVars returns the number of variables declared so far.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObj sets the objective coefficient of variable v.
func (p *Problem) SetObj(v int, c float64) {
	p.checkVar(v)
	p.obj[v] = c
}

// AddConstraint appends the constraint terms (sense) rhs.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{terms: cp, sense: sense, rhs: rhs})
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.nvars {
		panic(fmt.Sprintf("lp: variable %d out of range (have %d)", v, p.nvars))
	}
}

// Solution is an optimal basic solution.
type Solution struct {
	X   []float64 // values of the original variables
	Obj float64   // objective value c·X
	// Stats describes the solver effort.
	Stats Stats
}

// Stats reports simplex effort for benchmarking and diagnostics.
type Stats struct {
	Rows        int // constraint rows
	Cols        int // structural + slack + artificial columns
	Phase1Iters int
	Phase2Iters int
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
)

const tol = 1e-9

// Solve runs two-phase simplex and returns an optimal solution.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.cons)
	n := p.nvars
	if n == 0 {
		return &Solution{X: nil, Obj: 0}, nil
	}

	// Count structural columns: one slack/surplus per inequality row, one
	// artificial per GE/EQ row (and per LE row with negative rhs, handled by
	// negating the row to GE form first).
	type rowSpec struct {
		coefs []float64
		rhs   float64
		sense Sense
	}
	rows := make([]rowSpec, m)
	for i, c := range p.cons {
		coefs := make([]float64, n)
		for _, t := range c.terms {
			coefs[t.Var] += t.Coef
		}
		rhs, sense := c.rhs, c.sense
		if rhs < 0 { // normalise to rhs >= 0
			for j := range coefs {
				coefs[j] = -coefs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = rowSpec{coefs: coefs, rhs: rhs, sense: sense}
	}

	nslack := 0
	nart := 0
	for _, r := range rows {
		if r.sense != EQ {
			nslack++
		}
		if r.sense != LE {
			nart++
		}
	}
	total := n + nslack + nart
	artStart := n + nslack

	// Build tableau: m rows x (total+1) columns, last column = rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	si, ai := 0, 0
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.coefs)
		row[total] = r.rhs
		switch r.sense {
		case LE:
			row[n+si] = 1
			basis[i] = n + si
			si++
		case GE:
			row[n+si] = -1
			si++
			row[artStart+ai] = 1
			basis[i] = artStart + ai
			ai++
		case EQ:
			row[artStart+ai] = 1
			basis[i] = artStart + ai
			ai++
		}
		t[i] = row
	}

	s := &simplex{t: t, basis: basis, ncols: total, nrows: m}

	stats := Stats{Rows: m, Cols: total}
	if nart > 0 {
		// Phase 1: minimise the sum of artificials.
		cost := make([]float64, total)
		for j := artStart; j < total; j++ {
			cost[j] = 1
		}
		obj, err := s.run(cost, artStart) // artificials allowed in phase 1
		stats.Phase1Iters = s.iters
		if err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		if obj > 1e-7 {
			return nil, ErrInfeasible
		}
		// Pivot remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if s.basis[i] >= artStart {
				pivoted := false
				for j := 0; j < artStart; j++ {
					if math.Abs(s.t[i][j]) > 1e-7 {
						s.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row: zero it (keeps indices stable).
					for j := range s.t[i] {
						s.t[i][j] = 0
					}
				}
			}
		}
	}

	// Phase 2: minimise the real objective; artificial columns forbidden.
	cost := make([]float64, total)
	for v, c := range p.obj {
		cost[v] = c
	}
	forbid := total
	if nart > 0 {
		forbid = artStart
	}
	if _, err := s.run(cost, forbid); err != nil {
		return nil, err
	}
	stats.Phase2Iters = s.iters

	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.t[i][total]
		}
	}
	obj := 0.0
	for v, c := range p.obj {
		obj += c * x[v]
	}
	return &Solution{X: x, Obj: obj, Stats: stats}, nil
}

// simplex holds the working tableau. Columns >= limit are not eligible to
// enter the basis (used to freeze artificials in phase 2).
type simplex struct {
	t     [][]float64
	basis []int
	nrows int
	ncols int
	iters int // pivots performed in the most recent run
}

// run minimises cost·x over the current tableau. It returns the achieved
// objective value. Columns with index >= limit may not enter the basis.
func (s *simplex) run(cost []float64, limit int) (float64, error) {
	s.iters = 0
	// Build the reduced-cost row: z_j = cost_j - cost_B · column_j for the
	// current basis.
	red := make([]float64, s.ncols)
	copy(red, cost)
	for i, b := range s.basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < s.ncols; j++ {
			red[j] -= cb * s.t[i][j]
		}
	}

	maxIter := 200 * (s.nrows + s.ncols)
	blandAfter := 20 * (s.nrows + s.ncols)
	for iter := 0; iter < maxIter; iter++ {
		s.iters = iter + 1
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -tol
			for j := 0; j < limit; j++ {
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		} else { // Bland: first eligible index, guarantees termination
			for j := 0; j < limit; j++ {
				if red[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// Recompute the objective from the final basis for numerical
			// hygiene (the incrementally tracked offset can drift).
			obj := 0.0
			for i, b := range s.basis {
				obj += cost[b] * s.t[i][s.ncols]
			}
			return obj, nil
		}

		// Ratio test for the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.nrows; i++ {
			a := s.t[i][enter]
			if a > tol {
				r := s.t[i][s.ncols] / a
				if r < bestRatio-tol || (r < bestRatio+tol && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}

		s.pivot(leave, enter)
		// Update the reduced-cost row with the same elimination.
		f := red[enter]
		if f != 0 {
			for j := 0; j < s.ncols; j++ {
				red[j] -= f * s.t[leave][j]
			}
			red[enter] = 0
		}
	}
	return 0, ErrIterLimit
}

// pivot performs a Gauss-Jordan pivot on element (r, c).
func (s *simplex) pivot(r, c int) {
	prow := s.t[r]
	pv := prow[c]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[c] = 1 // exact
	for i := 0; i < s.nrows; i++ {
		if i == r {
			continue
		}
		f := s.t[i][c]
		if f == 0 {
			continue
		}
		row := s.t[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[c] = 0 // exact
	}
	s.basis[r] = c
}
