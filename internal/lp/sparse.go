// The sparse bounded-variable revised simplex. The constraint matrix is
// held in compressed sparse column form with one logical (slack) column
// per row, so the working problem is
//
//	min c·x   s.t.   A x + s = b,   lo <= (x, s) <= hi,
//
// where the logical bounds encode the row sense (LE: s in [0, +Inf),
// GE: s in (-Inf, 0], EQ: s = 0). Variable bounds are enforced
// implicitly: a nonbasic variable rests at one of its bounds and the
// ratio test lets an entering variable flip to its opposite bound
// without a basis change, so bound rows never appear in the matrix.
//
// The basis is a sparse LU factorization (lu.go) amended by a
// product-form eta file: each pivot appends one eta vector and the basis
// is refactorized after RefactorEvery etas or on numerical trouble. The
// per-iteration linear algebra is hypersparse: FTRAN of the entering
// column and BTRAN of the leaving unit vector track their nonzero
// patterns through DFS-reach triangular solves, so an iteration costs
// O(pattern) instead of O(m). Reduced costs are maintained incrementally
// across pivots (the classic d_j update along row r of B^-1 A, driven by
// the row-wise constraint storage) and recomputed exactly at every
// refactorization; an apparent optimum on maintained values is confirmed
// against freshly recomputed ones before the solver declares it.
//
// Feasibility is obtained with artificial unit columns on the rows whose
// logical cannot host the initial residual (phase 1 minimises their sum,
// then fixes them to zero; artificials never re-enter the basis).
// Pricing is devex (Harris reference-framework weights approximating the
// steepest-edge norms, entering column maximising d_j^2/w_j) over
// fixed-size candidate buckets scanned partially behind a rotating
// cursor, with weights reset to the unit framework at every
// refactorization and a switch to Bland's rule after a run of degenerate
// pivots. The dual simplex drives the warm restarts of ReSolveWith after
// rows were appended: the old optimal basis stays dual feasible, the
// appended rows' logicals enter basic and possibly primal-infeasible,
// and dual pivots restore feasibility without restarting from scratch;
// its leaving-row choice scans an incrementally maintained set of
// bound-violating basis positions instead of all m rows.

package lp

import (
	"fmt"
	"math"

	"malsched/internal/cancelflag"
)

// Nonbasic/basic status of a column.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	stBasic
)

const (
	dualTol  = 1e-9 // reduced-cost tolerance for entering candidates
	pivotTol = 1e-9 // smallest alpha treated as a usable ratio-test pivot
	ratioTol = 1e-9 // ratio-test tie window
	degenTol = 1e-9 // step lengths below this count as degenerate
	// perturbScale sizes the anti-degeneracy cost perturbation of
	// perturbCosts: large enough to beat the 1e-9 pricing tolerance by
	// orders of magnitude, small enough that polish converges in a few
	// pivots.
	perturbScale = 1e-7
	// priceBucket is the partial-pricing granularity: price scans whole
	// buckets of this many columns behind a rotating cursor and stops
	// early once a bucket yielded an entering candidate (after at least
	// priceMinBuckets buckets, so devex has a pool to choose from).
	priceBucket     = 2048
	priceMinBuckets = 16
)

// Workspace owns the sparse solver's entire state: the CSC model, bounds
// and costs, the basis with its LU factorization and eta file, the
// maintained reduced costs, sparse pattern-tracked scratch vectors and
// the solution buffer. Buffers grow geometrically and are reused across
// solves, so repeated SolveWith calls on same-shaped problems do
// near-zero allocation. A Workspace is owned by one goroutine at a time;
// it is not safe for concurrent use.
type Workspace struct {
	// RefactorEvery caps the eta-file length before the basis is
	// refactorized from scratch; 0 means the default (128, the sweet spot
	// measured on the phase-1 workloads). Tests lower it to exercise the
	// refactorization path densely.
	RefactorEvery int

	// DeferPolish leaves the anti-degeneracy cost perturbation in place
	// when SolveWith/ReSolveWith return, deferring its removal to an
	// explicit PolishWith call. Solutions returned in between are optimal
	// for the perturbed costs only (objective error O(perturbScale));
	// iterating callers — the lazy cut loop in internal/allot — use them
	// to select cuts and polish once at the end instead of re-fighting
	// the degenerate final pivots every round.
	DeferPolish bool

	// Cancel, when non-nil, is polled by the primal and dual pivot loops
	// (every pivot — an atomic load against pivots costing hundreds of
	// microseconds at scale) and aborts the solve with ErrCanceled once
	// set. The engine layer wires one flag per worker and drives it from
	// the job's context, so a client disconnect frees the worker within a
	// few pivots instead of after the full solve.
	Cancel *cancelflag.Flag

	// Model, rebuilt from the Problem each (re)solve. Column index space:
	// [0, nstruct) structural, [nstruct, nstruct+nrows) logicals,
	// then nart artificial columns during phase 1.
	nstruct int
	nrows   int
	nart    int
	colptr  []int32
	rowind  []int32
	colval  []float64
	cur     []int32 // fill cursor for the CSC build
	b       []float64
	lo, hi  []float64 // per column
	cost    []float64 // current phase's cost per column
	artRow  []int32
	artSign []float64
	curProb *Problem // row-wise constraint access for the dual updates

	// Equilibration scaling (geometric-mean, two rounds): the solver works
	// on R*A*C with unit-ish coefficients — raw models mix slopes in the
	// thousands with 1/m-sized work terms, and the resulting basis
	// conditioning breaks pivot-size reasoning — and unscales on extract.
	// Column scales are frozen across warm restarts (the basis lives in
	// scaled space); appended rows get fresh row scales.
	rowScale []float64
	colScale []float64

	// Basis state.
	basis  []int32   // column basic in each row position
	status []int8    // per column
	xval   []float64 // per column: bound value if nonbasic, else basic value

	// Factorization and product-form eta file (etas live in basis-position
	// space).
	lu           luFactor
	etaStart     []int32
	etaPivot     []int32
	etaPivVal    []float64
	etaIdx       []int32
	etaVal       []float64
	needRefactor bool

	// Maintained reduced costs (exact at each refactorization, updated
	// incrementally per pivot in between).
	dred   []float64
	dFresh bool

	// Devex pricing state: reference-framework weights per column (unit
	// framework, reset at every refactorization) and the partial-pricing
	// bucket cursor.
	dw          []float64
	priceCursor int

	// Row r of B^-1 A, accumulated sparsely per pivot (updateDuals): the
	// shared input of the reduced-cost and devex-weight updates.
	tcol  []float64
	tPat  []int32
	tMark []int32
	tVer  int32

	// Primal-infeasible basis positions, maintained incrementally by the
	// dual simplex (seeded by a full scan, narrowed per pivot) so the
	// leaving-row choice costs O(violated) instead of O(m).
	infeas     []int32
	infeasMark []int32
	infeasVer  int32

	// Sparse pattern-tracked scratch. Invariant: each value array is zero
	// everywhere outside its pattern; producers clear their previous
	// pattern before writing a new one.
	alpha     []float64 // FTRANed entering column, basis-position space
	alphaPat  []int32
	alphaMark []int32
	alphaVer  int32
	erow      []float64 // BTRAN eta-stage scratch, basis-position space
	erowPat   []int32
	erowMark  []int32
	erowVer   int32
	v         []float64 // BTRANed unit row rho_r, row space
	vPat      []int32
	rhs       []float64 // FTRAN input scratch, row space
	rhsPat    []int32
	w         []float64 // triangular-solve scratch, processing space
	wPat      []int32

	// Dense scratch (refactorization-time recomputations only).
	rhsd []float64 // row space
	wd   []float64 // processing space
	y    []float64 // row space
	cb   []float64 // basis-position space

	// Entering-candidate scratch for the dual ratio test.
	cand     []int32
	candMark []int32
	candVer  int32

	banned []int32

	// Bound-shift log of SolveHotWith: columns whose violated bound was
	// relaxed onto the transplanted basic value (upper shifts stored as
	// the column's bitwise complement) and the true bound to restore.
	shiftIdx []int32
	shiftBnd []float64

	// Bookkeeping.
	stats      Stats
	degen      int
	bland      bool
	solvedVars int
	solvedRows int // rows absorbed by the last successful solve; -1 = none
	// perturbed tracks whether the current cost vector carries the
	// anti-degeneracy perturbation: set by perturbCosts, cleared by
	// polish. ReSolveWith only re-perturbs while still in the perturbed
	// regime — re-perturbing a polished basis forces the dual restart to
	// re-fight every degenerate tie the polish just resolved, measured as
	// thousands of extra pivots per late cut round.
	perturbed bool

	solx []float64
	sol  Solution // returned by SolveWith; overwritten by the next call
}

// NewWorkspace returns an empty workspace. The zero value is also ready
// to use.
func NewWorkspace() *Workspace { return &Workspace{solvedRows: -1} }

func (ws *Workspace) ncols() int { return ws.nstruct + ws.nrows + ws.nart }

// colSpan returns column j of the working matrix [A | I | artificials]:
// structural columns as CSC slices, logical and artificial columns as a
// single unit entry (unitRow < 0 means "no unit entry").
func (ws *Workspace) colSpan(j int) (idx []int32, val []float64, unitRow int32, unitVal float64) {
	if j < ws.nstruct {
		return ws.rowind[ws.colptr[j]:ws.colptr[j+1]], ws.colval[ws.colptr[j]:ws.colptr[j+1]], -1, 0
	}
	if j < ws.nstruct+ws.nrows {
		return nil, nil, int32(j - ws.nstruct), 1
	}
	a := j - ws.nstruct - ws.nrows
	return nil, nil, ws.artRow[a], ws.artSign[a]
}

// build converts the Problem's row-wise constraints into the workspace's
// CSC storage (entries within a column ordered by row) and copies the rhs.
func (ws *Workspace) build(p *Problem) {
	n, m := p.nvars, len(p.cons)
	ws.nstruct, ws.nrows = n, m
	ws.curProb = p
	ws.colptr = grow(ws.colptr, n+1)
	cp := ws.colptr
	for j := 0; j <= n; j++ {
		cp[j] = 0
	}
	nnz := 0
	for ci := range p.cons {
		for _, t := range p.cons[ci].terms {
			cp[t.Var+1]++
			nnz++
		}
	}
	for j := 0; j < n; j++ {
		cp[j+1] += cp[j]
	}
	ws.rowind = grow(ws.rowind, nnz)
	ws.colval = grow(ws.colval, nnz)
	ws.cur = grow(ws.cur, n)
	copy(ws.cur, cp[:n])
	for ci := range p.cons {
		for _, t := range p.cons[ci].terms {
			pos := ws.cur[t.Var]
			ws.rowind[pos] = int32(ci)
			ws.colval[pos] = t.Coef
			ws.cur[t.Var] = pos + 1
		}
	}
	ws.b = grow(ws.b, m)
	for i := range p.cons {
		ws.b[i] = p.cons[i].rhs
	}
}

// computeScales derives the equilibration scales: two rounds of
// geometric-mean row/column scaling over the freshly built (unscaled)
// CSC. On warm restarts (oldRows > 0) the column scales and existing row
// scales are kept — the basis is expressed in them — and only the
// appended rows are scaled.
func (ws *Workspace) computeScales(p *Problem, oldRows int) {
	n, m := ws.nstruct, ws.nrows
	ws.colScale = extend(ws.colScale, n)
	ws.rowScale = extend(ws.rowScale, m)
	if oldRows == 0 {
		for j := 0; j < n; j++ {
			ws.colScale[j] = 1
		}
		for i := 0; i < m; i++ {
			ws.rowScale[i] = 1
		}
		for round := 0; round < 2; round++ {
			for i := range p.cons {
				lo, hi := math.Inf(1), 0.0
				for _, t := range p.cons[i].terms {
					if t.Coef == 0 {
						continue
					}
					a := math.Abs(t.Coef) * ws.colScale[t.Var]
					if a < lo {
						lo = a
					}
					if a > hi {
						hi = a
					}
				}
				if hi > 0 {
					ws.rowScale[i] = 1 / math.Sqrt(lo*hi)
				}
			}
			for j := 0; j < n; j++ {
				lo, hi := math.Inf(1), 0.0
				for q := ws.colptr[j]; q < ws.colptr[j+1]; q++ {
					if ws.colval[q] == 0 {
						continue
					}
					a := math.Abs(ws.colval[q]) * ws.rowScale[ws.rowind[q]]
					if a < lo {
						lo = a
					}
					if a > hi {
						hi = a
					}
				}
				if hi > 0 {
					ws.colScale[j] = 1 / math.Sqrt(lo*hi)
				}
			}
		}
		return
	}
	for i := oldRows; i < m; i++ {
		lo, hi := math.Inf(1), 0.0
		for _, t := range p.cons[i].terms {
			if t.Coef == 0 {
				continue
			}
			a := math.Abs(t.Coef) * ws.colScale[t.Var]
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		ws.rowScale[i] = 1
		if hi > 0 {
			ws.rowScale[i] = 1 / math.Sqrt(lo*hi)
		}
	}
}

// applyScales rewrites the CSC values and rhs into scaled space.
func (ws *Workspace) applyScales() {
	for j := 0; j < ws.nstruct; j++ {
		cs := ws.colScale[j]
		for q := ws.colptr[j]; q < ws.colptr[j+1]; q++ {
			ws.colval[q] *= ws.rowScale[ws.rowind[q]] * cs
		}
	}
	for i := 0; i < ws.nrows; i++ {
		ws.b[i] *= ws.rowScale[i]
	}
}

// startBasis sets up the initial point (structurals at their lower bound,
// logicals at zero), installs each row's logical as basic where the
// initial residual fits its bounds, and adds an artificial column (sign
// matched to the residual, so it starts basic and feasible) elsewhere.
func (ws *Workspace) startBasis(p *Problem) {
	n, m := ws.nstruct, ws.nrows
	ws.rhsd = grow(ws.rhsd, m)
	copy(ws.rhsd, ws.b[:m])
	for j := 0; j < n; j++ {
		l := p.lo[j] / ws.colScale[j]
		if l == 0 {
			continue
		}
		for q := ws.colptr[j]; q < ws.colptr[j+1]; q++ {
			ws.rhsd[ws.rowind[q]] -= ws.colval[q] * l
		}
	}
	ws.artRow = ws.artRow[:0]
	ws.artSign = ws.artSign[:0]
	for i := 0; i < m; i++ {
		r := ws.rhsd[i]
		ok := false
		switch p.cons[i].sense {
		case LE:
			ok = r >= -tol
		case GE:
			ok = r <= tol
		case EQ:
			ok = r >= -tol && r <= tol
		}
		if !ok {
			sign := 1.0
			if r < 0 {
				sign = -1.0
			}
			ws.artRow = append(ws.artRow, int32(i))
			ws.artSign = append(ws.artSign, sign)
		}
	}
	ws.nart = len(ws.artRow)
	ncols := n + m + ws.nart
	ws.lo = grow(ws.lo, ncols)
	ws.hi = grow(ws.hi, ncols)
	ws.cost = grow(ws.cost, ncols)
	ws.xval = grow(ws.xval, ncols)
	ws.status = grow(ws.status, ncols)
	ws.basis = grow(ws.basis, m)
	for j := 0; j < n; j++ {
		ws.lo[j] = p.lo[j] / ws.colScale[j]
		ws.hi[j] = p.hi[j] / ws.colScale[j]
		ws.xval[j] = ws.lo[j]
		ws.status[j] = nbLower
	}
	for i := 0; i < m; i++ {
		s := n + i
		switch p.cons[i].sense {
		case LE:
			ws.lo[s], ws.hi[s] = 0, math.Inf(1)
			ws.status[s] = nbLower
		case GE:
			ws.lo[s], ws.hi[s] = math.Inf(-1), 0
			ws.status[s] = nbUpper
		case EQ:
			ws.lo[s], ws.hi[s] = 0, 0
			ws.status[s] = nbLower
		}
		ws.xval[s] = 0
	}
	ai := 0
	for i := 0; i < m; i++ {
		if ai < ws.nart && int(ws.artRow[ai]) == i {
			a := n + m + ai
			ws.lo[a], ws.hi[a] = 0, math.Inf(1)
			ws.basis[i] = int32(a)
			ws.status[a] = stBasic
			ws.xval[a] = math.Abs(ws.rhsd[i])
			ai++
		} else {
			s := n + i
			ws.basis[i] = int32(s)
			ws.status[s] = stBasic
			ws.xval[s] = ws.rhsd[i]
		}
	}
}

// growScratch sizes every solver buffer for the current model and resets
// the sparse-vector zero invariant (a cheap O(m + ncols) pass per solve).
func (ws *Workspace) growScratch() {
	m, nc := ws.nrows, ws.ncols()
	ws.alpha = grow(ws.alpha, m)
	ws.erow = grow(ws.erow, m)
	ws.v = grow(ws.v, m)
	ws.rhs = grow(ws.rhs, m)
	ws.w = grow(ws.w, m)
	ws.alphaMark = grow(ws.alphaMark, m)
	ws.erowMark = grow(ws.erowMark, m)
	ws.rhsd = grow(ws.rhsd, m)
	ws.wd = grow(ws.wd, m)
	ws.y = grow(ws.y, m)
	ws.cb = grow(ws.cb, m)
	ws.dred = grow(ws.dred, nc)
	ws.candMark = grow(ws.candMark, nc)
	ws.dw = grow(ws.dw, nc)
	ws.tcol = grow(ws.tcol, nc)
	ws.tMark = grow(ws.tMark, nc)
	ws.infeasMark = grow(ws.infeasMark, m)
	clear(ws.alpha)
	clear(ws.erow)
	clear(ws.v)
	clear(ws.rhs)
	clear(ws.w)
	clear(ws.alphaMark)
	clear(ws.erowMark)
	clear(ws.candMark)
	clear(ws.tcol)
	clear(ws.tMark)
	clear(ws.infeasMark)
	ws.alphaPat = ws.alphaPat[:0]
	ws.erowPat = ws.erowPat[:0]
	ws.vPat = ws.vPat[:0]
	ws.rhsPat = ws.rhsPat[:0]
	ws.wPat = ws.wPat[:0]
	ws.tPat = ws.tPat[:0]
	ws.infeas = ws.infeas[:0]
	ws.alphaVer, ws.erowVer, ws.candVer, ws.tVer, ws.infeasVer = 0, 0, 0, 0, 0
	// The partial-pricing cursor restarts at bucket zero for every solve:
	// a leftover cursor from the previous solve on a reused workspace
	// would make devex tie-breaks — and thus the chosen alternate-optimal
	// vertex — depend on the workspace's history.
	ws.priceCursor = 0
	ws.dFresh = false
	ws.resetDevex()
}

// resetDevex restores the unit reference framework: every column's devex
// weight returns to 1, making the next entering choices plain Dantzig
// until the weights re-learn the local steepest-edge geometry. Runs at
// every refactorization (refresh), so weight drift never outlives an eta
// file.
func (ws *Workspace) resetDevex() {
	dw := ws.dw[:ws.ncols()]
	for j := range dw {
		dw[j] = 1
	}
}

func (ws *Workspace) refactorLimit() int {
	if ws.RefactorEvery > 0 {
		return ws.RefactorEvery
	}
	return 128
}

func (ws *Workspace) resetEtas() {
	if cap(ws.etaStart) == 0 {
		ws.etaStart = make([]int32, 1, 64)
	}
	ws.etaStart = ws.etaStart[:1]
	ws.etaStart[0] = 0
	ws.etaPivot = ws.etaPivot[:0]
	ws.etaPivVal = ws.etaPivVal[:0]
	ws.etaIdx = ws.etaIdx[:0]
	ws.etaVal = ws.etaVal[:0]
}

// appendEta records the product-form update for a pivot in row position r
// with FTRANed entering column alpha (entries below 1e-12 are dropped to
// keep the file sparse; the periodic refactorization absorbs the error).
// Only alpha's tracked pattern is visited.
func (ws *Workspace) appendEta(r int) {
	ws.etaPivot = append(ws.etaPivot, int32(r))
	ws.etaPivVal = append(ws.etaPivVal, ws.alpha[r])
	for _, k := range ws.alphaPat {
		if int(k) == r {
			continue
		}
		if v := ws.alpha[k]; v > 1e-12 || v < -1e-12 {
			ws.etaIdx = append(ws.etaIdx, k)
			ws.etaVal = append(ws.etaVal, v)
		}
	}
	ws.etaStart = append(ws.etaStart, int32(len(ws.etaIdx)))
}

// factorize rebuilds the LU factorization of the current basis, clears
// the eta file and recomputes the basic variable values from scratch.
func (ws *Workspace) factorize() error {
	if FaultLUFactor != nil && FaultLUFactor() {
		// Invalidate the failure coordinates: an injected failure has no
		// real unpivoted row, and letting repairSingular act on stale
		// ones would swap a healthy basic variable out — corrupting the
		// basis instead of simulating a failed factorization.
		ws.lu.failPos, ws.lu.failRow = -1, -1
		return ErrSingular
	}
	if err := ws.lu.factor(ws); err != nil {
		return err
	}
	ws.resetEtas()
	ws.needRefactor = false
	ws.stats.Factorizations++
	ws.computeBasicValues()
	return nil
}

// refresh is factorize plus an exact recomputation of the maintained
// reduced costs and a devex reference-framework reset — the periodic
// truth-restoring step of the iteration.
func (ws *Workspace) refresh() error {
	if err := ws.factorize(); err != nil {
		return err
	}
	ws.recomputeDuals()
	ws.resetDevex()
	return nil
}

// computeBasicValues solves B x_B = b - A_N x_N for the current basis
// (dense: only runs at refactorizations).
func (ws *Workspace) computeBasicValues() {
	m := ws.nrows
	copy(ws.rhsd, ws.b[:m])
	nc := ws.ncols()
	for j := 0; j < nc; j++ {
		if ws.status[j] == stBasic {
			continue
		}
		xv := ws.xval[j]
		if xv == 0 {
			continue
		}
		idx, val, ur, uv := ws.colSpan(j)
		for p, i := range idx {
			ws.rhsd[i] -= val[p] * xv
		}
		if ur >= 0 {
			ws.rhsd[ur] -= uv * xv
		}
	}
	ws.ftranDense(ws.rhsd, ws.cb)
	for k := 0; k < m; k++ {
		ws.xval[ws.basis[k]] = ws.cb[k]
	}
}

// recomputeDuals rebuilds the maintained reduced costs exactly from
// y = B^-T c_B (dense: only runs at refactorizations and phase starts).
func (ws *Workspace) recomputeDuals() {
	m := ws.nrows
	for k := 0; k < m; k++ {
		ws.cb[k] = ws.cost[ws.basis[k]]
	}
	ws.btranDense(ws.cb, ws.y)
	limit := ws.nstruct + ws.nrows // artificial duals are never read
	for j := 0; j < limit; j++ {
		ws.dred[j] = ws.cost[j] - ws.colDot(j, ws.y)
	}
	ws.dFresh = true
}

// ftranDense solves B out = x for the dense row-space vector x
// (destroyed); out is in basis-position space.
func (ws *Workspace) ftranDense(x, out []float64) {
	lu := &ws.lu
	lu.lsolve(x)
	m := ws.nrows
	w := ws.wd
	for k := 0; k < m; k++ {
		w[k] = x[lu.prow[k]]
	}
	lu.usolve(w[:m])
	for k := 0; k < m; k++ {
		out[lu.cpos[k]] = w[k]
	}
	for e := 0; e < len(ws.etaPivot); e++ {
		r := ws.etaPivot[e]
		xr := out[r]
		if xr == 0 {
			continue
		}
		xr /= ws.etaPivVal[e]
		out[r] = xr
		for q := ws.etaStart[e]; q < ws.etaStart[e+1]; q++ {
			out[ws.etaIdx[q]] -= ws.etaVal[q] * xr
		}
	}
}

// btranDense solves B^T out = c for the dense basis-position-space vector
// c (preserved); out is in row space.
func (ws *Workspace) btranDense(c, out []float64) {
	m := ws.nrows
	// out doubles as the position-space eta scratch: it is fully
	// overwritten by the final row-space scatter.
	copy(out[:m], c[:m])
	for e := len(ws.etaPivot) - 1; e >= 0; e-- {
		r := ws.etaPivot[e]
		acc := out[r]
		for q := ws.etaStart[e]; q < ws.etaStart[e+1]; q++ {
			acc -= ws.etaVal[q] * out[ws.etaIdx[q]]
		}
		out[r] = acc / ws.etaPivVal[e]
	}
	lu := &ws.lu
	w := ws.wd
	for k := 0; k < m; k++ {
		w[k] = out[lu.cpos[k]] // position space -> processing order
	}
	lu.utsolve(w[:m])
	lu.ltsolve(w[:m])
	for k := 0; k < m; k++ {
		out[lu.prow[k]] = w[k]
	}
}

// ftranSparse computes alpha = B^-1 a_j with pattern tracking: the result
// lands in ws.alpha (basis-position space) with support ws.alphaPat.
func (ws *Workspace) ftranSparse(j int) {
	lu := &ws.lu
	m := ws.nrows
	// Stage 1: scatter the column into the row-space scratch.
	for _, i := range ws.rhsPat {
		ws.rhs[i] = 0
	}
	ws.rhsPat = ws.rhsPat[:0]
	idx, val, ur, uv := ws.colSpan(j)
	for p, i := range idx {
		if ws.rhs[i] == 0 {
			ws.rhsPat = append(ws.rhsPat, i)
		}
		ws.rhs[i] += val[p]
	}
	if ur >= 0 {
		if ws.rhs[ur] == 0 {
			ws.rhsPat = append(ws.rhsPat, ur)
		}
		ws.rhs[ur] += uv
	}
	// Stage 2: sparse L-solve, then map original rows to processing order.
	top := lu.solveLSparse(ws.rhs, ws.rhsPat)
	ws.rhsPat = ws.rhsPat[:0]
	ws.wPat = ws.wPat[:0]
	for p := top; p < m; p++ {
		i := lu.found[p]
		k := lu.pinv[i]
		ws.w[k] = ws.rhs[i]
		ws.rhs[i] = 0
		ws.wPat = append(ws.wPat, k)
	}
	// Stage 3: sparse U-solve, then map processing order to basis position.
	top = lu.solveUSparse(ws.w, ws.wPat)
	ws.wPat = ws.wPat[:0]
	for _, k := range ws.alphaPat {
		ws.alpha[k] = 0
	}
	ws.alphaPat = ws.alphaPat[:0]
	ws.alphaVer++
	for p := top; p < m; p++ {
		k := lu.found[p]
		pos := lu.cpos[k]
		ws.alpha[pos] = ws.w[k]
		ws.w[k] = 0
		ws.alphaMark[pos] = ws.alphaVer
		ws.alphaPat = append(ws.alphaPat, pos)
	}
	// Stage 4: the eta file, in order, pattern-aware.
	for e := 0; e < len(ws.etaPivot); e++ {
		r := ws.etaPivot[e]
		xr := ws.alpha[r]
		if xr == 0 {
			continue
		}
		xr /= ws.etaPivVal[e]
		ws.alpha[r] = xr
		for q := ws.etaStart[e]; q < ws.etaStart[e+1]; q++ {
			k := ws.etaIdx[q]
			if ws.alphaMark[k] != ws.alphaVer {
				ws.alphaMark[k] = ws.alphaVer
				ws.alphaPat = append(ws.alphaPat, k)
			}
			ws.alpha[k] -= ws.etaVal[q] * xr
		}
	}
}

// btranRowSparse computes rho_r = B^-T e_r with pattern tracking: the
// result lands in ws.v (row space) with support ws.vPat. It must run
// before the pivot's eta is appended (rho is taken against the current
// basis).
func (ws *Workspace) btranRowSparse(r int) {
	lu := &ws.lu
	m := ws.nrows
	// Stage 1: unit vector through the transposed eta file, in reverse.
	for _, k := range ws.erowPat {
		ws.erow[k] = 0
	}
	ws.erowPat = ws.erowPat[:0]
	ws.erowVer++
	ws.erow[r] = 1
	ws.erowMark[r] = ws.erowVer
	ws.erowPat = append(ws.erowPat, int32(r))
	for e := len(ws.etaPivot) - 1; e >= 0; e-- {
		re := ws.etaPivot[e]
		acc := ws.erow[re]
		any := acc != 0
		for q := ws.etaStart[e]; q < ws.etaStart[e+1]; q++ {
			if x := ws.erow[ws.etaIdx[q]]; x != 0 {
				acc -= ws.etaVal[q] * x
				any = true
			}
		}
		if !any {
			continue
		}
		if ws.erowMark[re] != ws.erowVer {
			ws.erowMark[re] = ws.erowVer
			ws.erowPat = append(ws.erowPat, re)
		}
		ws.erow[re] = acc / ws.etaPivVal[e]
	}
	// Stage 2: map basis positions to processing order and solve U^T.
	ws.wPat = ws.wPat[:0]
	for _, pos := range ws.erowPat {
		k := lu.cposInv[pos]
		ws.w[k] = ws.erow[pos]
		ws.erow[pos] = 0
		ws.wPat = append(ws.wPat, k)
	}
	ws.erowPat = ws.erowPat[:0]
	top := lu.solveUTSparse(ws.w, ws.wPat)
	// Stage 3: L^T over the U^T result's pattern (copied out first: the
	// DFS reuses the shared found stack).
	ws.wPat = ws.wPat[:0]
	for p := top; p < m; p++ {
		ws.wPat = append(ws.wPat, lu.found[p])
	}
	top = lu.solveLTSparse(ws.w, ws.wPat)
	ws.wPat = ws.wPat[:0]
	// Stage 4: scatter to row space.
	for _, i := range ws.vPat {
		ws.v[i] = 0
	}
	ws.vPat = ws.vPat[:0]
	for p := top; p < m; p++ {
		k := lu.found[p]
		i := lu.prow[k]
		ws.v[i] = ws.w[k]
		ws.w[k] = 0
		ws.vPat = append(ws.vPat, i)
	}
}

// updateDuals applies the pivot's reduced-cost and devex-weight updates.
// Row r of B^-1 A — whose support is exactly the columns with entries in
// rho_r's rows (rho_r is in ws.v from btranRowSparse) — is accumulated
// once into the sparse ws.tcol scatter, then drives both d_j -= theta *
// a_rj and the reference-framework update w_j = max(w_j, a_rj^2 * w_q /
// piv^2). The leaving variable lands at -theta exactly (weight inherited
// from the entering column's, floored at the unit framework) and the
// entering one at zero.
func (ws *Workspace) updateDuals(theta float64, lv, q int, piv float64) {
	p := ws.curProb
	n := ws.nstruct
	ws.tVer++
	ws.tPat = ws.tPat[:0]
	for _, i := range ws.vPat {
		rv := ws.v[i]
		if rv == 0 {
			continue
		}
		rs := rv * ws.rowScale[i]
		for _, t := range p.cons[i].terms {
			j := t.Var
			if ws.tMark[j] != ws.tVer {
				ws.tMark[j] = ws.tVer
				ws.tcol[j] = 0
				ws.tPat = append(ws.tPat, int32(j))
			}
			ws.tcol[j] += rs * t.Coef * ws.colScale[j]
		}
		s := n + int(i)
		if ws.tMark[s] != ws.tVer {
			ws.tMark[s] = ws.tVer
			ws.tcol[s] = 0
			ws.tPat = append(ws.tPat, int32(s))
		}
		ws.tcol[s] += rv
	}
	// Cap the propagated weight factor: a near-threshold pivot would send
	// gamma (and every touched weight) to 1e14+, flattening the devex
	// scores to noise until the next framework reset.
	gamma := ws.dw[q] / (piv * piv)
	if gamma > 1e8 {
		gamma = 1e8
	}
	for _, j32 := range ws.tPat {
		j := int(j32)
		arj := ws.tcol[j]
		ws.dred[j] -= theta * arj
		if ws.status[j] != stBasic {
			if w := arj * arj * gamma; w > ws.dw[j] {
				ws.dw[j] = w
			}
		}
	}
	ws.dred[lv] = -theta
	ws.dred[q] = 0
	ws.dw[lv] = math.Max(gamma, 1)
	ws.dFresh = false
}

// colDot returns y·a_j for the row-space vector y.
func (ws *Workspace) colDot(j int, y []float64) float64 {
	idx, val, ur, uv := ws.colSpan(j)
	d := 0.0
	for p, i := range idx {
		d += val[p] * y[i]
	}
	if ur >= 0 {
		d += uv * y[ur]
	}
	return d
}

func (ws *Workspace) isBanned(j int) bool {
	for _, b := range ws.banned {
		if int(b) == j {
			return true
		}
	}
	return false
}

// price chooses the entering candidate among the nonbasic structural and
// logical columns (artificials never re-enter) on the maintained reduced
// costs: devex — the eligible column maximising d_j^2 / w_j — scanned
// over fixed-size buckets behind a rotating cursor, stopping early once a
// candidate emerged and at least priceMinBuckets buckets were seen (so
// the weights have a pool to discriminate in). Under Bland's rule the
// scan degenerates to the first eligible index, full-width. Returns -1
// only after a complete scan found no eligible column.
func (ws *Workspace) price() int {
	limit := ws.nstruct + ws.nrows
	if ws.bland {
		for j := 0; j < limit; j++ {
			st := ws.status[j]
			if st == stBasic || ws.lo[j] == ws.hi[j] {
				continue
			}
			d := ws.dred[j]
			var viol float64
			if st == nbLower {
				viol = -d
			} else {
				viol = d
			}
			if viol > dualTol && !ws.isBanned(j) {
				return j
			}
		}
		return -1
	}
	nb := (limit + priceBucket - 1) / priceBucket
	if nb == 0 {
		return -1
	}
	if ws.priceCursor >= nb {
		ws.priceCursor = 0
	}
	bestJ := -1
	bestScore := 0.0
	for t := 0; t < nb; t++ {
		b := ws.priceCursor + t
		if b >= nb {
			b -= nb
		}
		hi := (b + 1) * priceBucket
		if hi > limit {
			hi = limit
		}
		for j := b * priceBucket; j < hi; j++ {
			st := ws.status[j]
			if st == stBasic || ws.lo[j] == ws.hi[j] {
				continue
			}
			d := ws.dred[j]
			var viol float64
			if st == nbLower {
				viol = -d
			} else {
				viol = d
			}
			if viol <= dualTol {
				continue
			}
			if score := viol * viol / ws.dw[j]; score > bestScore {
				if len(ws.banned) > 0 && ws.isBanned(j) {
					continue
				}
				bestScore, bestJ = score, j
			}
		}
		if bestJ >= 0 && t+1 >= priceMinBuckets {
			ws.priceCursor = b + 1
			if ws.priceCursor >= nb {
				ws.priceCursor = 0
			}
			return bestJ
		}
	}
	return bestJ
}

// primal runs the bounded-variable primal simplex on the current basis
// and cost vector until dual feasibility. It returns the pivot count.
func (ws *Workspace) primal(maxIter int) (int, error) {
	m := ws.nrows
	ws.banned = ws.banned[:0]
	ws.degen = 0
	ws.bland = false
	iters := 0
	for {
		if ws.Cancel.Canceled() {
			return iters, ErrCanceled
		}
		if ws.needRefactor || len(ws.etaPivot) >= ws.refactorLimit() {
			if err := ws.refresh(); err != nil {
				return iters, err
			}
		}
		q := ws.price()
		if q < 0 {
			// Optimal on the maintained reduced costs; confirm against
			// exactly recomputed ones unless they are already fresh.
			if ws.dFresh && len(ws.etaPivot) == 0 {
				return iters, nil
			}
			if err := ws.refresh(); err != nil {
				return iters, err
			}
			if q = ws.price(); q < 0 {
				return iters, nil
			}
		}
		ws.ftranSparse(q)

		// Bounded ratio test over alpha's pattern: the entering variable
		// moves by t >= 0 away from its current bound (sigma is the
		// movement direction), basic variables move by -t*sigma*alpha, and
		// t is capped by the first basic variable to hit a bound or by the
		// entering variable's own opposite bound (a bound flip, which
		// needs no basis change).
		sigma := 1.0
		if ws.status[q] == nbUpper {
			sigma = -1.0
		}
		flipT := ws.hi[q] - ws.lo[q]
		bestT := flipT
		leave := -1
		leaveToLower := false
		if ws.bland {
			// Strict single-pass test with smallest-index ties: Bland's
			// anti-cycling guarantee needs the index rule on both halves.
			for _, k32 := range ws.alphaPat {
				k := int(k32)
				a := sigma * ws.alpha[k]
				bj := ws.basis[k]
				var t float64
				var toLower bool
				if a > pivotTol {
					l := ws.lo[bj]
					if math.IsInf(l, -1) {
						continue
					}
					t = (ws.xval[bj] - l) / a
					toLower = true
				} else if a < -pivotTol {
					h := ws.hi[bj]
					if math.IsInf(h, 1) {
						continue
					}
					t = (h - ws.xval[bj]) / -a
				} else {
					continue
				}
				if t < 0 {
					t = 0
				}
				if t < bestT-ratioTol ||
					(leave >= 0 && t < bestT+ratioTol && bj < ws.basis[leave]) {
					leave, leaveToLower = k, toLower
					if t < bestT {
						bestT = t
					}
				}
			}
		} else {
			// Harris two-pass ratio test. Pass 1 finds the step limit with
			// every bound relaxed by a tiny relative slack; pass 2 picks,
			// among the rows whose strict ratio fits under that limit, the
			// one with the largest pivot. Nearly parallel supporting-line
			// cuts make tiny row entries common, and pivoting on one
			// corrupts the basis within a few eta updates — Harris trades
			// a bounded (1e-9 relative, refactorization-absorbed) bound
			// overshoot for a stable pivot.
			tlim := flipT
			for _, k32 := range ws.alphaPat {
				k := int(k32)
				a := sigma * ws.alpha[k]
				bj := ws.basis[k]
				var t float64
				if a > pivotTol {
					l := ws.lo[bj]
					if math.IsInf(l, -1) {
						continue
					}
					t = (ws.xval[bj] - l + tol*(1+math.Abs(l))) / a
				} else if a < -pivotTol {
					h := ws.hi[bj]
					if math.IsInf(h, 1) {
						continue
					}
					t = (h + tol*(1+math.Abs(h)) - ws.xval[bj]) / -a
				} else {
					continue
				}
				if t < tlim {
					tlim = t
				}
			}
			if tlim < 0 {
				// A basic variable sits outside its bound by more than the
				// Harris slack (accumulated overshoot surfaced by the last
				// refactorization). A degenerate pivot on that row snaps it
				// back onto its bound, so the step limit is zero, not
				// negative — leaving it negative would disqualify every row
				// and fake an unbounded ray.
				tlim = 0
			}
			if !math.IsInf(tlim, 1) {
				bestA := 0.0
				for _, k32 := range ws.alphaPat {
					k := int(k32)
					a := sigma * ws.alpha[k]
					bj := ws.basis[k]
					var t float64
					var toLower bool
					if a > pivotTol {
						l := ws.lo[bj]
						if math.IsInf(l, -1) {
							continue
						}
						t = (ws.xval[bj] - l) / a
						toLower = true
					} else if a < -pivotTol {
						h := ws.hi[bj]
						if math.IsInf(h, 1) {
							continue
						}
						t = (h - ws.xval[bj]) / -a
					} else {
						continue
					}
					if t < 0 {
						t = 0
					}
					if t <= tlim {
						if am := math.Abs(ws.alpha[k]); am > bestA {
							bestA, leave, leaveToLower = am, k, toLower
							bestT = t
						}
					}
				}
				if leave >= 0 && flipT <= bestT {
					leave = -1 // the bound flip is at least as tight: cheaper
					bestT = flipT
				}
			}
		}
		if leave < 0 && math.IsInf(bestT, 1) {
			// An unbounded ray is only trusted on exact reduced costs and
			// a fresh factorization; stale maintained duals can point at a
			// phantom direction.
			if ws.dFresh && len(ws.etaPivot) == 0 {
				return iters, ErrUnbounded
			}
			if err := ws.refresh(); err != nil {
				return iters, err
			}
			continue
		}
		if leave >= 0 {
			piv := math.Abs(ws.alpha[leave])
			if piv < 1e-7 && len(ws.etaPivot) > 0 {
				// Unstable pivot on an aged factorization: refactorize and
				// retry the iteration with exact alphas.
				ws.needRefactor = true
				continue
			}
			if piv < 1e-10 {
				ws.banned = append(ws.banned, int32(q))
				continue
			}
		}

		if bestT > 0 {
			for _, k := range ws.alphaPat {
				if a := ws.alpha[k]; a != 0 {
					ws.xval[ws.basis[k]] -= bestT * sigma * a
				}
			}
		}
		if leave < 0 {
			// Bound flip: the entering variable crosses to its other bound.
			if sigma > 0 {
				ws.xval[q] = ws.hi[q]
				ws.status[q] = nbUpper
			} else {
				ws.xval[q] = ws.lo[q]
				ws.status[q] = nbLower
			}
		} else {
			piv := ws.alpha[leave]
			theta := ws.dred[q] / piv
			ws.btranRowSparse(leave) // against the pre-pivot basis
			lv := ws.basis[leave]
			ws.xval[q] += sigma * bestT
			if leaveToLower {
				ws.xval[lv] = ws.lo[lv]
				ws.status[lv] = nbLower
			} else {
				ws.xval[lv] = ws.hi[lv]
				ws.status[lv] = nbUpper
			}
			ws.status[q] = stBasic
			ws.basis[leave] = int32(q)
			ws.appendEta(leave)
			ws.updateDuals(theta, int(lv), q, piv)
			ws.banned = ws.banned[:0]
			if bestT <= degenTol {
				ws.degen++
				if ws.degen > m+100 {
					ws.bland = true // anti-cycling: switch to Bland's rule
				}
			} else {
				ws.degen = 0
				ws.bland = false
			}
		}
		iters++
		if iters > maxIter {
			return iters, ErrIterLimit
		}
	}
}

// repairSingular recovers from a numerically singular basis: the column
// that found no usable pivot during factorization is ousted to its nearer
// bound and replaced by the logical of a still-unpivoted row. The crash
// ordering factors unit columns first, so an unpivoted row's logical is
// necessarily nonbasic and the swap restores structural nonsingularity;
// a few retries handle cascading near-dependence. Only the dual simplex
// uses this — the bound violations the swap introduces are exactly what
// it knows how to repair.
func (ws *Workspace) repairSingular() error {
	for attempt := 0; attempt < 64; attempt++ {
		pos := int(ws.lu.failPos)
		row := ws.lu.failRow
		if row < 0 || pos < 0 || pos >= ws.nrows {
			return ErrSingular
		}
		ousted := int(ws.basis[pos])
		s := ws.nstruct + int(row)
		if ws.status[s] == stBasic {
			return ErrSingular // cannot happen under crash ordering; bail
		}
		lo, hi := ws.lo[ousted], ws.hi[ousted]
		x := ws.xval[ousted]
		if math.IsInf(hi, 1) || (!math.IsInf(lo, -1) && x-lo <= hi-x) {
			ws.xval[ousted] = lo
			ws.status[ousted] = nbLower
		} else {
			ws.xval[ousted] = hi
			ws.status[ousted] = nbUpper
		}
		ws.basis[pos] = int32(s)
		ws.status[s] = stBasic
		err := ws.refresh()
		if err == nil {
			return nil
		}
		if err != ErrSingular {
			return err
		}
	}
	return ErrSingular
}

// violation returns the relative bound violation of the variable basic
// in position k (0 when it sits inside its bounds) and whether it must
// move up toward its lower bound.
func (ws *Workspace) violation(k int) (float64, bool) {
	bj := ws.basis[k]
	x := ws.xval[bj]
	if l := ws.lo[bj]; x < l {
		return (l - x) / (1 + math.Abs(l)), true
	}
	if h := ws.hi[bj]; x > h {
		return (x - h) / (1 + math.Abs(h)), false
	}
	return 0, false
}

// seedInfeas rebuilds the maintained infeasible-position list with a full
// sweep over the basis. The violation threshold sits an order of
// magnitude above the Harris ratio test's bound slack so the dual does
// not chase that debris.
func (ws *Workspace) seedInfeas() {
	m := ws.nrows
	ws.infeasVer++
	ws.infeas = ws.infeas[:0]
	for k := 0; k < m; k++ {
		if v, _ := ws.violation(k); v > 10*tol {
			ws.infeas = append(ws.infeas, int32(k))
			ws.infeasMark[k] = ws.infeasVer
		}
	}
}

// pickInfeas compacts the maintained list (dropping positions that
// became feasible) and returns the worst remaining violation, ties
// broken toward the smaller position — the rule a full index-order scan
// would apply, independent of the list's insertion order.
func (ws *Workspace) pickInfeas() (r int, toLower bool) {
	r = -1
	worst := 10 * tol
	out := ws.infeas[:0]
	for _, k32 := range ws.infeas {
		k := int(k32)
		v, tl := ws.violation(k)
		if v <= 10*tol {
			ws.infeasMark[k] = 0
			continue
		}
		out = append(out, k32)
		if v > worst || (v == worst && r >= 0 && k < r) {
			worst, r, toLower = v, k, tl
		}
	}
	ws.infeas = out
	return r, toLower
}

// dual runs the bounded-variable dual simplex: while some basic variable
// violates a bound, it leaves toward that bound and the entering column
// is chosen by the dual ratio test so reduced costs stay dual feasible.
// Requires a dual-feasible starting basis (an optimal basis of the
// problem before rows were appended). The leaving choice scans the
// incrementally maintained infeasible-position list (re-seeded after
// every refactorization, since recomputed basic values can surface or
// absorb violations wholesale) instead of all m rows per pivot.
func (ws *Workspace) dual(maxIter int) (int, error) {
	m := ws.nrows
	iters := 0
	streak := 0 // consecutive degenerate (zero-ratio) dual pivots
	bland := false
	reseed := true
	for {
		if ws.Cancel.Canceled() {
			return iters, ErrCanceled
		}
		if ws.needRefactor || len(ws.etaPivot) >= ws.refactorLimit() {
			if err := ws.refresh(); err != nil {
				if err == ErrSingular {
					err = ws.repairSingular()
				}
				if err != nil {
					return iters, err
				}
			}
			reseed = true
		}
		// Leaving variable: the largest relative bound violation on the
		// maintained list (under Bland-style anti-cycling: the first
		// violated position, by a full scan — the order matters there).
		r := -1
		toLower := false
		if bland {
			for k := 0; k < m; k++ {
				if v, tl := ws.violation(k); v > 10*tol {
					r, toLower = k, tl
					break
				}
			}
		} else {
			if reseed {
				ws.seedInfeas()
				reseed = false
			}
			r, toLower = ws.pickInfeas()
			if r < 0 && len(ws.infeas) == 0 {
				// Confirm optimality against a full sweep, not just the
				// maintained list (self-healing if maintenance ever missed
				// a position).
				ws.seedInfeas()
				r, toLower = ws.pickInfeas()
			}
		}
		if r < 0 {
			return iters, nil // primal feasible, dual feasible: optimal
		}
		ws.btranRowSparse(r) // rho_r, row space, in ws.v

		// Entering candidates are exactly the columns with support in
		// rho_r's rows (any other column has a zero row entry).
		ws.candVer++
		ws.cand = ws.cand[:0]
		p := ws.curProb
		n := ws.nstruct
		for _, i := range ws.vPat {
			if ws.v[i] == 0 {
				continue
			}
			for _, t := range p.cons[i].terms {
				if ws.candMark[t.Var] != ws.candVer {
					ws.candMark[t.Var] = ws.candVer
					ws.cand = append(ws.cand, int32(t.Var))
				}
			}
			s := n + int(i)
			if ws.candMark[s] != ws.candVer {
				ws.candMark[s] = ws.candVer
				ws.cand = append(ws.cand, int32(s))
			}
		}

		// Dual ratio test. When the leaving variable sits above its upper
		// bound it must decrease, so an entering variable moving away from
		// lower needs a positive row entry (and the mirror cases below);
		// among eligible columns the smallest |d_j| / |a_rj| keeps every
		// reduced cost on its dual-feasible side. Adjacent supporting-line
		// cuts are nearly parallel rows, so tiny row entries abound and a
		// 1e-9-sized pivot corrupts the basis within a few updates; the
		// test therefore runs at two pivot thresholds, preferring any
		// stable candidate (>= stabTol) and accepting a tiny one only when
		// no stable column is eligible at all (the dual-feasibility drift
		// of the skipped tiny columns is below the refresh tolerance).
		// Thresholds are relative to rho's magnitude: with ill-conditioned
		// bases rho carries entries in the thousands, and a row dot product
		// that cancels down to 1e-7 is noise, not a pivot — treating it as
		// one corrupts the basis (the FTRANed pivot then comes out as an
		// exact zero).
		rhoNorm := 0.0
		for _, i := range ws.vPat {
			if a := math.Abs(ws.v[i]); a > rhoNorm {
				rhoNorm = a
			}
		}
		minPiv := pivotTol * (1 + rhoNorm)
		stabPiv := 1e-7 * (1 + rhoNorm)
		lv := int(ws.basis[r])
		q, qWeak := -1, -1
		bestRatio, weakRatio := math.Inf(1), math.Inf(1)
		bestMag, weakMag := 0.0, 0.0
		for _, j32 := range ws.cand {
			j := int(j32)
			st := ws.status[j]
			if st == stBasic || ws.lo[j] == ws.hi[j] {
				continue
			}
			arj := ws.colDot(j, ws.v)
			if arj > -minPiv && arj < minPiv {
				continue
			}
			ok := false
			if toLower { // leaving variable must increase
				ok = (st == nbLower && arj < 0) || (st == nbUpper && arj > 0)
			} else { // leaving variable must decrease
				ok = (st == nbLower && arj > 0) || (st == nbUpper && arj < 0)
			}
			if !ok {
				continue
			}
			d := ws.dred[j]
			var dmag float64
			if st == nbLower {
				dmag = math.Max(d, 0)
			} else {
				dmag = math.Max(-d, 0)
			}
			amag := math.Abs(arj)
			ratio := dmag / amag
			if amag < stabPiv {
				if ratio < weakRatio-ratioTol || (qWeak >= 0 && ratio < weakRatio+ratioTol && amag > weakMag) || qWeak < 0 {
					qWeak, weakMag = j, amag
					if ratio < weakRatio {
						weakRatio = ratio
					}
				}
				continue
			}
			if ratio < bestRatio-ratioTol {
				q, bestRatio, bestMag = j, ratio, amag
			} else if q >= 0 && ratio < bestRatio+ratioTol {
				// Tie-break: Bland picks the smallest column index (dual
				// anti-cycling), otherwise the larger pivot for stability.
				if bland {
					if j < q {
						q, bestMag = j, amag
						if ratio < bestRatio {
							bestRatio = ratio
						}
					}
				} else if amag > bestMag {
					q, bestMag = j, amag
					if ratio < bestRatio {
						bestRatio = ratio
					}
				}
			}
		}
		if q < 0 {
			q, bestRatio = qWeak, weakRatio
		}
		if q < 0 {
			// No entering column can repair the violated row: the appended
			// rows made the problem primal infeasible.
			return iters, ErrInfeasible
		}
		ws.ftranSparse(q)
		piv := ws.alpha[r]
		alphaNorm := 0.0
		for _, k := range ws.alphaPat {
			if a := math.Abs(ws.alpha[k]); a > alphaNorm {
				alphaNorm = a
			}
		}
		if pm := math.Abs(piv); pm < 1e-7*(1+alphaNorm) {
			if len(ws.etaPivot) > 0 {
				ws.needRefactor = true
				continue
			}
			if pm < 1e-9*(1+alphaNorm) {
				return iters, ErrSingular
			}
		}
		target := ws.hi[lv]
		if toLower {
			target = ws.lo[lv]
		}
		t := (ws.xval[lv] - target) / piv
		for _, k := range ws.alphaPat {
			if a := ws.alpha[k]; a != 0 {
				ws.xval[ws.basis[k]] -= t * a
			}
		}
		theta := ws.dred[q] / piv
		ws.xval[q] += t
		ws.xval[lv] = target
		if toLower {
			ws.status[lv] = nbLower
		} else {
			ws.status[lv] = nbUpper
		}
		ws.status[q] = stBasic
		ws.basis[r] = int32(q)
		ws.appendEta(r)
		ws.updateDuals(theta, lv, q, piv)
		if !bland {
			// Maintain the infeasible-position list: the pivot moved
			// exactly the basic values in alpha's pattern (r included).
			for _, k32 := range ws.alphaPat {
				k := int(k32)
				if ws.infeasMark[k] == ws.infeasVer {
					continue
				}
				if v, _ := ws.violation(k); v > 10*tol {
					ws.infeas = append(ws.infeas, k32)
					ws.infeasMark[k] = ws.infeasVer
				}
			}
		}
		// Degenerate dual pivots (zero reduced-cost ratio) leave the dual
		// objective flat and can cycle; a long streak flips both selection
		// rules to Bland's (index) order until progress resumes.
		if bestRatio <= 1e-12 {
			streak++
			if streak > 100 {
				bland = true
			}
		} else {
			streak = 0
			if bland {
				bland = false
				reseed = true // the list went unmaintained while bland
			}
		}
		iters++
		if iters > maxIter {
			return iters, ErrIterLimit
		}
	}
}

// purgeArtificials swaps any artificial still basic (necessarily at value
// zero after the phases) for its row's logical column — both are unit
// columns in the same row, so the basis stays nonsingular — and drops the
// artificial block entirely, leaving a basis over structural and logical
// columns only. This is what makes the warm restart of ReSolveWith
// possible: appended rows reuse the logical index space the artificials
// would otherwise occupy.
func (ws *Workspace) purgeArtificials() {
	if ws.nart == 0 {
		return
	}
	artBase := ws.nstruct + ws.nrows
	for k := 0; k < ws.nrows; k++ {
		if j := int(ws.basis[k]); j >= artBase {
			s := ws.nstruct + int(ws.artRow[j-artBase])
			ws.basis[k] = int32(s)
			ws.status[s] = stBasic
			ws.xval[s] = 0
			ws.needRefactor = true
		}
	}
	ws.nart = 0
}

// perturbCosts adds a tiny deterministic, status-aligned perturbation to
// every structural and logical cost: columns resting at their lower bound
// are nudged up, columns at their upper bound down, so reduced costs move
// strictly away from zero and the current basis stays dual feasible. The
// allotment LP is massively dual degenerate (every cost is zero except the
// makespan's), which makes unperturbed Dantzig and dual ratio tests stall
// on ties; the perturbation breaks every tie deterministically. polish()
// removes it again before a solution is extracted.
func (ws *Workspace) perturbCosts() {
	limit := ws.nstruct + ws.nrows
	for j := 0; j < limit; j++ {
		if ws.lo[j] == ws.hi[j] {
			continue
		}
		// Golden-ratio hash: deterministic, well spread, allocation free.
		u := float64(j)*0.6180339887498949 + 0.5
		u -= math.Floor(u) // in [0, 1)
		eps := perturbScale * (1 + math.Abs(ws.cost[j])) * (0.5 + 0.5*u)
		if ws.status[j] == nbUpper {
			ws.cost[j] -= eps
		} else {
			ws.cost[j] += eps
		}
	}
	ws.dFresh = false
	ws.perturbed = true
}

// polish restores the true costs after a perturbed run and re-optimises;
// the perturbed optimum is primal feasible and near-optimal, so this is
// typically a handful of pivots.
func (ws *Workspace) polish(p *Problem, maxIter int) (int, error) {
	ws.setPhase2Cost(p)
	ws.perturbed = false
	if !ws.needRefactor {
		ws.recomputeDuals()
	}
	return ws.primal(maxIter)
}

func (ws *Workspace) setPhase1Cost() {
	nc := ws.ncols()
	for j := 0; j < nc; j++ {
		ws.cost[j] = 0
	}
	for a := 0; a < ws.nart; a++ {
		ws.cost[ws.nstruct+ws.nrows+a] = 1
	}
}

func (ws *Workspace) setPhase2Cost(p *Problem) {
	nc := ws.ncols()
	for j := 0; j < ws.nstruct; j++ {
		ws.cost[j] = p.obj[j] * ws.colScale[j]
	}
	for j := ws.nstruct; j < nc; j++ {
		ws.cost[j] = 0
	}
}

func (ws *Workspace) extract(p *Problem) *Solution {
	n := ws.nstruct
	ws.solx = grow(ws.solx, n)
	for j := 0; j < n; j++ {
		ws.solx[j] = ws.xval[j] * ws.colScale[j]
	}
	obj := 0.0
	for v, c := range p.obj {
		obj += c * ws.solx[v]
	}
	ws.sol = Solution{X: ws.solx[:n], Obj: obj, Stats: ws.stats}
	return &ws.sol
}

// SolveWith runs the sparse revised simplex using ws's buffers (a nil ws
// behaves like Solve). Aliasing contract: the returned Solution and its X
// slice alias workspace memory and are overwritten by the next SolveWith
// or ReSolveWith call on the same workspace; callers keeping results
// across solves must copy them out (Problem.Solve does exactly that).
// The problem itself is never modified, so it may be re-solved, rebuilt
// or extended freely.
func (p *Problem) SolveWith(ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.solvedRows = -1 // invalidated until this solve succeeds
	if p.nvars == 0 {
		ws.sol = Solution{}
		return &ws.sol, nil
	}
	ws.stats = Stats{}
	ws.build(p)
	ws.computeScales(p, 0)
	ws.applyScales()
	m := ws.nrows
	ws.startBasis(p)
	ws.growScratch()
	ws.resetEtas()
	ws.needRefactor = true
	ws.stats.Rows, ws.stats.Cols = m, ws.ncols()
	maxIter := 200*(m+ws.ncols()) + 2000

	if ws.nart > 0 {
		ws.setPhase1Cost()
		iters, err := ws.primal(maxIter)
		ws.stats.Phase1Iters = iters
		if err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		sum := 0.0
		for a := 0; a < ws.nart; a++ {
			sum += ws.xval[ws.nstruct+ws.nrows+a]
		}
		if sum > 1e-7 {
			return nil, ErrInfeasible
		}
		// Freeze the artificials at zero; fixed columns never re-enter.
		for a := 0; a < ws.nart; a++ {
			j := ws.nstruct + ws.nrows + a
			ws.lo[j], ws.hi[j] = 0, 0
		}
	}

	ws.setPhase2Cost(p)
	ws.perturbCosts()
	// The cost vector changed, so the maintained duals are stale. With a
	// live factorization (post phase 1) recompute them now; otherwise the
	// primal loop's first refresh will.
	if !ws.needRefactor {
		ws.recomputeDuals()
	}
	iters, err := ws.primal(maxIter)
	ws.stats.Phase2Iters = iters
	if err != nil {
		return nil, err
	}
	if !ws.DeferPolish {
		iters, err = ws.polish(p, maxIter)
		ws.stats.Phase2Iters += iters
		if err != nil {
			return nil, err
		}
	}
	ws.purgeArtificials()
	// Final hygiene: refactorize the purged basis and recompute the basic
	// values without eta-file drift before extracting the solution.
	if err := ws.factorize(); err != nil {
		return nil, err
	}
	ws.solvedVars, ws.solvedRows = p.nvars, len(p.cons)
	return ws.extract(p), nil
}

// ReSolveWith re-optimises after constraint rows were appended to p since
// the last successful SolveWith/ReSolveWith on ws, warm-starting the dual
// simplex from the previous optimal basis (which stays dual feasible
// under row appends). Only appends are supported: the caller must not
// have added variables, changed bounds, edited existing rows, or touched
// the objective — any detectable mismatch, and any numerical failure of
// the warm path, falls back to a cold SolveWith. The returned Solution
// aliases workspace memory exactly like SolveWith.
func (p *Problem) ReSolveWith(ws *Workspace) (*Solution, error) {
	if ws == nil || ws.solvedRows < 0 || ws.solvedVars != p.nvars ||
		len(p.cons) < ws.solvedRows || ws.nart != 0 || p.nvars == 0 {
		return p.SolveWith(ws)
	}
	oldRows := ws.solvedRows
	ws.solvedRows = -1
	ws.stats = Stats{}
	ws.build(p) // refreshes the CSC matrix with the appended rows' entries
	ws.computeScales(p, oldRows)
	ws.applyScales()
	n, m := ws.nstruct, ws.nrows
	ncols := n + m
	ws.stats.Rows, ws.stats.Cols = m, ncols
	ws.lo = extend(ws.lo, ncols)
	ws.hi = extend(ws.hi, ncols)
	ws.cost = extend(ws.cost, ncols)
	ws.xval = extend(ws.xval, ncols)
	ws.status = extend(ws.status, ncols)
	ws.basis = extend(ws.basis, m)
	for j := 0; j < n; j++ { // structural bounds are unchanged by contract
		ws.lo[j] = p.lo[j] / ws.colScale[j]
		ws.hi[j] = p.hi[j] / ws.colScale[j]
	}
	ws.setPhase2Cost(p)
	// Each appended row's logical enters the basis at the row's current
	// activity residual; bound violations there are the dual's work list.
	for i := oldRows; i < m; i++ {
		s := n + i
		switch p.cons[i].sense {
		case LE:
			ws.lo[s], ws.hi[s] = 0, math.Inf(1)
		case GE:
			ws.lo[s], ws.hi[s] = math.Inf(-1), 0
		case EQ:
			ws.lo[s], ws.hi[s] = 0, 0
		}
		resid := ws.b[i] // already row-scaled
		for _, t := range p.cons[i].terms {
			resid -= ws.rowScale[i] * t.Coef * ws.colScale[t.Var] * ws.xval[t.Var]
		}
		ws.basis[i] = int32(s)
		ws.status[s] = stBasic
		ws.xval[s] = resid
	}
	if ws.perturbed {
		ws.perturbCosts() // status-aligned, so still dual feasible
	}
	ws.growScratch()
	ws.needRefactor = true
	// The dual restart should need on the order of one pivot per appended
	// row (plus knock-on repairs), but after a polish the re-perturbed
	// costs can demand work unrelated to the append count, and the cold
	// solve below costs tens of thousands of pivots — so the budget keeps
	// a full O(m) of headroom before declaring degenerate thrashing.
	maxIter := 2000 + 40*(m-oldRows) + 2*m
	iters, err := ws.dual(maxIter)
	ws.stats.Phase2Iters = iters
	if err == nil && !ws.DeferPolish {
		iters, err = ws.polish(p, maxIter)
		ws.stats.Phase2Iters += iters
	}
	if err != nil {
		if err == ErrInfeasible || err == ErrCanceled {
			// Infeasibility is a fact about the problem; cancellation must
			// not trigger a full cold solve. Neither falls back.
			return nil, err
		}
		return p.SolveWith(ws) // numerical trouble: cold restart is sound
	}
	if err := ws.factorize(); err != nil {
		return p.SolveWith(ws)
	}
	ws.solvedVars, ws.solvedRows = p.nvars, len(p.cons)
	return ws.extract(p), nil
}

// PolishWith removes the deferred cost perturbation from the last
// DeferPolish solve on ws: it restores the true objective, re-optimises
// from the current (near-optimal, primal feasible) basis and extracts an
// exact optimum. Without a matching prior solve it falls back to a cold
// SolveWith first. The returned Solution aliases workspace memory exactly
// like SolveWith.
func (p *Problem) PolishWith(ws *Workspace) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if p.nvars == 0 {
		ws.sol = Solution{}
		return &ws.sol, nil
	}
	if ws.solvedRows != len(p.cons) || ws.solvedVars != p.nvars || ws.nart != 0 {
		if _, err := p.SolveWith(ws); err != nil {
			return nil, err
		}
	}
	ws.solvedRows = -1
	maxIter := 200*(ws.nrows+ws.ncols()) + 2000
	iters, err := ws.polish(p, maxIter)
	ws.stats.Phase2Iters += iters
	if err != nil {
		return nil, err
	}
	if err := ws.factorize(); err != nil {
		return nil, err
	}
	ws.solvedVars, ws.solvedRows = p.nvars, len(p.cons)
	return ws.extract(p), nil
}

// extend returns s resized to n, preserving existing contents (unlike
// grow, whose contents are unspecified after reallocation).
func extend[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	t := make([]T, n, c)
	copy(t, s)
	return t
}
