package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimple2D(t *testing.T) {
	// max x + y s.t. x + 2y <= 4, 3x + y <= 6  ==> min -(x+y).
	// Optimum at x=8/5, y=6/5, value 14/5.
	p := NewProblem()
	x := p.AddVar("x")
	y := p.AddVar("y")
	p.SetObj(x, -1)
	p.SetObj(y, -1)
	p.AddConstraint(LE, 4, Term{x, 1}, Term{y, 2})
	p.AddConstraint(LE, 6, Term{x, 3}, Term{y, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj+14.0/5) > 1e-8 {
		t.Errorf("objective = %v, want %v", sol.Obj, -14.0/5)
	}
	if math.Abs(sol.X[x]-8.0/5) > 1e-8 || math.Abs(sol.X[y]-6.0/5) > 1e-8 {
		t.Errorf("solution = %v, want [1.6 1.2]", sol.X)
	}
}

func TestGEAndEQConstraints(t *testing.T) {
	// min x + y s.t. x + y >= 3, x = 1  => x=1, y=2, obj 3.
	p := NewProblem()
	x := p.AddVar("x")
	y := p.AddVar("y")
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddConstraint(GE, 3, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 1, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-3) > 1e-8 || math.Abs(sol.X[x]-1) > 1e-8 {
		t.Errorf("got obj=%v x=%v", sol.Obj, sol.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2).
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObj(x, 1)
	p.AddConstraint(LE, -2, Term{x, -1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[x]-2) > 1e-8 {
		t.Errorf("x = %v, want 2", sol.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	p.AddConstraint(LE, 1, Term{x, 1})
	p.AddConstraint(GE, 2, Term{x, 1})
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObj(x, -1) // maximise x with no upper bound
	p.AddConstraint(GE, 1, Term{x, 1})
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("want ErrUnbounded, got %v", err)
	}
}

func TestEmptyProblem(t *testing.T) {
	sol, err := NewProblem().Solve()
	if err != nil || sol.Obj != 0 {
		t.Errorf("empty problem: %v %v", sol, err)
	}
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Beale's classic cycling example (cycles under naive Dantzig pricing
	// without anti-cycling): min -0.75x4 + 150x5 - 0.02x6 + 6x7 subject to
	// equality rows with degenerate rhs 0. Bland fallback must terminate.
	p := NewProblem()
	v := make([]int, 7)
	for i := range v {
		v[i] = p.AddVar("")
	}
	p.SetObj(v[3], -0.75)
	p.SetObj(v[4], 150)
	p.SetObj(v[5], -0.02)
	p.SetObj(v[6], 6)
	p.AddConstraint(EQ, 0, Term{v[0], 1}, Term{v[3], 0.25}, Term{v[4], -60}, Term{v[5], -0.04}, Term{v[6], 9})
	p.AddConstraint(EQ, 0, Term{v[1], 1}, Term{v[3], 0.5}, Term{v[4], -90}, Term{v[5], -0.02}, Term{v[6], 3})
	p.AddConstraint(EQ, 1, Term{v[2], 1}, Term{v[5], 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-(-0.05)) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", sol.Obj)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows produce a redundant row in phase 1.
	p := NewProblem()
	x := p.AddVar("x")
	y := p.AddVar("y")
	p.SetObj(x, 1)
	p.SetObj(y, 2)
	p.AddConstraint(EQ, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(EQ, 4, Term{x, 1}, Term{y, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-4) > 1e-8 { // x=4, y=0
		t.Errorf("objective = %v, want 4", sol.Obj)
	}
}

// evaluate checks that a solution satisfies all constraints to tolerance.
func feasible(p *Problem, x []float64, tolerance float64) bool {
	for _, c := range p.cons {
		lhs := 0.0
		for _, tm := range c.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch c.sense {
		case LE:
			if lhs > c.rhs+tolerance {
				return false
			}
		case GE:
			if lhs < c.rhs-tolerance {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tolerance {
				return false
			}
		}
	}
	for _, v := range x {
		if v < -tolerance {
			return false
		}
	}
	return true
}

// Property test: on random bounded-feasible LPs, the simplex solution is
// feasible and no random feasible point beats it.
func TestRandomLPOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		mrows := 1 + r.Intn(6)
		p := NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("")
			p.SetObj(vars[i], r.NormFloat64())
		}
		// Box constraints keep the problem bounded and feasible (0 inside).
		for i := range vars {
			p.AddConstraint(LE, 1+9*r.Float64(), Term{vars[i], 1})
		}
		for k := 0; k < mrows; k++ {
			terms := make([]Term, n)
			for i := range vars {
				terms[i] = Term{vars[i], r.NormFloat64()}
			}
			p.AddConstraint(LE, 1+9*r.Float64(), terms...) // rhs > 0 keeps origin feasible
		}
		sol, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !feasible(p, sol.X, 1e-6) {
			t.Logf("seed %d: infeasible solution %v", seed, sol.X)
			return false
		}
		// Random search must not find anything better.
		for trial := 0; trial < 300; trial++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = r.Float64() * 10
			}
			if feasible(p, cand, 0) {
				obj := 0.0
				for i, v := range vars {
					obj += p.obj[v] * cand[i]
				}
				if obj < sol.Obj-1e-6 {
					t.Logf("seed %d: random point beats simplex: %v < %v", seed, obj, sol.Obj)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Errorf("random LP property failed: %v", err)
	}
}

// Transportation-style LP with known optimum exercises many EQ rows.
func TestTransportation(t *testing.T) {
	// 2 supplies (10, 15), 3 demands (8, 7, 10); costs:
	//   [4 6 9]
	//   [5 3 2]
	// Optimal: x11=8, x12=2, x22=5, x23=10 -> 32+12+15+20 = 79.
	p := NewProblem()
	x := make([][]int, 2)
	costs := [][]float64{{4, 6, 9}, {5, 3, 2}}
	for i := range x {
		x[i] = make([]int, 3)
		for j := range x[i] {
			x[i][j] = p.AddVar("")
			p.SetObj(x[i][j], costs[i][j])
		}
	}
	supply := []float64{10, 15}
	demand := []float64{8, 7, 10}
	for i, s := range supply {
		p.AddConstraint(EQ, s, Term{x[i][0], 1}, Term{x[i][1], 1}, Term{x[i][2], 1})
	}
	for j, d := range demand {
		p.AddConstraint(EQ, d, Term{x[0][j], 1}, Term{x[1][j], 1})
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-79) > 1e-7 {
		t.Errorf("objective = %v, want 79", sol.Obj)
	}
}

func TestSolveIsRepeatable(t *testing.T) {
	// Solving the same problem twice must not mutate it.
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObj(x, 1)
	p.AddConstraint(GE, 5, Term{x, 1})
	a, err1 := p.Solve()
	b, err2 := p.Solve()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Obj != b.Obj {
		t.Errorf("repeat solve differs: %v vs %v", a.Obj, b.Obj)
	}
}

func TestSolveStats(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	y := p.AddVar("y")
	p.SetObj(x, -1)
	p.SetObj(y, -1)
	p.AddConstraint(LE, 4, Term{x, 1}, Term{y, 2})
	p.AddConstraint(GE, 1, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Rows != 2 {
		t.Errorf("stats rows = %d, want 2", sol.Stats.Rows)
	}
	// 2 structural + 2 slack/surplus + 1 artificial.
	if sol.Stats.Cols != 5 {
		t.Errorf("stats cols = %d, want 5", sol.Stats.Cols)
	}
	if sol.Stats.Phase1Iters == 0 || sol.Stats.Phase2Iters == 0 {
		t.Errorf("iteration counts missing: %+v", sol.Stats)
	}
}
