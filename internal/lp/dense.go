// The dense two-phase tableau solver, retained verbatim from the
// pre-sparse core as the differential-testing reference (the same role
// listsched.RunReference plays for the phase-2 scheduler): phase 1
// minimises the sum of artificial variables to find a basic feasible
// solution, phase 2 minimises the true objective. Dantzig pricing with a
// switch to Bland's rule after an iteration budget guarantees termination
// on degenerate problems. Variable bounds set with SetBounds are
// materialised as explicit constraint rows here (the tableau has no
// implicit-bound machinery), so the dense footprint grows with every
// bound while the sparse solver's does not — which is exactly the
// tradeoff the sparse core exists to remove.

package lp

import (
	"fmt"
	"math"
)

// ErrDenseBounds is returned by the dense reference for bound shapes it
// cannot express: tableau variables are implicitly non-negative, so a
// negative lower bound has no dense encoding.
var ErrDenseBounds = fmt.Errorf("lp: dense reference requires non-negative lower bounds")

// DenseWorkspace owns the dense solver's scratch memory: the tableau
// (backed by one flat buffer), the basis, the reduced-cost and cost rows,
// and the solution vector. Buffers grow geometrically and are reused
// across solves, so repeated SolveDenseWith calls on same-shaped problems
// do near-zero allocation. A DenseWorkspace is owned by one goroutine at
// a time; it is not safe for concurrent use.
type DenseWorkspace struct {
	flat   []float64   // backing array for the tableau rows
	rows   [][]float64 // row views into flat
	basis  []int
	red    []float64 // reduced-cost row
	cost   []float64 // current phase's cost row
	x      []float64 // solution values, aliased by Solution.X
	senses []Sense   // per-row sense after rhs normalisation
	cons   []constraint
	bterms []Term   // arena for synthesized bound-row terms
	sol    Solution // returned by SolveDenseWith; overwritten by the next call
	sx     simplex
}

// NewDenseWorkspace returns an empty workspace. The zero value is also
// ready to use.
func NewDenseWorkspace() *DenseWorkspace { return &DenseWorkspace{} }

// boundRows materialises the problem's non-default variable bounds as
// explicit constraint rows appended after p's own rows, reusing the
// workspace arenas. It returns ErrDenseBounds for negative lower bounds.
func (ws *DenseWorkspace) boundRows(p *Problem) error {
	ws.cons = append(ws.cons[:0], p.cons...)
	ws.bterms = ws.bterms[:0]
	for v := 0; v < p.nvars; v++ {
		if p.lo[v] < 0 {
			return fmt.Errorf("%w: variable %d has lower bound %v", ErrDenseBounds, v, p.lo[v])
		}
		if p.lo[v] > 0 {
			ws.bterms = append(ws.bterms, Term{Var: v, Coef: 1})
		}
		if !math.IsInf(p.hi[v], 1) {
			ws.bterms = append(ws.bterms, Term{Var: v, Coef: 1})
		}
	}
	// Second pass wires the term arena (stable now that it is fully grown).
	k := 0
	for v := 0; v < p.nvars; v++ {
		if p.lo[v] > 0 {
			ws.cons = append(ws.cons, constraint{terms: ws.bterms[k : k+1 : k+1], sense: GE, rhs: p.lo[v]})
			k++
		}
		if !math.IsInf(p.hi[v], 1) {
			ws.cons = append(ws.cons, constraint{terms: ws.bterms[k : k+1 : k+1], sense: LE, rhs: p.hi[v]})
			k++
		}
	}
	return nil
}

// SolveDenseWith runs two-phase dense simplex using ws's buffers (a nil ws
// behaves like SolveDense). The returned Solution and its X slice alias
// workspace memory and are invalidated by the next SolveDenseWith call on
// the same workspace; callers keeping results across solves must copy
// them out. The problem itself is never modified.
func (p *Problem) SolveDenseWith(ws *DenseWorkspace) (*Solution, error) {
	if ws == nil {
		ws = NewDenseWorkspace()
	}
	n := p.nvars
	if n == 0 {
		ws.sol = Solution{}
		return &ws.sol, nil
	}
	if err := ws.boundRows(p); err != nil {
		return nil, err
	}
	cons := ws.cons
	m := len(cons)

	// Pass 1: normalise senses (a negative rhs flips LE<->GE) and count the
	// slack/surplus and artificial columns.
	ws.senses = grow(ws.senses, m)
	nslack, nart := 0, 0
	for i, c := range cons {
		s := c.sense
		if c.rhs < 0 {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		ws.senses[i] = s
		if s != EQ {
			nslack++
		}
		if s != LE {
			nart++
		}
	}
	total := n + nslack + nart
	artStart := n + nslack
	stride := total + 1

	// Pass 2: write the tableau directly into the flat workspace buffer:
	// m rows x (total+1) columns, last column = rhs.
	ws.flat = grow(ws.flat, m*stride)
	clear(ws.flat)
	ws.rows = grow(ws.rows, m)
	for i := 0; i < m; i++ {
		ws.rows[i] = ws.flat[i*stride : (i+1)*stride : (i+1)*stride]
	}
	ws.basis = grow(ws.basis, m)
	si, ai := 0, 0
	for i, c := range cons {
		row := ws.rows[i]
		neg := c.rhs < 0
		for _, t := range c.terms {
			if neg {
				row[t.Var] -= t.Coef
			} else {
				row[t.Var] += t.Coef
			}
		}
		rhs := c.rhs
		if neg {
			rhs = -rhs
		}
		row[total] = rhs
		switch ws.senses[i] {
		case LE:
			row[n+si] = 1
			ws.basis[i] = n + si
			si++
		case GE:
			row[n+si] = -1
			si++
			row[artStart+ai] = 1
			ws.basis[i] = artStart + ai
			ai++
		case EQ:
			row[artStart+ai] = 1
			ws.basis[i] = artStart + ai
			ai++
		}
	}

	ws.red = grow(ws.red, total)
	ws.cost = grow(ws.cost, total)
	s := &ws.sx
	*s = simplex{t: ws.rows, basis: ws.basis, ncols: total, nrows: m, red: ws.red}

	stats := Stats{Rows: m, Cols: total}
	if nart > 0 {
		// Phase 1: minimise the sum of artificials.
		cost := ws.cost
		clear(cost)
		for j := artStart; j < total; j++ {
			cost[j] = 1
		}
		obj, err := s.run(cost, artStart) // artificials allowed in phase 1
		stats.Phase1Iters = s.iters
		if err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		if obj > 1e-7 {
			return nil, ErrInfeasible
		}
		// Pivot remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if s.basis[i] >= artStart {
				pivoted := false
				for j := 0; j < artStart; j++ {
					if math.Abs(s.t[i][j]) > 1e-7 {
						s.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row: zero it (keeps indices stable).
					for j := range s.t[i] {
						s.t[i][j] = 0
					}
				}
			}
		}
	}

	// Phase 2: minimise the real objective; artificial columns forbidden.
	cost := ws.cost
	clear(cost)
	copy(cost, p.obj)
	forbid := total
	if nart > 0 {
		forbid = artStart
	}
	if _, err := s.run(cost, forbid); err != nil {
		return nil, err
	}
	stats.Phase2Iters = s.iters

	ws.x = grow(ws.x, n)
	clear(ws.x)
	for i, b := range s.basis {
		if b < n {
			ws.x[b] = s.t[i][total]
		}
	}
	obj := 0.0
	for v, c := range p.obj {
		obj += c * ws.x[v]
	}
	ws.sol = Solution{X: ws.x, Obj: obj, Stats: stats}
	return &ws.sol, nil
}

// simplex holds the working tableau. Columns >= limit are not eligible to
// enter the basis (used to freeze artificials in phase 2).
type simplex struct {
	t     [][]float64
	basis []int
	red   []float64 // reduced-cost scratch row, len ncols
	nrows int
	ncols int
	iters int // pivots performed in the most recent run
}

// run minimises cost·x over the current tableau. It returns the achieved
// objective value. Columns with index >= limit may not enter the basis.
func (s *simplex) run(cost []float64, limit int) (float64, error) {
	s.iters = 0
	// Build the reduced-cost row: z_j = cost_j - cost_B · column_j for the
	// current basis.
	red := s.red
	copy(red, cost)
	for i, b := range s.basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		row := s.t[i]
		for j := 0; j < s.ncols; j++ {
			red[j] -= cb * row[j]
		}
	}

	maxIter := 200 * (s.nrows + s.ncols)
	blandAfter := 20 * (s.nrows + s.ncols)
	for iter := 0; iter < maxIter; iter++ {
		s.iters = iter + 1
		// Entering column.
		enter := -1
		if iter < blandAfter {
			best := -tol
			for j := 0; j < limit; j++ {
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		} else { // Bland: first eligible index, guarantees termination
			for j := 0; j < limit; j++ {
				if red[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// Recompute the objective from the final basis for numerical
			// hygiene (the incrementally tracked offset can drift).
			obj := 0.0
			for i, b := range s.basis {
				obj += cost[b] * s.t[i][s.ncols]
			}
			return obj, nil
		}

		// Ratio test for the leaving row.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.nrows; i++ {
			a := s.t[i][enter]
			if a > tol {
				r := s.t[i][s.ncols] / a
				if r < bestRatio-tol || (r < bestRatio+tol && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}

		s.pivot(leave, enter)
		// Update the reduced-cost row with the same elimination.
		f := red[enter]
		if f != 0 {
			prow := s.t[leave]
			for j := 0; j < s.ncols; j++ {
				red[j] -= f * prow[j]
			}
			red[enter] = 0
		}
	}
	return 0, ErrIterLimit
}

// pivot performs a Gauss-Jordan pivot on element (r, c).
func (s *simplex) pivot(r, c int) {
	prow := s.t[r]
	pv := prow[c]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[c] = 1 // exact
	for i := 0; i < s.nrows; i++ {
		if i == r {
			continue
		}
		f := s.t[i][c]
		if f == 0 {
			continue
		}
		row := s.t[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[c] = 0 // exact
	}
	s.basis[r] = c
}
