package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a random feasible bounded LP (origin feasible, box
// constraints keep it bounded).
func randomBoundedLP(seed int64, n, mrows int) *Problem {
	r := rand.New(rand.NewSource(seed))
	p := NewProblem()
	buildRandomBoundedLP(p, r, n, mrows)
	return p
}

func buildRandomBoundedLP(p *Problem, r *rand.Rand, n, mrows int) {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar("")
		p.SetObj(vars[i], r.NormFloat64())
	}
	for i := range vars {
		p.AddConstraint(LE, 1+9*r.Float64(), Term{vars[i], 1})
	}
	for k := 0; k < mrows; k++ {
		terms := make([]Term, n)
		for i := range vars {
			terms[i] = Term{vars[i], r.NormFloat64()}
		}
		p.AddConstraint(LE, 1+9*r.Float64(), terms...)
	}
	// A few GE/EQ rows exercise the artificial-variable machinery.
	p.AddConstraint(GE, 0.1, Term{vars[0], 1})
	p.AddConstraint(EQ, 0.5, Term{vars[n-1], 1})
}

// TestSolveWithMatchesSolve reuses one workspace across many different
// problems and checks the results are identical to fresh solves.
func TestSolveWithMatchesSolve(t *testing.T) {
	ws := NewWorkspace()
	for seed := int64(0); seed < 40; seed++ {
		n := 1 + int(seed%7)
		mrows := 1 + int(seed%5)
		p := randomBoundedLP(seed, n, mrows)
		fresh, errF := p.Solve()
		reused, errR := p.SolveWith(ws)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("seed %d: fresh err=%v reused err=%v", seed, errF, errR)
		}
		if errF != nil {
			continue
		}
		if fresh.Obj != reused.Obj {
			t.Errorf("seed %d: obj %v != %v", seed, fresh.Obj, reused.Obj)
		}
		for i := range fresh.X {
			if fresh.X[i] != reused.X[i] {
				t.Errorf("seed %d: x[%d] %v != %v", seed, i, fresh.X[i], reused.X[i])
			}
		}
		if fresh.Stats != reused.Stats {
			t.Errorf("seed %d: stats %+v != %+v", seed, fresh.Stats, reused.Stats)
		}
	}
}

// TestSolveWithNilWorkspace checks SolveWith(nil) behaves like Solve.
func TestSolveWithNilWorkspace(t *testing.T) {
	p := randomBoundedLP(7, 4, 3)
	a, err1 := p.Solve()
	b, err2 := p.SolveWith(nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Obj != b.Obj {
		t.Errorf("obj %v != %v", a.Obj, b.Obj)
	}
}

// TestProblemResetReuse rebuilds the same problem after Reset and checks
// identical results plus retained capacity.
func TestProblemResetReuse(t *testing.T) {
	p := NewProblem()
	r := rand.New(rand.NewSource(3))
	buildRandomBoundedLP(p, r, 5, 4)
	want, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantObj := want.Obj
	for round := 0; round < 3; round++ {
		p.Reset()
		if p.NumVars() != 0 || p.NumConstraints() != 0 {
			t.Fatalf("Reset left %d vars, %d cons", p.NumVars(), p.NumConstraints())
		}
		r := rand.New(rand.NewSource(3)) // same seed: same problem
		buildRandomBoundedLP(p, r, 5, 4)
		got, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got.Obj != wantObj {
			t.Errorf("round %d: obj %v, want %v", round, got.Obj, wantObj)
		}
	}
}

// TestSolutionAliasesWorkspace documents the aliasing contract: the next
// SolveWith overwrites a previously returned solution.
func TestSolutionAliasesWorkspace(t *testing.T) {
	ws := NewWorkspace()
	p1 := NewProblem()
	x := p1.AddVar("")
	p1.SetObj(x, 1)
	p1.AddConstraint(GE, 5, Term{x, 1})
	sol1, err := p1.SolveWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol1.X[0]-5) > 1e-9 {
		t.Fatalf("x = %v, want 5", sol1.X[0])
	}
	p2 := NewProblem()
	y := p2.AddVar("")
	p2.SetObj(y, 1)
	p2.AddConstraint(GE, 7, Term{y, 1})
	if _, err := p2.SolveWith(ws); err != nil {
		t.Fatal(err)
	}
	if sol1.X[0] != 7 {
		t.Errorf("aliasing contract changed: sol1.X[0] = %v (expected overwrite to 7); update the docs", sol1.X[0])
	}
}

// TestSolveWithNearZeroAllocs verifies the headline property: re-solving a
// same-shaped problem through a warm workspace performs no allocation
// inside the solver.
func TestSolveWithNearZeroAllocs(t *testing.T) {
	p := randomBoundedLP(11, 6, 5)
	ws := NewWorkspace()
	if _, err := p.SolveWith(ws); err != nil { // warm-up growth
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.SolveWith(ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm SolveWith allocates %v objects per run, want 0", allocs)
	}
}
