// Sparse LU factorization of the simplex basis: Gilbert–Peierls
// left-looking LU with partial pivoting. Each basis column is solved
// against the already-built part of L with a sparse lower-triangular
// solve whose nonzero pattern is discovered by depth-first search (the
// classic CSparse cs_spsolve structure), so the factorization costs
// O(flops(fill)) rather than O(m^2) — for the near-triangular bases the
// allotment LP produces, effectively O(nnz).
//
// Beyond the factorization itself, the type provides the hypersparse
// triangular solves the revised simplex lives on: for a sparse right-hand
// side (an entering column in FTRAN, a unit vector in BTRAN) the nonzero
// pattern of the solution is the DFS reach of the input support through
// the factor's dependency graph, so a solve touches only that reach
// instead of scanning all m positions. The transposed solves need the
// row-wise adjacency of L and U, which factor() builds once per
// refactorization. All arrays live in the luFactor and are reused.

package lp

import "math"

// luFactor is B = P^T L U for the current basis: L unit-lower-triangular
// (stored without its diagonal, row indices in original row space), U
// upper-triangular in processing coordinates, prow the pivot row per
// processed column.
type luFactor struct {
	m int
	// L columns: entries (original row, value), strictly below the pivot.
	lcp []int32 // column pointers, len m+1
	lri []int32
	lvx []float64
	// U columns: entries (processing position < k, value) plus the diagonal.
	ucp   []int32 // column pointers, len m+1
	upi   []int32
	uvx   []float64
	udiag []float64

	prow []int32 // pivot original row per processed column
	pinv []int32 // original row -> processing position, -1 while unassigned
	// On ErrSingular: the basis position of the column that found no
	// usable pivot and one still-unpivoted row, for basis repair.
	failPos int32
	failRow int32
	// cpos maps processing order -> basis position: unit (logical and
	// artificial) basis columns are factored first — each pivots on its own
	// row with zero fill, the triangularization crash of LP folklore — and
	// structural columns after, so fill is confined to the structural bump.
	cpos    []int32
	cposInv []int32 // basis position -> processing order

	// Row-wise adjacency of U and of L (in processing coordinates), used
	// by the transposed sparse reaches of BTRAN. Values are not stored;
	// the numeric passes read the column arrays.
	urp   []int32 // len m+1
	uradj []int32
	lrp   []int32 // len m+1
	lradj []int32

	// scratch for the sparse solves
	x      []float64
	found  []int32 // pattern output, found[top:m] topologically ordered
	stack  []int32
	pstack []int32
	mark   []int32
	ver    int32
}

// factor rebuilds the factorization for ws's current basis. It returns
// ErrSingular when a pivot cannot be found (structurally or numerically
// singular basis).
func (lu *luFactor) factor(ws *Workspace) error {
	m := ws.nrows
	lu.m = m
	lu.lcp = grow(lu.lcp, m+1)
	lu.ucp = grow(lu.ucp, m+1)
	lu.udiag = grow(lu.udiag, m)
	lu.prow = grow(lu.prow, m)
	lu.pinv = grow(lu.pinv, m)
	lu.cpos = grow(lu.cpos, m)
	lu.cposInv = grow(lu.cposInv, m)
	lu.x = grow(lu.x, m)
	lu.found = grow(lu.found, m)
	lu.stack = grow(lu.stack, m)
	lu.pstack = grow(lu.pstack, m)
	if cap(lu.mark) < m || lu.ver > 1<<30 {
		lu.mark = make([]int32, m)
		lu.ver = 0
	}
	lu.mark = lu.mark[:m]
	lu.lri = lu.lri[:0]
	lu.lvx = lu.lvx[:0]
	lu.upi = lu.upi[:0]
	lu.uvx = lu.uvx[:0]
	for i := 0; i < m; i++ {
		lu.pinv[i] = -1
		lu.x[i] = 0
	}
	lu.lcp[0], lu.ucp[0] = 0, 0

	no := 0
	for k := 0; k < m; k++ {
		if int(ws.basis[k]) >= ws.nstruct {
			lu.cpos[no] = int32(k)
			no++
		}
	}
	for k := 0; k < m; k++ {
		if int(ws.basis[k]) < ws.nstruct {
			lu.cpos[no] = int32(k)
			no++
		}
	}
	for k := 0; k < m; k++ {
		lu.cposInv[lu.cpos[k]] = int32(k)
	}

	for k := 0; k < m; k++ {
		top := lu.spsolve(ws, int(ws.basis[lu.cpos[k]]))
		// Partition the pattern into U entries (rows already pivotal) and
		// pivot candidates; choose the largest candidate (partial pivoting).
		ipiv, pivmag := int32(-1), 0.0
		for p := top; p < m; p++ {
			i := lu.found[p]
			if lu.pinv[i] < 0 {
				if a := math.Abs(lu.x[i]); a > pivmag {
					pivmag, ipiv = a, i
				}
			}
		}
		if ipiv < 0 || pivmag < 1e-11 {
			// Clear scratch before bailing so the next factor starts clean.
			for p := top; p < m; p++ {
				lu.x[lu.found[p]] = 0
			}
			lu.failPos = lu.cpos[k]
			lu.failRow = -1
			if ipiv >= 0 {
				lu.failRow = ipiv
			} else {
				for i := 0; i < m; i++ {
					if lu.pinv[i] < 0 {
						lu.failRow = int32(i)
						break
					}
				}
			}
			return ErrSingular
		}
		pv := lu.x[ipiv]
		for p := top; p < m; p++ {
			i := lu.found[p]
			if kp := lu.pinv[i]; kp >= 0 {
				if v := lu.x[i]; v != 0 {
					lu.upi = append(lu.upi, kp)
					lu.uvx = append(lu.uvx, v)
				}
			} else if i != ipiv {
				if v := lu.x[i]; v != 0 {
					lu.lri = append(lu.lri, i)
					lu.lvx = append(lu.lvx, v/pv)
				}
			}
			lu.x[i] = 0
		}
		lu.udiag[k] = pv
		lu.prow[k] = ipiv
		lu.pinv[ipiv] = int32(k)
		lu.lcp[k+1] = int32(len(lu.lri))
		lu.ucp[k+1] = int32(len(lu.upi))
	}
	lu.buildTransposes()
	return nil
}

// buildTransposes derives the row-wise adjacency of U and L (the latter
// with rows relabelled to processing positions via pinv) for the
// transposed sparse reaches of BTRAN.
func (lu *luFactor) buildTransposes() {
	m := lu.m
	lu.urp = grow(lu.urp, m+1)
	lu.lrp = grow(lu.lrp, m+1)
	lu.uradj = grow(lu.uradj, len(lu.upi))
	lu.lradj = grow(lu.lradj, len(lu.lri))
	cnt := lu.pstack // free between factorizations and solves
	for i := 0; i < m; i++ {
		cnt[i] = 0
	}
	for _, p := range lu.upi {
		cnt[p]++
	}
	lu.urp[0] = 0
	for i := 0; i < m; i++ {
		lu.urp[i+1] = lu.urp[i] + cnt[i]
	}
	cur := lu.stack // second scratch cursor
	copy(cur[:m], lu.urp[:m])
	for k := 0; k < m; k++ {
		for p := lu.ucp[k]; p < lu.ucp[k+1]; p++ {
			pp := lu.upi[p]
			lu.uradj[cur[pp]] = int32(k)
			cur[pp]++
		}
	}
	for i := 0; i < m; i++ {
		cnt[i] = 0
	}
	for _, i := range lu.lri {
		cnt[lu.pinv[i]]++
	}
	lu.lrp[0] = 0
	for i := 0; i < m; i++ {
		lu.lrp[i+1] = lu.lrp[i] + cnt[i]
	}
	copy(cur[:m], lu.lrp[:m])
	for k := 0; k < m; k++ {
		for p := lu.lcp[k]; p < lu.lcp[k+1]; p++ {
			j := lu.pinv[lu.lri[p]]
			lu.lradj[cur[j]] = int32(k)
			cur[j]++
		}
	}
}

// spsolve computes x = L \ B[:, col] for the partially built L: the
// nonzero pattern is the DFS reach of col's rows through L's columns, the
// numeric values are accumulated in lu.x over that pattern. Returns top
// such that lu.found[top:m] holds the pattern in topological order.
func (lu *luFactor) spsolve(ws *Workspace, col int) int {
	m := lu.m
	top := m
	lu.ver++
	ver := lu.ver
	idx, val, unitRow, unitVal := ws.colSpan(col)
	for _, i := range idx {
		if lu.mark[i] != ver {
			top = lu.dfs(i, top, ver)
		}
	}
	if unitRow >= 0 && lu.mark[unitRow] != ver {
		top = lu.dfs(unitRow, top, ver)
	}
	// Scatter the numeric column, then eliminate in topological order.
	for p, i := range idx {
		lu.x[i] += val[p]
	}
	if unitRow >= 0 {
		lu.x[unitRow] += unitVal
	}
	lu.eliminateL(lu.x, top)
	return top
}

// eliminateL runs the numeric pass of an L-solve over the pattern
// found[top:m] (already in topological order) on the row-space vector x.
func (lu *luFactor) eliminateL(x []float64, top int) {
	for p := top; p < lu.m; p++ {
		i := lu.found[p]
		kp := lu.pinv[i]
		if kp < 0 {
			continue
		}
		xi := x[i]
		if xi == 0 {
			continue
		}
		for q := lu.lcp[kp]; q < lu.lcp[kp+1]; q++ {
			x[lu.lri[q]] -= lu.lvx[q] * xi
		}
	}
}

// dfs performs an iterative depth-first search from root through the
// column graph of L (node i has edges to the rows of L column pinv[i]),
// pushing finished nodes onto found[] from position top downward. The
// resulting reverse finishing order is a topological order of the reach.
func (lu *luFactor) dfs(root int32, top int, ver int32) int {
	head := 0
	lu.stack[0] = root
	for head >= 0 {
		i := lu.stack[head]
		if lu.mark[i] != ver {
			lu.mark[i] = ver
			if lu.pinv[i] < 0 {
				lu.pstack[head] = 0 // no outgoing edges
			} else {
				lu.pstack[head] = lu.lcp[lu.pinv[i]]
			}
		}
		done := true
		if kp := lu.pinv[i]; kp >= 0 {
			for p := lu.pstack[head]; p < lu.lcp[kp+1]; p++ {
				j := lu.lri[p]
				if lu.mark[j] != ver {
					lu.pstack[head] = p + 1
					head++
					lu.stack[head] = j
					done = false
					break
				}
			}
		}
		if done {
			head--
			top--
			lu.found[top] = i
		}
	}
	return top
}

// dfsAdj is dfs over an explicit flat adjacency (ap, ai): node v's
// neighbours are ai[ap[v]:ap[v+1]].
func (lu *luFactor) dfsAdj(root int32, top int, ver int32, ap, ai []int32) int {
	head := 0
	lu.stack[0] = root
	for head >= 0 {
		v := lu.stack[head]
		if lu.mark[v] != ver {
			lu.mark[v] = ver
			lu.pstack[head] = ap[v]
		}
		done := true
		for p := lu.pstack[head]; p < ap[v+1]; p++ {
			j := ai[p]
			if lu.mark[j] != ver {
				lu.pstack[head] = p + 1
				head++
				lu.stack[head] = j
				done = false
				break
			}
		}
		if done {
			head--
			top--
			lu.found[top] = v
		}
	}
	return top
}

// solveLSparse solves L x = x in place for a sparse row-space x with
// support pat. The solution pattern lands in found[top:m], topologically
// ordered; the caller consumes it before the next solve reuses found.
func (lu *luFactor) solveLSparse(x []float64, pat []int32) int {
	if lu.denseish(len(pat)) {
		lu.lsolve(x)
		return lu.gather(x)
	}
	top := lu.m
	lu.ver++
	for _, i := range pat {
		if lu.mark[i] != lu.ver {
			top = lu.dfs(i, top, lu.ver)
		}
	}
	lu.eliminateL(x, top)
	return top
}

// denseish reports whether a support is large enough that the DFS reach
// bookkeeping costs more than a straight dense sweep over the factors.
func (lu *luFactor) denseish(support int) bool {
	return support*16 > lu.m
}

// gather rebuilds the pattern of a dense solve result: found[top:m] holds
// the indices of all nonzero entries (order is irrelevant to callers).
func (lu *luFactor) gather(x []float64) int {
	top := lu.m
	for i := lu.m - 1; i >= 0; i-- {
		if x[i] != 0 {
			top--
			lu.found[top] = int32(i)
		}
	}
	return top
}

// solveUSparse solves U x = x in place for a sparse processing-space x
// with support pat (back substitution over the reach only).
func (lu *luFactor) solveUSparse(x []float64, pat []int32) int {
	if lu.denseish(len(pat)) {
		lu.usolve(x[:lu.m])
		return lu.gather(x)
	}
	top := lu.m
	lu.ver++
	for _, k := range pat {
		if lu.mark[k] != lu.ver {
			top = lu.dfsAdj(k, top, lu.ver, lu.ucp, lu.upi)
		}
	}
	for p := top; p < lu.m; p++ {
		k := lu.found[p]
		t := x[k] / lu.udiag[k]
		x[k] = t
		if t == 0 {
			continue
		}
		for q := lu.ucp[k]; q < lu.ucp[k+1]; q++ {
			x[lu.upi[q]] -= lu.uvx[q] * t
		}
	}
	return top
}

// solveUTSparse solves U^T x = x in place for a sparse processing-space x
// with support pat; the reach runs through U's row adjacency.
func (lu *luFactor) solveUTSparse(x []float64, pat []int32) int {
	if lu.denseish(len(pat)) {
		lu.utsolve(x[:lu.m])
		return lu.gather(x)
	}
	top := lu.m
	lu.ver++
	for _, k := range pat {
		if lu.mark[k] != lu.ver {
			top = lu.dfsAdj(k, top, lu.ver, lu.urp, lu.uradj)
		}
	}
	for p := top; p < lu.m; p++ {
		k := lu.found[p]
		t := x[k]
		for q := lu.ucp[k]; q < lu.ucp[k+1]; q++ {
			t -= lu.uvx[q] * x[lu.upi[q]]
		}
		x[k] = t / lu.udiag[k]
	}
	return top
}

// solveLTSparse solves L^T x = x in place for a sparse processing-space x
// with support pat; the reach runs through L's row adjacency.
func (lu *luFactor) solveLTSparse(x []float64, pat []int32) int {
	if lu.denseish(len(pat)) {
		lu.ltsolve(x[:lu.m])
		return lu.gather(x)
	}
	top := lu.m
	lu.ver++
	for _, k := range pat {
		if lu.mark[k] != lu.ver {
			top = lu.dfsAdj(k, top, lu.ver, lu.lrp, lu.lradj)
		}
	}
	for p := top; p < lu.m; p++ {
		k := lu.found[p]
		t := x[k]
		for q := lu.lcp[k]; q < lu.lcp[k+1]; q++ {
			t -= lu.lvx[q] * x[lu.pinv[lu.lri[q]]]
		}
		x[k] = t
	}
	return top
}

// lsolve applies L^-1 (with the row permutation) to the dense row-space
// vector x in place: after the call, x[prow[k]] holds component k of the
// result for every processing position k.
func (lu *luFactor) lsolve(x []float64) {
	for k := 0; k < lu.m; k++ {
		t := x[lu.prow[k]]
		if t == 0 {
			continue
		}
		for p := lu.lcp[k]; p < lu.lcp[k+1]; p++ {
			x[lu.lri[p]] -= lu.lvx[p] * t
		}
	}
}

// usolve solves U z = z in place on the dense processing-space vector z.
func (lu *luFactor) usolve(z []float64) {
	for k := lu.m - 1; k >= 0; k-- {
		t := z[k] / lu.udiag[k]
		z[k] = t
		if t == 0 {
			continue
		}
		for p := lu.ucp[k]; p < lu.ucp[k+1]; p++ {
			z[lu.upi[p]] -= lu.uvx[p] * t
		}
	}
}

// utsolve solves U^T w = w in place on the dense processing-space vector w.
func (lu *luFactor) utsolve(w []float64) {
	for k := 0; k < lu.m; k++ {
		t := w[k]
		for p := lu.ucp[k]; p < lu.ucp[k+1]; p++ {
			t -= lu.uvx[p] * w[lu.upi[p]]
		}
		w[k] = t / lu.udiag[k]
	}
}

// ltsolve solves L^T w = w in place on the dense processing-space vector w.
func (lu *luFactor) ltsolve(w []float64) {
	for k := lu.m - 1; k >= 0; k-- {
		t := w[k]
		for p := lu.lcp[k]; p < lu.lcp[k+1]; p++ {
			t -= lu.lvx[p] * w[lu.pinv[lu.lri[p]]]
		}
		w[k] = t
	}
}
