package lp

import "math"

// Basis is a transplantable snapshot of a simplex basis: the per-column
// status vector of an optimal basis, structural columns first, then one
// logical per constraint row. It is the cross-request warm-start currency
// of the serving layer's delta path: a basis exported after solving one
// instance can seed SolveHotWith on a different Problem with the same
// row/column layout but different numbers (bounds, coefficients, rhs).
//
// A Basis is immutable once exported and safe to share across goroutines;
// it holds no workspace memory.
type Basis struct {
	// Status has NVars + NRows entries using the workspace's status
	// encoding (nonbasic-at-lower, nonbasic-at-upper, basic). Exactly
	// NRows entries are basic in a valid basis.
	Status []int8
	NVars  int
	NRows  int
}

// ExportBasis snapshots the basis of the last successful solve on ws
// (SolveWith, ReSolveWith, PolishWith or SolveHotWith). It returns nil if
// the workspace holds no valid solved basis. The snapshot copies the
// status vector, so it remains valid after ws is reused.
func (ws *Workspace) ExportBasis() *Basis {
	if ws.solvedRows < 0 || ws.nart != 0 || ws.solvedVars != ws.nstruct || ws.solvedRows != ws.nrows {
		return nil
	}
	nc := ws.nstruct + ws.nrows
	st := make([]int8, nc)
	copy(st, ws.status[:nc])
	return &Basis{Status: st, NVars: ws.nstruct, NRows: ws.nrows}
}

// perturbCostsNonbasic is the hot-start flavour of perturbCosts: it
// leaves basic costs alone. Perturbing a basic cost moves the duals and
// with them every reduced cost, so the full perturbation would knock a
// transplanted optimal basis off optimality and buy a storm of tiny
// corrective pivots. Perturbing only nonbasic columns, away from their
// resting bound, keeps the transplanted point exactly optimal while
// still breaking reduced-cost ties among the columns that could enter.
//
//malsched:noalloc
func (ws *Workspace) perturbCostsNonbasic() {
	limit := ws.nstruct + ws.nrows
	for j := 0; j < limit; j++ {
		if ws.lo[j] == ws.hi[j] || ws.status[j] == stBasic {
			continue
		}
		u := float64(j)*0.6180339887498949 + 0.5
		u -= math.Floor(u) // golden-ratio hash in [0, 1), as perturbCosts
		eps := perturbScale * (1 + math.Abs(ws.cost[j])) * (0.5 + 0.5*u)
		if ws.status[j] == nbUpper {
			ws.cost[j] -= eps
		} else {
			ws.cost[j] += eps
		}
	}
	ws.dFresh = false
	ws.perturbed = true
}

// RowSlackBasic reports whether constraint row r's logical variable is
// basic in the snapshot — for an inequality row, that means the row was
// slack (not binding) at the captured optimum. Callers slimming a basis
// for transplant can drop such a row together with its status entry: one
// basic variable and one row leave together, so the basis stays square.
func (b *Basis) RowSlackBasic(r int) bool {
	return b.Status[b.NVars+r] == stBasic
}

// SolveHotWith solves p starting from a transplanted basis instead of the
// crash basis, for problems with the same layout as the basis's origin
// (same variable count, same row count and senses) but possibly different
// numbers everywhere — the textbook warm start for "same structure,
// edited data". The steps:
//
//  1. rebuild and rescale the model from scratch (fresh numbers mean
//     fresh equilibration; the basis is a combinatorial object and
//     survives rescaling),
//  2. install the snapshot statuses, factorize the transplanted basis
//     (singular bases are repaired by swapping logicals in),
//  3. shift the bounds of out-of-bounds basic variables onto their
//     current values, making the transplanted point primal feasible by
//     construction, and run the primal simplex to optimality of the
//     relaxed problem,
//  4. restore the true bounds and run the dual simplex to clear the
//     remaining primal infeasibilities (the point is dual feasible after
//     step 3, which is exactly the dual's starting requirement).
//
// When the basis comes from a near-identical instance, steps 3 and 4 take
// a handful of pivots each instead of the cold solve's thousands. Any
// mismatch between p and the basis, and any numerical failure of the warm
// path, falls back to a cold SolveWith — SolveHotWith never fails where
// SolveWith would succeed. DeferPolish is honoured exactly like SolveWith.
// The returned Solution aliases workspace memory exactly like SolveWith.
//
//malsched:noalloc
func (p *Problem) SolveHotWith(ws *Workspace, bas *Basis) (*Solution, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	if bas == nil || bas.NVars != p.nvars || bas.NRows != len(p.cons) ||
		len(bas.Status) != bas.NVars+bas.NRows || p.nvars == 0 {
		return p.SolveWith(ws)
	}
	ws.solvedRows = -1
	ws.stats = Stats{}
	ws.build(p)
	ws.computeScales(p, 0)
	ws.applyScales()
	n, m := ws.nstruct, ws.nrows
	ws.nart = 0
	ws.artRow = ws.artRow[:0]
	ws.artSign = ws.artSign[:0]
	ncols := n + m
	ws.lo = grow(ws.lo, ncols)
	ws.hi = grow(ws.hi, ncols)
	ws.cost = grow(ws.cost, ncols)
	ws.xval = grow(ws.xval, ncols)
	ws.status = grow(ws.status, ncols)
	ws.basis = grow(ws.basis, m)
	for j := 0; j < n; j++ {
		ws.lo[j] = p.lo[j] / ws.colScale[j]
		ws.hi[j] = p.hi[j] / ws.colScale[j]
	}
	for i := 0; i < m; i++ {
		s := n + i
		switch p.cons[i].sense {
		case LE:
			ws.lo[s], ws.hi[s] = 0, math.Inf(1)
		case GE:
			ws.lo[s], ws.hi[s] = math.Inf(-1), 0
		case EQ:
			ws.lo[s], ws.hi[s] = 0, 0
		}
	}
	// Transplant the statuses. Nonbasic columns rest on a finite bound;
	// where the snapshot's resting side is infinite under p's bounds (a
	// bound became infinite, or row senses differ from the origin), snap
	// to the other side, and give up on a free column — the crash basis
	// handles those.
	nbasic := 0
	for j := 0; j < ncols; j++ {
		st := bas.Status[j]
		switch st {
		case stBasic:
			ws.status[j] = stBasic
			ws.xval[j] = 0 // recomputed by factorize below
			nbasic++
		case nbLower, nbUpper:
			if st == nbLower && math.IsInf(ws.lo[j], -1) {
				st = nbUpper
			}
			if st == nbUpper && math.IsInf(ws.hi[j], 1) {
				st = nbLower
			}
			if st == nbLower && math.IsInf(ws.lo[j], -1) {
				return p.SolveWith(ws)
			}
			ws.status[j] = st
			if st == nbLower {
				ws.xval[j] = ws.lo[j]
			} else {
				ws.xval[j] = ws.hi[j]
			}
		default:
			return p.SolveWith(ws)
		}
	}
	if nbasic != m {
		return p.SolveWith(ws)
	}
	k := 0
	for j := 0; j < ncols; j++ {
		if ws.status[j] == stBasic {
			ws.basis[k] = int32(j)
			k++
		}
	}
	ws.growScratch()
	ws.resetEtas()
	ws.setPhase2Cost(p)
	ws.stats.Rows, ws.stats.Cols = m, ncols
	maxIter := 200*(m+ncols) + 2000
	if err := ws.factorize(); err != nil {
		if err == ErrSingular {
			err = ws.repairSingular()
		}
		if err != nil {
			return p.SolveWith(ws)
		}
	}
	// Bound shift: relax each out-of-bounds basic variable's violated
	// bound onto its current value, recording the true bound. The
	// transplanted point is then primal feasible by construction.
	ws.shiftIdx = ws.shiftIdx[:0]
	ws.shiftBnd = ws.shiftBnd[:0]
	for r := 0; r < m; r++ {
		j := ws.basis[r]
		x := ws.xval[j]
		if lo := ws.lo[j]; x < lo-tol {
			ws.shiftIdx = append(ws.shiftIdx, j)
			ws.shiftBnd = append(ws.shiftBnd, lo)
			ws.lo[j] = x
		} else if hi := ws.hi[j]; x > hi+tol {
			ws.shiftIdx = append(ws.shiftIdx, ^j) // complement marks an upper shift
			ws.shiftBnd = append(ws.shiftBnd, hi)
			ws.hi[j] = x
		}
	}
	ws.perturbCostsNonbasic()
	ws.recomputeDuals()
	iters, err := ws.primal(maxIter)
	ws.stats.Phase2Iters = iters
	if err != nil {
		return p.SolveWith(ws)
	}
	if len(ws.shiftIdx) > 0 {
		// Restore the true bounds. Nonbasic columns resting on a shifted
		// bound snap to the true bound; basic values left outside their
		// bounds are exactly the dual simplex's work list (the point is
		// dual feasible — the relaxed problem's optimality — which is the
		// dual's starting requirement).
		for i, cj := range ws.shiftIdx {
			if j := cj; j >= 0 {
				ws.lo[j] = ws.shiftBnd[i]
				if ws.status[j] == nbLower {
					ws.xval[j] = ws.lo[j]
				}
			} else {
				j = ^cj
				ws.hi[j] = ws.shiftBnd[i]
				if ws.status[j] == nbUpper {
					ws.xval[j] = ws.hi[j]
				}
			}
		}
		ws.needRefactor = true // nonbasic values moved; basic values are stale
		iters, err = ws.dual(maxIter)
		ws.stats.Phase2Iters += iters
		if err != nil {
			return p.SolveWith(ws)
		}
	}
	if !ws.DeferPolish {
		iters, err = ws.polish(p, maxIter)
		ws.stats.Phase2Iters += iters
		if err != nil {
			return p.SolveWith(ws)
		}
	}
	if err := ws.factorize(); err != nil {
		return p.SolveWith(ws)
	}
	ws.solvedVars, ws.solvedRows = p.nvars, len(p.cons)
	return ws.extract(p), nil
}
