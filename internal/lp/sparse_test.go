package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildBoundedLP constructs a random LP exercising the full bound
// machinery: positive lower bounds, finite upper bounds, fixed variables,
// plus LE/GE/EQ rows. The box keeps it feasible and bounded.
func buildBoundedLP(p *Problem, r *rand.Rand, n, mrows int) {
	for i := 0; i < n; i++ {
		v := p.AddVar("")
		p.SetObj(v, r.NormFloat64())
		switch r.Intn(4) {
		case 0: // default [0, +Inf) tightened by an explicit row below
			p.AddConstraint(LE, 1+9*r.Float64(), Term{v, 1})
		case 1: // positive lower bound
			lo := r.Float64()
			p.SetBounds(v, lo, lo+1+9*r.Float64())
		case 2: // box around zero is not expressible densely; stay >= 0
			p.SetBounds(v, 0, 1+9*r.Float64())
		case 3: // fixed variable
			x := r.Float64()
			p.SetBounds(v, x, x)
		}
	}
	for k := 0; k < mrows; k++ {
		terms := make([]Term, 0, n)
		for v := 0; v < n; v++ {
			if r.Float64() < 0.6 {
				terms = append(terms, Term{v, r.NormFloat64()})
			}
		}
		if len(terms) == 0 {
			continue
		}
		// Keep the all-lower-bounds point feasible: rhs above the row's
		// value there.
		val := 0.0
		for _, t := range terms {
			lo, _ := p.Bounds(t.Var)
			val += t.Coef * lo
		}
		p.AddConstraint(LE, val+r.Float64()*5, terms...)
	}
	// A few GE/EQ rows exercise the artificial machinery.
	lo0, _ := p.Bounds(0)
	p.AddConstraint(GE, lo0, Term{0, 1})
	if n > 1 {
		lo1, hi1 := p.Bounds(1)
		mid := lo1
		if !math.IsInf(hi1, 1) {
			mid = (lo1 + hi1) / 2
		}
		p.AddConstraint(EQ, mid, Term{1, 1})
	}
}

// TestSparseMatchesDenseRandom is the core differential test: on random
// bounded LPs the sparse revised simplex and the dense tableau reference
// must agree on feasibility and on the optimal objective. Optimal
// solutions need not be unique, so X is checked for feasibility rather
// than equality.
func TestSparseMatchesDenseRandom(t *testing.T) {
	ws := NewWorkspace()
	dws := NewDenseWorkspace()
	agreed := 0
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := NewProblem()
		buildBoundedLP(p, r, 2+r.Intn(8), 1+r.Intn(8))
		sp, errS := p.SolveWith(ws)
		dn, errD := p.SolveDenseWith(dws)
		if (errS == nil) != (errD == nil) {
			t.Fatalf("seed %d: sparse err=%v dense err=%v", seed, errS, errD)
		}
		if errS != nil {
			if !errors.Is(errS, ErrInfeasible) && !errors.Is(errD, ErrInfeasible) {
				t.Fatalf("seed %d: unexpected error pair: %v / %v", seed, errS, errD)
			}
			continue
		}
		tol := 1e-6 * (1 + math.Abs(dn.Obj))
		if math.Abs(sp.Obj-dn.Obj) > tol {
			t.Errorf("seed %d: objective sparse %v != dense %v", seed, sp.Obj, dn.Obj)
		}
		checkFeasible(t, p, sp.X, seed)
		agreed++
	}
	if agreed < 200 {
		t.Fatalf("only %d/300 seeds produced solvable instances; generator broken", agreed)
	}
}

// checkFeasible verifies x against every constraint and bound of p.
func checkFeasible(t *testing.T, p *Problem, x []float64, seed int64) {
	t.Helper()
	const eps = 1e-6
	for v := 0; v < p.NumVars(); v++ {
		lo, hi := p.Bounds(v)
		if x[v] < lo-eps*(1+math.Abs(lo)) || x[v] > hi+eps*(1+math.Abs(hi)) {
			t.Errorf("seed %d: x[%d]=%v outside [%v, %v]", seed, v, x[v], lo, hi)
		}
	}
	for ci, c := range p.cons {
		lhs := 0.0
		for _, tm := range c.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		scale := eps * (1 + math.Abs(c.rhs))
		switch c.sense {
		case LE:
			if lhs > c.rhs+scale {
				t.Errorf("seed %d: row %d: %v <= %v violated", seed, ci, lhs, c.rhs)
			}
		case GE:
			if lhs < c.rhs-scale {
				t.Errorf("seed %d: row %d: %v >= %v violated", seed, ci, lhs, c.rhs)
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > scale {
				t.Errorf("seed %d: row %d: %v = %v violated", seed, ci, lhs, c.rhs)
			}
		}
	}
}

// TestBoundsBasics pins the bound semantics on hand-checkable programs.
func TestBoundsBasics(t *testing.T) {
	// min x with x in [2, 5]: optimum 2, no constraint rows at all.
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObj(x, 1)
	p.SetBounds(x, 2, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[x]-2) > 1e-9 || math.Abs(sol.Obj-2) > 1e-9 {
		t.Errorf("min over box: got x=%v obj=%v, want 2", sol.X[x], sol.Obj)
	}

	// max x (min -x) with x in [2, 5]: bound flip to the upper bound.
	p2 := NewProblem()
	y := p2.AddVar("y")
	p2.SetObj(y, -1)
	p2.SetBounds(y, 2, 5)
	sol, err = p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[y]-5) > 1e-9 {
		t.Errorf("max over box: got %v, want 5", sol.X[y])
	}

	// Fixed variable propagates through a row: x=3 fixed, min y, y >= x.
	p3 := NewProblem()
	a := p3.AddVar("")
	b := p3.AddVar("")
	p3.SetBounds(a, 3, 3)
	p3.SetObj(b, 1)
	p3.AddConstraint(GE, 0, Term{b, 1}, Term{a, -1})
	sol, err = p3.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[b]-3) > 1e-8 {
		t.Errorf("fixed-variable row: got y=%v, want 3", sol.X[b])
	}

	// Bounds above the feasible row region: infeasible.
	p4 := NewProblem()
	z := p4.AddVar("")
	p4.SetBounds(z, 4, 10)
	p4.AddConstraint(LE, 2, Term{z, 1})
	if _, err := p4.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}

	// Unbounded below the objective despite a lower bound elsewhere.
	p5 := NewProblem()
	u := p5.AddVar("")
	p5.SetObj(u, -1) // maximise with hi = +Inf
	p5.SetBounds(u, 1, math.Inf(1))
	if _, err := p5.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("want ErrUnbounded, got %v", err)
	}
}

// TestReSolveWarmMatchesCold appends rows after an initial solve and
// checks the dual warm restart lands on the same optimum as a cold solve
// of the extended problem.
func TestReSolveWarmMatchesCold(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		n := 3 + r.Intn(6)
		p := NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVar("")
			p.SetObj(vars[i], 1+r.Float64()) // positive costs keep it bounded
			p.SetBounds(vars[i], 0, 10)
		}
		for k := 0; k < n; k++ {
			p.AddConstraint(GE, 1+4*r.Float64(), Term{vars[r.Intn(n)], 1}, Term{vars[r.Intn(n)], 1})
		}
		ws := NewWorkspace()
		if _, err := p.SolveWith(ws); err != nil {
			t.Fatalf("seed %d: initial solve: %v", seed, err)
		}
		// Append violated rows (they tighten the optimum).
		extra := 1 + r.Intn(4)
		for k := 0; k < extra; k++ {
			p.AddConstraint(GE, 3+5*r.Float64(), Term{vars[r.Intn(n)], 1}, Term{vars[r.Intn(n)], 1})
		}
		warm, errW := p.ReSolveWith(ws)
		cold, errC := p.Solve()
		if (errW == nil) != (errC == nil) {
			t.Fatalf("seed %d: warm err=%v cold err=%v", seed, errW, errC)
		}
		if errW != nil {
			continue
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Errorf("seed %d: warm obj %v != cold obj %v", seed, warm.Obj, cold.Obj)
		}
	}
}

// TestForcedRefactorization solves random LPs with the eta file capped at
// one update — a refactorization after every pivot — and checks the
// results match the default configuration, exercising the LU rebuild and
// basic-value recomputation paths densely.
func TestForcedRefactorization(t *testing.T) {
	tight := NewWorkspace()
	tight.RefactorEvery = 1
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		p := NewProblem()
		buildBoundedLP(p, r, 2+r.Intn(7), 1+r.Intn(6))
		a, errA := p.Solve()
		b, errB := p.SolveWith(tight)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: default err=%v refactor-every-pivot err=%v", seed, errA, errB)
		}
		if errA != nil {
			continue
		}
		if math.Abs(a.Obj-b.Obj) > 1e-6*(1+math.Abs(a.Obj)) {
			t.Errorf("seed %d: obj %v != %v under forced refactorization", seed, a.Obj, b.Obj)
		}
		if b.Stats.Factorizations < b.Stats.Phase1Iters+b.Stats.Phase2Iters {
			t.Errorf("seed %d: expected a factorization per pivot, got %d for %d pivots",
				seed, b.Stats.Factorizations, b.Stats.Phase1Iters+b.Stats.Phase2Iters)
		}
	}
}

// TestDeferPolishMatchesDirect checks the deferred-perturbation protocol:
// DeferPolish solves followed by PolishWith must land on the exact
// optimum a direct solve produces.
func TestDeferPolishMatchesDirect(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		p := NewProblem()
		buildBoundedLP(p, r, 2+r.Intn(7), 1+r.Intn(6))
		direct, errD := p.Solve()
		ws := NewWorkspace()
		ws.DeferPolish = true
		_, errS := p.SolveWith(ws)
		if (errS == nil) != (errD == nil) {
			t.Fatalf("seed %d: deferred err=%v direct err=%v", seed, errS, errD)
		}
		if errD != nil {
			continue
		}
		polished, err := p.PolishWith(ws)
		if err != nil {
			t.Fatalf("seed %d: polish: %v", seed, err)
		}
		if math.Abs(polished.Obj-direct.Obj) > 1e-7*(1+math.Abs(direct.Obj)) {
			t.Errorf("seed %d: polished obj %v != direct %v", seed, polished.Obj, direct.Obj)
		}
	}
}

// TestDenseRejectsNegativeLowerBound documents the reference solver's
// limitation that motivates keeping it a reference only.
func TestDenseRejectsNegativeLowerBound(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("")
	p.SetBounds(v, -1, 1)
	if _, err := p.SolveDense(); !errors.Is(err, ErrDenseBounds) {
		t.Errorf("want ErrDenseBounds, got %v", err)
	}
	// The sparse solver handles it.
	p.SetObj(v, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[v]+1) > 1e-9 {
		t.Errorf("negative lower bound: got %v, want -1", sol.X[v])
	}
}
