package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job states, in lifecycle order. A job moves queued -> running ->
// done|failed and never backwards; terminal jobs stay queryable until
// evicted by the store's FIFO bound.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the externally visible state of an async solve, returned by
// GET /v1/jobs/{id} and GET /v2/jobs/{id}. Result is set exactly when
// State == JobDone (a *SolveResponse for v1 submissions, a
// *SolveResponseV2 for v2 ones — the store is shared); Error exactly when
// State == JobFailed.
type JobStatus struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	Result   any        `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// errJobsBusy rejects submissions past the in-flight bound (HTTP 503).
var errJobsBusy = errors.New("server: too many jobs in flight, retry later")

// jobStore tracks async jobs in memory, bounded on both ends by maxJobs:
// at most maxJobs jobs may be in flight (queued or running — submissions
// beyond that fail with errJobsBusy, each would otherwise pin a goroutine
// forever), and at most maxJobs terminal jobs stay queryable (evicted
// oldest first). A long-running daemon's memory is therefore bounded no
// matter the submission rate.
type jobStore struct {
	mu       sync.Mutex
	jobs     map[string]*JobStatus
	finished []string // terminal job IDs in completion order
	active   int      // queued + running
	maxJobs  int
}

func newJobStore(maxJobs int) *jobStore {
	if maxJobs < 1 {
		maxJobs = 1
	}
	return &jobStore{jobs: make(map[string]*JobStatus), maxJobs: maxJobs}
}

// create registers a new queued job and returns its id, or errJobsBusy
// when the in-flight bound is reached.
func (js *jobStore) create(now time.Time) (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("server: generating job id: %w", err)
	}
	id := hex.EncodeToString(raw[:])
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.active >= js.maxJobs {
		return "", errJobsBusy
	}
	js.active++
	js.jobs[id] = &JobStatus{ID: id, State: JobQueued, Created: now}
	return id, nil
}

// setRunning marks the job as picked up by a worker.
func (js *jobStore) setRunning(id string) {
	js.mu.Lock()
	if j, ok := js.jobs[id]; ok {
		j.State = JobRunning
	}
	js.mu.Unlock()
}

// finish records the terminal outcome and evicts the oldest terminal jobs
// beyond the store's bound. res must be non-nil when err is nil (it is
// only assigned on success, so a failed job's result stays omitted).
func (js *jobStore) finish(id string, res any, err error, now time.Time) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return
	}
	js.active--
	j.Finished = &now
	if err != nil {
		j.State, j.Error = JobFailed, err.Error()
	} else {
		j.State, j.Result = JobDone, res
	}
	js.finished = append(js.finished, id)
	for len(js.finished) > js.maxJobs {
		delete(js.jobs, js.finished[0])
		js.finished = js.finished[1:]
	}
}

// get returns a copy of the job's status, so callers can serialize it
// without holding the store's lock against state transitions.
func (js *jobStore) get(id string) (JobStatus, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return *j, true
}
