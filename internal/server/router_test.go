package server

import (
	"testing"
	"time"

	"malsched"
)

// routeInstance builds a shape-only instance; the router looks at counts,
// not processing times, so one-processor tasks suffice.
func routeInstance(n, m int) *malsched.Instance {
	tasks := make([]malsched.Task, n)
	for i := range tasks {
		tasks[i] = malsched.PowerLawTask("t", 1, 0.5, m)
	}
	return &malsched.Instance{M: m, Tasks: tasks}
}

func TestRoutePinnedWins(t *testing.T) {
	algo := malsched.AlgoFullAllotment
	dec := route(routeInstance(100000, 64), &algo, time.Microsecond)
	if dec.algo != malsched.AlgoFullAllotment || dec.routed {
		t.Errorf("pinned request was rerouted: %+v", dec)
	}
}

func TestRouteBySize(t *testing.T) {
	cases := []struct {
		n, m int
		want malsched.Algorithm
	}{
		{10, 8, malsched.AlgoPaper},
		// m=8 clears the estimated min-cut window well before the
		// budget matters: 600 ns * n^2 admits exactly n = 10000.
		{10000, 8, malsched.AlgoPaper},
		{10001, 8, malsched.AlgoGreedyCP},
		// m=2 never leaves the simplex regime (no segment mass to
		// speak of), so the same budget cuts off near n = 4800.
		{4800, 2, malsched.AlgoPaper},
		{5000, 2, malsched.AlgoGreedyCP},
	}
	for _, c := range cases {
		dec := route(routeInstance(c.n, c.m), nil, 0)
		if dec.algo != c.want || !dec.routed {
			t.Errorf("n=%d: routed to %v (routed=%v), want %v", c.n, dec.algo, dec.routed, c.want)
		}
		if dec.reason == "" {
			t.Errorf("n=%d: empty route reason", c.n)
		}
	}
}

func TestRouteByDeadline(t *testing.T) {
	in := routeInstance(100, 16) // paper estimate 2600ns * 100^2 = 26ms
	cases := []struct {
		deadline time.Duration
		want     malsched.Algorithm
	}{
		{time.Second, malsched.AlgoPaper},
		{time.Millisecond, malsched.AlgoGreedyCP},
	}
	for _, c := range cases {
		dec := route(in, nil, c.deadline)
		if dec.algo != c.want {
			t.Errorf("deadline %v: routed to %v, want %v", c.deadline, dec.algo, c.want)
		}
	}
}
