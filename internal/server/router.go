package server

import (
	"fmt"
	"time"

	"malsched"
)

// Adaptive solver routing: requests that do not pin an algorithm are routed
// by instance size and the request's latency deadline. The paper algorithm
// gives the best schedules (and the only certified ratio) but its phase-1
// LP grows roughly quadratically in the task count; greedy critical-path is
// near-linear and is the fallback when a deadline or the size budget leaves
// no room for an LP.
//
// LTW is deliberately NOT an auto-routing target: it solves the same
// phase-1 LP as the paper algorithm (internal/baseline.LTWWith differs only
// in rounding and allotment cap), so it costs the same and certifies a
// worse ratio — measured on a layered n=96/m=16 instance: paper 18.2 ms,
// LTW 20.6 ms, greedy 4.1 ms (E12). It stays reachable by pinning
// "algo": "ltw" (the comparison baseline of the paper's Table 3).
//
// The cost model is a two-regime fit of the committed benchmarks
// (EXPERIMENTS.md E13/E16, Xeon 2.10GHz). In the simplex regimes (small
// segment mass: the lazy and segment formulations) BenchmarkPhase1LP
// runs at ~0.5 µs·n² around n=200 up to ~2.7 µs·n² at n=2000, and the
// coefficient is pinned near the top of that band so deadline estimates
// stay conservative at the scales where overshooting hurts most. Past
// the internal router's min-cut window (frontier segment mass >= 6000,
// allot's mincutFormulationMin) phase 1 is the parametric sweep
// instead, measured at ~0.28 µs·n² (n=2000/m=64) to ~0.46 µs·n²
// (n=10000/m=64) — the large-n coefficient sits above that band too.
// Deadlines only reroute when the estimate overshoots them outright.
const (
	// paperNSPerN2 estimates a simplex-regime paper solve at
	// paperNSPerN2 * n^2 ns.
	paperNSPerN2 = 2600
	// mincutNSPerN2 is the same estimate once the instance lands in the
	// min-cut window.
	mincutNSPerN2 = 600
	// mincutMassEst mirrors allot's mincutFormulationMin: beyond this
	// estimated frontier segment mass phase 1 runs the parametric sweep.
	// The router cannot afford to build frontiers just to route, so the
	// mass is estimated at ~2/3 segments per task per machine less one —
	// the density measured on the mixed-family benchmark instances
	// (~41 of 63 at m=64).
	mincutMassEst = 6000
	// autoPaperBudget caps the paper algorithm's estimate for
	// deadline-free auto requests — the most a serving worker should
	// sink into one unconstrained request. With phase 1 on the
	// parametric sweep this admits n = 10000 at the benchmark shapes
	// (estimate 60 s, measured 46 s — E16); small-m instances, which
	// never leave the simplex regime, hit the same wall near n = 4800.
	autoPaperBudget = 60 * time.Second
)

// paperEstimate predicts a paper solve's latency from the shape the
// router can see without building anything: task count and machine
// count.
func paperEstimate(n, m int) time.Duration {
	coef := int64(paperNSPerN2)
	if segs := 2 * (m - 1) / 3; segs >= 1 && n*segs >= mincutMassEst {
		coef = mincutNSPerN2
	}
	return time.Duration(coef * int64(n) * int64(n))
}

// routeDecision records what the router chose and why; reason strings are
// stable enough to assert on and informative enough to return to clients.
type routeDecision struct {
	algo   malsched.Algorithm
	routed bool // false when the request pinned the algorithm
	reason string
	// downgraded marks a deadline-forced drop from the paper algorithm to
	// greedy: the request wanted the best answer but could not wait for
	// it. This is the v2 API's refine-behind trigger — answer greedy now,
	// queue a paper solve into spare pool capacity for next time.
	downgraded bool
}

// route picks the algorithm for one request. pinned != nil forces that
// algorithm; deadline <= 0 means unconstrained.
func route(in *malsched.Instance, pinned *malsched.Algorithm, deadline time.Duration) routeDecision {
	if pinned != nil {
		return routeDecision{algo: *pinned, reason: "pinned by request"}
	}
	n := len(in.Tasks)
	paperEst := paperEstimate(n, in.M)

	if deadline > 0 {
		if paperEst <= deadline {
			return routeDecision{algo: malsched.AlgoPaper, routed: true,
				reason: fmt.Sprintf("paper estimate %v within deadline %v", paperEst, deadline)}
		}
		return routeDecision{algo: malsched.AlgoGreedyCP, routed: true, downgraded: true,
			reason: fmt.Sprintf("paper estimate %v over deadline %v", paperEst, deadline)}
	}
	if paperEst <= autoPaperBudget {
		return routeDecision{algo: malsched.AlgoPaper, routed: true,
			reason: fmt.Sprintf("paper estimate %v within the unconstrained budget %v", paperEst, autoPaperBudget)}
	}
	return routeDecision{algo: malsched.AlgoGreedyCP, routed: true,
		reason: fmt.Sprintf("paper estimate %v over the unconstrained budget %v", paperEst, autoPaperBudget)}
}
