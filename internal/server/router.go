package server

import (
	"fmt"
	"time"

	"malsched"
)

// Adaptive solver routing: requests that do not pin an algorithm are routed
// by instance size and the request's latency deadline. The paper algorithm
// gives the best schedules (and the only certified ratio) but its phase-1
// LP grows roughly quadratically in the task count; greedy critical-path is
// near-linear and is the fallback when a deadline or the size budget leaves
// no room for an LP.
//
// LTW is deliberately NOT an auto-routing target: it solves the same
// phase-1 LP as the paper algorithm (internal/baseline.LTWWith differs only
// in rounding and allotment cap), so it costs the same and certifies a
// worse ratio — measured on a layered n=96/m=16 instance: paper 18.2 ms,
// LTW 20.6 ms, greedy 4.1 ms (E12). It stays reachable by pinning
// "algo": "ltw" (the comparison baseline of the paper's Table 3).
//
// The cost model is a one-coefficient fit of the committed benchmarks
// (EXPERIMENTS.md E13, Xeon 2.10GHz): after the devex/preprocessing/
// segment-formulation push, BenchmarkPhase1LP runs at ~0.5 µs·n² around
// n=200, ~2 µs·n² at n=500 and ~2.7 µs·n² at n=2000; the coefficient is
// pinned near the top of that band so deadline estimates stay
// conservative at the scales where overshooting hurts most. Deadlines
// only reroute when the estimate overshoots them outright.
const (
	// paperNSPerN2 estimates a paper solve at paperNSPerN2 * n^2 ns.
	paperNSPerN2 = 2600
	// autoPaperMaxTasks caps the paper algorithm for deadline-free auto
	// requests: n = 1500 estimates to ~6 s, the most a serving worker
	// should sink into one unconstrained request.
	autoPaperMaxTasks = 1500
)

// routeDecision records what the router chose and why; reason strings are
// stable enough to assert on and informative enough to return to clients.
type routeDecision struct {
	algo   malsched.Algorithm
	routed bool // false when the request pinned the algorithm
	reason string
	// downgraded marks a deadline-forced drop from the paper algorithm to
	// greedy: the request wanted the best answer but could not wait for
	// it. This is the v2 API's refine-behind trigger — answer greedy now,
	// queue a paper solve into spare pool capacity for next time.
	downgraded bool
}

// route picks the algorithm for one request. pinned != nil forces that
// algorithm; deadline <= 0 means unconstrained.
func route(in *malsched.Instance, pinned *malsched.Algorithm, deadline time.Duration) routeDecision {
	if pinned != nil {
		return routeDecision{algo: *pinned, reason: "pinned by request"}
	}
	n := len(in.Tasks)
	paperEst := time.Duration(paperNSPerN2 * int64(n) * int64(n))

	if deadline > 0 {
		if paperEst <= deadline {
			return routeDecision{algo: malsched.AlgoPaper, routed: true,
				reason: fmt.Sprintf("paper estimate %v within deadline %v", paperEst, deadline)}
		}
		return routeDecision{algo: malsched.AlgoGreedyCP, routed: true, downgraded: true,
			reason: fmt.Sprintf("paper estimate %v over deadline %v", paperEst, deadline)}
	}
	if n <= autoPaperMaxTasks {
		return routeDecision{algo: malsched.AlgoPaper, routed: true,
			reason: fmt.Sprintf("n=%d within paper budget (<=%d tasks)", n, autoPaperMaxTasks)}
	}
	return routeDecision{algo: malsched.AlgoGreedyCP, routed: true,
		reason: fmt.Sprintf("n=%d over the LP budget (<=%d tasks)", n, autoPaperMaxTasks)}
}
