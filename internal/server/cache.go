package server

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"malsched"
	"malsched/internal/cancelflag"
)

// FaultCacheShard is the cache fault-injection hook (internal/faultinject);
// nil in production. When it fires, do() fails open to a direct compute and
// get() reports a miss — a broken shard degrades to extra solves, never to
// wrong or missing answers.
var FaultCacheShard func() bool

// solution is what the cache stores per canonical request: the solver
// result together with how it was produced. Entries are immutable once
// inserted — handlers read fields but never write, so one entry is safely
// shared by any number of concurrent responses.
type solution struct {
	res *malsched.Result
	// algo is the algorithm that produced res (already routed).
	algo malsched.Algorithm
	// tier is the quality tier algo belongs to (tierOf(algo)); the cache
	// never replaces an entry with a lower- or equal-tier one.
	tier tier
	// inst is the solved instance, kept on quality entries so a later
	// delta request can materialise "base + edits" from the fingerprint
	// alone. nil on exact-key entries (the instance is in the request).
	inst *malsched.Instance
	// state is the warm-start handle of a paper solve run with capture
	// (nil otherwise); the delta path transplants it onto edited
	// instances with the same structure fingerprint.
	state *malsched.SolverState
	// coldNS is the wall time of the originating solve, reported alongside
	// cache hits so clients can see what the hit saved them.
	coldNS int64
}

// cache is a content-addressed solution cache: a sharded LRU with
// per-key singleflight. Keys are canonical request identities
// (Instance.Fingerprint + algorithm + parameter overrides, see
// solutionKey), so any two byte-different submissions of the same problem
// meet in the same entry. Sharding keeps lock hold times short under the
// hundreds of concurrent requests the serving layer is built for;
// singleflight collapses a thundering herd of identical submissions into
// one solve whose result every waiter shares.
type cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int                      // max resident entries in this shard
	order    *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element whose Value is *cacheEntry
	inflight map[string]*flight
}

type cacheEntry struct {
	key string
	sol *solution
}

// flight is one in-progress computation of a key. Waiters block on done;
// val/err are written exactly once before done is closed.
type flight struct {
	done chan struct{}
	sol  *solution
	err  error
}

// newCache builds a cache of at most `entries` resident solutions spread
// over `shards` shards (both floored at 1; callers disable caching by not
// constructing one). Capacity is split evenly; the remainder goes to the
// first shards so the total is exact.
func newCache(entries, shards int) *cache {
	if shards < 1 {
		shards = 1
	}
	if entries < 1 {
		entries = 1
	}
	if shards > entries {
		shards = entries
	}
	c := &cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		cap := entries / shards
		if i < entries%shards {
			cap++
		}
		c.shards[i] = cacheShard{
			capacity: cap,
			order:    list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*flight),
		}
	}
	return c
}

// shardFor maps a key to its shard with an FNV-1a hash over the key bytes.
func (c *cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// outcome classifies how do() satisfied a lookup, for metrics and the
// response's cache field.
type outcome int

const (
	outcomeHit    outcome = iota // resident entry
	outcomeMiss                  // this call ran the solve
	outcomeShared                // waited on another call's solve
)

func (o outcome) String() string {
	switch o {
	case outcomeHit:
		return "hit"
	case outcomeShared:
		return "shared"
	}
	return "miss"
}

// do returns the solution for key, computing it with fn if absent.
// Concurrent calls for the same key run fn once and share its result;
// errors are returned to every waiter of that flight but are not cached,
// so a later call retries. A nil cache always computes (bypass).
//
// ctx is the *waiter's* context: a waiter whose flight leader was cancelled
// inherits the leader's context error, which says nothing about this
// request — so a live waiter retries the lookup (becoming the new leader,
// or finding the entry another retry cached) instead of failing a healthy
// request with someone else's cancellation.
func (c *cache) do(ctx context.Context, key string, fn func() (*solution, error)) (*solution, outcome, error) {
	if c == nil || (FaultCacheShard != nil && FaultCacheShard()) {
		sol, err := fn()
		return sol, outcomeMiss, err
	}
	s := c.shardFor(key)

	for {
		s.mu.Lock()
		if el, ok := s.items[key]; ok {
			s.order.MoveToFront(el)
			sol := el.Value.(*cacheEntry).sol
			s.mu.Unlock()
			return sol, outcomeHit, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-f.done
			if isCancellation(f.err) && ctx != nil && ctx.Err() == nil {
				continue
			}
			return f.sol, outcomeShared, f.err
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.mu.Unlock()

		f.sol, f.err = fn()

		s.mu.Lock()
		delete(s.inflight, key)
		if f.err == nil {
			s.insertLocked(key, f.sol)
		}
		s.mu.Unlock()
		close(f.done)
		return f.sol, outcomeMiss, f.err
	}
}

// isCancellation reports whether err came from a cancelled or expired
// context (including the solver's internal cancellation sentinel).
func isCancellation(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, cancelflag.ErrCanceled))
}

// insertLocked adds key -> sol and evicts the shard's least recently used
// entries down to capacity, tier-monotonically: an entry is only replaced
// by a strictly higher-tier solution. Racing same-tier inserts keep the
// first writer (the answers are interchangeable, and first-writer-wins
// keeps what repeat readers see stable); a refinement overwrites a greedy
// entry; a late greedy solve can never clobber a paper answer. Caller
// holds s.mu.
func (s *cacheShard) insertLocked(key string, sol *solution) {
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		if e := el.Value.(*cacheEntry); sol.tier > e.sol.tier {
			e.sol = sol
		}
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, sol: sol})
	for s.order.Len() > s.capacity {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.items, last.Value.(*cacheEntry).key)
	}
}

// get returns the resident entry for key (bumping its recency) without
// computing anything. In-flight computations are not consulted.
func (c *cache) get(key string) (*solution, bool) {
	if c == nil || (FaultCacheShard != nil && FaultCacheShard()) {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sol, true
}

// putIfBetter inserts sol under key tier-monotonically (see insertLocked)
// and reports whether sol is now the resident entry — false exactly when
// an entry of equal or higher tier was already there, or the cache is
// disabled.
func (c *cache) putIfBetter(key string, sol *solution) bool {
	if c == nil {
		return false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, sol)
	return s.items[key].Value.(*cacheEntry).sol == sol
}

// len reports the total number of resident entries (for tests and /metrics).
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
