package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"malsched"
)

// metricsSchemaVersion names the /metrics JSON shape. Version 2 added the
// "schema_version" field itself and the per-formulation "formulations"
// section; every flat counter key of version 1 is still published at the
// top level as a deprecated alias, so version-1 scrapers keep working.
const metricsSchemaVersion = 2

// formulationStats aggregates phase-1 LP effort per formulation. Cuts and
// Rounds carry the formulation's own meaning (see malsched.Result): lazy
// cuts and separation rounds on the simplex routes, parameter breakpoints
// and flow augmentations on the min-cut sweep.
type formulationStats struct {
	Solves   int64 `json:"solves"`
	Cuts     int64 `json:"cuts"`
	Rounds   int64 `json:"rounds"`
	WarmHits int64 `json:"warm_hits"`
	Degrades int64 `json:"degrades"`
}

// formulationMetrics is the mutable server-side aggregate behind the
// /metrics "formulations" section. One mutex is plenty: it is touched once
// per completed solve, never per pivot.
type formulationMetrics struct {
	mu    sync.Mutex
	stats map[string]*formulationStats
}

func (fm *formulationMetrics) bucket(name string) *formulationStats {
	if fm.stats == nil {
		fm.stats = make(map[string]*formulationStats)
	}
	st, ok := fm.stats[name]
	if !ok {
		st = &formulationStats{}
		fm.stats[name] = st
	}
	return st
}

// recordFormulation accounts one finished solve under the formulation that
// actually ran (baselines, which report no formulation, are not LP solves
// and stay out of the section).
func (s *Server) recordFormulation(res *malsched.Result, warm bool) {
	if res == nil || res.Formulation == "" {
		return
	}
	s.forms.mu.Lock()
	defer s.forms.mu.Unlock()
	st := s.forms.bucket(string(res.Formulation))
	st.Solves++
	st.Cuts += int64(res.LPCuts)
	st.Rounds += int64(res.LPRounds)
	if warm {
		st.WarmHits++
	}
}

// recordFormulationDegrade counts a degradation-ladder trigger against the
// request's formulation pin ("auto" when the request let the router pick —
// the failing solve's own formulation is gone with its error).
func (s *Server) recordFormulationDegrade(pin string) {
	if pin == "" {
		pin = "auto"
	}
	s.forms.mu.Lock()
	defer s.forms.mu.Unlock()
	s.forms.bucket(pin).Degrades++
}

// snapshot copies the section for serialisation.
func (fm *formulationMetrics) snapshot() map[string]formulationStats {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := make(map[string]formulationStats, len(fm.stats))
	for k, v := range fm.stats {
		out[k] = *v
	}
	return out
}

// handleMetrics serves the versioned /metrics document: schema_version,
// the per-formulation section, and every flat expvar counter of the
// version-1 shape as deprecated top-level aliases.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.cacheEntries.Set(int64(s.cache.len()))
	var b []byte
	b = append(b, fmt.Sprintf(`{"schema_version": %d`, metricsSchemaVersion)...)
	if fj, err := json.Marshal(s.forms.snapshot()); err == nil {
		b = append(b, `, "formulations": `...)
		b = append(b, fj...)
	}
	// expvar.Map.Do iterates in sorted key order and every value renders
	// as valid JSON (Int, Map, ...), so the aliases append verbatim.
	s.stats.Do(func(kv expvar.KeyValue) {
		b = append(b, `, `...)
		b = strconv.AppendQuote(b, kv.Key)
		b = append(b, `: `...)
		b = append(b, kv.Value.String()...)
	})
	b = append(b, "}\n"...)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
