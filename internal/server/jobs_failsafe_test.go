package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// A submission past the in-flight bound is a 503 with a Retry-After hint,
// and the slot frees up once the running job finishes.
func TestJobSubmitBusy503RetryAfter(t *testing.T) {
	withSlowSolve(t, 300*time.Millisecond)
	_, ts := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	in := loadTestdata(t, "chain_n10_m4.json")

	resp, data := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in, NoCache: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	var acc JobAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}

	resp, data = postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in, NoCache: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("jobs-busy 503 without Retry-After header")
	}

	// Honouring the hint works: once the running job finishes, the next
	// submission is accepted again.
	waitForJob(t, ts.URL+acc.URL)
	resp, data = postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after drain: status %d: %s", resp.StatusCode, data)
	}
}

// A concurrent submission storm against a small in-flight bound: every
// response is either 202 or 503 (never a 500, never a hang), and every
// accepted job reaches a terminal state — observed as done/failed, or as a
// 404 after being finished and evicted by the FIFO bound. No accepted job
// may be silently lost in a non-terminal state.
func TestJobStoreConcurrentSubmitOverflow(t *testing.T) {
	withSlowSolve(t, 20*time.Millisecond) // keep jobs in flight long enough to collide
	_, ts := newTestServer(t, Config{Workers: 4, MaxJobs: 4})
	in := loadTestdata(t, "chain_n10_m4.json")

	const clients, perClient = 12, 8
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, data := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in})
				switch resp.StatusCode {
				case http.StatusAccepted:
					var acc JobAccepted
					if err := json.Unmarshal(data, &acc); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					accepted = append(accepted, acc.URL)
					mu.Unlock()
				case http.StatusServiceUnavailable:
					mu.Lock()
					rejected++
					mu.Unlock()
					if ra := resp.Header.Get("Retry-After"); ra == "" {
						t.Error("storm 503 without Retry-After")
						return
					}
				default:
					t.Errorf("storm submit: status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(accepted) == 0 {
		t.Fatal("storm accepted nothing")
	}
	if rejected == 0 {
		t.Error("storm never overflowed the bound; the test exercised nothing")
	}
	t.Logf("storm: %d accepted, %d rejected", len(accepted), rejected)

	// Every accepted job must reach a terminal state within the deadline.
	deadline := time.Now().Add(20 * time.Second)
	for _, url := range accepted {
		for {
			resp, err := http.Get(ts.URL + url)
			if err != nil {
				t.Fatal(err)
			}
			var st JobStatus
			jsonErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				break // finished, then evicted by the FIFO bound: terminal
			}
			if resp.StatusCode != http.StatusOK || jsonErr != nil {
				t.Fatalf("poll %s: status %d, err %v", url, resp.StatusCode, jsonErr)
			}
			if st.State == JobDone || st.State == JobFailed {
				if st.State == JobFailed {
					t.Errorf("job %s failed on a valid instance: %s", st.ID, st.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in state %q past the deadline", url, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Finished-job eviction follows completion order, not creation order: with
// out-of-order finishes, the job that finished first is evicted first.
func TestJobStoreEvictionFollowsFinishOrder(t *testing.T) {
	js := newJobStore(2)
	now := time.Now()
	mk := func() string {
		t.Helper()
		id, err := js.create(now)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// Jobs a and b, with b (created later) finishing first; c created
	// once a slot frees. Finish order: b, a, c.
	a, b := mk(), mk()
	js.finish(b, &SolveResponse{}, nil, now)
	c := mk()
	js.finish(a, &SolveResponse{}, nil, now)
	js.finish(c, &SolveResponse{}, nil, now)

	// Bound 2, three terminal jobs: b finished first, so b is evicted —
	// even though a was created before it.
	if _, ok := js.get(b); ok {
		t.Error("first-finished job survived eviction (eviction must follow finish order)")
	}
	for _, id := range []string{a, c} {
		if _, ok := js.get(id); !ok {
			t.Errorf("job %s evicted although it finished later", id)
		}
	}
}
