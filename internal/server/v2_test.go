package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"malsched"
)

func decodeSolveV2(t *testing.T, data []byte) *SolveResponseV2 {
	t.Helper()
	var out SolveResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding v2 solve response %s: %v", data, err)
	}
	return &out
}

// TestV1ContractLock pins the /v1/solve wire format now that the handler is
// a shim over the v2 core: the response must carry exactly the pre-v2 key
// set — in particular none of the v2 additions (fingerprint, tier, delta,
// refine) may leak — and the deterministic fields must keep their values.
// Timing fields are present but not value-checked.
func TestV1ContractLock(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	cases := []struct {
		name     string
		req      SolveRequest
		wantKeys []string
		want     map[string]any // deterministic value checks
	}{
		{
			name:     "pinned paper",
			req:      SolveRequest{Instance: in, Algo: "paper"},
			wantKeys: []string{"makespan", "lower_bound", "guarantee", "proven_ratio", "alloc", "algo", "routed", "route_reason", "cache", "elapsed_ms", "cold_ms"},
			want:     map[string]any{"algo": "paper", "routed": false, "cache": "miss"},
		},
		{
			name:     "auto routed",
			req:      SolveRequest{Instance: in},
			wantKeys: []string{"makespan", "lower_bound", "guarantee", "proven_ratio", "alloc", "algo", "routed", "route_reason", "cache", "elapsed_ms", "cold_ms"},
			want:     map[string]any{"algo": "paper", "routed": true, "cache": "hit"},
		},
		{
			name:     "greedy no_cache",
			req:      SolveRequest{Instance: in, Algo: "greedy", NoCache: true},
			wantKeys: []string{"makespan", "alloc", "algo", "routed", "route_reason", "cache", "elapsed_ms", "cold_ms"},
			want:     map[string]any{"algo": "greedy", "routed": false, "cache": "bypass"},
		},
		{
			name:     "greedy with schedule",
			req:      SolveRequest{Instance: in, Algo: "greedy", IncludeSchedule: true},
			wantKeys: []string{"makespan", "alloc", "algo", "routed", "route_reason", "cache", "elapsed_ms", "cold_ms", "schedule"},
			want:     map[string]any{"algo": "greedy", "routed": false, "cache": "miss"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/solve", c.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var got map[string]any
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			gotKeys := make([]string, 0, len(got))
			for k := range got {
				gotKeys = append(gotKeys, k)
			}
			sort.Strings(gotKeys)
			wantKeys := append([]string(nil), c.wantKeys...)
			sort.Strings(wantKeys)
			if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
				t.Errorf("v1 response keys drifted:\n got  %v\n want %v\nbody %s", gotKeys, wantKeys, data)
			}
			for k, want := range c.want {
				if got[k] != want {
					t.Errorf("v1 response[%q] = %v, want %v", k, got[k], want)
				}
			}
		})
	}

	// The v2-only "formulation" request field must be ignored by /v1 (not
	// rejected, not honoured) and must never appear in a /v1 response: the
	// shim stays byte-identical to the pre-formulation server.
	t.Run("formulation field ignored", func(t *testing.T) {
		resp, data := postJSON(t, ts.URL+"/v1/solve", map[string]any{
			"instance": in, "algo": "paper", "formulation": "mincut",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var got map[string]any
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if _, leaked := got["formulation"]; leaked {
			t.Errorf("v1 response leaked a formulation field: %s", data)
		}
		if got["algo"] != "paper" {
			t.Errorf("v1 response algo = %v, want paper: %s", got["algo"], data)
		}
		if strings.Contains(string(data), "formulation") {
			t.Errorf("v1 response body mentions formulation: %s", data)
		}
	})
}

// editTimes scales one task's time vector, keeping its shape (length and
// monotonicity) so the structure fingerprint is unchanged.
func editTimes(in *malsched.Instance, task int, factor float64) TaskEdit {
	src := in.Tasks[task].Times
	times := make([]float64, len(src))
	for i, v := range src {
		times[i] = v * factor
	}
	return TaskEdit{Task: task, Times: times}
}

func TestV2SolveIdentityAndTier(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	out := decodeSolveV2(t, data)
	if out.Fingerprint != in.Fingerprint() || out.StructureFingerprint != in.StructureFingerprint() {
		t.Errorf("identity: got (%s, %s), want (%s, %s)",
			out.Fingerprint, out.StructureFingerprint, in.Fingerprint(), in.StructureFingerprint())
	}
	if out.Tier != "paper" || out.Delta != "" || out.Cache != "miss" {
		t.Errorf("first v2 solve: %+v", out)
	}

	// Repeat: the routed request is served from the quality slot.
	_, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in})
	if rep := decodeSolveV2(t, data); rep.Cache != "hit" || rep.Tier != "paper" {
		t.Errorf("repeat v2 solve: cache %q tier %q, want hit/paper", rep.Cache, rep.Tier)
	}
}

func TestV2DeltaWarmThenCutoffs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	_, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	base := decodeSolveV2(t, data)
	if base.Fingerprint == "" {
		t.Fatalf("base solve: %+v", base)
	}

	// Within the edit budget: warm delta, and the answer matches a cold
	// solve of the same edited instance bit-for-bit in makespan.
	edits := []TaskEdit{editTimes(in, 1, 1.07), editTimes(in, 3, 0.9)}
	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Base: base.Fingerprint, Edits: edits, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, data)
	}
	warm := decodeSolveV2(t, data)
	if warm.Delta != "warm" || warm.Cache != "miss" {
		t.Fatalf("delta solve: delta %q cache %q, want warm/miss", warm.Delta, warm.Cache)
	}
	edited, err := applyEdits(in, edits)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fingerprint != edited.Fingerprint() {
		t.Errorf("delta fingerprint %s, want %s", warm.Fingerprint, edited.Fingerprint())
	}
	_, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: edited, Algo: "paper", NoCache: true})
	cold := decodeSolveV2(t, data)
	if warm.Makespan != cold.Makespan {
		t.Errorf("warm makespan %v != cold makespan %v", warm.Makespan, cold.Makespan)
	}

	// k+1 distinct task edits: over budget, falls back cold.
	var many []TaskEdit
	for i := 0; i < maxDeltaEdits+1; i++ {
		many = append(many, editTimes(in, i, 1.3))
	}
	_, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Base: base.Fingerprint, Edits: many, Algo: "paper"})
	if out := decodeSolveV2(t, data); out.Delta != "cold" {
		t.Errorf("%d edits: delta %q, want cold", maxDeltaEdits+1, out.Delta)
	}

	// A structure change (here: a dropped precedence edge, posted as a
	// full instance alongside the base hint) flips the structure
	// fingerprint: the basis cannot transplant, falls back cold.
	reshaped := &malsched.Instance{M: in.M, Tasks: in.Tasks, Edges: in.Edges[:len(in.Edges)-1]}
	if reshaped.StructureFingerprint() == in.StructureFingerprint() {
		t.Fatal("test setup: dropping an edge did not change the structure fingerprint")
	}
	resp, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Base: base.Fingerprint, Instance: reshaped, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structure-mismatch status %d: %s", resp.StatusCode, data)
	}
	if out := decodeSolveV2(t, data); out.Delta != "cold" {
		t.Errorf("structure mismatch: delta %q, want cold", out.Delta)
	}

	m := metrics(t, ts)
	if m["delta_warm"] != 1 {
		t.Errorf("delta_warm = %v, want 1", m["delta_warm"])
	}
	if m["delta_cold"] != 2 {
		t.Errorf("delta_cold = %v, want 2", m["delta_cold"])
	}
}

func TestV2DeltaBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	_, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	base := decodeSolveV2(t, data)

	cases := []struct {
		name string
		req  SolveRequestV2
	}{
		{"edits without base", SolveRequestV2{Instance: in, Edits: []TaskEdit{editTimes(in, 0, 1.1)}}},
		{"unknown base no instance", SolveRequestV2{Base: "malsched-fp-v2:ffff", Edits: []TaskEdit{editTimes(in, 0, 1.1)}}},
		{"edit index out of range", SolveRequestV2{Base: base.Fingerprint, Edits: []TaskEdit{{Task: 99, Times: []float64{1}}}}},
		{"empty edit times", SolveRequestV2{Base: base.Fingerprint, Edits: []TaskEdit{{Task: 0}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v2/solve", c.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", resp.StatusCode, data)
			}
		})
	}

	// An unknown base WITH an instance is not an error: the request is
	// self-contained and solves cold.
	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Base: "malsched-fp-v2:ffff", Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-contained fallback: status %d: %s", resp.StatusCode, data)
	}
	if out := decodeSolveV2(t, data); out.Delta != "cold" {
		t.Errorf("self-contained fallback: delta %q, want cold", out.Delta)
	}
}

// waitForTier polls the solutions probe until the identity's quality slot
// reaches the tier (or the deadline passes).
func waitForTier(t *testing.T, ts *httptest.Server, fp, want string) SolutionProbe {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v2/solutions/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var p SolutionProbe
			if err := json.Unmarshal(data, &p); err != nil {
				t.Fatal(err)
			}
			if p.Tier == want {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("quality slot for %s not at tier %q after 30s (last: %s)", fp, want, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestV2RefineBehind(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "layered_n12_m8.json")

	// An impossible deadline downgrades to greedy; the answer comes back
	// immediately at tier greedy with a refinement queued behind it.
	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, DeadlineMS: 0.0001})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	first := decodeSolveV2(t, data)
	if first.Algo != "greedy" || first.Tier != "greedy" || !first.Routed {
		t.Fatalf("downgraded solve: %+v", first)
	}
	if first.Refine != "queued" {
		t.Fatalf("refine = %q, want queued", first.Refine)
	}

	// The background paper solve lands in the quality slot tier-monotonically.
	probe := waitForTier(t, ts, first.Fingerprint, "paper")
	if probe.Algo != "paper" || !probe.DeltaReady {
		t.Errorf("refined slot: %+v, want paper with delta state", probe)
	}
	if probe.Makespan > first.Makespan {
		t.Errorf("refinement worsened the answer: %v > %v", probe.Makespan, first.Makespan)
	}

	// The same downgraded request now returns the paper answer at cache-hit
	// latency: quality-first lookup accepts any tier >= the routed one.
	_, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, DeadlineMS: 0.0001})
	second := decodeSolveV2(t, data)
	if second.Cache != "hit" || second.Tier != "paper" || second.Algo != "paper" {
		t.Errorf("repeat after refinement: cache %q tier %q algo %q, want hit/paper/paper", second.Cache, second.Tier, second.Algo)
	}
	if second.Refine != "" {
		t.Errorf("repeat queued another refinement: %q", second.Refine)
	}

	m := metrics(t, ts)
	if m["refine_queued"] < 1 || m["refined"] < 1 {
		t.Errorf("refine counters: queued=%v refined=%v, want >= 1 each", m["refine_queued"], m["refined"])
	}
}

func TestV2SolutionsProbe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "forkjoin_n10_m4.json")

	resp, err := http.Get(ts.URL + "/v2/solutions/malsched-fp-v2:nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", resp.StatusCode)
	}

	_, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	out := decodeSolveV2(t, data)
	resp, err = http.Get(ts.URL + "/v2/solutions/" + out.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d: %s", resp.StatusCode, data)
	}
	var p SolutionProbe
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatal(err)
	}
	if p.Tier != "paper" || p.Algo != "paper" || p.Makespan != out.Makespan || !p.DeltaReady {
		t.Errorf("probe: %+v vs solve %+v", p, out)
	}

	// Parameter overrides address a different quality slot.
	resp, err = http.Get(ts.URL + "/v2/solutions/" + out.Fingerprint + "?rho=0.3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rho-parameterised probe: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v2/solutions/" + out.Fingerprint + "?mu=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed mu: status %d, want 400", resp.StatusCode)
	}
}

func TestV2JobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "erdos_n12_m4.json")

	resp, data := postJSON(t, ts.URL+"/v2/jobs", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var acc JobAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.URL != "/v2/jobs/"+acc.ID {
		t.Fatalf("accepted: %+v", acc)
	}
	st := waitForJob(t, ts.URL+acc.URL)
	if st.State != JobDone {
		t.Fatalf("job: %+v", st)
	}
	res, ok := st.Result.(map[string]any)
	if !ok || res["tier"] != "paper" || res["fingerprint"] != in.Fingerprint() {
		t.Errorf("v2 job result: %+v", st.Result)
	}

	// A delta submission without base or instance is rejected up front.
	resp, data = postJSON(t, ts.URL+"/v2/jobs", SolveRequestV2{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty v2 job: status %d, want 400: %s", resp.StatusCode, data)
	}
}

func TestV2BatchSharesCore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := loadTestdata(t, "chain_n10_m4.json")
	b := loadTestdata(t, "forkjoin_n10_m4.json")

	resp, data := postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{Instances: []*malsched.Instance{a, nil, b}, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[1].Error == "" || out.Results[1].Result != nil {
		t.Errorf("nil instance: %+v, want error", out.Results[1])
	}
	for _, i := range []int{0, 2} {
		r := out.Results[i].Result
		if r == nil || r.Tier != "paper" || r.Fingerprint == "" {
			t.Errorf("result %d: %+v", i, out.Results[i])
		}
	}
	if out.Results[0].Result.Fingerprint == out.Results[2].Result.Fingerprint {
		t.Error("distinct instances share a fingerprint")
	}
}

// TestTierMonotonicCAS races greedy and paper writers against one quality
// slot: whatever the interleaving, paper must win and stay (run under
// -race to also certify the locking).
func TestTierMonotonicCAS(t *testing.T) {
	c := newCache(64, 4)
	greedy := &solution{res: &malsched.Result{Makespan: 2}, algo: malsched.AlgoGreedyCP, tier: tierGreedy}
	paper := &solution{res: &malsched.Result{Makespan: 1}, algo: malsched.AlgoPaper, tier: tierPaper}

	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		sol := greedy
		if i%2 == 1 {
			sol = paper
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.putIfBetter("q|race", sol)
			}
		}()
	}
	wg.Wait()

	e, ok := c.get("q|race")
	if !ok || e.tier != tierPaper {
		t.Fatalf("after the race: entry %+v, want tier paper", e)
	}
	// And once paper is resident, a greedy write must bounce.
	if c.putIfBetter("q|race", greedy) {
		t.Error("greedy overwrote a paper entry")
	}
	if e, _ := c.get("q|race"); e.tier != tierPaper || e.algo != malsched.AlgoPaper {
		t.Errorf("slot degraded to %+v", e)
	}
}

// TestV2MetricsCounters: the v2 request counters exist and count.
func TestV2MetricsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n12_m16.json")
	postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "greedy"})
	postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{Instances: []*malsched.Instance{in}, Algo: "greedy"})
	http.Post(ts.URL+"/v2/solve", "application/json", strings.NewReader("{"))

	m := metrics(t, ts)
	for k, want := range map[string]float64{
		"requests_v2_solve": 2,
		"requests_v2_batch": 1,
		"errors_total":      1,
	} {
		if m[k] != want {
			t.Errorf("metrics[%q] = %v, want %v", k, m[k], want)
		}
	}
}
