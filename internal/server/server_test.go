package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"testing"
	"time"

	"malsched"
)

// newTestServer spins up a server over httptest; cfg tweaks are applied to
// a small default.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func loadTestdata(t *testing.T, name string) *malsched.Instance {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := malsched.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeSolve(t *testing.T, data []byte) *SolveResponse {
	t.Helper()
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding solve response %s: %v", data, err)
	}
	return &out
}

func TestSolveMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	first := decodeSolve(t, data)
	if first.Makespan <= 0 || first.Cache != "miss" || first.Algo != "paper" || first.Routed {
		t.Fatalf("first solve: %+v", first)
	}
	if first.Guarantee <= 0 || first.Guarantee > first.ProvenRatio {
		t.Errorf("guarantee %v outside (0, %v]", first.Guarantee, first.ProvenRatio)
	}

	// Same instance with renamed tasks and permuted edges must hit the
	// content-addressed cache.
	renamed := *in
	renamed.Tasks = append([]malsched.Task(nil), in.Tasks...)
	for i := range renamed.Tasks {
		renamed.Tasks[i].Name = fmt.Sprintf("other-%d", i)
	}
	for i, j := 0, len(renamed.Edges)-1; i < j; i, j = i+1, j-1 {
		renamed.Edges[i], renamed.Edges[j] = renamed.Edges[j], renamed.Edges[i]
	}
	resp, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: &renamed, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	second := decodeSolve(t, data)
	if second.Cache != "hit" {
		t.Fatalf("second solve: cache %q, want hit", second.Cache)
	}
	if second.Makespan != first.Makespan {
		t.Errorf("hit makespan %v != miss makespan %v", second.Makespan, first.Makespan)
	}
	if second.ColdMS != first.ColdMS {
		t.Errorf("hit cold_ms %v != miss cold_ms %v", second.ColdMS, first.ColdMS)
	}
}

func TestSolveParameterOverridesSplitCacheEntries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	rho := 0.3
	_, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
	base := decodeSolve(t, data)
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Rho: &rho})
	overridden := decodeSolve(t, data)
	if overridden.Cache != "miss" {
		t.Errorf("rho override hit the base entry: %+v", overridden)
	}
	if base.Cache != "miss" {
		t.Errorf("base solve: %+v", base)
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	valid := loadTestdata(t, "chain_n10_m4.json")
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"instance": {`},
		{"wrong type", `{"instance": 42}`},
		{"missing instance", `{}`},
		{"unknown algo", mustJSON(SolveRequest{Instance: valid, Algo: "quantum"})},
		{"cyclic instance", `{"instance": {"m": 2, "tasks": [{"Times": [1, 1]}, {"Times": [1, 1]}], "edges": [[0, 1], [1, 0]]}}`},
		{"edge out of range", `{"instance": {"m": 2, "tasks": [{"Times": [1, 1]}], "edges": [[0, 5]]}}`},
	}
	for _, c := range cases {
		for _, path := range []string{"/v1/solve", "/v1/jobs"} {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			// Async submissions only vet the envelope; instance-level
			// problems surface in the job state instead.
			wantBad := path == "/v1/solve" || c.name == "malformed json" ||
				c.name == "wrong type" || c.name == "missing instance"
			if wantBad && resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400 (%s)", path, c.name, resp.StatusCode, data)
			}
			if resp.StatusCode == http.StatusBadRequest && !bytes.Contains(data, []byte("error")) {
				t.Errorf("%s %s: 400 without error body: %s", path, c.name, data)
			}
		}
	}
}

func mustJSON(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(raw)
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	in := loadTestdata(t, "chain_n10_m4.json")
	small := mustJSON(SolveRequest{Instance: in})
	if len(small) > 2048 {
		t.Fatalf("test instance serialises to %d bytes, want under the 2048 cap", len(small))
	}
	// Padding a request past the cap must yield a JSON 413 on every POST
	// endpoint; the in-cap request must still work.
	big := `{"pad": "` + strings.Repeat("x", 4096) + `", ` + small[1:]
	for _, path := range []string{"/v1/solve", "/v1/batch", "/v1/jobs", "/v2/solve", "/v2/batch", "/v2/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized: status %d, want 413 (%s)", path, resp.StatusCode, data)
		}
		if !bytes.Contains(data, []byte("error")) {
			t.Errorf("%s oversized: 413 without JSON error body: %s", path, data)
		}
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap solve under body limit: status %d: %s", resp.StatusCode, data)
	}
}

func TestBodyLimitDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: -1})
	in := loadTestdata(t, "chain_n10_m4.json")
	big := `{"pad": "` + strings.Repeat("x", 1<<20) + `", ` + mustJSON(SolveRequest{Instance: in})[1:]
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("uncapped 1 MiB request: status %d, want 200 (%s)", resp.StatusCode, data)
	}
}

func TestSolveMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

func TestSolveAutoRoutingAndSchedule(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "layered_n12_m8.json")

	_, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, IncludeSchedule: true})
	out := decodeSolve(t, data)
	if !out.Routed || out.Algo != "paper" || out.RouteReason == "" {
		t.Errorf("auto small instance: %+v", out)
	}
	if len(out.Schedule) != len(in.Tasks) {
		t.Fatalf("schedule has %d items, want %d", len(out.Schedule), len(in.Tasks))
	}
	for _, it := range out.Schedule {
		if it.Name != in.Tasks[it.Task].Name {
			t.Errorf("schedule item %d carries name %q, want %q", it.Task, it.Name, in.Tasks[it.Task].Name)
		}
	}

	// An impossible deadline routes to greedy; a pinned algo is never routed.
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, DeadlineMS: 0.0001})
	if out := decodeSolve(t, data); out.Algo != "greedy" || !out.Routed {
		t.Errorf("tight deadline: %+v", out)
	}
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "ltw", DeadlineMS: 0.0001})
	if out := decodeSolve(t, data); out.Algo != "ltw" || out.Routed {
		t.Errorf("pinned ltw: %+v", out)
	}
}

func TestSolveNoCacheBypasses(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	for i := 0; i < 2; i++ {
		_, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, NoCache: true})
		if out := decodeSolve(t, data); out.Cache != "bypass" {
			t.Fatalf("request %d: cache %q, want bypass", i, out.Cache)
		}
	}
	if s.cache.len() != 0 {
		t.Errorf("bypassed requests populated the cache: %d entries", s.cache.len())
	}
}

func TestSolveCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: -1})
	in := loadTestdata(t, "chain_n10_m4.json")
	for i := 0; i < 2; i++ {
		_, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
		if out := decodeSolve(t, data); out.Cache != "bypass" {
			t.Fatalf("request %d: cache %q, want bypass", i, out.Cache)
		}
	}
}

func TestConcurrentIdenticalSolvesRunOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in := loadTestdata(t, "erdos_n12_m4.json")
	const clients = 32

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(SolveRequest{Instance: in})
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()

	m := metrics(t, ts)
	if m["solves_paper"] != 1 {
		t.Errorf("identical concurrent requests ran %v solves, want 1", m["solves_paper"])
	}
	if total := m["cache_hit"] + m["cache_shared"] + m["cache_miss"]; total != clients {
		t.Errorf("cache outcomes sum to %v, want %d", total, clients)
	}
	if s.cache.len() != 1 {
		t.Errorf("cache has %d entries, want 1", s.cache.len())
	}
}

func TestBatchOrderAndErrorIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	good1 := loadTestdata(t, "chain_n10_m4.json")
	good2 := loadTestdata(t, "forkjoin_n10_m4.json")
	bad := &malsched.Instance{M: 2, Tasks: []malsched.Task{malsched.PowerLawTask("t", 1, 0.5, 2)}, Edges: [][2]int{{0, 7}}}

	resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Instances: []*malsched.Instance{good1, bad, good2, nil}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Result == nil || out.Results[i].Error != "" {
			t.Errorf("result %d: %+v, want success", i, out.Results[i])
		}
	}
	for _, i := range []int{1, 3} {
		if out.Results[i].Result != nil || out.Results[i].Error == "" {
			t.Errorf("result %d: %+v, want error", i, out.Results[i])
		}
	}
	if out.Results[0].Result.Makespan == out.Results[2].Result.Makespan {
		t.Error("distinct instances returned identical makespans — results crossed?")
	}
}

func TestEmptyBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
}

func waitForJob(t *testing.T, url string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 30s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "erdos_n16_m16.json")

	resp, data := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var acc JobAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.URL != "/v1/jobs/"+acc.ID {
		t.Fatalf("accepted: %+v", acc)
	}

	st := waitForJob(t, ts.URL+acc.URL)
	if st.State != JobDone || st.Result == nil || st.Error != "" {
		t.Fatalf("finished job: %+v", st)
	}
	res, ok := st.Result.(map[string]any)
	if !ok {
		t.Fatalf("job result is %T, want an object: %+v", st.Result, st.Result)
	}
	if ms, _ := res["makespan"].(float64); ms <= 0 || st.Finished == nil {
		t.Errorf("job result: %+v", st.Result)
	}

	// The async solve must have populated the shared cache: a sync request
	// for the same instance hits.
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
	if out := decodeSolve(t, data); out.Cache != "hit" {
		t.Errorf("sync after async: cache %q, want hit", out.Cache)
	}
}

func TestJobFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := &malsched.Instance{M: 2, Tasks: []malsched.Task{malsched.PowerLawTask("t", 1, 0.5, 2)}, Edges: [][2]int{{0, 9}}}
	resp, data := postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: bad})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var acc JobAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st := waitForJob(t, ts.URL+acc.URL)
	if st.State != JobFailed || st.Error == "" || st.Result != nil {
		t.Fatalf("failed job: %+v", st)
	}
}

func TestJobUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestJobStoreInFlightBound(t *testing.T) {
	js := newJobStore(2)
	now := time.Now()
	id1, err := js.create(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := js.create(now); err != nil {
		t.Fatal(err)
	}
	if _, err := js.create(now); !errors.Is(err, errJobsBusy) {
		t.Fatalf("third in-flight job: err=%v, want errJobsBusy", err)
	}
	js.finish(id1, &SolveResponse{}, nil, now)
	if _, err := js.create(now); err != nil {
		t.Errorf("create after a finish: %v", err)
	}
}

// Server-side failures (here: the solver pool closed during drain) must
// surface as 500, not as the client's fault.
func TestSolveServerErrorIs500(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	s.Close()
	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, NoCache: true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500: %s", resp.StatusCode, data)
	}
}

func TestJobStoreEviction(t *testing.T) {
	js := newJobStore(2)
	now := time.Now()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := js.create(now)
		if err != nil {
			t.Fatal(err)
		}
		js.finish(id, &SolveResponse{}, nil, now)
		ids = append(ids, id)
	}
	if _, ok := js.get(ids[0]); ok {
		t.Error("oldest finished job survived past the bound")
	}
	for _, id := range ids[1:] {
		if _, ok := js.get(id); !ok {
			t.Errorf("job %s evicted too early", id)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["workers"] != float64(3) || s.Workers() != 3 {
		t.Errorf("healthz: %s", data)
	}
}

// metrics fetches /metrics and returns its top-level numeric fields (the
// deprecated flat aliases plus schema_version; the nested per-formulation
// section is decoded by the tests that assert on it).
func metrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("metrics is not a JSON object: %s", data)
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

func TestMetricsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n12_m16.json")
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in})
	http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))

	m := metrics(t, ts)
	checks := map[string]float64{
		"requests_solve": 3,
		"cache_miss":     1,
		"cache_hit":      1,
		"errors_total":   1,
		"solves_paper":   1,
		"cache_entries":  1,
	}
	for k, want := range checks {
		if m[k] != want {
			t.Errorf("metrics[%q] = %v, want %v", k, m[k], want)
		}
	}
}

// TestSolveDeadlineValidation: non-finite or negative deadline_ms must be
// rejected with 400 — time.Duration(NaN * float64(time.Millisecond)) is an
// undefined float->int conversion, and negatives would silently mean
// "unconstrained".
func TestSolveDeadlineValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	// nan/inf are invalid JSON and 400 at decode; "negative" and
	// "overflow" (finite, but deadline*1e6 exceeds int64 — the wrap would
	// read as "unconstrained") reach solveOne's validation itself.
	for name, raw := range map[string]string{
		"nan":      `NaN`,
		"inf":      `1e999`,
		"negative": `-5`,
		"overflow": `1e19`,
	} {
		t.Run(name, func(t *testing.T) {
			enc, err := json.Marshal(in)
			if err != nil {
				t.Fatal(err)
			}
			body := `{"instance":` + string(enc) + `,"deadline_ms":` + raw + `}`
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("deadline_ms %s: status %d, want 400 (%s)", raw, resp.StatusCode, data)
			}
		})
	}
	// A valid positive deadline must still be accepted.
	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, DeadlineMS: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid deadline rejected: %d %s", resp.StatusCode, data)
	}
}

// TestSolveIgnoredParamsShareCacheEntry: rho/mu only key the cache for the
// paper algorithm; for greedy (and the other baselines that ignore them) a
// parameter-carrying request must hit the entry its parameterless twin
// populated, and vice versa.
func TestSolveIgnoredParamsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	rho, mu := 0.3, 2

	_, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "greedy"})
	base := decodeSolve(t, data)
	if base.Cache != "miss" {
		t.Fatalf("first greedy solve: %+v", base)
	}
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "greedy", Rho: &rho, Mu: &mu})
	withParams := decodeSolve(t, data)
	if withParams.Cache != "hit" {
		t.Errorf("greedy with rho/mu missed the cache: %+v", withParams)
	}
	if withParams.Makespan != base.Makespan {
		t.Errorf("makespan changed across request shapes: %v vs %v", withParams.Makespan, base.Makespan)
	}

	// The paper algorithm DOES consume rho/mu: its entries must stay split.
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "paper"})
	if r := decodeSolve(t, data); r.Cache != "miss" {
		t.Fatalf("paper base: %+v", r)
	}
	_, data = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Algo: "paper", Rho: &rho})
	if r := decodeSolve(t, data); r.Cache != "miss" {
		t.Errorf("paper with rho override shared the base entry: %+v", r)
	}
}

// TestLargeBatchBoundedFanout: a batch far larger than the pool must be
// served by a bounded worker set (one feeder per pool worker), complete,
// and preserve order. The goroutine count is sampled while the batch is in
// flight to catch a regression back to goroutine-per-instance fan-out.
func TestLargeBatchBoundedFanout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := loadTestdata(t, "chain_n10_m4.json")
	const batch = 3000
	ins := make([]*malsched.Instance, batch)
	for i := range ins {
		ins[i] = in
	}
	before := runtime.NumGoroutine()

	type outcome struct {
		resp *http.Response
		data []byte
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		// Plain HTTP here, not postJSON: t.Fatal only works from the test
		// goroutine, and a Fatal-ed helper would leave the sampler below
		// waiting forever.
		body, err := json.Marshal(BatchRequest{Instances: ins, Algo: "greedy"})
		if err != nil {
			res <- outcome{err: err}
			return
		}
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			res <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		res <- outcome{resp: resp, data: data, err: err}
	}()
	var peak int
	var out outcome
sample:
	for {
		select {
		case out = <-res:
			break sample
		default:
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.200s", out.resp.StatusCode, out.data)
	}
	var br BatchResponse
	if err := json.Unmarshal(out.data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != batch {
		t.Fatalf("got %d results, want %d", len(br.Results), batch)
	}
	for i, r := range br.Results {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if peak > before+64 {
		t.Errorf("goroutine count peaked at %d (baseline %d): fan-out not bounded", peak, before)
	}
}
