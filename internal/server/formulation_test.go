package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestV2FormulationPin pins each formulation on a small instance and
// checks the response reports exactly what ran; an unknown pin is a 400
// whose message enumerates the valid values.
func TestV2FormulationPin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	for _, f := range []string{"lazy", "segment", "mincut", "dense"} {
		resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{
			Instance: in, Algo: "paper", Formulation: f,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pin %q: status %d: %s", f, resp.StatusCode, data)
		}
		out := decodeSolveV2(t, data)
		if out.Formulation != f {
			t.Errorf("pin %q: response formulation %q", f, out.Formulation)
		}
		if out.Makespan <= 0 {
			t.Errorf("pin %q: makespan %v", f, out.Makespan)
		}
	}

	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{
		Instance: in, Formulation: "simplex2000",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown formulation: status %d: %s", resp.StatusCode, data)
	}
	for _, want := range []string{"lazy", "segment", "mincut", "dense"} {
		if !jsonErrorContains(data, want) {
			t.Errorf("400 body does not enumerate %q: %s", want, data)
		}
	}

	// A greedy answer never solves the LP, so it reports no formulation.
	resp, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "greedy"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("greedy: status %d: %s", resp.StatusCode, data)
	}
	if out := decodeSolveV2(t, data); out.Formulation != "" {
		t.Errorf("greedy answer reports formulation %q", out.Formulation)
	}
}

func jsonErrorContains(data []byte, sub string) bool {
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) != nil {
		return false
	}
	return body.Error != "" && containsStr(body.Error, sub)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestV2FormulationAutoMincut is the serving half of the tentpole's
// acceptance: a large-segment-mass instance posted with no pins at all
// must auto-route to the paper algorithm AND the solver's internal
// formulation router must pick the parametric min-cut sweep — observable
// in the response's formulation field and in /metrics.
func TestV2FormulationAutoMincut(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// ~500 tasks on 64 machines: segment mass ~40 per task clears the
	// mincut crossover (mincutFormulationMin) while n stays well inside
	// the server's paper-tier budget.
	in := generatedInstance(t, 500, 64)

	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	out := decodeSolveV2(t, data)
	if !out.Routed || out.Algo != "paper" {
		t.Fatalf("auto routing picked algo %q (routed=%v): %s", out.Algo, out.Routed, out.RouteReason)
	}
	if out.Formulation != "mincut" {
		t.Fatalf("auto-routed formulation = %q, want mincut (reason %q)", out.Formulation, out.RouteReason)
	}
	if out.Tier != "paper" || out.Makespan <= 0 || out.Guarantee < 1 {
		t.Errorf("implausible answer: tier=%q makespan=%v guarantee=%v", out.Tier, out.Makespan, out.Guarantee)
	}

	// The probe reports the producing formulation for the cached entry.
	presp, pdata := httpGet(t, ts.URL+"/v2/solutions/"+out.Fingerprint)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d: %s", presp.StatusCode, pdata)
	}
	var probe SolutionProbe
	if err := json.Unmarshal(pdata, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Formulation != "mincut" {
		t.Errorf("probe formulation = %q, want mincut", probe.Formulation)
	}
}

// TestMetricsVersionedShape pins the /metrics redesign: schema_version,
// a per-formulation section with the effort counters, and the old flat
// keys still present as deprecated aliases.
func TestMetricsVersionedShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper", Formulation: "mincut"})
	postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper", Formulation: "lazy", NoCache: true})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		SchemaVersion int                         `json:"schema_version"`
		Formulations  map[string]formulationStats `json:"formulations"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics document: %v: %s", err, data)
	}
	if doc.SchemaVersion != metricsSchemaVersion {
		t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, metricsSchemaVersion)
	}
	for _, f := range []string{"mincut", "lazy"} {
		st, ok := doc.Formulations[f]
		if !ok || st.Solves < 1 {
			t.Errorf("formulations[%q] = %+v, want >= 1 solve: %s", f, st, data)
		}
	}
	if st := doc.Formulations["mincut"]; st.Cuts < 1 || st.Rounds < 1 {
		t.Errorf("mincut effort counters empty: %+v", st)
	}

	// Deprecated flat aliases of the version-1 shape.
	flat := metrics(t, ts)
	for _, k := range []string{"requests_v2_solve", "solves_paper", "cache_miss"} {
		if flat[k] < 1 {
			t.Errorf("flat alias %q = %v, want >= 1", k, flat[k])
		}
	}
}

// TestSolutionProbeRejectsNonFinite: NaN/Inf rho values parse as floats
// but can never address a cached slot; they are client errors like a
// non-finite deadline_ms, not silent 404s.
func TestSolutionProbeRejectsNonFinite(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"rho=NaN", "rho=Inf", "rho=-Inf", "rho=bogus", "mu=NaN", "formulation=simplex2000"} {
		resp, data := httpGet(t, ts.URL+"/v2/solutions/deadbeef?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("probe ?%s: status %d, want 400: %s", q, resp.StatusCode, data)
		}
	}
	// A well-formed probe of an unknown identity stays a 404.
	resp, _ := httpGet(t, ts.URL+"/v2/solutions/deadbeef?rho=0.5&formulation=mincut")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("well-formed unknown probe: status %d, want 404", resp.StatusCode)
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}
