package server

import "malsched"

// tier is the quality class of a cached answer. The serving layer's cache
// is tier-monotonic: within one identity slot, answers only ever move up
// the ladder (a queued paper refinement overwrites a deadline-downgraded
// greedy answer; a greedy answer can never clobber a paper one).
type tier int

const (
	// tierGreedy: a heuristic answer without an approximation guarantee
	// (greedy critical-path, sequential, full allotment).
	tierGreedy tier = iota + 1
	// tierPaper: an answer with a certified approximation ratio (the
	// paper's two-phase algorithm, or the LTW comparison baseline).
	tierPaper
)

func (t tier) String() string {
	if t >= tierPaper {
		return "paper"
	}
	return "greedy"
}

// tierOf maps an algorithm to the quality tier of its answers.
func tierOf(algo malsched.Algorithm) tier {
	switch algo {
	case malsched.AlgoPaper, malsched.AlgoLTW:
		return tierPaper
	}
	return tierGreedy
}
