// v2 serving API: identity/quality split, delta re-solve, refine-behind.
//
// The v2 endpoints key cached answers two ways. The *identity* of a
// problem is its full fingerprint (Instance.Fingerprint: structure plus
// quantized numbers); its *shape* is the structure fingerprint
// (Instance.StructureFingerprint: numbers excluded). Each identity owns a
// quality slot in the cache whose entry carries a quality tier (greedy <
// paper) plus the producing algorithm and parameters, and the slot is
// tier-monotonic: answers only ever improve.
//
//	POST /v2/solve          — solve; accepts instance, or base fingerprint + edits
//	POST /v2/batch          — v2 semantics per instance
//	POST /v2/jobs           — async v2 solve
//	GET  /v2/jobs/{id}      — poll (shared store with /v1)
//	GET  /v2/solutions/{fp} — probe the quality slot of an identity
//
// Delta re-solve: a request naming a cached base and a short list of task
// edits re-solves warm — the base's captured LP basis transplants onto the
// edited instance whenever the structure matches and the edit distance is
// within maxDeltaEdits — and cold otherwise, with identical answers either
// way (the warm start only moves the simplex's starting point).
//
// Refine-behind: when a deadline downgrades a routed request to greedy,
// the greedy answer returns immediately (tier "greedy") and a paper solve
// of the same identity is queued on the pool's background lane. The
// refinement overwrites the quality slot tier-monotonically, so a repeat
// of the same request returns tier "paper" at cache-hit latency.
//
// /v1 remains a thin shim over the same core with the v2 behaviours
// switched off (no quality-slot reads, no capture, no refinement), so its
// responses stay byte-identical to the pre-v2 server.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"malsched"
)

// maxDeltaEdits is the edit budget of the delta path: a request whose
// edited instance differs from its base in more than this many tasks
// re-solves cold (the transplanted basis would be too stale to help).
const maxDeltaEdits = 8

// shedMinWait is the least real queueing time before a deadline shed can
// fire (see the shed check in serve).
const shedMinWait = 5 * time.Millisecond

// TaskEdit replaces one task's processing-time vector in a delta request.
type TaskEdit struct {
	// Task is the index of the task to edit (into the base instance).
	Task int `json:"task"`
	// Times is the replacement processing-time vector; its length must
	// match the base task's for the warm path to apply (a different
	// length changes the structure fingerprint, forcing a cold solve).
	Times []float64 `json:"times"`
}

// SolveRequestV2 is the body of POST /v2/solve and POST /v2/jobs. Exactly
// one of Instance and Base is usually set: Instance for a self-contained
// request, Base (+ Edits) for a delta request against a cached identity.
// When both are set, Base is a warm-start hint for solving Instance.
type SolveRequestV2 struct {
	Instance *malsched.Instance `json:"instance,omitempty"`
	// Base is the full fingerprint of a previously solved instance whose
	// cached state seeds this solve.
	Base string `json:"base,omitempty"`
	// Edits rewrite individual tasks of the base instance; applied in
	// order, later edits to the same task win.
	Edits []TaskEdit `json:"edits,omitempty"`

	Algo            string   `json:"algo,omitempty"`
	DeadlineMS      float64  `json:"deadline_ms,omitempty"`
	Rho             *float64 `json:"rho,omitempty"`
	Mu              *int     `json:"mu,omitempty"`
	NoCache         bool     `json:"no_cache,omitempty"`
	IncludeSchedule bool     `json:"include_schedule,omitempty"`
	// Formulation pins the phase-1 LP formulation of a paper-tier solve
	// (lazy, segment, mincut or dense); empty lets the solver's internal
	// router pick by instance shape. Unknown values are a 400. Pins other
	// than lazy disable LP state capture, so such answers cannot seed a
	// later warm delta solve.
	Formulation string `json:"formulation,omitempty"`
}

// SolveResponseV2 answers a v2 solve: the v1 fields plus the identity
// (fingerprints), the answer's quality tier, and what the delta and
// refine-behind machinery did for this request.
type SolveResponseV2 struct {
	SolveResponse
	// Fingerprint and StructureFingerprint identify the solved instance;
	// Fingerprint is what a follow-up delta request passes as base.
	Fingerprint          string `json:"fingerprint"`
	StructureFingerprint string `json:"structure_fingerprint"`
	// Tier is the answer's quality tier: "greedy" or "paper".
	Tier string `json:"tier"`
	// Delta reports the delta path taken for a request with a base:
	// "warm" (re-solved from the cached basis) or "cold" (full solve —
	// unknown base, structure mismatch, or edit distance over budget).
	Delta string `json:"delta,omitempty"`
	// Refine reports refine-behind activity: "queued" when a paper solve
	// was scheduled behind this answer, "dropped" when the background
	// lane was full.
	Refine string `json:"refine,omitempty"`
	// Formulation is the phase-1 LP formulation that produced this answer
	// (lazy, segment, mincut or dense); empty for baseline algorithms,
	// which never solve the LP.
	Formulation string `json:"formulation,omitempty"`
}

// paramSuffix canonically encodes the parameter overrides the paper
// algorithm consumes, for cache keys ("" without overrides). A pinned
// formulation is part of the key: "run THIS formulation" must never be
// answered from a slot another formulation filled (the optima agree, but
// the pin is a contract about what ran, and the response reports it).
func paramSuffix(rho *float64, mu *int, formulation string) string {
	s := ""
	if mu != nil {
		s += "|mu=" + strconv.Itoa(*mu)
	}
	if rho != nil {
		s += "|rho=" + strconv.FormatFloat(*rho, 'e', 12, 64)
	}
	if formulation != "" {
		s += "|f=" + formulation
	}
	return s
}

// exactKey addresses the answer of one (instance, algorithm, params)
// triple — the v1 cache contract, kept for pinned algorithms and
// singleflight.
func exactKey(fp string, algo malsched.Algorithm, req *SolveRequestV2) string {
	key := "a|" + fp + "|" + algo.String()
	if algo == malsched.AlgoPaper {
		key += paramSuffix(req.Rho, req.Mu, req.Formulation)
	}
	return key
}

// qualityKey addresses the tier-monotonic quality slot of one instance
// identity (plus the paper parameter overrides, which change what the
// best answer even is).
func qualityKey(fp string, req *SolveRequestV2) string {
	return "q|" + fp + paramSuffix(req.Rho, req.Mu, req.Formulation)
}

// resolveInstance materialises the instance a v2 request asks about:
// directly, or from a cached base identity plus edits. It also decides
// warm-start eligibility — the base's captured state is used when the
// structure matches and the edit distance is within budget. The returned
// delta label is "" (no base involved), "warm" or "cold".
func (s *Server) resolveInstance(req *SolveRequestV2) (in *malsched.Instance, warm *malsched.SolverState, delta string, err error) {
	in = req.Instance
	if req.Base == "" {
		if len(req.Edits) > 0 {
			return nil, nil, "", badRequestf("edits given without a base fingerprint")
		}
		return in, nil, "", nil
	}
	entry, ok := s.cache.get(qualityKey(req.Base, req))
	if !ok || entry.inst == nil {
		if in == nil {
			return nil, nil, "", badRequestf("unknown base %q (evicted or never solved here) and no instance given", req.Base)
		}
		return in, nil, "cold", nil // base gone; the request is self-contained
	}
	base := entry.inst
	switch {
	case len(req.Edits) > 0:
		in, err = applyEdits(base, req.Edits)
		if err != nil {
			return nil, nil, "", err
		}
	case in == nil:
		in = base // pure re-ask of the base identity
	}
	if entry.state == nil || entry.state.StructureFingerprint() != in.StructureFingerprint() {
		return in, nil, "cold", nil
	}
	if d := base.EditDistance(in); d < 0 || d > maxDeltaEdits {
		return in, nil, "cold", nil
	}
	return in, entry.state, "warm", nil
}

// applyEdits returns a copy of base with the edits applied. Edits are
// index-checked here; everything else (monotonicity, concavity) is left
// to instance validation on the solve path, exactly as for a directly
// posted instance.
func applyEdits(base *malsched.Instance, edits []TaskEdit) (*malsched.Instance, error) {
	out := &malsched.Instance{M: base.M, Edges: base.Edges, Tasks: make([]malsched.Task, len(base.Tasks))}
	copy(out.Tasks, base.Tasks)
	for i, e := range edits {
		if e.Task < 0 || e.Task >= len(out.Tasks) {
			return nil, badRequestf("edit %d: task %d out of range (base has %d tasks)", i, e.Task, len(out.Tasks))
		}
		if len(e.Times) == 0 {
			return nil, badRequestf("edit %d: empty times vector", i)
		}
		out.Tasks[e.Task] = malsched.NewTask(out.Tasks[e.Task].Name, e.Times)
	}
	return out, nil
}

// serve is the one serving core behind every solve endpoint. legacy
// selects the /v1 contract: no quality-slot reads, no LP capture, no
// refine-behind — byte-identical behaviour to the pre-v2 server. The v2
// endpoints run with legacy false and get the full pipeline: delta
// resolution, quality-first lookup for routed requests, capture on paper
// solves, and refine-behind on deadline downgrades.
//
// ctx is the request's context: it is threaded into the pool so a client
// disconnect aborts the solve mid-pivot (the async job endpoints pass
// context.Background() — a submitted job outlives its submitter by
// contract). Solver failures run the degradation ladder (see degrade);
// admission past the cache is bounded by s.pending with deadline-aware
// shedding.
func (s *Server) serve(ctx context.Context, req *SolveRequestV2, legacy bool) (*SolveResponseV2, error) {
	start := time.Now()
	in, warm, delta, err := s.resolveInstance(req)
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, badRequestf("missing instance")
	}
	var pinned *malsched.Algorithm
	if req.Algo != "" && req.Algo != "auto" {
		algo, err := malsched.ParseAlgorithm(req.Algo)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		pinned = &algo
	}
	formulation, err := malsched.ParseFormulation(req.Formulation)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	deadline, err := parseDeadline(req.DeadlineMS)
	if err != nil {
		return nil, err
	}
	dec := route(in, pinned, deadline)

	var opts []malsched.Option
	if req.Rho != nil {
		opts = append(opts, malsched.WithRho(*req.Rho))
	}
	if req.Mu != nil {
		opts = append(opts, malsched.WithMu(*req.Mu))
	}
	if formulation != "" {
		opts = append(opts, malsched.WithFormulation(formulation))
	}

	useCache := !req.NoCache && s.cache != nil
	var fp, qkey string
	if !legacy || useCache {
		fp = in.Fingerprint()
		qkey = qualityKey(fp, req)
	}

	// Quality-first: a routed v2 request is satisfied by any cached
	// answer of at least the routed tier for this identity — in
	// particular, a refined paper answer serves a deadline-downgraded
	// repeat at hit latency. Pinned requests skip this (pinning means
	// "run THIS algorithm", not "at least this good").
	var sol *solution
	label, degradedReason := "", ""
	if !legacy && useCache && dec.routed {
		if e, ok := s.cache.get(qkey); ok && e.tier >= tierOf(dec.algo) {
			sol, label = e, "hit"
		}
	}

	if sol == nil {
		if dec.algo == malsched.AlgoPaper && !legacy &&
			(formulation == "" || formulation == malsched.FormulationLazy) {
			// Capture on every v2 paper solve: the snapshot is what makes
			// this identity a usable delta base later. Snapshots only exist
			// on the lazy simplex route, so other formulation pins skip the
			// option, and capture stays best-effort underneath — a solve
			// the internal router sends to the min-cut sweep just returns
			// no state, and the identity is not delta-ready.
			opts = append(opts, malsched.WithCapture())
			if warm != nil {
				opts = append(opts, malsched.WithWarmStart(warm))
			}
		}
		solve := func() (*solution, error) {
			if err := in.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", errBadRequest, err)
			}
			// Admission control: past the cache, at most MaxPending
			// requests may sit ahead of the solver pool; the rest are
			// shed immediately (429) rather than queued without bound.
			select {
			case s.pending <- struct{}{}:
			default:
				s.stats.Add("shed_queue_full", 1)
				return nil, errOverloaded
			}
			defer func() { <-s.pending }()
			// Deadline-aware shedding: a request whose latency budget
			// already expired while it waited (behind a failed
			// singleflight leader, or parked in the pending queue) is
			// dropped, not solved — solving it would burn a worker on an
			// answer the client has given up on. The absolute floor keeps
			// sub-millisecond deadlines meaning "route me cheap" (their
			// established role) rather than "shed me": only real queueing
			// time can trigger a shed.
			if deadline > 0 {
				if waited := time.Since(start); waited > deadline && waited >= shedMinWait {
					s.stats.Add("shed_deadline", 1)
					return nil, errShedDeadline
				}
			}
			s.stats.Add("solves_"+dec.algo.String(), 1)
			if delta != "" && dec.algo == malsched.AlgoPaper && !legacy {
				s.stats.Add("delta_"+delta, 1)
			}
			res, err := s.pool.SolveAlgo(ctx, dec.algo, in, opts...)
			if err != nil {
				return nil, err
			}
			s.recordFormulation(res, delta == "warm")
			return &solution{
				res: res, algo: dec.algo, tier: tierOf(dec.algo),
				inst: in, state: res.State, coldNS: int64(time.Since(start)),
			}, nil
		}
		var out outcome
		if !useCache {
			sol, err = solve()
			label = "bypass"
		} else {
			sol, out, err = s.cache.do(ctx, exactKey(fp, dec.algo, req), solve)
			label = out.String()
		}
		s.stats.Add("cache_"+label, 1)
		if err != nil {
			// Degradation ladder: a recoverable solver failure is re-solved
			// on a lower rung instead of surfacing as a 500. The fallback
			// runs under its own flight key — never the exact key, so a
			// degraded answer can't masquerade as a clean one — because a
			// failed leader fans its error out to every singleflight waiter
			// at once, and each running its own fallback would turn one
			// fault into a re-solve stampede.
			dsol, reason, ok := s.degradeShared(ctx, in, fp, dec, err, req, start, useCache)
			if !ok {
				if ctxErr := ctx.Err(); ctxErr != nil {
					err = ctxErr
				}
				return nil, err
			}
			sol, degradedReason = dsol, reason
		}
		if !legacy && useCache {
			s.cache.putIfBetter(qkey, sol)
		}
	} else {
		s.stats.Add("cache_hit", 1)
	}

	resp := &SolveResponseV2{SolveResponse: SolveResponse{
		Makespan:    sol.res.Makespan,
		LowerBound:  sol.res.LowerBound,
		Guarantee:   sol.res.Guarantee,
		ProvenRatio: sol.res.ProvenRatio,
		Alloc:       sol.res.Alloc,
		Algo:        sol.algo.String(),
		Routed:      dec.routed,
		RouteReason: dec.reason,
		Cache:       label,
		ElapsedMS:   float64(time.Since(start)) / float64(time.Millisecond),
		ColdMS:      float64(sol.coldNS) / float64(time.Millisecond),
	}}
	if degradedReason != "" {
		resp.Degraded = true
		resp.DegradedReason = degradedReason
	}
	if !legacy {
		resp.Fingerprint = fp
		resp.StructureFingerprint = in.StructureFingerprint()
		resp.Tier = sol.tier.String()
		resp.Delta = delta
		resp.Refine = s.maybeRefine(in, fp, qkey, dec, req)
		resp.Formulation = string(sol.res.Formulation)
	}
	if req.IncludeSchedule {
		items := sol.res.Schedule.Items
		resp.Schedule = make([]ScheduleItem, len(items))
		for j, it := range items {
			resp.Schedule[j] = ScheduleItem{
				Task: it.Task, Start: it.Start, Duration: it.Duration, Alloc: it.Alloc,
			}
			if it.Task >= 0 && it.Task < len(in.Tasks) {
				resp.Schedule[j].Name = in.Tasks[it.Task].Name
			}
		}
	}
	return resp, nil
}

// denseFallbackMaxTasks and denseFallbackMaxCells cap the dense-oracle
// rung of the degradation ladder: the dense tableau materialises all n*m
// supporting lines, so its cost scales with the task count *and* the
// machine count. Past either bound the rung would trade a numerical
// failure for a tableau storm (a 96-task, 16-machine instance already
// pivots over a ~2000x3000 dense tableau); such instances fall straight
// through to the greedy rung.
const (
	denseFallbackMaxTasks = 128
	denseFallbackMaxCells = 1024
)

// degradeShared runs the degradation ladder at most once per request
// identity: concurrent requests that inherited the same leader's failure
// share one fallback solve through the cache's singleflight (under a
// dedicated "degraded" key, so the answer never lands where a clean solve
// would be read from). Without this, a failed leader turns every waiter
// into an independent fallback solver at once. Cache-less requests fall
// back to a direct ladder run.
func (s *Server) degradeShared(ctx context.Context, in *malsched.Instance, fp string, dec routeDecision, cause error, req *SolveRequestV2, start time.Time, useCache bool) (*solution, string, bool) {
	if !useCache {
		return s.degrade(ctx, in, dec, cause, req, start)
	}
	kind := malsched.ClassifyFailure(cause)
	if !kind.Recoverable() {
		return nil, "", false
	}
	dsol, _, err := s.cache.do(ctx, "d|"+exactKey(fp, dec.algo, req), func() (*solution, error) {
		d, _, ok := s.degrade(ctx, in, dec, cause, req, start)
		if !ok {
			// Report a dead context as such so live waiters retry the
			// flight (cache.do's cancellation rule) instead of failing a
			// healthy request with this leader's abandoned ladder.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, cause
		}
		return d, nil
	})
	if err != nil || dsol == nil {
		return nil, "", false
	}
	return dsol, kind.String(), true
}

// degrade is the degradation ladder: after a recoverable solver failure
// (iteration limit, singular basis, NaN taint, spurious infeasibility,
// worker panic — see malsched.ClassifyFailure) it re-solves the instance on
// progressively cheaper rungs and returns the first answer that lands,
// together with the failure-class label the response carries. It reports
// ok=false — and the caller surfaces the original error — when the failure
// is not recoverable (bad request, cancellation) or every rung failed too.
//
//	rung 1: dense LP oracle — same paper-tier answer, none of the sparse
//	        solver's basis machinery; small instances only.
//	rung 2: greedy critical path — always cheap, tier "greedy".
func (s *Server) degrade(ctx context.Context, in *malsched.Instance, dec routeDecision, cause error, req *SolveRequestV2, start time.Time) (*solution, string, bool) {
	kind := malsched.ClassifyFailure(cause)
	if !kind.Recoverable() {
		return nil, "", false
	}
	reason := kind.String()
	s.stats.Add("degrade_attempts", 1)
	s.recordFormulationDegrade(req.Formulation)
	if dec.algo == malsched.AlgoPaper && len(in.Tasks) <= denseFallbackMaxTasks &&
		len(in.Tasks)*in.M <= denseFallbackMaxCells {
		var opts []malsched.Option
		if req.Rho != nil {
			opts = append(opts, malsched.WithRho(*req.Rho))
		}
		if req.Mu != nil {
			opts = append(opts, malsched.WithMu(*req.Mu))
		}
		opts = append(opts, malsched.WithDenseLP())
		if res, err := s.pool.SolveAlgo(ctx, malsched.AlgoPaper, in, opts...); err == nil {
			s.stats.Add("degrade_dense", 1)
			return &solution{
				res: res, algo: malsched.AlgoPaper, tier: tierPaper,
				inst: in, coldNS: int64(time.Since(start)),
			}, reason, true
		}
	}
	if res, err := s.pool.SolveAlgo(ctx, malsched.AlgoGreedyCP, in); err == nil {
		s.stats.Add("degrade_greedy", 1)
		return &solution{
			res: res, algo: malsched.AlgoGreedyCP, tier: tierGreedy,
			inst: in, coldNS: int64(time.Since(start)),
		}, reason, true
	}
	s.stats.Add("degrade_exhausted", 1)
	return nil, "", false
}

// maybeRefine queues a background paper solve behind a deadline-downgraded
// answer (the refine-behind half of the v2 contract) and returns the
// response's refine label. The refinement lands in the identity's quality
// slot tier-monotonically and is observable in /metrics: refine_queued,
// refined (completed), refine_dropped (lane full), refine_failed.
func (s *Server) maybeRefine(in *malsched.Instance, fp, qkey string, dec routeDecision, req *SolveRequestV2) string {
	if !dec.downgraded || req.NoCache || s.cache == nil {
		return ""
	}
	if e, ok := s.cache.get(qkey); ok && e.tier >= tierPaper {
		return "" // already refined (or paper-solved outright)
	}
	var opts []malsched.Option
	if req.Rho != nil {
		opts = append(opts, malsched.WithRho(*req.Rho))
	}
	if req.Mu != nil {
		opts = append(opts, malsched.WithMu(*req.Mu))
	}
	// The refinement honours the request's formulation pin (its answer
	// lands under formulation-keyed slots); capture stays lazy-only.
	if f, err := malsched.ParseFormulation(req.Formulation); err == nil && f != "" {
		opts = append(opts, malsched.WithFormulation(f))
	}
	if req.Formulation == "" || req.Formulation == string(malsched.FormulationLazy) {
		opts = append(opts, malsched.WithCapture())
	}
	enqueued := time.Now()
	ok := s.pool.TrySolveBackground(malsched.AlgoPaper, in, func(res *malsched.Result, err error) {
		if err != nil {
			s.stats.Add("refine_failed", 1)
			return
		}
		s.recordFormulation(res, false)
		sol := &solution{
			res: res, algo: malsched.AlgoPaper, tier: tierPaper,
			inst: in, state: res.State, coldNS: int64(time.Since(enqueued)),
		}
		s.cache.putIfBetter(qkey, sol)
		s.cache.putIfBetter(exactKey(fp, malsched.AlgoPaper, req), sol)
		s.stats.Add("refined", 1)
	}, opts...)
	if !ok {
		s.stats.Add("refine_dropped", 1)
		return "dropped"
	}
	s.stats.Add("refine_queued", 1)
	return "queued"
}

// parseDeadline validates and converts the request's deadline field. A
// non-finite deadline would flow into an undefined float->int conversion
// (time.Duration(NaN * ...)), a negative one would silently mean
// "unconstrained", and a finite value overflowing time.Duration would
// wrap to the same undefined conversion — all client errors. The overflow
// guard compares in float space, where float64(MaxInt64) is exact.
func parseDeadline(ms float64) (time.Duration, error) {
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 ||
		ms*float64(time.Millisecond) >= float64(math.MaxInt64) {
		return 0, badRequestf("invalid deadline_ms %v: must be finite, non-negative and under %v ms", ms, int64(math.MaxInt64)/int64(time.Millisecond))
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

func (s *Server) handleSolveV2(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_v2_solve", 1)
	var req SolveRequestV2
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, err := s.serve(r.Context(), &req, false)
	if err != nil {
		s.solveError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// BatchRequestV2 is the body of POST /v2/batch: shared options applied to
// every instance (delta requests go through /v2/solve; batches are for
// fleets of distinct instances).
type BatchRequestV2 struct {
	Instances       []*malsched.Instance `json:"instances"`
	Algo            string               `json:"algo,omitempty"`
	DeadlineMS      float64              `json:"deadline_ms,omitempty"`
	Rho             *float64             `json:"rho,omitempty"`
	Mu              *int                 `json:"mu,omitempty"`
	NoCache         bool                 `json:"no_cache,omitempty"`
	IncludeSchedule bool                 `json:"include_schedule,omitempty"`
}

// BatchItemV2 is one instance's outcome: exactly one of Result and Error.
type BatchItemV2 struct {
	Result *SolveResponseV2 `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// BatchResponseV2 answers POST /v2/batch, order-preserving.
type BatchResponseV2 struct {
	Results []BatchItemV2 `json:"results"`
}

func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_v2_batch", 1)
	var req BatchRequestV2
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp := BatchResponseV2{Results: make([]BatchItemV2, len(req.Instances))}
	workers := s.pool.Workers()
	if workers > len(req.Instances) {
		workers = len(req.Instances)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w0 := 0; w0 < workers; w0++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Instances) {
					return
				}
				one := SolveRequestV2{
					Instance: req.Instances[i], Algo: req.Algo, DeadlineMS: req.DeadlineMS,
					Rho: req.Rho, Mu: req.Mu, NoCache: req.NoCache, IncludeSchedule: req.IncludeSchedule,
				}
				res, err := s.serve(r.Context(), &one, false)
				if err != nil {
					resp.Results[i].Error = err.Error()
				} else {
					resp.Results[i].Result = res
				}
			}
		}()
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobSubmitV2(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_v2_jobs", 1)
	var req SolveRequestV2
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Instance == nil && req.Base == "" {
		s.httpError(w, http.StatusBadRequest, errors.New("missing instance (or base fingerprint)"))
		return
	}
	id, err := s.jobs.create(time.Now())
	if errors.Is(err, errJobsBusy) {
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	go func() {
		s.jobs.setRunning(id)
		// Background context by contract: an accepted job must complete
		// (and stay queryable) even after its submitter disconnects.
		//malsched:detach accepted async job outlives its submitter (202 contract)
		res, err := s.serve(context.Background(), &req, false)
		if err != nil {
			s.jobs.finish(id, nil, err, time.Now())
		} else {
			s.jobs.finish(id, res, nil, time.Now())
		}
	}()
	s.writeJSON(w, http.StatusAccepted, JobAccepted{ID: id, URL: "/v2/jobs/" + id})
}

// SolutionProbe answers GET /v2/solutions/{fp}: what the quality slot of
// an identity currently holds. DeltaReady reports whether the entry can
// seed a warm delta solve (a captured LP state is attached).
type SolutionProbe struct {
	Fingerprint string  `json:"fingerprint"`
	Tier        string  `json:"tier"`
	Algo        string  `json:"algo"`
	Makespan    float64 `json:"makespan"`
	LowerBound  float64 `json:"lower_bound,omitempty"`
	Guarantee   float64 `json:"guarantee,omitempty"`
	DeltaReady  bool    `json:"delta_ready"`
	// Formulation is the phase-1 LP formulation that produced the cached
	// answer ("" for a greedy-tier entry, which never solved the LP).
	Formulation string `json:"formulation,omitempty"`
}

func (s *Server) handleSolutionProbe(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_v2_solutions", 1)
	fp := r.PathValue("fp")
	req := &SolveRequestV2{}
	if v := r.URL.Query().Get("mu"); v != "" {
		mu, err := strconv.Atoi(v)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid mu %q", v))
			return
		}
		req.Mu = &mu
	}
	if v := r.URL.Query().Get("rho"); v != "" {
		rho, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(rho) || math.IsInf(rho, 0) {
			// ParseFloat happily returns NaN/±Inf for "NaN"/"Inf" — values
			// paramSuffix would encode into a key no solve ever wrote, and
			// that a solve request would have rejected as invalid rho.
			s.httpError(w, http.StatusBadRequest, fmt.Errorf("invalid rho %q: must be a finite number", v))
			return
		}
		req.Rho = &rho
	}
	if v := r.URL.Query().Get("formulation"); v != "" {
		if _, err := malsched.ParseFormulation(v); err != nil {
			s.httpError(w, http.StatusBadRequest, err)
			return
		}
		req.Formulation = v
	}
	e, ok := s.cache.get(qualityKey(fp, req))
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("no cached solution for %q", fp))
		return
	}
	s.writeJSON(w, http.StatusOK, SolutionProbe{
		Fingerprint: fp,
		Tier:        e.tier.String(),
		Algo:        e.algo.String(),
		Makespan:    e.res.Makespan,
		LowerBound:  e.res.LowerBound,
		Guarantee:   e.res.Guarantee,
		DeltaReady:  e.state != nil,
		Formulation: string(e.res.Formulation),
	})
}
