package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"malsched"
)

func testSolution(v float64) *solution {
	return &solution{res: &malsched.Result{Makespan: v}}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(8, 2)
	calls := 0
	fn := func() (*solution, error) { calls++; return testSolution(1), nil }
	if _, out, err := c.do(context.Background(), "k", fn); err != nil || out != outcomeMiss {
		t.Fatalf("first do: outcome %v err %v, want miss nil", out, err)
	}
	sol, out, err := c.do(context.Background(), "k", fn)
	if err != nil || out != outcomeHit {
		t.Fatalf("second do: outcome %v err %v, want hit nil", out, err)
	}
	if sol.res.Makespan != 1 || calls != 1 {
		t.Errorf("makespan %v calls %d, want 1 and 1", sol.res.Makespan, calls)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newCache(8, 1)
	boom := errors.New("boom")
	if _, _, err := c.do(context.Background(), "k", func() (*solution, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatalf("error was cached: len = %d", c.len())
	}
	// The key must be retryable and cacheable afterwards.
	if _, out, err := c.do(context.Background(), "k", func() (*solution, error) { return testSolution(2), nil }); err != nil || out != outcomeMiss {
		t.Fatalf("retry: outcome %v err %v", out, err)
	}
	if _, out, _ := c.do(context.Background(), "k", nil); out != outcomeHit {
		t.Fatalf("after retry: outcome %v, want hit", out)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4, 1) // single shard so the LRU order is global
	mk := func(i int) string { return fmt.Sprintf("k%d", i) }
	for i := 0; i < 4; i++ {
		c.do(context.Background(), mk(i), func() (*solution, error) { return testSolution(float64(i)), nil })
	}
	// Touch k0 so k1 is the LRU victim.
	if _, out, _ := c.do(context.Background(), mk(0), nil); out != outcomeHit {
		t.Fatal("k0 not resident")
	}
	c.do(context.Background(), mk(9), func() (*solution, error) { return testSolution(9), nil })
	if c.len() != 4 {
		t.Fatalf("len = %d, want capacity 4", c.len())
	}
	if _, out, _ := c.do(context.Background(), mk(0), func() (*solution, error) { return testSolution(0), nil }); out != outcomeHit {
		t.Error("recently used k0 was evicted")
	}
	if _, out, _ := c.do(context.Background(), mk(1), func() (*solution, error) { return testSolution(1), nil }); out != outcomeMiss {
		t.Error("LRU k1 survived past capacity")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := newCache(8, 4)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 32

	var wg sync.WaitGroup
	outcomes := make([]outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, out, err := c.do(context.Background(), "same", func() (*solution, error) {
				calls.Add(1)
				<-gate // hold the flight open until every waiter queued
				return testSolution(7), nil
			})
			if err != nil || sol.res.Makespan != 7 {
				t.Errorf("waiter %d: sol %v err %v", i, sol, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Wait until one goroutine owns the flight, then release it. The others
	// either find the in-flight call (shared) or, arriving later, the
	// resident entry (hit); none may run fn again.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	miss := 0
	for _, out := range outcomes {
		if out == outcomeMiss {
			miss++
		}
	}
	if miss != 1 {
		t.Errorf("%d waiters report miss, want exactly 1", miss)
	}
}

func TestCacheCapacitySmallerThanShards(t *testing.T) {
	c := newCache(2, 16) // shards clamp to entries; every shard cap >= 1
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.do(context.Background(), key, func() (*solution, error) { return testSolution(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got > 2 {
		t.Errorf("len = %d, want <= 2", got)
	}
}

func TestNilCacheBypasses(t *testing.T) {
	var c *cache
	calls := 0
	for i := 0; i < 3; i++ {
		_, out, err := c.do(context.Background(), "k", func() (*solution, error) { calls++; return testSolution(1), nil })
		if err != nil || out != outcomeMiss {
			t.Fatalf("nil cache: outcome %v err %v", out, err)
		}
	}
	if calls != 3 || c.len() != 0 {
		t.Errorf("calls %d len %d, want 3 and 0", calls, c.len())
	}
}
