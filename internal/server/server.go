// Package server implements malschedd's HTTP serving layer: a JSON API over
// a shared malsched.Pool, a content-addressed result cache, and adaptive
// solver routing.
//
//	POST /v1/solve     — solve one instance synchronously
//	POST /v1/batch     — solve many instances, one response per instance
//	POST /v1/jobs      — submit an async solve; returns a job id
//	GET  /v1/jobs/{id} — poll an async job
//	GET  /healthz      — liveness + pool size
//	GET  /metrics      — expvar-style JSON counters
//
// plus the v2 API (see v2.go): /v2/solve, /v2/batch, /v2/jobs,
// /v2/jobs/{id} and /v2/solutions/{fp}, which add instance identity in
// responses, quality tiers, delta re-solve from a cached base, and
// refine-behind of deadline-downgraded answers. The v1 endpoints are a
// thin compatibility shim over the same serving core with the v2
// behaviours switched off.
//
// Every request funnels through one Pool whose workers own reusable
// cross-phase solver workspaces, so the daemon solves with warm buffers no
// matter which HTTP connection a request arrives on. Results are cached
// content-addressed: the cache key is Instance.Fingerprint (stable under
// task renaming, edge reordering and sub-tolerance float noise) combined
// with the routed algorithm and parameter overrides, fronted by per-key
// singleflight so a thundering herd of identical submissions costs one
// solve. Requests that do not pin an algorithm are routed by instance size
// and deadline (see router.go), and the response reports which path ran.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"malsched"
)

// Config sizes the server. The zero value gives sane defaults throughout.
type Config struct {
	// Workers is the solver pool size; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries bounds the resident solution cache; 0 means the default
	// (4096), negative disables caching entirely.
	CacheEntries int
	// CacheShards spreads the cache over independently locked shards;
	// <= 0 means the default (16).
	CacheShards int
	// MaxJobs bounds async jobs on both ends: at most this many in flight
	// (further submissions get 503) and at most this many finished jobs
	// queryable; <= 0 means the default (1024).
	MaxJobs int
	// MaxBodyBytes caps request bodies; oversized requests get a JSON 413.
	// 0 means the default (256 MiB, room for ~10^5-task instances; a
	// million-task instance serialises past 1 GiB and should be raised
	// explicitly), negative disables the cap.
	MaxBodyBytes int64
	// MaxPending bounds how many requests may wait for a solver worker at
	// once (the admission queue past the cache); requests beyond it are
	// shed with 429 + Retry-After instead of queueing without bound.
	// <= 0 means the default (1024).
	MaxPending int
}

const (
	defaultCacheEntries = 4096
	defaultCacheShards  = 16
	defaultMaxJobs      = 1024
	defaultMaxBody      = 256 << 20
	defaultMaxPending   = 1024

	// statusClientClosedRequest is nginx's non-standard code for "the
	// client went away before the response": the right label for a solve
	// aborted by its own request context, and distinct from every
	// server-fault status the ladder is meant to prevent.
	statusClientClosedRequest = 499

	// retryAfterSeconds is the Retry-After hint on every shed response
	// (429 and 503): pending-queue and job-slot pressure drains at solve
	// speed, so "shortly" is the honest answer.
	retryAfterSeconds = "1"
)

// Server is the serving layer. Create with New, expose via Handler, release
// the solver pool with Close.
type Server struct {
	pool    *malsched.Pool
	cache   *cache
	jobs    *jobStore
	mux     *http.ServeMux
	start   time.Time
	maxBody int64 // request body cap; <= 0 means unlimited

	// pending is the admission queue: a slot is held from "this request
	// needs a solve" to "its solve finished", bounding queued work.
	pending chan struct{}
	// draining flips /readyz to 503 ahead of shutdown so load balancers
	// stop routing here while in-flight requests finish (/healthz stays
	// green: the process is alive, just not accepting).
	draining atomic.Bool

	stats        *expvar.Map
	cacheEntries expvar.Int // sampled into stats on /metrics
	// forms aggregates per-formulation phase-1 effort for the /metrics
	// "formulations" section (see metrics.go).
	forms formulationMetrics
}

// New starts a server (and its solver pool) with the given configuration.
func New(cfg Config) *Server {
	entries, shards := cfg.CacheEntries, cfg.CacheShards
	if entries == 0 {
		entries = defaultCacheEntries
	}
	if shards <= 0 {
		shards = defaultCacheShards
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = defaultMaxBody
	}
	maxPending := cfg.MaxPending
	if maxPending <= 0 {
		maxPending = defaultMaxPending
	}
	s := &Server{
		pool:    malsched.NewPool(cfg.Workers),
		jobs:    newJobStore(maxJobs),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		maxBody: maxBody,
		pending: make(chan struct{}, maxPending),
		stats:   new(expvar.Map).Init(),
	}
	if entries > 0 {
		s.cache = newCache(entries, shards)
	}
	s.stats.Set("cache_entries", &s.cacheEntries)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("POST /v2/solve", s.handleSolveV2)
	s.mux.HandleFunc("POST /v2/batch", s.handleBatchV2)
	s.mux.HandleFunc("POST /v2/jobs", s.handleJobSubmitV2)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v2/solutions/{fp}", s.handleSolutionProbe)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers returns the solver pool size.
func (s *Server) Workers() int { return s.pool.Workers() }

// Stats exposes the server's counters (for publishing under expvar).
func (s *Server) Stats() expvar.Var { return s.stats }

// Close shuts down the solver pool. In-flight solves complete; requests
// arriving afterwards fail.
func (s *Server) Close() { s.pool.Close() }

// SetDraining flips the /readyz answer. Call with true before shutting the
// HTTP listener down so load balancers drain traffic away first; /healthz
// is unaffected.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// SolveRequest is the body of POST /v1/solve and POST /v1/jobs.
type SolveRequest struct {
	// Instance is the scheduling problem, in malsched.Instance JSON form.
	Instance *malsched.Instance `json:"instance"`
	// Algo pins the algorithm: paper, ltw, greedy, seq or full. Empty or
	// "auto" lets the server route by size and deadline.
	Algo string `json:"algo,omitempty"`
	// DeadlineMS is the client's latency budget in milliseconds; the router
	// downgrades to cheaper algorithms when the estimate overshoots it.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Rho / Mu override the paper algorithm's parameters (WithRho/WithMu).
	Rho *float64 `json:"rho,omitempty"`
	Mu  *int     `json:"mu,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// IncludeSchedule adds the per-task schedule to the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// ScheduleItem is one scheduled task in a response.
type ScheduleItem struct {
	Task     int     `json:"task"`
	Name     string  `json:"name,omitempty"`
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Alloc    int     `json:"alloc"`
}

// SolveResponse is the body answering a solve (directly, per batch entry,
// or inside a finished job).
type SolveResponse struct {
	Makespan    float64 `json:"makespan"`
	LowerBound  float64 `json:"lower_bound,omitempty"`
	Guarantee   float64 `json:"guarantee,omitempty"`
	ProvenRatio float64 `json:"proven_ratio,omitempty"`
	Alloc       []int   `json:"alloc"`
	// Algo is the algorithm that actually ran; Routed says whether the
	// server chose it (true) or the request pinned it (false).
	Algo        string `json:"algo"`
	Routed      bool   `json:"routed"`
	RouteReason string `json:"route_reason,omitempty"`
	// Cache is hit, shared (waited on an identical in-flight solve), miss,
	// or bypass. ColdMS is the originating solve's duration — on a hit,
	// the time the cache saved.
	Cache     string         `json:"cache"`
	ElapsedMS float64        `json:"elapsed_ms"`
	ColdMS    float64        `json:"cold_ms"`
	Schedule  []ScheduleItem `json:"schedule,omitempty"`
	// Degraded marks an answer produced by a fallback rung after the
	// primary solver failed recoverably; DegradedReason is the failure
	// class that triggered the ladder (iteration-limit, singular-basis,
	// nan-taint, infeasible, solver-panic). Both omitted on the normal
	// path, so pre-existing responses are byte-identical.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// errBadRequest marks errors caused by the request (vs. server failures).
var errBadRequest = errors.New("bad request")

// errOverloaded rejects solves past the admission bound (HTTP 429 with a
// Retry-After hint): the pending queue is full, so queueing more work would
// only grow latency without bound.
var errOverloaded = errors.New("server: overloaded, pending queue full, retry later")

// errShedDeadline drops requests whose client deadline expired while they
// waited for a worker (HTTP 503 with Retry-After): the client has already
// given up on this answer, so solving it would waste a worker.
var errShedDeadline = errors.New("server: deadline expired while queued, request shed")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// decodeBody decodes the request body into v under the server's body cap,
// writing the error response (JSON 413 on overflow, 400 otherwise) itself
// when it reports false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, body, s.maxBody)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// solveOne runs one logical v1 solve. It is a thin shim over the shared
// serving core in legacy mode (see serve in v2.go): same routing, cache
// and pool path as /v2, with the v2-only behaviours — quality-slot reads,
// LP state capture, refine-behind — switched off so responses stay
// byte-identical to the pre-v2 server.
func (s *Server) solveOne(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	v2 := &SolveRequestV2{
		Instance: req.Instance, Algo: req.Algo, DeadlineMS: req.DeadlineMS,
		Rho: req.Rho, Mu: req.Mu, NoCache: req.NoCache, IncludeSchedule: req.IncludeSchedule,
	}
	resp, err := s.serve(ctx, v2, true)
	if err != nil {
		return nil, err
	}
	return &resp.SolveResponse, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_solve", 1)
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, err := s.solveOne(r.Context(), &req)
	if err != nil {
		s.solveError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the body of POST /v1/batch: shared options applied to
// every instance.
type BatchRequest struct {
	Instances       []*malsched.Instance `json:"instances"`
	Algo            string               `json:"algo,omitempty"`
	DeadlineMS      float64              `json:"deadline_ms,omitempty"`
	Rho             *float64             `json:"rho,omitempty"`
	Mu              *int                 `json:"mu,omitempty"`
	NoCache         bool                 `json:"no_cache,omitempty"`
	IncludeSchedule bool                 `json:"include_schedule,omitempty"`
}

// BatchItem is one instance's outcome: exactly one of Result and Error set.
type BatchItem struct {
	Result *SolveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/batch, order-preserving: Results[i]
// belongs to Instances[i].
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_batch", 1)
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, len(req.Instances))}
	// Bounded fan-out: one feeder goroutine per pool worker draining a
	// shared index counter, instead of one goroutine per instance — a
	// single large batch used to spawn tens of thousands of goroutines
	// ahead of the worker pool, each pinning its instance and stack while
	// parked on the pool queue.
	workers := s.pool.Workers()
	if workers > len(req.Instances) {
		workers = len(req.Instances)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Instances) {
					return
				}
				one := SolveRequest{
					Instance: req.Instances[i], Algo: req.Algo, DeadlineMS: req.DeadlineMS,
					Rho: req.Rho, Mu: req.Mu, NoCache: req.NoCache, IncludeSchedule: req.IncludeSchedule,
				}
				res, err := s.solveOne(r.Context(), &one)
				if err != nil {
					resp.Results[i].Error = err.Error()
				} else {
					resp.Results[i].Result = res
				}
			}
		}()
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, resp)
}

// JobAccepted answers POST /v1/jobs.
type JobAccepted struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_jobs", 1)
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Instance == nil {
		s.httpError(w, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	id, err := s.jobs.create(time.Now())
	if errors.Is(err, errJobsBusy) {
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err)
		return
	}
	go func() {
		s.jobs.setRunning(id)
		// Background context by contract: an accepted job must complete
		// even after its submitter disconnects.
		//malsched:detach accepted async job outlives its submitter (202 contract)
		res, err := s.solveOne(context.Background(), &req)
		s.jobs.finish(id, res, err, time.Now())
	}()
	s.writeJSON(w, http.StatusAccepted, JobAccepted{ID: id, URL: "/v1/jobs/" + id})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.stats.Add("requests_jobs_get", 1)
	st, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"workers":        s.pool.Workers(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz answers readiness probes: 200 while the server accepts new
// work, 503 once SetDraining(true) flips it (liveness, /healthz, is a
// separate question — a draining process is alive but should get no new
// traffic).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Draining is a shed like any other: the Retry-After hint tells
		// probes and load balancers when to look again (found by
		// malschedvet's retryafter analyzer — every 503 carries the hint).
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"workers": s.pool.Workers(),
	})
}

// solveError maps a serve error onto the right status code. Recoverable
// solver failures never reach here (the degradation ladder answers them);
// what remains is client faults (400), load shedding (429/503 with a
// Retry-After hint), the client's own cancellation or deadline (499/504),
// and genuine server faults (500).
func (s *Server) solveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBadRequest):
		s.httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errShedDeadline), errors.Is(err, errJobsBusy):
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		s.httpError(w, statusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.httpError(w, http.StatusGatewayTimeout, err)
	default:
		s.httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, status int, err error) {
	s.stats.Add("errors_total", 1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing useful left to do but count it.
		s.stats.Add("encode_errors", 1)
	}
}
