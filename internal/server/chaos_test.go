package server

// Deterministic chaos suite: a loadgen-shaped concurrent workload runs
// against a server with every fault point armed (seeded LU-factor
// failures, cut-worker panics, cache-shard errors, slow solves, background
// lane drops). The invariants under fire:
//
//   - the process never crashes and no request sees a 500: recoverable
//     numerical failures ride the degradation ladder, overload sheds with
//     429/503 + Retry-After;
//   - every answer served off the primary path is labeled degraded;
//   - the per-identity quality slot is tier-monotonic: a probe never
//     reports a lower tier than an earlier probe of the same fingerprint;
//   - no accepted job is lost: every 202'd job reaches a terminal state
//     (done, failed, or finished-then-evicted).
//
// The fault pattern is a pure function of -chaos.seed, so a failure
// reproduces exactly. `make chaos` runs this at 500 concurrent clients
// under -race; the default here is sized for the ordinary test suite.

import (
	"encoding/json"
	"flag"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"malsched"
	"malsched/internal/allot"
	"malsched/internal/engine"
	"malsched/internal/faultinject"
	"malsched/internal/flow"
	"malsched/internal/lp"
)

var (
	chaosClients  = flag.Int("chaos.clients", 40, "concurrent clients in TestChaos")
	chaosRequests = flag.Int("chaos.requests", 4, "requests per chaos client")
	chaosSeed     = flag.Int64("chaos.seed", 1, "fault-injection seed for TestChaos")
)

func TestChaos(t *testing.T) {
	inj := faultinject.New(*chaosSeed).
		Set(faultinject.LUFactorFail, 0.05).
		Set(faultinject.CutWorkerPanic, 0.01).
		Set(faultinject.CacheShardError, 0.02).
		Set(faultinject.SlowSolve, 0.02).
		Set(faultinject.BGLaneDrop, 0.10).
		// Consulted once per sweep event, so even a low rate stalls a
		// fair share of the mincut-pinned solves below.
		Set(faultinject.FlowSweepStall, 0.01)

	lp.FaultLUFactor = inj.Hook(faultinject.LUFactorFail)
	allot.FaultCutWorker = inj.Hook(faultinject.CutWorkerPanic)
	flow.FaultSweep = inj.Hook(faultinject.FlowSweepStall)
	FaultCacheShard = inj.Hook(faultinject.CacheShardError)
	slow := inj.Hook(faultinject.SlowSolve)
	engine.FaultSlowSolve = func() time.Duration {
		if slow() {
			return 2 * time.Millisecond
		}
		return 0
	}
	engine.FaultBGDrop = inj.Hook(faultinject.BGLaneDrop)
	t.Cleanup(func() {
		lp.FaultLUFactor = nil
		allot.FaultCutWorker = nil
		flow.FaultSweep = nil
		FaultCacheShard = nil
		engine.FaultSlowSolve = nil
		engine.FaultBGDrop = nil
	})

	_, ts := newTestServer(t, Config{Workers: 4, MaxPending: 64, MaxJobs: 64})

	// A small pool of distinct instances: sizes straddle the dense
	// fallback cap so the ladder's dense and greedy rungs both run.
	instances := []*malsched.Instance{
		loadTestdata(t, "chain_n10_m4.json"),
		loadTestdata(t, "erdos_n16_m16.json"),
		generatedInstance(t, 64, 8),
		generatedInstance(t, 96, 16),
		generatedInstance(t, denseFallbackMaxTasks+40, 8),
	}

	var (
		mu        sync.Mutex
		jobs      []string           // accepted job URLs
		bestTier  = map[string]int{} // fingerprint -> highest tier seen via probes
		probeSer  = map[string]*sync.Mutex{}
		responses int
		degraded  int
		shed      int
	)
	rank := map[string]int{"greedy": 1, "paper": 2}

	// Probes of the same fingerprint are serialized (per-fp lock held
	// across the GET): the quality slot is tier-monotonic on the server,
	// but two overlapping probes can read it in one order and report in
	// the other, and that observation-order race would look like a
	// regression. Serial probes observe the slot in read order, so the
	// monotonicity check below is exact. Distinct fingerprints still
	// probe concurrently.
	probe := func(tb testing.TB, fp string) {
		if fp == "" {
			return
		}
		mu.Lock()
		ser := probeSer[fp]
		if ser == nil {
			ser = &sync.Mutex{}
			probeSer[fp] = ser
		}
		mu.Unlock()
		ser.Lock()
		defer ser.Unlock()
		resp, err := http.Get(ts.URL + "/v2/solutions/" + fp)
		if err != nil {
			tb.Errorf("probe: %v", err)
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return // not cached yet, or a cache-shard fault ate the read
		}
		if resp.StatusCode != http.StatusOK {
			tb.Errorf("probe %s: status %d: %s", fp, resp.StatusCode, data)
			return
		}
		var p SolutionProbe
		if err := json.Unmarshal(data, &p); err != nil {
			tb.Errorf("probe %s: %v", fp, err)
			return
		}
		r, ok := rank[p.Tier]
		if !ok {
			tb.Errorf("probe %s: unknown tier %q", fp, p.Tier)
			return
		}
		mu.Lock()
		if prev := bestTier[fp]; r < prev {
			tb.Errorf("tier regression for %s: probe saw %q after tier rank %d", fp, p.Tier, prev)
		} else {
			bestTier[fp] = r
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < *chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*7919 + *chaosSeed))
			for i := 0; i < *chaosRequests; i++ {
				in := instances[rng.Intn(len(instances))]
				req := SolveRequestV2{Instance: in}
				pinnedPaper := false
				switch rng.Intn(5) {
				case 0:
					req.Algo = "paper"
					pinnedPaper = true
				case 1:
					req.Algo = "greedy"
				case 2:
					req.DeadlineMS = float64(1 + rng.Intn(50))
				case 3:
					// Pin the parametric min-cut formulation so the armed
					// flow-sweep fault point actually sits on the solve
					// path; its stalls must ride the ladder like any other
					// recoverable failure.
					req.Formulation = "mincut"
				}
				async := rng.Intn(4) == 0

				url := ts.URL + "/v2/solve"
				if async {
					url = ts.URL + "/v2/jobs"
				}
				resp, data := postJSON(t, url, req)
				switch resp.StatusCode {
				case http.StatusOK:
					var out SolveResponseV2
					if err := json.Unmarshal(data, &out); err != nil {
						t.Errorf("chaos response: %v: %s", err, data)
						return
					}
					if out.Makespan <= 0 {
						t.Errorf("chaos answer with makespan %v: %s", out.Makespan, data)
					}
					if pinnedPaper && out.Algo != "paper" && !out.Degraded {
						t.Errorf("pinned paper answered by %q without a degraded label: %s", out.Algo, data)
					}
					if out.Degraded && out.DegradedReason == "" {
						t.Errorf("degraded answer without a reason: %s", data)
					}
					mu.Lock()
					responses++
					if out.Degraded {
						degraded++
					}
					mu.Unlock()
					probe(t, out.Fingerprint)
				case http.StatusAccepted:
					var acc JobAccepted
					if err := json.Unmarshal(data, &acc); err != nil {
						t.Errorf("chaos accept: %v: %s", err, data)
						return
					}
					mu.Lock()
					jobs = append(jobs, acc.URL)
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if ra := resp.Header.Get("Retry-After"); ra == "" {
						t.Errorf("shed %d without Retry-After", resp.StatusCode)
					}
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					// In particular: never a 500. Recoverable numerical
					// failures must have been absorbed by the ladder.
					t.Errorf("chaos request: status %d: %s", resp.StatusCode, data)
				}
			}
		}(c)
	}
	wg.Wait()

	// Every accepted job reaches a terminal state; a 404 is a job that
	// finished and was evicted, which is terminal too. The drain budget
	// scales with the client count: a 500-client -race run leaves a
	// deep backlog of accepted jobs behind a 4-worker pool.
	deadline := time.Now().Add(60*time.Second + time.Duration(*chaosClients)*500*time.Millisecond)
	for _, url := range jobs {
		for {
			resp, err := http.Get(ts.URL + url)
			if err != nil {
				t.Fatal(err)
			}
			var st JobStatus
			jsonErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				break
			}
			if resp.StatusCode != http.StatusOK || jsonErr != nil {
				t.Fatalf("chaos job poll %s: status %d, err %v", url, resp.StatusCode, jsonErr)
			}
			if st.State == JobDone || st.State == JobFailed {
				if st.State == JobFailed {
					// A failed job is terminal — not lost — but under
					// chaos a failure must still be a classified one the
					// ladder could not absorb, never silent. Record it.
					t.Logf("chaos job %s failed: %s", st.ID, st.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("chaos job %s stuck in state %q", url, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Final probe sweep re-checks monotonicity after the dust settles.
	mu.Lock()
	fps := make([]string, 0, len(bestTier))
	for fp := range bestTier {
		fps = append(fps, fp)
	}
	mu.Unlock()
	for _, fp := range fps {
		probe(t, fp)
	}

	for _, name := range []string{
		faultinject.LUFactorFail, faultinject.CutWorkerPanic,
		faultinject.CacheShardError, faultinject.SlowSolve,
		faultinject.FlowSweepStall,
	} {
		t.Logf("fault %-18s fired %d/%d", name, inj.Fired(name), inj.Calls(name))
	}
	m := metrics(t, ts)
	for _, k := range []string{
		"degrade_attempts", "degrade_dense", "degrade_greedy",
		"degrade_exhausted", "shed_queue_full", "shed_deadline",
	} {
		t.Logf("metric %-18s %v", k, m[k])
	}
	t.Logf("chaos: %d sync responses (%d degraded), %d shed, %d jobs", responses, degraded, shed, len(jobs))
	if responses+len(jobs) == 0 {
		t.Fatal("chaos run produced no accepted work at all")
	}
	if inj.Calls(faultinject.LUFactorFail) == 0 {
		t.Error("LU-factor fault point never consulted; the chaos run exercised nothing")
	}
}
