package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"malsched"
	"malsched/internal/gen"
)

// benchInstance is a serving-sized instance (the load mix of E12).
func benchInstance(b *testing.B) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(411))
	g := gen.Layered(12, 8, 2, rng) // n = 96 tasks
	in := &malsched.Instance{M: 16, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), 16, rng)}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(v) {
			in.Edges = append(in.Edges, [2]int{v, w})
		}
	}
	raw, err := json.Marshal(SolveRequest{Instance: in})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func serveOnce(b *testing.B, h http.Handler, body string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkServe measures the request path of POST /v1/solve end to end
// (decode, route, cache, pool solve, encode) without network or syscalls:
// solve_cold is the cache-bypassing full solve, solve_hit the
// content-addressed hit path, solve_hit_parallel the hit path under
// GOMAXPROCS-way client concurrency. The gap between cold and hit is the
// cache's value; E12 in EXPERIMENTS.md records it.
func BenchmarkServe(b *testing.B) {
	body := string(benchInstance(b))
	coldBody := strings.Replace(body, `{"instance"`, `{"no_cache":true,"instance"`, 1)

	b.Run("solve_cold", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, coldBody) // warm the worker's workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, coldBody)
		}
	})

	b.Run("solve_hit", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, body) // populate the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, body)
		}
	})

	b.Run("solve_hit_parallel", func(b *testing.B) {
		s := New(Config{})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, body)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				serveOnce(b, h, body)
			}
		})
	})
}

// counter reads one of the server's expvar counters (0 when never touched).
func counter(s *Server, name string) float64 {
	if v, ok := s.stats.Get(name).(*expvar.Int); ok {
		return float64(v.Value())
	}
	return 0
}

func serveOnceV2(b *testing.B, h http.Handler, body string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v2/solve", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkServeDelta measures the v2 delta re-solve path end to end at
// the scale the API contract targets (n = 500 tasks): "warm" edits 4
// tasks of a cached base (within the k = 8 budget, so the captured LP
// basis transplants), "cold" edits k+1 tasks (over budget, full re-solve
// through the same endpoint). Every request carries no_cache so each
// iteration really solves; the delta_warm/op and delta_cold/op metrics
// certify which path ran (benchgate shows them next to the timings). The
// warm/cold ns/op gap is the delta path's value; the contract wants >= 5x.
func BenchmarkServeDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(412))
	g := gen.Layered(25, 20, 2, rng) // n = 500 tasks
	in := &malsched.Instance{M: 32, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), 32, rng)}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(v) {
			in.Edges = append(in.Edges, [2]int{v, w})
		}
	}

	// deltaBody edits `count` distinct tasks, scaled by a salt-dependent
	// factor so successive iterations address different fingerprints.
	deltaBody := func(baseFP string, count, salt int) string {
		edits := make([]TaskEdit, count)
		factor := 1 + float64(salt%89+1)/1000
		for e := range edits {
			task := (salt + e) % len(in.Tasks)
			times := make([]float64, len(in.Tasks[task].Times))
			for i, v := range in.Tasks[task].Times {
				times[i] = v * factor
			}
			edits[e] = TaskEdit{Task: task, Times: times}
		}
		raw, err := json.Marshal(SolveRequestV2{Base: baseFP, Edits: edits, Algo: "paper", NoCache: true})
		if err != nil {
			b.Fatal(err)
		}
		return string(raw)
	}

	run := func(b *testing.B, count int) {
		s := New(Config{Workers: 1})
		defer s.Close()
		h := s.Handler()

		raw, err := json.Marshal(SolveRequestV2{Instance: in, Algo: "paper"})
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v2/solve", strings.NewReader(string(raw))))
		if rec.Code != http.StatusOK {
			b.Fatalf("base solve: status %d: %s", rec.Code, rec.Body.Bytes())
		}
		var base SolveResponseV2
		if err := json.Unmarshal(rec.Body.Bytes(), &base); err != nil {
			b.Fatal(err)
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnceV2(b, h, deltaBody(base.Fingerprint, count, i))
		}
		b.StopTimer()
		b.ReportMetric(counter(s, "delta_warm")/float64(b.N), "delta_warm/op")
		b.ReportMetric(counter(s, "delta_cold")/float64(b.N), "delta_cold/op")
	}

	b.Run(fmt.Sprintf("warm_edits4_n%d", len(in.Tasks)), func(b *testing.B) { run(b, 4) })
	b.Run(fmt.Sprintf("cold_edits%d_n%d", maxDeltaEdits+1, len(in.Tasks)), func(b *testing.B) { run(b, maxDeltaEdits+1) })
}
