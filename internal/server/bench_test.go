package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"malsched"
	"malsched/internal/gen"
)

// benchInstance is a serving-sized instance (the load mix of E12).
func benchInstance(b *testing.B) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(411))
	g := gen.Layered(12, 8, 2, rng) // n = 96 tasks
	in := &malsched.Instance{M: 16, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), 16, rng)}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(v) {
			in.Edges = append(in.Edges, [2]int{v, w})
		}
	}
	raw, err := json.Marshal(SolveRequest{Instance: in})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func serveOnce(b *testing.B, h http.Handler, body string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// BenchmarkServe measures the request path of POST /v1/solve end to end
// (decode, route, cache, pool solve, encode) without network or syscalls:
// solve_cold is the cache-bypassing full solve, solve_hit the
// content-addressed hit path, solve_hit_parallel the hit path under
// GOMAXPROCS-way client concurrency. The gap between cold and hit is the
// cache's value; E12 in EXPERIMENTS.md records it.
func BenchmarkServe(b *testing.B) {
	body := string(benchInstance(b))
	coldBody := strings.Replace(body, `{"instance"`, `{"no_cache":true,"instance"`, 1)

	b.Run("solve_cold", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, coldBody) // warm the worker's workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, coldBody)
		}
	})

	b.Run("solve_hit", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, body) // populate the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, body)
		}
	})

	b.Run("solve_hit_parallel", func(b *testing.B) {
		s := New(Config{})
		defer s.Close()
		h := s.Handler()
		serveOnce(b, h, body)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				serveOnce(b, h, body)
			}
		})
	})
}
