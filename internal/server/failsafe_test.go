package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"malsched"
	"malsched/internal/engine"
	"malsched/internal/gen"
	"malsched/internal/lp"
)

// generatedInstance builds a layered instance with roughly n tasks on m
// machines (n is rounded to the layer grid).
func generatedInstance(t *testing.T, n, m int) *malsched.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(m)))
	g := gen.Layered((n+7)/8, 8, 2, rng)
	in := &malsched.Instance{M: m, Tasks: gen.Tasks(gen.FamilyMixed, g.N(), m, rng)}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(v) {
			in.Edges = append(in.Edges, [2]int{v, w})
		}
	}
	return in
}

// withFault installs a fault hook for the duration of the test. The hooks
// are package globals, so tests using them must not run in parallel (none
// in this package do).
func withLUFault(t *testing.T, fn func() bool) {
	t.Helper()
	lp.FaultLUFactor = fn
	t.Cleanup(func() { lp.FaultLUFactor = nil })
}

func withSlowSolve(t *testing.T, d time.Duration) {
	t.Helper()
	engine.FaultSlowSolve = func() time.Duration { return d }
	t.Cleanup(func() { engine.FaultSlowSolve = nil })
}

// A sparse-simplex failure on a small instance must fall back to the dense
// oracle: same paper-tier answer, labeled degraded, never a 500.
func TestDegradeDenseRungOnLUFailure(t *testing.T) {
	withLUFault(t, func() bool { return true })
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")

	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	var out SolveResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedReason != "singular-basis" {
		t.Fatalf("degraded=%v reason=%q, want true/singular-basis: %s", out.Degraded, out.DegradedReason, data)
	}
	if out.Algo != "paper" || out.Tier != "paper" {
		t.Fatalf("dense rung should keep the paper tier, got algo=%s tier=%s", out.Algo, out.Tier)
	}
	if out.Makespan <= 0 {
		t.Fatalf("degraded answer has no makespan: %s", data)
	}
}

// Beyond the dense rung's size cap the ladder lands on greedy; the answer
// must say so (algo greedy, degraded label) rather than pretend.
func TestDegradeGreedyRungOnLargeInstance(t *testing.T) {
	withLUFault(t, func() bool { return true })
	s, ts := newTestServer(t, Config{})
	in := generatedInstance(t, denseFallbackMaxTasks+40, 8)

	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	var out SolveResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Algo != "greedy" || out.Tier != "greedy" {
		t.Fatalf("want degraded greedy answer, got degraded=%v algo=%s tier=%s", out.Degraded, out.Algo, out.Tier)
	}
	if got := metrics(t, ts)["degrade_greedy"]; got != 1 {
		t.Fatalf("degrade_greedy metric = %v, want 1", got)
	}

	// The degraded answer must not pollute the exact paper key: once the
	// fault clears, the same pinned request re-solves and comes back
	// undegraded (a cache hit here would mean the greedy fallback had
	// been stored under the paper algorithm's key).
	lp.FaultLUFactor = nil
	resp, data = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status %d: %s", resp.StatusCode, data)
	}
	var clean SolveResponseV2
	if err := json.Unmarshal(data, &clean); err != nil {
		t.Fatal(err)
	}
	if clean.Degraded || clean.Algo != "paper" {
		t.Fatalf("post-fault answer still degraded: %s", data)
	}
	_ = s
}

// A once-only LU failure must never surface as a 500: either the solver's
// own repair machinery absorbs it, or the ladder serves a labeled degraded
// answer. Either way the client gets a 200.
func TestTransientLUFailureNeverFiveHundred(t *testing.T) {
	var mu sync.Mutex
	fired := false
	withLUFault(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if fired {
			return false
		}
		fired = true
		return true
	})
	_, ts := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	resp, data := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Instance: in, Algo: "paper"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
}

func TestReadyzFlipsDuringDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", got)
	}
	s.SetDraining(true)
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", got)
	}
	s.SetDraining(false)
	if got := get(); got != http.StatusOK {
		t.Fatalf("/readyz after drain cleared: %d", got)
	}
	// /healthz answers 200 regardless: liveness is a different question.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
}

// With the pending queue full, additional solve-needing requests get 429 +
// Retry-After instead of queueing without bound.
func TestAdmissionQueueFullSheds429(t *testing.T) {
	withSlowSolve(t, 300*time.Millisecond)
	_, ts := newTestServer(t, Config{Workers: 1, MaxPending: 1})
	in := loadTestdata(t, "chain_n10_m4.json")

	// Occupy the only pending slot (and the only worker).
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, NoCache: true})
	}()
	time.Sleep(100 * time.Millisecond) // the slot is held during the slow solve

	resp, data := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, NoCache: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	<-done
	if got := metrics(t, ts)["shed_queue_full"]; got < 1 {
		t.Fatalf("shed_queue_full metric = %v, want >= 1", got)
	}
}

// A singleflight waiter whose leader was cancelled retries; if its own
// deadline budget burned away while it waited, the retry sheds it (503 +
// Retry-After) instead of solving for a client that has given up.
func TestDeadlineShedAfterWaitingOutALeader(t *testing.T) {
	withSlowSolve(t, 300*time.Millisecond)
	_, ts := newTestServer(t, Config{Workers: 1})
	in := loadTestdata(t, "chain_n10_m4.json")
	body, err := json.Marshal(SolveRequest{Instance: in, Algo: "paper"})
	if err != nil {
		t.Fatal(err)
	}

	// Leader: same exact key, cancelled mid-solve.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, _ := http.NewRequestWithContext(leaderCtx, "POST", ts.URL+"/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		http.DefaultClient.Do(req) // error expected: we cancel it
	}()
	time.Sleep(50 * time.Millisecond) // leader holds the flight
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancelLeader()
	}()

	// Waiter: identical request, 1ms app-level deadline. It waits out the
	// leader (~300ms), retries, and the retry sheds it.
	req := SolveRequest{Instance: in, Algo: "paper", DeadlineMS: 1}
	resp, data := postJSON(t, ts.URL+"/v1/solve", req)
	<-leaderDone
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 503 without Retry-After header")
	}
	if got := metrics(t, ts)["shed_deadline"]; got < 1 {
		t.Fatalf("shed_deadline metric = %v, want >= 1", got)
	}
}

// solveError's status mapping, exercised directly: every error class the
// serving core can return maps to its contractual status code and headers.
func TestSolveErrorStatusMapping(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []struct {
		err        error
		status     int
		retryAfter bool
	}{
		{badRequestf("nope"), http.StatusBadRequest, false},
		{errOverloaded, http.StatusTooManyRequests, true},
		{errShedDeadline, http.StatusServiceUnavailable, true},
		{errJobsBusy, http.StatusServiceUnavailable, true},
		{context.Canceled, statusClientClosedRequest, false},
		{fmt.Errorf("wrapped: %w", context.Canceled), statusClientClosedRequest, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{errors.New("mystery"), http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.solveError(w, tc.err)
		if w.Code != tc.status {
			t.Errorf("%v: status %d, want %d", tc.err, w.Code, tc.status)
		}
		if got := w.Header().Get("Retry-After") != ""; got != tc.retryAfter {
			t.Errorf("%v: Retry-After present=%v, want %v", tc.err, got, tc.retryAfter)
		}
	}
}

// A request whose context is already dead never consumes a worker and
// surfaces the context's own error.
func TestServeCancelledContext(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	in := loadTestdata(t, "chain_n10_m4.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.serve(ctx, &SolveRequestV2{Instance: in, Algo: "paper", NoCache: true}, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
