// Package flow implements Fulkerson's parametric min-cut sweep for the
// project-crashing LP: given an activity-on-arc DAG whose arcs carry a
// base duration and a convex piecewise-linear crashing curve (crash
// amount y in [0, ymax] costs rate_k per unit on piece k, rates
// non-decreasing by convexity), it traces the crashing-cost function
//
//	phi(lambda) = min{ cost(y) : every src->snk path has length <= lambda }
//
// downward from the uncrashed project length, one breakpoint at a time,
// until the caller's stopping line m*lambda = phi(lambda) is crossed.
// phi is convex piecewise linear in lambda and its one-sided derivative
// at the current lambda is exactly the value of a min cut in the "tight
// network" — the subgraph of arcs on some critical path — where a tight
// arc's forward capacity is the marginal cost of crashing it further
// (the rate of the piece above y, +inf once fully crashed or rigid) and
// its backward capacity the marginal saving of un-crashing it (the rate
// of the piece below y, 0 at y=0). A max flow on that network certifies
// the cheapest cut; shrinking lambda by delta crashes every forward-cut
// arc by delta and un-crashes every flow-carrying backward-cut arc by
// delta, which keeps all critical path lengths equal to lambda at
// minimal cost.
//
// The sweep is event-driven so a breakpoint costs O(log E), not a graph
// scan. Between two flow changes every tracked quantity moves at unit
// rate in lambda: a forward-cut arc's crash amount grows 1:1 as lambda
// falls, a backward-cut arc's shrinks 1:1, every sink-side potential
// falls 1:1, and the slack of a source-to-sink-side non-critical arc
// shrinks 1:1. So the lambda at which any arc next does something — a
// cut arc reaching the boundary of its cost piece, a slack arc going
// critical — is a constant, computed once and kept in a max-heap, while
// the quantities themselves are stored lazily (an offset against the
// lambda at which they were last materialised). Popping an event either
// re-arms the arc on its next piece, or opens residual capacity, in
// which case flow augments straight through the opened arc — source
// tree, the arc, a sink-side search beyond it — until it re-saturates;
// only when no augmenting path remains beyond the arc does the far
// component join the source side R by an incremental search that
// extends the cut in place. The crossing of
// m*lambda with phi is itself just the final event. An augmenting path
// of infinite bottleneck proves no finite cut remains: lambda has hit
// the fully-crashed critical-path length and cannot decrease further.
//
// The solver is allocation-free across solves through a reusable
// Workspace, polls a cancelflag between events, and is the engine
// behind the "mincut" phase-1 formulation in internal/allot.
package flow

import (
	"errors"
	"fmt"
	"math"

	"malsched/internal/cancelflag"
)

// ErrStalled is returned when the sweep exceeds its event or
// augmentation budget — on this pipeline that is a numerical-degeneracy
// symptom, not a model property (the breakpoint count is finite), so
// the serving layer's degradation ladder classifies it as recoverable.
var ErrStalled = errors.New("flow: parametric sweep stalled")

// FaultSweep, when armed by a test, is consulted once per event;
// returning true fails the sweep with ErrStalled. Nil in production
// (see internal/faultinject).
var FaultSweep func() bool

// Event kinds: a cut arc hitting a piece boundary of its crashing curve
// (forward = crashing, backward = un-crashing), and a slack arc from
// the source side becoming critical.
const (
	evFwdPiece int8 = iota
	evBwdPiece
	evSlack
)

// event is one pending breakpoint: at lambda = lam, arc arc does
// something. stamp invalidates the entry lazily: it must still equal
// the arc's stamp when popped.
type event struct {
	lam   float64
	arc   int32
	stamp int32
	kind  int8
}

// Workspace holds the network under construction and every scratch
// buffer of the sweep, grown geometrically and reused across solves.
// Build a network with Reset/Arc/Piece, then call Sweep. A Workspace is
// owned by one goroutine at a time.
type Workspace struct {
	// Cancel, when non-nil, is polled once per event and aborts the
	// sweep with cancelflag.ErrCanceled.
	Cancel *cancelflag.Flag

	// Lambda is the final makespan parameter after Sweep: the length of
	// the critical path under the returned crash amounts. Phi is the
	// final crashing cost including the phi0 offset passed to Sweep.
	Lambda, Phi float64
	// Breakpoints counts the parametric events processed; Augments the
	// warm augmenting paths across all flow re-solves.
	Breakpoints, Augments int

	nodes int
	tail  []int32
	head  []int32
	base  []float64

	// Crash curves, flat: arc a's pieces are rate/cum[curveOff[a]:
	// curveOff[a+1]]; cum holds the cumulative crash boundary at the END
	// of each piece (piece k spans (cum[k-1], cum[k]] from the arc's
	// local origin). curveOff[a] == curveOff[a+1] marks a rigid arc.
	curveOff []int32
	rate     []float64
	cum      []float64

	y []float64 // crash amount per arc (materialised value)
	f []float64 // flow per arc (on the tight network)
	t []float64 // node potentials (materialised value)

	// Cached marginal rates at the materialised y, refreshed on every
	// snapY: sU[a] = sigma+ (piece above, +inf when rigid/full), sD[a] =
	// sigma- (piece below, 0 at y=0). The flow searches touch every arc
	// many times per re-solve and must not walk piece cursors each time.
	sU []float64
	sD []float64

	kcur []int32 // cached curve-piece cursor per arc

	// Lazy-offset bookkeeping (see the package comment): cutDir is +1
	// for a crashing forward-cut arc, -1 for an un-crashing
	// backward-cut arc, 0 otherwise; lamEnter the lambda at which the
	// arc's y was last materialised; arcStamp invalidates heap entries;
	// inR marks source-side nodes by epoch (rEpoch increments on every
	// flow rebuild). lamMat is the lambda at which all sink-side
	// potentials were last materialised.
	cutDir   []int8
	lamEnter []float64
	arcStamp []int32
	inR      []int32
	rEpoch   int32
	heap     []event
	heapPos  []int32

	// The R tree: parent (below) holds the residual tight arc each
	// source-side node was reached through, and firstKid/nextSib/prevSib
	// its children, so a flow change can detach and repair exactly the
	// subtrees below saturated arcs instead of recomputing R by a graph
	// search. orph stamps the subtrees detached in the current repair
	// round (orphEpoch).
	firstKid  []int32
	nextSib   []int32
	prevSib   []int32
	orph      []int32
	orphEpoch int32
	orphList  []int32
	orphNodes []int32

	// Sink-side search scratch (reopen): sPar records the residual
	// tight arc each sink-side node was reached through, sSeen marks
	// visits by epoch so the arrays never need clearing per search.
	sPar   []int32
	sSeen  []int32
	sEpoch int32
	dstack []int32

	lam, lamMat float64
	phi, muv    float64
	msw         float64
	src, snk    int
	evBudget    int
	augBudget   int

	// CSR adjacency over both endpoints: entry enc = arc<<1 | dir with
	// dir 0 at the tail (forward traversal) and 1 at the head.
	adjOff []int32
	adjArc []int32

	parent []int32 // BFS: adjacency encoding used to reach node; -1 unvisited, -2 root
	queue  []int32
	indeg  []int32

	tightEps float64
	bEps     float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset clears the network and prepares for nodes nodes (0..nodes-1).
func (ws *Workspace) Reset(nodes int) {
	ws.nodes = nodes
	ws.tail = ws.tail[:0]
	ws.head = ws.head[:0]
	ws.base = ws.base[:0]
	ws.curveOff = append(ws.curveOff[:0], 0)
	ws.rate = ws.rate[:0]
	ws.cum = ws.cum[:0]
}

// Arc appends an arc from u to v with uncrashed duration dur and no
// crashing curve yet (rigid until Piece is called), returning its id.
func (ws *Workspace) Arc(u, v int, dur float64) int {
	a := len(ws.tail)
	ws.tail = append(ws.tail, int32(u))
	ws.head = append(ws.head, int32(v))
	ws.base = append(ws.base, dur)
	ws.curveOff = append(ws.curveOff, ws.curveOff[len(ws.curveOff)-1])
	return a
}

// Piece appends one crashing-cost piece to the most recently added arc:
// the next width units of crash cost rate per unit. Callers must add
// pieces in convex order (non-decreasing rates); zero or vanishing
// widths are dropped.
func (ws *Workspace) Piece(rate, width float64) {
	prev := 0.0
	if n := len(ws.cum); int32(n) > ws.curveOff[len(ws.curveOff)-2] {
		prev = ws.cum[n-1]
	}
	if width <= 1e-12*(1+prev) {
		return
	}
	ws.rate = append(ws.rate, rate)
	ws.cum = append(ws.cum, prev+width)
	ws.curveOff[len(ws.curveOff)-1]++
}

// grown returns s resized to n with unspecified contents.
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

// dur returns arc a's current (materialised) duration.
func (ws *Workspace) dur(a int32) float64 { return ws.base[a] - ws.y[a] }

// Y returns the crash amount of arc a after Sweep.
func (ws *Workspace) Y(a int) float64 { return ws.y[a] }

// CrashCost evaluates the crashing curves at the current crash amounts:
// the exact cost Phi-phi0 should equal after Sweep. Used by tests to
// audit the sweep's incremental cost accounting.
func (ws *Workspace) CrashCost() float64 {
	total := 0.0
	for a := 0; a < len(ws.tail); a++ {
		total += ws.ArcCrashCost(a)
	}
	return total
}

// ArcCrashCost evaluates arc a's crashing curve at its current crash
// amount.
func (ws *Workspace) ArcCrashCost(a int) float64 {
	y := ws.y[a]
	lo := 0.0
	total := 0.0
	for k := ws.curveOff[a]; k < ws.curveOff[a+1] && y > lo; k++ {
		hi := ws.cum[k]
		seg := y
		if seg > hi {
			seg = hi
		}
		total += ws.rate[k] * (seg - lo)
		lo = hi
	}
	return total
}

// pieceUp returns the index into rate/cum of the piece governing
// further crashing of arc a (the marginal-cost piece above y), or -1
// when the arc is rigid or fully crashed (marginal cost +inf). Uses the
// materialised y.
func (ws *Workspace) pieceUp(a int32) int32 {
	s, e := ws.curveOff[a], ws.curveOff[a+1]
	if s == e {
		return -1
	}
	lim := ws.y[a] + ws.bEps
	k := ws.kcur[a]
	if k < s {
		k = s
	} else if k > e {
		k = e
	}
	for k < e && ws.cum[k] <= lim {
		k++
	}
	for k > s && ws.cum[k-1] > lim {
		k--
	}
	ws.kcur[a] = k
	if k == e {
		return -1
	}
	return k
}

// pieceDown returns the piece governing un-crashing of arc a (the
// marginal-saving piece below y), or -1 at y=0 (nothing to undo).
func (ws *Workspace) pieceDown(a int32) int32 {
	s, e := ws.curveOff[a], ws.curveOff[a+1]
	if s == e || ws.y[a] <= ws.bEps {
		return -1
	}
	lim := ws.y[a] - ws.bEps
	k := ws.kcur[a]
	if k < s {
		k = s
	} else if k >= e {
		k = e - 1
	}
	for k < e-1 && ws.cum[k] < lim {
		k++
	}
	for k > s && ws.cum[k-1] >= lim {
		k--
	}
	return k
}

// sigUp is the marginal crashing cost of arc a at its materialised y.
func (ws *Workspace) sigUp(a int32) float64 { return ws.sU[a] }

// sigDown is the marginal un-crashing saving of arc a at its
// materialised y.
func (ws *Workspace) sigDown(a int32) float64 { return ws.sD[a] }

// refreshSig recomputes the cached marginal rates after y moved.
func (ws *Workspace) refreshSig(a int32) {
	if k := ws.pieceUp(a); k >= 0 {
		ws.sU[a] = ws.rate[k]
	} else {
		ws.sU[a] = math.Inf(1)
	}
	if k := ws.pieceDown(a); k >= 0 {
		ws.sD[a] = ws.rate[k]
	} else {
		ws.sD[a] = 0
	}
}

// buildAdj assembles the CSR adjacency over both endpoints.
func (ws *Workspace) buildAdj() {
	nA := len(ws.tail)
	ws.adjOff = grown(ws.adjOff, ws.nodes+1)
	for i := range ws.adjOff {
		ws.adjOff[i] = 0
	}
	for a := 0; a < nA; a++ {
		ws.adjOff[ws.tail[a]+1]++
		ws.adjOff[ws.head[a]+1]++
	}
	for v := 0; v < ws.nodes; v++ {
		ws.adjOff[v+1] += ws.adjOff[v]
	}
	ws.adjArc = grown(ws.adjArc, 2*nA)
	fill := grown(ws.queue, ws.nodes)
	copy(fill, ws.adjOff[:ws.nodes])
	// Backward (head-side) entries first, forward last: the sink search
	// expands the most recently discovered node, so putting forward arcs
	// last biases its DFS downstream, toward the sink, and successful
	// searches stay near path length on DAG-shaped networks.
	for a := 0; a < nA; a++ {
		ws.adjArc[fill[ws.head[a]]] = int32(a<<1 | 1)
		fill[ws.head[a]]++
	}
	for a := 0; a < nA; a++ {
		ws.adjArc[fill[ws.tail[a]]] = int32(a << 1)
		fill[ws.tail[a]]++
	}
	ws.queue = fill[:0]
}

// longestPaths computes the uncrashed longest-path potentials in
// topological order (Kahn). Returns an error on a cycle.
func (ws *Workspace) longestPaths() error {
	nA := len(ws.tail)
	ws.indeg = grown(ws.indeg, ws.nodes)
	ws.t = grown(ws.t, ws.nodes)
	for v := 0; v < ws.nodes; v++ {
		ws.indeg[v] = 0
		ws.t[v] = 0
	}
	for a := 0; a < nA; a++ {
		ws.indeg[ws.head[a]]++
	}
	q := grown(ws.queue, 0)
	for v := 0; v < ws.nodes; v++ {
		if ws.indeg[v] == 0 {
			q = append(q, int32(v))
		}
	}
	done := 0
	for qh := 0; qh < len(q); qh++ {
		u := q[qh]
		done++
		for e := ws.adjOff[u]; e < ws.adjOff[u+1]; e++ {
			enc := ws.adjArc[e]
			if enc&1 != 0 {
				continue
			}
			a := enc >> 1
			v := ws.head[a]
			if d := ws.t[u] + ws.base[a]; d > ws.t[v] {
				ws.t[v] = d
			}
			ws.indeg[v]--
			if ws.indeg[v] == 0 {
				q = append(q, v)
			}
		}
	}
	ws.queue = q[:0]
	if done != ws.nodes {
		return fmt.Errorf("%w: network is not acyclic", ErrStalled)
	}
	return nil
}

// inRf reports whether v is on the source side of the current cut.
func (ws *Workspace) inRf(v int32) bool { return ws.inR[v] == ws.rEpoch }

// tRealOut returns the real potential of a sink-side node (sink-side
// potentials fall 1:1 with lambda and are stored lazily against lamMat).
func (ws *Workspace) tRealOut(v int32) float64 { return ws.t[v] - (ws.lamMat - ws.lam) }

// join moves v onto the source side, materialising its potential
// (source-side potentials no longer move).
func (ws *Workspace) join(v int32) {
	ws.t[v] -= ws.lamMat - ws.lam
	ws.inR[v] = ws.rEpoch
}

// pnode returns the parent node of v in the R tree.
func (ws *Workspace) pnode(v int32) int32 {
	enc := ws.parent[v]
	a := enc >> 1
	if enc&1 == 0 {
		return ws.tail[a]
	}
	return ws.head[a]
}

// linkChild records v as a child of p in the R tree.
func (ws *Workspace) linkChild(p, v int32) {
	ws.prevSib[v] = -1
	ws.nextSib[v] = ws.firstKid[p]
	if c := ws.firstKid[p]; c >= 0 {
		ws.prevSib[c] = v
	}
	ws.firstKid[p] = v
}

// unlinkChild removes v from p's child list.
func (ws *Workspace) unlinkChild(p, v int32) {
	if pr := ws.prevSib[v]; pr >= 0 {
		ws.nextSib[pr] = ws.nextSib[v]
	} else {
		ws.firstKid[p] = ws.nextSib[v]
	}
	if n := ws.nextSib[v]; n >= 0 {
		ws.prevSib[n] = ws.prevSib[v]
	}
}

// realT returns the real potential of any node at the current lambda.
func (ws *Workspace) realT(v int32) float64 {
	if ws.inRf(v) {
		return ws.t[v]
	}
	return ws.t[v] - (ws.lamMat - ws.lam)
}

// matArc materialises a lazy cut arc's crash amount at the current
// lambda (snapped onto an adjacent piece boundary when within
// tolerance) and retires it from the cut bookkeeping.
func (ws *Workspace) matArc(a int32) {
	if d := ws.cutDir[a]; d != 0 {
		ws.snapY(a, ws.y[a]+float64(d)*(ws.lamEnter[a]-ws.lam))
		ws.cutDir[a] = 0
	}
	ws.arcStamp[a]++
}

// matAll materialises every lazy quantity at the current lambda.
func (ws *Workspace) matAll() {
	for v := int32(0); int(v) < ws.nodes; v++ {
		if !ws.inRf(v) {
			ws.t[v] -= ws.lamMat - ws.lam
		}
	}
	ws.lamMat = ws.lam
	for a := int32(0); int(a) < len(ws.tail); a++ {
		if ws.cutDir[a] != 0 {
			ws.matArc(a)
		}
	}
}

// advance moves lambda down to `to`, accruing crashing cost at the
// current cut rate.
func (ws *Workspace) advance(to float64) {
	if to > ws.lam {
		to = ws.lam
	}
	ws.phi += ws.muv * (ws.lam - to)
	ws.lam = to
}

// heap: an arc-indexed binary max-heap on event.lam. Each arc owns at
// most one slot (heapPos); pushing an arc that already has a pending
// entry overwrites it in place. The stamp discipline guarantees at most
// one *valid* event per arc at any time, so overwriting can only ever
// replace a stale entry — and bounding the heap at one slot per arc is
// what keeps event churn from the incremental cut repair cheap.
func (ws *Workspace) siftUp(i int) int {
	h := ws.heap
	for i > 0 {
		p := (i - 1) / 2
		if h[p].lam >= h[i].lam {
			break
		}
		h[p], h[i] = h[i], h[p]
		ws.heapPos[h[i].arc] = int32(i)
		i = p
	}
	ws.heapPos[h[i].arc] = int32(i)
	return i
}

//malsched:noalloc
func (ws *Workspace) siftDown(i int) {
	h := ws.heap
	//malsched:bounded heap sift-down walks one root-to-leaf path, depth <= log n
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l].lam > h[big].lam {
			big = l
		}
		if r < len(h) && h[r].lam > h[big].lam {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		ws.heapPos[h[i].arc] = int32(i)
		i = big
	}
	ws.heapPos[h[i].arc] = int32(i)
}

func (ws *Workspace) push(e event) {
	if i := ws.heapPos[e.arc]; i >= 0 {
		ws.heap[i] = e
		if at := ws.siftUp(int(i)); at == int(i) {
			ws.siftDown(at)
		}
		return
	}
	ws.heap = append(ws.heap, e)
	ws.siftUp(len(ws.heap) - 1)
}

// popValid pops the next still-valid event (largest lambda), skipping
// entries whose arc changed state since they were pushed.
func (ws *Workspace) popValid() (event, bool) {
	for len(ws.heap) > 0 {
		top := ws.heap[0]
		ws.heapPos[top.arc] = -1
		last := len(ws.heap) - 1
		ws.heap[0] = ws.heap[last]
		ws.heap = ws.heap[:last]
		if last > 0 {
			ws.siftDown(0)
		}
		if top.stamp == ws.arcStamp[top.arc] {
			return top, true
		}
	}
	return event{}, false
}

// enterCut puts arc a on the cut with the given direction and arms its
// next piece-boundary event. Callers materialise the arc first.
func (ws *Workspace) enterCut(a int32, dir int8) {
	ws.cutDir[a] = dir
	ws.lamEnter[a] = ws.lam
	ws.arcStamp[a]++
	if dir > 0 {
		if k := ws.pieceUp(a); k >= 0 {
			ws.push(event{ws.lam - (ws.cum[k] - ws.y[a]), a, ws.arcStamp[a], evFwdPiece})
		}
	} else {
		if k := ws.pieceDown(a); k >= 0 {
			lo := 0.0
			if k > ws.curveOff[a] {
				lo = ws.cum[k-1]
			}
			ws.push(event{ws.lam - (ws.y[a] - lo), a, ws.arcStamp[a], evBwdPiece})
		}
	}
}

// tight reports whether arc a lies on a critical path segment under the
// materialised values (valid right after matAll).
func (ws *Workspace) tight(a int32) bool {
	return ws.t[ws.head[a]]-ws.t[ws.tail[a]]-ws.dur(a) <= ws.tightEps
}

// residual returns the residual capacity of traversing arc a in the
// given direction of the tight network (materialised values).
func (ws *Workspace) residual(a int32, fwd bool) float64 {
	if fwd {
		return ws.sigUp(a) - ws.f[a]
	}
	return ws.f[a] - ws.sigDown(a)
}

// Saturation is judged relative to the rates being compared, never an
// absolute or per-arc scale: a single near-degenerate frontier segment
// produces a chord slope many orders of magnitude above its neighbours
// on the same curve, and any epsilon derived from the large rate would
// swallow real residuals on the ordinary pieces.
const satEps = 1e-10

// fwdOpen reports whether arc a has usable forward residual: the
// marginal crashing rate above y exceeds the flow by more than rounding.
func (ws *Workspace) fwdOpen(a int32) bool {
	s := ws.sigUp(a)
	if math.IsInf(s, 1) {
		return true
	}
	return s-ws.f[a] > satEps*(1+s)
}

// bwdOpen reports whether arc a has usable backward residual: the flow
// exceeds the marginal un-crashing saving below y by more than rounding.
func (ws *Workspace) bwdOpen(a int32) bool {
	return ws.f[a]-ws.sigDown(a) > satEps*(1+ws.f[a])
}

// hasFlow reports whether arc a carries numerically meaningful flow.
func (ws *Workspace) hasFlow(a int32) bool {
	return ws.f[a] > satEps*(1+ws.sigDown(a))
}

// bfs searches the tight residual network from src, recording parents.
// It returns true when snk was reached. Requires materialised values.
func (ws *Workspace) bfs() bool {
	for v := 0; v < ws.nodes; v++ {
		ws.parent[v] = -1
	}
	ws.parent[ws.src] = -2
	q := ws.queue[:0]
	q = append(q, int32(ws.src))
	for qh := 0; qh < len(q); qh++ {
		u := q[qh]
		for e := ws.adjOff[u]; e < ws.adjOff[u+1]; e++ {
			enc := ws.adjArc[e]
			a := enc >> 1
			fwd := enc&1 == 0
			var v int32
			if fwd {
				v = ws.head[a]
			} else {
				v = ws.tail[a]
			}
			if ws.parent[v] != -1 || !ws.tight(a) {
				continue
			}
			if fwd {
				if !ws.fwdOpen(a) {
					continue
				}
			} else if !ws.bwdOpen(a) {
				continue
			}
			ws.parent[v] = enc
			if int(v) == ws.snk {
				ws.queue = q
				return true
			}
			q = append(q, v)
		}
	}
	ws.queue = q
	return false
}

// rebuild re-solves the max flow warm from the current flow and rescans
// the cut. Returns done=true when an infinite-bottleneck augmenting
// path proved lambda is at its floor.
func (ws *Workspace) rebuildFull() (done bool, err error) {
	ws.matAll()
	for ws.bfs() {
		bott := math.Inf(1)
		for v := int32(ws.snk); int(v) != ws.src; {
			enc := ws.parent[v]
			a := enc >> 1
			fwd := enc&1 == 0
			if r := ws.residual(a, fwd); r < bott {
				bott = r
			}
			if fwd {
				v = ws.tail[a]
			} else {
				v = ws.head[a]
			}
		}
		if math.IsInf(bott, 1) {
			return true, nil
		}
		for v := int32(ws.snk); int(v) != ws.src; {
			enc := ws.parent[v]
			a := enc >> 1
			fwd := enc&1 == 0
			if fwd {
				ws.f[a] += bott
				v = ws.tail[a]
			} else {
				ws.f[a] -= bott
				if ws.f[a] < 0 {
					ws.f[a] = 0
				}
				v = ws.head[a]
			}
		}
		ws.muv += bott
		ws.Augments++
		if ws.augBudget--; ws.augBudget < 0 {
			return false, fmt.Errorf("%w: augmentation budget exceeded", ErrStalled)
		}
	}

	// The failed search left R in parent; rescan the crossing arcs and
	// re-arm the event heap from scratch.
	ws.rEpoch++
	for v := 0; v < ws.nodes; v++ {
		if ws.parent[v] != -1 {
			ws.inR[v] = ws.rEpoch
		}
	}
	for i := range ws.heap {
		ws.heapPos[ws.heap[i].arc] = -1
	}
	ws.heap = ws.heap[:0]
	for a := int32(0); int(a) < len(ws.tail); a++ {
		iu, iv := ws.inRf(ws.tail[a]), ws.inRf(ws.head[a])
		if iu == iv {
			continue
		}
		slack := ws.t[ws.head[a]] - ws.t[ws.tail[a]] - ws.dur(a)
		if iu {
			if slack > ws.tightEps {
				ws.arcStamp[a]++
				ws.push(event{ws.lam - slack, a, ws.arcStamp[a], evSlack})
			} else {
				ws.enterCut(a, +1)
			}
		} else if slack <= ws.tightEps && ws.hasFlow(a) {
			ws.enterCut(a, -1)
		}
	}
	for v := int32(0); int(v) < ws.nodes; v++ {
		ws.firstKid[v] = -1
	}
	for v := int32(0); int(v) < ws.nodes; v++ {
		if ws.inRf(v) && int(v) != ws.src {
			ws.linkChild(ws.pnode(v), v)
		}
	}
	return false, nil
}

// resolveIncremental restores a max flow and the exact min cut after
// grow reached the sink: the R-tree parent chain of the sink is already
// an augmenting path (tree arcs lie inside R, where potentials, crash
// amounts and flows are all frozen between re-solves, so the chain is
// still tight and residual). Augmenting can only shrink reachability —
// the reverse residuals it opens lie on the chain, inside R — so the
// repair detaches the subtrees below saturated chain arcs, re-adopts
// what is still reachable, and evicts the rest, reclassifying only the
// arcs around evicted nodes. The sweep's cost per flow change is the
// size of the disturbed region, not the graph.
func (ws *Workspace) resolveIncremental() (done bool, err error) {
	for ws.inRf(int32(ws.snk)) {
		bott := math.Inf(1)
		for v := int32(ws.snk); int(v) != ws.src; v = ws.pnode(v) {
			enc := ws.parent[v]
			if r := ws.residual(enc>>1, enc&1 == 0); r < bott {
				bott = r
			}
		}
		if math.IsInf(bott, 1) {
			return true, nil
		}
		roots := ws.orphList[:0]
		for v := int32(ws.snk); int(v) != ws.src; v = ws.pnode(v) {
			enc := ws.parent[v]
			a := enc >> 1
			if enc&1 == 0 {
				ws.f[a] += bott
				if !ws.fwdOpen(a) {
					roots = append(roots, v)
				}
			} else {
				ws.f[a] -= bott
				if ws.f[a] < 0 {
					ws.f[a] = 0
				}
				if !ws.bwdOpen(a) {
					roots = append(roots, v)
				}
			}
		}
		ws.orphList = roots
		ws.muv += bott
		ws.Augments++
		if ws.augBudget--; ws.augBudget < 0 {
			return false, fmt.Errorf("%w: augmentation budget exceeded", ErrStalled)
		}
		ws.processOrphans(roots)
	}
	return false, nil
}

// tryAdopt scans orphan v's neighbourhood for a residual tight arc from
// a still-rooted source-side node and reattaches v under it.
func (ws *Workspace) tryAdopt(v int32) bool {
	ep := ws.orphEpoch
	for e := ws.adjOff[v]; e < ws.adjOff[v+1]; e++ {
		enc := ws.adjArc[e]
		a := enc >> 1
		var u int32
		if enc&1 != 0 { // v is the head: forward residual from the tail
			u = ws.tail[a]
		} else { // v is the tail: backward residual from the head
			u = ws.head[a]
		}
		if ws.orph[u] == ep || !ws.inRf(u) || !ws.tight(a) {
			continue
		}
		if enc&1 != 0 {
			if !ws.fwdOpen(a) {
				continue
			}
		} else if !ws.bwdOpen(a) {
			continue
		}
		ws.unlinkChild(ws.pnode(v), v)
		if enc&1 != 0 {
			ws.parent[v] = a << 1
		} else {
			ws.parent[v] = a<<1 | 1
		}
		ws.linkChild(u, v)
		ws.orph[v] = ep - 1
		return true
	}
	return false
}

// processOrphans repairs the R tree after an augmentation saturated the
// parent arcs of roots: detach their subtrees, re-adopt every orphan
// that still has a residual tight arc from the rooted side (adoptions
// seed a frontier search that can pull whole subtrees back), then evict
// the rest from R and reclassify the cut arcs they expose.
func (ws *Workspace) processOrphans(roots []int32) {
	ws.orphEpoch++
	ep := ws.orphEpoch
	nodes := ws.orphNodes[:0]
	for _, r := range roots {
		if ws.orph[r] == ep {
			continue // already inside an earlier root's subtree
		}
		ws.unlinkChild(ws.pnode(r), r)
		ws.orph[r] = ep
		nodes = append(nodes, r)
		for i := len(nodes) - 1; i < len(nodes); i++ {
			for c := ws.firstKid[nodes[i]]; c >= 0; c = ws.nextSib[c] {
				ws.orph[c] = ep
				nodes = append(nodes, c)
			}
		}
	}
	ws.orphNodes = nodes

	q := ws.queue[:0]
	for _, v := range nodes {
		if ws.orph[v] == ep && ws.tryAdopt(v) {
			q = append(q, v)
		}
	}
	for qh := 0; qh < len(q); qh++ {
		u := q[qh]
		for e := ws.adjOff[u]; e < ws.adjOff[u+1]; e++ {
			enc := ws.adjArc[e]
			a := enc >> 1
			var w int32
			if enc&1 == 0 { // u is the tail: forward residual towards the head
				w = ws.head[a]
			} else { // u is the head: backward residual towards the tail
				w = ws.tail[a]
			}
			if ws.orph[w] != ep || !ws.tight(a) {
				continue
			}
			if enc&1 == 0 {
				if !ws.fwdOpen(a) {
					continue
				}
			} else if !ws.bwdOpen(a) {
				continue
			}
			ws.unlinkChild(ws.pnode(w), w)
			if enc&1 == 0 {
				ws.parent[w] = a << 1
			} else {
				ws.parent[w] = a<<1 | 1
			}
			ws.linkChild(u, w)
			ws.orph[w] = ep - 1
			q = append(q, w)
		}
	}
	ws.queue = q[:0]

	// Evict the unreachable leftovers and put their potentials back on
	// the falling sink-side clock: join materialised t[v] at the lambda
	// of the join, and re-basing against lamMat here re-attaches it to
	// the shared lazy representation (tRealOut subtracts the drift
	// accumulated since lamMat, which is exactly the amount added back).
	for _, v := range nodes {
		if ws.orph[v] != ep {
			continue
		}
		ws.inR[v] = -1
		ws.parent[v] = -1
		ws.firstKid[v] = -1
		ws.t[v] += ws.lamMat - ws.lam
	}
	for _, v := range nodes {
		if ws.orph[v] != ep {
			continue
		}
		for e := ws.adjOff[v]; e < ws.adjOff[v+1]; e++ {
			a := ws.adjArc[e] >> 1
			if ws.cutDir[a] != 0 {
				ws.matArc(a)
			} else if ws.heapPos[a] >= 0 {
				ws.arcStamp[a]++
			}
			iu, iv := ws.inRf(ws.tail[a]), ws.inRf(ws.head[a])
			if iu == iv {
				continue
			}
			slack := ws.realT(ws.head[a]) - ws.realT(ws.tail[a]) - ws.dur(a)
			if iu {
				if slack > ws.tightEps {
					ws.push(event{ws.lam - slack, a, ws.arcStamp[a], evSlack})
				} else {
					ws.enterCut(a, +1)
				}
			} else if slack <= ws.tightEps && ws.hasFlow(a) {
				ws.enterCut(a, -1)
			}
		}
	}
}

// sinkSearch looks for a residual tight path from start to the sink
// strictly outside R. Paths that re-enter R are dead ends — R is closed
// under residual reachability, so nothing inside it leads to the sink —
// and sink-side potentials all sit on the same falling clock, so raw t
// comparisons are consistent throughout.
func (ws *Workspace) sinkSearch(start int32) bool {
	ws.sEpoch++
	ep := ws.sEpoch
	ws.sSeen[start] = ep
	st := ws.dstack[:0]
	st = append(st, start)
	for len(st) > 0 {
		x := st[len(st)-1]
		st = st[:len(st)-1]
		tx := ws.t[x]
		for e := ws.adjOff[x]; e < ws.adjOff[x+1]; e++ {
			enc := ws.adjArc[e]
			a := enc >> 1
			fwd := enc&1 == 0
			var w int32
			var slack float64
			if fwd {
				w = ws.head[a]
				slack = ws.t[w] - tx - ws.dur(a)
			} else {
				w = ws.tail[a]
				slack = tx - ws.t[w] - ws.dur(a)
			}
			if ws.sSeen[w] == ep || ws.inRf(w) || slack > ws.tightEps {
				continue
			}
			if fwd {
				if !ws.fwdOpen(a) {
					continue
				}
			} else if !ws.bwdOpen(a) {
				continue
			}
			ws.sSeen[w] = ep
			ws.sPar[w] = enc
			if int(w) == ws.snk {
				ws.dstack = st
				return true
			}
			st = append(st, w)
		}
	}
	ws.dstack = st
	return false
}

// reopen handles residual capacity opening on a boundary arc whose near
// endpoint u stays in R: it augments straight through the arc — R-tree
// path src->u, the arc itself, then a sink-side search beyond it —
// until the arc re-saturates or the far side is exhausted. Only in the
// latter case does the far component genuinely join R (grow); the
// common breakpoint, where one augmenting path re-saturates the arc and
// the cut barely moves, now costs one path instead of flooding and
// evicting the whole sink side.
func (ws *Workspace) reopen(a int32, fwd bool) (done bool, err error) {
	var u, v int32
	if fwd {
		u, v = ws.tail[a], ws.head[a]
	} else {
		u, v = ws.head[a], ws.tail[a]
	}
	pathOK := false // sink-side sPar path from the previous iteration still usable
	//malsched:bounded every iteration returns or augments one path; augment counts toward the sweep budget (ErrStalled), polled by the event loop
	for {
		if fwd {
			if !ws.fwdOpen(a) {
				ws.enterCut(a, +1)
				return false, nil
			}
		} else if !ws.bwdOpen(a) {
			if ws.hasFlow(a) {
				ws.enterCut(a, -1)
			}
			return false, nil
		}
		if int(v) != ws.snk && !pathOK && !ws.sinkSearch(v) {
			// No augmenting path beyond the arc: the far component is
			// genuinely reachable now and joins R for good.
			if fwd {
				ws.parent[v] = a << 1
			} else {
				ws.parent[v] = a<<1 | 1
			}
			if ws.grow(v) {
				return ws.resolveIncremental()
			}
			return false, nil
		}
		bott := ws.residual(a, fwd)
		for w := int32(ws.snk); w != v; {
			enc := ws.sPar[w]
			aa := enc >> 1
			if enc&1 == 0 {
				if r := ws.residual(aa, true); r < bott {
					bott = r
				}
				w = ws.tail[aa]
			} else {
				if r := ws.residual(aa, false); r < bott {
					bott = r
				}
				w = ws.head[aa]
			}
		}
		for w := u; int(w) != ws.src; w = ws.pnode(w) {
			enc := ws.parent[w]
			if r := ws.residual(enc>>1, enc&1 == 0); r < bott {
				bott = r
			}
		}
		if math.IsInf(bott, 1) {
			return true, nil
		}
		if fwd {
			ws.f[a] += bott
		} else {
			ws.f[a] -= bott
			if ws.f[a] < 0 {
				ws.f[a] = 0
			}
		}
		// The path survives for the next iteration unless this augment
		// saturated one of its own arcs (tree-side bottlenecks leave the
		// sink side untouched, potentials don't move inside reopen).
		pathOK = true
		for w := int32(ws.snk); w != v; {
			enc := ws.sPar[w]
			aa := enc >> 1
			if enc&1 == 0 {
				ws.f[aa] += bott
				if !ws.fwdOpen(aa) {
					pathOK = false
				}
				w = ws.tail[aa]
			} else {
				ws.f[aa] -= bott
				if ws.f[aa] < 0 {
					ws.f[aa] = 0
				}
				if !ws.bwdOpen(aa) {
					pathOK = false
				}
				w = ws.head[aa]
			}
		}
		roots := ws.orphList[:0]
		for w := u; int(w) != ws.src; w = ws.pnode(w) {
			enc := ws.parent[w]
			aa := enc >> 1
			if enc&1 == 0 {
				ws.f[aa] += bott
				if !ws.fwdOpen(aa) {
					roots = append(roots, w)
				}
			} else {
				ws.f[aa] -= bott
				if ws.f[aa] < 0 {
					ws.f[aa] = 0
				}
				if !ws.bwdOpen(aa) {
					roots = append(roots, w)
				}
			}
		}
		ws.orphList = roots
		ws.muv += bott
		ws.Augments++
		if ws.augBudget--; ws.augBudget < 0 {
			return false, fmt.Errorf("%w: augmentation budget exceeded", ErrStalled)
		}
		if len(roots) > 0 {
			ws.processOrphans(roots)
			if !ws.inRf(u) {
				// The repair evicted the boundary node itself; its
				// classify pass already re-filed arc a.
				return false, nil
			}
		}
	}
}

// grow runs the incremental source-side search from start after
// residual capacity opened towards it (the caller records how start was
// reached in parent[start]). It extends the parent tree over every node
// it joins, classifies every arc newly crossing the cut, and returns
// true once the sink joins — the parent chain is then a ready
// augmenting path and the flow must be re-solved.
func (ws *Workspace) grow(start int32) bool {
	q := ws.queue[:0]
	ws.join(start)
	ws.linkChild(ws.pnode(start), start)
	q = append(q, start)
	reached := int(start) == ws.snk
	// The search must drain its whole frontier even after the sink
	// joins: a joined node whose neighbourhood was never scanned would
	// leave reachable nodes outside R and silently undercount the cut.
	// The flow re-solve evicts whatever the new cut separates.
	for qh := 0; qh < len(q); qh++ {
		v := q[qh]
		for e := ws.adjOff[v]; e < ws.adjOff[v+1]; e++ {
			enc := ws.adjArc[e]
			a := enc >> 1
			fwd := enc&1 == 0
			// Crossing status changes: materialise lazy y and kill any
			// pending event. Arcs with neither are untouched — the
			// indexed heap makes "has a pending entry" an O(1) check,
			// and nothing else reads the stamp.
			if ws.cutDir[a] != 0 {
				ws.matArc(a)
			} else if ws.heapPos[a] >= 0 {
				ws.arcStamp[a]++
			}
			var w int32
			if fwd {
				w = ws.head[a]
			} else {
				w = ws.tail[a]
			}
			if ws.inRf(w) {
				continue
			}
			var slack float64
			if fwd {
				slack = ws.tRealOut(w) - ws.t[v] - ws.dur(a)
			} else {
				slack = ws.t[v] - ws.tRealOut(w) - ws.dur(a)
			}
			if slack > ws.tightEps {
				if fwd {
					ws.push(event{ws.lam - slack, a, ws.arcStamp[a], evSlack})
				}
				continue
			}
			if fwd {
				if ws.fwdOpen(a) {
					ws.parent[w] = enc
					ws.join(w)
					ws.linkChild(v, w)
					if int(w) == ws.snk {
						reached = true
					}
					q = append(q, w)
				} else {
					ws.enterCut(a, +1)
				}
			} else {
				if ws.bwdOpen(a) {
					ws.parent[w] = enc
					ws.join(w)
					ws.linkChild(v, w)
					if int(w) == ws.snk {
						reached = true
					}
					q = append(q, w)
				} else if ws.hasFlow(a) {
					ws.enterCut(a, -1)
				}
			}
		}
	}
	ws.queue = q[:0]
	return reached
}

// Sweep runs the parametric sweep on the built network. m is the
// machine count of the caller's stopping line and phi0 the crashing
// cost at y=0 (the work floor): the sweep stops at the crossing of
// m*lambda with phi0 + phi(lambda), or at the fully-crashed project
// length if the crossing is unreachable, and returns
// C = max(Lambda, Phi/m) — the optimum of min max(lambda, phi/m).
func (ws *Workspace) Sweep(src, snk int, m, phi0 float64) (float64, error) {
	nA := len(ws.tail)
	ws.y = grown(ws.y, nA)
	ws.f = grown(ws.f, nA)
	ws.kcur = grown(ws.kcur, nA)
	ws.cutDir = grown(ws.cutDir, nA)
	ws.lamEnter = grown(ws.lamEnter, nA)
	ws.arcStamp = grown(ws.arcStamp, nA)
	ws.sU = grown(ws.sU, nA)
	ws.sD = grown(ws.sD, nA)
	for a := 0; a < nA; a++ {
		ws.y[a] = 0
		ws.f[a] = 0
		ws.kcur[a] = ws.curveOff[a]
		ws.cutDir[a] = 0
		ws.arcStamp[a] = 0
		ws.refreshSig(int32(a))
	}
	ws.inR = grown(ws.inR, ws.nodes)
	ws.firstKid = grown(ws.firstKid, ws.nodes)
	ws.nextSib = grown(ws.nextSib, ws.nodes)
	ws.prevSib = grown(ws.prevSib, ws.nodes)
	ws.orph = grown(ws.orph, ws.nodes)
	for v := range ws.inR {
		ws.inR[v] = -1
		ws.orph[v] = 0
	}
	ws.orphEpoch = 0
	ws.rEpoch = 0
	ws.parent = grown(ws.parent, ws.nodes)
	ws.sPar = grown(ws.sPar, ws.nodes)
	ws.sSeen = grown(ws.sSeen, ws.nodes)
	for v := range ws.sSeen {
		ws.sSeen[v] = 0
	}
	ws.sEpoch = 0
	ws.heap = ws.heap[:0]
	ws.heapPos = grown(ws.heapPos, nA)
	for a := range ws.heapPos {
		ws.heapPos[a] = -1
	}
	ws.src, ws.snk, ws.msw = src, snk, m
	ws.buildAdj()
	if err := ws.longestPaths(); err != nil {
		return 0, err
	}

	ws.lam = ws.t[snk]
	ws.lamMat = ws.lam
	ws.phi = phi0
	ws.muv = 0
	ws.Breakpoints, ws.Augments = 0, 0

	ws.tightEps = 1e-9 * (1 + math.Abs(ws.lam))
	maxCum := 0.0
	for a := 0; a < nA; a++ {
		if e := ws.curveOff[a+1]; e > ws.curveOff[a] {
			if c := ws.cum[e-1]; c > maxCum {
				maxCum = c
			}
		}
	}
	ws.bEps = 1e-12 * (1 + maxCum)
	ws.evBudget = 64*(len(ws.rate)+nA) + 1024
	ws.augBudget = 16*nA + 1024

	if FaultSweep != nil && FaultSweep() {
		return 0, fmt.Errorf("%w: injected fault", ErrStalled)
	}

	// Work-bound from the start: the stopping line sits at or above the
	// uncrashed critical path, nothing to crash.
	if ws.phi >= m*ws.lam {
		ws.Lambda, ws.Phi = ws.lam, ws.phi
		return ws.phi / m, nil
	}

	if done, err := ws.rebuildFull(); err != nil {
		return 0, err
	} else if done {
		ws.Lambda, ws.Phi = ws.lam, ws.phi
		return math.Max(ws.lam, ws.phi/m), nil
	}

	for {
		if ws.Cancel.Canceled() {
			return 0, cancelflag.ErrCanceled
		}
		if FaultSweep != nil && FaultSweep() {
			return 0, fmt.Errorf("%w: injected fault", ErrStalled)
		}
		lamCross := (ws.phi + ws.muv*ws.lam) / (m + ws.muv)
		e, ok := ws.popValid()
		if !ok || lamCross >= e.lam {
			ws.advance(lamCross)
			ws.matAll()
			ws.Lambda, ws.Phi = ws.lam, ws.phi
			return math.Max(ws.lam, ws.phi/m), nil
		}
		ws.advance(e.lam)
		ws.Breakpoints++
		if ws.evBudget--; ws.evBudget < 0 {
			return 0, fmt.Errorf("%w: event budget exceeded", ErrStalled)
		}

		a := e.arc
		var opened, fdir bool
		switch e.kind {
		case evSlack:
			// The arc just went critical (f=0 on a previously slack
			// arc): residual sigma+ opens unless the piece above is
			// flat at zero rate.
			ws.arcStamp[a]++
			if ws.fwdOpen(a) {
				opened, fdir = true, true
			} else {
				ws.enterCut(a, +1)
			}
		case evFwdPiece:
			// A crashing cut arc hit the top of its piece: the next
			// piece's higher rate opens residual unless rates are
			// within tolerance; a fully crashed arc opens infinite
			// residual (it leaves the cut for good).
			ws.matArc(a)
			if ws.fwdOpen(a) {
				opened, fdir = true, true
			} else {
				ws.enterCut(a, +1)
			}
		case evBwdPiece:
			// An un-crashing cut arc hit the bottom of its piece: the
			// flow now exceeds the lower piece's rate, opening reverse
			// residual towards its tail.
			ws.matArc(a)
			if ws.bwdOpen(a) {
				opened, fdir = true, false
			} else if ws.hasFlow(a) {
				ws.enterCut(a, -1)
			}
		}
		if opened {
			if done, err := ws.reopen(a, fdir); err != nil {
				return 0, err
			} else if done {
				ws.matAll()
				ws.Lambda, ws.Phi = ws.lam, ws.phi
				return math.Max(ws.lam, ws.phi/m), nil
			}
		}
	}
}

// snapY sets arc a's crash amount, snapped onto an adjacent piece
// boundary when within tolerance so the piece cursors advance cleanly.
func (ws *Workspace) snapY(a int32, y float64) {
	if y < 0 {
		y = 0
	}
	s, e := ws.curveOff[a], ws.curveOff[a+1]
	if e > s {
		if ymax := ws.cum[e-1]; y > ymax {
			y = ymax
		}
		k := ws.kcur[a]
		if k < s {
			k = s
		} else if k >= e {
			k = e - 1
		}
		for _, b := range []int32{k - 1, k, k + 1} {
			if b >= s && b < e && math.Abs(y-ws.cum[b]) <= ws.bEps {
				y = ws.cum[b]
				break
			}
		}
	}
	ws.y[a] = y
	ws.refreshSig(a)
}
