// Package params computes the algorithm parameters and proven approximation
// ratios of Section 4 of the paper: the rounding parameter rho*(m), the
// allotment parameter mu*(m) (Eqs. (19)–(20)), the min–max objective of the
// nonlinear program (17), the closed-form ratio of Theorem 4.1, the bound of
// Lemma 4.9, and the Corollary 4.1 supremum 100/63 + 100(sqrt(6469)+13)/5481
// ~= 3.291919. It regenerates Table 2 of the paper.
package params

import (
	"fmt"
	"math"
)

// Objective evaluates the inner maximum of the min–max nonlinear program
// (17) for machine size m, allotment threshold mu and rounding parameter
// rho: the maximum of
//
//	[2m/(2-rho) + (m-mu)x1 + (m-2mu+1)x2] / (m-mu+1)
//
// over x1, x2 >= 0 with (1+rho)x1/2 + min{mu/m, (1+rho)/2} x2 <= 1.
// The feasible region is a triangle, so the maximum is attained at one of
// its three vertices.
func Objective(m, mu int, rho float64) float64 {
	if mu < 1 || mu > m {
		panic(fmt.Sprintf("params: mu=%d out of range for m=%d", mu, m))
	}
	base := 2 * float64(m) / (2 - rho)
	den := float64(m - mu + 1)
	x1max := 2 / (1 + rho)
	coef2 := math.Min(float64(mu)/float64(m), (1+rho)/2)
	x2max := 1 / coef2
	best := 0.0 // vertex (0,0)
	if v := float64(m-mu) * x1max; v > best {
		best = v
	}
	if v := float64(m-2*mu+1) * x2max; v > best {
		best = v
	}
	return (base + best) / den
}

// MuHat returns the fractional allotment parameter of Eq. (20):
// (113m - sqrt(6469 m^2 - 6300 m)) / 100, derived from Lemma 4.8 at
// rho = 0.26.
func MuHat(m int) float64 {
	fm := float64(m)
	return (113*fm - math.Sqrt(6469*fm*fm-6300*fm)) / 100
}

// MuFromLemma48 returns the optimal fractional mu of Lemma 4.8 for a fixed
// rho > 2mu/m - 1:
//
//	mu = [(2+rho)m - sqrt((rho^2+2rho+2)m^2 - 2(1+rho)m)] / 2.
func MuFromLemma48(m int, rho float64) float64 {
	fm := float64(m)
	return ((2+rho)*fm - math.Sqrt((rho*rho+2*rho+2)*fm*fm-2*(1+rho)*fm)) / 2
}

// Choice is the parameter selection for a machine size: the rounding
// parameter Rho, the allotment threshold Mu, and the proven ratio R (the
// Table 2 value).
type Choice struct {
	M   int
	Mu  int
	Rho float64
	R   float64
}

// Choose returns the paper's parameter choice for machine size m >= 1,
// reproducing Table 2: the special small cases m = 2, 3, 4 from
// Subsection 4.1.1, and rho = 0.26 with mu the better of the floor/ceil
// roundings of MuHat(m) for m >= 5.
func Choose(m int) Choice {
	switch {
	case m < 1:
		panic("params: m < 1")
	case m == 1:
		// Trivial machine: every allotment is 1 processor; list scheduling
		// is exact on one processor for any DAG.
		return Choice{M: 1, Mu: 1, Rho: 0, R: 1}
	case m == 2:
		return Choice{M: 2, Mu: 1, Rho: 0, R: Objective(2, 1, 0)}
	case m == 3:
		return Choice{M: 3, Mu: 2, Rho: 0.098, R: Objective(3, 2, 0.098)}
	case m == 4:
		return Choice{M: 4, Mu: 2, Rho: 0, R: Objective(4, 2, 0)}
	}
	const rho = 0.26
	muHat := MuHat(m)
	lo := int(math.Floor(muHat))
	hi := int(math.Ceil(muHat))
	lo = clampInt(lo, 1, m)
	hi = clampInt(hi, 1, m)
	best := Choice{M: m, Mu: lo, Rho: rho, R: Objective(m, lo, rho)}
	if hi != lo {
		if r := Objective(m, hi, rho); r < best.R {
			best = Choice{M: m, Mu: hi, Rho: rho, R: r}
		}
	}
	return best
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// TheoremBound returns the closed-form ratio of Theorem 4.1 for m >= 2.
// For m >= 6 this is the Lemma 4.9 expression, which upper-bounds (not
// always tightly) the Objective value reported in Table 2.
func TheoremBound(m int) float64 {
	fm := float64(m)
	switch m {
	case 2:
		return 2
	case 3:
		return 2 * (2 + math.Sqrt(3)) / 3
	case 4:
		return 8.0 / 3
	case 5:
		return 2 * (7 + 2*math.Sqrt(10)) / 9
	default:
		return 100.0/63 + 100.0/345303*
			(63*fm-87)*(math.Sqrt(6469*fm*fm-6300*fm)+13*fm)/(fm*fm-fm)
	}
}

// Lemma47Bound returns the ratio bound of Lemma 4.7 for the case
// rho <= 2mu/m - 1.
func Lemma47Bound(m int) float64 {
	fm := float64(m)
	switch {
	case m == 3:
		return 2 * (2 + math.Sqrt(3)) / 3
	case m == 5:
		return 2 * (7 + 2*math.Sqrt(10)) / 9
	case m >= 7 && m%2 == 1:
		return 2 * fm * (4*fm*fm - fm + 1) / ((fm + 1) * (fm + 1) * (2*fm - 1))
	default:
		return 4 * fm / (fm + 2)
	}
}

// CorollarySup is the Corollary 4.1 supremum over all m >= 2:
// 100/63 + 100(sqrt(6469)+13)/5481 ~= 3.291919.
func CorollarySup() float64 {
	return 100.0/63 + 100*(math.Sqrt(6469)+13)/5481
}

// AsymptoticRatio is the m -> infinity limit of the ratio achievable with
// the optimal rho* = 0.261917 (Section 4.3): r -> 3.291913.
func AsymptoticRatio(rho float64) float64 {
	beta := ((2 + rho) - math.Sqrt(rho*rho+2*rho+2)) / 2 // mu*/m limit
	return 2/((2-rho)*(1-beta)) + 2/(1+rho)
}

// Table2Row is one row of Table 2 of the paper.
type Table2Row struct {
	M   int
	Mu  int
	Rho float64
	R   float64
}

// Table2 regenerates Table 2 for m = 2..maxM.
func Table2(maxM int) []Table2Row {
	rows := make([]Table2Row, 0, maxM-1)
	for m := 2; m <= maxM; m++ {
		c := Choose(m)
		rows = append(rows, Table2Row{M: m, Mu: c.Mu, Rho: c.Rho, R: c.R})
	}
	return rows
}
