package params

import (
	"math"
	"testing"
)

// Table 2 of the paper, transcribed: m, mu(m), rho(m), r(m).
var paperTable2 = []struct {
	m   int
	mu  int
	rho float64
	r   float64
}{
	{2, 1, 0, 2}, {3, 2, 0.098, 2.4880}, {4, 2, 0, 2.6667}, {5, 2, 0.260, 2.6868},
	{6, 3, 0.260, 2.9146}, {7, 3, 0.260, 2.8790}, {8, 3, 0.260, 2.8659}, {9, 4, 0.260, 3.0469},
	{10, 4, 0.260, 3.0026}, {11, 4, 0.260, 2.9693}, {12, 5, 0.260, 3.1130}, {13, 5, 0.260, 3.0712},
	{14, 5, 0.260, 3.0378}, {15, 6, 0.260, 3.1527}, {16, 6, 0.260, 3.1149}, {17, 6, 0.260, 3.0834},
	{18, 7, 0.260, 3.1792}, {19, 7, 0.260, 3.1451}, {20, 7, 0.260, 3.1160}, {21, 8, 0.260, 3.1981},
	{22, 8, 0.260, 3.1673}, {23, 8, 0.260, 3.1404}, {24, 8, 0.260, 3.2110}, {25, 9, 0.260, 3.1843},
	{26, 9, 0.260, 3.1594}, {27, 9, 0.260, 3.2123}, {28, 10, 0.260, 3.1976}, {29, 10, 0.260, 3.1746},
	{30, 10, 0.260, 3.2135}, {31, 11, 0.260, 3.2085}, {32, 11, 0.260, 3.1870}, {33, 11, 0.260, 3.2144},
}

func TestTable2MatchesPaper(t *testing.T) {
	for _, row := range paperTable2 {
		c := Choose(row.m)
		if c.Mu != row.mu {
			t.Errorf("m=%d: mu = %d, want %d", row.m, c.Mu, row.mu)
		}
		if math.Abs(c.Rho-row.rho) > 1e-9 {
			t.Errorf("m=%d: rho = %v, want %v", row.m, c.Rho, row.rho)
		}
		if math.Abs(c.R-row.r) > 5e-5 { // table prints 4 decimals
			t.Errorf("m=%d: r = %.6f, want %.4f", row.m, c.R, row.r)
		}
	}
}

func TestTable2Generator(t *testing.T) {
	rows := Table2(33)
	if len(rows) != 32 {
		t.Fatalf("Table2(33) has %d rows, want 32", len(rows))
	}
	if rows[0].M != 2 || rows[31].M != 33 {
		t.Errorf("row range wrong: %v..%v", rows[0].M, rows[31].M)
	}
}

func TestObjectiveKnownValues(t *testing.T) {
	// Hand-checked values from the analysis in Section 4.2.
	cases := []struct {
		m, mu int
		rho   float64
		want  float64
	}{
		{2, 1, 0, 2},
		{4, 2, 0, 8.0 / 3},
		{10, 4, 0.26, 3.0026},
		{5, 2, 0.26, 2.6868},
		{3, 2, 0.098, 2 * (2 + math.Sqrt(3)) / 3},
	}
	for _, c := range cases {
		if got := Objective(c.m, c.mu, c.rho); math.Abs(got-c.want) > 5e-5 {
			t.Errorf("Objective(%d,%d,%v) = %v, want %v", c.m, c.mu, c.rho, got, c.want)
		}
	}
}

func TestMuHatSatisfiesCaseCondition(t *testing.T) {
	// Section 4.2 shows rho=0.26 > 2*muHat/m - 1 for all m >= 2.
	for m := 2; m <= 200; m++ {
		if 0.26 <= 2*MuHat(m)/float64(m)-1 {
			t.Errorf("m=%d: rho=0.26 violates the case condition", m)
		}
	}
}

func TestMuHatIsLemma48AtRho026(t *testing.T) {
	// Eq. (20) is Lemma 4.8 evaluated at rho = 0.26.
	for m := 2; m <= 100; m++ {
		if math.Abs(MuHat(m)-MuFromLemma48(m, 0.26)) > 1e-9 {
			t.Errorf("m=%d: MuHat=%v != Lemma4.8=%v", m, MuHat(m), MuFromLemma48(m, 0.26))
		}
	}
}

func TestTheoremBoundSmallM(t *testing.T) {
	// Theorem 4.1's stated values. Note m=5: the theorem states
	// 2(7+2*sqrt(10))/9 ~= 2.961, while Table 2 reports the tighter actual
	// objective 2.6868 (the paper remarks Lemma 4.9 is not tight there).
	want := map[int]float64{2: 2, 3: 2.4880, 4: 2.6667, 5: 2 * (7 + 2*math.Sqrt(10)) / 9}
	for m, w := range want {
		if got := TheoremBound(m); math.Abs(got-w) > 5e-5 {
			t.Errorf("TheoremBound(%d) = %v, want %v", m, got, w)
		}
	}
}

func TestTheoremBoundDominatesObjective(t *testing.T) {
	// Lemma 4.9 is an upper bound on the Table 2 objective for m >= 6.
	for m := 6; m <= 128; m++ {
		c := Choose(m)
		if b := TheoremBound(m); b < c.R-1e-9 {
			t.Errorf("m=%d: TheoremBound %v below objective %v", m, b, c.R)
		}
	}
}

func TestCorollarySup(t *testing.T) {
	if got := CorollarySup(); math.Abs(got-3.291919) > 5e-7 {
		t.Errorf("CorollarySup = %.7f, want 3.291919", got)
	}
	// The corollary dominates every finite-m ratio.
	sup := CorollarySup()
	for m := 2; m <= 300; m++ {
		if r := Choose(m).R; r > sup+1e-9 {
			t.Errorf("m=%d: ratio %v exceeds the corollary supremum %v", m, r, sup)
		}
	}
}

func TestAsymptoticRatio(t *testing.T) {
	// Section 4.3: rho* = 0.261917 gives r -> 3.291913.
	if got := AsymptoticRatio(0.261917); math.Abs(got-3.291913) > 5e-6 {
		t.Errorf("AsymptoticRatio(0.261917) = %.6f, want 3.291913", got)
	}
	// And mu*/m -> 0.325907.
	rho := 0.261917
	beta := ((2 + rho) - math.Sqrt(rho*rho+2*rho+2)) / 2
	if math.Abs(beta-0.325907) > 5e-6 {
		t.Errorf("beta = %.6f, want 0.325907", beta)
	}
}

func TestRatioAtFixedRhoApproachesCorollary(t *testing.T) {
	// The Table 2 ratio at large m must approach (from below) the corollary
	// value 3.291919.
	r := Choose(100000).R
	if r > CorollarySup() || r < CorollarySup()-1e-3 {
		t.Errorf("r(100000) = %v, want just below %v", r, CorollarySup())
	}
}

func TestLemma47BoundValues(t *testing.T) {
	cases := []struct {
		m    int
		want float64
	}{
		{3, 2 * (2 + math.Sqrt(3)) / 3},
		{5, 2 * (7 + 2*math.Sqrt(10)) / 9},
		{7, 2.0 * 7 * (4*49 - 7 + 1) / (8.0 * 8 * 13)},
		{4, 16.0 / 6},
		{6, 3},
	}
	for _, c := range cases {
		if got := Lemma47Bound(c.m); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Lemma47Bound(%d) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestChooseM1(t *testing.T) {
	c := Choose(1)
	if c.Mu != 1 || c.R != 1 {
		t.Errorf("Choose(1) = %+v", c)
	}
}

func TestObjectivePanicsOnBadMu(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Objective with mu=0 should panic")
		}
	}()
	Objective(4, 0, 0.5)
}
