// Package baseline implements the comparison algorithms: the
// Lepère–Trystram–Woeginger (LTW) two-phase algorithm of [18] whose
// approximation ratios the paper lists in Table 3 (asymptotically
// 3 + sqrt(5) ~= 5.236), and naive heuristics (sequential, full-allotment,
// and a greedy critical-path allotment) that bracket the solution quality in
// the empirical study.
//
// Substitution note (see DESIGN.md): LTW's first phase originally solves a
// discrete time-cost tradeoff problem with Skutella's algorithm. Under this
// paper's stronger Assumption 2 the allotment problem is the exact LP (9),
// so our LTW implementation reuses the same LP phase 1 and keeps LTW's
// rho = 1/2 rounding and its allotment cap mu_LTW(m). This can only help
// the baseline, making comparisons against it conservative.
package baseline

import (
	"math"

	"malsched/internal/allot"
	"malsched/internal/listsched"
	"malsched/internal/schedule"
	"malsched/internal/solver"
)

// LTWRatio returns the proven approximation ratio of the LTW algorithm for
// machine size m together with its optimal allotment threshold mu:
//
//	r(m) = min_mu max{ (4m - 2mu)/(m - mu + 1), 2m/mu }.
//
// This reproduces Table 3 of the paper; as m -> infinity the optimal
// mu/m -> (3 - sqrt(5))/2 and r -> 3 + sqrt(5).
func LTWRatio(m int) (mu int, r float64) {
	mu, r = 1, math.Inf(1)
	for cand := 1; cand <= m; cand++ {
		a := (4*float64(m) - 2*float64(cand)) / (float64(m) - float64(cand) + 1)
		b := 2 * float64(m) / float64(cand)
		v := math.Max(a, b)
		if v < r-1e-12 {
			mu, r = cand, v
		}
	}
	return mu, r
}

// Result mirrors core.Result for baseline algorithms.
type Result struct {
	Schedule   *schedule.Schedule
	Alpha      []int
	Makespan   float64
	LowerBound float64 // max{L*, W*/m} from the shared LP relaxation (0 if not solved)
}

// LTW runs the Lepère–Trystram–Woeginger two-phase algorithm: phase 1 via
// the shared LP with rho = 1/2 rounding, allotments capped at mu_LTW(m),
// then LIST.
func LTW(in *allot.Instance) (*Result, error) { return LTWWith(in, nil) }

// LTWWith is LTW with a reusable cross-phase workspace (nil behaves like
// LTW): both the LP solve and the list scheduling run warm.
func LTWWith(in *allot.Instance, ws *solver.Workspace) (*Result, error) {
	// The LP path pins the instance in the workspace's frontier cache;
	// release it on exit so a pooled workspace does not retain the
	// instance between solves (same contract as core.SolveWith).
	defer ws.Release()
	in = ws.Reduce(in) // preprocessing, exactly as core.SolveWith
	frac, err := allot.SolveLPWith(in, ws.LP())
	if err != nil {
		return nil, err
	}
	alphaPrime := allot.RoundWith(in, frac, 0.5, ws.LP())
	mu, _ := LTWRatio(in.M)
	alpha := listsched.CapAllotment(alphaPrime, mu)
	s, err := listsched.RunWith(in, alpha, ws.Sched())
	if err != nil {
		return nil, err
	}
	lb := math.Max(frac.L, frac.W/float64(in.M))
	lb = math.Max(lb, frac.C)
	return &Result{Schedule: s, Alpha: alpha, Makespan: s.Makespan(), LowerBound: lb}, nil
}

// Sequential schedules every task on a single processor with LIST: the
// no-malleability baseline.
func Sequential(in *allot.Instance) (*Result, error) { return SequentialWith(in, nil) }

// SequentialWith is Sequential with a reusable workspace.
func SequentialWith(in *allot.Instance, ws *solver.Workspace) (*Result, error) {
	alpha := make([]int, in.G.N())
	for j := range alpha {
		alpha[j] = 1
	}
	return runAllotment(in, alpha, ws)
}

// FullAllotment gives every task all m processors, serialising the whole
// DAG: the maximum-parallelism-per-task baseline.
func FullAllotment(in *allot.Instance) (*Result, error) { return FullAllotmentWith(in, nil) }

// FullAllotmentWith is FullAllotment with a reusable workspace.
func FullAllotmentWith(in *allot.Instance, ws *solver.Workspace) (*Result, error) {
	alpha := make([]int, in.G.N())
	for j := range alpha {
		alpha[j] = in.M
	}
	return runAllotment(in, alpha, ws)
}

// runAllotment finishes a fixed-allotment baseline with LIST (on the
// preprocessed instance; the schedule is identical, see internal/prep).
func runAllotment(in *allot.Instance, alpha []int, ws *solver.Workspace) (*Result, error) {
	in = ws.Reduce(in)
	s, err := listsched.RunWith(in, alpha, ws.Sched())
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Alpha: alpha, Makespan: s.Makespan()}, nil
}

// GreedyCP iteratively shortens the critical path: starting from
// single-processor allotments, it repeatedly grants one more processor to
// the task on the current critical path with the best marginal gain, while
// the average load W/m stays below the critical-path length. A natural
// practitioner's heuristic with no worst-case guarantee.
func GreedyCP(in *allot.Instance) (*Result, error) { return GreedyCPWith(in, nil) }

// GreedyCPWith is GreedyCP with a reusable workspace.
func GreedyCPWith(in *allot.Instance, ws *solver.Workspace) (*Result, error) {
	n := in.G.N()
	alpha := make([]int, n)
	for j := range alpha {
		alpha[j] = 1
	}
	work := 0.0
	for j := range alpha {
		work += in.Tasks[j].Work(1)
	}
	durations := func() []float64 {
		d := make([]float64, n)
		for j := range d {
			d[j] = in.Tasks[j].Time(alpha[j])
		}
		return d
	}
	for iter := 0; iter < n*in.M; iter++ {
		d := durations()
		length, path, err := in.G.CriticalPath(d)
		if err != nil {
			return nil, err
		}
		if work/float64(in.M) >= length {
			break // load-balanced: more processors only add overhead
		}
		// Best marginal time reduction per unit of extra work on the path.
		bestJ, bestGain := -1, 0.0
		for _, j := range path {
			if alpha[j] >= in.M {
				continue
			}
			dt := in.Tasks[j].Time(alpha[j]) - in.Tasks[j].Time(alpha[j]+1)
			dw := in.Tasks[j].Work(alpha[j]+1) - in.Tasks[j].Work(alpha[j])
			gain := dt / (1 + dw)
			if gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		if bestJ < 0 {
			break
		}
		work += in.Tasks[bestJ].Work(alpha[bestJ]+1) - in.Tasks[bestJ].Work(alpha[bestJ])
		alpha[bestJ]++
	}
	return runAllotment(in, alpha, ws)
}

// Table3Row is one row of Table 3 of the paper.
type Table3Row struct {
	M  int
	Mu int
	R  float64
}

// Table3 regenerates Table 3 (the LTW ratios) for m = 2..maxM.
func Table3(maxM int) []Table3Row {
	rows := make([]Table3Row, 0, maxM-1)
	for m := 2; m <= maxM; m++ {
		mu, r := LTWRatio(m)
		rows = append(rows, Table3Row{M: m, Mu: mu, R: r})
	}
	return rows
}
