package baseline

import (
	"math"
	"math/rand"
	"testing"

	"malsched/internal/gen"
	"malsched/internal/params"
)

// Table 3 of the paper, transcribed: m, mu(m), r(m) for the LTW algorithm.
var paperTable3 = []struct {
	m  int
	mu int
	r  float64
}{
	{2, 1, 4.0000}, {3, 2, 4.0000}, {4, 2, 4.0000}, {5, 3, 4.6667},
	{6, 3, 4.5000}, {7, 3, 4.6667}, {8, 4, 4.8000}, {9, 4, 4.6667},
	{10, 4, 5.0000}, {11, 5, 4.8570}, {12, 5, 4.8000}, {13, 6, 5.0000},
	{14, 6, 4.8889}, {15, 6, 5.0000}, {16, 7, 5.0000}, {17, 7, 4.9091},
	{18, 8, 5.0908}, {19, 8, 5.0000}, {20, 8, 5.0000}, {21, 9, 5.0768},
	{22, 9, 5.0000}, {23, 9, 5.1111}, {24, 10, 5.0667}, {25, 10, 5.0000},
	{26, 10, 5.1250}, {27, 11, 5.0588}, {28, 11, 5.0908}, {29, 12, 5.1111},
	{30, 12, 5.0526}, {31, 13, 5.1578}, {32, 13, 5.1000}, {33, 13, 5.0768},
}

func TestTable3MatchesPaper(t *testing.T) {
	for _, row := range paperTable3 {
		mu, r := LTWRatio(row.m)
		if math.Abs(r-row.r) > 5e-4 { // the paper truncates some entries
			t.Errorf("m=%d: r = %.4f, want %.4f", row.m, r, row.r)
		}
		// The mu column: ties between adjacent mu and an off-by-one mu
		// convention in the source table (e.g. m=26 lists mu=10 but its
		// printed ratio 5.1250 arises only from mu=11 in our formulation)
		// mean we require mu within 1 of the paper and the ratio exact.
		if d := mu - row.mu; d < -1 || d > 1 {
			t.Errorf("m=%d: mu = %d, want %d (+/-1)", row.m, mu, row.mu)
		}
	}
}

func TestLTWAsymptote(t *testing.T) {
	// r -> 3 + sqrt(5) and mu/m -> (3 - sqrt(5))/2 as m grows.
	mu, r := LTWRatio(2_000_000)
	if math.Abs(r-(3+math.Sqrt(5))) > 1e-4 {
		t.Errorf("asymptotic LTW ratio = %v, want %v", r, 3+math.Sqrt(5))
	}
	beta := float64(mu) / 2_000_000
	if math.Abs(beta-(3-math.Sqrt(5))/2) > 1e-4 {
		t.Errorf("asymptotic mu/m = %v, want %v", beta, (3-math.Sqrt(5))/2)
	}
}

// The paper's headline: its new ratio beats LTW for every m (visible
// improvement for all m, Section 4.2).
func TestPaperBeatsLTWEverywhere(t *testing.T) {
	for m := 2; m <= 128; m++ {
		_, ltw := LTWRatio(m)
		ours := params.Choose(m).R
		if ours >= ltw {
			t.Errorf("m=%d: our ratio %.4f not better than LTW %.4f", m, ours, ltw)
		}
	}
}

func TestTable3Generator(t *testing.T) {
	rows := Table3(10)
	if len(rows) != 9 || rows[0].M != 2 || rows[8].M != 10 {
		t.Fatalf("Table3(10) shape wrong: %+v", rows)
	}
}

func TestBaselinesProduceFeasibleSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		type alg struct {
			name string
			run  func() (*Result, error)
		}
		algs := []alg{
			{"ltw", func() (*Result, error) { return LTW(in) }},
			{"sequential", func() (*Result, error) { return Sequential(in) }},
			{"full", func() (*Result, error) { return FullAllotment(in) }},
			{"greedycp", func() (*Result, error) { return GreedyCP(in) }},
		}
		for _, a := range algs {
			res, err := a.run()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			if err := res.Schedule.Verify(in.G); err != nil {
				t.Errorf("trial %d %s: infeasible: %v", trial, a.name, err)
			}
		}
	}
}

// LTW's realised makespan respects its own proven ratio against the LP
// lower bound.
func TestLTWWithinItsRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(8)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		res, err := LTW(in)
		if err != nil {
			t.Fatal(err)
		}
		_, r := LTWRatio(m)
		if res.Makespan > r*res.LowerBound+1e-6 {
			t.Errorf("trial %d: LTW makespan %v exceeds %v * lower bound %v",
				trial, res.Makespan, r, res.LowerBound)
		}
	}
}

// FullAllotment serialises everything, so its makespan equals the sum of
// the full-width processing times.
func TestFullAllotmentSerialises(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := gen.Instance(gen.Independent(5), gen.FamilyPowerLaw, 4, rng)
	res, err := FullAllotment(in)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, task := range in.Tasks {
		want += task.Time(4)
	}
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %v, want serialised %v", res.Makespan, want)
	}
}

func TestGreedyCPUsesExtraProcessorsOnChains(t *testing.T) {
	// On a pure chain, parallel capacity is useless to siblings, so greedy
	// should widen the chain tasks themselves.
	rng := rand.New(rand.NewSource(44))
	in := gen.Instance(gen.Chain(4), gen.FamilyPowerLaw, 8, rng)
	res, err := GreedyCP(in)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= seq.Makespan {
		t.Errorf("greedy (%v) not better than sequential (%v) on a chain of power-law tasks",
			res.Makespan, seq.Makespan)
	}
}

// The paper's introduction quotes 4.730598 as the best previous ratio for
// general precedence constraints ([13], Jansen-Zhang 2006). The JZ06
// min-max program must reproduce that value asymptotically.
func TestJZ06Asymptote(t *testing.T) {
	_, _, r := JZ06Ratio(20000)
	if math.Abs(r-4.730598) > 2e-3 { // rho-grid resolution limits precision
		t.Errorf("JZ06 asymptotic ratio = %v, want ~4.730598", r)
	}
}

// The ordering of proven ratios claimed by the paper: ours < JZ06 < LTW
// asymptotically, and ours beats JZ06 for every m (stronger assumption).
func TestProvenRatioOrdering(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16, 33, 64} {
		ours := params.Choose(m).R
		_, _, jz := JZ06Ratio(m)
		if ours >= jz+1e-9 {
			t.Errorf("m=%d: ours %.4f not better than JZ06 %.4f", m, ours, jz)
		}
	}
	_, ltw := LTWRatio(20000)
	_, _, jz := JZ06Ratio(20000)
	if !(jz < ltw) {
		t.Errorf("asymptotically JZ06 %.4f should beat LTW %.4f", jz, ltw)
	}
}
