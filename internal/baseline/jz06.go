package baseline

import "math"

// JZ06Ratio returns the proven approximation ratio of the earlier
// Jansen–Zhang algorithm (ACM Trans. Algorithms 2006, reference [13] of the
// paper) for machine size m, by minimising its min–max program
//
//	r = min_{mu,rho} max{ [m/(1-rho) + (m-mu)/rho] / (m-mu+1),
//	                      [m/(1-rho) + (m-2mu+1)/min{mu/m,rho}] / (m-mu+1) }
//
// over integer mu and a fine rho grid. That algorithm works under the
// weaker Assumption 2' (monotone work) and rounds with duration stretch
// 1/rho and work stretch 1/(1-rho); as m -> infinity its ratio tends to
// 4.730598, the value quoted in the paper's introduction. It sits between
// this paper's 3.291919 (stronger assumption, better rounding) and LTW's
// 5.236 (fixed rho = 1/2).
func JZ06Ratio(m int) (mu int, rho, r float64) {
	fm := float64(m)
	r = math.Inf(1)
	muMax := (m + 1) / 2
	if muMax < 1 {
		muMax = 1
	}
	for cand := 1; cand <= muMax; cand++ {
		fmu := float64(cand)
		for s := 1; s < 2000; s++ {
			rh := float64(s) / 2000
			den := fm - fmu + 1
			base := fm / (1 - rh)
			a := (base + (fm-fmu)/rh) / den
			c2 := math.Min(fmu/fm, rh)
			b := (base + (fm-2*fmu+1)/c2) / den
			if fm-2*fmu+1 < 0 {
				b = base / den // x2 = 0 is the maximiser
			}
			v := math.Max(a, b)
			if v < r {
				mu, rho, r = cand, rh, v
			}
		}
	}
	return mu, rho, r
}
