// Package bruteforce computes exact optimal makespans for tiny instances by
// exhaustive search, providing ground truth OPT for validating the
// approximation ratio of the two-phase algorithm end to end (the paper's
// Theorem 4.1 bounds Cmax/OPT; brute force lets tests check the inequality
// against the true OPT rather than only the LP lower bound).
//
// The search enumerates integral allotments (m^n combinations) and, for
// each allotment, finds the optimal non-preemptive schedule by depth-first
// search over event-aligned start decisions: there is always an optimal
// schedule in which every task starts either at time 0 or at the completion
// time of some other task, so decisions are only needed at such events.
// Within one event time, tasks are started in canonical (increasing index)
// order to avoid enumerating permutations of the same decision set.
package bruteforce

import (
	"math"

	"malsched/internal/allot"
)

// Limits guard against accidental exponential blow-up.
const (
	MaxTasks = 8
	MaxProcs = 8
)

// Optimal returns the exact optimal makespan over all integral allotments
// and feasible non-preemptive schedules. It panics if the instance exceeds
// the package limits (n > MaxTasks or m > MaxProcs).
func Optimal(in *allot.Instance) float64 {
	n := in.G.N()
	if n == 0 {
		return 0
	}
	if n > MaxTasks || in.M > MaxProcs {
		panic("bruteforce: instance too large")
	}
	alpha := make([]int, n)
	best := math.Inf(1)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if v := optimalForAllotment(in, alpha, best); v < best {
				best = v
			}
			return
		}
		for l := 1; l <= in.M; l++ {
			alpha[j] = l
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

// OptimalForAllotment returns the optimal makespan for a fixed allotment.
func OptimalForAllotment(in *allot.Instance, alpha []int) float64 {
	return optimalForAllotment(in, alpha, math.Inf(1))
}

type searcher struct {
	in    *allot.Instance
	alpha []int
	dur   []float64
	down  []float64 // dur[j] + longest successor chain under dur
	n     int
	best  float64

	done    []bool
	running []bool
	endAt   []float64 // valid while running[j]
}

func optimalForAllotment(in *allot.Instance, alpha []int, cutoff float64) float64 {
	n := in.G.N()
	s := &searcher{
		in: in, alpha: alpha, n: n, best: cutoff,
		dur: make([]float64, n), down: make([]float64, n),
		done: make([]bool, n), running: make([]bool, n), endAt: make([]float64, n),
	}
	work := 0.0
	for j := 0; j < n; j++ {
		s.dur[j] = in.Tasks[j].Time(alpha[j])
		work += float64(alpha[j]) * s.dur[j]
	}
	cp, _, err := in.G.CriticalPath(s.dur)
	if err != nil {
		return math.Inf(1)
	}
	if lb := math.Max(cp, work/float64(in.M)); lb >= cutoff {
		return math.Inf(1)
	}
	// Downward critical path per task, in reverse topological order.
	order, _ := in.G.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		j := order[i]
		best := 0.0
		for _, succ := range in.G.Succs(j) {
			if s.down[succ] > best {
				best = s.down[succ]
			}
		}
		s.down[j] = s.dur[j] + best
	}
	s.dfs(0, 0, 0, 0, 0)
	return s.best
}

// dfs explores decisions at the current event time t. used counts busy
// processors, nDone completed tasks, latest the maximum end time committed
// so far. minStart is the smallest task index allowed to start at this
// event time (canonical ordering within one time point).
func (s *searcher) dfs(t float64, used, nDone int, latest float64, minStart int) {
	if nDone == s.n {
		if latest < s.best {
			s.best = latest
		}
		return
	}
	// Admissible lower bound on the final makespan from this state.
	lb := math.Max(t, latest)
	for j := 0; j < s.n; j++ {
		var v float64
		switch {
		case s.done[j]:
			continue
		case s.running[j]:
			v = s.endAt[j] + s.down[j] - s.dur[j]
		default:
			v = t + s.down[j]
		}
		if v > lb {
			lb = v
		}
	}
	if lb >= s.best-1e-12 {
		return
	}

	// Option 1: start a ready task j >= minStart now.
	for j := minStart; j < s.n; j++ {
		if s.done[j] || s.running[j] || s.alpha[j] > s.in.M-used {
			continue
		}
		ok := true
		for _, p := range s.in.G.Preds(j) {
			if !s.done[p] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.running[j] = true
		s.endAt[j] = t + s.dur[j]
		nl := latest
		if s.endAt[j] > nl {
			nl = s.endAt[j]
		}
		s.dfs(t, used+s.alpha[j], nDone, nl, j+1)
		s.running[j] = false
	}

	// Option 2: advance to the next completion event.
	next := math.Inf(1)
	for j := 0; j < s.n; j++ {
		if s.running[j] && s.endAt[j] < next {
			next = s.endAt[j]
		}
	}
	if math.IsInf(next, 1) {
		return // nothing running and nothing started: dead end
	}
	var completed []int
	freed := 0
	for j := 0; j < s.n; j++ {
		if s.running[j] && s.endAt[j] <= next+1e-12 {
			completed = append(completed, j)
		}
	}
	for _, j := range completed {
		s.running[j] = false
		s.done[j] = true
		freed += s.alpha[j]
	}
	s.dfs(next, used-freed, nDone+len(completed), latest, 0)
	for _, j := range completed {
		s.done[j] = false
		s.running[j] = true
	}
}
