package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

func TestOptimalSingleTask(t *testing.T) {
	in := &allot.Instance{
		G:     dag.New(1),
		Tasks: []malleable.Task{malleable.NewTask("a", []float64{4, 2})},
		M:     2,
	}
	if got := Optimal(in); math.Abs(got-2) > 1e-9 {
		t.Errorf("OPT = %v, want 2 (run on both processors)", got)
	}
}

func TestOptimalChainPerfectSpeedup(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	in := &allot.Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("a", []float64{4, 2}),
			malleable.NewTask("b", []float64{4, 2}),
		},
		M: 2,
	}
	if got := Optimal(in); math.Abs(got-4) > 1e-9 {
		t.Errorf("OPT = %v, want 4", got)
	}
}

func TestOptimalIndependentTradeoff(t *testing.T) {
	// Two sequential unit tasks on m=2: run them in parallel on one
	// processor each -> OPT = 1.
	in := &allot.Instance{
		G: dag.New(2),
		Tasks: []malleable.Task{
			malleable.Sequential("a", 1, 2),
			malleable.Sequential("b", 1, 2),
		},
		M: 2,
	}
	if got := Optimal(in); math.Abs(got-1) > 1e-9 {
		t.Errorf("OPT = %v, want 1", got)
	}
}

func TestOptimalPrefersNarrowAllotments(t *testing.T) {
	// Three unit sequential tasks, m=2: OPT = 2 (pack 2 then 1).
	in := &allot.Instance{G: dag.New(3), M: 2}
	for i := 0; i < 3; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("s", 1, 2))
	}
	if got := Optimal(in); math.Abs(got-2) > 1e-9 {
		t.Errorf("OPT = %v, want 2", got)
	}
}

func TestOptimalForAllotmentFixed(t *testing.T) {
	// Fixed wide allotments force serialisation.
	in := &allot.Instance{G: dag.New(2), M: 2}
	in.Tasks = []malleable.Task{
		malleable.NewTask("a", []float64{4, 3}),
		malleable.NewTask("b", []float64{4, 3}),
	}
	if got := OptimalForAllotment(in, []int{2, 2}); math.Abs(got-6) > 1e-9 {
		t.Errorf("OPT(2,2) = %v, want 6", got)
	}
	if got := OptimalForAllotment(in, []int{1, 1}); math.Abs(got-4) > 1e-9 {
		t.Errorf("OPT(1,1) = %v, want 4", got)
	}
}

func TestOptimalEmptyInstance(t *testing.T) {
	in := &allot.Instance{G: dag.New(0), M: 2}
	if got := Optimal(in); got != 0 {
		t.Errorf("OPT of empty instance = %v", got)
	}
}

func TestOptimalPanicsOnLargeInstance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized instance should panic")
		}
	}()
	in := &allot.Instance{G: dag.New(MaxTasks + 1), M: 2}
	for i := 0; i <= MaxTasks; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("s", 1, 2))
	}
	Optimal(in)
}

// OPT is sandwiched: LP lower bound <= OPT <= two-phase makespan, and the
// paper's guarantee holds against the true OPT.
func TestSandwichAndRatioAgainstTrueOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	worst := 0.0
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(5)
		m := 2 + rng.Intn(2)
		in := gen.Instance(gen.ErdosDAG(n, 0.35, rng), gen.FamilyMixed, m, rng)
		opt := Optimal(in)
		res, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.LowerBound > opt+1e-6 {
			t.Errorf("trial %d: LP bound %v exceeds OPT %v", trial, res.LowerBound, opt)
		}
		if res.Makespan < opt-1e-6 {
			t.Errorf("trial %d: makespan %v below OPT %v (infeasible?)", trial, res.Makespan, opt)
		}
		ratio := res.Makespan / opt
		if ratio > res.Params.R+1e-6 {
			t.Errorf("trial %d (n=%d m=%d): ratio vs true OPT %.4f exceeds proven %.4f",
				trial, n, m, ratio, res.Params.R)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Logf("worst observed ratio vs true OPT: %.4f", worst)
}

// Brute force can never beat the certificate lower bound max over
// allotments alpha of min(L(alpha), ...) — sanity check the search explores
// waiting decisions correctly on a known tricky case.
func TestOptimalRespectsPrecedenceIdleness(t *testing.T) {
	// 0 -> 2, 1 independent long; m=2. Starting 1 greedily on 2 processors
	// would delay 2. OPT must find the idling schedule if it is better.
	g := dag.New(3)
	g.MustEdge(0, 2)
	in := &allot.Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("short", []float64{1, 1}),
			malleable.NewTask("long", []float64{10, 5.5}),
			malleable.NewTask("tail", []float64{1, 1}),
		},
		M: 2,
	}
	got := Optimal(in)
	// Best: run the chain 0 -> 2 on one processor while... no — better:
	// run 0 then 2 on a single processor during [0,2) and give task 1 both
	// processors afterwards? The true optimum runs 0 at [0,1), 2 at [1,2)
	// on one processor and task 1 on BOTH processors at [2, 7.5) — or
	// symmetrically task 1 first — for makespan 7.5, beating the greedy
	// no-idle schedules (10).
	if math.Abs(got-7.5) > 1e-9 {
		t.Errorf("OPT = %v, want 7.5", got)
	}
}
