package allot_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/bruteforce"
	"malsched/internal/flow"
	"malsched/internal/gen"
)

// checkMincutAgainstSparse solves the instance with the parametric
// min-cut sweep and the lazy sparse simplex and verifies the mincut
// result exactly the way the sparse path was verified against the dense
// reference (see checkAgainstReference): (a) the optima agree to 1e-6
// relative — the LP optimum is unique even when the optimal point is
// not, so only the objective is pinned — and (b) the sweep's solution
// is feasible for LP (9): times inside their frontier domains, work
// evaluated on the frontier, and the certified relation
// max{L*, W*/m} <= C*.
func checkMincutAgainstSparse(t *testing.T, in *allot.Instance, ws *allot.Workspace) {
	t.Helper()
	ws.ForceFormulation = allot.FormulationMincut
	mc, err := allot.SolveLPWith(in, ws)
	ws.ForceFormulation = ""
	if err != nil {
		t.Fatalf("mincut: %v", err)
	}
	if mc.Formulation != allot.FormulationMincut {
		t.Fatalf("formulation = %q, want mincut", mc.Formulation)
	}
	ws.ForceFormulation = allot.FormulationLazy
	sparse, err := allot.SolveLPWith(in, ws)
	ws.ForceFormulation = ""
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	tol := 1e-6 * (1 + math.Abs(sparse.C))
	if math.Abs(mc.C-sparse.C) > tol {
		t.Errorf("optimum differs: mincut C=%v sparse C=%v (breakpoints=%d augments=%d)",
			mc.C, sparse.C, mc.Cuts, mc.Rounds)
	}
	fronts := in.Frontiers()
	for j := range fronts {
		f := fronts[j]
		if mc.X[j] < f.XMin()-1e-9 || mc.X[j] > f.XMax()+1e-9 {
			t.Errorf("task %d: x*=%v outside [%v, %v]", j, mc.X[j], f.XMin(), f.XMax())
		}
		if w := f.WorkAt(mc.X[j]); math.Abs(w-mc.Wbar[j]) > 1e-6*(1+w) {
			t.Errorf("task %d: Wbar=%v != w(x*)=%v", j, mc.Wbar[j], w)
		}
	}
	lb := math.Max(mc.L, mc.W/float64(in.M))
	if lb > mc.C+tol {
		t.Errorf("certificate broken: max{L=%v, W/m=%v} > C=%v", mc.L, mc.W/float64(in.M), mc.C)
	}
}

// TestSolveLPMincutMatchesSparse is the acceptance differential test for
// the parametric formulation: mincut against the lazy sparse simplex
// across six random DAG families, machine sizes and task families,
// through one shared workspace (reuse must not leak state between
// instances or formulations).
func TestSolveLPMincutMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	ws := allot.NewWorkspace()
	for trial := 0; trial < 36; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 4 + rng.Intn(24)
		m := 2 + rng.Intn(15)
		g := buildDAG(family, n, 0.1+0.3*rng.Float64(), rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", family, g.N(), m), func(t *testing.T) {
			checkMincutAgainstSparse(t, in, ws)
		})
	}
}

// TestSolveLPMincutLargerM drives machine sizes where the crashing
// curves get many near-collinear pieces — the shapes that exercise the
// slope-representative envelope collapse and the piece-boundary
// snapping of the sweep.
func TestSolveLPMincutLargerM(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	ws := allot.NewWorkspace()
	for _, cfg := range []struct {
		family string
		n, m   int
	}{
		{"layered", 40, 64},
		{"erdos", 32, 48},
		{"forkjoin", 26, 64},
		{"chain", 30, 64},
		{"independent", 48, 64},
		{"outtree", 40, 48},
	} {
		g := buildDAG(cfg.family, cfg.n, 0.15, rng)
		in := gen.Instance(g, gen.FamilyMixed, cfg.m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", cfg.family, g.N(), cfg.m), func(t *testing.T) {
			checkMincutAgainstSparse(t, in, ws)
		})
	}
}

// TestSolveLPMincutBelowBruteforceOptimal closes the loop on tiny
// instances: the LP optimum is a lower bound on the true integral
// optimum (Eq. 11), so the sweep's C* must stay below exhaustive
// search.
func TestSolveLPMincutBelowBruteforceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	ws := allot.NewWorkspace()
	ws.ForceFormulation = allot.FormulationMincut
	defer func() { ws.ForceFormulation = "" }()
	for trial := 0; trial < 12; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 3 + rng.Intn(3)
		m := 2 + rng.Intn(2)
		g := buildDAG(family, n, 0.3, rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		opt := bruteforce.Optimal(in)
		mc, err := allot.SolveLPWith(in, ws)
		if err != nil {
			t.Fatalf("trial %d: mincut: %v", trial, err)
		}
		if eps := 1e-6 * (1 + opt); mc.C > opt+eps {
			t.Errorf("trial %d (%s): mincut C*=%v exceeds brute-force OPT=%v", trial, family, mc.C, opt)
		}
	}
}

// TestMincutAutoRouting pins the router: with the mincut window forced
// open the auto route must take the sweep, with it disabled the same
// instance must fall back to a simplex path, and an unknown pinned
// formulation must error.
func TestMincutAutoRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	in := gen.Instance(gen.Layered(10, 6, 3, rng), gen.FamilyMixed, 32, rng)

	ws := allot.NewWorkspace()
	ws.MincutThreshold = 1
	frac, err := allot.SolveLPWith(in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Formulation != allot.FormulationMincut {
		t.Errorf("open mincut window routed to %q, want mincut", frac.Formulation)
	}
	if frac.Cuts == 0 {
		t.Errorf("mincut solve reports zero breakpoints on a work-bound instance")
	}

	ws.MincutThreshold = -1
	frac, err = allot.SolveLPWith(in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Formulation == allot.FormulationMincut {
		t.Errorf("disabled mincut window still routed to the sweep")
	}

	ws.ForceFormulation = "nonsense"
	if _, err := allot.SolveLPWith(in, ws); err == nil {
		t.Errorf("unknown pinned formulation did not error")
	}
	ws.ForceFormulation = ""
}

// TestMincutFaultInjection arms the flow core's fault hook and checks
// the failure surfaces as flow.ErrStalled through SolveLPWith — the
// sentinel the serving layer's degradation ladder classifies as
// recoverable.
func TestMincutFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	in := gen.Instance(gen.Layered(8, 4, 3, rng), gen.FamilyMixed, 8, rng)
	ws := allot.NewWorkspace()
	ws.ForceFormulation = allot.FormulationMincut
	flow.FaultSweep = func() bool { return true }
	defer func() { flow.FaultSweep = nil }()
	_, err := allot.SolveLPWith(in, ws)
	if err == nil {
		t.Fatal("armed fault hook did not fail the solve")
	}
	if !errors.Is(err, flow.ErrStalled) {
		t.Fatalf("fault error %v is not errors.Is-able to flow.ErrStalled", err)
	}
}
