package allot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"malsched/internal/dag"
	"malsched/internal/malleable"
)

// twoTaskChain: 0 -> 1 on m=2 with simple tasks.
func twoTaskChain() *Instance {
	g := dag.New(2)
	g.MustEdge(0, 1)
	return &Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("a", []float64{4, 2}), // perfect speedup
			malleable.NewTask("b", []float64{4, 2}),
		},
		M: 2,
	}
}

func TestValidate(t *testing.T) {
	in := twoTaskChain()
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := &Instance{G: dag.New(1), Tasks: in.Tasks, M: 2}
	if bad.Validate() == nil {
		t.Error("mismatched task count accepted")
	}
	if (&Instance{G: dag.New(0), M: 0}).Validate() == nil {
		t.Error("m=0 accepted")
	}
	cyc := dag.New(2)
	cyc.MustEdge(0, 1)
	cyc.MustEdge(1, 0)
	if (&Instance{G: cyc, Tasks: in.Tasks, M: 2}).Validate() == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestSolveLPChain(t *testing.T) {
	// Chain of two perfect-speedup tasks on m=2: running both on 2
	// processors gives L = W/m = 4, so C* = 4 and x*_j = 2.
	in := twoTaskChain()
	frac, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.C-4) > 1e-6 {
		t.Errorf("C* = %v, want 4", frac.C)
	}
	for j, x := range frac.X {
		if math.Abs(x-2) > 1e-6 {
			t.Errorf("x*_%d = %v, want 2", j, x)
		}
	}
	if math.Abs(frac.L-4) > 1e-6 {
		t.Errorf("L* = %v, want 4", frac.L)
	}
	if math.Abs(frac.W-8) > 1e-6 {
		t.Errorf("W* = %v, want 8", frac.W)
	}
}

func TestSolveLPIndependentSequentialTasks(t *testing.T) {
	// Four sequential (no-speedup) unit tasks on m=2: LP must discover
	// C* = W/m = 2 with every x*_j = 1.
	in := &Instance{G: dag.New(4), M: 2}
	for i := 0; i < 4; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("s", 1, 2))
	}
	frac, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.C-2) > 1e-6 {
		t.Errorf("C* = %v, want 2 (work bound)", frac.C)
	}
}

func TestSolveLPSingleTask(t *testing.T) {
	// One power-law task alone: the LP balances path length (x) against
	// work/m; for p(l)=8/l on m=4, running on 4 procs gives L=2, W/m=2.
	in := &Instance{
		G:     dag.New(1),
		Tasks: []malleable.Task{malleable.CappedLinear("c", 8, 4, 4)},
		M:     4,
	}
	frac, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.C-2) > 1e-6 {
		t.Errorf("C* = %v, want 2", frac.C)
	}
	if math.Abs(frac.X[0]-2) > 1e-6 {
		t.Errorf("x* = %v, want 2", frac.X[0])
	}
}

// Eq. (11): the LP optimum is a lower bound dominated by any feasible
// integral schedule value; here tested as max{L*, W*/m} <= C* + tol and
// C* <= makespan of an arbitrary feasible allotment's critical-path/work
// certificate.
func TestLPLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := 2 + r.Intn(4)
		g := dag.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if r.Float64() < 0.3 {
					g.MustEdge(a, b)
				}
			}
		}
		in := &Instance{G: g, M: m}
		for j := 0; j < n; j++ {
			in.Tasks = append(in.Tasks, malleable.RandomConcave("t", 1+9*r.Float64(), m, r))
		}
		frac, err := SolveLP(in)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if frac.L > frac.C+1e-6 || frac.W/float64(m) > frac.C+1e-6 {
			t.Logf("seed %d: max{L,W/m} exceeds C*: L=%v W/m=%v C=%v", seed, frac.L, frac.W/float64(m), frac.C)
			return false
		}
		// Any integral allotment alpha yields the certificate
		// max{L(alpha), W(alpha)/m} >= C*.
		alpha := make([]int, n)
		w := make([]float64, n)
		totalWork := 0.0
		for j := range alpha {
			alpha[j] = 1 + r.Intn(m)
			w[j] = in.Tasks[j].Time(alpha[j])
			totalWork += in.Tasks[j].Work(alpha[j])
		}
		length, _, _ := g.CriticalPath(w)
		cert := math.Max(length, totalWork/float64(m))
		return cert >= frac.C-1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Errorf("LP lower-bound property failed: %v", err)
	}
}

// Lemma 4.1 on LP solutions: l <= l*_j <= l+1 where x*_j lies in segment l.
func TestLStarRange(t *testing.T) {
	in := twoTaskChain()
	frac, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	for j, ls := range frac.LStar {
		if ls < 1-1e-9 || ls > 2+1e-9 {
			t.Errorf("l*_%d = %v outside [1,2]", j, ls)
		}
	}
}

func TestRoundProducesValidAllotment(t *testing.T) {
	in := twoTaskChain()
	frac, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, rho := range []float64{0, 0.26, 0.5, 1} {
		alloc := Round(in, frac, rho)
		for j, l := range alloc {
			if l < 1 || l > in.M {
				t.Errorf("rho=%v: allotment %d for task %d out of range", rho, l, j)
			}
		}
	}
}

// Rounding respects the Lemma 4.2 stretch bounds on LP solutions.
func TestRoundStretchOnLPSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		m := 2 + rng.Intn(6)
		g := dag.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.3 {
					g.MustEdge(a, b)
				}
			}
		}
		in := &Instance{G: g, M: m}
		for j := 0; j < n; j++ {
			in.Tasks = append(in.Tasks, malleable.RandomConcave("t", 1+9*rng.Float64(), m, rng))
		}
		frac, err := SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		rho := rng.Float64()
		durBound, workBound := malleable.StretchBounds(rho)
		alloc := Round(in, frac, rho)
		fronts := in.Frontiers()
		for j, l := range alloc {
			if p := in.Tasks[j].Time(l); p > durBound*frac.X[j]+1e-7 {
				t.Errorf("trial %d task %d: p(l')=%v > %v * x*=%v", trial, j, p, durBound, frac.X[j])
			}
			if w := in.Tasks[j].Work(l); w > workBound*fronts[j].WorkAt(frac.X[j])+1e-7 {
				t.Errorf("trial %d task %d: W(l')=%v > %v * w(x*)=%v", trial, j, w, workBound, fronts[j].WorkAt(frac.X[j]))
			}
		}
	}
}

func TestFrontiersMatchTasks(t *testing.T) {
	in := twoTaskChain()
	fs := in.Frontiers()
	if len(fs) != 2 {
		t.Fatalf("got %d frontiers", len(fs))
	}
	if fs[0].XMax() != 4 || fs[0].XMin() != 2 {
		t.Errorf("frontier domain = [%v,%v], want [2,4]", fs[0].XMin(), fs[0].XMax())
	}
}
