package allot_test

import (
	"reflect"
	"runtime"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/gen"

	"math/rand"
)

// TestParallelSeparationDeterministic pins the parallel lazy-cut
// separation's contract: the task shards are fixed by n alone and the
// merge walks them in order, so the selected cuts — and therefore the
// entire solve — are byte-identical for every worker count. The
// instance is sized past the parallel threshold (n >= 2*sepShardSize)
// so the sharded path actually fans out when GOMAXPROCS allows.
func TestParallelSeparationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	in := gen.Instance(gen.Layered(40, 16, 3, rng), gen.FamilyMixed, 16, rng)

	solve := func() *allot.Fractional {
		ws := allot.NewWorkspace()
		ws.SegThreshold = -1 // pin the lazy-cut path; this test is about its separation
		frac, err := allot.SolveLPWith(in, ws)
		if err != nil {
			t.Fatal(err)
		}
		return frac
	}

	base := solve()
	if base.Cuts == 0 {
		t.Fatalf("instance generated no lazy cuts; the test exercises nothing")
	}
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		frac := solve()
		runtime.GOMAXPROCS(prev)
		if !reflect.DeepEqual(frac, base) {
			t.Errorf("GOMAXPROCS=%d: solve diverged (cuts %d vs %d, C %v vs %v)",
				procs, frac.Cuts, base.Cuts, frac.C, base.C)
		}
	}

	// And a same-workspace repeat must match too (warm-path reuse).
	ws := allot.NewWorkspace()
	ws.SegThreshold = -1
	a, err := allot.SolveLPWith(in, ws)
	if err != nil {
		t.Fatal(err)
	}
	b, err := allot.SolveLPWith(in, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("warm repeat diverged")
	}
}
