// Warm-starting phase 1 across instances: CaptureLP snapshots the solved
// LP's basis together with the exact sequence of supporting-line rows the
// lazy loop generated, and SolveLPDeltaWith replays that sequence on a
// structurally identical instance with edited processing times, so the
// simplex starts from the predecessor's optimal basis (lp.SolveHotWith)
// instead of the crash basis. This is the serving layer's delta path: an
// edited DAG re-solves in a handful of pivots instead of a cold solve.
//
// Snapshots only exist for the lazy-cut formulation. The segment-variable
// reformulation (segment.go) lays its columns out per frontier segment —
// a function of the processing-time values, not just the structure — so a
// basis from one instance is not positionally meaningful on another;
// callers wanting a snapshot force the lazy route (SegThreshold < 0).
package allot

import (
	"fmt"

	"malsched/internal/lp"
)

// CutRef identifies one supporting-line row: segment Seg of task Task's
// efficient frontier.
type CutRef struct {
	Task int32 `json:"t"`
	Seg  int32 `json:"s"`
}

// LPSnapshot is a transplantable warm start for LP (9): the optimal basis
// of a solved instance plus the replay log of lazily generated
// supporting-line rows, in append order. A snapshot is immutable once
// captured and safe to share across goroutines; it is only meaningful for
// instances whose structure (task count, machine size, DAG shape) matches
// the instance it was captured from — the serving layer enforces that via
// the structure fingerprint, and SolveLPDeltaWith degrades to a cold
// solve on any residual mismatch.
type LPSnapshot struct {
	Basis  *lp.Basis
	Cuts   []CutRef
	NTasks int
	M      int
}

// CaptureLP exports a warm-start snapshot of the last completed lazy-path
// solve on ws (SolveLPWith off the segment route, or SolveLPDeltaWith).
// It returns nil when the workspace holds no transplantable state: the
// last solve failed, took the segment route, or was for a different
// instance shape than in.
//
// The snapshot replays the full cut log, slack rows included. Slack rows
// could be dropped without unbalancing the basis (one row, one basic
// logical), but each supporting line is a globally valid lower bound on
// its task's work, and keeping only the lines binding at the old optimum
// lets the warm solve's early iterations wander into the regions the
// dropped lines used to fence off — the cut loop then re-separates most
// of the log back, which is the cold solve's dominant cost. Replaying
// everything keeps the relaxation at full strength, so the loop after a
// warm start converges in a couple of rounds of genuinely new cuts.
func (ws *Workspace) CaptureLP(in *Instance) *LPSnapshot {
	n := in.G.N()
	if ws.lastLazyN == 0 || ws.lastLazyN != n {
		return nil
	}
	bas := ws.LP.ExportBasis()
	if bas == nil || bas.NVars != 3*n+2 {
		return nil
	}
	cuts := make([]CutRef, len(ws.cutLog))
	for i, pk := range ws.cutLog {
		cuts[i] = CutRef{Task: pk.task, Seg: pk.seg}
	}
	return &LPSnapshot{Basis: bas, Cuts: cuts, NTasks: n, M: in.M}
}

// SolveLPDeltaWith solves LP (9) for in warm-starting from a snapshot
// captured on a structurally identical instance: it rebuilds the static
// model (whose layout depends only on structure), replays the snapshot's
// supporting-line rows in their original order so every row position
// matches the basis, transplants the basis via lp.SolveHotWith, and runs
// the ordinary lazy cut loop from there — edited tasks whose work
// variables now sit below their work functions get fresh cuts exactly as
// in a cold solve. The result is an exact optimum of LP (9) for in, the
// same LP the cold path solves; only the simplex's starting point
// differs. Any mismatch between snapshot and instance degrades to a cold
// SolveLPWith, never to an error a cold solve would not also produce.
func SolveLPDeltaWith(in *Instance, ws *Workspace, snap *LPSnapshot) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	n := in.G.N()
	if snap == nil || snap.Basis == nil || snap.NTasks != n || snap.M != in.M ||
		snap.Basis.NVars != 3*n+2 {
		return SolveLPWith(in, ws)
	}
	fronts := ws.frontiers(in)
	p := ws.buildBaseLP(in, fronts)

	// Replay the snapshot's cut rows in capture order. Edited processing
	// times can shrink a task's frontier, leaving a logged segment index
	// out of range; clamping to the last segment keeps the row count — and
	// with it every row position — aligned with the basis (the clamped
	// line is still a valid supporting line, merely a possibly redundant
	// one). A task whose frontier collapsed to a single point has no
	// supporting lines at all; no row can stand in, so that edit falls
	// back to the cold path.
	for _, c := range snap.Cuts {
		j := int(c.Task)
		if j < 0 || j >= n {
			return SolveLPWith(in, ws)
		}
		f := &fronts[j]
		segs := f.Segments()
		if segs < 1 {
			return SolveLPWith(in, ws)
		}
		s := int(c.Seg)
		if s < 0 {
			return SolveLPWith(in, ws)
		}
		if s >= segs {
			s = segs - 1
		}
		ws.logCut(p, f, j, s, n)
	}

	ws.LP.DeferPolish = true
	sol, err := p.SolveHotWith(&ws.LP, snap.Basis)
	if err != nil {
		// SolveHotWith already degrades to a cold SolveWith internally;
		// an error here is one the cold path would produce for the same
		// model (infeasibility, iteration limit) and is genuine.
		return nil, fmt.Errorf("allot: LP (9) delta solve failed: %w", err)
	}
	sol, cuts, rounds, err := ws.runCutLoop(p, fronts, sol, in.M)
	if err != nil {
		return nil, err
	}
	ws.lastLazyN = n
	return extractFractional(sol, fronts, cuts, rounds), nil
}
