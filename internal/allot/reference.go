package allot

import (
	"fmt"

	"malsched/internal/lp"
)

// SolveLPReference solves LP (9) exactly the way the pre-sparse
// implementation did: the full model is materialised up front — explicit
// domain rows p_j(m) <= x_j <= p_j(1), completion and L-cap rows for
// every task, and all Θ(n·m) supporting-line rows of Eq. (8) — and handed
// to the dense two-phase tableau solver (lp.SolveDense). It is the
// differential-testing oracle for SolveLPWith, in the same spirit as
// listsched.RunReference for the phase-2 scheduler: both formulations
// must agree on the optimum C* to within numerical tolerance on every
// instance (the optimal vertex itself need not be unique, so only the
// objective is pinned). The dense tableau is O((rows+cols)^2) memory, so
// this stays a small-instance tool.
func SolveLPReference(in *Instance) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.G.N()
	fronts := in.Frontiers()

	// Same deterministic variable layout as SolveLPWith:
	// C_j = j, x_j = n+j, wbar_j = 2n+j, L = 3n, C = 3n+1.
	p := lp.NewProblem()
	for j := 0; j < 3*n+2; j++ {
		p.AddVar("")
	}
	cj := func(j int) int { return j }
	xj := func(j int) int { return n + j }
	wj := func(j int) int { return 2*n + j }
	vL := 3 * n
	vC := 3*n + 1
	p.SetObj(vC, 1)

	for j := 0; j < n; j++ {
		f := fronts[j]
		// Domain of the processing time: p_j(m) <= x_j <= p_j(1).
		p.AddConstraint(lp.GE, f.XMin(), lp.Term{Var: xj(j), Coef: 1})
		p.AddConstraint(lp.LE, f.XMax(), lp.Term{Var: xj(j), Coef: 1})
		// Completion ordering: x_j <= C_j (valid for every task and required
		// for sources, which have no precedence row), C_j <= L.
		p.AddConstraint(lp.LE, 0, lp.Term{Var: xj(j), Coef: 1}, lp.Term{Var: cj(j), Coef: -1})
		p.AddConstraint(lp.LE, 0, lp.Term{Var: cj(j), Coef: 1}, lp.Term{Var: vL, Coef: -1})
		// Work linearisation (Eq. (8)): one supporting line per segment.
		for s := 0; s < f.Segments(); s++ {
			slope, intercept := lineCoefs(&f, s)
			p.AddConstraint(lp.LE, -intercept,
				lp.Term{Var: xj(j), Coef: slope}, lp.Term{Var: wj(j), Coef: -1})
		}
		if f.Segments() == 0 {
			// Degenerate frontier: the work is the constant W(l_min).
			p.AddConstraint(lp.GE, f.W[0], lp.Term{Var: wj(j), Coef: 1})
		}
	}
	// Precedence: C_i + x_j <= C_j for every arc (i, j).
	for _, e := range in.G.Edges() {
		p.AddConstraint(lp.LE, 0,
			lp.Term{Var: cj(e[0]), Coef: 1},
			lp.Term{Var: xj(e[1]), Coef: 1},
			lp.Term{Var: cj(e[1]), Coef: -1})
	}
	// L <= C and total work W/m <= C.
	p.AddConstraint(lp.LE, 0, lp.Term{Var: vL, Coef: 1}, lp.Term{Var: vC, Coef: -1})
	workTerms := make([]lp.Term, 0, n+1)
	for j := 0; j < n; j++ {
		workTerms = append(workTerms, lp.Term{Var: wj(j), Coef: 1 / float64(in.M)})
	}
	workTerms = append(workTerms, lp.Term{Var: vC, Coef: -1})
	p.AddConstraint(lp.LE, 0, workTerms...)

	sol, err := p.SolveDense()
	if err != nil {
		return nil, fmt.Errorf("allot: reference LP (9) failed: %w", err)
	}

	out := &Fractional{
		X:           make([]float64, n),
		Wbar:        make([]float64, n),
		LStar:       make([]float64, n),
		C:           sol.Obj,
		L:           sol.X[vL],
		Formulation: FormulationDense,
	}
	for j := 0; j < n; j++ {
		out.X[j] = clamp(sol.X[xj(j)], fronts[j].XMin(), fronts[j].XMax())
		out.Wbar[j] = fronts[j].WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = fronts[j].FractionalAlloc(out.X[j])
	}
	return out, nil
}
