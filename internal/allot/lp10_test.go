package allot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"malsched/internal/dag"
	"malsched/internal/malleable"
)

func TestSolveLP10Chain(t *testing.T) {
	in := twoTaskChain()
	frac, err := SolveLP10(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.C-4) > 1e-6 {
		t.Errorf("C* = %v, want 4", frac.C)
	}
}

// The paper's Section 3.1 Remark: LP (9) (work-variable formulation) and
// LP (10) (assignment-variable formulation) have equal optimal values.
// This is the computational verification of that equivalence proof.
func TestLP9EquivalentToLP10(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		m := 2 + r.Intn(5)
		g := dag.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if r.Float64() < 0.3 {
					g.MustEdge(a, b)
				}
			}
		}
		in := &Instance{G: g, M: m}
		for j := 0; j < n; j++ {
			in.Tasks = append(in.Tasks, malleable.RandomConcave("t", 1+9*r.Float64(), m, r))
		}
		f9, err := SolveLP(in)
		if err != nil {
			t.Logf("seed %d: LP9: %v", seed, err)
			return false
		}
		f10, err := SolveLP10(in)
		if err != nil {
			t.Logf("seed %d: LP10: %v", seed, err)
			return false
		}
		rel := math.Abs(f9.C-f10.C) / math.Max(1, f9.C)
		if rel > 1e-6 {
			t.Logf("seed %d: C*(9)=%v C*(10)=%v", seed, f9.C, f10.C)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Errorf("LP9/LP10 equivalence failed: %v", err)
	}
}

// LP10's recovered per-task processing times are feasible for the rounding
// machinery (inside the frontier domain), so it can be used as a drop-in
// phase-1 alternative.
func TestLP10RoundsCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		m := 2 + rng.Intn(4)
		g := dag.New(n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.3 {
					g.MustEdge(a, b)
				}
			}
		}
		in := &Instance{G: g, M: m}
		for j := 0; j < n; j++ {
			in.Tasks = append(in.Tasks, malleable.RandomConcave("t", 1+9*rng.Float64(), m, rng))
		}
		frac, err := SolveLP10(in)
		if err != nil {
			t.Fatal(err)
		}
		alloc := Round(in, frac, 0.26)
		for j, l := range alloc {
			if l < 1 || l > m {
				t.Errorf("trial %d: allotment %d for task %d", trial, l, j)
			}
		}
	}
}

// On a single task the two formulations agree with the direct optimum.
func TestLP10SingleTask(t *testing.T) {
	in := &Instance{
		G:     dag.New(1),
		Tasks: []malleable.Task{malleable.CappedLinear("c", 8, 4, 4)},
		M:     4,
	}
	frac, err := SolveLP10(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(frac.C-2) > 1e-6 {
		t.Errorf("C* = %v, want 2", frac.C)
	}
}

// TestSolveLP10WithReuseCutsAllocs pins the satellite fix: the assignment
// formulation used to allocate its variable-index tables, term slices and
// name strings on every call; through a warm workspace the per-solve
// garbage must now stay within a small constant.
func TestSolveLP10WithReuseCutsAllocs(t *testing.T) {
	in := twoTaskChain()
	ws := NewWorkspace()
	if _, err := SolveLP10With(in, ws); err != nil { // warm-up growth
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(10, func() {
		if _, err := SolveLP10With(in, ws); err != nil {
			t.Fatal(err)
		}
	})
	// The Fractional result (4 slices + struct) is the intended
	// allocation; a little slack covers the solver's geometric growth.
	if warm > 10 {
		t.Errorf("warm SolveLP10With allocates %v objects per run, want <= 10", warm)
	}
	cold := testing.AllocsPerRun(10, func() {
		if _, err := SolveLP10(in); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold {
		t.Errorf("workspace reuse does not cut allocations: warm %v >= cold %v", warm, cold)
	}
}
