// Package allot implements the first phase of the Jansen–Zhang two-phase
// algorithm (Section 3.1 of the paper): it formulates the allotment problem
// as the linear program (9), solves it with the sparse revised simplex from
// internal/lp, extracts the fractional processing times x*_j together with
// the LP lower bound C* >= max{L*, W*/m}, and rounds the fractional solution
// with parameter rho into an integral allotment alpha'.
//
// The LP is built on the efficient frontier of each task, so the convexity
// of the work function in the processing time (Theorem 2.2) turns the
// piecewise linear program (7) into the ordinary linear program (9): for
// every frontier segment l the supporting line
//
//	[(l+1)p(l+1) - l p(l)]/[p(l+1) - p(l)] * x_j
//	  - p(l)p(l+1)/[p(l+1) - p(l)]  <=  wbar_j
//
// lower-bounds the work variable wbar_j. Materialising all Θ(n·m) of those
// rows up front is what made large instances unreachable, so SolveLPWith
// generates them lazily: the model starts with just the two endpoint lines
// per task (plus implicit variable bounds standing in for the 2n domain
// rows), and after each solve the most violated missing lines of every
// task are added — the per-task scans sharded over a bounded worker set
// with a deterministic merge — and the LP is re-solved warm via a
// dual-simplex restart from the previous basis. Convexity makes each
// round's cuts valid for the full LP and every round adds at least one
// new row, so the loop terminates — the same monotone-iteration
// discipline Esparza–Kiefer–Luttenberger use for least-fixed-point
// systems — and in practice a handful of cuts per task suffice. In the
// mid segment-mass window SolveLPWith instead routes to the
// segment-variable reformulation (segment.go), which encodes the same
// relaxation columnwise and solves in one call. SolveLPReference
// (reference.go) retains the full dense build as the
// differential-testing oracle for both.
package allot

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"malsched/internal/dag"
	"malsched/internal/lp"
	"malsched/internal/malleable"
)

// ErrCutPanic marks a panic isolated inside a cut-separation shard scan
// (errors.Is-able, so the serving layer's degradation ladder can classify
// it as a recoverable solver panic).
var ErrCutPanic = errors.New("allot: cut separation panicked")

// Instance couples the precedence graph with the malleable tasks and the
// machine size. Tasks[j] corresponds to vertex j of G.
type Instance struct {
	G     *dag.DAG
	Tasks []malleable.Task
	M     int
}

// Validate checks the instance is well-formed and every task satisfies the
// model assumptions on m processors.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("allot: machine size %d < 1", in.M)
	}
	if in.G.N() != len(in.Tasks) {
		return fmt.Errorf("allot: %d tasks for %d vertices", len(in.Tasks), in.G.N())
	}
	if err := in.G.Validate(); err != nil {
		return err
	}
	for j, t := range in.Tasks {
		if err := t.Validate(in.M); err != nil {
			return fmt.Errorf("task %d (%s): %w", j, t.Name, err)
		}
	}
	return nil
}

// Frontiers computes the efficient frontier of every task on m processors.
func (in *Instance) Frontiers() []malleable.Frontier {
	fs := make([]malleable.Frontier, len(in.Tasks))
	for j, t := range in.Tasks {
		fs[j] = malleable.NewFrontier(t, in.M)
	}
	return fs
}

// Formulation names one of the interchangeable solve paths for LP (9).
// All four optimise the same slope-representative relaxation and agree
// on the optimum to the cut tolerance; they differ in machinery and in
// which instance shapes they are fast on.
type Formulation string

const (
	// FormulationLazy: sparse simplex with lazy supporting-line cuts
	// and dual-simplex warm restarts (this file).
	FormulationLazy Formulation = "lazy"
	// FormulationSegment: the columnwise segment-variable
	// reformulation, solved in one artificial-free call (segment.go).
	FormulationSegment Formulation = "segment"
	// FormulationMincut: Fulkerson's parametric min-cut sweep on the
	// project-crashing network (mincut.go + internal/flow).
	FormulationMincut Formulation = "mincut"
	// FormulationDense: the dense reference tableau (reference.go),
	// the differential oracle and the degradation ladder's last solver
	// rung.
	FormulationDense Formulation = "dense"
)

// Fractional is the optimal solution of LP (9).
type Fractional struct {
	X     []float64 // x*_j: fractional processing times
	Wbar  []float64 // wbar_j: work of task j in the LP optimum
	C     float64   // C*: LP optimum, a lower bound on OPT (Eq. 11)
	L     float64   // L*: fractional critical-path length
	W     float64   // W*: fractional total work
	LStar []float64 // l*_j = w_j(x*_j)/x*_j (Eq. 12)
	// Formulation records which solve path produced this solution.
	Formulation Formulation
	// Cuts and Rounds are per-formulation solve-effort diagnostics: on
	// the lazy path, supporting-line rows generated beyond the two
	// endpoint seeds and dual-simplex warm restarts; on the mincut
	// path, parametric breakpoints and warm augmenting paths.
	Cuts, Rounds int
}

// cutEps is the relative supporting-line violation below which a task
// counts as satisfied in the lazy cut loop. It sits well above the
// simplex feasibility tolerance (1e-9) and well below the differential
// test tolerance (1e-6 relative).
const cutEps = 1e-8

// SolveLP builds and solves LP (9) for the instance. The returned C
// satisfies max{L, W/m} <= C <= OPT.
func SolveLP(in *Instance) (*Fractional, error) {
	return SolveLPWith(in, nil)
}

// lineCoefs returns the slope and intercept of segment s of frontier f:
// the supporting line of Eq. (8) with w >= slope*x + intercept on it.
func lineCoefs(f *malleable.Frontier, s int) (slope, intercept float64) {
	hi, lo := f.X[s], f.X[s+1] // p(l) > p(l+1)
	whi, wlo := f.W[s], f.W[s+1]
	den := lo - hi // negative
	return (wlo - whi) / den, (whi*lo - wlo*hi) / den
}

// addCut appends the supporting-line row of segment s of task j:
// slope*x_j + intercept <= wbar_j  <=>  slope*x_j - wbar_j <= -intercept.
func addCut(p *lp.Problem, f *malleable.Frontier, j, s, n int) {
	slope, intercept := lineCoefs(f, s)
	p.AddConstraint(lp.LE, -intercept,
		lp.Term{Var: n + j, Coef: slope}, lp.Term{Var: 2*n + j, Coef: -1})
}

// SolveLPWith is SolveLP with a reusable workspace (a nil ws solves with
// fresh buffers). The simplex workspace, LP problem, task frontiers and
// cut bookkeeping all live in ws and are reused across calls, so repeated
// solves on same-shaped instances allocate almost nothing beyond the
// returned Fractional.
func SolveLPWith(in *Instance, ws *Workspace) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	n := in.G.N()
	fronts := ws.frontiers(in)

	// Route between the formulations. A pinned formulation (requests,
	// tests, LP-snapshot capture) short-circuits; otherwise route by
	// frontier segment mass: beyond mincutFormulationMin the parametric
	// sweep dominates both simplex paths (mincut.go), in the mid window
	// the segment-variable formulation beats the lazy loop's one-
	// restart-per-row-batch convergence (see the crossover notes at
	// segFormulationMin/mincutFormulationMin), and small instances stay
	// on the lazy-cut loop below.
	switch ws.ForceFormulation {
	case FormulationSegment:
		return solveLPSegments(in, ws, fronts)
	case FormulationMincut:
		return solveLPMincut(in, ws, fronts)
	case FormulationDense:
		return SolveLPReference(in)
	case FormulationLazy:
		// fall through to the lazy-cut loop
	case "":
		total := 0
		for j := range fronts {
			total += fronts[j].Segments()
		}
		if thr := ws.MincutThreshold; thr >= 0 {
			lo := mincutFormulationMin
			if thr > 0 {
				lo = thr
			}
			if total >= lo {
				return solveLPMincut(in, ws, fronts)
			}
		}
		if thr := ws.SegThreshold; thr >= 0 {
			lo, hi := segFormulationMin, segFormulationMax
			if thr > 0 {
				lo, hi = thr, math.MaxInt
			}
			if total >= lo && total <= hi {
				return solveLPSegments(in, ws, fronts)
			}
		}
	default:
		return nil, fmt.Errorf("allot: unknown formulation %q", ws.ForceFormulation)
	}

	p := ws.buildBaseLP(in, fronts)

	// Seed cuts: the two endpoint supporting lines of every task tie wbar_j
	// to the work function at both extremes of the domain (the steep end
	// uses the last representative segment).
	for j := 0; j < n; j++ {
		f := &fronts[j]
		segs := f.Segments()
		if segs < 1 {
			continue
		}
		base := int(ws.segOff[j])
		ws.logCut(p, f, j, 0, n)
		for s := segs - 1; s > 0; s-- {
			if ws.segRep[base+s] {
				ws.logCut(p, f, j, s, n)
				break
			}
		}
	}

	// The LP is massively degenerate, so the solver runs cost-perturbed
	// throughout the cut loop (intermediate solutions only steer cut
	// selection) and the perturbation is polished away once, at the end.
	ws.LP.DeferPolish = true
	sol, err := p.SolveWith(&ws.LP)
	if err != nil {
		return nil, fmt.Errorf("allot: LP (9) failed: %w", err)
	}
	sol, cuts, rounds, err := ws.runCutLoop(p, fronts, sol, in.M)
	if err != nil {
		return nil, err
	}
	ws.lastLazyN = n
	return extractFractional(sol, fronts, cuts, rounds), nil
}

// buildBaseLP constructs the static part of LP (9) — variables, implicit
// bounds, crash bounds, precedence/L/total-work rows — into the
// workspace's reusable problem, resets the lazy-cut bookkeeping and the
// cut replay log, and returns the problem ready for cut seeding
// (SolveLPWith) or cut replay (SolveLPDeltaWith). The construction order
// is deterministic and depends only on the instance's structure — task
// count, machine size and DAG shape — never on the processing-time
// values, which is what makes row/column positions transplantable between
// structurally identical instances.
func (ws *Workspace) buildBaseLP(in *Instance, fronts []malleable.Frontier) *lp.Problem {
	n := in.G.N()
	ws.lastLazyN = 0
	ws.cutLog = ws.cutLog[:0]

	// Variables: completion C_j, processing x_j, work wbar_j for each task,
	// plus the critical-path length L and makespan C. AddVar assigns
	// indices sequentially, so the layout is deterministic:
	// C_j = j, x_j = n+j, wbar_j = 2n+j, L = 3n, C = 3n+1.
	p := ws.problem()
	for j := 0; j < 3*n+2; j++ {
		p.AddVar("")
	}
	cj := func(j int) int { return j }
	xj := func(j int) int { return n + j }
	wj := func(j int) int { return 2*n + j }
	vL := 3 * n
	vC := 3*n + 1
	p.SetObj(vC, 1)

	// Implicit bounds carry what used to be 3n constraint rows: the domain
	// p_j(m) <= x_j <= p_j(1) of every processing time, and the work floor
	// wbar_j >= W_j(1) = min_x w_j(x) (a valid inequality for LP (9), and
	// the whole constraint for a degenerate single-point frontier).
	totalSegs := 0
	ws.segOff = growInt32(ws.segOff, n+1)
	for j := 0; j < n; j++ {
		f := &fronts[j]
		p.SetBounds(xj(j), f.XMin(), f.XMax())
		p.SetBounds(wj(j), f.W[0], math.Inf(1))
		ws.segOff[j] = int32(totalSegs)
		totalSegs += f.Segments()
	}
	ws.segOff[n] = int32(totalSegs)
	ws.segAdded = growBool(ws.segAdded, totalSegs)
	ws.segRep = growBool(ws.segRep, totalSegs)
	for i := range ws.segAdded {
		ws.segAdded[i] = false
	}
	// Cut generation is restricted to slope-representative segments: on
	// large machines adjacent frontier segments become nearly collinear,
	// and two such supporting lines active at the same breakpoint form a
	// 2x2 block with determinant ~ their slope gap — a numerically
	// singular basis in the making. Chains of segments whose slopes agree
	// to 1e-6 relative collapse onto their first member; the skipped
	// lines sit below the representative's by at most the slope gap times
	// the chain width, far inside the cut tolerance.
	for j := 0; j < n; j++ {
		f := &fronts[j]
		base := int(ws.segOff[j])
		lastRep := math.Inf(-1)
		for s := 0; s < f.Segments(); s++ {
			slope, _ := lineCoefs(f, s)
			rep := s == 0 || math.Abs(slope-lastRep) > 1e-6*(1+math.Abs(slope))
			ws.segRep[base+s] = rep
			if rep {
				lastRep = slope
			}
		}
	}

	// Crash bounds (applyCrashBounds, shared with the segment path):
	// every completion is lower-bounded by the longest path (at the
	// all-minimal processing times XMin) ending at the task, L by the
	// largest of those and C by max{Lmin, sum of work floors / m}. These
	// are implied inequalities — every feasible point already satisfies
	// them, so the polytope (and the optimum) is untouched — but starting
	// the nonbasic completions AT them makes the initial all-lower-bound
	// point satisfy every precedence row outright: the phase-1
	// artificials collapse from one per precedence row to the handful of
	// rows (seed cuts, total work) that are genuinely violated, and with
	// them thousands of phase-1 pivots.
	ws.applyCrashBounds(p, in, fronts, cj, vL, vC, workFloorMin(fronts))

	// Static rows. Completion ordering and the L cap are only needed where
	// the DAG does not imply them transitively: x_j <= C_j for sources
	// (elsewhere C_i >= 0 and the precedence row imply it) and C_j <= L for
	// sinks (elsewhere it follows along any path to a sink since x >= 0).
	for j := 0; j < n; j++ {
		if len(in.G.Preds(j)) == 0 {
			p.AddConstraint(lp.LE, 0, lp.Term{Var: xj(j), Coef: 1}, lp.Term{Var: cj(j), Coef: -1})
		}
		if len(in.G.Succs(j)) == 0 {
			p.AddConstraint(lp.LE, 0, lp.Term{Var: cj(j), Coef: 1}, lp.Term{Var: vL, Coef: -1})
		}
	}
	// Precedence: C_i + x_j <= C_j for every arc (i, j) — except along
	// linear chains (internal/prep ChainNext), whose k link rows collapse
	// to the single row C_v0 + sum_i x_vi <= C_vk: the interior
	// completions appear in no other row, so eliminating them changes
	// neither the feasible x-space nor the optimum, and drops k-1 rows
	// and as many basic variables per chain.
	ws.chainLinks(in.G)
	for v := 0; v < n; v++ {
		if ws.chainNext[v] >= 0 && !ws.linkInto[v] {
			// Head of a maximal chain: walk it and emit the collapsed row.
			terms := ws.termBuf(4)
			terms = append(terms, lp.Term{Var: cj(v), Coef: 1})
			t := v
			for ws.chainNext[t] >= 0 {
				t = int(ws.chainNext[t])
				terms = append(terms, lp.Term{Var: xj(t), Coef: 1})
			}
			terms = append(terms, lp.Term{Var: cj(t), Coef: -1})
			p.AddConstraint(lp.LE, 0, terms...)
		}
		for _, s := range in.G.Succs(v) {
			if int(ws.chainNext[v]) == s {
				continue // chain link: covered by its collapsed row
			}
			p.AddConstraint(lp.LE, 0,
				lp.Term{Var: cj(v), Coef: 1},
				lp.Term{Var: xj(s), Coef: 1},
				lp.Term{Var: cj(s), Coef: -1})
		}
	}
	// L <= C and total work W/m <= C (the one dense row of the model).
	p.AddConstraint(lp.LE, 0, lp.Term{Var: vL, Coef: 1}, lp.Term{Var: vC, Coef: -1})
	workTerms := ws.termBuf(n + 1)
	for j := 0; j < n; j++ {
		workTerms = append(workTerms, lp.Term{Var: wj(j), Coef: 1 / float64(in.M)})
	}
	workTerms = append(workTerms, lp.Term{Var: vC, Coef: -1})
	p.AddConstraint(lp.LE, 0, workTerms...)

	ws.totalSegs = totalSegs
	return p
}

// logCut materialises segment s of task j as a supporting-line row, marks
// it generated, and records it in the replay log.
func (ws *Workspace) logCut(p *lp.Problem, f *malleable.Frontier, j, s, n int) {
	addCut(p, f, j, s, n)
	ws.segAdded[int(ws.segOff[j])+s] = true
	ws.cutLog = append(ws.cutLog, sepPick{task: int32(j), seg: int32(s)})
}

// runCutLoop drives the lazy separation to convergence from the initial
// perturbed solve: while some task's work variable sits below its work
// function at the current optimum, add the most violated missing
// supporting lines per offending task and re-optimise warm with the dual
// simplex. Every round adds at least one of the finitely many lines, so
// the iteration is monotone and terminates; the cap is a pure safety net.
// Convergence is confirmed on the polished (exact) optimum: polishing can
// move the solution to a vertex that violates lines the perturbed point
// satisfied, so the loop re-checks and, if needed, keeps cutting. Shared
// by the cold path (SolveLPWith) and the delta path (SolveLPDeltaWith).
func (ws *Workspace) runCutLoop(p *lp.Problem, fronts []malleable.Frontier, sol *lp.Solution, m int) (*lp.Solution, int, int, error) {
	cuts, rounds := 0, 0
	polished := false
	var err error
	for {
		// The re-solves below poll the same flag per pivot; checking here
		// too keeps the O(n·m) separation scans off a canceled request.
		if ws.LP.Cancel.Canceled() {
			return nil, 0, 0, lp.ErrCanceled
		}
		added, sepErr := ws.addViolatedCuts(p, fronts, sol, m)
		if sepErr != nil {
			return nil, 0, 0, sepErr
		}
		if added == 0 {
			if polished {
				break
			}
			sol, err = p.PolishWith(&ws.LP)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("allot: LP (9) polish failed: %w", err)
			}
			polished = true
			continue
		}
		polished = false
		cuts += added
		rounds++
		if rounds > ws.totalSegs+4 {
			return nil, 0, 0, fmt.Errorf("allot: cut loop failed to converge after %d rounds", rounds)
		}
		sol, err = p.ReSolveWith(&ws.LP)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("allot: LP (9) cut round %d failed: %w", rounds, err)
		}
	}
	return sol, cuts, rounds, nil
}

// extractFractional converts the polished LP solution into the package's
// result shape.
func extractFractional(sol *lp.Solution, fronts []malleable.Frontier, cuts, rounds int) *Fractional {
	n := len(fronts)
	out := &Fractional{
		X:           make([]float64, n),
		Wbar:        make([]float64, n),
		LStar:       make([]float64, n),
		C:           sol.Obj,
		L:           sol.X[3*n],
		Formulation: FormulationLazy,
		Cuts:        cuts,
		Rounds:      rounds,
	}
	for j := 0; j < n; j++ {
		out.X[j] = clamp(sol.X[n+j], fronts[j].XMin(), fronts[j].XMax())
		// Evaluate the work on the frontier rather than trusting the slack
		// LP variable: when the total-work row is not binding the LP may
		// leave wbar_j above w_j(x*_j).
		out.Wbar[j] = fronts[j].WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = fronts[j].FractionalAlloc(out.X[j])
	}
	return out
}

// sepShardSize fixes the separation sharding granularity: tasks are cut
// into ceil(n/sepShardSize) contiguous shards regardless of how many
// workers run, so every per-shard result — and therefore the merged cut
// sequence — is byte-identical for any GOMAXPROCS. sepMaxWorkers bounds
// the worker set (beyond ~8 the memory-bound frontier scans stop
// scaling, and an unbounded fan-out would fight the solver pool's own
// parallelism on a loaded server).
const (
	sepShardSize    = 256
	sepMaxWorkers   = 8
	sepParThreshold = 2 * sepShardSize // below this many tasks, run inline
)

// sepPick is one selected cut: segment seg of task task's frontier.
type sepPick struct{ task, seg int32 }

// FaultCutWorker is a fault-injection hook (internal/faultinject): when
// non-nil and returning true, a separation shard panics mid-scan,
// exercising the worker panic isolation below. nil in production builds.
var FaultCutWorker func() bool

// separateShard scans the tasks of shard sh (the contiguous index range
// [sh*sepShardSize, (sh+1)*sepShardSize) ∩ [0, n)) for their top-K
// violated missing supporting lines at the solution x, appending picks —
// in task order, most violated first within a task — to the shard's
// reusable buffer. It only reads shared state (solution, frontiers, cut
// bookkeeping), so shards run concurrently without synchronisation.
func (ws *Workspace) separateShard(sh int, fronts []malleable.Frontier, solX []float64) {
	if FaultCutWorker != nil && FaultCutWorker() {
		panic("faultinject: cut-worker-panic")
	}
	n := len(fronts)
	lo, hi := sh*sepShardSize, (sh+1)*sepShardSize
	if hi > n {
		hi = n
	}
	picks := ws.sepPicks[sh][:0]
	for j := lo; j < hi; j++ {
		f := &fronts[j]
		segs := f.Segments()
		if segs < 1 {
			continue
		}
		x := clamp(solX[n+j], f.XMin(), f.XMax())
		wbar := solX[2*n+j]
		wtrue := f.WorkAt(x)
		eps := cutEps * (1 + math.Abs(wtrue))
		if wtrue-wbar <= eps {
			continue
		}
		// Select the task's top-K violated missing lines per round (rather
		// than only the single worst): cuts are cheap rows, extra rounds
		// are warm re-solves, so batching converges in far fewer rounds.
		const topK = 4
		var segTop [topK]int32
		var violTop [topK]float64
		cnt := 0
		base := int(ws.segOff[j])
		for s := 0; s < segs; s++ {
			if ws.segAdded[base+s] || !ws.segRep[base+s] {
				continue
			}
			slope, intercept := lineCoefs(f, s)
			v := slope*x + intercept - wbar
			if v <= eps {
				continue
			}
			i := cnt
			if i == topK {
				i--
				if v <= violTop[i] {
					continue
				}
			} else {
				cnt++
			}
			for i > 0 && violTop[i-1] < v {
				if i < topK {
					segTop[i], violTop[i] = segTop[i-1], violTop[i-1]
				}
				i--
			}
			segTop[i], violTop[i] = int32(s), v
		}
		for i := 0; i < cnt; i++ {
			picks = append(picks, sepPick{task: int32(j), seg: segTop[i]})
		}
	}
	ws.sepPicks[sh] = picks
}

// addViolatedCuts appends, for every task whose work variable sits below
// its work function at the LP solution, the most violated supporting
// lines not yet materialised, and reports how many rows it added. When
// the total-work row is slack — sum_j w_j(x*_j)/m fits under C* — it
// adds nothing at all: raising every wbar_j to w_j(x*_j) then yields a
// fully feasible point of the complete LP (9) at the same objective, so
// the relaxation is already exact and no amount of cutting can change
// C*.
//
// The per-task separation scans are sharded over a bounded worker set
// (tasks split into fixed-size contiguous shards, each worker draining
// shards from a shared counter into per-shard pick buffers); the shard
// layout depends only on n, and the merge walks shards in order, so the
// appended cut sequence is byte-identical to a serial run for every
// worker count.
func (ws *Workspace) addViolatedCuts(p *lp.Problem, fronts []malleable.Frontier, sol *lp.Solution, m int) (int, error) {
	n := len(fronts)
	sum := 0.0
	for j := 0; j < n; j++ {
		f := &fronts[j]
		sum += f.WorkAt(clamp(sol.X[n+j], f.XMin(), f.XMax()))
	}
	c := sol.X[3*n+1]
	if sum/float64(m)-c <= cutEps*(1+math.Abs(c)) {
		return 0, nil
	}

	nsh := (n + sepShardSize - 1) / sepShardSize
	for len(ws.sepPicks) < nsh {
		ws.sepPicks = append(ws.sepPicks, nil)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nsh {
		workers = nsh
	}
	if workers > sepMaxWorkers {
		workers = sepMaxWorkers
	}
	if workers <= 1 || n < sepParThreshold {
		for sh := 0; sh < nsh; sh++ {
			if err := ws.separateShardSafe(sh, fronts, sol.X); err != nil {
				return 0, err
			}
		}
	} else {
		// A panic on a spawned goroutine would kill the process — the
		// engine's per-job recover only guards the worker goroutine — so
		// each shard scan runs under its own recover and the first failure
		// is kept. Remaining shards still run (they are cheap and the
		// buffers must be left consistent), their picks are just discarded.
		var next atomic.Int32
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				//malsched:bounded shard counter strictly increases; returns once all nsh shards are claimed
				for {
					sh := int(next.Add(1)) - 1
					if sh >= nsh {
						return
					}
					if err := ws.separateShardSafe(sh, fronts, sol.X); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
	}

	added := 0
	for sh := 0; sh < nsh; sh++ {
		for _, pk := range ws.sepPicks[sh] {
			j := int(pk.task)
			ws.logCut(p, &fronts[j], j, int(pk.seg), n)
			added++
		}
	}
	return added, nil
}

// separateShardSafe runs one shard scan with panic isolation, converting a
// panic into an error the cut loop can surface (and the serving layer's
// degradation ladder can recover from).
func (ws *Workspace) separateShardSafe(sh int, fronts []malleable.Frontier, solX []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			ws.sepPicks[sh] = ws.sepPicks[sh][:0] // half-filled picks are garbage
			err = fmt.Errorf("%w: shard %d: %v", ErrCutPanic, sh, r)
		}
	}()
	ws.separateShard(sh, fronts, solX)
	return nil
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

// workFloorMin sums each task's minimal possible work W_j(1) — the valid
// lower bound used for the makespan crash bound.
func workFloorMin(fronts []malleable.Frontier) float64 {
	s := 0.0
	for i := range fronts {
		s += fronts[i].W[0]
	}
	return s
}

// applyCrashBounds installs the implied lower bounds on the completion
// variables (longest path at minimal processing times), on L (the
// largest of those) and on C (max of that and the work floor divided by
// m). Implied bounds leave the polytope untouched but let the initial
// all-lower-bound basis start primal feasible on the precedence
// structure.
func (ws *Workspace) applyCrashBounds(p *lp.Problem, in *Instance, fronts []malleable.Frontier, cj func(int) int, vL, vC int, wfloor float64) {
	n := in.G.N()
	order := ws.topo(in.G)
	lpmin := ws.lpminBuf(n)
	lmax := 0.0
	for _, v32 := range order {
		v := int(v32)
		d := lpmin[v] + fronts[v].XMin()
		lpmin[v] = d
		if d > lmax {
			lmax = d
		}
		for _, s := range in.G.Succs(v) {
			if d > lpmin[s] {
				lpmin[s] = d
			}
		}
	}
	for j := 0; j < n; j++ {
		p.SetBounds(cj(j), lpmin[j], math.Inf(1))
	}
	p.SetBounds(vL, lmax, math.Inf(1))
	p.SetBounds(vC, math.Max(lmax, wfloor/float64(in.M)), math.Inf(1))
}

// Round applies the Section 3.1 rounding with parameter rho in [0,1] to the
// fractional processing times, producing the integral allotment alpha':
// l'_j processors for task j. Lemma 4.2 guarantees the rounded processing
// time is at most 2x*_j/(1+rho) and the rounded work at most
// 2 w_j(x*_j)/(2-rho).
func Round(in *Instance, frac *Fractional, rho float64) []int {
	return RoundWith(in, frac, rho, nil)
}

// RoundWith is Round with a reusable workspace: the per-task frontiers are
// recomputed into ws's buffers instead of freshly allocated (a nil ws
// behaves like Round).
func RoundWith(in *Instance, frac *Fractional, rho float64, ws *Workspace) []int {
	var fronts []malleable.Frontier
	if ws != nil {
		fronts = ws.frontiers(in)
	} else {
		fronts = in.Frontiers()
	}
	alloc := make([]int, len(in.Tasks))
	for j := range in.Tasks {
		alloc[j] = fronts[j].Round(frac.X[j], rho)
	}
	return alloc
}
