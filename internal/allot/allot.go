// Package allot implements the first phase of the Jansen–Zhang two-phase
// algorithm (Section 3.1 of the paper): it formulates the allotment problem
// as the linear program (9), solves it with the simplex solver from
// internal/lp, extracts the fractional processing times x*_j together with
// the LP lower bound C* >= max{L*, W*/m}, and rounds the fractional solution
// with parameter rho into an integral allotment alpha'.
//
// The LP is built on the efficient frontier of each task, so the convexity
// of the work function in the processing time (Theorem 2.2) turns the
// piecewise linear program (7) into the ordinary linear program (9): for
// every frontier segment l the constraint
//
//	[(l+1)p(l+1) - l p(l)]/[p(l+1) - p(l)] * x_j
//	  - p(l)p(l+1)/[p(l+1) - p(l)]  <=  wbar_j
//
// lower-bounds the work variable wbar_j by the segment's supporting line.
package allot

import (
	"fmt"
	"math"

	"malsched/internal/dag"
	"malsched/internal/lp"
	"malsched/internal/malleable"
)

// Instance couples the precedence graph with the malleable tasks and the
// machine size. Tasks[j] corresponds to vertex j of G.
type Instance struct {
	G     *dag.DAG
	Tasks []malleable.Task
	M     int
}

// Validate checks the instance is well-formed and every task satisfies the
// model assumptions on m processors.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("allot: machine size %d < 1", in.M)
	}
	if in.G.N() != len(in.Tasks) {
		return fmt.Errorf("allot: %d tasks for %d vertices", len(in.Tasks), in.G.N())
	}
	if err := in.G.Validate(); err != nil {
		return err
	}
	for j, t := range in.Tasks {
		if err := t.Validate(in.M); err != nil {
			return fmt.Errorf("task %d (%s): %w", j, t.Name, err)
		}
	}
	return nil
}

// Frontiers computes the efficient frontier of every task on m processors.
func (in *Instance) Frontiers() []malleable.Frontier {
	fs := make([]malleable.Frontier, len(in.Tasks))
	for j, t := range in.Tasks {
		fs[j] = malleable.NewFrontier(t, in.M)
	}
	return fs
}

// Fractional is the optimal solution of LP (9).
type Fractional struct {
	X     []float64 // x*_j: fractional processing times
	Wbar  []float64 // wbar_j: work of task j in the LP optimum
	C     float64   // C*: LP optimum, a lower bound on OPT (Eq. 11)
	L     float64   // L*: fractional critical-path length
	W     float64   // W*: fractional total work
	LStar []float64 // l*_j = w_j(x*_j)/x*_j (Eq. 12)
}

// SolveLP builds and solves LP (9) for the instance. The returned C
// satisfies max{L, W/m} <= C <= OPT.
func SolveLP(in *Instance) (*Fractional, error) {
	return SolveLPWith(in, nil)
}

// SolveLPWith is SolveLP with a reusable workspace (a nil ws solves with
// fresh buffers). The tableau, basis, pricing buffers, LP problem and task
// frontiers all live in ws and are reused across calls, so repeated solves
// on same-shaped instances allocate almost nothing beyond the returned
// Fractional.
func SolveLPWith(in *Instance, ws *Workspace) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	n := in.G.N()
	fronts := ws.frontiers(in)

	// Variables, all non-negative: completion C_j, processing x_j, work
	// wbar_j for each task, plus the critical-path length L and makespan C.
	// AddVar assigns indices sequentially, so the layout is deterministic:
	// C_j = j, x_j = n+j, wbar_j = 2n+j, L = 3n, C = 3n+1.
	p := ws.problem()
	for j := 0; j < 3*n+2; j++ {
		p.AddVar("")
	}
	cj := func(j int) int { return j }
	xj := func(j int) int { return n + j }
	wj := func(j int) int { return 2*n + j }
	vL := 3 * n
	vC := 3*n + 1
	p.SetObj(vC, 1)

	for j := 0; j < n; j++ {
		f := fronts[j]
		// Domain of the processing time: p_j(m) <= x_j <= p_j(1).
		p.AddConstraint(lp.GE, f.XMin(), lp.Term{Var: xj(j), Coef: 1})
		p.AddConstraint(lp.LE, f.XMax(), lp.Term{Var: xj(j), Coef: 1})
		// Completion ordering: x_j <= C_j (valid for every task and required
		// for sources, which have no precedence row), C_j <= L.
		p.AddConstraint(lp.LE, 0, lp.Term{Var: xj(j), Coef: 1}, lp.Term{Var: cj(j), Coef: -1})
		p.AddConstraint(lp.LE, 0, lp.Term{Var: cj(j), Coef: 1}, lp.Term{Var: vL, Coef: -1})
		// Work linearisation (Eq. (8)): one supporting line per segment.
		for s := 0; s < f.Segments(); s++ {
			hi, lo := f.X[s], f.X[s+1] // p(l) > p(l+1)
			whi, wlo := f.W[s], f.W[s+1]
			den := lo - hi // negative
			slope := (wlo - whi) / den
			intercept := (whi*lo - wlo*hi) / den
			// slope*x + intercept <= wbar  <=>  slope*x - wbar <= -intercept
			p.AddConstraint(lp.LE, -intercept,
				lp.Term{Var: xj(j), Coef: slope}, lp.Term{Var: wj(j), Coef: -1})
		}
		if f.Segments() == 0 {
			// Degenerate frontier: the work is the constant W(l_min).
			p.AddConstraint(lp.GE, f.W[0], lp.Term{Var: wj(j), Coef: 1})
		}
	}
	// Precedence: C_i + x_j <= C_j for every arc (i, j).
	for _, e := range in.G.Edges() {
		p.AddConstraint(lp.LE, 0,
			lp.Term{Var: cj(e[0]), Coef: 1},
			lp.Term{Var: xj(e[1]), Coef: 1},
			lp.Term{Var: cj(e[1]), Coef: -1})
	}
	// L <= C and total work W/m <= C.
	p.AddConstraint(lp.LE, 0, lp.Term{Var: vL, Coef: 1}, lp.Term{Var: vC, Coef: -1})
	workTerms := make([]lp.Term, 0, n+1)
	for j := 0; j < n; j++ {
		workTerms = append(workTerms, lp.Term{Var: wj(j), Coef: 1 / float64(in.M)})
	}
	workTerms = append(workTerms, lp.Term{Var: vC, Coef: -1})
	p.AddConstraint(lp.LE, 0, workTerms...)

	sol, err := p.SolveWith(&ws.LP)
	if err != nil {
		return nil, fmt.Errorf("allot: LP (9) failed: %w", err)
	}

	out := &Fractional{
		X:     make([]float64, n),
		Wbar:  make([]float64, n),
		LStar: make([]float64, n),
		C:     sol.Obj,
		L:     sol.X[vL],
	}
	for j := 0; j < n; j++ {
		out.X[j] = clamp(sol.X[xj(j)], fronts[j].XMin(), fronts[j].XMax())
		// Evaluate the work on the frontier rather than trusting the slack
		// LP variable: when the total-work row is not binding the LP may
		// leave wbar_j above w_j(x*_j).
		out.Wbar[j] = fronts[j].WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = fronts[j].FractionalAlloc(out.X[j])
	}
	return out, nil
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

// Round applies the Section 3.1 rounding with parameter rho in [0,1] to the
// fractional processing times, producing the integral allotment alpha':
// l'_j processors for task j. Lemma 4.2 guarantees the rounded processing
// time is at most 2x*_j/(1+rho) and the rounded work at most
// 2 w_j(x*_j)/(2-rho).
func Round(in *Instance, frac *Fractional, rho float64) []int {
	return RoundWith(in, frac, rho, nil)
}

// RoundWith is Round with a reusable workspace: the per-task frontiers are
// recomputed into ws's buffers instead of freshly allocated (a nil ws
// behaves like Round).
func RoundWith(in *Instance, frac *Fractional, rho float64, ws *Workspace) []int {
	var fronts []malleable.Frontier
	if ws != nil {
		fronts = ws.frontiers(in)
	} else {
		fronts = in.Frontiers()
	}
	alloc := make([]int, len(in.Tasks))
	for j := range in.Tasks {
		alloc[j] = fronts[j].Round(frac.X[j], rho)
	}
	return alloc
}
