// The parametric min-cut ("mincut") formulation of LP (9). LP (9) is
// exactly the classical project-crashing LP: minimise
// C = max(L(x), W(x)/m) where L is the critical-path length of the
// activity network under processing times x and W the total work, with
// each task's work a convex piecewise-linear non-increasing function of
// its time. Fulkerson's parametric min-cut sweep (internal/flow) traces
// phi(lambda) = min{W : L(x) <= lambda} downward from the uncrashed
// critical path, one min-cut breakpoint at a time, and stops at the
// crossing of m*lambda with phi — the optimum of the max — in
// near-linear time per breakpoint, with no simplex involved at all.
//
// The network is the standard activity-on-arc expansion of the reduced
// DAG: task j becomes arc in_j -> out_j with base duration XMax_j and a
// crashing curve read off the same slope-representative work envelope
// the simplex paths optimise (repFill in segment.go — the 1e-6 slope
// collapse makes all three formulations solve the identical relaxation,
// which is what the differential suite pins); precedence (i,j) becomes
// the rigid zero-length arc out_i -> in_j, DAG sources hang off the
// super-source S and sinks feed the super-sink T, mirroring row for row
// how buildBaseLP emits x_j <= C_j only for sources and C_j <= L only
// for sinks.
//
// The payoff over both simplex formulations is structural: a simplex
// solve pays a pivot per envelope piece the optimum crosses against an
// ever-growing basis factorization, while the sweep pays roughly one
// warm augmenting path per parametric breakpoint on a graph of 2n+2
// nodes — layered n=2000/m=64 drops from ~18 s (lazy) to ~1.1 s,
// measured back to back on the same machine, and n=10^4 lands in
// ~46 s where the simplex paths never finished (EXPERIMENTS.md E16).

package allot

import (
	"fmt"

	"malsched/internal/malleable"
)

// mincutFormulationMin is the frontier segment mass beyond which
// SolveLPWith routes to the parametric min-cut formulation. Measured on
// the BenchmarkPhase1LP scenarios (see segment.go for the lazy/segment
// crossovers): the sweep already wins at the bottom of the segment
// window — n=200/m=16 (mass ~2.4k): lazy 19ms vs mincut 2ms;
// n=500/m=32 (mass ~12k): segment 0.48s vs mincut 8ms — and scales
// near-linearly where both simplex paths are quadratic-plus, so the
// window is open-ended above. Below ~2k mass the lazy loop converges in
// a couple of restarts on a tiny basis and the crossing is in the
// noise; the sweep takes over from the segment window's former floor.
const mincutFormulationMin = 6000

// solveLPMincut builds the project-crashing network for the instance
// and runs the parametric sweep. fronts are the instance's efficient
// frontiers (already computed into ws).
func solveLPMincut(in *Instance, ws *Workspace, fronts []malleable.Frontier) (*Fractional, error) {
	n := in.G.N()
	fw := &ws.Flow
	fw.Cancel = ws.LP.Cancel
	fw.Reset(2*n + 2)
	const src, snk = 0, 1
	taskArc := growInt32(ws.mcArc, n)
	wfloor := 0.0
	for j := 0; j < n; j++ {
		f := &fronts[j]
		wfloor += f.W[0]
		taskArc[j] = int32(fw.Arc(2+2*j, 3+2*j, f.XMax()))
		if f.Segments() >= 1 {
			sigmas := ws.repFill(f)
			for k := range sigmas {
				fw.Piece(sigmas[k], ws.repWidth[k])
			}
		}
		if len(in.G.Preds(j)) == 0 {
			fw.Arc(src, 2+2*j, 0)
		}
		for _, s := range in.G.Succs(j) {
			fw.Arc(3+2*j, 2+2*s, 0)
		}
		if len(in.G.Succs(j)) == 0 {
			fw.Arc(3+2*j, snk, 0)
		}
	}
	ws.mcArc = taskArc

	c, err := fw.Sweep(src, snk, float64(in.M), wfloor)
	if err != nil {
		return nil, fmt.Errorf("allot: LP (9) mincut formulation failed: %w", err)
	}

	out := &Fractional{
		X:           make([]float64, n),
		Wbar:        make([]float64, n),
		LStar:       make([]float64, n),
		C:           c,
		L:           fw.Lambda,
		Formulation: FormulationMincut,
		Cuts:        fw.Breakpoints,
		Rounds:      fw.Augments,
	}
	for j := 0; j < n; j++ {
		f := &fronts[j]
		out.X[j] = clamp(f.XMax()-fw.Y(int(taskArc[j])), f.XMin(), f.XMax())
		out.Wbar[j] = f.WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = f.FractionalAlloc(out.X[j])
	}
	return out, nil
}
