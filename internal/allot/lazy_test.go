package allot_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/bruteforce"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

func buildDAG(family string, n int, p float64, rng *rand.Rand) *dag.DAG {
	switch family {
	case "chain":
		return gen.Chain(n)
	case "independent":
		return gen.Independent(n)
	case "forkjoin":
		return gen.ForkJoin(n - 2)
	case "layered":
		w := 4
		return gen.Layered((n+w-1)/w, w, 3, rng)
	case "outtree":
		return gen.OutTree(n, rng)
	case "erdos":
		return gen.ErdosDAG(n, p, rng)
	default:
		panic("unknown dag family " + family)
	}
}

var lazyFamilies = []string{"chain", "independent", "forkjoin", "layered", "outtree", "erdos"}

// checkAgainstReference solves the instance with the lazy sparse path and
// the full dense reference and verifies (a) the optima agree to 1e-6
// relative — the LP optimum is unique even when the optimal vertex is
// not, so only the objective is pinned — and (b) the sparse solution is
// feasible for the COMPLETE LP (9): every supporting line of every task
// holds at (x*_j, w_j(x*_j)) by construction, the certified relation
// max{L*, W*/m} <= C* holds, and the processing times sit inside their
// frontier domains.
func checkAgainstReference(t *testing.T, in *allot.Instance, ws *allot.Workspace) {
	t.Helper()
	sparse, err := allot.SolveLPWith(in, ws)
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	ref, err := allot.SolveLPReference(in)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	tol := 1e-6 * (1 + math.Abs(ref.C))
	if math.Abs(sparse.C-ref.C) > tol {
		t.Errorf("optimum differs: sparse C=%v reference C=%v (cuts=%d rounds=%d)",
			sparse.C, ref.C, sparse.Cuts, sparse.Rounds)
	}
	fronts := in.Frontiers()
	for j := range fronts {
		f := fronts[j]
		if sparse.X[j] < f.XMin()-1e-9 || sparse.X[j] > f.XMax()+1e-9 {
			t.Errorf("task %d: x*=%v outside [%v, %v]", j, sparse.X[j], f.XMin(), f.XMax())
		}
		if w := f.WorkAt(sparse.X[j]); math.Abs(w-sparse.Wbar[j]) > 1e-6*(1+w) {
			t.Errorf("task %d: Wbar=%v != w(x*)=%v", j, sparse.Wbar[j], w)
		}
	}
	lb := math.Max(sparse.L, sparse.W/float64(in.M))
	if lb > sparse.C+tol {
		t.Errorf("certificate broken: max{L=%v, W/m=%v} > C=%v", sparse.L, sparse.W/float64(in.M), sparse.C)
	}
}

// TestSolveLPMatchesReference is the acceptance differential test: the
// lazy sparse phase 1 against the retained full dense build across six
// random DAG families, machine sizes and task families, through one
// shared workspace (reuse must not leak state between instances).
func TestSolveLPMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ws := allot.NewWorkspace()
	for trial := 0; trial < 36; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 4 + rng.Intn(24)
		m := 2 + rng.Intn(15)
		g := buildDAG(family, n, 0.1+0.3*rng.Float64(), rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", family, g.N(), m), func(t *testing.T) {
			checkAgainstReference(t, in, ws)
		})
	}
}

// TestSolveLPMatchesReferenceLargerM drives machine sizes where the
// frontier segments get dense and nearly collinear — the shapes that
// exercise the slope-representative cut filter and the numerical
// stability machinery.
func TestSolveLPMatchesReferenceLargerM(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	ws := allot.NewWorkspace()
	for _, cfg := range []struct {
		family string
		n, m   int
	}{
		{"layered", 40, 64},
		{"erdos", 32, 48},
		{"forkjoin", 26, 64},
	} {
		g := buildDAG(cfg.family, cfg.n, 0.15, rng)
		in := gen.Instance(g, gen.FamilyMixed, cfg.m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", cfg.family, g.N(), cfg.m), func(t *testing.T) {
			checkAgainstReference(t, in, ws)
		})
	}
}

// TestSolveLPBelowBruteforceOptimal closes the loop on tiny instances:
// the LP optimum is a lower bound on the true integral optimum (Eq. 11),
// so C* <= OPT must hold against exhaustive search, for both the sparse
// lazy solver and the dense reference.
func TestSolveLPBelowBruteforceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 12; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 3 + rng.Intn(3)
		m := 2 + rng.Intn(2)
		g := buildDAG(family, n, 0.3, rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		opt := bruteforce.Optimal(in)
		sparse, err := allot.SolveLP(in)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		ref, err := allot.SolveLPReference(in)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		eps := 1e-6 * (1 + opt)
		if sparse.C > opt+eps {
			t.Errorf("trial %d (%s): sparse C*=%v exceeds brute-force OPT=%v", trial, family, sparse.C, opt)
		}
		if ref.C > opt+eps {
			t.Errorf("trial %d (%s): reference C*=%v exceeds brute-force OPT=%v", trial, family, ref.C, opt)
		}
	}
}

// TestLazyCutDiagnostics checks the Fractional diagnostics are wired: a
// single-segment frontier needs no lazy cuts at all, while a work-bound
// many-segment instance generates some.
func TestLazyCutDiagnostics(t *testing.T) {
	// Perfect-speedup tasks on m=2: one segment per frontier, the two
	// seeded endpoint lines coincide, nothing lazy to add.
	g := dag.New(2)
	g.MustEdge(0, 1)
	in := &allot.Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("a", []float64{4, 2}),
			malleable.NewTask("b", []float64{4, 2}),
		},
		M: 2,
	}
	frac, err := allot.SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Cuts != 0 || frac.Rounds != 0 {
		t.Errorf("single-segment frontiers grew %d cuts in %d rounds; want none", frac.Cuts, frac.Rounds)
	}

	// A work-bound mixed instance on a wide machine must drive the lazy
	// separation through at least one round of violated cuts.
	rng := rand.New(rand.NewSource(404))
	in2 := gen.Instance(gen.Layered(10, 6, 3, rng), gen.FamilyMixed, 32, rng)
	frac2, err := allot.SolveLP(in2)
	if err != nil {
		t.Fatal(err)
	}
	if frac2.Rounds == 0 || frac2.Cuts == 0 {
		t.Errorf("work-bound instance generated no lazy cuts (cuts=%d rounds=%d)", frac2.Cuts, frac2.Rounds)
	}
}
