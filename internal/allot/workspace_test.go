package allot_test

import (
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/gen"
)

// TestSolveLPWithMatchesSolveLP reuses one workspace across a spread of
// instances (shapes, machine sizes, families) and demands byte-identical
// fractional solutions versus the fresh-allocation path.
func TestSolveLPWithMatchesSolveLP(t *testing.T) {
	ws := allot.NewWorkspace()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(10)
		m := 2 + rng.Intn(8)
		in := gen.Instance(gen.ErdosDAG(n, 0.25, rng), gen.FamilyMixed, m, rng)
		fresh, err := allot.SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := allot.SolveLPWith(in, ws)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.C != reused.C || fresh.L != reused.L || fresh.W != reused.W {
			t.Errorf("trial %d: optimum differs: (%v %v %v) vs (%v %v %v)",
				trial, fresh.C, fresh.L, fresh.W, reused.C, reused.L, reused.W)
		}
		for j := range fresh.X {
			if fresh.X[j] != reused.X[j] || fresh.Wbar[j] != reused.Wbar[j] {
				t.Errorf("trial %d task %d: x/wbar differ", trial, j)
			}
		}
		// Rounding through the workspace must agree too.
		a := allot.Round(in, fresh, 0.26)
		b := allot.RoundWith(in, reused, 0.26, ws)
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("trial %d task %d: alloc %d != %d", trial, j, a[j], b[j])
			}
		}
	}
}

// TestSolveLPWithReuseCutsAllocs verifies the phase-1 hot path allocates
// only the Fractional output once the workspace is warm.
func TestSolveLPWithReuseCutsAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := gen.Instance(gen.ErdosDAG(12, 0.25, rng), gen.FamilyMixed, 8, rng)
	ws := allot.NewWorkspace()
	if _, err := allot.SolveLPWith(in, ws); err != nil { // warm-up growth
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(10, func() {
		if _, err := allot.SolveLPWith(in, ws); err != nil {
			t.Fatal(err)
		}
	})
	// The Fractional result (4 slices + struct) is the only intended
	// allocation; leave slack for the error-path interfaces but fail loudly
	// if tableau-sized allocation creeps back in.
	if warm > 10 {
		t.Errorf("warm SolveLPWith allocates %v objects per run, want <= 10", warm)
	}
	cold := testing.AllocsPerRun(10, func() {
		if _, err := allot.SolveLP(in); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold {
		t.Errorf("workspace reuse does not cut allocations: warm %v >= cold %v", warm, cold)
	}
}
