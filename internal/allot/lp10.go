package allot

import (
	"fmt"

	"malsched/internal/lp"
)

// SolveLP10 solves the alternative linear programming relaxation (10) of
// the paper's Remark in Section 3.1: the "straightforward" scheduling LP
// with assignment variables x_{j,l} (the fraction of task j notionally run
// on l processors),
//
//	min C
//	s.t. C_i + sum_l x_{j,l} p_j(l) <= C_j   for all arcs (i,j)
//	     C_j <= C
//	     sum_j sum_l x_{j,l} l p_j(l) <= m C
//	     sum_l x_{j,l} = 1,  x_{j,l} >= 0.
//
// The paper proves (7) (equivalently (9)) and (10) have equal optima under
// Theorem 2.2; this implementation exists to verify that equivalence
// computationally (see TestLP9EquivalentToLP10) and as an ablation of the
// formulation choice: (10) has n*m assignment columns versus (9)'s n work
// columns plus n*(m-1) supporting-line rows.
func SolveLP10(in *Instance) (*Fractional, error) {
	return SolveLP10With(in, nil)
}

// SolveLP10With is SolveLP10 with a reusable workspace (a nil ws solves
// with fresh buffers): the LP problem, simplex buffers, task frontiers,
// per-task variable offsets and the wide-row term buffer all live in ws,
// mirroring SolveLPWith's amortised-allocation discipline.
func SolveLP10With(in *Instance, ws *Workspace) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	n := in.G.N()
	fronts := ws.frontiers(in)
	// SolveLPWith leaves DeferPolish set on a shared workspace; this path
	// solves once and returns the optimum directly, so the perturbation
	// must be polished away inside the call.
	ws.LP.DeferPolish = false

	// Deterministic variable layout: C_j = j, then one contiguous block of
	// assignment variables per task starting at offs[j] (one per frontier
	// breakpoint — dominated allotments can never appear with positive
	// weight in an optimal solution: they are slower AND costlier, so
	// restricting to the frontier is exact), then C last.
	p := ws.problem()
	for j := 0; j < n; j++ {
		p.AddVar("")
	}
	offs := growInt32(ws.offs, n+1)
	ws.offs = offs
	for j := 0; j < n; j++ {
		offs[j] = int32(p.NumVars())
		for range fronts[j].L {
			v := p.AddVar("")
			p.SetBounds(v, 0, 1) // implied by the convexity row; free for the solver
		}
	}
	offs[n] = int32(p.NumVars())
	vC := p.AddVar("C")
	p.SetObj(vC, 1)

	for j := 0; j < n; j++ {
		f := fronts[j]
		base := int(offs[j])
		// Convexity row: sum_l x_{j,l} = 1.
		terms := ws.termBuf(len(f.L) + 2)
		for k := range f.L {
			terms = append(terms, lp.Term{Var: base + k, Coef: 1})
		}
		p.AddConstraint(lp.EQ, 1, terms...)
		// Completion after own (fractional) processing time, needed for
		// source tasks: sum_l x_{j,l} p_j(l) <= C_j.
		terms = terms[:0]
		for k := range f.L {
			terms = append(terms, lp.Term{Var: base + k, Coef: f.X[k]})
		}
		terms = append(terms, lp.Term{Var: j, Coef: -1})
		p.AddConstraint(lp.LE, 0, terms...)
		// C_j <= C.
		p.AddConstraint(lp.LE, 0, lp.Term{Var: j, Coef: 1}, lp.Term{Var: vC, Coef: -1})
	}
	// Precedence: C_i + sum_l x_{j,l} p_j(l) <= C_j.
	for _, e := range in.G.Edges() {
		i, j := e[0], e[1]
		f := fronts[j]
		base := int(offs[j])
		terms := ws.termBuf(len(f.L) + 2)
		terms = append(terms, lp.Term{Var: i, Coef: 1}, lp.Term{Var: j, Coef: -1})
		for k := range f.L {
			terms = append(terms, lp.Term{Var: base + k, Coef: f.X[k]})
		}
		p.AddConstraint(lp.LE, 0, terms...)
	}
	// Total work: sum_j sum_l x_{j,l} * l p_j(l) <= m C.
	workTerms := ws.termBuf(int(offs[n]) - n + 1)
	for j := 0; j < n; j++ {
		f := fronts[j]
		base := int(offs[j])
		for k := range f.L {
			workTerms = append(workTerms, lp.Term{Var: base + k, Coef: f.W[k]})
		}
	}
	workTerms = append(workTerms, lp.Term{Var: vC, Coef: -float64(in.M)})
	p.AddConstraint(lp.LE, 0, workTerms...)

	sol, err := p.SolveWith(&ws.LP)
	if err != nil {
		return nil, fmt.Errorf("allot: LP (10) failed: %w", err)
	}

	out := &Fractional{
		X:     make([]float64, n),
		Wbar:  make([]float64, n),
		LStar: make([]float64, n),
		C:     sol.Obj,
	}
	for j := 0; j < n; j++ {
		f := fronts[j]
		base := int(offs[j])
		x := 0.0
		for k := range f.L {
			x += sol.X[base+k] * f.X[k]
		}
		out.X[j] = clamp(x, f.XMin(), f.XMax())
		// The assignment mix's work is >= the convex envelope w_j(x);
		// report the envelope value for comparability with SolveLP (the
		// optimum uses adjacent breakpoints, where they coincide).
		out.Wbar[j] = f.WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = f.FractionalAlloc(out.X[j])
		if c := sol.X[j]; c > out.L {
			out.L = c
		}
	}
	return out, nil
}
