package allot

import (
	"fmt"

	"malsched/internal/lp"
)

// SolveLP10 solves the alternative linear programming relaxation (10) of
// the paper's Remark in Section 3.1: the "straightforward" scheduling LP
// with assignment variables x_{j,l} (the fraction of task j notionally run
// on l processors),
//
//	min C
//	s.t. C_i + sum_l x_{j,l} p_j(l) <= C_j   for all arcs (i,j)
//	     C_j <= C
//	     sum_j sum_l x_{j,l} l p_j(l) <= m C
//	     sum_l x_{j,l} = 1,  x_{j,l} >= 0.
//
// The paper proves (7) (equivalently (9)) and (10) have equal optima under
// Theorem 2.2; this implementation exists to verify that equivalence
// computationally (see TestLP9EquivalentToLP10) and as an ablation of the
// formulation choice: (10) has n*m assignment columns versus (9)'s n work
// columns plus n*(m-1) supporting-line rows.
func SolveLP10(in *Instance) (*Fractional, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.G.N()
	fronts := in.Frontiers()

	p := lp.NewProblem()
	cj := make([]int, n)
	for j := 0; j < n; j++ {
		cj[j] = p.AddVar(fmt.Sprintf("C_%d", j))
	}
	// Assignment variables per frontier breakpoint (dominated allotments
	// can never appear with positive weight in an optimal solution: they
	// are slower AND costlier, so restricting to the frontier is exact).
	xjl := make([][]int, n)
	for j := 0; j < n; j++ {
		f := fronts[j]
		xjl[j] = make([]int, len(f.L))
		for k := range f.L {
			xjl[j][k] = p.AddVar(fmt.Sprintf("x_%d_%d", j, f.L[k]))
		}
	}
	vC := p.AddVar("C")
	p.SetObj(vC, 1)

	for j := 0; j < n; j++ {
		f := fronts[j]
		// Convexity row: sum_l x_{j,l} = 1.
		terms := make([]lp.Term, len(f.L))
		for k := range f.L {
			terms[k] = lp.Term{Var: xjl[j][k], Coef: 1}
		}
		p.AddConstraint(lp.EQ, 1, terms...)
		// Completion after own (fractional) processing time, needed for
		// source tasks: sum_l x_{j,l} p_j(l) <= C_j.
		terms = terms[:0]
		for k := range f.L {
			terms = append(terms, lp.Term{Var: xjl[j][k], Coef: f.X[k]})
		}
		terms = append(terms, lp.Term{Var: cj[j], Coef: -1})
		p.AddConstraint(lp.LE, 0, terms...)
		// C_j <= C.
		p.AddConstraint(lp.LE, 0, lp.Term{Var: cj[j], Coef: 1}, lp.Term{Var: vC, Coef: -1})
	}
	// Precedence: C_i + sum_l x_{j,l} p_j(l) <= C_j.
	for _, e := range in.G.Edges() {
		i, j := e[0], e[1]
		terms := []lp.Term{{Var: cj[i], Coef: 1}, {Var: cj[j], Coef: -1}}
		f := fronts[j]
		for k := range f.L {
			terms = append(terms, lp.Term{Var: xjl[j][k], Coef: f.X[k]})
		}
		p.AddConstraint(lp.LE, 0, terms...)
	}
	// Total work: sum_j sum_l x_{j,l} * l p_j(l) <= m C.
	var workTerms []lp.Term
	for j := 0; j < n; j++ {
		f := fronts[j]
		for k := range f.L {
			workTerms = append(workTerms, lp.Term{Var: xjl[j][k], Coef: f.W[k]})
		}
	}
	workTerms = append(workTerms, lp.Term{Var: vC, Coef: -float64(in.M)})
	p.AddConstraint(lp.LE, 0, workTerms...)

	sol, err := p.Solve()
	if err != nil {
		return nil, fmt.Errorf("allot: LP (10) failed: %w", err)
	}

	out := &Fractional{
		X:     make([]float64, n),
		Wbar:  make([]float64, n),
		LStar: make([]float64, n),
		C:     sol.Obj,
	}
	for j := 0; j < n; j++ {
		f := fronts[j]
		x, w := 0.0, 0.0
		for k := range f.L {
			x += sol.X[xjl[j][k]] * f.X[k]
			w += sol.X[xjl[j][k]] * f.W[k]
		}
		out.X[j] = clamp(x, f.XMin(), f.XMax())
		// The assignment mix's work w is >= the convex envelope w_j(x);
		// report the envelope value for comparability with SolveLP (the
		// optimum uses adjacent breakpoints, where they coincide).
		out.Wbar[j] = f.WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = f.FractionalAlloc(out.X[j])
		if c := sol.X[cj[j]]; c > out.L {
			out.L = c
		}
	}
	return out, nil
}
