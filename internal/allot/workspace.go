package allot

import (
	"malsched/internal/dag"
	"malsched/internal/flow"
	"malsched/internal/lp"
	"malsched/internal/malleable"
	"malsched/internal/prep"
)

// Workspace bundles the reusable solver state for the phase-1 LP path: the
// sparse simplex workspace (CSC model, basis factorization, eta file,
// pricing buffers), the LP problem under construction, the per-task
// efficient frontiers, and the lazy-cut bookkeeping (which supporting
// lines have been generated). All of it is grown geometrically and reused
// across solves, so repeated SolveLPWith calls on same-shaped instances do
// near-zero allocation beyond the returned Fractional. A Workspace is
// owned by one goroutine at a time; it is not safe for concurrent use.
type Workspace struct {
	// LP is the sparse simplex scratch memory, reused across solves.
	LP lp.Workspace

	prob      *lp.Problem
	fronts    []malleable.Frontier
	frontsFor *Instance // instance the cached fronts were computed for

	// Lazy-cut bookkeeping: segAdded[segOff[j]+s] marks segment s of task
	// j as already materialised as a supporting-line row; segRep marks the
	// slope-representative segments cuts may be generated from (see
	// SolveLPWith on near-collinear segment chains).
	segOff   []int32
	segAdded []bool
	segRep   []bool

	// Shared scratch: term buffer for wide rows, variable-offset table for
	// the LP (10) assignment blocks.
	terms []lp.Term
	offs  []int32

	// Per-shard pick buffers of the parallel lazy-cut separation
	// (addViolatedCuts); sepPicks[sh] is owned by whichever worker holds
	// shard sh during a round and reused across rounds and solves.
	sepPicks [][]sepPick

	// Crash-bound scratch: per-task longest-path values (the topological
	// order itself comes from the prep workspace in chains).
	lpmin []float64

	// Cut replay log of the lazy path: every supporting-line row in append
	// order (seeds first, then separation rounds). CaptureLP copies it
	// into snapshots; SolveLPDeltaWith replays a snapshot's log to rebuild
	// a basis-compatible row layout. lastLazyN is the task count of the
	// last completed lazy-path solve (0 when the last solve took the
	// segment route or failed), guarding capture against exporting a basis
	// whose layout the log does not describe. totalSegs caches the summed
	// frontier segment count of the last build for the cut loop's round cap.
	cutLog    []sepPick
	lastLazyN int
	totalSegs int

	// SegThreshold overrides the frontier-segment count beyond which
	// SolveLPWith routes to the segment-variable formulation; 0 means the
	// measured default (segFormulationMin), negative disables the route.
	// Exposed for tests and experiments.
	SegThreshold int

	// MincutThreshold overrides the frontier-segment count beyond which
	// SolveLPWith routes to the parametric min-cut formulation, with the
	// same semantics as SegThreshold: 0 means the measured default
	// (mincutFormulationMin), negative disables the route. The mincut
	// window is checked before the segment window.
	MincutThreshold int

	// ForceFormulation, when non-empty, pins SolveLPWith to one solve
	// path regardless of segment mass — the request-level formulation
	// pin of the serving API, and how CaptureLP keeps the solve on the
	// lazy route (snapshots only exist there).
	ForceFormulation Formulation

	// Flow is the parametric min-cut scratch of the mincut formulation;
	// mcArc maps task j to its crashable arc in the built network.
	Flow  flow.Workspace
	mcArc []int32

	// Segment-formulation scratch: the representative-line buffers of the
	// per-task envelope fills (see segment.go).
	repSlope []float64
	repIcpt  []float64
	repWidth []float64

	// Chain analysis (internal/prep): link successors and link-target
	// markers for the linear-chain row collapse of both LP builders.
	chains    prep.Workspace
	linkInto  []bool
	chainNext []int32
}

// chainLinks computes the linear-chain structure of g into the
// workspace: chainNext[v] is v's chain-link successor (-1 when the edge
// out of v is not a link) and linkInto[w] marks link targets, so a
// maximal chain starts at any v with chainNext[v] >= 0 && !linkInto[v].
func (ws *Workspace) chainLinks(g *dag.DAG) {
	n := g.N()
	ws.chainNext = ws.chains.ChainNext(g)
	ws.linkInto = growBool(ws.linkInto, n)
	for v := 0; v < n; v++ {
		ws.linkInto[v] = false
	}
	for v := 0; v < n; v++ {
		if w := ws.chainNext[v]; w >= 0 {
			ws.linkInto[w] = true
		}
	}
}

// topo returns a topological order of g via the embedded prep
// workspace's buffers (the instance was validated, so g is acyclic).
func (ws *Workspace) topo(g *dag.DAG) []int32 {
	order, _ := ws.chains.Topo(g)
	return order
}

// lpminBuf returns the zeroed longest-path scratch of length n.
func (ws *Workspace) lpminBuf(n int) []float64 {
	ws.lpmin = grown(ws.lpmin, n)
	for i := range ws.lpmin {
		ws.lpmin[i] = 0
	}
	return ws.lpmin
}

// NewWorkspace returns an empty workspace ready for SolveLPWith.
func NewWorkspace() *Workspace {
	return &Workspace{prob: lp.NewProblem()}
}

// Release drops the workspace's reference to the last-solved instance (the
// frontier cache key) so long-lived pooled workspaces do not pin instances
// in memory between solves. The grown buffers are kept.
func (ws *Workspace) Release() {
	ws.frontsFor = nil
}

// problem returns the reusable LP problem, reset to empty.
func (ws *Workspace) problem() *lp.Problem {
	if ws.prob == nil {
		ws.prob = lp.NewProblem()
	}
	ws.prob.Reset()
	return ws.prob
}

// termBuf returns the shared term buffer, emptied, with capacity for at
// least n terms.
func (ws *Workspace) termBuf(n int) []lp.Term {
	if cap(ws.terms) < n {
		ws.terms = make([]lp.Term, 0, n)
	}
	ws.terms = ws.terms[:0]
	return ws.terms
}

// grown returns s resized to n with unspecified contents, reallocating
// geometrically (the package-local twin of lp's workspace helper).
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

func growInt32(s []int32, n int) []int32 { return grown(s, n) }
func growBool(s []bool, n int) []bool    { return grown(s, n) }

// frontiers returns the efficient frontiers of in's tasks, computed into
// the workspace's reusable frontier slice. Consecutive calls for the same
// instance reuse the cached fronts without recomputation (instances are
// treated as immutable once solving starts, as everywhere in this package).
// The returned slice is valid until the next call.
func (ws *Workspace) frontiers(in *Instance) []malleable.Frontier {
	n := len(in.Tasks)
	if ws.frontsFor == in && len(ws.fronts) >= n {
		return ws.fronts[:n]
	}
	ws.frontsFor = nil
	for len(ws.fronts) < n {
		ws.fronts = append(ws.fronts, malleable.Frontier{})
	}
	fs := ws.fronts[:n]
	for j := range fs {
		malleable.FrontierInto(&fs[j], in.Tasks[j], in.M)
	}
	ws.frontsFor = in
	return fs
}
