package allot

import (
	"malsched/internal/lp"
	"malsched/internal/malleable"
)

// Workspace bundles the reusable solver state for the phase-1 LP path: the
// sparse simplex workspace (CSC model, basis factorization, eta file,
// pricing buffers), the LP problem under construction, the per-task
// efficient frontiers, and the lazy-cut bookkeeping (which supporting
// lines have been generated). All of it is grown geometrically and reused
// across solves, so repeated SolveLPWith calls on same-shaped instances do
// near-zero allocation beyond the returned Fractional. A Workspace is
// owned by one goroutine at a time; it is not safe for concurrent use.
type Workspace struct {
	// LP is the sparse simplex scratch memory, reused across solves.
	LP lp.Workspace

	prob      *lp.Problem
	fronts    []malleable.Frontier
	frontsFor *Instance // instance the cached fronts were computed for

	// Lazy-cut bookkeeping: segAdded[segOff[j]+s] marks segment s of task
	// j as already materialised as a supporting-line row; segRep marks the
	// slope-representative segments cuts may be generated from (see
	// SolveLPWith on near-collinear segment chains).
	segOff   []int32
	segAdded []bool
	segRep   []bool

	// Shared scratch: term buffer for wide rows, variable-offset table for
	// the LP (10) assignment blocks.
	terms []lp.Term
	offs  []int32
}

// NewWorkspace returns an empty workspace ready for SolveLPWith.
func NewWorkspace() *Workspace {
	return &Workspace{prob: lp.NewProblem()}
}

// Release drops the workspace's reference to the last-solved instance (the
// frontier cache key) so long-lived pooled workspaces do not pin instances
// in memory between solves. The grown buffers are kept.
func (ws *Workspace) Release() {
	ws.frontsFor = nil
}

// problem returns the reusable LP problem, reset to empty.
func (ws *Workspace) problem() *lp.Problem {
	if ws.prob == nil {
		ws.prob = lp.NewProblem()
	}
	ws.prob.Reset()
	return ws.prob
}

// termBuf returns the shared term buffer, emptied, with capacity for at
// least n terms.
func (ws *Workspace) termBuf(n int) []lp.Term {
	if cap(ws.terms) < n {
		ws.terms = make([]lp.Term, 0, n)
	}
	ws.terms = ws.terms[:0]
	return ws.terms
}

// grown returns s resized to n with unspecified contents, reallocating
// geometrically (the package-local twin of lp's workspace helper).
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

func growInt32(s []int32, n int) []int32 { return grown(s, n) }
func growBool(s []bool, n int) []bool    { return grown(s, n) }

// frontiers returns the efficient frontiers of in's tasks, computed into
// the workspace's reusable frontier slice. Consecutive calls for the same
// instance reuse the cached fronts without recomputation (instances are
// treated as immutable once solving starts, as everywhere in this package).
// The returned slice is valid until the next call.
func (ws *Workspace) frontiers(in *Instance) []malleable.Frontier {
	n := len(in.Tasks)
	if ws.frontsFor == in && len(ws.fronts) >= n {
		return ws.fronts[:n]
	}
	ws.frontsFor = nil
	for len(ws.fronts) < n {
		ws.fronts = append(ws.fronts, malleable.Frontier{})
	}
	fs := ws.fronts[:n]
	for j := range fs {
		malleable.FrontierInto(&fs[j], in.Tasks[j], in.M)
	}
	ws.frontsFor = in
	return fs
}
