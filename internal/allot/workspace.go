package allot

import (
	"malsched/internal/lp"
	"malsched/internal/malleable"
)

// Workspace bundles the reusable solver state for the phase-1 LP path: the
// simplex workspace (tableau, basis, pricing buffers), the LP problem under
// construction, and the per-task efficient frontiers. All of it is grown
// geometrically and reused across solves, so repeated SolveLPWith calls on
// same-shaped instances do near-zero allocation beyond the returned
// Fractional. A Workspace is owned by one goroutine at a time; it is not
// safe for concurrent use.
type Workspace struct {
	// LP is the simplex scratch memory, reused across solves.
	LP lp.Workspace

	prob      *lp.Problem
	fronts    []malleable.Frontier
	frontsFor *Instance // instance the cached fronts were computed for
}

// NewWorkspace returns an empty workspace ready for SolveLPWith.
func NewWorkspace() *Workspace {
	return &Workspace{prob: lp.NewProblem()}
}

// Release drops the workspace's reference to the last-solved instance (the
// frontier cache key) so long-lived pooled workspaces do not pin instances
// in memory between solves. The grown buffers are kept.
func (ws *Workspace) Release() {
	ws.frontsFor = nil
}

// problem returns the reusable LP problem, reset to empty.
func (ws *Workspace) problem() *lp.Problem {
	if ws.prob == nil {
		ws.prob = lp.NewProblem()
	}
	ws.prob.Reset()
	return ws.prob
}

// frontiers returns the efficient frontiers of in's tasks, computed into
// the workspace's reusable frontier slice. Consecutive calls for the same
// instance reuse the cached fronts without recomputation (instances are
// treated as immutable once solving starts, as everywhere in this package).
// The returned slice is valid until the next call.
func (ws *Workspace) frontiers(in *Instance) []malleable.Frontier {
	n := len(in.Tasks)
	if ws.frontsFor == in && len(ws.fronts) >= n {
		return ws.fronts[:n]
	}
	ws.frontsFor = nil
	for len(ws.fronts) < n {
		ws.fronts = append(ws.fronts, malleable.Frontier{})
	}
	fs := ws.fronts[:n]
	for j := range fs {
		malleable.FrontierInto(&fs[j], in.Tasks[j], in.M)
	}
	ws.frontsFor = in
	return fs
}
