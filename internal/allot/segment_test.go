package allot_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/gen"
)

// TestSegmentFormulationMatchesReference forces the segment-variable
// route (SegThreshold=1) on the same random DAG/task families the lazy
// differential test covers and checks it against the dense reference:
// equal optima to 1e-6 relative, in-domain processing times, work values
// on the frontier, and an intact lower-bound certificate.
func TestSegmentFormulationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	ws := allot.NewWorkspace()
	ws.SegThreshold = 1 // every instance routes through segment.go
	for trial := 0; trial < 36; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 4 + rng.Intn(24)
		m := 2 + rng.Intn(15)
		g := buildDAG(family, n, 0.1+0.3*rng.Float64(), rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", family, g.N(), m), func(t *testing.T) {
			checkAgainstReference(t, in, ws)
		})
	}
}

// TestSegmentFormulationLargerM drives the dense-frontier machine sizes
// (many, nearly collinear segments) through the forced segment route.
func TestSegmentFormulationLargerM(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	ws := allot.NewWorkspace()
	ws.SegThreshold = 1
	for _, cfg := range []struct {
		family string
		n, m   int
	}{
		// The near-collinear-segment density is driven by m; n stays
		// small so the dense reference keeps the -race run tractable.
		{"layered", 28, 64},
		{"erdos", 32, 48},
		{"forkjoin", 26, 64},
		{"chain", 30, 32},
		{"independent", 32, 64},
	} {
		g := buildDAG(cfg.family, cfg.n, 0.15, rng)
		in := gen.Instance(g, gen.FamilyMixed, cfg.m, rng)
		t.Run(fmt.Sprintf("%s_n%d_m%d", cfg.family, g.N(), cfg.m), func(t *testing.T) {
			checkAgainstReference(t, in, ws)
		})
	}
}

// TestSegmentAgainstLazy pins the two sparse paths to each other on a
// mid-size instance neither differential oracle reaches comfortably: the
// segment formulation and the lazy-cut loop must agree on the optimum to
// the cut tolerance (they solve the same slope-representative
// relaxation).
func TestSegmentAgainstLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	in := gen.Instance(gen.Layered(10, 8, 3, rng), gen.FamilyMixed, 24, rng)

	lazy := allot.NewWorkspace()
	lazy.SegThreshold = -1 // never route
	fracLazy, err := allot.SolveLPWith(in, lazy)
	if err != nil {
		t.Fatalf("lazy: %v", err)
	}
	seg := allot.NewWorkspace()
	seg.SegThreshold = 1 // always route
	fracSeg, err := allot.SolveLPWith(in, seg)
	if err != nil {
		t.Fatalf("segment: %v", err)
	}
	if d := math.Abs(fracLazy.C - fracSeg.C); d > 1e-6*(1+math.Abs(fracLazy.C)) {
		t.Errorf("paths disagree: lazy C=%v segment C=%v", fracLazy.C, fracSeg.C)
	}
	if fracSeg.Cuts != 0 || fracSeg.Rounds != 0 {
		t.Errorf("segment path reported cut diagnostics (cuts=%d rounds=%d); want zero", fracSeg.Cuts, fracSeg.Rounds)
	}
}
