// The segment-variable ("delta") reformulation of LP (9), used when the
// frontier segment mass makes the lazy-cut row generation the wrong
// tool. The lazy path materialises violated supporting lines of Eq. (8)
// as rows and re-solves warm; at large n·m thousands of those rows pile
// into the basis and every one of them costs a dual-simplex pivot
// against an ever-growing factorization. This path instead encodes the
// same piecewise-linear convex work relaxation *columnwise*, anchored at
// the sequential point (every task on one processor):
//
//	x_j    = XMax_j - y_j,        y_j = sum_k dn_{j,k},  dn in [0, width]
//	wbar_j = W_j(1) + wup_j,      wup_j >= sum_k sigma_{j,k} dn_{j,k}
//	C_j    = Chat_j - g_j,        g_j in [0, Chat_j - Cmin_j]
//	L      = Lhat   - gL,         C = Chat - gC
//
// The fill variables dn_{j,k} walk task j's upper work envelope (over
// its slope-representative supporting lines) downward from XMax_j:
// interval k spans the envelope piece of the k-th shallowest line
// (widths cut at the intersections of consecutive lines) and
// sigma_{j,k} > 0 is that line's work-per-time-saved rate, increasing in
// k by convexity — so understating wup_j is impossible: the total-work
// row presses it onto the fill expression, whose cheapest admissible
// value is the in-order fill, the envelope exactly (the classic
// delta-method argument for separable convex LPs). Chat_j is the
// longest path at single-processor times ending at j, Lhat their
// maximum, Chat = max(Lhat, sum_j W_j(1)/m), and Cmin_j the longest
// path at minimal processing times — so every drop bound is implied and
// the restriction C_j <= Chat_j discards only dominated completions,
// never the optimum.
//
// The payoff is the start basis: with every variable at its zero lower
// bound the LP sits AT the sequential schedule point, which satisfies
// every row — no artificials, no phase 1 at all — and the simplex only
// ever spends pivots parallelizing the tasks the optimum actually
// parallelizes (for n >> m workloads, a small fraction). Almost all of
// those pivots are bound flips of 2-nonzero fill columns that never
// grow the eta file, exactly the shape the devex bucket pricing in
// internal/lp is built for. wbar_j stays a variable on purpose:
// substituting its fill expression into the total-work row would make
// that row dense in every fill variable and each pivot touching it
// would pay O(n·m) in the reduced-cost update.
//
// The reformulation solves exactly the relaxation the lazy path
// converges to (the envelope of all slope-representative lines), so the
// two paths agree to the cut tolerance; the dense SolveLPReference
// remains the differential oracle for both.

package allot

import (
	"fmt"
	"math"

	"malsched/internal/lp"
	"malsched/internal/malleable"
)

// segFormulationMin/Max bracket the frontier segment mass for which
// SolveLPWith routes to the segment-variable formulation. Below the
// window the lazy-cut loop converges in a handful of rounds and wins on
// column count; above it the two formulations need comparably many
// pivots (~1 per envelope piece the optimum crosses) but the lazy
// path's dual-restart pivots run on cheaper basis patterns than the
// segment path's 10x-wider pricing, and win again. Both crossovers were
// measured on the layered scenarios of BenchmarkPhase1LP (n=200/m=16:
// lazy 21ms vs segment 29ms; n=500/m=32: segment 0.49s vs lazy 0.81s;
// n=1000/m=64: segment 5.4s vs lazy 7.7s; n=2000/m=64: lazy 10.2s vs
// segment 19.3s).
const (
	segFormulationMin = 6000
	segFormulationMax = 70000
)

// solveLPSegments builds and solves the segment-variable reformulation.
// fronts are the instance's efficient frontiers (already computed into
// ws). The variable layout is deterministic: g_j = j, y_j = n+j,
// wup_j = 2n+j, gL = 3n, gC = 3n+1, then each task's fill variables
// contiguously.
func solveLPSegments(in *Instance, ws *Workspace, fronts []malleable.Frontier) (*Fractional, error) {
	n := in.G.N()
	m := in.M
	p := ws.problem()
	for j := 0; j < 3*n+2; j++ {
		p.AddVar("")
	}
	gj := func(j int) int { return j }
	yj := func(j int) int { return n + j }
	wj := func(j int) int { return 2*n + j }
	vGL := 3 * n
	vGC := 3*n + 1

	// Anchor quantities: Chat_j / Cmin_j are the longest paths ending at
	// each task under single-processor (XMax) and all-minimal (XMin)
	// processing times.
	order := ws.topo(in.G)
	chat := ws.lpminBuf(2 * n)
	cmin := chat[n : 2*n]
	chat = chat[:n]
	lhat, lmin, wfloor := 0.0, 0.0, 0.0
	for _, v32 := range order {
		v := int(v32)
		f := &fronts[v]
		dmax := chat[v] + f.XMax()
		dmin := cmin[v] + f.XMin()
		chat[v], cmin[v] = dmax, dmin
		if dmax > lhat {
			lhat = dmax
		}
		if dmin > lmin {
			lmin = dmin
		}
		for _, s := range in.G.Succs(v) {
			if dmax > chat[s] {
				chat[s] = dmax
			}
			if dmin > cmin[s] {
				cmin[s] = dmin
			}
		}
		wfloor += f.W[0]
	}
	cHat := math.Max(lhat, wfloor/float64(m))
	cLow := math.Max(lmin, wfloor/float64(m))

	// Objective: minimize C = Chat - gC, i.e. maximize the drop.
	p.SetObj(vGC, -1)
	p.SetBounds(vGL, 0, lhat-lmin)
	p.SetBounds(vGC, 0, cHat-cLow)

	// Drop bounds, fill variables and the per-task rows, one envelope
	// computation per task. Fill k of task j covers the k-th shallowest
	// envelope piece below XMax_j; wup_j is capped by the total envelope
	// rise (the value it takes at x_j = XMin_j). The fill definition
	// y_j = sum_k dn_{j,k} and the envelope tie
	// wup_j >= sum_k sigma_{j,k} dn_{j,k} both hold with equality (0=0)
	// at the all-zero start point, so neither needs an artificial.
	for j := 0; j < n; j++ {
		f := &fronts[j]
		p.SetBounds(gj(j), 0, chat[j]-cmin[j])
		p.SetBounds(yj(j), 0, f.XMax()-f.XMin())
		segs := f.Segments()
		if segs < 1 {
			p.SetBounds(wj(j), 0, 0)
			continue
		}
		sigmas := ws.repFill(f)
		base := p.NumVars()
		rise := 0.0
		for k := range sigmas {
			v := p.AddVar("")
			p.SetBounds(v, 0, ws.repWidth[k])
			rise += sigmas[k] * ws.repWidth[k]
		}
		p.SetBounds(wj(j), 0, rise)

		terms := ws.termBuf(1 + len(sigmas))
		terms = append(terms, lp.Term{Var: yj(j), Coef: 1})
		for k := range sigmas {
			terms = append(terms, lp.Term{Var: base + k, Coef: -1})
		}
		p.AddConstraint(lp.EQ, 0, terms...)

		terms = ws.termBuf(1 + len(sigmas))
		terms = append(terms, lp.Term{Var: wj(j), Coef: 1})
		for k, sg := range sigmas {
			terms = append(terms, lp.Term{Var: base + k, Coef: -sg})
		}
		p.AddConstraint(lp.GE, 0, terms...)
	}

	// Rows. Every right-hand side below is non-negative at the all-zero
	// (sequential) point by construction of the anchors, so the initial
	// all-logical basis is primal feasible and the solve runs without a
	// single artificial.
	for j := 0; j < n; j++ {
		// Source rows x_j <= C_j: -y_j + g_j <= Chat_j - XMax_j.
		if len(in.G.Preds(j)) == 0 {
			p.AddConstraint(lp.LE, chat[j]-fronts[j].XMax(),
				lp.Term{Var: yj(j), Coef: -1}, lp.Term{Var: gj(j), Coef: 1})
		}
		// Sink rows C_j <= L: -g_j + gL <= Lhat - Chat_j.
		if len(in.G.Succs(j)) == 0 {
			p.AddConstraint(lp.LE, lhat-chat[j],
				lp.Term{Var: gj(j), Coef: -1}, lp.Term{Var: vGL, Coef: 1})
		}
	}
	// Precedence C_i + x_j <= C_j, in drop coordinates:
	// -g_i - y_j + g_j <= Chat_j - Chat_i - XMax_j. Linear chains
	// collapse exactly as in the lazy builder (see the comment there):
	// -g_v0 - sum y_vi + g_vk <= Chat_vk - Chat_v0 - sum XMax_vi.
	ws.chainLinks(in.G)
	for v := 0; v < n; v++ {
		if ws.chainNext[v] >= 0 && !ws.linkInto[v] {
			terms := ws.termBuf(4)
			terms = append(terms, lp.Term{Var: gj(v), Coef: -1})
			rhs := -chat[v]
			t := v
			for ws.chainNext[t] >= 0 {
				t = int(ws.chainNext[t])
				terms = append(terms, lp.Term{Var: yj(t), Coef: -1})
				rhs -= fronts[t].XMax()
			}
			terms = append(terms, lp.Term{Var: gj(t), Coef: 1})
			p.AddConstraint(lp.LE, rhs+chat[t], terms...)
		}
		for _, s := range in.G.Succs(v) {
			if int(ws.chainNext[v]) == s {
				continue
			}
			p.AddConstraint(lp.LE, chat[s]-chat[v]-fronts[s].XMax(),
				lp.Term{Var: gj(v), Coef: -1},
				lp.Term{Var: yj(s), Coef: -1},
				lp.Term{Var: gj(s), Coef: 1})
		}
	}
	// L <= C: -gL + gC <= Chat - Lhat.
	p.AddConstraint(lp.LE, cHat-lhat, lp.Term{Var: vGL, Coef: -1}, lp.Term{Var: vGC, Coef: 1})
	// Total work: sum_j wup_j / m + gC <= Chat - sum_j W_j(1) / m.
	workTerms := ws.termBuf(n + 1)
	for j := 0; j < n; j++ {
		workTerms = append(workTerms, lp.Term{Var: wj(j), Coef: 1 / float64(m)})
	}
	workTerms = append(workTerms, lp.Term{Var: vGC, Coef: 1})
	p.AddConstraint(lp.LE, cHat-wfloor/float64(m), workTerms...)
	ws.LP.DeferPolish = false
	sol, err := p.SolveWith(&ws.LP)
	if err != nil {
		return nil, fmt.Errorf("allot: LP (9) segment formulation failed: %w", err)
	}

	out := &Fractional{
		X:           make([]float64, n),
		Wbar:        make([]float64, n),
		LStar:       make([]float64, n),
		C:           cHat + sol.Obj, // sol.Obj = -gC*
		L:           lhat - sol.X[vGL],
		Formulation: FormulationSegment,
	}
	for j := 0; j < n; j++ {
		f := &fronts[j]
		out.X[j] = clamp(f.XMax()-sol.X[yj(j)], f.XMin(), f.XMax())
		out.Wbar[j] = f.WorkAt(out.X[j])
		out.W += out.Wbar[j]
		out.LStar[j] = f.FractionalAlloc(out.X[j])
	}
	return out, nil
}

// repFill computes f's downward envelope fill pieces into the shared
// scratch: piece k carries the k-th shallowest slope-representative
// supporting line (the collapse rule — 1e-6 relative slope agreement
// folds a chain onto its first member — matches the lazy path's cut
// filter), sigma_k = |slope| of that line, and repWidth[k] the piece's
// x-extent below XMax, cut at the intersections of consecutive lines and
// clamped into [XMin, XMax] so roundoff can never produce a negative
// width. Returns the sigmas; widths are in ws.repWidth.
func (ws *Workspace) repFill(f *malleable.Frontier) []float64 {
	slopes := ws.repSlope[:0]
	icpts := ws.repIcpt[:0]
	lastRep := math.Inf(-1)
	for s := 0; s < f.Segments(); s++ {
		slope, icpt := lineCoefs(f, s)
		if s == 0 || math.Abs(slope-lastRep) > 1e-6*(1+math.Abs(slope)) {
			slopes = append(slopes, slope)
			icpts = append(icpts, icpt)
			lastRep = slope
		}
	}
	r := len(slopes)
	widths := grown(ws.repWidth, r)
	prev := f.XMax()
	for k := 0; k < r; k++ {
		low := f.XMin()
		if k < r-1 {
			// Crossing of line k with the next-steeper line k+1.
			low = (icpts[k+1] - icpts[k]) / (slopes[k] - slopes[k+1])
		}
		if low > prev {
			low = prev
		}
		if low < f.XMin() {
			low = f.XMin()
		}
		widths[k] = prev - low
		slopes[k] = -slopes[k] // sigma: positive work rise per unit drop
		prev = low
	}
	ws.repSlope, ws.repIcpt, ws.repWidth = slopes, icpts, widths
	return slopes
}
