package allot_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

// editInstance returns a structurally identical copy of in with k randomly
// chosen tasks' processing-time vectors rescaled (uniform scaling preserves
// monotonicity and concave speedup, so the edited instance stays valid).
// This is the serving layer's delta-request shape: same DAG, few numeric
// edits.
func editInstance(in *allot.Instance, k int, rng *rand.Rand) *allot.Instance {
	out := &allot.Instance{G: in.G, Tasks: make([]malleable.Task, len(in.Tasks)), M: in.M}
	copy(out.Tasks, in.Tasks)
	for _, j := range rng.Perm(len(out.Tasks))[:k] {
		f := 0.5 + 1.5*rng.Float64()
		times := make([]float64, len(out.Tasks[j].Times))
		for l, p := range out.Tasks[j].Times {
			times[l] = p * f
		}
		out.Tasks[j].Times = times
	}
	return out
}

// checkDeltaAgainstCold solves edited via the delta path (warm from snap)
// and via a cold solve on a fresh workspace and verifies both land on the
// same LP optimum with frontier-feasible solutions.
func checkDeltaAgainstCold(t *testing.T, edited *allot.Instance, snap *allot.LPSnapshot) {
	t.Helper()
	dws := allot.NewWorkspace()
	dws.SegThreshold = -1
	delta, err := allot.SolveLPDeltaWith(edited, dws, snap)
	if err != nil {
		t.Fatalf("delta: %v", err)
	}
	cws := allot.NewWorkspace()
	cws.SegThreshold = -1
	cold, err := allot.SolveLPWith(edited, cws)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	tol := 1e-6 * (1 + math.Abs(cold.C))
	if math.Abs(delta.C-cold.C) > tol {
		t.Errorf("optimum differs: delta C=%v cold C=%v (delta cuts=%d rounds=%d)",
			delta.C, cold.C, delta.Cuts, delta.Rounds)
	}
	fronts := edited.Frontiers()
	for j := range fronts {
		f := fronts[j]
		if delta.X[j] < f.XMin()-1e-9 || delta.X[j] > f.XMax()+1e-9 {
			t.Errorf("task %d: delta x*=%v outside [%v, %v]", j, delta.X[j], f.XMin(), f.XMax())
		}
		if w := f.WorkAt(delta.X[j]); math.Abs(w-delta.Wbar[j]) > 1e-6*(1+w) {
			t.Errorf("task %d: delta Wbar=%v != w(x*)=%v", j, delta.Wbar[j], w)
		}
	}
	lb := math.Max(delta.L, delta.W/float64(edited.M))
	if lb > delta.C+tol {
		t.Errorf("certificate broken: max{L=%v, W/m=%v} > C=%v", delta.L, delta.W/float64(edited.M), delta.C)
	}
}

// TestSolveLPDeltaMatchesCold is the delta path's acceptance differential:
// across every DAG family, capture a snapshot from a solved base instance,
// edit a few tasks, and verify the warm re-solve reaches the optimum a
// cold solve finds.
func TestSolveLPDeltaMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 18; trial++ {
		family := lazyFamilies[trial%len(lazyFamilies)]
		n := 8 + rng.Intn(24)
		m := 2 + rng.Intn(15)
		g := buildDAG(family, n, 0.1+0.3*rng.Float64(), rng)
		base := gen.Instance(g, gen.FamilyMixed, m, rng)
		k := 1 + rng.Intn(8)
		if k > g.N() {
			k = g.N()
		}
		t.Run(fmt.Sprintf("%s_n%d_m%d_k%d", family, g.N(), m, k), func(t *testing.T) {
			ws := allot.NewWorkspace()
			ws.SegThreshold = -1 // snapshots exist on the lazy route only
			if _, err := allot.SolveLPWith(base, ws); err != nil {
				t.Fatalf("base: %v", err)
			}
			snap := ws.CaptureLP(base)
			if snap == nil {
				t.Fatal("no snapshot captured after lazy solve")
			}
			checkDeltaAgainstCold(t, editInstance(base, k, rng), snap)
		})
	}
}

// TestSolveLPDeltaChained re-captures after a delta solve and warm-starts
// the next edit from it — the serving layer's steady state, where each
// cached answer seeds the next edit's solve.
func TestSolveLPDeltaChained(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := buildDAG("layered", 24, 0.2, rng)
	cur := gen.Instance(g, gen.FamilyMixed, 8, rng)
	ws := allot.NewWorkspace()
	ws.SegThreshold = -1
	if _, err := allot.SolveLPWith(cur, ws); err != nil {
		t.Fatal(err)
	}
	snap := ws.CaptureLP(cur)
	for step := 0; step < 4; step++ {
		edited := editInstance(cur, 3, rng)
		checkDeltaAgainstCold(t, edited, snap)
		dws := allot.NewWorkspace()
		dws.SegThreshold = -1
		if _, err := allot.SolveLPDeltaWith(edited, dws, snap); err != nil {
			t.Fatal(err)
		}
		next := dws.CaptureLP(edited)
		if next == nil {
			t.Fatalf("step %d: delta solve produced no snapshot", step)
		}
		cur, snap = edited, next
	}
}

// TestSolveLPDeltaMismatchFallsBack: snapshot/instance mismatches must
// degrade to a correct cold solve, never fail or mis-solve.
func TestSolveLPDeltaMismatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildDAG("outtree", 12, 0.2, rng)
	in := gen.Instance(g, gen.FamilyMixed, 4, rng)
	cold, err := allot.SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, snap *allot.LPSnapshot) {
		t.Helper()
		got, err := allot.SolveLPDeltaWith(in, allot.NewWorkspace(), snap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got.C-cold.C) > 1e-6*(1+math.Abs(cold.C)) {
			t.Errorf("%s: C=%v != cold C=%v", name, got.C, cold.C)
		}
	}
	check("nil snapshot", nil)

	ws := allot.NewWorkspace()
	ws.SegThreshold = -1
	other := gen.Instance(buildDAG("chain", 5, 0, rng), gen.FamilyMixed, 4, rng)
	if _, err := allot.SolveLPWith(other, ws); err != nil {
		t.Fatal(err)
	}
	check("wrong task count", ws.CaptureLP(other))

	ws2 := allot.NewWorkspace()
	ws2.SegThreshold = -1
	if _, err := allot.SolveLPWith(in, ws2); err != nil {
		t.Fatal(err)
	}
	good := ws2.CaptureLP(in)
	bad := *good
	bad.M = in.M + 1
	check("wrong machine size", &bad)

	corrupt := *good
	corrupt.Cuts = append([]allot.CutRef(nil), good.Cuts...)
	corrupt.Cuts[0] = allot.CutRef{Task: int32(len(in.Tasks) + 3), Seg: 0}
	check("out-of-range cut task", &corrupt)
}

// TestSolveLPDeltaCollapsedFrontier: an edit that collapses a task's
// frontier to a single point (no supporting lines left to replay) must
// fall back to the cold path and still solve correctly.
func TestSolveLPDeltaCollapsedFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := buildDAG("forkjoin", 10, 0, rng)
	base := gen.Instance(g, gen.FamilyMixed, 6, rng)
	ws := allot.NewWorkspace()
	ws.SegThreshold = -1
	if _, err := allot.SolveLPWith(base, ws); err != nil {
		t.Fatal(err)
	}
	snap := ws.CaptureLP(base)
	if snap == nil {
		t.Fatal("no snapshot")
	}
	edited := &allot.Instance{G: base.G, Tasks: append([]malleable.Task(nil), base.Tasks...), M: base.M}
	flat := make([]float64, len(edited.Tasks[0].Times))
	for l := range flat {
		flat[l] = 5 // constant times: no speedup, single-point frontier
	}
	edited.Tasks[0] = malleable.NewTask("flat", flat)
	checkDeltaAgainstCold(t, edited, snap)
}

// TestCaptureLPNilOffLazyRoute: the segment-variable formulation lays
// columns out by value, not structure, so solves routed there must not
// export snapshots.
func TestCaptureLPNilOffLazyRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := buildDAG("independent", 16, 0, rng)
	in := gen.Instance(g, gen.FamilyMixed, 8, rng)
	ws := allot.NewWorkspace()
	ws.SegThreshold = 1 // route everything with >= 1 segment to segment.go
	if _, err := allot.SolveLPWith(in, ws); err != nil {
		t.Fatal(err)
	}
	if snap := ws.CaptureLP(in); snap != nil {
		t.Error("segment-route solve exported a snapshot")
	}
	if bas := ws.LP.ExportBasis(); bas == nil {
		t.Log("segment route leaves no exportable basis (fine)")
	}
}
