package trace

import (
	"strings"
	"testing"

	"malsched/internal/schedule"
)

func TestGantt(t *testing.T) {
	s := &schedule.Schedule{M: 2, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 2},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	var b strings.Builder
	if err := Gantt(&b, s, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "P00") || !strings.Contains(out, "P01") {
		t.Errorf("missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("missing task labels:\n%s", out)
	}
	if !strings.Contains(out, "Cmax=2.000") {
		t.Errorf("missing makespan header:\n%s", out)
	}
	// Task 0 used both processors; both rows must contain its label.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[2], "0") {
		t.Errorf("wide task not on both rows:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var b strings.Builder
	if err := Gantt(&b, &schedule.Schedule{M: 2}, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("empty schedule output: %q", b.String())
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"l", "s"}, [][]float64{{1, 1}, {2, 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "l,s\n1,1\n2,1.5\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"m", "ratio"}, [][]string{{"2", "2.0000"}, {"33", "3.2144"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "m   ratio") || !strings.Contains(out, "33  3.2144") {
		t.Errorf("table misaligned:\n%s", out)
	}
}

func TestTaskLabelWraps(t *testing.T) {
	if taskLabel(0) != '0' || taskLabel(10) != 'a' || taskLabel(62) != '0' {
		t.Errorf("labels: %c %c %c", taskLabel(0), taskLabel(10), taskLabel(62))
	}
}
