// Package trace renders schedules and experiment data for humans and for
// figure regeneration: ASCII Gantt charts of schedules (used to illustrate
// the heavy path of the paper's Fig. 2), CSV series emitters for the
// function plots of Figs. 1, 3 and 4, and aligned-column table writers for
// Tables 2-4.
package trace

import (
	"fmt"
	"io"
	"strings"

	"malsched/internal/schedule"
	"malsched/internal/sim"
)

// Gantt renders an ASCII Gantt chart of the schedule: one row per
// processor, time quantised into width columns. Tasks are labelled by
// base-36 digits of their index; '.' is idle. A processor assignment is
// obtained by replaying the schedule through the machine simulator.
func Gantt(w io.Writer, s *schedule.Schedule, width int) error {
	if len(s.Items) == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	rep, err := sim.Replay(s)
	if err != nil {
		return err
	}
	cmax := s.Makespan()
	if width < 10 {
		width = 10
	}
	rows := make([][]byte, s.M)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	for j, it := range s.Items {
		from := int(it.Start / cmax * float64(width))
		to := int(it.End() / cmax * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		label := taskLabel(j)
		for _, p := range rep.Assignments[j].Procs {
			for c := from; c < to; c++ {
				rows[p][c] = label
			}
		}
	}
	fmt.Fprintf(w, "time 0%sCmax=%.3f\n", strings.Repeat(" ", width-len(fmt.Sprintf("Cmax=%.3f", cmax))-5), cmax)
	for p := range rows {
		if _, err := fmt.Fprintf(w, "P%02d |%s|\n", p, rows[p]); err != nil {
			return err
		}
	}
	return nil
}

func taskLabel(j int) byte {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return digits[j%len(digits)]
}

// CSV writes rows of float64 columns with a header line.
func CSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table writes an aligned text table.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}
