// Package cancelflag carries a cancellation signal into the solver's hot
// loops without threading a context.Context through them. A Flag is one
// atomic bool: the engine layer sets it from a context watcher goroutine,
// and the simplex pivot loops, cut-separation rounds and phase-2 commit
// loop poll it every few iterations — an atomic load costs ~1 ns against
// pivots in the hundreds of microseconds, so the checkpoints are free on
// the solve path while bounding abort latency to a handful of pivots.
package cancelflag

import (
	"errors"
	"sync/atomic"
)

// ErrCanceled is returned by solver layers that observed a set Flag. The
// engine maps it back to the originating context's error before the caller
// sees it, so public API users receive context.Canceled /
// context.DeadlineExceeded as usual.
var ErrCanceled = errors.New("solve canceled")

// Flag is a set-once-per-job cancellation latch. The zero value is usable.
// All methods are safe for concurrent use and nil-safe, so deeply nested
// solver code can poll an unwired (nil) flag for free.
type Flag struct {
	set atomic.Bool
}

// Set requests cancellation. Nil-safe no-op.
func (f *Flag) Set() {
	if f != nil {
		f.set.Store(true)
	}
}

// Clear re-arms the flag for the next job. Nil-safe no-op.
func (f *Flag) Clear() {
	if f != nil {
		f.set.Store(false)
	}
}

// Canceled reports whether cancellation was requested. Nil flags are never
// canceled.
//
//malsched:noalloc
func (f *Flag) Canceled() bool {
	return f != nil && f.set.Load()
}
