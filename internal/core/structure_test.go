package core

import (
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

// A pure chain of perfectly parallelisable tasks: the LP should stretch
// every task to balance L against W/m... in fact for a chain W/m <= L
// always binds at L, so the LP runs every task as wide as the work penalty
// allows. For capped-linear tasks (no penalty up to k), x*_j = p(k) and the
// algorithm should recover the optimal chain schedule up to rounding.
func TestChainOfCappedTasks(t *testing.T) {
	m := 4
	n := 5
	in := &allot.Instance{G: gen.Chain(n), M: m}
	for i := 0; i < n; i++ {
		in.Tasks = append(in.Tasks, malleable.CappedLinear("c", 8, m, m))
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// OPT = n * 8/m = 10 (run everything full width, no penalty).
	opt := float64(n) * 8 / float64(m)
	if math.Abs(res.LowerBound-opt) > 1e-6 {
		t.Errorf("lower bound %v, want OPT=%v (chain, no work penalty)", res.LowerBound, opt)
	}
	// mu caps allotments at 2 for m=4, so the realised makespan is
	// n * p(mu) = 5 * 4 = 20 = 2x; still within the proven ratio 8/3.
	if res.Makespan > res.Params.R*opt+1e-9 {
		t.Errorf("makespan %v exceeds r*OPT = %v", res.Makespan, res.Params.R*opt)
	}
}

// Wide independent sequential tasks: the work bound dominates; LIST packs
// them and lands within ~(2 - 1/m) of the bound like any list scheduler.
func TestWideIndependentSequential(t *testing.T) {
	m := 8
	n := 64
	in := &allot.Instance{G: gen.Independent(n), M: m}
	for i := 0; i < n; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("s", 1, m))
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// W = 64, so LB = 8; unit tasks pack perfectly: Cmax = 8.
	if math.Abs(res.LowerBound-8) > 1e-6 {
		t.Errorf("lower bound %v, want 8", res.LowerBound)
	}
	if math.Abs(res.Makespan-8) > 1e-6 {
		t.Errorf("makespan %v, want 8 (perfect packing)", res.Makespan)
	}
}

// The rounding parameter rho=1 never decreases allotments below the
// fractional solution's segment floor; rho=0 never increases them above
// the ceiling. Together with Lemma 4.1 this pins the rounded allotment
// into [floor(l*), ceil(l*)].
func TestRoundingBracketsFractionalAllotment(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		frac, err := allot.SolveLP(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, rho := range []float64{0, 0.26, 0.5, 1} {
			alloc := allot.Round(in, frac, rho)
			for j, l := range alloc {
				ls := frac.LStar[j]
				if float64(l) < math.Floor(ls)-1e-9 || float64(l) > math.Ceil(ls)+1e-9 {
					t.Errorf("trial %d rho=%v task %d: rounded %d outside [floor,ceil] of l*=%v",
						trial, rho, j, l, ls)
				}
			}
		}
	}
}

// Scaling invariance: multiplying all processing times by c scales the
// makespan and lower bound by exactly c (the LP, rounding and LIST are all
// scale-equivariant).
func TestScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := gen.Instance(gen.Layered(3, 3, 2, rng), gen.FamilyPowerLaw, 6, rng)
	res1, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scaled := &allot.Instance{G: in.G, M: in.M}
	for _, task := range in.Tasks {
		scaled.Tasks = append(scaled.Tasks, malleable.Scale(task, 3.0))
	}
	res2, err := Solve(scaled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Makespan-3*res1.Makespan) > 1e-5*res2.Makespan {
		t.Errorf("makespan not scale-equivariant: %v vs 3*%v", res2.Makespan, res1.Makespan)
	}
	if math.Abs(res2.LowerBound-3*res1.LowerBound) > 1e-5*res2.LowerBound {
		t.Errorf("bound not scale-equivariant: %v vs 3*%v", res2.LowerBound, res1.LowerBound)
	}
}

// A single source feeding a wide fan: the fan tasks must overlap after the
// source completes (regression test for ready-set computation).
func TestFanOverlap(t *testing.T) {
	m := 4
	width := 6
	g := dag.New(width + 1)
	for i := 1; i <= width; i++ {
		g.MustEdge(0, i)
	}
	in := &allot.Instance{G: g, M: m}
	for i := 0; i <= width; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("s", 1, m))
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Source at [0,1), then 6 unit tasks on 4 processors: 2 more rounds.
	if math.Abs(res.Makespan-3) > 1e-6 {
		t.Errorf("makespan %v, want 3", res.Makespan)
	}
}

// Deterministic output: the same instance solved twice yields the same
// schedule (no map iteration or randomness leaks into the pipeline).
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	in := gen.Instance(gen.ErdosDAG(12, 0.3, rng), gen.FamilyMixed, 6, rng)
	a, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespan differs across runs: %v vs %v", a.Makespan, b.Makespan)
	}
	for j := range a.Schedule.Items {
		if a.Schedule.Items[j] != b.Schedule.Items[j] {
			t.Fatalf("item %d differs: %+v vs %+v", j, a.Schedule.Items[j], b.Schedule.Items[j])
		}
	}
}

// Lemma 4.3's structural property on real LIST schedules: the heavy path
// covers every T1 slot (during any slot with fewer than mu busy processors,
// some heavy-path task is executing — otherwise a ready task could have
// been started, contradicting LIST's greediness).
func TestHeavyPathCoversT1Slots(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		res, err := Solve(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mu := res.Params.Mu
		path := res.Schedule.HeavyPath(in.G, mu)
		onPath := make(map[int]bool, len(path))
		for _, j := range path {
			onPath[j] = true
		}
		for _, step := range res.Schedule.Profile() {
			if step.Busy > mu-1 {
				continue // not a T1 slot
			}
			mid := (step.From + step.To) / 2
			covered := false
			for j, it := range res.Schedule.Items {
				if onPath[j] && it.Start <= mid && mid < it.End() {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("trial %d (n=%d m=%d mu=%d): T1 slot [%v,%v) not covered by heavy path %v",
					trial, n, m, mu, step.From, step.To, path)
			}
		}
	}
}
