// Package core implements the paper's primary contribution: the two-phase
// approximation algorithm for scheduling malleable tasks with precedence
// constraints (Section 3), with approximation ratio at most
// 100/63 + 100(sqrt(6469)+13)/5481 ~= 3.291919 (Theorem 4.1, Corollary 4.1).
//
// Pipeline:
//
//  1. choose parameters rho*(m), mu*(m)            (Eqs. (19)-(20))
//  2. phase 1: solve LP (9), round with rho        (internal/allot)
//  3. phase 2: cap allotments at mu, run LIST      (internal/listsched)
//  4. verify feasibility and report the lower bound max{L*, W*/m} <= OPT.
package core

import (
	"errors"
	"fmt"
	"math"

	"malsched/internal/allot"
	"malsched/internal/listsched"
	"malsched/internal/params"
	"malsched/internal/schedule"
	"malsched/internal/solver"
)

// ErrNumericTaint is reported when a solve produced a non-finite makespan
// or lower bound — the numerical state is poisoned (NaN/Inf crept through
// the LP or rounding) and the result cannot be trusted. Recoverable by
// re-solving on a different tier.
var ErrNumericTaint = errors.New("core: non-finite result (numeric taint)")

// Options tunes the solver. The zero value requests the paper's parameter
// choices.
type Options struct {
	// Rho overrides the rounding parameter when RhoSet is true.
	Rho    float64
	RhoSet bool
	// Mu overrides the allotment threshold when > 0.
	Mu int
	// SkipVerify skips the final feasibility check (for benchmarks).
	SkipVerify bool
	// CaptureLP asks for a warm-start snapshot of the phase-1 LP in
	// Result.LPSnapshot. Snapshots only exist on the lazy-cut route (the
	// other formulations have no transplantable basis), so capture is
	// best-effort: when the router sends the solve elsewhere — e.g. a
	// large instance onto the min-cut sweep — the result simply carries
	// no snapshot. Pin Formulation to lazy to make capture unconditional.
	CaptureLP bool
	// Formulation pins the phase-1 LP formulation (lazy, segment, mincut
	// or dense); empty lets the router pick by instance shape. A dense pin
	// routes through the reference oracle exactly like DenseLP. Pins other
	// than lazy are incompatible with CaptureLP/WarmLP, whose snapshots
	// only exist on the lazy simplex route.
	Formulation allot.Formulation
	// WarmLP warm-starts phase 1 from a snapshot captured on an instance
	// with the same structure (task count, DAG shape, machine count) —
	// the serving layer's delta path. Mismatched snapshots degrade to a
	// cold solve; the result is an exact LP optimum either way.
	WarmLP *allot.LPSnapshot
	// DenseLP routes phase 1 through the dense reference oracle
	// (allot.SolveLPReference) instead of the sparse simplex — the
	// degradation ladder's fallback when the sparse path hits numerical
	// trouble. The dense tableau materialises all n*m supporting lines,
	// so this is only viable for small instances. Incompatible with
	// CaptureLP/WarmLP (no snapshot exists on the dense route).
	DenseLP bool
}

// Result carries the schedule together with the analysis quantities of
// Section 4.
type Result struct {
	Schedule *schedule.Schedule
	// Fractional is the phase-1 LP optimum.
	Fractional *allot.Fractional
	// AlphaPrime is the rounded phase-1 allotment l'_j.
	AlphaPrime []int
	// Alpha is the final allotment l_j = min{l'_j, mu}.
	Alpha []int
	// Params records the (mu, rho, proven ratio) used.
	Params params.Choice
	// Makespan is the schedule length Cmax.
	Makespan float64
	// LowerBound is max{L*, W*/m} <= C* <= OPT (Eq. (11)).
	LowerBound float64
	// Guarantee is Makespan / LowerBound, an upper bound on the realised
	// approximation factor (the true factor vs OPT can only be smaller).
	Guarantee float64
	// LPSnapshot is the phase-1 warm-start snapshot when Options.CaptureLP
	// was set (nil when capture was impossible). It is expressed against
	// the transitively reduced instance, which is structure-determined, so
	// it transplants onto any instance with the same structure fingerprint.
	LPSnapshot *allot.LPSnapshot
}

// Solve runs the two-phase algorithm on the instance.
func Solve(in *allot.Instance, opt Options) (*Result, error) {
	return SolveWith(in, opt, nil)
}

// SolveWith is Solve with a reusable cross-phase workspace: the phase-1 LP
// tableau, pricing buffers and task frontiers plus the phase-2 capacity
// profile and ready queue live in ws and are reused across calls (a nil ws
// solves with fresh buffers). The returned Result never aliases workspace
// memory, so it stays valid across subsequent solves.
func SolveWith(in *allot.Instance, opt Options, ws *solver.Workspace) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	choice := params.Choose(in.M)
	if opt.RhoSet {
		if opt.Rho < 0 || opt.Rho > 1 {
			return nil, fmt.Errorf("core: rho=%v outside [0,1]", opt.Rho)
		}
		choice.Rho = opt.Rho
		choice.R = params.Objective(in.M, choice.Mu, opt.Rho)
	}
	if opt.Mu > 0 {
		if opt.Mu > in.M {
			return nil, fmt.Errorf("core: mu=%d exceeds m=%d", opt.Mu, in.M)
		}
		choice.Mu = opt.Mu
		choice.R = params.Objective(in.M, opt.Mu, choice.Rho)
	}

	// Preprocess (internal/prep via the workspace): both phases run on
	// the transitively reduced instance — same tasks, same indices, same
	// partial order — while verification below stays against the
	// original graph.
	red := ws.Reduce(in)

	// The frontier cache in ws is shared by SolveLPWith and RoundWith;
	// release it on exit so a pooled workspace does not pin the instance.
	defer ws.Release()
	lpws := ws.LP()
	if lpws == nil && (opt.CaptureLP || opt.WarmLP != nil || opt.Formulation != "") {
		lpws = allot.NewWorkspace() // capture and pinning need a handle on the solve's state
	}
	pin := opt.Formulation
	switch pin {
	case "", allot.FormulationLazy, allot.FormulationSegment,
		allot.FormulationMincut, allot.FormulationDense:
	default:
		return nil, fmt.Errorf("core: unknown formulation %q (valid: %s, %s, %s, %s)",
			pin, allot.FormulationLazy, allot.FormulationSegment,
			allot.FormulationMincut, allot.FormulationDense)
	}
	if pin != "" && pin != allot.FormulationLazy {
		if opt.CaptureLP {
			return nil, fmt.Errorf("core: CaptureLP requires the lazy formulation, not %q", pin)
		}
		if opt.WarmLP != nil {
			return nil, fmt.Errorf("core: WarmLP requires the lazy formulation, not %q", pin)
		}
	}
	var frac *allot.Fractional
	var err error
	switch {
	case opt.DenseLP || pin == allot.FormulationDense:
		frac, err = allot.SolveLPReference(red)
	case opt.WarmLP != nil:
		frac, err = allot.SolveLPDeltaWith(red, lpws, opt.WarmLP)
	default:
		if pin != "" {
			prev := lpws.ForceFormulation
			lpws.ForceFormulation = pin
			frac, err = allot.SolveLPWith(red, lpws)
			lpws.ForceFormulation = prev
		} else {
			frac, err = allot.SolveLPWith(red, lpws)
		}
	}
	if err != nil {
		return nil, err
	}
	var snap *allot.LPSnapshot
	if opt.CaptureLP && frac.Formulation == allot.FormulationLazy {
		// Only the lazy route leaves a transplantable basis + cut log in
		// the workspace; after any other route the capture state is stale.
		snap = lpws.CaptureLP(red)
	}
	alphaPrime := allot.RoundWith(red, frac, choice.Rho, lpws)
	alpha := listsched.CapAllotment(alphaPrime, choice.Mu)
	sched, err := listsched.RunWith(red, alpha, ws.Sched())
	if err != nil {
		return nil, err
	}
	if !opt.SkipVerify {
		if err := sched.Verify(in.G); err != nil {
			return nil, fmt.Errorf("core: produced infeasible schedule: %w", err)
		}
	}

	lb := frac.L
	if w := frac.W / float64(in.M); w > lb {
		lb = w
	}
	// C* from the LP can sit marginally above max{L*,W*/m} only through
	// numerical slack; certify with the larger of the two quantities.
	if frac.C > lb {
		lb = frac.C
	}
	makespan := sched.Makespan()
	if !isFinite(makespan) || !isFinite(lb) {
		return nil, fmt.Errorf("%w: makespan=%v lb=%v", ErrNumericTaint, makespan, lb)
	}
	res := &Result{
		Schedule:   sched,
		Fractional: frac,
		AlphaPrime: alphaPrime,
		Alpha:      alpha,
		Params:     choice,
		Makespan:   makespan,
		LowerBound: lb,
		LPSnapshot: snap,
	}
	if lb > 0 {
		res.Guarantee = res.Makespan / lb
	}
	return res, nil
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
