package core

import (
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
	"malsched/internal/params"
)

func smallInstance(seed int64, n, m int, density float64) *allot.Instance {
	r := rand.New(rand.NewSource(seed))
	g := gen.ErdosDAG(n, density, r)
	return gen.Instance(g, gen.FamilyMixed, m, r)
}

func TestSolveChain(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	in := &allot.Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("a", []float64{4, 2}),
			malleable.NewTask("b", []float64{4, 2}),
		},
		M: 2,
	}
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(g); err != nil {
		t.Fatal(err)
	}
	// Optimal is 4 (both tasks on 2 processors, back to back); the proven
	// guarantee for m=2 is a factor 2.
	if res.Makespan > 2*res.LowerBound+1e-6 {
		t.Errorf("makespan %v exceeds 2x lower bound %v", res.Makespan, res.LowerBound)
	}
	if res.LowerBound < 4-1e-6 {
		t.Errorf("lower bound %v, want >= 4", res.LowerBound)
	}
}

func TestSolveUsesPaperParams(t *testing.T) {
	in := smallInstance(1, 8, 6, 0.3)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := params.Choose(6)
	if res.Params != want {
		t.Errorf("params = %+v, want %+v", res.Params, want)
	}
}

func TestSolveOverrides(t *testing.T) {
	in := smallInstance(2, 6, 4, 0.3)
	res, err := Solve(in, Options{Rho: 0.5, RhoSet: true, Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.Rho != 0.5 || res.Params.Mu != 1 {
		t.Errorf("overrides ignored: %+v", res.Params)
	}
	for j, l := range res.Alpha {
		if l > 1 {
			t.Errorf("task %d allotted %d processors with mu=1", j, l)
		}
	}
	if _, err := Solve(in, Options{Rho: 1.5, RhoSet: true}); err == nil {
		t.Error("rho=1.5 accepted")
	}
	if _, err := Solve(in, Options{Mu: 99}); err == nil {
		t.Error("mu>m accepted")
	}
}

// The headline guarantee: on random instances the realised makespan is
// within the proven ratio r(m) of the LP lower bound (which is itself a
// lower bound on OPT), i.e. the Theorem 4.1 inequality holds empirically.
func TestGuaranteeWithinProvenRatio(t *testing.T) {
	seeds := []int64{3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for _, seed := range seeds {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		m := 2 + r.Intn(7)
		in := gen.Instance(gen.ErdosDAG(n, 0.25, r), gen.FamilyMixed, m, r)
		res, err := Solve(in, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Guarantee > res.Params.R+1e-6 {
			t.Errorf("seed %d (n=%d m=%d): guarantee %.4f exceeds proven ratio %.4f",
				seed, n, m, res.Guarantee, res.Params.R)
		}
	}
}

// Alpha never exceeds AlphaPrime or mu; AlphaPrime comes from the rounding.
func TestAllotmentChain(t *testing.T) {
	in := smallInstance(13, 9, 8, 0.3)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.Alpha {
		if res.Alpha[j] > res.AlphaPrime[j] && res.Alpha[j] > res.Params.Mu {
			t.Errorf("task %d: alpha=%d alphaPrime=%d mu=%d", j, res.Alpha[j], res.AlphaPrime[j], res.Params.Mu)
		}
		if res.Alpha[j] > res.Params.Mu {
			t.Errorf("task %d: alpha=%d exceeds mu=%d", j, res.Alpha[j], res.Params.Mu)
		}
	}
}

func TestSolveDAGFamilies(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	graphs := map[string]*dag.DAG{
		"chain":       gen.Chain(6),
		"independent": gen.Independent(6),
		"forkjoin":    gen.ForkJoin(5),
		"outtree":     gen.OutTree(7, r),
		"layered":     gen.Layered(3, 3, 2, r),
		"sp":          gen.SeriesParallel(6, r),
		"cholesky":    gen.Cholesky(3),
	}
	for name, g := range graphs {
		in := gen.Instance(g, gen.FamilyPowerLaw, 4, r)
		res, err := Solve(in, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := res.Schedule.Verify(g); err != nil {
			t.Errorf("%s: infeasible: %v", name, err)
		}
		if res.Guarantee > res.Params.R+1e-6 {
			t.Errorf("%s: guarantee %.4f > proven %.4f", name, res.Guarantee, res.Params.R)
		}
	}
}

func TestSolveM1(t *testing.T) {
	in := smallInstance(15, 5, 1, 0.4)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On one processor the schedule is exact: makespan = total work.
	total := 0.0
	for _, task := range in.Tasks {
		total += task.Time(1)
	}
	if math.Abs(res.Makespan-total) > 1e-6 {
		t.Errorf("m=1 makespan %v, want %v", res.Makespan, total)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := &allot.Instance{G: dag.New(1), Tasks: []malleable.Task{malleable.NewTask("bad", []float64{1, 2})}, M: 2}
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("assumption-violating instance accepted")
	}
}
