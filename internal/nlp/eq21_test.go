package nlp

import (
	"math"
	"testing"

	"malsched/internal/params"
)

// The paper's algebra: (A1*Delta + A3)^2 - A2^2*Delta must equal
// m^2(1+m)(1+rho)^2 * sum c_i rho^i identically in (m, rho). Verifying the
// identity numerically on a grid checks every printed coefficient of
// Eq. (21) and of A1, A2, A3 at once.
func TestEq21IdentityHolds(t *testing.T) {
	for _, m := range []float64{2, 3, 5, 10, 33, 100} {
		for rho := 0.0; rho <= 1.0001; rho += 0.05 {
			lhs := Eq21LHS(m, rho)
			rhs := Eq21RHS(m, rho)
			scale := math.Max(math.Abs(lhs), math.Abs(rhs))
			if scale < 1 {
				scale = 1
			}
			if math.Abs(lhs-rhs)/scale > 1e-9 {
				t.Fatalf("identity fails at m=%v rho=%.2f: lhs=%v rhs=%v", m, rho, lhs, rhs)
			}
		}
	}
}

// At the root of Eq. (21) inside (0,1), the stationarity residual
// A1*Delta + A2*sqrt(Delta) + A3 vanishes, i.e. the squaring introduced no
// spurious feasible root for these m.
func TestStationarityAtEq21Root(t *testing.T) {
	for _, m := range []float64{50, 500, 5000} {
		rho, ok := FeasibleRho(Eq21Coefficients(m))
		if !ok {
			t.Fatalf("m=%v: no feasible root", m)
		}
		res := StationarityResidual(m, rho)
		// Normalise by the magnitude of the individual terms.
		d := Delta(m, rho)
		a1, a2, a3 := A1A2A3(m, rho)
		scale := math.Abs(a1*d) + math.Abs(a2*math.Sqrt(d)) + math.Abs(a3)
		if math.Abs(res)/scale > 1e-8 {
			t.Errorf("m=%v: residual %v not zero at rho=%v (scale %v)", m, res, rho, scale)
		}
	}
}

// The stationary rho from Eq. (21) actually minimises the objective: the
// objective at nearby rho values is no smaller.
func TestEq21RootMinimisesObjective(t *testing.T) {
	m := 1000
	rho, ok := FeasibleRho(Eq21Coefficients(float64(m)))
	if !ok {
		t.Fatal("no feasible root")
	}
	obj := func(r float64) float64 {
		mu := params.MuFromLemma48(m, r)
		return (2*float64(m)/(2-r) + (float64(m)-mu)*2/(1+r)) / (float64(m) - mu + 1)
	}
	at := obj(rho)
	for _, d := range []float64{-0.05, -0.01, 0.01, 0.05} {
		if v := obj(rho + d); v < at-1e-9 {
			t.Errorf("objective at rho*%+.2f = %v beats stationary value %v", d, v, at)
		}
	}
}

// Delta is positive throughout the feasible region (needed for the square
// root in Lemma 4.8 / mu* to be real).
func TestDeltaPositive(t *testing.T) {
	for m := 2.0; m <= 64; m++ {
		for rho := 0.0; rho <= 1.0001; rho += 0.01 {
			if Delta(m, rho) <= 0 {
				t.Fatalf("Delta(m=%v, rho=%v) = %v <= 0", m, rho, Delta(m, rho))
			}
		}
	}
}

// Lemma 4.8's mu* stays inside the feasible range [1, (m+1)/2] for the rho
// region the paper uses (rho > 2mu/m - 1).
func TestMuStarRange(t *testing.T) {
	for _, m := range []int{2, 5, 10, 33, 100} {
		for rho := 0.0; rho <= 1.0001; rho += 0.05 {
			mu := params.MuFromLemma48(m, rho)
			if mu < 0.5 || mu > float64(m+1)/2+1e-9 {
				t.Errorf("mu*(m=%d, rho=%.2f) = %v out of range", m, rho, mu)
			}
		}
	}
}
