package nlp

import "math"

// This file implements the intermediate objects of the paper's Subsection
// 4.3 derivation, so the chain from the stationarity condition A(rho)' = 0
// to the degree-6 polynomial of Eq. (21) can be verified numerically:
//
//	A(rho)' = 0
//	  <=>  A1*Delta + A2*sqrt(Delta) + A3 = 0          (paper, §4.3)
//	  =>   (A1*Delta + A3)^2 - A2^2*Delta = 0
//	  <=>  m^2 (1+m) (1+rho)^2 * sum_i c_i rho^i = 0   (Eq. (21))
//
// with Delta = (rho^2 + 2rho + 2) m^2 - 2(1+rho) m.

// Delta returns the discriminant-like quantity of §4.3.
func Delta(m, rho float64) float64 {
	return (rho*rho+2*rho+2)*m*m - 2*(1+rho)*m
}

// A1A2A3 returns the three coefficients of the equation
// A1*Delta + A2*sqrt(Delta) + A3 = 0 as given in the paper.
func A1A2A3(m, rho float64) (a1, a2, a3 float64) {
	a1 = m*rho*rho*rho + (-3*m-1)*rho*rho + (6*m+4)*rho + (m - 4)
	a2 = m * (-m*math.Pow(rho, 4) + (m+1)*math.Pow(rho, 3) + (-3*m-2)*rho*rho + (2*m+8)*rho + (-2*m + 2))
	a3 = m * ((m*m+m)*math.Pow(rho, 4) + (m*m-3*m-1)*math.Pow(rho, 3) +
		(-3*m*m-3*m+3)*rho*rho + (-5*m*m+7*m)*rho + (-2*m*m + 6*m - 4))
	return a1, a2, a3
}

// StationarityResidual evaluates A1*Delta + A2*sqrt(Delta) + A3 at (m, rho):
// zero exactly at stationary points of A(rho) with mu = mu*(rho) from
// Lemma 4.8.
func StationarityResidual(m, rho float64) float64 {
	d := Delta(m, rho)
	a1, a2, a3 := A1A2A3(m, rho)
	return a1*d + a2*math.Sqrt(d) + a3
}

// Eq21LHS evaluates the squared, radical-free form
// (A1*Delta + A3)^2 - A2^2 * Delta.
func Eq21LHS(m, rho float64) float64 {
	d := Delta(m, rho)
	a1, a2, a3 := A1A2A3(m, rho)
	t := a1*d + a3
	return t*t - a2*a2*d
}

// Eq21RHS evaluates m^2 (1+m) (1+rho)^2 * sum_i c_i rho^i with the paper's
// coefficients c_0..c_6 (Eq21Coefficients).
func Eq21RHS(m, rho float64) float64 {
	sum := 0.0
	pow := 1.0
	for _, c := range Eq21Coefficients(m) {
		sum += c * pow
		pow *= rho
	}
	return m * m * (1 + m) * (1 + rho) * (1 + rho) * sum
}
