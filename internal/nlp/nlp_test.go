package nlp

import (
	"math"
	"sort"
	"testing"

	"malsched/internal/params"
)

// Table 4 of the paper, transcribed: m, mu(m), rho(m), r(m) from the
// delta-rho = 1e-4 grid search.
var paperTable4 = []struct {
	m   int
	mu  int
	rho float64
	r   float64
}{
	{2, 1, 0.000, 2.0000}, {3, 2, 0.098, 2.4880}, {4, 2, 0.243, 2.5904}, {5, 2, 0.200, 2.6389},
	{6, 3, 0.243, 2.9142}, {7, 3, 0.292, 2.8777}, {8, 3, 0.250, 2.8571}, {9, 3, 0.000, 3.0000},
	{10, 4, 0.310, 2.9992}, {11, 4, 0.273, 2.9671}, {12, 4, 0.067, 3.0460}, {13, 5, 0.318, 3.0664},
	{14, 5, 0.286, 3.0333}, {15, 5, 0.111, 3.0802}, {16, 6, 0.325, 3.1090}, {17, 6, 0.294, 3.0776},
	{18, 6, 0.143, 3.1065}, {19, 7, 0.328, 3.1384}, {20, 7, 0.300, 3.1092}, {21, 7, 0.167, 3.1273},
	{22, 8, 0.331, 3.1600}, {23, 8, 0.304, 3.1330}, {24, 8, 0.185, 3.1441}, {25, 9, 0.333, 3.1765},
	{26, 9, 0.308, 3.1515}, {27, 9, 0.200, 3.1579}, {28, 10, 0.335, 3.1895}, {29, 10, 0.310, 3.1663},
	{30, 10, 0.212, 3.1695}, {31, 10, 0.129, 3.1972}, {32, 11, 0.312, 3.1785}, {33, 11, 0.222, 3.1794},
}

func TestTable4MatchesPaper(t *testing.T) {
	for _, row := range paperTable4 {
		got := GridSolve(row.m, 1e-4)
		if math.Abs(got.R-row.r) > 5e-5 {
			t.Errorf("m=%d: r = %.4f, want %.4f (mu=%d rho=%.3f vs paper mu=%d rho=%.3f)",
				row.m, got.R, row.r, got.Mu, got.Rho, row.mu, row.rho)
			continue
		}
		if got.Mu != row.mu {
			t.Errorf("m=%d: mu = %d, want %d", row.m, got.Mu, row.mu)
		}
		if math.Abs(got.Rho-row.rho) > 2e-3 { // flat optimum: allow grid slack
			t.Errorf("m=%d: rho = %.4f, want %.3f", row.m, got.Rho, row.rho)
		}
	}
}

func TestTable4Generator(t *testing.T) {
	rows := Table4(5)
	if len(rows) != 4 || rows[0].M != 2 || rows[3].M != 5 {
		t.Fatalf("Table4(5) = %+v", rows)
	}
}

// The grid optimum is never worse than the paper's fixed-parameter choice
// (it optimises over the same objective with more freedom).
func TestGridDominatesFixedChoice(t *testing.T) {
	for m := 2; m <= 40; m++ {
		grid := GridSolve(m, 1e-3)
		fixed := params.Choose(m)
		if grid.R > fixed.R+1e-9 {
			t.Errorf("m=%d: grid %v worse than fixed choice %v", m, grid.R, fixed.R)
		}
	}
}

func TestRootsQuadratic(t *testing.T) {
	// x^2 - 3x + 2 = (x-1)(x-2).
	roots := Roots([]float64{2, -3, 1})
	if len(roots) != 2 {
		t.Fatalf("got %d roots", len(roots))
	}
	re := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(re)
	if math.Abs(re[0]-1) > 1e-9 || math.Abs(re[1]-2) > 1e-9 {
		t.Errorf("roots = %v, want 1 and 2", re)
	}
	for _, r := range roots {
		if math.Abs(imag(r)) > 1e-9 {
			t.Errorf("spurious imaginary part in %v", r)
		}
	}
}

func TestRootsComplexPair(t *testing.T) {
	// x^2 + 1 = 0.
	roots := Roots([]float64{1, 0, 1})
	for _, r := range roots {
		if math.Abs(real(r)) > 1e-9 || math.Abs(math.Abs(imag(r))-1) > 1e-9 {
			t.Errorf("root %v, want +/- i", r)
		}
	}
}

func TestRootsDegenerate(t *testing.T) {
	if r := Roots([]float64{5}); r != nil {
		t.Errorf("constant polynomial roots = %v", r)
	}
	r := Roots([]float64{-6, 2}) // 2x - 6
	if len(r) != 1 || math.Abs(real(r[0])-3) > 1e-9 {
		t.Errorf("linear root = %v, want 3", r)
	}
	// Trailing zero coefficients are trimmed.
	r = Roots([]float64{-6, 2, 0, 0})
	if len(r) != 1 || math.Abs(real(r[0])-3) > 1e-9 {
		t.Errorf("trimmed root = %v, want 3", r)
	}
}

// Section 4.3: the asymptotic polynomial's roots as printed in the paper:
// rho1 = -5.8353, rho2,3 = -0.949632 +/- 0.89448i, rho4 = 0.261917,
// rho5,6 = 0.72544 +/- 1.60027i.
//
// Note: the paper's printed rho1 = -5.8353 is a misprint. For the monic
// polynomial the root sum must equal -6 (the negated rho^5 coefficient);
// with the paper's other five roots that forces rho1 = -5.813534, which is
// what our solver finds (and polynomial evaluation confirms). The feasible
// root 0.261917 — the one the algorithm uses — matches the paper exactly.
func TestAsymptoticPolynomialRoots(t *testing.T) {
	roots := Roots(AsymptoticPolynomial())
	if len(roots) != 6 {
		t.Fatalf("got %d roots, want 6", len(roots))
	}
	wantReal := map[float64]bool{-5.813534: false, 0.261917: false}
	wantPairs := [][2]float64{{-0.949632, 0.89448}, {0.72544, 1.60027}}
	pairSeen := make([]int, len(wantPairs))
	for _, r := range roots {
		if math.Abs(imag(r)) < 1e-6 {
			for w := range wantReal {
				if math.Abs(real(r)-w) < 5e-5 {
					wantReal[w] = true
				}
			}
			continue
		}
		for i, p := range wantPairs {
			if math.Abs(real(r)-p[0]) < 5e-5 && math.Abs(math.Abs(imag(r))-p[1]) < 5e-5 {
				pairSeen[i]++
			}
		}
	}
	for w, seen := range wantReal {
		if !seen {
			t.Errorf("real root %v not found in %v", w, roots)
		}
	}
	for i, c := range pairSeen {
		if c != 2 {
			t.Errorf("conjugate pair %v found %d times", wantPairs[i], c)
		}
	}
}

func TestAsymptoticOptimum(t *testing.T) {
	rho, beta, r := AsymptoticOptimum()
	if math.Abs(rho-0.261917) > 5e-6 {
		t.Errorf("rho* = %.6f, want 0.261917", rho)
	}
	if math.Abs(beta-0.325907) > 5e-6 {
		t.Errorf("mu*/m = %.6f, want 0.325907", beta)
	}
	if math.Abs(r-3.291913) > 5e-6 {
		t.Errorf("r = %.6f, want 3.291913", r)
	}
	// The asymptotic optimum sits just below the Corollary 4.1 supremum for
	// the fixed rho-hat = 0.26 algorithm.
	if r > params.CorollarySup() {
		t.Errorf("asymptotic optimum %v above corollary %v", r, params.CorollarySup())
	}
}

// Eq. (21) at finite m: its feasible root converges to 0.261917 as m grows.
func TestEq21RootConvergence(t *testing.T) {
	prevGap := math.Inf(1)
	for _, m := range []float64{10, 100, 1000, 10000} {
		rho, ok := FeasibleRho(Eq21Coefficients(m))
		if !ok {
			t.Fatalf("m=%v: no feasible root", m)
		}
		gap := math.Abs(rho - 0.261917)
		if gap > prevGap+1e-9 {
			t.Errorf("m=%v: root %v not converging (gap %v after %v)", m, rho, gap, prevGap)
		}
		prevGap = gap
	}
	if rho, _ := FeasibleRho(Eq21Coefficients(10000)); math.Abs(rho-0.261917) > 1e-3 {
		t.Errorf("root at m=10000 is %v, want ~0.261917", rho)
	}
}

// Lemma 4.6 via the A/B branches: for fixed rho the two branches cross
// exactly once in mu, at the Lemma 4.8 minimiser, and the crossing minimises
// max{A, B} (properties Omega1/Omega2, Figs. 3-4).
func TestLemma46OnABBranches(t *testing.T) {
	for _, m := range []int{8, 16, 33} {
		for _, rho := range []float64{0.2, 0.26, 0.3} {
			A, B := ABFunctions(m, rho)
			x0, minimises, found := UniqueCrossing(A, B, 1, float64(m+1)/2, 4000)
			if !found {
				t.Errorf("m=%d rho=%v: no crossing found", m, rho)
				continue
			}
			want := params.MuFromLemma48(m, rho)
			if math.Abs(x0-want) > 1e-6 {
				t.Errorf("m=%d rho=%v: crossing %v, Lemma 4.8 gives %v", m, rho, x0, want)
			}
			if !minimises {
				t.Errorf("m=%d rho=%v: crossing does not minimise max{A,B}", m, rho)
			}
		}
	}
}

func TestUniqueCrossingNoSignChange(t *testing.T) {
	f := func(x float64) float64 { return x }
	g := func(x float64) float64 { return x + 1 }
	if _, _, found := UniqueCrossing(f, g, 0, 1, 100); found {
		t.Error("crossing reported for non-crossing functions")
	}
}

// At the asymptotic optimum, the derivative of A along rho (with mu from
// Lemma 4.8) vanishes: rho* is an interior minimum.
func TestRhoStarIsStationary(t *testing.T) {
	m := 2_000_000
	obj := func(rho float64) float64 {
		mu := params.MuFromLemma48(m, rho)
		return (2*float64(m)/(2-rho) + (float64(m)-mu)*2/(1+rho)) / (float64(m) - mu + 1)
	}
	rho, _, _ := AsymptoticOptimum()
	h := 1e-4
	deriv := (obj(rho+h) - obj(rho-h)) / (2 * h)
	if math.Abs(deriv) > 1e-3 {
		t.Errorf("dA/drho at rho* = %v, want ~0", deriv)
	}
}
