// Package nlp implements the min–max nonlinear program machinery of
// Section 4 of the paper: the grid solver for program (18) that produces
// Table 4, the asymptotic analysis of Subsection 4.3 (the degree-6
// polynomial Eq. (21), its roots, and the limits rho* = 0.261917,
// mu*/m -> 0.325907, r -> 3.291913), and the Lemma 4.6 unique-crossing
// machinery illustrated by Figs. 3 and 4.
package nlp

import (
	"math"
	"math/cmplx"

	"malsched/internal/params"
)

// GridResult is one solution of the min–max NLP by grid search.
type GridResult struct {
	M   int
	Mu  int
	Rho float64
	R   float64
}

// GridSolve minimises the Objective of NLP (17)/(18) over integer
// mu in [1, floor((m+1)/2)] and rho on a uniform grid of step dRho in
// [0, 1], reproducing Table 4 (which uses dRho = 1e-4).
func GridSolve(m int, dRho float64) GridResult {
	best := GridResult{M: m, Mu: 1, Rho: 0, R: math.Inf(1)}
	muMax := (m + 1) / 2
	if muMax < 1 {
		muMax = 1
	}
	steps := int(math.Round(1/dRho)) + 1
	for mu := 1; mu <= muMax; mu++ {
		for s := 0; s < steps; s++ {
			rho := float64(s) * dRho
			if rho > 1 {
				rho = 1
			}
			r := params.Objective(m, mu, rho)
			if r < best.R-1e-12 {
				best = GridResult{M: m, Mu: mu, Rho: rho, R: r}
			}
		}
	}
	return best
}

// Table4 regenerates Table 4 of the paper for m = 2..maxM with the paper's
// grid step 1e-4.
func Table4(maxM int) []GridResult {
	out := make([]GridResult, 0, maxM-1)
	for m := 2; m <= maxM; m++ {
		out = append(out, GridSolve(m, 1e-4))
	}
	return out
}

// AsymptoticPolynomial returns the coefficients (constant first) of the
// m -> infinity limit of Eq. (21):
//
//	rho^6 + 6rho^5 + 3rho^4 + 14rho^3 + 21rho^2 + 24rho - 8 = 0.
func AsymptoticPolynomial() []float64 {
	return []float64{-8, 24, 21, 14, 3, 6, 1}
}

// Eq21Coefficients returns the finite-m coefficients c0..c6 of the
// polynomial in Eq. (21) (after dividing out m^2(1+m)(1+rho)^2).
func Eq21Coefficients(m float64) []float64 {
	return []float64{
		-8 * (m - 1) * (m - 1) * (m - 2),
		8 * (m - 1) * (m - 2) * (3*m - 2),
		21*m*m*m - 59*m*m + 16*m + 24,
		2 * (m + 1) * (7*m*m - 7*m - 4),
		3*m*m*m - 7*m*m + 15*m + 1,
		2 * m * (3*m*m - 4*m - 1),
		m * m * (m + 1),
	}
}

// Roots finds all complex roots of the polynomial with the given real
// coefficients (constant term first) using the Durand–Kerner iteration.
// The leading coefficient must be non-zero.
func Roots(coefs []float64) []complex128 {
	n := len(coefs) - 1
	for n > 0 && coefs[n] == 0 {
		n--
	}
	if n < 1 {
		return nil
	}
	// Normalise to a monic polynomial.
	c := make([]complex128, n+1)
	lead := coefs[n]
	for i := 0; i <= n; i++ {
		c[i] = complex(coefs[i]/lead, 0)
	}
	eval := func(x complex128) complex128 {
		v := complex(0, 0)
		for i := n; i >= 0; i-- {
			v = v*x + c[i]
		}
		return v
	}
	// Initial guesses: points on a circle avoiding symmetry axes.
	roots := make([]complex128, n)
	seed := complex(0.4, 0.9)
	cur := complex(1, 0)
	for i := range roots {
		cur *= seed
		roots[i] = cur
	}
	for iter := 0; iter < 500; iter++ {
		maxDelta := 0.0
		for i := range roots {
			num := eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				continue
			}
			d := num / den
			roots[i] -= d
			if a := cmplx.Abs(d); a > maxDelta {
				maxDelta = a
			}
		}
		if maxDelta < 1e-13 {
			break
		}
	}
	return roots
}

// FeasibleRho returns the unique real root of the polynomial inside (0, 1),
// the asymptotically optimal rounding parameter (rho* = 0.261917 for the
// limit polynomial).
func FeasibleRho(coefs []float64) (float64, bool) {
	for _, r := range Roots(coefs) {
		if math.Abs(imag(r)) < 1e-7 && real(r) > 0 && real(r) < 1 {
			return real(r), true
		}
	}
	return 0, false
}

// AsymptoticOptimum computes the Section 4.3 limits: the optimal rho*, the
// allotment fraction beta = mu*/m, and the limiting ratio r.
func AsymptoticOptimum() (rho, beta, r float64) {
	rho, ok := FeasibleRho(AsymptoticPolynomial())
	if !ok {
		panic("nlp: asymptotic polynomial has no feasible root")
	}
	beta = ((2 + rho) - math.Sqrt(rho*rho+2*rho+2)) / 2
	r = 2/((2-rho)*(1-beta)) + 2/(1+rho)
	return rho, beta, r
}

// --- Lemma 4.6 machinery (Figs. 3 and 4) -------------------------------

// Func1D is a scalar function on an interval.
type Func1D func(float64) float64

// UniqueCrossing verifies the hypothesis and conclusion of Lemma 4.6 for f
// and g sampled on [a, b]: when f' and g' have strictly opposite signs
// (property Omega1) or are both non-vanishing (property Omega2) and
// f(x) = g(x) has a root, the root x0 is unique and minimises
// h(x) = max{f(x), g(x)}. It returns the crossing point found by bisection
// and whether the sampled minimiser of h agrees with it.
func UniqueCrossing(f, g Func1D, a, b float64, samples int) (x0 float64, minimises bool, found bool) {
	d := func(x float64) float64 { return f(x) - g(x) }
	// Bisection needs a sign change.
	lo, hi := a, b
	if d(lo)*d(hi) > 0 {
		return 0, false, false
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d(lo)*d(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	x0 = (lo + hi) / 2
	// Sampled minimiser of h = max{f,g}.
	h := func(x float64) float64 { return math.Max(f(x), g(x)) }
	bestX, bestV := a, h(a)
	for i := 1; i <= samples; i++ {
		x := a + (b-a)*float64(i)/float64(samples)
		if v := h(x); v < bestV {
			bestX, bestV = x, v
		}
	}
	step := (b - a) / float64(samples)
	return x0, math.Abs(bestX-x0) <= 2*step, true
}

// ABFunctions returns the two branch functions A(mu) and B(mu) of the
// Subsection 4.1.2 analysis for machine size m and fixed rho: A is the
// x1-vertex branch and B the x2-vertex branch of the Objective of NLP (18),
// viewed as functions of a continuous mu in [1, (m+1)/2]. Their unique
// crossing is the Lemma 4.8 minimiser mu*(rho) — exactly the situation
// Lemma 4.6 (Figs. 3 and 4) addresses: A is increasing and B decreasing in
// mu, so the crossing minimises max{A, B}.
func ABFunctions(m int, rho float64) (A, B Func1D) {
	fm := float64(m)
	A = func(mu float64) float64 {
		return (2*fm/(2-rho) + (fm-mu)*2/(1+rho)) / (fm - mu + 1)
	}
	B = func(mu float64) float64 {
		return (2*fm/(2-rho) + (fm-2*mu+1)*fm/mu) / (fm - mu + 1)
	}
	return A, B
}
