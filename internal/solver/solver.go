// Package solver bundles the reusable per-worker state of the full
// two-phase pipeline: the phase-1 LP workspace (sparse CSC model, basis
// factorization and eta file, pricing buffers, task frontiers and lazy-cut
// bookkeeping — see internal/allot and internal/lp) and the phase-2 list
// scheduler workspace (capacity profile, ready queue — see
// internal/listsched). One Workspace is owned by one goroutine at a time
// and is threaded through core.SolveWith, the baseline heuristics and the
// engine's workers, so repeated solves amortise every solver allocation in
// both phases — including the dual-simplex warm restarts of the phase-1
// cut loop, which reuse the previous round's basis inside the same call.
package solver

import (
	"malsched/internal/allot"
	"malsched/internal/cancelflag"
	"malsched/internal/listsched"
	"malsched/internal/prep"
)

// Workspace is the cross-phase reusable solver state. The zero value is not
// useful; call NewWorkspace. A nil *Workspace is accepted everywhere and
// means "solve with fresh buffers".
type Workspace struct {
	// Allot is the phase-1 LP workspace.
	Allot *allot.Workspace
	// List is the phase-2 scheduler workspace.
	List *listsched.Workspace
	// Pre is the instance-preprocessing workspace (transitive-reduction
	// bitsets, chain scratch).
	Pre *prep.Workspace

	// cancel is the one cancellation flag shared by both phases' hot
	// loops; the engine clears it per job and sets it from the job
	// context's watcher (see CancelFlag).
	cancel cancelflag.Flag
}

// NewWorkspace returns a workspace with both phases' buffers ready.
func NewWorkspace() *Workspace {
	ws := &Workspace{Allot: allot.NewWorkspace(), List: listsched.NewWorkspace(), Pre: prep.NewWorkspace()}
	ws.Allot.LP.Cancel = &ws.cancel
	ws.List.Cancel = &ws.cancel
	return ws
}

// CancelFlag returns the workspace's shared cancellation flag, which both
// solver phases poll. Nil-safe: a nil workspace has no flag (and the
// phases treat a nil flag as never canceled).
func (ws *Workspace) CancelFlag() *cancelflag.Flag {
	if ws == nil {
		return nil
	}
	return &ws.cancel
}

// Reduce returns the instance with its precedence graph transitively
// reduced (internal/prep): same tasks, same indices, same partial order,
// fewer arcs — so phase 1 builds fewer precedence rows and phase 2 scans
// fewer arcs, with results unchanged (see the prep package doc). When
// the reduction leaves the graph untouched, in itself is returned.
// Nil-safe on ws.
func (ws *Workspace) Reduce(in *allot.Instance) *allot.Instance {
	var g = in.G
	if ws == nil || ws.Pre == nil {
		g = prep.Reduce(g)
	} else {
		g = ws.Pre.Reduce(g)
	}
	if g == in.G {
		return in
	}
	return &allot.Instance{G: g, Tasks: in.Tasks, M: in.M}
}

// LP returns the phase-1 workspace; nil-safe, so callers can pass
// ws.LP() straight into allot.SolveLPWith regardless of ws being nil.
func (ws *Workspace) LP() *allot.Workspace {
	if ws == nil {
		return nil
	}
	return ws.Allot
}

// Sched returns the phase-2 workspace; nil-safe like LP.
func (ws *Workspace) Sched() *listsched.Workspace {
	if ws == nil {
		return nil
	}
	return ws.List
}

// Release drops the instance references the workspace pins between solves
// (the phase-1 frontier cache), so a long-lived pooled workspace does not
// keep solved instances alive. The grown buffers are kept. Nil-safe.
func (ws *Workspace) Release() {
	if ws != nil && ws.Allot != nil {
		ws.Allot.Release()
	}
}
