// Package dag implements the directed acyclic precedence graphs G = (V, E)
// of the scheduling model: vertices are tasks, and an arc (i, j) means task
// j cannot start before task i completes. It provides construction,
// validation (cycle detection), topological ordering, predecessor/successor
// queries, and node-weighted critical-path computation, which realises the
// critical-path length L used throughout the paper's analysis.
package dag

import (
	"errors"
	"fmt"
)

// DAG is a directed acyclic graph over vertices 0..N-1.
type DAG struct {
	n    int
	succ [][]int // succ[i] = successors of i (Gamma^+)
	pred [][]int // pred[j] = predecessors of j (Gamma^-)
}

// New creates a DAG with n vertices and no arcs.
func New(n int) *DAG {
	if n < 0 {
		panic("dag: negative vertex count")
	}
	return &DAG{n: n, succ: make([][]int, n), pred: make([][]int, n)}
}

// Errors returned by DAG operations.
var (
	ErrVertexRange = errors.New("dag: vertex out of range")
	ErrSelfLoop    = errors.New("dag: self-loop")
	ErrCycle       = errors.New("dag: graph contains a cycle")
)

// N returns the number of vertices.
func (g *DAG) N() int { return g.n }

// M returns the number of arcs.
func (g *DAG) M() int {
	m := 0
	for _, s := range g.succ {
		m += len(s)
	}
	return m
}

// AddEdge inserts the precedence arc (i, j): i must complete before j
// starts. Duplicate arcs are ignored. Cycle freedom is not checked here;
// call Validate after construction.
func (g *DAG) AddEdge(i, j int) error {
	if i < 0 || i >= g.n || j < 0 || j >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, i, j, g.n)
	}
	if i == j {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, i)
	}
	for _, s := range g.succ[i] {
		if s == j {
			return nil
		}
	}
	g.succ[i] = append(g.succ[i], j)
	g.pred[j] = append(g.pred[j], i)
	return nil
}

// MustEdge is AddEdge that panics on error; for use in generators and tests.
func (g *DAG) MustEdge(i, j int) {
	if err := g.AddEdge(i, j); err != nil {
		panic(err)
	}
}

// Preds returns Gamma^-(j), the predecessors of j. The slice is shared;
// callers must not modify it.
func (g *DAG) Preds(j int) []int { return g.pred[j] }

// Succs returns Gamma^+(i), the successors of i. The slice is shared;
// callers must not modify it.
func (g *DAG) Succs(i int) []int { return g.succ[i] }

// Edges returns all arcs as (from, to) pairs in vertex order.
func (g *DAG) Edges() [][2]int {
	out := make([][2]int, 0, g.M())
	for i, ss := range g.succ {
		for _, j := range ss {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// Sources returns the vertices with no predecessors.
func (g *DAG) Sources() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns the vertices with no successors.
func (g *DAG) Sinks() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TopoOrder returns a topological ordering (Kahn's algorithm) or ErrCycle.
func (g *DAG) TopoOrder() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.pred[v])
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate returns ErrCycle if the graph is not acyclic.
func (g *DAG) Validate() error {
	_, err := g.TopoOrder()
	return err
}

// CriticalPath computes, for vertex weights w (w[v] = duration of task v),
// the maximum total weight of a directed path, and one path attaining it.
// This is the critical-path length L of a (fractional or integral)
// allotment. Weights must be non-negative.
func (g *DAG) CriticalPath(w []float64) (float64, []int, error) {
	if len(w) != g.n {
		return 0, nil, fmt.Errorf("dag: weight vector length %d != n=%d", len(w), g.n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	dist := make([]float64, g.n) // dist[v] = max path weight ending at v
	from := make([]int, g.n)
	for v := range from {
		from[v] = -1
	}
	for _, v := range order {
		dist[v] += w[v]
		for _, s := range g.succ[v] {
			if dist[v] > dist[s] {
				dist[s] = dist[v]
				from[s] = v
			}
		}
	}
	best := -1
	for v := 0; v < g.n; v++ {
		if best < 0 || dist[v] > dist[best] {
			best = v
		}
	}
	if best < 0 {
		return 0, nil, nil
	}
	var rev []int
	for v := best; v >= 0; v = from[v] {
		rev = append(rev, v)
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return dist[best], path, nil
}

// Reachable reports whether there is a directed path from i to j (i != j).
func (g *DAG) Reachable(i, j int) bool {
	if i == j {
		return false
	}
	seen := make([]bool, g.n)
	stack := []int{i}
	seen[i] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[v] {
			if s == j {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *DAG) Clone() *DAG {
	c := New(g.n)
	for i, ss := range g.succ {
		for _, j := range ss {
			c.MustEdge(i, j)
		}
	}
	return c
}

// TransitiveReduction returns a copy of the graph with every arc (i, j)
// removed when j is reachable from i through some longer path. For DAGs the
// reduction is unique. Precedence semantics are unchanged (the constraint
// C_i + x_j <= C_j is implied transitively), so reducing an instance before
// building LP (9) shrinks the precedence rows without changing the optimum.
func (g *DAG) TransitiveReduction() (*DAG, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := New(g.n)
	for i := 0; i < g.n; i++ {
		for _, j := range g.succ[i] {
			// Keep (i,j) unless another successor of i reaches j.
			redundant := false
			for _, k := range g.succ[i] {
				if k != j && g.Reachable(k, j) {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustEdge(i, j)
			}
		}
	}
	return out, nil
}
