package dag

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func diamond() *DAG {
	g := New(4)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(1, 3)
	g.MustEdge(2, 3)
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out-of-range edge: got %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative vertex: got %v", err)
	}
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("duplicate edge should be a no-op: %v", err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d after duplicate insert, want 1", g.M())
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 0)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle not detected: %v", err)
	}
	if err := diamond().Validate(); err != nil {
		t.Errorf("acyclic graph flagged: %v", err)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v, want [0]", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", s)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond()
	w := []float64{1, 5, 2, 1}
	length, path, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(length-7) > 1e-12 {
		t.Errorf("critical path length = %v, want 7", length)
	}
	want := []int{0, 1, 3}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path = %v, want %v", path, want)
			break
		}
	}
}

func TestCriticalPathSingleVertex(t *testing.T) {
	g := New(1)
	length, path, err := g.CriticalPath([]float64{4.5})
	if err != nil || length != 4.5 || len(path) != 1 {
		t.Errorf("got %v %v %v", length, path, err)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New(0)
	length, path, err := g.CriticalPath(nil)
	if err != nil || length != 0 || path != nil {
		t.Errorf("got %v %v %v", length, path, err)
	}
}

func TestCriticalPathWrongWeights(t *testing.T) {
	if _, _, err := diamond().CriticalPath([]float64{1}); err == nil {
		t.Error("mismatched weight vector accepted")
	}
}

func TestReachable(t *testing.T) {
	g := diamond()
	cases := []struct {
		i, j int
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {1, 2, false}, {3, 0, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.Reachable(c.i, c.j); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.MustEdge(1, 2)
	if g.M() != 4 || c.M() != 5 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func randomDAG(r *rand.Rand, n int, p float64) *DAG {
	g := New(n)
	perm := r.Perm(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if r.Float64() < p {
				g.MustEdge(perm[a], perm[b])
			}
		}
	}
	return g
}

// Property: a graph built along a random vertex order is always acyclic, its
// topological order is consistent with every edge, and the critical path is
// at least the heaviest single vertex and at most the total weight.
func TestRandomDAGProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		g := randomDAG(r, n, r.Float64()*0.4)
		if g.Validate() != nil {
			return false
		}
		w := make([]float64, n)
		total, heaviest := 0.0, 0.0
		for i := range w {
			w[i] = r.Float64() * 10
			total += w[i]
			if w[i] > heaviest {
				heaviest = w[i]
			}
		}
		length, path, err := g.CriticalPath(w)
		if err != nil {
			return false
		}
		if length < heaviest-1e-9 || length > total+1e-9 {
			return false
		}
		// The returned path must be a real path with the claimed weight.
		sum := 0.0
		for i, v := range path {
			sum += w[v]
			if i > 0 {
				found := false
				for _, s := range g.Succs(path[i-1]) {
					if s == v {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return math.Abs(sum-length) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Errorf("random DAG property failed: %v", err)
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(0, 2) // redundant
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.M() != 2 {
		t.Errorf("reduction kept %d arcs, want 2", r.M())
	}
	if r.Reachable(0, 2) != true {
		t.Error("reachability lost")
	}
}

func TestTransitiveReductionPreservesDiamond(t *testing.T) {
	g := diamond()
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.M() != 4 {
		t.Errorf("diamond should be irreducible, got %d arcs", r.M())
	}
}

// Reduction preserves reachability on random DAGs and never adds arcs.
func TestTransitiveReductionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(12), 0.4)
		r, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if r.M() > g.M() {
			t.Fatalf("reduction grew: %d > %d", r.M(), g.M())
		}
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if i != j && g.Reachable(i, j) != r.Reachable(i, j) {
					t.Fatalf("trial %d: reachability (%d,%d) changed", trial, i, j)
				}
			}
		}
	}
}
