package prep_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"malsched"
	"malsched/internal/allot"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/prep"
	"malsched/internal/solver"
)

// checkPrepEquivalence runs the full two-phase pipeline on the original
// instance and on the explicitly preprocessed one (transitively reduced
// graph, same tasks — the task-index mapping is the identity by
// construction) and demands byte-equal allotments and equal makespans.
// This holds deterministically because the pipeline preprocesses
// internally and preprocessing is idempotent: both runs build the same
// model, pivot the same pivots, and round the same fractional point.
func checkPrepEquivalence(t *testing.T, in *allot.Instance) {
	t.Helper()
	ws := solver.NewWorkspace()
	direct, err := core.SolveWith(in, core.Options{}, ws)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	red := prep.Reduce(in.G)
	rin := &allot.Instance{G: red, Tasks: in.Tasks, M: in.M}
	prepped, err := core.SolveWith(rin, core.Options{}, ws)
	if err != nil {
		t.Fatalf("prep+solve: %v", err)
	}
	if !reflect.DeepEqual(direct.Alpha, prepped.Alpha) {
		t.Errorf("allotments differ:\n direct %v\n prep   %v", direct.Alpha, prepped.Alpha)
	}
	if !reflect.DeepEqual(direct.AlphaPrime, prepped.AlphaPrime) {
		t.Errorf("rounded allotments differ")
	}
	if direct.Makespan != prepped.Makespan {
		t.Errorf("makespans differ: direct %v prep %v", direct.Makespan, prepped.Makespan)
	}
	if direct.LowerBound != prepped.LowerBound {
		t.Errorf("lower bounds differ: direct %v prep %v", direct.LowerBound, prepped.LowerBound)
	}
	// The prep-path schedule must verify against the ORIGINAL graph: the
	// reduction preserved the partial order, not just the arc set.
	if err := prepped.Schedule.Verify(in.G); err != nil {
		t.Errorf("prep schedule infeasible for the original graph: %v", err)
	}
}

var prepFamilies = []string{"chain", "independent", "forkjoin", "layered", "outtree", "erdos"}

func buildPrepDAG(family string, n int, p float64, rng *rand.Rand) *malsched.Instance {
	var in *allot.Instance
	switch family {
	case "chain":
		in = gen.Instance(gen.Chain(n), gen.FamilyMixed, 8, rng)
	case "independent":
		in = gen.Instance(gen.Independent(n), gen.FamilyMixed, 8, rng)
	case "forkjoin":
		in = gen.Instance(gen.ForkJoin(n-2), gen.FamilyMixed, 8, rng)
	case "layered":
		in = gen.Instance(gen.Layered((n+3)/4, 4, 3, rng), gen.FamilyMixed, 8, rng)
	case "outtree":
		in = gen.Instance(gen.OutTree(n, rng), gen.FamilyMixed, 8, rng)
	default:
		in = gen.Instance(gen.ErdosDAG(n, p, rng), gen.FamilyMixed, 8, rng)
	}
	return &malsched.Instance{M: in.M, Tasks: in.Tasks, Edges: in.G.Edges()}
}

// TestPrepPreservesResults is the preprocessing differential test across
// all six DAG families: prep+solve vs direct solve, byte-equal
// allotments and equal makespans.
func TestPrepPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 24; trial++ {
		family := prepFamilies[trial%len(prepFamilies)]
		n := 6 + rng.Intn(24)
		pub := buildPrepDAG(family, n, 0.15+0.3*rng.Float64(), rng)
		ai, err := internalInstance(pub)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("%s_n%d", family, ai.G.N()), func(t *testing.T) {
			checkPrepEquivalence(t, ai)
		})
	}
}

// TestPrepPreservesResultsCanned runs the same equivalence over every
// committed instance under testdata/.
func TestPrepPreservesResultsCanned(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no canned instances found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			pub, err := malsched.ReadJSON(f)
			if err != nil {
				t.Fatal(err)
			}
			ai, err := internalInstance(pub)
			if err != nil {
				t.Fatal(err)
			}
			checkPrepEquivalence(t, ai)
		})
	}
}

// internalInstance rebuilds the internal instance a public one denotes
// (the same conversion malsched.Solve performs).
func internalInstance(pub *malsched.Instance) (*allot.Instance, error) {
	g := dagFromEdges(len(pub.Tasks), pub.Edges)
	ai := &allot.Instance{G: g, Tasks: pub.Tasks, M: pub.M}
	return ai, ai.Validate()
}

func dagFromEdges(n int, edges [][2]int) *dag.DAG {
	g := dag.New(n)
	for _, e := range prep.DedupEdges(edges) {
		g.MustEdge(e[0], e[1])
	}
	return g
}
