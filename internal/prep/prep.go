// Package prep implements instance preprocessing on top of internal/dag:
// duplicate-edge deduplication, transitive reduction, and linear-chain
// analysis, applied before phase 1 and the list phase with an exact
// mapping back to original task indices.
//
// All three transforms preserve results exactly, which pins down what
// each is allowed to do:
//
//   - Dedup and transitive reduction only touch the arc set and never
//     the reachability relation, so the precedence PARTIAL ORDER — the
//     only thing either phase consumes semantically — is unchanged.
//     The LP loses rows that were implied (C_i + x_j <= C_j follows
//     along any longer i→j path because processing times are positive),
//     and the list scheduler loses arcs that could never carry a task's
//     ready time (the intermediate task on the longer path always
//     finishes later). Task indices are never renumbered: the mapping
//     back to original tasks is the identity, by construction.
//
//   - Linear chains (maximal runs v_0 → v_1 → ... → v_k where each
//     interior vertex has exactly one predecessor and one successor)
//     cannot be compressed by merging tasks — chain members generally
//     take different allotments, and a merged frontier is the infimal
//     convolution of the members', which no processing-time vector
//     represents. What CAN be compressed exactly is the chain's LP
//     footprint: the interior completion variables C_{v_1..v_{k-1}}
//     appear only in the chain's own precedence rows, so the k rows
//     collapse to the single row C_{v_0} + sum_i x_{v_i} <= C_{v_k}
//     and the interior completions drop out of the model entirely.
//     ChainNext computes that structure; the LP builders in
//     internal/allot consume it. The list phase keeps per-task items
//     (allotments differ along a chain), so chains pass through it
//     unchanged.
//
// Reduce gates its work by graph size: the reachability closure behind
// the fast transitive reduction costs Theta(n^2/8) bytes, so beyond
// MaxReduceN the reduction is skipped and the instance flows through
// untouched — preprocessing is an optimisation, never an obligation.
package prep

import (
	"sort"

	"malsched/internal/dag"
)

// MaxReduceN bounds the vertex count for which Reduce runs the
// bitset-based transitive reduction (the closure needs n^2/8 bytes of
// workspace: 2 MB at the default). Larger graphs are returned as-is.
const MaxReduceN = 4096

// Workspace holds the reusable preprocessing state: the reachability
// bitsets of the transitive reduction and the chain scratch. A
// Workspace is owned by one goroutine at a time; the zero value is
// ready to use.
type Workspace struct {
	reach []uint64 // n rows of n-bit reachability, row-major
	order []int32  // topological order scratch
	indeg []int32
	next  []int32 // chain-link successor per vertex
}

// NewWorkspace returns an empty preprocessing workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// DedupEdges returns the edge list sorted lexicographically with exact
// duplicates removed. The result is a fresh slice; the input is not
// modified. Self-loops and out-of-range indices are preserved for the
// caller's validation to reject — dedup is a canonicalisation, not a
// validity filter.
func DedupEdges(edges [][2]int) [][2]int {
	out := make([][2]int, len(edges))
	copy(out, edges)
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	n := 0
	for i, e := range out {
		if i > 0 && e == out[i-1] {
			continue
		}
		out[n] = e
		n++
	}
	return out[:n]
}

// Reduce returns the transitive reduction of g — the unique minimal
// subgraph with g's reachability relation — computed with per-vertex
// reachability bitsets in O(E·n/64) time, or g itself (same pointer)
// when the graph is too large for the closure workspace or already
// reduction-free. Vertices are never renumbered.
func Reduce(g *dag.DAG) *dag.DAG {
	return NewWorkspace().Reduce(g)
}

// Reduce is the workspace-reusing form of the package-level Reduce.
func (ws *Workspace) Reduce(g *dag.DAG) *dag.DAG {
	n := g.N()
	if n == 0 || n > MaxReduceN {
		return g
	}
	order, ok := ws.Topo(g)
	if !ok {
		return g // cyclic: let the caller's validation report it
	}
	words := (n + 63) / 64
	if cap(ws.reach) < n*words {
		ws.reach = make([]uint64, n*words)
	}
	reach := ws.reach[:n*words]
	clear(reach)

	// In reverse topological order, a vertex reaches the union of its
	// successors and their reaches; an arc (v, s) is redundant exactly
	// when some OTHER successor of v already reaches s.
	redundant := 0
	for i := n - 1; i >= 0; i-- {
		v := int(order[i])
		rv := reach[v*words : (v+1)*words]
		for _, s := range g.Succs(v) {
			rs := reach[s*words : (s+1)*words]
			for w := range rv {
				rv[w] |= rs[w]
			}
		}
		for _, s := range g.Succs(v) {
			if rv[s/64]&(1<<(s%64)) != 0 {
				redundant++
			} else {
				rv[s/64] |= 1 << (s % 64)
			}
		}
	}
	if redundant == 0 {
		return g
	}
	// Rebuild without the redundant arcs: (v, s) is kept when no other
	// successor of v reaches s (equivalently, removing direct successors
	// from v's reach-through-others test). Recompute with a second pass:
	// v's reach-through-others of s = union of reaches of v's successors
	// other than s itself; since distinct successors on a longer path to
	// s must pass through some successor t with s in reach(t), testing
	// s ∈ reach(t) for any t != s in Succs(v) suffices — and reach(t)
	// already includes t itself is false (reach excludes the vertex), so
	// the union test above is exact.
	out := dag.New(n)
	for i := n - 1; i >= 0; i-- {
		v := int(order[i])
		for _, s := range g.Succs(v) {
			through := false
			for _, t := range g.Succs(v) {
				if t == s {
					continue
				}
				if reach[t*words+s/64]&(1<<(s%64)) != 0 {
					through = true
					break
				}
			}
			if !through {
				out.MustEdge(v, s)
			}
		}
	}
	return out
}

// ChainNext returns, for each vertex, its linear-chain successor: w =
// next[v] >= 0 exactly when (v, w) is a chain link — v's only successor
// is w and w's only predecessor is v — and -1 otherwise. Maximal runs
// of links are the linear chains whose interior completion variables
// the LP builders collapse away. The returned slice lives in ws and is
// valid until the next call.
func (ws *Workspace) ChainNext(g *dag.DAG) []int32 {
	n := g.N()
	if cap(ws.next) < n {
		ws.next = make([]int32, n)
	}
	ws.next = ws.next[:n]
	for v := 0; v < n; v++ {
		ws.next[v] = -1
		succ := g.Succs(v)
		if len(succ) != 1 {
			continue
		}
		if w := succ[0]; len(g.Preds(w)) == 1 {
			ws.next[v] = int32(w)
		}
	}
	return ws.next
}

// Topo computes a topological order of g into ws's reusable scratch;
// ok is false for cyclic graphs. The returned slice is valid until the
// next call.
func (ws *Workspace) Topo(g *dag.DAG) ([]int32, bool) {
	n := g.N()
	if cap(ws.order) < n {
		ws.order = make([]int32, 0, n)
		ws.indeg = make([]int32, n)
	}
	order, indeg := ws.order[:0], ws.indeg[:n]
	for v := 0; v < n; v++ {
		indeg[v] = int32(len(g.Preds(v)))
		if indeg[v] == 0 {
			order = append(order, int32(v))
		}
	}
	for head := 0; head < len(order); head++ {
		for _, s := range g.Succs(int(order[head])) {
			if indeg[s]--; indeg[s] == 0 {
				order = append(order, int32(s))
			}
		}
	}
	ws.order = order
	return order, len(order) == n
}
