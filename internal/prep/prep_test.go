package prep_test

import (
	"math/rand"
	"reflect"
	"testing"

	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/prep"
)

func TestDedupEdges(t *testing.T) {
	in := [][2]int{{3, 4}, {0, 1}, {3, 4}, {0, 1}, {0, 2}, {3, 4}}
	got := prep.DedupEdges(in)
	want := [][2]int{{0, 1}, {0, 2}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DedupEdges = %v, want %v", got, want)
	}
	// The input must not be reordered in place.
	if in[0] != [2]int{3, 4} {
		t.Errorf("DedupEdges mutated its input: %v", in)
	}
	if got := prep.DedupEdges(nil); len(got) != 0 {
		t.Errorf("DedupEdges(nil) = %v", got)
	}
}

// TestReduceMatchesDAGReduction pins the bitset transitive reduction to
// the dag package's reference implementation (unique for DAGs) across
// random graphs.
func TestReduceMatchesDAGReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := prep.NewWorkspace()
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := gen.ErdosDAG(n, 0.05+0.4*rng.Float64(), rng)
		want, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		got := ws.Reduce(g)
		if !reflect.DeepEqual(edgeSet(got), edgeSet(want)) {
			t.Errorf("trial %d: Reduce arcs %v, reference %v", trial, got.Edges(), want.Edges())
		}
	}
}

// TestReduceIdempotentAndShared: reducing a reduced graph must return
// the same object (so pipelines that preprocess an already-preprocessed
// instance build byte-identical models), and reduction-free graphs flow
// through untouched.
func TestReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ws := prep.NewWorkspace()
	g := gen.ErdosDAG(30, 0.3, rng)
	r1 := ws.Reduce(g)
	if r1 == g {
		t.Fatalf("expected redundant arcs in a dense Erdos DAG (M=%d)", g.M())
	}
	if r2 := ws.Reduce(r1); r2 != r1 {
		t.Errorf("Reduce not idempotent: second reduction rebuilt the graph")
	}
	chain := gen.Chain(10)
	if got := ws.Reduce(chain); got != chain {
		t.Errorf("reduction-free graph was rebuilt")
	}
}

// TestReduceSizeGate: beyond MaxReduceN the graph must flow through
// unchanged (the closure workspace would be quadratic).
func TestReduceSizeGate(t *testing.T) {
	g := dag.New(prep.MaxReduceN + 1)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(0, 2) // redundant, but too large to reduce
	if got := prep.Reduce(g); got != g {
		t.Errorf("oversized graph was reduced")
	}
}

func TestChainNext(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 with a side arc 0 -> 4 -> 3: only (1,2) is a link
	// ((0,1) fails because 0 has two successors; (2,3) and (4,3) fail
	// because 3 has two predecessors).
	g := dag.New(5)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	g.MustEdge(2, 3)
	g.MustEdge(0, 4)
	g.MustEdge(4, 3)
	next := prep.NewWorkspace().ChainNext(g)
	want := []int32{-1, 2, -1, -1, -1}
	if !reflect.DeepEqual(next, want) {
		t.Errorf("ChainNext = %v, want %v", next, want)
	}

	// A pure chain is one maximal run of links.
	c := gen.Chain(6)
	next = prep.NewWorkspace().ChainNext(c)
	for v := 0; v < 5; v++ {
		if next[v] != int32(v+1) {
			t.Errorf("chain: next[%d] = %d, want %d", v, next[v], v+1)
		}
	}
	if next[5] != -1 {
		t.Errorf("chain: next[5] = %d, want -1", next[5])
	}
}

func edgeSet(g *dag.DAG) map[[2]int]bool {
	s := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		s[e] = true
	}
	return s
}
