// Package gen produces synthetic problem instances: precedence-graph
// families crossed with malleable-task families. The paper publishes no
// workload traces (it is a theory paper), so these seeded generators stand
// in for the evaluation workloads; the tiled-Cholesky generator provides the
// kind of realistic dense linear-algebra task graph that motivates malleable
// scheduling on large parallel machines (Section 1 of the paper).
package gen

import (
	"fmt"
	"math/rand"

	"malsched/internal/allot"
	"malsched/internal/dag"
	"malsched/internal/malleable"
)

// TaskFamily selects how task processing-time functions are drawn.
type TaskFamily int

const (
	// FamilyPowerLaw draws p(l) = p1 * l^(-d) with d ~ U[0.3, 1].
	FamilyPowerLaw TaskFamily = iota
	// FamilyAmdahl draws p(l) = p1 * (f + (1-f)/l) with f ~ U[0, 0.4].
	FamilyAmdahl
	// FamilyCapped draws perfect speedup capped at k ~ U{1..m}.
	FamilyCapped
	// FamilyRandom draws arbitrary concave-speedup tasks.
	FamilyRandom
	// FamilyMixed mixes the above uniformly.
	FamilyMixed
)

func (f TaskFamily) String() string {
	switch f {
	case FamilyPowerLaw:
		return "powerlaw"
	case FamilyAmdahl:
		return "amdahl"
	case FamilyCapped:
		return "capped"
	case FamilyRandom:
		return "random"
	default:
		return "mixed"
	}
}

// Tasks draws n tasks of the family for a machine of m processors, with
// sequential times p1 ~ U[1, 100).
func Tasks(family TaskFamily, n, m int, rng *rand.Rand) []malleable.Task {
	out := make([]malleable.Task, n)
	for j := range out {
		p1 := 1 + 99*rng.Float64()
		name := fmt.Sprintf("%s-%d", family, j)
		f := family
		if f == FamilyMixed {
			f = TaskFamily(rng.Intn(4))
		}
		switch f {
		case FamilyPowerLaw:
			out[j] = malleable.PowerLaw(name, p1, 0.3+0.7*rng.Float64(), m)
		case FamilyAmdahl:
			out[j] = malleable.Amdahl(name, p1, 0.4*rng.Float64(), m)
		case FamilyCapped:
			out[j] = malleable.CappedLinear(name, p1, 1+rng.Intn(m), m)
		default:
			out[j] = malleable.RandomConcave(name, p1, m, rng)
		}
	}
	return out
}

// TasksShared draws n tasks whose processing-time vectors are shared: only
// `distinct` m-length vectors are allocated and every task aliases one of
// them, with empty names. At n=10^6 and m=64 per-task vectors would
// cost ~512 MB; sharing makes million-task instances cheap to hold while
// drawing from the same families as Tasks. Tasks must therefore be treated
// as read-only by anything consuming the instance (everything here does).
func TasksShared(family TaskFamily, n, m, distinct int, rng *rand.Rand) []malleable.Task {
	if distinct < 1 {
		distinct = 1
	}
	vecs := make([][]float64, distinct)
	for i := range vecs {
		p1 := 1 + 99*rng.Float64()
		f := family
		if f == FamilyMixed {
			f = TaskFamily(rng.Intn(4))
		}
		var t malleable.Task
		switch f {
		case FamilyPowerLaw:
			t = malleable.PowerLaw("", p1, 0.3+0.7*rng.Float64(), m)
		case FamilyAmdahl:
			t = malleable.Amdahl("", p1, 0.4*rng.Float64(), m)
		case FamilyCapped:
			t = malleable.CappedLinear("", p1, 1+rng.Intn(m), m)
		default:
			t = malleable.RandomConcave("", p1, m, rng)
		}
		vecs[i] = t.Times
	}
	out := make([]malleable.Task, n)
	for j := range out {
		out[j].Times = vecs[rng.Intn(distinct)]
	}
	return out
}

// InstanceShared is Instance with TasksShared vectors: the generator for
// huge (10^5-10^6 task) instances.
func InstanceShared(g *dag.DAG, family TaskFamily, m, distinct int, rng *rand.Rand) *allot.Instance {
	return &allot.Instance{G: g, Tasks: TasksShared(family, g.N(), m, distinct, rng), M: m}
}

// Chain returns the path graph 0 -> 1 -> ... -> n-1 (worst case for
// parallelism: L dominates).
func Chain(n int) *dag.DAG {
	g := dag.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustEdge(i, i+1)
	}
	return g
}

// Independent returns n tasks with no precedence (the independent malleable
// scheduling special case).
func Independent(n int) *dag.DAG { return dag.New(n) }

// ForkJoin returns a fork-join graph: source 0, width parallel tasks,
// sink width+1.
func ForkJoin(width int) *dag.DAG {
	g := dag.New(width + 2)
	for i := 1; i <= width; i++ {
		g.MustEdge(0, i)
		g.MustEdge(i, width+1)
	}
	return g
}

// Layered returns a DAG of depth layers with the given width per layer;
// each vertex gets 1..maxIn random predecessors from the previous layer.
func Layered(depth, width, maxIn int, rng *rand.Rand) *dag.DAG {
	n := depth * width
	g := dag.New(n)
	for d := 1; d < depth; d++ {
		for w := 0; w < width; w++ {
			v := d*width + w
			k := 1 + rng.Intn(maxIn)
			for t := 0; t < k; t++ {
				u := (d-1)*width + rng.Intn(width)
				g.MustEdge(u, v)
			}
		}
	}
	return g
}

// OutTree returns a random out-tree (root 0), the structure for which the
// tree-specific 2.618-ratio algorithms of [17,18] were designed.
func OutTree(n int, rng *rand.Rand) *dag.DAG {
	g := dag.New(n)
	for v := 1; v < n; v++ {
		g.MustEdge(rng.Intn(v), v)
	}
	return g
}

// ErdosDAG returns a random DAG: vertices in a random order, each forward
// pair connected independently with probability p.
func ErdosDAG(n int, p float64, rng *rand.Rand) *dag.DAG {
	g := dag.New(n)
	perm := rng.Perm(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.MustEdge(perm[a], perm[b])
			}
		}
	}
	return g
}

// SeriesParallel returns a random series-parallel DAG with n internal
// expansion steps, built by repeatedly replacing a random arc with a series
// or parallel composition.
func SeriesParallel(steps int, rng *rand.Rand) *dag.DAG {
	type arc struct{ a, b int }
	arcs := []arc{{0, 1}}
	n := 2
	for s := 0; s < steps; s++ {
		i := rng.Intn(len(arcs))
		e := arcs[i]
		if rng.Float64() < 0.5 {
			// Series: a -> v -> b replaces a -> b.
			v := n
			n++
			arcs[i] = arc{e.a, v}
			arcs = append(arcs, arc{v, e.b})
		} else {
			// Parallel: duplicate the arc through a fresh middle vertex.
			v := n
			n++
			arcs = append(arcs, arc{e.a, v}, arc{v, e.b})
		}
	}
	g := dag.New(n)
	for _, e := range arcs {
		g.MustEdge(e.a, e.b)
	}
	return g
}

// Cholesky returns the task DAG of a tiled Cholesky factorisation with t
// tile-columns: POTRF/TRSM/SYRK/GEMM kernels with their standard
// dependencies. Vertex count is t*(t+1)*(t+2)/6 + lower-order terms; the
// graph interleaves wide and narrow phases, a classic malleable workload.
func Cholesky(t int) *dag.DAG {
	id := map[[4]int]int{}
	next := 0
	vertex := func(kind, k, i, j int) int {
		key := [4]int{kind, k, i, j}
		if v, ok := id[key]; ok {
			return v
		}
		id[key] = next
		next++
		return id[key]
	}
	const (
		potrf = iota
		trsm
		syrk
		gemm
	)
	type edge struct{ a, b int }
	var edges []edge
	for k := 0; k < t; k++ {
		pk := vertex(potrf, k, 0, 0)
		if k > 0 {
			// POTRF(k) waits for SYRK(k-1, k).
			edges = append(edges, edge{vertex(syrk, k-1, k, 0), pk})
		}
		for i := k + 1; i < t; i++ {
			tr := vertex(trsm, k, i, 0)
			edges = append(edges, edge{pk, tr})
			if k > 0 {
				edges = append(edges, edge{vertex(gemm, k-1, i, k), tr})
			}
			// SYRK(k, i): update of diagonal block i with column k.
			sy := vertex(syrk, k, i, 0)
			edges = append(edges, edge{tr, sy})
			if k > 0 {
				edges = append(edges, edge{vertex(syrk, k-1, i, 0), sy})
			}
			for j := i + 1; j < t; j++ {
				gm := vertex(gemm, k, j, i)
				edges = append(edges, edge{tr, gm})
				edges = append(edges, edge{vertex(trsm, k, j, 0), gm})
				if k > 0 {
					edges = append(edges, edge{vertex(gemm, k-1, j, i), gm})
				}
			}
		}
	}
	g := dag.New(next)
	for _, e := range edges {
		g.MustEdge(e.a, e.b)
	}
	return g
}

// Instance bundles a generated DAG with generated tasks.
func Instance(g *dag.DAG, family TaskFamily, m int, rng *rand.Rand) *allot.Instance {
	return &allot.Instance{G: g, Tasks: Tasks(family, g.N(), m, rng), M: m}
}
