package gen

import (
	"math/rand"
	"testing"
)

func TestTasksFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, fam := range []TaskFamily{FamilyPowerLaw, FamilyAmdahl, FamilyCapped, FamilyRandom, FamilyMixed} {
		tasks := Tasks(fam, 12, 8, rng)
		if len(tasks) != 12 {
			t.Fatalf("%v: got %d tasks", fam, len(tasks))
		}
		for j, task := range tasks {
			if err := task.Validate(8); err != nil {
				t.Errorf("%v task %d violates model assumptions: %v", fam, j, err)
			}
		}
	}
}

func TestFamilyString(t *testing.T) {
	names := map[TaskFamily]string{
		FamilyPowerLaw: "powerlaw", FamilyAmdahl: "amdahl", FamilyCapped: "capped",
		FamilyRandom: "random", FamilyMixed: "mixed",
	}
	for f, w := range names {
		if f.String() != w {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), w)
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("chain: n=%d m=%d", g.N(), g.M())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("chain should have one source and one sink")
	}
}

func TestForkJoin(t *testing.T) {
	g := ForkJoin(4)
	if g.N() != 6 || g.M() != 8 {
		t.Errorf("forkjoin: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := Layered(4, 3, 2, rng)
	if g.N() != 12 {
		t.Errorf("layered: n=%d, want 12", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Every non-first-layer vertex has at least one predecessor.
	for v := 3; v < 12; v++ {
		if len(g.Preds(v)) == 0 {
			t.Errorf("vertex %d has no predecessor", v)
		}
	}
}

func TestOutTree(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := OutTree(20, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 20; v++ {
		if len(g.Preds(v)) != 1 {
			t.Errorf("tree vertex %d has %d parents", v, len(g.Preds(v)))
		}
	}
}

func TestErdosDAGAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 20; trial++ {
		g := ErdosDAG(15, rng.Float64(), rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSeriesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := SeriesParallel(20, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex 0 is the unique source, vertex 1 the unique sink.
	if len(g.Preds(0)) != 0 || len(g.Succs(1)) != 0 {
		t.Error("series-parallel endpoints wrong")
	}
}

func TestCholesky(t *testing.T) {
	g := Cholesky(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 || g.M() == 0 {
		t.Fatalf("cholesky empty: n=%d m=%d", g.N(), g.M())
	}
	// t=4 tiles: 4 POTRF, 6 TRSM, 6 SYRK, 4 GEMM = 20 kernels.
	if g.N() != 20 {
		t.Errorf("cholesky t=4: n=%d, want 20", g.N())
	}
	// The first POTRF is a source; the last POTRF is a sink.
	if len(g.Sources()) == 0 || len(g.Sinks()) == 0 {
		t.Error("cholesky has no source or sink")
	}
}

func TestCholeskyGrowth(t *testing.T) {
	// Kernel count: t POTRF + C(t,2) TRSM + C(t,2) SYRK + C(t,3) GEMM.
	for _, tt := range []int{1, 2, 3, 5, 6} {
		g := Cholesky(tt)
		want := tt + tt*(tt-1)/2 + tt*(tt-1)/2 + tt*(tt-1)*(tt-2)/6
		if g.N() != want {
			t.Errorf("cholesky t=%d: n=%d, want %d", tt, g.N(), want)
		}
	}
}

func TestInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	in := Instance(Chain(4), FamilyAmdahl, 6, rng)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.M != 6 || len(in.Tasks) != 4 {
		t.Errorf("instance shape: m=%d tasks=%d", in.M, len(in.Tasks))
	}
}
