package malleable

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrontierCollapsesFlat(t *testing.T) {
	task := NewTask("flat", []float64{10, 10, 5, 5, 4})
	f := NewFrontier(task, 5)
	wantL := []int{1, 3, 5}
	wantX := []float64{10, 5, 4}
	if len(f.L) != len(wantL) {
		t.Fatalf("frontier length %d, want %d", len(f.L), len(wantL))
	}
	for i := range wantL {
		if f.L[i] != wantL[i] || f.X[i] != wantX[i] {
			t.Errorf("breakpoint %d = (%d,%v), want (%d,%v)", i, f.L[i], f.X[i], wantL[i], wantX[i])
		}
	}
	if f.XMax() != 10 || f.XMin() != 4 {
		t.Errorf("domain = [%v,%v], want [4,10]", f.XMin(), f.XMax())
	}
}

func TestFrontierRestrictsToM(t *testing.T) {
	task := PowerLaw("p", 8, 0.5, 16)
	f := NewFrontier(task, 4)
	if f.L[len(f.L)-1] > 4 {
		t.Errorf("frontier uses allotment %d > m=4", f.L[len(f.L)-1])
	}
	if math.Abs(f.XMin()-task.Time(4)) > 1e-12 {
		t.Errorf("XMin = %v, want p(4) = %v", f.XMin(), task.Time(4))
	}
}

func TestWorkAtBreakpoints(t *testing.T) {
	task := PowerLaw("p", 12, 0.7, 8)
	f := NewFrontier(task, 8)
	for i, x := range f.X {
		if got := f.WorkAt(x); math.Abs(got-f.W[i]) > 1e-9 {
			t.Errorf("WorkAt(breakpoint %d) = %v, want %v", i, got, f.W[i])
		}
	}
	// Outside the domain, w is clamped.
	if got := f.WorkAt(100); got != f.W[0] {
		t.Errorf("WorkAt above domain = %v, want %v", got, f.W[0])
	}
	if got := f.WorkAt(0.01); got != f.W[len(f.W)-1] {
		t.Errorf("WorkAt below domain = %v, want %v", got, f.W[len(f.W)-1])
	}
}

func TestWorkAtInterpolates(t *testing.T) {
	task := NewTask("t", []float64{10, 6, 5})
	f := NewFrontier(task, 3)
	// Midpoint of segment [6,10]: x=8, w should be (10 + 12)/2 = 11.
	if got := f.WorkAt(8); math.Abs(got-11) > 1e-12 {
		t.Errorf("WorkAt(8) = %v, want 11", got)
	}
	// Midpoint of segment [5,6]: x=5.5, w = (12+15)/2 = 13.5.
	if got := f.WorkAt(5.5); math.Abs(got-13.5) > 1e-12 {
		t.Errorf("WorkAt(5.5) = %v, want 13.5", got)
	}
}

// Lemma 4.1: if p(l+1) <= x <= p(l) then l <= l*(x) = w(x)/x <= l+1.
func TestLemma41FractionalAllocProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(24)
		task := RandomConcave("rc", 1+9*r.Float64(), m, r)
		f := NewFrontier(task, m)
		for trial := 0; trial < 20; trial++ {
			x := f.XMin() + r.Float64()*(f.XMax()-f.XMin())
			ls := f.FractionalAlloc(x)
			lo, hi := float64(f.L[0]), float64(f.L[0])
			if len(f.X) > 1 {
				i := f.segmentOf(x)
				lo, hi = float64(f.L[i]), float64(f.L[i+1])
			}
			if ls < lo-1e-9 || ls > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Errorf("Lemma 4.1 property failed: %v", err)
	}
}

func TestRoundAtBreakpointsKeepsAllotment(t *testing.T) {
	task := PowerLaw("p", 9, 0.4, 6)
	f := NewFrontier(task, 6)
	for _, rho := range []float64{0, 0.26, 0.5, 1} {
		for i, x := range f.X {
			if got := f.Round(x, rho); got != f.L[i] {
				t.Errorf("rho=%v: Round(breakpoint %d) = %d, want %d", rho, i, got, f.L[i])
			}
		}
	}
}

func TestRoundCriticalPoint(t *testing.T) {
	task := NewTask("t", []float64{10, 6})
	f := NewFrontier(task, 2)
	rho := 0.25
	crit := rho*10 + (1-rho)*6 // = 7
	if got := f.Round(crit+0.01, rho); got != 1 {
		t.Errorf("just above critical point should round up to allotment 1, got %d", got)
	}
	if got := f.Round(crit-0.01, rho); got != 2 {
		t.Errorf("just below critical point should round down to allotment 2, got %d", got)
	}
	// x exactly at the critical point rounds up (>= comparison in the paper).
	if got := f.Round(crit, rho); got != 1 {
		t.Errorf("at critical point should round up, got %d", got)
	}
}

func TestRoundRhoExtremes(t *testing.T) {
	task := NewTask("t", []float64{10, 6})
	f := NewFrontier(task, 2)
	// rho = 0: critical point is p(l+1): everything strictly inside rounds up.
	if got := f.Round(6.5, 0); got != 1 {
		t.Errorf("rho=0 should round any interior point up, got %d", got)
	}
	// rho = 1: critical point is p(l): everything strictly inside rounds down.
	if got := f.Round(9.5, 1); got != 2 {
		t.Errorf("rho=1 should round any interior point down, got %d", got)
	}
}

// Lemma 4.2: rounding stretches duration by at most 2/(1+rho) and work by at
// most 2/(2-rho).
func TestLemma42StretchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(24)
		task := RandomConcave("rc", 1+9*r.Float64(), m, r)
		f := NewFrontier(task, m)
		rho := r.Float64()
		durBound, workBound := StretchBounds(rho)
		for trial := 0; trial < 20; trial++ {
			x := f.XMin() + r.Float64()*(f.XMax()-f.XMin())
			l := f.Round(x, rho)
			ds, ws := f.VerifyRounding(x, rho, l)
			if ds > durBound+1e-9 || ws > workBound+1e-9 {
				t.Logf("seed=%d rho=%v x=%v l=%d: dur %v (bound %v) work %v (bound %v)",
					seed, rho, x, l, ds, durBound, ws, workBound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Errorf("Lemma 4.2 property failed: %v", err)
	}
}

func TestStretchBoundsFormula(t *testing.T) {
	d, w := StretchBounds(0.26)
	if math.Abs(d-2/1.26) > 1e-12 || math.Abs(w-2/1.74) > 1e-12 {
		t.Errorf("StretchBounds(0.26) = %v,%v", d, w)
	}
}

func TestSingleBreakpointFrontier(t *testing.T) {
	// A task with constant processing time has a single breakpoint; the work
	// function degenerates to a point and rounding always returns allotment 1.
	task := Sequential("s", 5, 4)
	f := NewFrontier(task, 4)
	if len(f.X) != 1 || f.L[0] != 1 {
		t.Fatalf("frontier = %+v, want single breakpoint at l=1", f)
	}
	if got := f.Round(5, 0.5); got != 1 {
		t.Errorf("Round on degenerate frontier = %d, want 1", got)
	}
	if got := f.WorkAt(5); got != 5 {
		t.Errorf("WorkAt(5) = %v, want 5", got)
	}
}
