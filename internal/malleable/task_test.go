package malleable

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeWorkSpeedup(t *testing.T) {
	task := NewTask("t", []float64{10, 6, 5})
	if got := task.Time(1); got != 10 {
		t.Errorf("Time(1) = %v, want 10", got)
	}
	if got := task.Time(3); got != 5 {
		t.Errorf("Time(3) = %v, want 5", got)
	}
	if !math.IsInf(task.Time(0), 1) {
		t.Errorf("Time(0) should be +Inf (p(0) = infinity convention)")
	}
	if got := task.Work(2); got != 12 {
		t.Errorf("Work(2) = %v, want 12", got)
	}
	if got := task.Speedup(2); math.Abs(got-10.0/6) > 1e-12 {
		t.Errorf("Speedup(2) = %v, want %v", got, 10.0/6)
	}
	if got := task.Speedup(0); got != 0 {
		t.Errorf("Speedup(0) = %v, want 0", got)
	}
	if task.MaxProcs() != 3 {
		t.Errorf("MaxProcs = %d, want 3", task.MaxProcs())
	}
}

func TestTimePanicsBeyondLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Time(4) on a 3-processor task should panic")
		}
	}()
	NewTask("t", []float64{3, 2, 1}).Time(4)
}

func TestAssumption1(t *testing.T) {
	good := NewTask("good", []float64{10, 6, 5, 5})
	if err := good.CheckAssumption1(); err != nil {
		t.Errorf("non-increasing times rejected: %v", err)
	}
	bad := NewTask("bad", []float64{10, 6, 7})
	if err := bad.CheckAssumption1(); err == nil {
		t.Error("increasing processing time accepted")
	}
	if err := NewTask("empty", nil).CheckAssumption1(); err == nil {
		t.Error("empty task accepted")
	}
	if err := NewTask("neg", []float64{3, -1}).CheckAssumption1(); err == nil {
		t.Error("negative processing time accepted")
	}
	if err := NewTask("zero", []float64{3, 0}).CheckAssumption1(); err == nil {
		t.Error("zero processing time accepted")
	}
}

func TestAssumption2PowerLaw(t *testing.T) {
	for _, d := range []float64{0.1, 0.5, 0.9, 1.0} {
		task := PowerLaw("pl", 100, d, 16)
		if err := task.Validate(16); err != nil {
			t.Errorf("power-law d=%v should satisfy both assumptions: %v", d, err)
		}
	}
}

func TestAssumption2Amdahl(t *testing.T) {
	for _, f := range []float64{0, 0.1, 0.5, 1} {
		task := Amdahl("am", 50, f, 12)
		if err := task.Validate(12); err != nil {
			t.Errorf("Amdahl f=%v should satisfy both assumptions: %v", f, err)
		}
	}
}

func TestAssumption2CappedLinear(t *testing.T) {
	for _, k := range []int{1, 3, 8, 20} {
		task := CappedLinear("cl", 40, k, 8)
		if err := task.Validate(8); err != nil {
			t.Errorf("capped-linear k=%d should satisfy both assumptions: %v", k, err)
		}
	}
}

func TestSequentialTaskValid(t *testing.T) {
	if err := Sequential("seq", 7, 9).Validate(9); err != nil {
		t.Errorf("sequential task should be valid: %v", err)
	}
}

func TestNonConcaveExample(t *testing.T) {
	// The Section 2 counterexample: Assumption 2' holds, Assumption 2 fails.
	m := 6
	delta := 1.0 / (float64(m*m) + 2)
	task := NonConcaveExample(delta, m)
	if err := task.CheckAssumption1(); err != nil {
		t.Errorf("counterexample should satisfy Assumption 1: %v", err)
	}
	if err := task.CheckAssumption2Prime(); err != nil {
		t.Errorf("counterexample should satisfy Assumption 2': %v", err)
	}
	if err := task.CheckAssumption2(); err == nil {
		t.Error("counterexample should violate Assumption 2 (convex speedup)")
	}
}

// Theorem 2.1: Assumption 2 implies the work function is non-decreasing.
func TestTheorem21WorkMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(30)
		task := RandomConcave("rc", 1+99*r.Float64(), m, r)
		if err := task.Validate(m); err != nil {
			t.Logf("generator produced invalid task: %v", err)
			return false
		}
		return task.CheckAssumption2Prime() == nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Errorf("Theorem 2.1 property failed: %v", err)
	}
}

// Theorem 2.2: Assumption 2 implies the work function is convex in the
// processing time.
func TestTheorem22WorkConvexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(30)
		task := RandomConcave("rc", 1+99*r.Float64(), m, r)
		return task.CheckWorkConvexInTime() == nil
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Errorf("Theorem 2.2 property failed: %v", err)
	}
}

func TestTheorem21InductionBase(t *testing.T) {
	// The proof's base case: 2*p(2) >= p(1) for every valid task.
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		task := RandomConcave("rc", 10, 8, r)
		if 2*task.Time(2) < task.Time(1)-1e-9 {
			t.Fatalf("seed %d: 2p(2)=%v < p(1)=%v", seed, 2*task.Time(2), task.Time(1))
		}
	}
}

func TestValidateMachineSize(t *testing.T) {
	task := NewTask("short", []float64{4, 3})
	if err := task.Validate(3); err == nil {
		t.Error("task with 2 entries accepted for m=3")
	}
	if err := task.Validate(2); err != nil {
		t.Errorf("task should validate for m=2: %v", err)
	}
}

func TestScalePreservesAssumptions(t *testing.T) {
	task := PowerLaw("p", 10, 0.6, 8)
	scaled := Scale(task, 3.5)
	if err := scaled.Validate(8); err != nil {
		t.Errorf("scaling broke assumptions: %v", err)
	}
	if math.Abs(scaled.Time(4)-3.5*task.Time(4)) > 1e-12 {
		t.Errorf("Scale did not multiply times")
	}
}

func TestRejectsNaNAndInf(t *testing.T) {
	cases := [][]float64{
		{math.NaN(), 1},
		{4, math.NaN()},
		{math.Inf(1), 2},
		{4, math.Inf(1)},
	}
	for i, times := range cases {
		if err := NewTask("bad", times).CheckAssumption1(); err == nil {
			t.Errorf("case %d: NaN/Inf processing time accepted: %v", i, times)
		}
	}
}

func TestPowerLawPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ p1, d float64 }{{0, 0.5}, {-1, 0.5}, {10, 0}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PowerLaw(%v, %v) should panic", c.p1, c.d)
				}
			}()
			PowerLaw("x", c.p1, c.d, 4)
		}()
	}
}

func TestAmdahlPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ p1, f float64 }{{0, 0.5}, {10, -0.1}, {10, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Amdahl(%v, %v) should panic", c.p1, c.f)
				}
			}()
			Amdahl("x", c.p1, c.f, 4)
		}()
	}
}

func TestCappedLinearPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct {
		p1 float64
		k  int
	}{{0, 2}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CappedLinear(%v, %v) should panic", c.p1, c.k)
				}
			}()
			CappedLinear("x", c.p1, c.k, 4)
		}()
	}
}
