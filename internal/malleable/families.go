package malleable

import (
	"fmt"
	"math"
	"math/rand"
)

// This file provides the task families used throughout the paper and the
// experiments.
//
// The paper's running example (Sections 1 and 2) is the power-law family
// p(l) = p(1) * l^(-d) with 0 < d < 1, the discrete analogue of the Prasanna
// & Musicus continuous model. Amdahl tasks p(l) = p(1)*(f + (1-f)/l) and
// capped-linear tasks p(l) = p(1)/min(l,k) also satisfy Assumptions 1 and 2
// (their continuous speedups are concave with s(0)=0, and concavity on the
// reals implies concavity on the integer grid). The random-concave family
// draws an arbitrary task satisfying the assumptions by construction, and
// NonConcaveExample reproduces the paper's Section 2 counterexample that
// satisfies Assumption 2' but not Assumption 2.

// PowerLaw returns a task with p(l) = p1 * l^(-d) for l = 1..m.
// Requires p1 > 0 and 0 < d <= 1; d=1 is perfect linear speedup.
func PowerLaw(name string, p1, d float64, m int) Task {
	if p1 <= 0 || d <= 0 || d > 1 {
		panic(fmt.Sprintf("malleable: invalid power-law parameters p1=%v d=%v", p1, d))
	}
	times := make([]float64, m)
	for l := 1; l <= m; l++ {
		times[l-1] = p1 * math.Pow(float64(l), -d)
	}
	return Task{Name: name, Times: times}
}

// Amdahl returns a task with sequential fraction f in [0,1]:
// p(l) = p1 * (f + (1-f)/l). Speedup s(l) = l/(f*l + 1-f) is concave and
// increasing with s(0)=0, so Assumptions 1 and 2 hold.
func Amdahl(name string, p1, f float64, m int) Task {
	if p1 <= 0 || f < 0 || f > 1 {
		panic(fmt.Sprintf("malleable: invalid Amdahl parameters p1=%v f=%v", p1, f))
	}
	times := make([]float64, m)
	for l := 1; l <= m; l++ {
		times[l-1] = p1 * (f + (1-f)/float64(l))
	}
	return Task{Name: name, Times: times}
}

// CappedLinear returns a task with perfect speedup up to k processors and no
// further gain: p(l) = p1 / min(l, k). The speedup min(l,k) is piecewise
// linear concave, so Assumptions 1 and 2 hold; the work is constant up to k
// and grows linearly beyond.
func CappedLinear(name string, p1 float64, k, m int) Task {
	if p1 <= 0 || k < 1 {
		panic(fmt.Sprintf("malleable: invalid capped-linear parameters p1=%v k=%d", p1, k))
	}
	times := make([]float64, m)
	for l := 1; l <= m; l++ {
		times[l-1] = p1 / float64(min(l, k))
	}
	return Task{Name: name, Times: times}
}

// Sequential returns a task that gains nothing from extra processors:
// p(l) = p1 for all l. Its speedup s(l) = 1 for l >= 1 is concave (with
// s(0)=0), so the model assumptions hold; the work grows linearly.
func Sequential(name string, p1 float64, m int) Task {
	times := make([]float64, m)
	for l := range times {
		times[l] = p1
	}
	return Task{Name: name, Times: times}
}

// RandomConcave draws a task satisfying Assumptions 1 and 2 by construction:
// the speedup increments delta_l = s(l+1)-s(l) are drawn non-increasing in
// [0, 1] starting from s(1) = 1 (so concavity with s(0) = 0 holds), and
// p(l) = p1/s(l). With probability flat, increments hit zero early, which
// produces the flat stretches that exercise the frontier collapsing logic.
func RandomConcave(name string, p1 float64, m int, rng *rand.Rand) Task {
	times := make([]float64, m)
	s := 1.0
	times[0] = p1
	d := 1.0 // delta_1 = s(1)-s(0) = 1; subsequent deltas non-increasing
	for l := 2; l <= m; l++ {
		d *= rng.Float64() // non-increasing, in [0, previous]
		if rng.Float64() < 0.1 {
			d = 0 // flat stretch: no further speedup
		}
		s += d
		times[l-1] = p1 / s
	}
	return Task{Name: name, Times: times}
}

// NonConcaveExample reproduces the Section 2 counterexample
// p(l) = 1/(1 - delta + delta*l^2) with delta in (0, 1/(m^2+1)): the work is
// still increasing in l (Assumption 2' holds) but the speedup
// s(l) = 1 - delta + delta*l^2 is convex, violating Assumption 2.
func NonConcaveExample(delta float64, m int) Task {
	times := make([]float64, m)
	for l := 1; l <= m; l++ {
		times[l-1] = 1 / (1 - delta + delta*float64(l)*float64(l))
	}
	return Task{Name: "nonconcave", Times: times}
}

// Scale returns a copy of t with every processing time multiplied by c > 0.
// Scaling preserves Assumptions 1 and 2 (speedup is scale-invariant).
func Scale(t Task, c float64) Task {
	out := Task{Name: t.Name, Times: make([]float64, len(t.Times))}
	for i, p := range t.Times {
		out.Times[i] = c * p
	}
	return out
}
