package malleable

import (
	"math"
	"sort"
)

// Frontier is the efficient frontier of a task on a machine of m processors:
// the distinct processing-time values p(l) for l = 1..m, each paired with
// the minimal allotment achieving it. Because the work function W(l) is
// non-decreasing in l (Theorem 2.1), the minimal allotment also achieves the
// minimal work for that processing time, so the frontier carries exactly the
// breakpoints of the piecewise linear work function w(x) of Eq. (6).
//
// Entries are ordered by increasing allotment, hence strictly decreasing
// processing time: X[0] = p(1) down to X[len-1] = p(m).
type Frontier struct {
	L []int     // minimal allotment for each breakpoint
	X []float64 // processing time at each breakpoint (strictly decreasing)
	W []float64 // work L[i] * X[i] at each breakpoint
}

// NewFrontier computes the efficient frontier of t restricted to allotments
// 1..m. Consecutive equal processing times are collapsed onto the smallest
// allotment.
func NewFrontier(t Task, m int) Frontier {
	var f Frontier
	FrontierInto(&f, t, m)
	return f
}

// FrontierInto recomputes the frontier of t in place, reusing f's backing
// arrays so repeated calls on same-shaped tasks allocate nothing once the
// arrays have grown to size.
func FrontierInto(f *Frontier, t Task, m int) {
	if m > len(t.Times) {
		m = len(t.Times)
	}
	f.L = f.L[:0]
	f.X = f.X[:0]
	f.W = f.W[:0]
	for l := 1; l <= m; l++ {
		x := t.Time(l)
		if len(f.X) > 0 && x >= f.X[len(f.X)-1]-1e-12*f.X[len(f.X)-1] {
			continue // not strictly faster: dominated by a smaller allotment
		}
		f.L = append(f.L, l)
		f.X = append(f.X, x)
		f.W = append(f.W, float64(l)*x)
	}
}

// Segments returns the number of linear pieces of w(x) (breakpoints - 1).
func (f Frontier) Segments() int { return len(f.X) - 1 }

// XMin and XMax are the domain bounds of w(x): p(m) and p(1).
func (f Frontier) XMin() float64 { return f.X[len(f.X)-1] }
func (f Frontier) XMax() float64 { return f.X[0] }

// WorkAt evaluates the continuous piecewise linear work function w(x) of
// Eq. (6) at processing time x, clamped to the domain [p(m), p(1)].
func (f Frontier) WorkAt(x float64) float64 {
	if x >= f.X[0] {
		return f.W[0]
	}
	if x <= f.X[len(f.X)-1] {
		return f.W[len(f.W)-1]
	}
	i := f.segmentOf(x)
	// Interpolate on the segment [X[i+1], X[i]].
	t := (x - f.X[i+1]) / (f.X[i] - f.X[i+1])
	return f.W[i+1] + t*(f.W[i]-f.W[i+1])
}

// segmentOf returns the index i such that X[i+1] <= x <= X[i].
func (f Frontier) segmentOf(x float64) int {
	if len(f.X) < 2 {
		return 0
	}
	// X is strictly decreasing; find the first index with X[j] <= x, then
	// the segment is (j-1, j).
	j := sort.Search(len(f.X), func(k int) bool { return f.X[k] <= x })
	if j == 0 {
		return 0
	}
	if j >= len(f.X) {
		return len(f.X) - 2
	}
	return j - 1
}

// FractionalAlloc returns l*(x) = w(x)/x, the fractional number of processors
// of Eq. (12). By Lemma 4.1, if p(l+1) <= x <= p(l) then l <= l*(x) <= l+1.
func (f Frontier) FractionalAlloc(x float64) float64 {
	return f.WorkAt(x) / x
}

// Round applies the paper's Section 3.1 rounding with parameter rho in
// [0,1]: if x lies in segment (p(l+1), p(l)), the critical time is
// p(l_c) = rho*p(l) + (1-rho)*p(l+1); x >= p(l_c) rounds up to p(l)
// (allotment l, fewer processors), otherwise down to p(l+1) (allotment l+1).
// Values at breakpoints keep the breakpoint's allotment. The returned
// allotment is the frontier's minimal allotment for the rounded time.
func (f Frontier) Round(x float64, rho float64) int {
	if x >= f.X[0]-1e-12*f.X[0] {
		return f.L[0]
	}
	last := len(f.X) - 1
	if x <= f.X[last]+1e-12*f.X[last] {
		return f.L[last]
	}
	i := f.segmentOf(x)
	hi, lo := f.X[i], f.X[i+1] // hi = p(l), lo = p(l+1) in paper terms
	// A value sitting exactly on a breakpoint keeps that breakpoint's
	// allotment regardless of rho.
	if x <= lo+1e-12*lo {
		return f.L[i+1]
	}
	if x >= hi-1e-12*hi {
		return f.L[i]
	}
	crit := rho*hi + (1-rho)*lo
	if x >= crit {
		return f.L[i]
	}
	return f.L[i+1]
}

// StretchBounds returns the worst-case duration and work stretch factors of
// Lemma 4.2 for rounding parameter rho: duration grows by at most
// 2/(1+rho), work by at most 2/(2-rho).
func StretchBounds(rho float64) (duration, work float64) {
	return 2 / (1 + rho), 2 / (2 - rho)
}

// VerifyRounding checks the Lemma 4.2 stretch bounds for a concrete rounded
// point: processing time p(l') <= 2x/(1+rho) and work W(l') <= 2w(x)/(2-rho).
// It returns the two realized stretch factors.
func (f Frontier) VerifyRounding(x float64, rho float64, l int) (durStretch, workStretch float64) {
	px := math.Inf(1)
	var wl float64
	for i, li := range f.L {
		if li == l {
			px = f.X[i]
			wl = f.W[i]
			break
		}
	}
	return px / x, wl / f.WorkAt(x)
}
