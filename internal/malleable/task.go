// Package malleable implements the malleable-task model of Jansen & Zhang
// (SPAA 2005 / JCSS 2012), based on the continuous model of Prasanna and
// Musicus: each task has a discrete processing-time function p(l) for
// l = 1..m processors, assumed non-increasing in l (Assumption 1) and with a
// concave speedup function s(l) = p(1)/p(l) (Assumption 2, with p(0) = +inf,
// i.e. s(0) = 0).
//
// The package provides validation of the model assumptions, the derived
// work-function properties of Section 2 of the paper (Theorems 2.1 and 2.2),
// the efficient frontier used to build the piecewise linear work function
// w(x) of Eqs. (6) and (8), and generators for standard task families
// (power-law, Amdahl, capped-linear speedup, random concave).
package malleable

import (
	"errors"
	"fmt"
	"math"
)

// Task is a malleable task: Time[l-1] is the processing time when the task
// runs on l processors. The slice length fixes the maximum usable allotment
// (normally the machine size m).
type Task struct {
	// Name is an optional human-readable label.
	Name string
	// Times[l-1] is the processing time on l processors; must be positive.
	Times []float64
}

// NewTask builds a task from a processing-time vector (index 0 = 1 processor).
func NewTask(name string, times []float64) Task {
	t := Task{Name: name, Times: make([]float64, len(times))}
	copy(t.Times, times)
	return t
}

// MaxProcs returns the largest allotment for which the task defines a
// processing time.
func (t Task) MaxProcs() int { return len(t.Times) }

// Time returns the processing time p(l) on l processors. It panics if l is
// outside 1..MaxProcs, matching the paper's convention p(0) = +inf by
// returning +Inf for l <= 0.
func (t Task) Time(l int) float64 {
	if l <= 0 {
		return math.Inf(1)
	}
	if l > len(t.Times) {
		panic(fmt.Sprintf("malleable: allotment %d exceeds task limit %d", l, len(t.Times)))
	}
	return t.Times[l-1]
}

// Work returns the work function W(l) = l * p(l).
func (t Task) Work(l int) float64 {
	if l <= 0 {
		return math.Inf(1)
	}
	return float64(l) * t.Time(l)
}

// Speedup returns s(l) = p(1)/p(l); s(0) = 0 by the convention p(0) = +inf.
func (t Task) Speedup(l int) float64 {
	if l == 0 {
		return 0
	}
	return t.Time(1) / t.Time(l)
}

// Validation errors.
var (
	ErrEmpty          = errors.New("malleable: task has no processing times")
	ErrNonPositive    = errors.New("malleable: processing time must be positive")
	ErrAssumption1    = errors.New("malleable: Assumption 1 violated (p(l) increases in l)")
	ErrAssumption2    = errors.New("malleable: Assumption 2 violated (speedup not concave)")
	ErrWorkMonotone   = errors.New("malleable: Assumption 2' violated (work decreases in l)")
	ErrWorkNotConvex  = errors.New("malleable: work function not convex in processing time")
	ErrTooFewProcs    = errors.New("malleable: task defines fewer processing times than machine size")
	ErrAllotmentRange = errors.New("malleable: allotment out of range")
)

const eps = 1e-9

// CheckAssumption1 verifies that p(l) is non-increasing in l (Eq. (1)).
func (t Task) CheckAssumption1() error {
	if len(t.Times) == 0 {
		return ErrEmpty
	}
	for l, p := range t.Times {
		if !(p > 0) || math.IsInf(p, 1) || math.IsNaN(p) {
			return fmt.Errorf("%w: p(%d)=%v", ErrNonPositive, l+1, p)
		}
		if l > 0 && p > t.Times[l-1]+eps*t.Times[l-1] {
			return fmt.Errorf("%w: p(%d)=%v > p(%d)=%v", ErrAssumption1, l+1, p, l, t.Times[l-1])
		}
	}
	return nil
}

// CheckAssumption2 verifies that the speedup function s(l) = p(1)/p(l) is
// concave on the integers 0..MaxProcs with s(0) = 0 (Eq. (2)). For a
// function on consecutive integers, concavity is equivalent to
// non-increasing forward differences s(l+1) - s(l).
func (t Task) CheckAssumption2() error {
	if len(t.Times) == 0 {
		return ErrEmpty
	}
	// s(0)=0, s(1)=1 by definition, so the first difference is 1; every
	// subsequent difference must be <= the previous one.
	prevDiff := 1.0 // s(1) - s(0)
	for l := 1; l < len(t.Times); l++ {
		d := t.Speedup(l+1) - t.Speedup(l)
		if d > prevDiff+eps {
			return fmt.Errorf("%w: s(%d)-s(%d)=%v exceeds s(%d)-s(%d)=%v",
				ErrAssumption2, l+1, l, d, l, l-1, prevDiff)
		}
		prevDiff = d
	}
	return nil
}

// CheckAssumption2Prime verifies the weaker monotone-penalty assumption of
// Lepère/Trystram/Woeginger (Eq. (3)): W(l) = l*p(l) non-decreasing in l.
// By Theorem 2.1 this follows from Assumption 2 but not conversely.
func (t Task) CheckAssumption2Prime() error {
	for l := 1; l < len(t.Times); l++ {
		if t.Work(l) > t.Work(l+1)+eps*t.Work(l) {
			return fmt.Errorf("%w: W(%d)=%v > W(%d)=%v", ErrWorkMonotone, l, t.Work(l), l+1, t.Work(l+1))
		}
	}
	return nil
}

// CheckWorkConvexInTime verifies the conclusion of Theorem 2.2: the work
// function, viewed as a function of the processing time at the frontier
// breakpoints, is convex. Convexity is checked on the efficient frontier
// (distinct processing times) by non-decreasing slopes as x decreases.
func (t Task) CheckWorkConvexInTime() error {
	f := NewFrontier(t, len(t.Times))
	for i := 2; i < len(f.X); i++ {
		// Points ordered by decreasing processing time X. Convexity of w(x):
		// slope between consecutive points must be non-increasing as x grows,
		// i.e. going right-to-left slopes decrease; equivalently for the
		// sequence ordered by decreasing x, slopes (negative) must be
		// non-increasing in magnitude... simplest: check midpoint inequality.
		s1 := (f.W[i-1] - f.W[i-2]) / (f.X[i-1] - f.X[i-2])
		s2 := (f.W[i] - f.W[i-1]) / (f.X[i] - f.X[i-1])
		// X decreasing, so moving from i-2 to i is moving left; for a convex
		// function slopes must decrease as x decreases: s2 <= s1 + eps.
		if s2 > s1+1e-7*(1+math.Abs(s1)) {
			return fmt.Errorf("%w: slope %v after %v at breakpoint %d", ErrWorkNotConvex, s2, s1, i)
		}
	}
	return nil
}

// Validate runs all model checks required by the paper (Assumptions 1 and 2)
// against a machine of m processors and returns the first violation.
func (t Task) Validate(m int) error {
	if len(t.Times) < m {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewProcs, len(t.Times), m)
	}
	if err := t.CheckAssumption1(); err != nil {
		return err
	}
	if err := t.CheckAssumption2(); err != nil {
		return err
	}
	return nil
}
