package schedule

import (
	"runtime"
	"sort"
	"sync"
)

// The tiered timeline behind Profile: breakpoints live in fixed-stride
// chunks (B-tree-leaf style) so an insertion shifts at most one chunk
// instead of the whole array, and every chunk carries min/max load
// aggregates plus a lazily applied load offset, so EarliestFit can accept
// or reject a whole chunk in O(1) and Add can raise a fully covered chunk
// in O(1). All time arithmetic stays exact float64, identical to the flat
// array it replaces: chunking changes where steps are stored, never how
// they are compared.

// chunkCap is the slab stride: every chunk owns chunkCap step slots and
// splits into two half-full chunks when an insertion finds it full
// (appends past the final breakpoint start a fresh chunk instead, so a
// rightward-growing profile never split-chains).
const chunkCap = 256

var (
	zeroSlabT [chunkCap]float64
	zeroSlabB [chunkCap]int32
)

// timeline is the chunked store. Chunk c owns
// slabT/slabB[c*chunkCap : c*chunkCap+cnum[c]]; slabB holds raw loads and
// the true load of a step is raw + coff of its chunk. The directory
// (order, first) lists chunk ids in time order with a copy of each
// chunk's first breakpoint, kept in its own flat array so the binary
// search touches contiguous memory.
type timeline struct {
	slabT []float64
	slabB []int32
	cnum  []int32
	coff  []int32
	cmin  []int32 // true (offset-applied) min load of the chunk
	cmax  []int32 // true max load of the chunk
	order []int32
	first []float64
	used  int32 // chunk ids handed out since the last reset
	total int   // live step count across all chunks
}

func (tl *timeline) reset() {
	tl.order = tl.order[:0]
	tl.first = tl.first[:0]
	tl.used = 0
	tl.total = 0
}

// newChunk hands out an empty chunk id, growing the slabs geometrically
// (append doubling) the first time each id is used.
func (tl *timeline) newChunk() int32 {
	c := tl.used
	tl.used++
	if int(c) == len(tl.cnum) {
		tl.slabT = append(tl.slabT, zeroSlabT[:]...)
		tl.slabB = append(tl.slabB, zeroSlabB[:]...)
		tl.cnum = append(tl.cnum, 0)
		tl.coff = append(tl.coff, 0)
		tl.cmin = append(tl.cmin, 0)
		tl.cmax = append(tl.cmax, 0)
	} else {
		tl.cnum[c], tl.coff[c], tl.cmin[c], tl.cmax[c] = 0, 0, 0, 0
	}
	return c
}

// find returns the directory index oi and step index si of the greatest
// breakpoint <= t, or (-1, -1) when t lies before every breakpoint (where
// the load is 0).
func (tl *timeline) find(t float64) (int, int) {
	oi := sort.Search(len(tl.first), func(i int) bool { return tl.first[i] > t }) - 1
	if oi < 0 {
		return -1, -1
	}
	c := tl.order[oi]
	base := int(c) * chunkCap
	steps := tl.slabT[base : base+int(tl.cnum[c])]
	si := sort.SearchFloat64s(steps, t)
	if si < len(steps) && steps[si] == t {
		return oi, si
	}
	return oi, si - 1 // >= 0: steps[0] == first[oi] <= t
}

// recalc rebuilds the min/max aggregates of chunk c from its raw loads.
func (tl *timeline) recalc(c int32) {
	base := int(c) * chunkCap
	raw := tl.slabB[base : base+int(tl.cnum[c])]
	mn, mx := raw[0], raw[0]
	for _, b := range raw[1:] {
		if b < mn {
			mn = b
		}
		if b > mx {
			mx = b
		}
	}
	tl.cmin[c], tl.cmax[c] = mn+tl.coff[c], mx+tl.coff[c]
}

// insert places a new step (t, level) at position si of chunk order[oi].
// level is the true load; the caller guarantees the chunk has room.
func (tl *timeline) insert(oi, si int, t float64, level int32) {
	c := tl.order[oi]
	base := int(c) * chunkCap
	n := int(tl.cnum[c])
	copy(tl.slabT[base+si+1:base+n+1], tl.slabT[base+si:base+n])
	copy(tl.slabB[base+si+1:base+n+1], tl.slabB[base+si:base+n])
	tl.slabT[base+si] = t
	tl.slabB[base+si] = level - tl.coff[c]
	tl.cnum[c]++
	tl.total++
	if level < tl.cmin[c] {
		tl.cmin[c] = level
	}
	if level > tl.cmax[c] {
		tl.cmax[c] = level
	}
	if si == 0 {
		tl.first[oi] = t
	}
}

// split divides the full chunk at directory position oi into two half-full
// chunks, inserting the upper half into the directory at oi+1.
func (tl *timeline) split(oi int) {
	c := tl.order[oi]
	d := tl.newChunk() // may grow the slabs; take bases afterwards
	cb, db := int(c)*chunkCap, int(d)*chunkCap
	const half = chunkCap / 2
	copy(tl.slabT[db:db+half], tl.slabT[cb+half:cb+chunkCap])
	copy(tl.slabB[db:db+half], tl.slabB[cb+half:cb+chunkCap])
	tl.cnum[c], tl.cnum[d] = half, half
	tl.coff[d] = tl.coff[c]
	tl.recalc(c)
	tl.recalc(d)
	tl.order = append(tl.order, 0)
	copy(tl.order[oi+2:], tl.order[oi+1:])
	tl.order[oi+1] = d
	tl.first = append(tl.first, 0)
	copy(tl.first[oi+2:], tl.first[oi+1:])
	tl.first[oi+1] = tl.slabT[db]
}

// appendStep extends the timeline past its final breakpoint with (t, level),
// starting a fresh chunk when the last one is full. The caller guarantees
// t is strictly greater than every existing breakpoint.
func (tl *timeline) appendStep(t float64, level int32) {
	if n := len(tl.order); n > 0 {
		c := tl.order[n-1]
		if int(tl.cnum[c]) < chunkCap {
			tl.insert(n-1, int(tl.cnum[c]), t, level)
			return
		}
	}
	c := tl.newChunk()
	tl.order = append(tl.order, c)
	tl.first = append(tl.first, t)
	base := int(c) * chunkCap
	tl.slabT[base] = t
	tl.slabB[base] = level
	tl.cnum[c] = 1
	tl.cmin[c], tl.cmax[c] = level, level
	tl.total++
}

// ensureBreak inserts a breakpoint at exactly t if none exists. The new
// step inherits the load of the step containing t (0 before the first
// breakpoint).
func (tl *timeline) ensureBreak(t float64) {
	for {
		oi, si := tl.find(t)
		if oi < 0 {
			if tl.total == 0 {
				tl.appendStep(t, 0)
				return
			}
			if int(tl.cnum[tl.order[0]]) == chunkCap {
				tl.split(0)
				continue
			}
			tl.insert(0, 0, t, 0)
			return
		}
		c := tl.order[oi]
		base := int(c) * chunkCap
		if tl.slabT[base+si] == t {
			return
		}
		level := tl.slabB[base+si] + tl.coff[c]
		if int(tl.cnum[c]) == chunkCap {
			if oi == len(tl.order)-1 && si == chunkCap-1 {
				tl.appendStep(t, level) // past the end: extend, don't split
				return
			}
			tl.split(oi)
			continue
		}
		tl.insert(oi, si+1, t, level)
		return
	}
}

// addRange raises the load by alloc on [start, end). Both endpoints must
// already be breakpoints. Fully covered chunks take the delta as an O(1)
// offset; the boundary chunks update per step and rebuild their aggregates.
func (tl *timeline) addRange(start, end float64, alloc int32) {
	oi1, si1 := tl.find(start)
	oi2, si2 := tl.find(end)
	for oi := oi1; oi <= oi2; oi++ {
		c := tl.order[oi]
		lo := 0
		if oi == oi1 {
			lo = si1
		}
		hi := int(tl.cnum[c])
		if oi == oi2 {
			hi = si2
		}
		if lo >= hi {
			continue
		}
		if lo == 0 && hi == int(tl.cnum[c]) {
			tl.coff[c] += alloc
			tl.cmin[c] += alloc
			tl.cmax[c] += alloc
			continue
		}
		base := int(c) * chunkCap
		for i := lo; i < hi; i++ {
			tl.slabB[base+i] += alloc
		}
		tl.recalc(c)
	}
}

// earliestFit is Profile.EarliestFit on the chunked store: the same
// walk-and-restart sweep as the flat version — every candidate start and
// comparison is identical — with two chunk-level shortcuts: a chunk whose
// max load fits is crossed without touching its steps, and a chunk whose
// min load violates restarts the window after its last step directly.
func (tl *timeline) earliestFit(m int, ready, dur float64, need int) float64 {
	if tl.total == 0 {
		return ready
	}
	free := int32(m - need)
	t := ready
	oi, si := tl.find(t)
outer:
	for {
		wend := t + dur
		joi, jsi := oi, si
		if joi < 0 {
			// Load 0 before the first breakpoint; the next breakpoint is
			// the first chunk's first step.
			if tl.first[0] >= wend {
				return t
			}
			joi, jsi = 0, 0
		}
		for {
			c := tl.order[joi]
			if jsi == 0 {
				if tl.cmax[c] <= free {
					// The whole chunk fits: if no breakpoint follows it or
					// the next chunk starts at/after the window end, t wins
					// (any in-chunk breakpoint >= wend implies the same).
					if joi+1 >= len(tl.order) || tl.first[joi+1] >= wend {
						return t
					}
					joi = joi + 1
					continue
				}
				if tl.cmin[c] > free {
					// The whole chunk violates: the final step's load is 0,
					// so a violating chunk always has a successor chunk.
					t = tl.first[joi+1]
					oi, si = joi+1, 0
					continue outer
				}
			}
			n := int(tl.cnum[c])
			base := int(c) * chunkCap
			off := tl.coff[c]
			for jsi < n {
				if tl.slabB[base+jsi]+off > free {
					if jsi+1 < n {
						t = tl.slabT[base+jsi+1]
						oi, si = joi, jsi+1
					} else {
						// Successor is the next chunk's first step, which
						// exists because the final step's load is 0.
						t = tl.first[joi+1]
						oi, si = joi+1, 0
					}
					continue outer
				}
				if jsi+1 < n {
					if tl.slabT[base+jsi+1] >= wend {
						return t
					}
					jsi++
					continue
				}
				break
			}
			if joi+1 >= len(tl.order) || tl.first[joi+1] >= wend {
				return t
			}
			joi, jsi = joi+1, 0
		}
	}
}

// each walks the live steps in time order, stopping early when yield
// returns false.
func (tl *timeline) each(yield func(t float64, load int) bool) {
	for _, c := range tl.order {
		base := int(c) * chunkCap
		off := tl.coff[c]
		for i := 0; i < int(tl.cnum[c]); i++ {
			if !yield(tl.slabT[base+i], int(tl.slabB[base+i]+off)) {
				return
			}
		}
	}
}

// lastTime returns the final breakpoint; ok is false on an empty timeline.
func (tl *timeline) lastTime() (float64, bool) {
	n := len(tl.order)
	if n == 0 {
		return 0, false
	}
	c := tl.order[n-1]
	return tl.slabT[int(c)*chunkCap+int(tl.cnum[c])-1], true
}

// profileEvent is one endpoint of an item during Build.
type profileEvent struct {
	t     float64
	delta int32
}

// parallelSortMin is the event count from which Build sorts in parallel
// (given spare processors): at 10^5+ tasks the O(k log k) event sort is
// the build's dominant cost.
const parallelSortMin = 1 << 17

// sortEvents orders events by time. Large slabs are cut into segments
// sorted concurrently and merged; the result is the same time order either
// way, and equal-time events are interchangeable (the sweep folds all
// deltas at one time into a single step before emitting it).
func sortEvents(evs []profileEvent) {
	byTime := func(e []profileEvent) func(a, b int) bool {
		return func(a, b int) bool { return e[a].t < e[b].t }
	}
	procs := runtime.GOMAXPROCS(0)
	if len(evs) < parallelSortMin || procs < 2 {
		sort.Slice(evs, byTime(evs))
		return
	}
	segs := 4
	if procs > 4 {
		segs = 8
	}
	bounds := make([]int, segs+1)
	for i := 0; i <= segs; i++ {
		bounds[i] = i * len(evs) / segs
	}
	var wg sync.WaitGroup
	for i := 0; i < segs; i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			seg := evs[lo:hi]
			sort.Slice(seg, byTime(seg))
		}(bounds[i], bounds[i+1])
	}
	wg.Wait()
	scratch := make([]profileEvent, len(evs))
	for width := 1; width < segs; width *= 2 {
		for i := 0; i+width <= segs; i += 2 * width {
			lo, mid := bounds[i], bounds[i+width]
			hi := bounds[min(i+2*width, segs)]
			mergeEvents(evs[lo:mid], evs[mid:hi], scratch[lo:hi])
			copy(evs[lo:hi], scratch[lo:hi])
		}
	}
}

func mergeEvents(a, b, out []profileEvent) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].t < a[i].t {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
