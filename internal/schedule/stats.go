package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Stats summarises a schedule for reporting: the quantities Section 4 of
// the paper reasons about, computed on a concrete schedule.
type Stats struct {
	Makespan  float64 `json:"makespan"`
	TotalWork float64 `json:"total_work"`
	// AvgBusy is the time-averaged number of busy processors.
	AvgBusy float64 `json:"avg_busy"`
	// Utilisation = TotalWork / (M * Makespan).
	Utilisation float64 `json:"utilisation"`
	// MaxBusy is the peak number of simultaneously busy processors.
	MaxBusy int `json:"max_busy"`
	Tasks   int `json:"tasks"`
	M       int `json:"m"`
}

// ComputeStats derives summary statistics from the schedule.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{
		Makespan:  s.Makespan(),
		TotalWork: s.TotalWork(),
		Tasks:     len(s.Items),
		M:         s.M,
	}
	for _, step := range s.Profile() {
		if step.Busy > st.MaxBusy {
			st.MaxBusy = step.Busy
		}
	}
	if st.Makespan > 0 {
		st.AvgBusy = st.TotalWork / st.Makespan
		st.Utilisation = st.TotalWork / (float64(s.M) * st.Makespan)
	}
	return st
}

// scheduleJSON is the serialised form.
type scheduleJSON struct {
	M     int    `json:"m"`
	Items []Item `json:"items"`
}

// WriteJSON serialises the schedule.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scheduleJSON{M: s.M, Items: s.Items})
}

// ReadJSON deserialises a schedule and sanity-checks it (item ordering and
// basic well-formedness; full feasibility needs the DAG via Verify).
func ReadJSON(r io.Reader) (*Schedule, error) {
	var sj scheduleJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	s := &Schedule{M: sj.M, Items: sj.Items}
	if s.M < 1 {
		return nil, fmt.Errorf("%w: m=%d", ErrBadItem, s.M)
	}
	for j, it := range s.Items {
		if it.Task != j {
			return nil, fmt.Errorf("%w: item %d schedules task %d", ErrBadItem, j, it.Task)
		}
		if it.Start < 0 || it.Duration <= 0 || math.IsNaN(it.Start) || math.IsInf(it.Duration, 0) {
			return nil, fmt.Errorf("%w: item %d: %+v", ErrBadItem, j, it)
		}
		if it.Alloc < 1 || it.Alloc > s.M {
			return nil, fmt.Errorf("%w: item %d allotment %d", ErrBadItem, j, it.Alloc)
		}
	}
	return s, nil
}
