package schedule

import (
	"math"
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	s := &Schedule{M: 4, Items: []Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 2}, // work 4
		{Task: 1, Start: 0, Duration: 1, Alloc: 2}, // work 2
		{Task: 2, Start: 2, Duration: 2, Alloc: 4}, // work 8
	}}
	st := s.ComputeStats()
	if st.Makespan != 4 || st.TotalWork != 14 {
		t.Errorf("makespan=%v work=%v", st.Makespan, st.TotalWork)
	}
	if st.MaxBusy != 4 {
		t.Errorf("max busy = %d, want 4", st.MaxBusy)
	}
	if math.Abs(st.AvgBusy-3.5) > 1e-9 {
		t.Errorf("avg busy = %v, want 3.5", st.AvgBusy)
	}
	if math.Abs(st.Utilisation-14.0/16) > 1e-9 {
		t.Errorf("utilisation = %v, want 0.875", st.Utilisation)
	}
	if st.Tasks != 3 || st.M != 4 {
		t.Errorf("counts: %+v", st)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := (&Schedule{M: 2}).ComputeStats()
	if st.Makespan != 0 || st.Utilisation != 0 || st.MaxBusy != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{M: 3, Items: []Item{
		{Task: 0, Start: 0, Duration: 1.5, Alloc: 2},
		{Task: 1, Start: 1.5, Duration: 2.25, Alloc: 3},
	}}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.M != 3 || len(back.Items) != 2 || back.Items[1].Duration != 2.25 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Makespan() != s.Makespan() {
		t.Errorf("makespan changed: %v vs %v", back.Makespan(), s.Makespan())
	}
}

func TestScheduleReadJSONRejects(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"m":0,"items":[]}`,
		`{"m":2,"items":[{"Task":1,"Start":0,"Duration":1,"Alloc":1}]}`, // wrong index
		`{"m":2,"items":[{"Task":0,"Start":-1,"Duration":1,"Alloc":1}]}`,
		`{"m":2,"items":[{"Task":0,"Start":0,"Duration":0,"Alloc":1}]}`,
		`{"m":2,"items":[{"Task":0,"Start":0,"Duration":1,"Alloc":5}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}
