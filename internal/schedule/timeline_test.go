package schedule

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// flatProfile is the pre-chunking Profile implementation, retained as the
// differential oracle for the tiered timeline: same exact-float64 Add and
// the same walk-and-restart EarliestFit, on a plain array.
type flatProfile struct {
	times []float64
	busy  []int
}

func (p *flatProfile) add(start, end float64, alloc int) {
	if !(end > start) || alloc == 0 {
		return
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.busy[k] += alloc
	}
}

func (p *flatProfile) ensureBreak(t float64) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	level := 0
	if i > 0 {
		level = p.busy[i-1]
	}
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.busy = append(p.busy, 0)
	copy(p.busy[i+1:], p.busy[i:])
	p.busy[i] = level
	return i
}

func (p *flatProfile) earliestFit(m int, ready, dur float64, need int) float64 {
	t := ready
	i := sort.SearchFloat64s(p.times, t)
	if !(i < len(p.times) && p.times[i] == t) {
		i--
	}
	for {
		fits := true
		for j := i; ; j++ {
			level := 0
			if j >= 0 {
				level = p.busy[j]
			}
			if level+need > m {
				t = p.times[j+1]
				i = j + 1
				fits = false
				break
			}
			if j+1 >= len(p.times) || p.times[j+1] >= t+dur {
				break
			}
		}
		if fits {
			return t
		}
	}
}

// TestTimelineMatchesFlatProfile drives the chunked timeline and the flat
// reference through identical random workloads big enough to force many
// chunk splits and whole-chunk lazy offsets, checking bit-identical
// breakpoints, loads, and EarliestFit answers throughout.
func TestTimelineMatchesFlatProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		const m = 16
		var p Profile
		var ref flatProfile
		nAdd := 200 + rng.Intn(2000) // up to ~4000 breakpoints: 15+ chunks
		for i := 0; i < nAdd; i++ {
			var start, dur float64
			switch rng.Intn(3) {
			case 0: // short interval at random position
				start = float64(rng.Intn(4 * nAdd))
				dur = 1 + float64(rng.Intn(8))
			case 1: // long interval covering whole chunks (lazy offset path)
				start = float64(rng.Intn(2 * nAdd))
				dur = float64(nAdd/2 + rng.Intn(nAdd))
			default: // append-heavy growth at the right edge
				last, _ := p.LastTime()
				start = last + float64(1+rng.Intn(4))
				dur = 1 + float64(rng.Intn(8))
			}
			alloc := 1 + rng.Intn(m)
			p.Add(start, start+dur, alloc)
			ref.add(start, start+dur, alloc)
			if i%97 == 0 {
				ready := float64(rng.Intn(5 * nAdd))
				d := 0.5 + float64(rng.Intn(3*nAdd))
				need := 1 + rng.Intn(m)
				got := p.EarliestFit(m, ready, d, need)
				want := ref.earliestFit(m, ready, d, need)
				if got != want {
					t.Fatalf("trial %d add %d: EarliestFit(ready=%v dur=%v need=%v) = %v, flat %v",
						trial, i, ready, d, need, got, want)
				}
			}
		}
		times, busy := p.flatten(nil, nil)
		if len(times) != len(ref.times) {
			t.Fatalf("trial %d: %d breakpoints vs flat %d", trial, len(times), len(ref.times))
		}
		for i := range times {
			if times[i] != ref.times[i] || busy[i] != ref.busy[i] {
				t.Fatalf("trial %d breakpoint %d: (%v,%d) vs flat (%v,%d)",
					trial, i, times[i], busy[i], ref.times[i], ref.busy[i])
			}
		}
		if p.Len() != len(ref.times) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, p.Len(), len(ref.times))
		}
		if last, ok := p.LastTime(); !ok || last != ref.times[len(ref.times)-1] {
			t.Fatalf("trial %d: LastTime = %v,%v, want %v", trial, last, ok, ref.times[len(ref.times)-1])
		}
	}
}

func TestProfileAddZeroExtentAndNaN(t *testing.T) {
	var p Profile
	p.Add(1, 1, 3)                   // zero extent
	p.Add(2, 1, 3)                   // negative extent
	p.Add(math.NaN(), 5, 2)          // NaN start
	p.Add(0, math.NaN(), 2)          // NaN end
	p.Add(math.NaN(), math.NaN(), 2) // NaN both
	p.Add(3, 4, 0)                   // zero alloc
	if p.Len() != 0 {
		t.Fatalf("degenerate Adds left %d breakpoints", p.Len())
	}
	p.Add(0, 1, 2)
	if steps := p.Steps(); len(steps) != 1 || (steps[0] != ProfileStep{0, 1, 2}) {
		t.Fatalf("steps after valid Add = %+v", steps)
	}
}

func TestProfileEarliestFitEmpty(t *testing.T) {
	var p Profile
	if got := p.EarliestFit(4, 3.5, 10, 4); got != 3.5 {
		t.Fatalf("EarliestFit on empty profile = %v, want ready time", got)
	}
	if _, ok := p.LastTime(); ok {
		t.Fatalf("LastTime on empty profile reported ok")
	}
	if p.MaxBusy() != 0 {
		t.Fatalf("MaxBusy on empty profile = %d", p.MaxBusy())
	}
}

// TestProfileStepsAcrossChunkBoundaries builds more than a full chunk of
// breakpoints so Steps must coalesce and merge across chunk boundaries
// exactly as the flat rendering would.
func TestProfileStepsAcrossChunkBoundaries(t *testing.T) {
	var p Profile
	n := 3*chunkCap + 17
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		it := Item{Task: i, Start: float64(i), Duration: 1.5, Alloc: 1 + i%2}
		items = append(items, it)
		p.Add(it.Start, it.End(), it.Alloc)
	}
	want := referenceSteps(items)
	got := p.Steps()
	if len(got) != len(want) {
		t.Fatalf("steps = %d, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %+v vs oracle %+v", i, got[i], want[i])
		}
	}
}

// TestTimelineBuildParallelMatchesSerial checks the parallel event sort
// produces the identical timeline (it is only engaged past parallelSortMin
// events, so exercise sortEvents directly at that size).
func TestTimelineBuildParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := parallelSortMin + 1024
	evs := make([]profileEvent, n)
	for i := range evs {
		evs[i] = profileEvent{t: float64(rng.Intn(n / 4)), delta: int32(1 + rng.Intn(3))}
	}
	serial := append([]profileEvent(nil), evs...)
	sort.Slice(serial, func(a, b int) bool { return serial[a].t < serial[b].t })
	sortEvents(evs)
	for i := range evs {
		if evs[i].t != serial[i].t {
			t.Fatalf("event %d: t=%v vs serial %v", i, evs[i].t, serial[i].t)
		}
	}
}
