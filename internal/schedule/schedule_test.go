package schedule

import (
	"errors"
	"math"
	"testing"

	"malsched/internal/dag"
)

// chain2 builds the DAG 0 -> 1 and a feasible 2-processor schedule.
func chain2() (*dag.DAG, *Schedule) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 3, Alloc: 2},
		{Task: 1, Start: 3, Duration: 2, Alloc: 1},
	}}
	return g, s
}

func TestMakespanAndWork(t *testing.T) {
	_, s := chain2()
	if got := s.Makespan(); got != 5 {
		t.Errorf("Makespan = %v, want 5", got)
	}
	if got := s.TotalWork(); got != 8 {
		t.Errorf("TotalWork = %v, want 8", got)
	}
}

func TestVerifyValid(t *testing.T) {
	g, s := chain2()
	if err := s.Verify(g); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestVerifyPrecedenceViolation(t *testing.T) {
	g, s := chain2()
	s.Items[0].Alloc = 1 // keep capacity legal so only precedence trips
	s.Items[1].Start = 2.5
	if err := s.Verify(g); !errors.Is(err, ErrPrecedence) {
		t.Errorf("want ErrPrecedence, got %v", err)
	}
}

func TestVerifyCapacityViolation(t *testing.T) {
	g := dag.New(2)
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 3, Alloc: 2},
		{Task: 1, Start: 1, Duration: 2, Alloc: 1},
	}}
	if err := s.Verify(g); !errors.Is(err, ErrCapacity) {
		t.Errorf("want ErrCapacity, got %v", err)
	}
}

func TestVerifyBackToBackIsNotOverlap(t *testing.T) {
	// A task releasing processors at t and another acquiring at t is legal.
	g := dag.New(2)
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 3, Alloc: 2},
		{Task: 1, Start: 3, Duration: 2, Alloc: 2},
	}}
	if err := s.Verify(g); err != nil {
		t.Errorf("back-to-back schedule rejected: %v", err)
	}
}

func TestVerifyBadItems(t *testing.T) {
	g := dag.New(1)
	bad := []*Schedule{
		{M: 2, Items: []Item{{Task: 0, Start: -1, Duration: 1, Alloc: 1}}},
		{M: 2, Items: []Item{{Task: 0, Start: 0, Duration: 0, Alloc: 1}}},
		{M: 2, Items: []Item{{Task: 0, Start: 0, Duration: 1, Alloc: 0}}},
		{M: 2, Items: []Item{{Task: 0, Start: 0, Duration: 1, Alloc: 3}}},
		{M: 2, Items: []Item{{Task: 1, Start: 0, Duration: 1, Alloc: 1}}},
	}
	for i, s := range bad {
		if err := s.Verify(g); !errors.Is(err, ErrBadItem) {
			t.Errorf("case %d: want ErrBadItem, got %v", i, err)
		}
	}
	short := &Schedule{M: 2}
	if err := short.Verify(g); !errors.Is(err, ErrBadItem) {
		t.Errorf("missing items: want ErrBadItem, got %v", err)
	}
}

func TestProfile(t *testing.T) {
	// Two overlapping unit tasks on 3 processors:
	// [0,1): 1 busy; [1,2): 3 busy; [2,3): 2 busy.
	s := &Schedule{M: 3, Items: []Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 1},
		{Task: 1, Start: 1, Duration: 2, Alloc: 2},
	}}
	steps := s.Profile()
	want := []ProfileStep{{0, 1, 1}, {1, 2, 3}, {2, 3, 2}}
	if len(steps) != len(want) {
		t.Fatalf("profile = %+v, want %+v", steps, want)
	}
	for i := range want {
		if steps[i].Busy != want[i].Busy ||
			math.Abs(steps[i].From-want[i].From) > 1e-9 ||
			math.Abs(steps[i].To-want[i].To) > 1e-9 {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
}

func TestProfileMergesEqualSteps(t *testing.T) {
	// Sequential tasks with the same load produce one merged step.
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	steps := s.Profile()
	if len(steps) != 1 || steps[0].Busy != 1 || steps[0].To != 2 {
		t.Errorf("profile = %+v, want single step [0,2)x1", steps)
	}
}

func TestClassify(t *testing.T) {
	// m=4, mu=2: T1 = busy <= 1, T2 = busy in {2}, T3 = busy >= 3.
	s := &Schedule{M: 4, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 1}, // T1
		{Task: 1, Start: 1, Duration: 2, Alloc: 2}, // T2
		{Task: 2, Start: 3, Duration: 1, Alloc: 4}, // T3
	}}
	c := s.Classify(2)
	if math.Abs(c.T1-1) > 1e-9 || math.Abs(c.T2-2) > 1e-9 || math.Abs(c.T3-1) > 1e-9 {
		t.Errorf("classes = %+v, want {1 2 1}", c)
	}
	// Eq. (14): T1 + T2 + T3 = Cmax.
	if math.Abs(c.T1+c.T2+c.T3-s.Makespan()) > 1e-9 {
		t.Errorf("slot classes do not partition the horizon")
	}
}

func TestClassifyOddMuHalf(t *testing.T) {
	// mu = (m+1)/2 with m odd makes T2 empty by construction (Sec. 4).
	s := &Schedule{M: 5, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 3},
		{Task: 1, Start: 1, Duration: 1, Alloc: 2},
	}}
	c := s.Classify(3)
	if c.T2 != 0 {
		t.Errorf("T2 = %v, want 0 for mu=(m+1)/2", c.T2)
	}
}

func TestHeavyPathChain(t *testing.T) {
	// Chain 0->1->2 run sequentially on one processor each: the heavy path
	// must be the whole chain (all slots are T1 for mu=2, m=4).
	g := dag.New(3)
	g.MustEdge(0, 1)
	g.MustEdge(1, 2)
	s := &Schedule{M: 4, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
		{Task: 2, Start: 2, Duration: 1, Alloc: 1},
	}}
	path := s.HeavyPath(g, 2)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Errorf("heavy path = %v, want [0 1 2]", path)
	}
}

func TestHeavyPathIsAChain(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3 with task 1 long. Heavy path must follow
	// precedence (consecutive elements connected by directed paths).
	g := dag.New(4)
	g.MustEdge(0, 1)
	g.MustEdge(0, 2)
	g.MustEdge(1, 3)
	g.MustEdge(2, 3)
	s := &Schedule{M: 4, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 2},
		{Task: 1, Start: 1, Duration: 4, Alloc: 1},
		{Task: 2, Start: 1, Duration: 1, Alloc: 1},
		{Task: 3, Start: 5, Duration: 1, Alloc: 2},
	}}
	path := s.HeavyPath(g, 2)
	if len(path) < 2 {
		t.Fatalf("heavy path too short: %v", path)
	}
	for i := 1; i < len(path); i++ {
		if !g.Reachable(path[i-1], path[i]) {
			t.Errorf("path %v: %d does not precede %d", path, path[i-1], path[i])
		}
	}
	if path[len(path)-1] != 3 {
		t.Errorf("heavy path should end at the makespan-defining task 3: %v", path)
	}
}

func TestHeavyPathEmptySchedule(t *testing.T) {
	s := &Schedule{M: 2}
	if p := s.HeavyPath(dag.New(0), 1); p != nil {
		t.Errorf("empty schedule heavy path = %v, want nil", p)
	}
}

func TestVerifyNearTiedEventsDeterministic(t *testing.T) {
	// A long chain of handoffs whose boundaries are perturbed by less than
	// timeEps. The old epsilon-banded comparator was not a strict weak
	// ordering on exactly this input (a ~ b and b ~ c but a < c), leaving
	// the event order — and the Verify outcome — undefined. The strict sort
	// plus post-sort coalescing must accept every permutation of it.
	g := dag.New(6)
	const jitter = 2e-8 // < timeEps = 1e-7
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 2},
		{Task: 1, Start: 1 + 1*jitter, Duration: 1, Alloc: 2},
		{Task: 2, Start: 2 + 2*jitter, Duration: 1, Alloc: 2},
		{Task: 3, Start: 3 + 3*jitter, Duration: 1, Alloc: 2},
		{Task: 4, Start: 4 + 4*jitter, Duration: 1, Alloc: 2},
		{Task: 5, Start: 5 + 5*jitter, Duration: 1, Alloc: 2},
	}}
	if err := s.Verify(g); err != nil {
		t.Errorf("near-tied handoff chain rejected: %v", err)
	}
}

func TestVerifyNearTiedOverlapStillRejected(t *testing.T) {
	// Overlap far beyond timeEps must still trip ErrCapacity even when
	// other events are near-tied.
	g := dag.New(3)
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 2},
		{Task: 1, Start: 1 + 5e-8, Duration: 1, Alloc: 2},
		{Task: 2, Start: 1.5, Duration: 1, Alloc: 1},
	}}
	if err := s.Verify(g); !errors.Is(err, ErrCapacity) {
		t.Errorf("want ErrCapacity, got %v", err)
	}
}

func TestHeavyPathNoMakespanTask(t *testing.T) {
	// A NaN-tainted schedule has Makespan 0 while no item's completion is
	// within timeEps of it: HeavyPath must return nil, not panic.
	g := dag.New(1)
	s := &Schedule{M: 2, Items: []Item{
		{Task: 0, Start: 0, Duration: math.NaN(), Alloc: 1},
	}}
	if p := s.HeavyPath(g, 1); p != nil {
		t.Errorf("heavy path = %v, want nil", p)
	}
}

func TestVerifyReleaseAfterStraddledAcquires(t *testing.T) {
	// The releasing task ends within timeEps of BOTH acquiring tasks, but
	// the three events do not fit one anchored eps-window starting at the
	// first acquire. Gap-chained coalescing must still put the release in
	// the acquires' group and accept the schedule.
	g := dag.New(3)
	s := &Schedule{M: 4, Items: []Item{
		{Task: 0, Start: 0, Duration: 5.00000013, Alloc: 2}, // releases at 5+1.3e-7
		{Task: 1, Start: 5.0, Duration: 1, Alloc: 2},        // acquires at 5
		{Task: 2, Start: 5.00000009, Duration: 1, Alloc: 2}, // acquires at 5+9e-8
	}}
	if err := s.Verify(g); err != nil {
		t.Errorf("eps-feasible straddled handoff rejected: %v", err)
	}
}

func TestVerifyRejectsNonFiniteTimes(t *testing.T) {
	g := dag.New(2)
	for i, s := range []*Schedule{
		{M: 1, Items: []Item{{Task: 0, Start: 0, Duration: math.NaN(), Alloc: 1}, {Task: 1, Start: 0, Duration: 1, Alloc: 1}}},
		{M: 1, Items: []Item{{Task: 0, Start: math.NaN(), Duration: 1, Alloc: 1}, {Task: 1, Start: 0, Duration: 1, Alloc: 1}}},
		{M: 1, Items: []Item{{Task: 0, Start: math.Inf(1), Duration: 1, Alloc: 1}, {Task: 1, Start: 0, Duration: 1, Alloc: 1}}},
		{M: 1, Items: []Item{{Task: 0, Start: 0, Duration: math.Inf(1), Alloc: 1}, {Task: 1, Start: 0, Duration: 1, Alloc: 1}}},
	} {
		if err := s.Verify(g); !errors.Is(err, ErrBadItem) {
			t.Errorf("case %d: non-finite time accepted: %v", i, err)
		}
	}
}

func TestVerifyBridgeChainCannotMaskOverload(t *testing.T) {
	// Adversarial shape for eps-coalescing: tasks X and Y (2 procs each,
	// m=3) overlap for 1e-6 — ten times timeEps — while a chain of
	// sub-timeEps-spaced single-processor bridge events connects Y's start
	// to X's completion. No amount of event bridging may let X's release
	// cancel Y's acquire: the overload persists longer than timeEps and
	// must be reported.
	items := []Item{
		{Task: 0, Start: 0, Duration: 1 + 1e-6, Alloc: 2},
		{Task: 1, Start: 1, Duration: 1, Alloc: 2},
	}
	const step = 0.8e-7 // < timeEps
	for k := 0; k < 14; k++ {
		items = append(items, Item{
			Task:     2 + k,
			Start:    1 + float64(k)*step,
			Duration: step / 2,
			Alloc:    1,
		})
	}
	g := dag.New(len(items))
	s := &Schedule{M: 3, Items: items}
	if err := s.Verify(g); !errors.Is(err, ErrCapacity) {
		t.Errorf("bridged 1e-6 overload accepted: %v", err)
	}
}

func TestVerifySawtoothOverloadRejected(t *testing.T) {
	// Many disjoint overload slivers, each shorter than timeEps: their
	// accumulated length far exceeds timeEps, so the forgiveness budget
	// must run out and the oversubscription be reported.
	items := []Item{{Task: 0, Start: 0, Duration: 1, Alloc: 1}}
	for k := 0; k < 20; k++ {
		items = append(items, Item{
			Task:     1 + k,
			Start:    0.5 + float64(k)*1e-7,
			Duration: 0.9e-7,
			Alloc:    1,
		})
	}
	g := dag.New(len(items))
	s := &Schedule{M: 1, Items: items}
	if err := s.Verify(g); !errors.Is(err, ErrCapacity) {
		t.Errorf("sawtooth oversubscription accepted: %v", err)
	}
}
