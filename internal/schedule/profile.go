package schedule

// Profile is the canonical busy-processor timeline: a step function over
// time maintained as strictly increasing breakpoints. It is the one event
// sweep shared by the analysis tools (Schedule.Profile, Classify, HeavyPath
// via Profile) and by the phase-2 LIST scheduler, which updates it in place
// as items are committed and queries it for earliest feasible start times.
//
// Invariants: breakpoints are strictly increasing; step i carries the load
// on [t_i, t_{i+1}) and the final step the load on [t_last, +inf); the load
// before the first breakpoint is 0. After any sequence of well-formed Add
// calls (positive alloc over a finite interval) the final step's load is 0,
// because every added interval ends at one of the breakpoints.
//
// All arithmetic is exact: breakpoints are inserted at the exact float64
// start/end times and compared with ==/<. Epsilon tolerance is applied only
// when rendering Steps, never while maintaining the timeline, so the order
// of operations can never make two sweeps disagree (the non-strict-weak-
// order comparator bug the eps-tolerant sorts used to have).
//
// Internally the steps live in the tiered timeline (timeline.go): chunked
// storage so Add is O(chunk + log k) instead of an O(k) array shift, with
// per-chunk min/max load aggregates so EarliestFit skips whole chunks. The
// chunking is invisible here: this type is a thin shim and its results are
// bit-identical to the flat-array implementation it replaced.
type Profile struct {
	tl timeline
}

// Reset empties the profile, keeping its capacity for reuse.
func (p *Profile) Reset() { p.tl.reset() }

// Add raises the load by alloc on [start, end). Intervals without positive
// extent — end <= start, NaN endpoints — or with alloc == 0 are ignored.
func (p *Profile) Add(start, end float64, alloc int) {
	if !(end > start) || alloc == 0 { // negated so NaN endpoints are skipped too
		return
	}
	p.tl.ensureBreak(start)
	p.tl.ensureBreak(end)
	p.tl.addRange(start, end, int32(alloc))
}

// Build populates the profile from a complete set of items in one
// O(k log k) pass: all start/end events are sorted once and swept, instead
// of k incremental Adds whose insertions dominate when items arrive out of
// time order. The resulting timeline is identical to adding every item
// individually. Zero-load items (end <= start, NaN endpoints, or
// alloc == 0) are skipped, as in Add. Past parallelSortMin events the sort
// runs on spare processors; the swept result is identical either way.
func (p *Profile) Build(items []Item) {
	p.tl.reset()
	evs := make([]profileEvent, 0, 2*len(items))
	for _, it := range items {
		if !(it.End() > it.Start) || it.Alloc == 0 {
			continue
		}
		evs = append(evs,
			profileEvent{it.Start, int32(it.Alloc)},
			profileEvent{it.End(), int32(-it.Alloc)})
	}
	sortEvents(evs)
	var busy int32
	for i := 0; i < len(evs); {
		t := evs[i].t
		for i < len(evs) && evs[i].t == t {
			busy += evs[i].delta
			i++
		}
		p.tl.appendStep(t, busy)
	}
}

// EarliestFit returns the earliest time t >= ready such that need
// processors are free throughout [t, t+dur) on a machine of m processors.
// It walks the timeline from ready, restarting the window after every step
// that violates capacity — crossing whole chunks via their aggregates when
// possible — so the cost is proportional to the number of chunks between
// ready and the returned start, not to the number of items ever added.
// Requires 1 <= need <= m and dur > 0; the load beyond the last breakpoint
// is 0 (see the type invariant), so a fit always exists.
func (p *Profile) EarliestFit(m int, ready, dur float64, need int) float64 {
	return p.tl.earliestFit(m, ready, dur, need)
}

// LastTime returns the final breakpoint of the timeline; ok is false when
// the profile is empty. By the type invariant the load is 0 from that point
// on, so any window starting at or after it fits trivially — the phase-2
// scheduler uses this as an O(1) fast path.
func (p *Profile) LastTime() (float64, bool) { return p.tl.lastTime() }

// Each walks the steps in time order, calling yield with each breakpoint
// and the load that applies from it to the next breakpoint (0 from the last
// one, for well-formed items). It stops early when yield returns false.
func (p *Profile) Each(yield func(t float64, busy int) bool) { p.tl.each(yield) }

// Len returns the number of breakpoints.
func (p *Profile) Len() int { return p.tl.total }

// Steps renders the profile as merged ProfileSteps over [0, last
// breakpoint): breakpoints within timeEps of a window anchored at the
// window's first breakpoint are coalesced into one boundary, and adjacent
// steps with equal load are merged. The anchored window keeps the
// coalescing bounded — a chain of closely spaced breakpoints spanning more
// than timeEps still yields distinct steps — and happens strictly after
// the timeline is built, on an already totally ordered sequence, so it is
// deterministic (and independent of where chunk boundaries fall).
func (p *Profile) Steps() []ProfileStep {
	times, busy := p.flatten(nil, nil)
	if len(times) < 2 {
		return nil
	}
	var out []ProfileStep
	prev := 0.0
	level := 0
	for i := 0; i < len(times); {
		t := times[i]
		j := i
		for j+1 < len(times) && times[j+1] <= t+timeEps {
			j++
		}
		if t > prev+timeEps {
			if n := len(out); n > 0 && out[n-1].Busy == level {
				out[n-1].To = t
			} else {
				out = append(out, ProfileStep{From: prev, To: t, Busy: level})
			}
			prev = t
		} else if t > prev {
			prev = t
		}
		level = busy[j]
		i = j + 1
	}
	return out
}

// MaxBusy returns the peak load of the profile.
func (p *Profile) MaxBusy() int {
	max := int32(0)
	for _, c := range p.tl.order {
		if p.tl.cmax[c] > max {
			max = p.tl.cmax[c]
		}
	}
	return int(max)
}

// flatten appends the breakpoints and loads to the given slices (reused
// across calls when capacity allows) and returns them.
func (p *Profile) flatten(times []float64, busy []int) ([]float64, []int) {
	times, busy = times[:0], busy[:0]
	p.tl.each(func(t float64, b int) bool {
		times = append(times, t)
		busy = append(busy, b)
		return true
	})
	return times, busy
}
