package schedule

import "sort"

// Profile is the canonical busy-processor timeline: a step function over
// time maintained as strictly increasing breakpoints. It is the one event
// sweep shared by the analysis tools (Schedule.Profile, Classify, HeavyPath
// via Profile) and by the phase-2 LIST scheduler, which updates it in place
// as items are committed and queries it for earliest feasible start times.
//
// Invariants: times is strictly increasing; busy[i] is the load on
// [times[i], times[i+1]) and busy[len-1] the load on [times[last], +inf);
// the load before times[0] is 0. After any sequence of well-formed Add
// calls (positive alloc over a finite interval) the final step's load is 0,
// because every added interval ends at one of the breakpoints.
//
// All arithmetic is exact: breakpoints are inserted at the exact float64
// start/end times and compared with ==/<. Epsilon tolerance is applied only
// when rendering Steps, never while maintaining the timeline, so the order
// of operations can never make two sweeps disagree (the non-strict-weak-
// order comparator bug the eps-tolerant sorts used to have).
type Profile struct {
	times []float64
	busy  []int
}

// Reset empties the profile, keeping its capacity for reuse.
func (p *Profile) Reset() {
	p.times = p.times[:0]
	p.busy = p.busy[:0]
}

// stepAt returns the greatest index i with times[i] <= t, or -1 when t lies
// before the first breakpoint (where the load is 0).
func (p *Profile) stepAt(t float64) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	return i - 1
}

// ensureBreak inserts a breakpoint at exactly t if none exists and returns
// its index. The new step inherits the load of the step containing t.
func (p *Profile) ensureBreak(t float64) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	level := 0
	if i > 0 {
		level = p.busy[i-1]
	}
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.busy = append(p.busy, 0)
	copy(p.busy[i+1:], p.busy[i:])
	p.busy[i] = level
	return i
}

// Add raises the load by alloc on [start, end). Intervals without positive
// extent — end <= start, NaN endpoints — or with alloc == 0 are ignored.
func (p *Profile) Add(start, end float64, alloc int) {
	if !(end > start) || alloc == 0 { // negated so NaN endpoints are skipped too
		return
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end) // j > i, and inserting end does not shift i
	for k := i; k < j; k++ {
		p.busy[k] += alloc
	}
}

// Build populates the profile from a complete set of items in one
// O(k log k) pass: all start/end events are sorted once and swept, instead
// of k incremental Adds whose array-shift insertions are quadratic when
// items arrive out of time order. The resulting timeline is identical to
// adding every item individually. Zero-load items (end <= start, NaN
// endpoints, or alloc == 0) are skipped, as in Add.
func (p *Profile) Build(items []Item) {
	p.Reset()
	type event struct {
		t     float64
		delta int
	}
	evs := make([]event, 0, 2*len(items))
	for _, it := range items {
		if !(it.End() > it.Start) || it.Alloc == 0 {
			continue
		}
		evs = append(evs, event{it.Start, it.Alloc}, event{it.End(), -it.Alloc})
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].t < evs[b].t })
	busy := 0
	for i := 0; i < len(evs); {
		t := evs[i].t
		for i < len(evs) && evs[i].t == t {
			busy += evs[i].delta
			i++
		}
		p.times = append(p.times, t)
		p.busy = append(p.busy, busy)
	}
}

// EarliestFit returns the earliest time t >= ready such that need
// processors are free throughout [t, t+dur) on a machine of m processors.
// It walks the timeline from ready, restarting the window after every step
// that violates capacity, so the cost is proportional to the number of
// steps between ready and the returned start — not to the number of items
// ever added. Requires 1 <= need <= m and dur > 0; the load beyond the last
// breakpoint is 0 (see the type invariant), so a fit always exists.
func (p *Profile) EarliestFit(m int, ready, dur float64, need int) float64 {
	t := ready
	i := p.stepAt(t)
	for {
		fits := true
		for j := i; ; j++ {
			level := 0
			if j >= 0 {
				level = p.busy[j]
			}
			if level+need > m {
				// A violating step always has a successor breakpoint:
				// the final step's load is 0 and need <= m.
				t = p.times[j+1]
				i = j + 1
				fits = false
				break
			}
			// Step j extends to times[j+1] (or +inf for the last step).
			if j+1 >= len(p.times) || p.times[j+1] >= t+dur {
				break
			}
		}
		if fits {
			return t
		}
	}
}

// Steps renders the profile as merged ProfileSteps over [0, last
// breakpoint): breakpoints within timeEps of a window anchored at the
// window's first breakpoint are coalesced into one boundary, and adjacent
// steps with equal load are merged. The anchored window keeps the
// coalescing bounded — a chain of closely spaced breakpoints spanning more
// than timeEps still yields distinct steps — and happens strictly after
// the timeline is built, on an already totally ordered sequence, so it is
// deterministic.
func (p *Profile) Steps() []ProfileStep {
	if len(p.times) < 2 {
		return nil
	}
	var out []ProfileStep
	prev := 0.0
	busy := 0
	for i := 0; i < len(p.times); {
		t := p.times[i]
		j := i
		for j+1 < len(p.times) && p.times[j+1] <= t+timeEps {
			j++
		}
		if t > prev+timeEps {
			if n := len(out); n > 0 && out[n-1].Busy == busy {
				out[n-1].To = t
			} else {
				out = append(out, ProfileStep{From: prev, To: t, Busy: busy})
			}
			prev = t
		} else if t > prev {
			prev = t
		}
		busy = p.busy[j]
		i = j + 1
	}
	return out
}

// MaxBusy returns the peak load of the profile.
func (p *Profile) MaxBusy() int {
	max := 0
	for _, b := range p.busy {
		if b > max {
			max = b
		}
	}
	return max
}
