package schedule

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestProfileAddAndSteps(t *testing.T) {
	var p Profile
	p.Add(0, 2, 1)
	p.Add(1, 3, 2)
	steps := p.Steps()
	want := []ProfileStep{{0, 1, 1}, {1, 2, 3}, {2, 3, 2}}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v, want %+v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
	if p.MaxBusy() != 3 {
		t.Errorf("MaxBusy = %d, want 3", p.MaxBusy())
	}
}

func TestProfileResetReuses(t *testing.T) {
	var p Profile
	p.Add(0, 5, 3)
	p.Reset()
	if got := p.Steps(); got != nil {
		t.Fatalf("steps after Reset = %+v, want nil", got)
	}
	p.Add(1, 2, 1)
	steps := p.Steps()
	// The idle prefix [0,1) is part of the horizon.
	want := []ProfileStep{{0, 1, 0}, {1, 2, 1}}
	if len(steps) != 2 || steps[0] != want[0] || steps[1] != want[1] {
		t.Errorf("steps = %+v, want %+v", steps, want)
	}
}

func TestProfileEarliestFitBasics(t *testing.T) {
	var p Profile
	const m = 4
	p.Add(0, 10, 3) // one processor free on [0,10)
	cases := []struct {
		ready, dur float64
		need       int
		want       float64
	}{
		{0, 5, 1, 0},   // fits alongside
		{0, 5, 2, 10},  // must wait for the release
		{3, 2, 4, 10},  // full machine only after t=10
		{12, 1, 4, 12}, // ready time after the profile ends
	}
	for i, tc := range cases {
		if got := p.EarliestFit(m, tc.ready, tc.dur, tc.need); got != tc.want {
			t.Errorf("case %d: EarliestFit = %v, want %v", i, got, tc.want)
		}
	}
}

func TestProfileEarliestFitSkipsShortGap(t *testing.T) {
	var p Profile
	const m = 2
	p.Add(0, 1, 2)
	p.Add(2, 4, 2) // free gap [1,2) of length 1
	if got := p.EarliestFit(m, 0, 0.5, 1); got != 1 {
		t.Errorf("short task start = %v, want 1 (fits in the gap)", got)
	}
	if got := p.EarliestFit(m, 0, 1.5, 1); got != 4 {
		t.Errorf("long task start = %v, want 4 (gap too short)", got)
	}
}

// bruteFit is an oracle for EarliestFit: it checks candidate starts (ready
// plus every breakpoint) by sampling the exact interval load.
func bruteFit(items [][3]float64, m int, ready, dur float64, need int) float64 {
	cands := []float64{ready}
	for _, it := range items {
		if it[0] > ready {
			cands = append(cands, it[0])
		}
		if it[1] > ready {
			cands = append(cands, it[1])
		}
	}
	best := math.Inf(1)
	for _, t := range cands {
		ok := true
		// Load is constant between breakpoints; checking at every
		// breakpoint inside [t, t+dur) plus t itself is exact.
		points := []float64{t}
		for _, it := range items {
			for _, b := range []float64{it[0], it[1]} {
				if b > t && b < t+dur {
					points = append(points, b)
				}
			}
		}
		for _, pt := range points {
			busy := 0
			for _, it := range items {
				if it[0] <= pt && it[1] > pt {
					busy += int(it[2])
				}
			}
			if busy+need > m {
				ok = false
				break
			}
		}
		if ok && t < best {
			best = t
		}
	}
	return best
}

func TestProfileEarliestFitAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		const m = 6
		var p Profile
		var items [][3]float64
		k := rng.Intn(12)
		for i := 0; i < k; i++ {
			start := float64(rng.Intn(20)) / 2
			dur := 0.5 + float64(rng.Intn(8))/2
			alloc := 1 + rng.Intn(m)
			p.Add(start, start+dur, alloc)
			items = append(items, [3]float64{start, start + dur, float64(alloc)})
		}
		ready := float64(rng.Intn(10)) / 2
		dur := 0.5 + float64(rng.Intn(6))/2
		need := 1 + rng.Intn(m)
		got := p.EarliestFit(m, ready, dur, need)
		want := bruteFit(items, m, ready, dur, need)
		if got != want {
			t.Fatalf("trial %d: EarliestFit(ready=%v dur=%v need=%v) = %v, oracle %v\nitems: %v",
				trial, ready, dur, need, got, want, items)
		}
	}
}

// referenceSteps is an independent rendering oracle: it derives the step
// function from a plain event sweep over exact, well-separated times (the
// test data uses quarter-integer times, so no eps coalescing applies) and
// merges equal neighbours. Schedule.Profile delegates to Profile.Add/Steps,
// so this oracle is what keeps the rendering honest.
func referenceSteps(items []Item) []ProfileStep {
	type event struct {
		t     float64
		delta int
	}
	var evs []event
	for _, it := range items {
		evs = append(evs, event{it.Start, it.Alloc}, event{it.End(), -it.Alloc})
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].t < evs[b].t })
	var out []ProfileStep
	prev, busy := 0.0, 0
	for i := 0; i < len(evs); {
		t := evs[i].t
		if t > prev {
			if n := len(out); n > 0 && out[n-1].Busy == busy {
				out[n-1].To = t
			} else {
				out = append(out, ProfileStep{From: prev, To: t, Busy: busy})
			}
			prev = t
		}
		for i < len(evs) && evs[i].t == t {
			busy += evs[i].delta
			i++
		}
	}
	return out
}

func TestProfileMatchesEventSweepOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		s := &Schedule{M: 64, Items: make([]Item, n)}
		var p Profile
		for j := 0; j < n; j++ {
			it := Item{
				Task:     j,
				Start:    float64(rng.Intn(30)) / 4,
				Duration: 0.25 + float64(rng.Intn(20))/4,
				Alloc:    1 + rng.Intn(8),
			}
			s.Items[j] = it
			p.Add(it.Start, it.End(), it.Alloc)
		}
		want := referenceSteps(s.Items)
		for which, got := range map[string][]ProfileStep{
			"incremental": p.Steps(),
			"schedule":    s.Profile(),
		} {
			if len(got) != len(want) {
				t.Fatalf("trial %d: %s %+v vs oracle %+v", trial, which, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d step %d: %s %+v vs oracle %+v", trial, i, which, got[i], want[i])
				}
			}
		}
	}
}

func TestProfileStepsCoalescesNearTiedBreakpoints(t *testing.T) {
	// Two loads swapping within timeEps of t=1: the sliver step between
	// the near-tied breakpoints must be coalesced away, with the boundary
	// at the earliest breakpoint of the run.
	var p Profile
	p.Add(0, 1, 2)
	p.Add(1+4e-8, 3, 1)
	steps := p.Steps()
	want := []ProfileStep{{0, 1, 2}, {1, 3, 1}}
	if len(steps) != len(want) || steps[0] != want[0] || steps[1] != want[1] {
		t.Errorf("steps = %+v, want %+v", steps, want)
	}
}

func TestProfileBuildMatchesIncrementalAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(40)
		items := make([]Item, n)
		var inc Profile
		for j := range items {
			items[j] = Item{
				Task:     j,
				Start:    float64(rng.Intn(40)) / 4,
				Duration: float64(rng.Intn(16)) / 4, // may be zero: skipped by both
				Alloc:    rng.Intn(5),               // may be zero: skipped by both
			}
			inc.Add(items[j].Start, items[j].End(), items[j].Alloc)
		}
		var built Profile
		built.Build(items)
		bt, bb := built.flatten(nil, nil)
		it2, ib := inc.flatten(nil, nil)
		if len(bt) != len(it2) {
			t.Fatalf("trial %d: Build %v/%v vs Add %v/%v", trial, bt, bb, it2, ib)
		}
		for i := range bt {
			if bt[i] != it2[i] || bb[i] != ib[i] {
				t.Fatalf("trial %d breakpoint %d: Build (%v,%d) vs Add (%v,%d)",
					trial, i, bt[i], bb[i], it2[i], ib[i])
			}
		}
	}
}

func TestProfileIgnoresNaNItems(t *testing.T) {
	// NaN-tainted items must be skipped by both construction paths, not
	// corrupt the timeline (Add) or hang the event sweep (Build).
	items := []Item{
		{Task: 0, Start: 0, Duration: math.NaN(), Alloc: 1},
		{Task: 1, Start: math.NaN(), Duration: 1, Alloc: 1},
		{Task: 2, Start: 1, Duration: 1, Alloc: 2},
	}
	var inc, built Profile
	for _, it := range items {
		inc.Add(it.Start, it.End(), it.Alloc)
	}
	built.Build(items)
	want := []ProfileStep{{0, 1, 0}, {1, 2, 2}}
	for which, got := range map[string][]ProfileStep{"add": inc.Steps(), "build": built.Steps()} {
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s: steps = %+v, want %+v", which, got, want)
		}
	}
}

func TestProfileStepsChainLongerThanEpsKeepsStructure(t *testing.T) {
	// Breakpoints spaced just under timeEps apart over a span several
	// times timeEps: the anchored coalescing window must not chain them
	// all into one boundary and erase the intermediate load levels.
	var p Profile
	const step = 0.9e-7 // < timeEps, but 10 steps span 9e-7 >> timeEps
	for k := 0; k < 10; k++ {
		p.Add(float64(k)*step, 1, 1) // staircase: load k+1 from k*step on
	}
	steps := p.Steps()
	if len(steps) < 4 {
		t.Errorf("staircase collapsed to %d steps: %+v", len(steps), steps)
	}
	if last := steps[len(steps)-1]; last.Busy != 10 {
		t.Errorf("final load = %d, want 10 (%+v)", last.Busy, steps)
	}
}
