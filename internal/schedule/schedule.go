// Package schedule defines the schedule objects produced by the two-phase
// algorithm and the analysis tools of Section 4 of the paper: feasibility
// verification, the busy-processor profile, the classification of the time
// horizon into the three slot types T1/T2/T3, and the construction of the
// "heavy" path of Lemma 4.3 (illustrated in the paper's Fig. 2).
package schedule

import (
	"errors"
	"fmt"
	"math"

	"malsched/internal/dag"
)

// Item is one scheduled task: it occupies Alloc processors during
// [Start, Start+Duration).
type Item struct {
	Task     int
	Start    float64
	Duration float64
	Alloc    int
}

// End returns the completion time of the item.
func (it Item) End() float64 { return it.Start + it.Duration }

// Schedule is a complete non-preemptive schedule on M identical processors.
// Items are indexed by task: Items[j] schedules task j.
type Schedule struct {
	M     int
	Items []Item
}

// Verification failure modes.
var (
	ErrCapacity   = errors.New("schedule: processor capacity exceeded")
	ErrPrecedence = errors.New("schedule: precedence constraint violated")
	ErrBadItem    = errors.New("schedule: malformed item")
)

const timeEps = 1e-7

// Makespan returns the maximum completion time Cmax.
func (s *Schedule) Makespan() float64 {
	max := 0.0
	for _, it := range s.Items {
		if it.End() > max {
			max = it.End()
		}
	}
	return max
}

// TotalWork returns the executed work sum_j alloc_j * duration_j.
func (s *Schedule) TotalWork() float64 {
	w := 0.0
	for _, it := range s.Items {
		w += float64(it.Alloc) * it.Duration
	}
	return w
}

// Verify checks that the schedule is feasible: every item well-formed, at
// every point in time at most M processors are active, and every precedence
// arc (i, j) of g satisfies C_i <= tau_j.
func (s *Schedule) Verify(g *dag.DAG) error {
	if len(s.Items) != g.N() {
		return fmt.Errorf("%w: %d items for %d tasks", ErrBadItem, len(s.Items), g.N())
	}
	for j, it := range s.Items {
		if it.Task != j {
			return fmt.Errorf("%w: item %d schedules task %d", ErrBadItem, j, it.Task)
		}
		// Negated comparisons so NaN fails too: a NaN time reaching the
		// event sort would make its comparator non-strict-weak again.
		if !(it.Start >= -timeEps) || !(it.Duration > 0) ||
			math.IsInf(it.Start, 0) || math.IsInf(it.Duration, 0) ||
			it.Alloc < 1 || it.Alloc > s.M {
			return fmt.Errorf("%w: task %d start=%v dur=%v alloc=%d m=%d",
				ErrBadItem, j, it.Start, it.Duration, it.Alloc, s.M)
		}
	}
	// Capacity: walk the canonical busy-processor timeline (the same
	// Profile the phase-2 scheduler maintains; Build sorts events by
	// exact time, a strict weak ordering — no epsilon enters the
	// ordering). The timeEps handoff tolerance is applied to the *load*
	// instead: the exact timeline may overshoot M across a sliver of
	// near-tied boundaries (a release a hair after the acquires it
	// feeds), so overload intervals are forgiven while their accumulated
	// length stays within timeEps over the whole schedule. The
	// accumulated bound keeps the check sound — neither one long
	// violation, nor a chain of close events cancelling an acquire with a
	// distant release, nor a sawtooth of many sub-eps overload slivers
	// can hide more than timeEps of total oversubscription — while
	// forgiving rounding-noise overlaps of any internal structure (ulp-
	// scale handoff slivers sum far below timeEps even across thousands
	// of tasks). On adversarial inputs whose accumulated overload exceeds
	// the budget, Verify is deliberately stricter than sim.Replay's
	// per-window event tolerance: a measure-based feasibility oracle
	// fails closed.
	var p Profile
	p.Build(s.Items)
	worst := 0
	overFrom, forgiven := 0.0, 0.0
	over := false
	var overErr error
	p.Each(func(t float64, load int) bool {
		// load applies from breakpoint t to the next one; the final step's
		// load is 0 (every item ends at a breakpoint), closing any open
		// interval.
		if load > s.M {
			if !over {
				over, overFrom, worst = true, t, load
			} else if load > worst {
				worst = load
			}
		} else if over {
			over = false
			forgiven += t - overFrom
			if forgiven > timeEps {
				overErr = fmt.Errorf("%w: accumulated overload %v exceeds tolerance %v "+
					"(last interval [%v, %v) with %d busy, m=%d)",
					ErrCapacity, forgiven, timeEps, overFrom, t, worst, s.M)
				return false
			}
		}
		return true
	})
	if overErr != nil {
		return overErr
	}
	// Precedence.
	for _, e := range g.Edges() {
		if s.Items[e[0]].End() > s.Items[e[1]].Start+timeEps {
			return fmt.Errorf("%w: task %d ends at %v but task %d starts at %v",
				ErrPrecedence, e[0], s.Items[e[0]].End(), e[1], s.Items[e[1]].Start)
		}
	}
	return nil
}

// ProfileStep is one step of the busy-processor profile: Busy processors
// are active on [From, To).
type ProfileStep struct {
	From, To float64
	Busy     int
}

// Profile returns the busy-processor step function over [0, Cmax), merging
// adjacent steps with equal load. It is built on the canonical Profile
// timeline (exact breakpoints, eps-coalescing only at rendering), the same
// sweep the phase-2 scheduler maintains incrementally.
func (s *Schedule) Profile() []ProfileStep {
	var p Profile
	p.Build(s.Items)
	return p.Steps()
}

// SlotClasses is the Section 4 decomposition of [0, Cmax] into the three
// slot types for threshold mu: T1 = time with at most mu-1 busy processors,
// T2 = time with between mu and m-mu busy, T3 = time with at least m-mu+1
// busy. T1+T2+T3 = Cmax (Eq. (14)).
type SlotClasses struct {
	T1, T2, T3 float64
}

// Classify computes the slot-class lengths for threshold mu.
func (s *Schedule) Classify(mu int) SlotClasses {
	var c SlotClasses
	for _, st := range s.Profile() {
		d := st.To - st.From
		switch {
		case st.Busy <= mu-1:
			c.T1 += d
		case st.Busy <= s.M-mu:
			c.T2 += d
		default:
			c.T3 += d
		}
	}
	return c
}

// HeavyPath constructs the "heavy" directed path P of Lemma 4.3 (Fig. 2 of
// the paper): starting from a task finishing at Cmax, walk backwards; at
// each step, find the latest T1-or-T2 slot before the current task's start
// and hop to a predecessor (in the transitive sense used by the lemma, a
// predecessor of the current path task) that is running during that slot.
// The returned task indices are ordered by increasing start time. The path
// covers all T1 and T2 slots of the schedule.
func (s *Schedule) HeavyPath(g *dag.DAG, mu int) []int {
	if len(s.Items) == 0 {
		return nil
	}
	// Identify the low-load slots (T1 or T2 for threshold mu).
	var low []ProfileStep
	for _, st := range s.Profile() {
		if st.Busy <= s.M-mu {
			low = append(low, st)
		}
	}
	// Last task: any task completing at Cmax. For externally constructed or
	// NaN-tainted schedules no item's completion may match Makespan within
	// timeEps; there is no heavy path then, rather than an out-of-range
	// index below.
	cmax := s.Makespan()
	cur := -1
	for j, it := range s.Items {
		if math.Abs(it.End()-cmax) < timeEps {
			cur = j
			break
		}
	}
	if cur < 0 {
		return nil
	}
	path := []int{cur}
	for {
		start := s.Items[cur].Start
		// Latest low slot strictly before the start of cur.
		slot := -1
		for i := len(low) - 1; i >= 0; i-- {
			if low[i].From < start-timeEps {
				slot = i
				break
			}
		}
		if slot < 0 {
			break
		}
		tmid := math.Min(low[slot].To, start) // probe inside the slot, before cur's start
		t := (low[slot].From + tmid) / 2
		// Find an ancestor of cur running at time t. Lemma 4.3 guarantees one
		// exists: cur is not ready during the slot, so some predecessor chain
		// is still executing.
		next := -1
		for j, it := range s.Items {
			// Half-open execution interval [Start, End): a task ending
			// exactly at t is not running at t.
			if it.Start <= t+timeEps && it.End() > t+timeEps && j != cur {
				if g.Reachable(j, cur) {
					next = j
					break
				}
			}
		}
		if next < 0 {
			// No ancestor is running during the slot: the path is complete
			// (cur starts before every low slot that matters).
			break
		}
		path = append(path, next)
		cur = next
	}
	// Reverse into start-time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
