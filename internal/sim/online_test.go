package sim

import (
	"math"
	"math/rand"
	"testing"

	"malsched/internal/allot"
	"malsched/internal/core"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

func TestExecuteOnlineChain(t *testing.T) {
	in := &allot.Instance{G: gen.Chain(3), M: 2}
	for i := 0; i < 3; i++ {
		in.Tasks = append(in.Tasks, malleable.Sequential("u", 1, 2))
	}
	s, err := ExecuteOnline(in, []int{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(in.G); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan()-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3", s.Makespan())
	}
}

func TestExecuteOnlinePriorityOrder(t *testing.T) {
	// Two independent unit tasks, m=1: the priority list decides order.
	in := &allot.Instance{G: dag.New(2), M: 1}
	in.Tasks = []malleable.Task{
		malleable.Sequential("a", 1, 1),
		malleable.Sequential("b", 2, 1),
	}
	s, err := ExecuteOnline(in, []int{1, 1}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Items[1].Start != 0 || math.Abs(s.Items[0].Start-2) > 1e-9 {
		t.Errorf("priority not respected: %+v", s.Items)
	}
}

func TestExecuteOnlineRejectsBadInput(t *testing.T) {
	in := &allot.Instance{G: dag.New(2), M: 2}
	in.Tasks = []malleable.Task{malleable.Sequential("a", 1, 2), malleable.Sequential("b", 1, 2)}
	if _, err := ExecuteOnline(in, []int{1}, nil); err == nil {
		t.Error("short allotment accepted")
	}
	if _, err := ExecuteOnline(in, []int{1, 3}, nil); err == nil {
		t.Error("oversized allotment accepted")
	}
	if _, err := ExecuteOnline(in, []int{1, 1}, []int{0, 0}); err == nil {
		t.Error("non-permutation priority accepted")
	}
	if _, err := ExecuteOnline(in, []int{1, 1}, []int{0}); err == nil {
		t.Error("short priority accepted")
	}
}

// The online dispatcher is a list scheduler: its schedule is always
// feasible and, with every allotment <= mu, obeys the same structural bound
// Cmax <= |T1|+|T2|+|T3| analysis. We check feasibility and compare against
// the offline LIST on the same allotment (neither dominates universally,
// but both must stay within the Graham-style certificate L + W/1 for m=1).
func TestExecuteOnlineVsOfflineFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		alloc := make([]int, n)
		for j := range alloc {
			alloc[j] = 1 + rng.Intn(m)
		}
		s, err := ExecuteOnline(in, alloc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Verify(in.G); err != nil {
			t.Errorf("trial %d: online schedule infeasible: %v", trial, err)
		}
		// The online schedule also replays on the machine.
		if _, err := Replay(s); err != nil {
			t.Errorf("trial %d: replay: %v", trial, err)
		}
	}
}

// Online execution of the two-phase allotment still satisfies the paper's
// end-to-end guarantee in practice: compare against the LP lower bound.
func TestExecuteOnlineTwoPhaseGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(5)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		res, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ExecuteOnline(in, res.Alpha, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := s.Makespan() / res.LowerBound; ratio > res.Params.R+1e-6 {
			t.Errorf("trial %d: online ratio %.4f exceeds proven %.4f", trial, ratio, res.Params.R)
		}
	}
}

func TestExecuteOnlineDetectsCycle(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	g.MustEdge(1, 0)
	in := &allot.Instance{G: g, M: 2}
	in.Tasks = []malleable.Task{malleable.Sequential("a", 1, 2), malleable.Sequential("b", 1, 2)}
	if _, err := ExecuteOnline(in, []int{1, 1}, nil); err == nil {
		t.Error("cyclic instance accepted")
	}
}
