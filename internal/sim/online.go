package sim

import (
	"fmt"
	"math"

	"malsched/internal/allot"
	"malsched/internal/schedule"
)

// ExecuteOnline runs a priority-driven online dispatcher on the simulated
// machine: whenever processors free up (or at time zero), it scans tasks in
// priority order and starts every task whose predecessors have completed
// and whose allotment fits the currently free processors. This is Graham
// list scheduling as a *runtime* would execute it — no lookahead, decisions
// only from the current machine state — and demonstrates that the phase-2
// allotment can be dispatched online. The offline LIST of package listsched
// may produce a different (sometimes better) schedule because it plans
// starts into the future; both satisfy the same worst-case analysis.
func ExecuteOnline(in *allot.Instance, alloc []int, priority []int) (*schedule.Schedule, error) {
	n := in.G.N()
	if len(alloc) != n {
		return nil, fmt.Errorf("sim: allotment length %d != n=%d", len(alloc), n)
	}
	if priority == nil {
		priority = make([]int, n)
		for i := range priority {
			priority[i] = i
		}
	}
	if len(priority) != n {
		return nil, fmt.Errorf("sim: priority length %d != n=%d", len(priority), n)
	}
	seen := make([]bool, n)
	for _, j := range priority {
		if j < 0 || j >= n || seen[j] {
			return nil, fmt.Errorf("sim: priority list is not a permutation")
		}
		seen[j] = true
	}
	if err := in.G.Validate(); err != nil {
		return nil, err
	}
	for j, l := range alloc {
		if l < 1 || l > in.M {
			return nil, fmt.Errorf("sim: allotment %d for task %d out of [1,%d]", l, j, in.M)
		}
	}

	s := &schedule.Schedule{M: in.M, Items: make([]schedule.Item, n)}
	done := make([]bool, n)
	running := make([]bool, n)
	endAt := make([]float64, n)
	started := make([]bool, n)
	free := in.M
	t := 0.0
	remaining := n

	for remaining > 0 {
		// Dispatch pass in priority order.
		for _, j := range priority {
			if started[j] || alloc[j] > free {
				continue
			}
			ready := true
			for _, p := range in.G.Preds(j) {
				if !done[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			dur := in.Tasks[j].Time(alloc[j])
			s.Items[j] = schedule.Item{Task: j, Start: t, Duration: dur, Alloc: alloc[j]}
			started[j], running[j] = true, true
			endAt[j] = t + dur
			free -= alloc[j]
		}
		// Advance to the next completion.
		next := math.Inf(1)
		for j := 0; j < n; j++ {
			if running[j] && endAt[j] < next {
				next = endAt[j]
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("sim: deadlock at t=%v with %d tasks remaining", t, remaining)
		}
		t = next
		for j := 0; j < n; j++ {
			if running[j] && endAt[j] <= t+1e-12 {
				running[j] = false
				done[j] = true
				free += alloc[j]
				remaining--
			}
		}
	}
	return s, nil
}
