// Package sim provides a discrete-event simulator of a homogeneous
// m-processor machine. The paper's model was motivated by real massively
// parallel hardware (the MIT Alewife machine); since that hardware is not
// available, this simulator is the substitute substrate (see DESIGN.md): it
// takes a schedule, binds every task to concrete processor IDs, replays the
// execution event by event, and reports per-processor utilisation. Replay
// failures (no processors free at a task's start time) would reveal
// scheduler bugs that interval-based capacity checks could miss.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"malsched/internal/schedule"
)

// Assignment records the concrete processors a task ran on.
type Assignment struct {
	Task  int
	Procs []int // processor IDs, len = allotment
}

// Report is the outcome of a replay.
type Report struct {
	Assignments []Assignment
	// BusyTime[p] = total time processor p spent executing tasks.
	BusyTime []float64
	// Makespan observed during replay.
	Makespan float64
	// Utilisation = total busy time / (m * makespan); 0 for empty schedules.
	Utilisation float64
	// Events = number of discrete events processed.
	Events int
}

// ErrReplay indicates the schedule could not be executed on the machine.
var ErrReplay = errors.New("sim: replay failed")

// Replay executes the schedule on an m-processor machine. Tasks acquire
// specific processor IDs at their start events (lowest free IDs first, the
// policy used by space-sharing runtimes) and release them at completion.
func Replay(s *schedule.Schedule) (*Report, error) {
	m := s.M
	type ev struct {
		t     float64
		start bool
		task  int
	}
	evs := make([]ev, 0, 2*len(s.Items))
	for j, it := range s.Items {
		if math.IsNaN(it.Start) || math.IsInf(it.Start, 0) ||
			!(it.Duration > 0) || math.IsInf(it.Duration, 0) || it.Alloc < 1 {
			// NaN times would make the event comparator non-strict-weak
			// and the replay order undefined; an infinite time puts start
			// and completion at the same instant (+Inf) with the
			// completion sorting first, leaking the processors; a
			// non-positive duration does the same at a finite instant; a
			// non-positive allotment would acquire nothing and silently
			// skew the report. (The negated comparison rejects NaN
			// durations too.) Verify rejects the same item classes.
			return nil, fmt.Errorf("%w: task %d has start=%v duration=%v alloc=%d",
				ErrReplay, j, it.Start, it.Duration, it.Alloc)
		}
		evs = append(evs, ev{it.Start, true, j}, ev{it.End(), false, j})
	}
	// Events are sorted by exact time with completions before starts (and
	// task index for determinism) as tie-breakers — a strict weak ordering,
	// unlike an epsilon-banded "equality" whose intransitivity leaves
	// sort.Slice's output undefined on near-tied times. The eps tolerance
	// (a completion up to eps after a start still frees its processors
	// first) is applied after sorting, by coalescing events into windows
	// anchored at each window's first event and spanning at most eps, and
	// replaying each window's completions before its starts. The anchored
	// bound keeps the tolerance finite: no chain of closely spaced events
	// can pull a completion arbitrarily far in the future before a start.
	const eps = 1e-9
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		if evs[a].start != evs[b].start {
			return !evs[a].start
		}
		return evs[a].task < evs[b].task
	})

	free := make([]bool, m)
	for p := range free {
		free[p] = true
	}
	rep := &Report{
		Assignments: make([]Assignment, len(s.Items)),
		BusyTime:    make([]float64, m),
	}
	held := make([][]int, len(s.Items))
	release := func(e ev) {
		rep.Events++
		for _, p := range held[e.task] {
			free[p] = true
			rep.BusyTime[p] += s.Items[e.task].Duration
		}
		held[e.task] = nil
		if e.t > rep.Makespan {
			rep.Makespan = e.t
		}
	}
	for i := 0; i < len(evs); {
		j := i + 1
		for j < len(evs) && evs[j].t <= evs[i].t+eps {
			j++
		}
		// First pass: completions of tasks that acquired in an earlier
		// group release before any of this group's acquisitions (the eps
		// handoff tolerance). A completion whose task has not acquired yet
		// (held == nil) belongs to a task whose whole execution — start
		// and end — falls inside this group (duration at or below eps);
		// it is left to the second pass, which replays the remaining
		// events in exact time order so such a task still frees its
		// processors before any strictly later start in the group. In both
		// passes held identifies the completions still owed a release:
		// pass one empties held for the tasks it releases, and a deferred
		// completion's own start (earlier in the second pass) refills it.
		for k := i; k < j; k++ {
			e := evs[k]
			if e.start || held[e.task] == nil {
				continue
			}
			release(e)
		}
		for k := i; k < j; k++ {
			e := evs[k]
			if !e.start {
				if held[e.task] != nil {
					release(e)
				}
				continue
			}
			rep.Events++
			need := s.Items[e.task].Alloc
			var got []int
			for p := 0; p < m && len(got) < need; p++ {
				if free[p] {
					got = append(got, p)
					free[p] = false
				}
			}
			if len(got) < need {
				return nil, fmt.Errorf("%w: task %d needs %d processors at t=%v, only %d free",
					ErrReplay, e.task, need, e.t, len(got))
			}
			held[e.task] = got
			rep.Assignments[e.task] = Assignment{Task: e.task, Procs: got}
			if e.t > rep.Makespan {
				rep.Makespan = e.t
			}
		}
		i = j
	}
	if rep.Makespan > 0 {
		total := 0.0
		for _, b := range rep.BusyTime {
			total += b
		}
		rep.Utilisation = total / (float64(m) * rep.Makespan)
	}
	return rep, nil
}
