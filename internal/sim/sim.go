// Package sim provides a discrete-event simulator of a homogeneous
// m-processor machine. The paper's model was motivated by real massively
// parallel hardware (the MIT Alewife machine); since that hardware is not
// available, this simulator is the substitute substrate (see DESIGN.md): it
// takes a schedule, binds every task to concrete processor IDs, replays the
// execution event by event, and reports per-processor utilisation. Replay
// failures (no processors free at a task's start time) would reveal
// scheduler bugs that interval-based capacity checks could miss.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"malsched/internal/schedule"
)

// Assignment records the concrete processors a task ran on.
type Assignment struct {
	Task  int
	Procs []int // processor IDs, len = allotment
}

// Report is the outcome of a replay.
type Report struct {
	Assignments []Assignment
	// BusyTime[p] = total time processor p spent executing tasks.
	BusyTime []float64
	// Makespan observed during replay.
	Makespan float64
	// Utilisation = total busy time / (m * makespan); 0 for empty schedules.
	Utilisation float64
	// Events = number of discrete events processed.
	Events int
}

// ErrReplay indicates the schedule could not be executed on the machine.
var ErrReplay = errors.New("sim: replay failed")

// Replay executes the schedule on an m-processor machine. Tasks acquire
// specific processor IDs at their start events (lowest free IDs first, the
// policy used by space-sharing runtimes) and release them at completion.
func Replay(s *schedule.Schedule) (*Report, error) {
	m := s.M
	type ev struct {
		t     float64
		start bool
		task  int
	}
	evs := make([]ev, 0, 2*len(s.Items))
	for j, it := range s.Items {
		evs = append(evs, ev{it.Start, true, j}, ev{it.End(), false, j})
	}
	const eps = 1e-9
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t < evs[b].t-eps {
			return true
		}
		if evs[a].t > evs[b].t+eps {
			return false
		}
		// Releases before acquisitions at equal times.
		return !evs[a].start && evs[b].start
	})

	free := make([]bool, m)
	for p := range free {
		free[p] = true
	}
	rep := &Report{
		Assignments: make([]Assignment, len(s.Items)),
		BusyTime:    make([]float64, m),
	}
	held := make([][]int, len(s.Items))
	for _, e := range evs {
		rep.Events++
		if e.start {
			need := s.Items[e.task].Alloc
			var got []int
			for p := 0; p < m && len(got) < need; p++ {
				if free[p] {
					got = append(got, p)
					free[p] = false
				}
			}
			if len(got) < need {
				return nil, fmt.Errorf("%w: task %d needs %d processors at t=%v, only %d free",
					ErrReplay, e.task, need, e.t, len(got))
			}
			held[e.task] = got
			rep.Assignments[e.task] = Assignment{Task: e.task, Procs: got}
		} else {
			for _, p := range held[e.task] {
				free[p] = true
				rep.BusyTime[p] += s.Items[e.task].Duration
			}
			held[e.task] = nil
		}
		if e.t > rep.Makespan {
			rep.Makespan = e.t
		}
	}
	if rep.Makespan > 0 {
		total := 0.0
		for _, b := range rep.BusyTime {
			total += b
		}
		rep.Utilisation = total / (float64(m) * rep.Makespan)
	}
	return rep, nil
}
