package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/core"
	"malsched/internal/gen"
	"malsched/internal/schedule"
)

func TestReplaySimple(t *testing.T) {
	s := &schedule.Schedule{M: 2, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 1},
		{Task: 1, Start: 0, Duration: 1, Alloc: 1},
		{Task: 2, Start: 1, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 2 {
		t.Errorf("makespan = %v, want 2", rep.Makespan)
	}
	// Task 1 releases P1 at t=1; task 2 reuses it.
	if rep.Assignments[2].Procs[0] != 1 {
		t.Errorf("task 2 ran on %v, want processor 1", rep.Assignments[2].Procs)
	}
	if math.Abs(rep.Utilisation-1) > 1e-9 {
		t.Errorf("utilisation = %v, want 1 (fully packed)", rep.Utilisation)
	}
}

func TestReplayDetectsOversubscription(t *testing.T) {
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 1},
		{Task: 1, Start: 1, Duration: 2, Alloc: 1},
	}}
	if _, err := Replay(s); !errors.Is(err, ErrReplay) {
		t.Errorf("want ErrReplay, got %v", err)
	}
}

func TestReplayBackToBackReuse(t *testing.T) {
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatalf("release-then-acquire at the same instant must work: %v", err)
	}
	if rep.BusyTime[0] != 2 {
		t.Errorf("busy time = %v, want 2", rep.BusyTime[0])
	}
}

func TestReplayEmpty(t *testing.T) {
	rep, err := Replay(&schedule.Schedule{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || rep.Utilisation != 0 {
		t.Errorf("empty replay: %+v", rep)
	}
}

// Every schedule the two-phase algorithm emits must replay cleanly on the
// simulated machine — the end-to-end hardware-level feasibility check.
func TestReplayTwoPhaseSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(12)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		res, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(res.Schedule)
		if err != nil {
			t.Errorf("trial %d: %v", trial, err)
			continue
		}
		if math.Abs(rep.Makespan-res.Makespan) > 1e-6 {
			t.Errorf("trial %d: replay makespan %v != schedule makespan %v",
				trial, rep.Makespan, res.Makespan)
		}
		if rep.Utilisation < 0 || rep.Utilisation > 1+1e-9 {
			t.Errorf("trial %d: utilisation %v out of [0,1]", trial, rep.Utilisation)
		}
		// Total busy time equals the schedule's work.
		total := 0.0
		for _, b := range rep.BusyTime {
			total += b
		}
		if math.Abs(total-res.Schedule.TotalWork()) > 1e-6 {
			t.Errorf("trial %d: busy %v != work %v", trial, total, res.Schedule.TotalWork())
		}
	}
}
