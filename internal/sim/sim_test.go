package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"malsched/internal/core"
	"malsched/internal/gen"
	"malsched/internal/schedule"
)

func TestReplaySimple(t *testing.T) {
	s := &schedule.Schedule{M: 2, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 1},
		{Task: 1, Start: 0, Duration: 1, Alloc: 1},
		{Task: 2, Start: 1, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 2 {
		t.Errorf("makespan = %v, want 2", rep.Makespan)
	}
	// Task 1 releases P1 at t=1; task 2 reuses it.
	if rep.Assignments[2].Procs[0] != 1 {
		t.Errorf("task 2 ran on %v, want processor 1", rep.Assignments[2].Procs)
	}
	if math.Abs(rep.Utilisation-1) > 1e-9 {
		t.Errorf("utilisation = %v, want 1 (fully packed)", rep.Utilisation)
	}
}

func TestReplayDetectsOversubscription(t *testing.T) {
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 2, Alloc: 1},
		{Task: 1, Start: 1, Duration: 2, Alloc: 1},
	}}
	if _, err := Replay(s); !errors.Is(err, ErrReplay) {
		t.Errorf("want ErrReplay, got %v", err)
	}
}

func TestReplayBackToBackReuse(t *testing.T) {
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 1, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatalf("release-then-acquire at the same instant must work: %v", err)
	}
	if rep.BusyTime[0] != 2 {
		t.Errorf("busy time = %v, want 2", rep.BusyTime[0])
	}
}

func TestReplayEmpty(t *testing.T) {
	rep, err := Replay(&schedule.Schedule{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || rep.Utilisation != 0 {
		t.Errorf("empty replay: %+v", rep)
	}
}

// Every schedule the two-phase algorithm emits must replay cleanly on the
// simulated machine — the end-to-end hardware-level feasibility check.
func TestReplayTwoPhaseSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(12)
		m := 2 + rng.Intn(6)
		in := gen.Instance(gen.ErdosDAG(n, 0.3, rng), gen.FamilyMixed, m, rng)
		res, err := core.Solve(in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replay(res.Schedule)
		if err != nil {
			t.Errorf("trial %d: %v", trial, err)
			continue
		}
		if math.Abs(rep.Makespan-res.Makespan) > 1e-6 {
			t.Errorf("trial %d: replay makespan %v != schedule makespan %v",
				trial, rep.Makespan, res.Makespan)
		}
		if rep.Utilisation < 0 || rep.Utilisation > 1+1e-9 {
			t.Errorf("trial %d: utilisation %v out of [0,1]", trial, rep.Utilisation)
		}
		// Total busy time equals the schedule's work.
		total := 0.0
		for _, b := range rep.BusyTime {
			total += b
		}
		if math.Abs(total-res.Schedule.TotalWork()) > 1e-6 {
			t.Errorf("trial %d: busy %v != work %v", trial, total, res.Schedule.TotalWork())
		}
	}
}

func TestReplayNearTiedHandoff(t *testing.T) {
	// The releasing task completes a hair *after* the acquiring task's
	// start (within the eps band). The strict sort alone would order the
	// acquisition first and fail; the post-sort coalescing must replay the
	// completion first, as the old epsilon-banded comparator intended.
	s := &schedule.Schedule{M: 2, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 1 + 4e-10, Alloc: 2},
		{Task: 1, Start: 1, Duration: 1, Alloc: 2},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatalf("near-tied handoff must replay: %v", err)
	}
	if rep.Events != 4 {
		t.Errorf("events = %d, want 4", rep.Events)
	}
}

func TestReplayNearTiedChainDeterministic(t *testing.T) {
	// A chain of handoffs jittered by less than eps each: the comparator
	// on exact times is a strict weak ordering, so sort.Slice's output —
	// and hence the replay outcome — is fully determined.
	const jitter = 4e-10
	items := make([]schedule.Item, 8)
	for j := range items {
		items[j] = schedule.Item{
			Task:     j,
			Start:    float64(j) + float64(j)*jitter,
			Duration: 1,
			Alloc:    3,
		}
	}
	s := &schedule.Schedule{M: 3, Items: items}
	for round := 0; round < 5; round++ {
		rep, err := Replay(s)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for j := range items {
			if len(rep.Assignments[j].Procs) != 3 {
				t.Fatalf("round %d: task %d got %v", round, j, rep.Assignments[j].Procs)
			}
		}
	}
}

func TestReplayStraddledOverloadRejected(t *testing.T) {
	// Three tasks of 2 processors each genuinely overlap on
	// [1+0.9e-9, 1+1.3e-9) with m=4, and task 0's completion falls outside
	// the eps window anchored at task 1's start. The anchored (bounded)
	// coalescing must not let that completion jump the queue, so the
	// oversubscription is reported.
	s := &schedule.Schedule{M: 4, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 1 + 1.3e-9, Alloc: 2},
		{Task: 1, Start: 1, Duration: 1, Alloc: 2},
		{Task: 2, Start: 1 + 0.9e-9, Duration: 1, Alloc: 2},
	}}
	if _, err := Replay(s); !errors.Is(err, ErrReplay) {
		t.Errorf("exactly-infeasible straddled overlap: want ErrReplay, got %v", err)
	}
}

func TestReplaySubEpsDurationTask(t *testing.T) {
	// Task 0's whole execution fits inside one coalesced event group
	// (duration below eps): its completion must not be replayed before its
	// own start, or the processor would be acquired and never freed.
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 5e-10, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatalf("sub-eps-duration task must not leak its processor: %v", err)
	}
	if rep.Events != 4 {
		t.Errorf("events = %d, want 4", rep.Events)
	}
	if math.Abs(rep.BusyTime[0]-(5e-10+1)) > 1e-12 {
		t.Errorf("busy time = %v, want %v", rep.BusyTime[0], 5e-10+1)
	}
}

func TestReplaySubEpsTaskBeforeDisjointLaterStart(t *testing.T) {
	// Task 0 occupies [0, 5e-10); task 1 starts at 8e-10 — temporally
	// disjoint, yet all three events coalesce into one group. Task 0's
	// deferred completion must be replayed before task 1's strictly later
	// start, or the single processor looks permanently taken.
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 5e-10, Alloc: 1},
		{Task: 1, Start: 8e-10, Duration: 1, Alloc: 1},
	}}
	rep, err := Replay(s)
	if err != nil {
		t.Fatalf("disjoint sub-eps execution must replay: %v", err)
	}
	if rep.Events != 4 {
		t.Errorf("events = %d, want 4", rep.Events)
	}
}

func TestReplayRejectsNaN(t *testing.T) {
	for _, s := range []*schedule.Schedule{
		{M: 1, Items: []schedule.Item{{Task: 0, Start: math.NaN(), Duration: 1, Alloc: 1}}},
		{M: 1, Items: []schedule.Item{{Task: 0, Start: 0, Duration: math.NaN(), Alloc: 1}}},
	} {
		if _, err := Replay(s); !errors.Is(err, ErrReplay) {
			t.Errorf("NaN-tainted schedule: want ErrReplay, got %v", err)
		}
	}
}

func TestReplayRejectsNonPositiveDuration(t *testing.T) {
	// A zero-duration item's completion would sort at/before its own start
	// and its processors would never be released; Replay must reject it
	// like Verify does.
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 0, Alloc: 1},
		{Task: 1, Start: 1, Duration: 1, Alloc: 1},
	}}
	if _, err := Replay(s); !errors.Is(err, ErrReplay) {
		t.Errorf("zero-duration item: want ErrReplay, got %v", err)
	}
}

func TestReplayRejectsNonPositiveAlloc(t *testing.T) {
	s := &schedule.Schedule{M: 1, Items: []schedule.Item{
		{Task: 0, Start: 0, Duration: 5, Alloc: 0},
	}}
	if _, err := Replay(s); !errors.Is(err, ErrReplay) {
		t.Errorf("zero-alloc item: want ErrReplay, got %v", err)
	}
}

func TestReplayRejectsInfiniteTimes(t *testing.T) {
	for _, s := range []*schedule.Schedule{
		{M: 1, Items: []schedule.Item{{Task: 0, Start: math.Inf(1), Duration: 1, Alloc: 1}}},
		{M: 1, Items: []schedule.Item{{Task: 0, Start: 0, Duration: math.Inf(1), Alloc: 1}}},
	} {
		if _, err := Replay(s); !errors.Is(err, ErrReplay) {
			t.Errorf("infinite-time schedule: want ErrReplay, got %v", err)
		}
	}
}
