// Package cancelpoll enforces the solver-core cancellation convention:
// an unbounded loop (a `for` with no condition) in a hot package must
// poll a cancelflag.Flag somewhere in its body — otherwise a stuck or
// adversarial solve cannot be aborted and a cancelled request keeps its
// worker pinned (the abort-latency contract of DESIGN.md §9 rests on
// these polls). Loops that terminate for a structural reason the checker
// cannot see carry an annotation with the reason:
//
//	//malsched:bounded walks one leaf-to-root heap path
//	for {
//		...
//	}
//
// Condition loops (`for x > 0`) and range loops are assumed bounded and
// are not checked. cmd/malschedvet runs this analyzer over the solver hot
// packages (internal/lp, internal/flow, internal/listsched,
// internal/allot).
package cancelpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "cancelpoll",
	Doc: "unbounded (condition-less) loops in solver hot packages must poll " +
		"a cancelflag.Flag or carry //malsched:bounded <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if d := pass.DirectiveAt(loop.Pos(), "bounded"); d != nil {
				if d.Args == "" {
					pass.Reportf(loop.Pos(), "//malsched:bounded needs a reason explaining why this loop terminates")
				}
				return true
			}
			if pollsCancel(pass, loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(), "unbounded loop never polls a cancelflag.Flag; add a Canceled() checkpoint or annotate //malsched:bounded <reason>")
			return true
		})
	}
	return nil
}

// pollsCancel reports whether body contains a call to the Canceled method
// of a cancelflag.Flag on some path. Function literals are skipped: a
// poll inside a closure only runs if the closure runs, which the checker
// cannot see.
func pollsCancel(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Canceled" {
			return true
		}
		if isCancelflagFlag(pass.TypesInfo.Types[sel.X].Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isCancelflagFlag(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Flag" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "cancelflag" || strings.HasSuffix(path, "/cancelflag")
}
