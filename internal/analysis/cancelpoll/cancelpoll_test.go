package cancelpoll_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/cancelpoll"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", cancelpoll.Analyzer, "a")
}
