// Package cancelflag is a fixture stub of malsched/internal/cancelflag:
// the analyzer matches the Flag type by package-path suffix, so the stub
// stands in for the real package.
package cancelflag

type Flag struct{ set bool }

func (f *Flag) Canceled() bool { return f != nil && f.set }
