// Package a exercises cancelpoll: flagging and non-flagging cases.
package a

import "cancelflag"

func polled(f *cancelflag.Flag) int {
	i := 0
	for {
		if f.Canceled() {
			return i
		}
		i++
	}
}

func polledDeep(f *cancelflag.Flag, xs []int) int {
	t := 0
	for {
		for _, x := range xs {
			if x%1024 == 0 && f.Canceled() {
				return t
			}
			t += x
		}
	}
}

func unpolled() int {
	i := 0
	for { // want `unbounded loop never polls`
		i++
		if i > 10 {
			break
		}
	}
	return i
}

func pollOnlyInClosure(f *cancelflag.Flag) {
	for { // want `unbounded loop never polls`
		probe := func() bool { return f.Canceled() }
		if probe() {
			return
		}
	}
}

func annotated() int {
	i := 0
	//malsched:bounded walks one leaf-to-root heap path, depth <= log n
	for {
		i++
		if i > 3 {
			return i
		}
	}
}

func annotatedNoReason() {
	//malsched:bounded
	for { // want `needs a reason`
		return
	}
}

// conditionLoopsAreAssumedBounded: only condition-less loops are checked.
func conditionLoopsAreAssumedBounded(n int) int {
	t := 0
	for n > 0 {
		n /= 2
		t++
	}
	for i := 0; i < 10; i++ {
		t += i
	}
	return t
}

// lookalike pins that a Canceled method on a non-cancelflag type does
// not satisfy the poll requirement.
type fakeFlag struct{}

func (fakeFlag) Canceled() bool { return false }

func lookalike(f fakeFlag) {
	for { // want `unbounded loop never polls`
		if f.Canceled() {
			return
		}
	}
}
