package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Pkg is one loaded, type-checked package.
type Pkg struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader type-checks packages from source with no dependencies outside
// the standard library: package metadata comes from `go list -deps -json`
// (dependency order), syntax from go/parser, types from go/types, with
// each dependency resolved against the packages checked before it. One
// Loader shares a FileSet and a package cache across calls, so loading
// fixture trees plus their stdlib imports stays linear in the union of
// packages touched.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root for
	// module-relative patterns; any directory works for stdlib paths).
	Dir string

	Fset    *token.FileSet
	checked map[string]*types.Package
	pkgs    map[string]*Pkg
}

func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		checked: map[string]*types.Package{"unsafe": types.Unsafe},
		pkgs:    make(map[string]*Pkg),
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -deps -json` and type-checks
// every listed package from source in dependency order. It returns the
// packages matching the patterns themselves (dependencies are loaded but
// not returned), sorted by import path. Only non-test GoFiles are loaded;
// cgo is disabled so the pure-Go stdlib variants are used throughout.
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	args := append([]string{"list", "-deps",
		"-json=ImportPath,Dir,GoFiles,ImportMap,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []*Pkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listPkg)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly && p != nil {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots, nil
}

// LoadFixture type-checks the fixture package at srcRoot/path (an
// analysistest-style GOPATH-shaped tree: import paths resolve to
// directories under srcRoot when they exist there, and to standard
// library packages otherwise).
func (l *Loader) LoadFixture(srcRoot, path string) (*Pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	lp := &listPkg{ImportPath: path, Dir: dir}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			lp.GoFiles = append(lp.GoFiles, name)
		}
	}
	// Pre-resolve imports: fixture-tree siblings first, stdlib otherwise.
	files, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		for _, imp := range f.Imports {
			q := strings.Trim(imp.Path.Value, `"`)
			if _, ok := l.checked[q]; ok {
				continue
			}
			if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(q))); err == nil && st.IsDir() {
				if _, err := l.LoadFixture(srcRoot, q); err != nil {
					return nil, err
				}
			} else if _, err := l.Load(q); err != nil {
				return nil, err
			}
		}
	}
	return l.checkFiles(lp, files, true)
}

// check parses and type-checks one go-list package, reusing the cache.
func (l *Loader) check(lp *listPkg) (*Pkg, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		return nil, nil
	}
	files, err := l.parse(lp)
	if err != nil {
		return nil, err
	}
	// Type errors in the standard library are tolerated (nothing this
	// suite reports on lives there); errors in module packages are fatal.
	return l.checkFiles(lp, files, !lp.Standard)
}

func (l *Loader) parse(lp *listPkg) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) checkFiles(lp *listPkg, files []*ast.File, strict bool) (*Pkg, error) {
	var firstErr error
	conf := types.Config{
		Importer:    importerFunc(func(path string) (*types.Package, error) { return l.resolve(lp, path) }),
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, _ := conf.Check(lp.ImportPath, l.Fset, files, info)
	if strict && firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, firstErr)
	}
	l.checked[lp.ImportPath] = tpkg
	p := &Pkg{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Standard:   lp.Standard,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[lp.ImportPath] = p
	return p, nil
}

func (l *Loader) resolve(lp *listPkg, path string) (*types.Package, error) {
	if m, ok := lp.ImportMap[path]; ok {
		path = m
	}
	if tp, ok := l.checked[path]; ok {
		return tp, nil
	}
	return nil, fmt.Errorf("package %q not loaded (import of %s)", path, lp.ImportPath)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
