package errlabel_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/errlabel"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", errlabel.Analyzer, "a", "taxonomy")
}
