// Package taxonomy is a fixture stub of the root package's failure
// taxonomy (errors.go): a named type with Fail* constants and the label*
// string constants carrying the stable response/metrics labels. The
// String switch is exhaustive and the label literals sit in their
// declarations — this package itself must stay diagnostic-free.
package taxonomy

type FailureKind int

const (
	FailNone FailureKind = iota
	FailIterLimit
	FailSingular
)

const (
	labelIterLimit = "iteration-limit"
	labelSingular  = "singular-basis"
)

func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return ""
	case FailIterLimit:
		return labelIterLimit
	case FailSingular:
		return labelSingular
	}
	return ""
}
