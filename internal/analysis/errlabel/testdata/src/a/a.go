// Package a exercises errlabel as a taxonomy consumer: flagging and
// non-flagging cases.
package a

import "taxonomy"

func exhaustive(k taxonomy.FailureKind) string {
	switch k {
	case taxonomy.FailNone:
		return "none"
	case taxonomy.FailIterLimit, taxonomy.FailSingular:
		return k.String()
	}
	return ""
}

func missingCases(k taxonomy.FailureKind) int {
	switch k { // want `switch over taxonomy\.FailureKind is not exhaustive: missing FailNone, FailSingular`
	case taxonomy.FailIterLimit:
		return 1
	}
	return 0
}

func defaultDoesNotSubstitute(k taxonomy.FailureKind) int {
	switch k { // want `switch over taxonomy\.FailureKind is not exhaustive: missing FailSingular`
	case taxonomy.FailNone, taxonomy.FailIterLimit:
		return 1
	default:
		return 0
	}
}

func inlineLabel() string {
	return "iteration-limit" // want `string literal "iteration-limit" duplicates failure-taxonomy label constant labelIterLimit`
}

func labelInComparison(reason string) bool {
	return reason == "singular-basis" // want `duplicates failure-taxonomy label constant labelSingular`
}

func throughString(k taxonomy.FailureKind) string {
	return k.String()
}

func unrelatedStrings() string {
	return "not-a-label"
}

// otherTypeSwitchesAreFree: exhaustiveness only applies to taxonomies.
func otherTypeSwitchesAreFree(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
