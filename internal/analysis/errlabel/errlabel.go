// Package errlabel keeps the degradation-ladder failure taxonomy closed
// under extension. A taxonomy is a named type with two or more
// package-level Fail* constants (malsched.FailureKind); its stable
// response/metrics labels are the package-level label* string constants
// declared next to it (errors.go). Two rules:
//
//  1. Every switch over a taxonomy value must list every constant of the
//     type explicitly. A default clause does not substitute: the point is
//     that adding a FailX class breaks the build until its label and
//     metrics are wired, instead of silently falling through.
//  2. A string literal equal to a taxonomy label may appear only in the
//     label constant's own declaration. Everyone else goes through the
//     constants (FailureKind.String()), so a label typo'd in a response
//     or a metrics key cannot drift from the taxonomy.
//
// Labels are discovered from the current package and its direct imports,
// so the rules follow the taxonomy wherever it is consumed.
package errlabel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errlabel",
	Doc: "switches over the failure taxonomy must be exhaustive; " +
		"taxonomy label strings must come from the label* constants",
	Run: run,
}

var (
	failName  = regexp.MustCompile(`^Fail[A-Z]`)
	labelName = regexp.MustCompile(`^label[A-Z]`)
)

func run(pass *analysis.Pass) error {
	taxonomies, labels := discover(pass)
	for _, f := range pass.Files {
		checkSwitches(pass, f, taxonomies)
		if len(labels) > 0 {
			checkLiterals(pass, f, labels)
		}
	}
	return nil
}

// discover finds taxonomy types (named types with >= 2 package-level
// Fail* constants) and reserved label strings in the current package and
// its direct imports.
func discover(pass *analysis.Pass) (map[*types.TypeName][]*types.Const, map[string]string) {
	taxonomies := make(map[*types.TypeName][]*types.Const)
	labels := make(map[string]string) // literal value -> constant name
	scopes := []*types.Scope{pass.Pkg.Scope()}
	for _, imp := range pass.Pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		fails := make(map[*types.TypeName]int)
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			if failName.MatchString(name) {
				if named, ok := c.Type().(*types.Named); ok {
					fails[named.Obj()]++
				}
			}
		}
		for tn, n := range fails {
			if n < 2 {
				continue
			}
			// The switch must cover every constant of the type, Fail*
			// named or not.
			var consts []*types.Const
			for _, name := range scope.Names() {
				if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), tn.Type()) {
					consts = append(consts, c)
				}
			}
			taxonomies[tn] = consts
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || !labelName.MatchString(name) || c.Val().Kind() != constant.String {
					continue
				}
				labels[constant.StringVal(c.Val())] = name
			}
		}
	}
	return taxonomies, labels
}

func checkSwitches(pass *analysis.Pass, f *ast.File, taxonomies map[*types.TypeName][]*types.Const) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tagType := pass.TypesInfo.Types[sw.Tag].Type
		var all []*types.Const
		for tn, consts := range taxonomies {
			if types.Identical(tagType, tn.Type()) {
				all = consts
				break
			}
		}
		if all == nil {
			return true
		}
		covered := make(map[string]bool)
		for _, stmt := range sw.Body.List {
			for _, e := range stmt.(*ast.CaseClause).List {
				if obj := resolveConst(pass, e); obj != nil {
					covered[obj.Name()] = true
				}
			}
		}
		var missing []string
		for _, c := range all {
			if !covered[c.Name()] {
				missing = append(missing, c.Name())
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s (a default does not wire a new class's label/metrics)", tagType, strings.Join(missing, ", "))
		}
		return true
	})
}

func resolveConst(pass *analysis.Pass, e ast.Expr) *types.Const {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	}
	c, _ := obj.(*types.Const)
	return c
}

func checkLiterals(pass *analysis.Pass, f *ast.File, labels map[string]string) {
	declValues := labelDeclValues(f)
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || declValues[lit] {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if name, ok := labels[s]; ok {
			pass.Reportf(lit.Pos(), "string literal %q duplicates failure-taxonomy label constant %s; use the constant (or FailureKind.String) so labels cannot drift", s, name)
		}
		return true
	})
}

// labelDeclValues collects the literal value expressions of label*
// constant declarations — the one place the raw string may appear.
func labelDeclValues(f *ast.File) map[ast.Node]bool {
	vals := make(map[ast.Node]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if labelName.MatchString(name.Name) && i < len(vs.Values) {
					vals[ast.Unparen(vs.Values[i])] = true
				}
			}
		}
	}
	return vals
}
