// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on the repo's
// stdlib-only analysis framework.
//
// Fixtures live in a GOPATH-shaped tree, conventionally
// <analyzer>/testdata/src/<pkg>/*.go. A line expecting diagnostics
// carries a trailing comment with one quoted regexp per expected
// diagnostic:
//
//	ctx := context.Background() // want `context\.Background`
//	ok()                        // no comment: any diagnostic here fails
//
// Both `...`-quoted and "..."-quoted regexps are accepted. Every
// diagnostic must match a want on its line and every want must be
// matched, so fixtures double as flagging and non-flagging coverage.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"malsched/internal/analysis"
)

// One process-wide loader: fixture packages and their stdlib imports are
// type-checked once per test binary, not once per Run call.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

// Run loads each fixture package under srcRoot and reports any mismatch
// between the analyzer's diagnostics and the // want expectations.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loaderOnce.Do(func() { loader = analysis.NewLoader(".") })
	for _, path := range pkgPaths {
		pkg, err := loader.LoadFixture(srcRoot, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, diags)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *analysis.Pkg, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range quotedStrings(t, pos, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

// cutWant extracts the text after "want" in a `// want ...` comment.
func cutWant(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// quotedStrings parses a sequence of Go-quoted strings ("..." or `...`).
func quotedStrings(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Errorf("%s:%d: malformed want expectation %q", pos.Filename, pos.Line, s)
			return out
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			t.Errorf("%s:%d: malformed want string %q", pos.Filename, pos.Line, prefix)
			return out
		}
		out = append(out, unq)
		s = s[len(prefix):]
	}
	return out
}
