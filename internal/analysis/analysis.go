// Package analysis is a minimal, stdlib-only reimplementation of the core
// of golang.org/x/tools/go/analysis, carrying the repo's custom vet suite
// (cmd/malschedvet). The build environment pins a dependency-free module,
// so instead of importing x/tools this package provides the three pieces
// the analyzers need: an Analyzer/Pass/Diagnostic vocabulary mirroring the
// upstream API (so the analyzers port mechanically if the module ever
// takes the dependency), a package loader that type-checks the module and
// its stdlib dependencies from source (load.go), and the //malsched:
// directive comment machinery shared by all analyzers (directive.go).
//
// The analyzers themselves live in subpackages (ctxdetach, cancelpoll,
// retryafter, faulthook, noalloc, errlabel); DESIGN.md §10 is the catalog
// and the annotation contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run is called once per
// package with a fresh Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //malsched: annotation vocabulary.
	Name string
	// Doc is the one-paragraph description shown by cmd/malschedvet.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass is the unit of work handed to an Analyzer: one type-checked
// package plus reporting plumbing.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only, comments attached
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	directives  map[*ast.File]map[int][]Directive
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// File returns the syntax file containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Run executes the analyzer over the package and returns its diagnostics
// sorted by position.
func Run(a *Analyzer, pkg *Pkg) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	ds := pass.diagnostics
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		return ds[i].Pos.Column < ds[j].Pos.Column
	})
	return ds, nil
}
