package ctxdetach_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/ctxdetach"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", ctxdetach.Analyzer, "a")
}
