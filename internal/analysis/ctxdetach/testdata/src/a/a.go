// Package a exercises ctxdetach: flagging and non-flagging cases.
package a

import "context"

func flagged() context.Context {
	return context.Background() // want `context\.Background\(\) detaches`
}

func flaggedTODO() context.Context {
	ctx := context.TODO() // want `context\.TODO\(\) detaches`
	return ctx
}

func annotatedAbove() context.Context {
	//malsched:detach async job outlives its submitter
	return context.Background()
}

func annotatedTrailing() context.Context {
	return context.Background() //malsched:detach refine-behind lane is deliberately detached
}

func annotatedNoReason() context.Context {
	//malsched:detach
	return context.Background() // want `needs a reason`
}

func threaded(ctx context.Context) context.Context {
	return ctx
}

// notTheRealContext pins that only the real context package triggers.
type fakeContext struct{}

func (fakeContext) Background() int { return 0 }

func lookalike() int {
	var context fakeContext
	return context.Background()
}
