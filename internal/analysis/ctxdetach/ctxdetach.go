// Package ctxdetach flags context.Background() and context.TODO() calls:
// inside the request-serving packages, a detached context silently breaks
// cancellation end-to-end (the PR-8 bug class — v2.go once solved on
// context.Background and kept burning a worker after the client hung up).
// Deliberately detached work (accepted async jobs, refine-behind solves)
// is annotated at the call line:
//
//	//malsched:detach accepted job outlives its submitter
//	res, err := s.solveOne(context.Background(), &req)
//
// The annotation requires a reason so every detachment documents its
// contract. cmd/malschedvet runs this analyzer over the packages that
// serve or execute requests (internal/server, internal/engine).
package ctxdetach

import (
	"go/ast"
	"go/types"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxdetach",
	Doc: "flags context.Background()/context.TODO() in request paths " +
		"unless annotated //malsched:detach <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "context" {
				return true
			}
			if d := pass.DirectiveAt(call.Pos(), "detach"); d != nil {
				if d.Args == "" {
					pass.Reportf(call.Pos(), "//malsched:detach needs a reason documenting why this work outlives the request")
				}
				return true
			}
			pass.Reportf(call.Pos(), "context.%s() detaches from the caller's context; thread ctx through, or annotate //malsched:detach <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil
}
