// Package retryafter enforces the shed-response contract: any function
// that writes an HTTP 429 or 503 must set the Retry-After header before
// that write. The chaos suite found this class twice (jobs-busy 503s on
// v1 and again on v2 shipping without the hint); loadgen and real clients
// key their backoff off the header, so a missing one turns polite sheds
// into tight retry storms.
//
// The check is positional within the enclosing function: a
// Header().Set("Retry-After", ...) (or Add) must appear textually before
// the call that carries the 429/503 status. Status arguments are found by
// constant folding, so http.StatusServiceUnavailable, a local constant,
// or a literal 503 all count. cmd/malschedvet runs this analyzer over
// internal/server.
package retryafter

import (
	"go/ast"
	"go/constant"
	"go/token"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "retryafter",
	Doc:  "429/503 responses must set the Retry-After header before the status write",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var headerSets []token.Pos
	type shed struct {
		pos    token.Pos
		status int64
	}
	var sheds []shed
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRetryAfterSet(pass, call) {
			headerSets = append(headerSets, call.Pos())
			return true
		}
		for _, arg := range call.Args {
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.Int {
				continue
			}
			if v, ok := constant.Int64Val(tv.Value); ok && (v == 429 || v == 503) {
				sheds = append(sheds, shed{call.Pos(), v})
			}
		}
		return true
	})
	for _, s := range sheds {
		ok := false
		for _, h := range headerSets {
			if h < s.pos {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(s.pos, "writes status %d without setting the Retry-After header first; sheds without a hint turn client backoff into a retry storm", s.status)
		}
	}
}

// isRetryAfterSet matches <expr>.Set("Retry-After", ...) and Add.
func isRetryAfterSet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") || len(call.Args) < 1 {
		return false
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	return tv.Value != nil && tv.Value.Kind() == constant.String &&
		constant.StringVal(tv.Value) == "Retry-After"
}
