// Package a exercises retryafter: flagging and non-flagging cases. The
// stub response writer mirrors net/http's shape; statuses resolve by
// constant folding, so named constants and literals both count.
package a

type header map[string][]string

func (h header) Set(k, v string) { h[k] = []string{v} }
func (h header) Add(k, v string) { h[k] = append(h[k], v) }

type respWriter struct{ h header }

func (w *respWriter) Header() header         { return w.h }
func (w *respWriter) WriteHeader(status int) {}

const (
	statusBusy     = 503
	statusTooMany  = 429
	statusOK       = 200
	statusNotFound = 404
)

func shedWithHint(w *respWriter) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(statusBusy)
}

func shedWithAdd(w *respWriter) {
	w.Header().Add("Retry-After", "1")
	w.WriteHeader(statusTooMany)
}

func shedNoHint(w *respWriter) {
	w.WriteHeader(statusBusy) // want `writes status 503 without setting the Retry-After header first`
}

func shedLiteral(w *respWriter) {
	w.WriteHeader(429) // want `writes status 429 without setting the Retry-After header first`
}

func hintTooLate(w *respWriter) {
	w.WriteHeader(503) // want `writes status 503 without setting the Retry-After header first`
	w.Header().Set("Retry-After", "1")
}

func wrongHeader(w *respWriter) {
	w.Header().Set("X-Backoff", "1")
	w.WriteHeader(503) // want `writes status 503 without setting the Retry-After header first`
}

func nonShedStatuses(w *respWriter) {
	w.WriteHeader(statusOK)
	w.WriteHeader(statusNotFound)
	w.WriteHeader(500)
}

// comparisonsAreNotWrites: 429/503 as comparison operands never flag.
func comparisonsAreNotWrites(status int) bool {
	return status == statusBusy || status == 429
}
