package retryafter_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/retryafter"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", retryafter.Analyzer, "a")
}
