// Package a exercises faulthook: flagging and non-flagging cases.
package a

// FaultLU is a well-formed hook: package-level, func-typed, nil default.
var FaultLU func() bool

// FaultArmed ships armed, which defeats the whole convention.
var FaultArmed func() bool = alwaysFire // want `fault hook FaultArmed must be nil by default`

func alwaysFire() bool { return true }

// Faulty is not a hook: Fault must be followed by an upper-case letter.
var Faulty func() bool = alwaysFire

// FaultCount is not a hook: not func-typed.
var FaultCount int = 3

func guardedAnd() bool {
	if FaultLU != nil && FaultLU() {
		return true
	}
	return false
}

func guardedIf() {
	if FaultLU != nil {
		_ = FaultLU()
	}
}

func unguarded() bool {
	return FaultLU() // want `call of fault hook FaultLU is not nil-guarded`
}

func guardOutsideClosure() func() bool {
	if FaultLU != nil {
		return func() bool {
			return FaultLU() // want `call of fault hook FaultLU is not nil-guarded`
		}
	}
	return nil
}

func armedInProduction() {
	FaultLU = alwaysFire // want `fault hook FaultLU assigned outside _test\.go`
}

func escapes() []func() bool {
	return []func() bool{FaultLU} // want `fault hook FaultLU escapes`
}

func nilComparisons() bool {
	return FaultLU == nil || FaultLU != nil
}
