// Package faulthook enforces the fault-injection hook convention of
// DESIGN.md §9: a production fault point is a package-level func-typed
// variable named Fault* that is nil by default, nil-guarded at every call
// site, and assigned only from _test.go files. Violations of each leg
// have bitten before — a hook left armed after a test corrupted later
// runs, and an unguarded call turns the zero value into a panic on the
// hot path. Because the analysis loads only non-test files, any
// assignment it can see at all is by definition a production assignment.
//
//	var FaultLUFactor func() bool              // ok: nil by default
//	if FaultLUFactor != nil && FaultLUFactor() // ok: guarded call
//	FaultLUFactor = alwaysFire                 // flagged: production arm
//	hooks = append(hooks, FaultLUFactor)       // flagged: hook escapes
package faulthook

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "faulthook",
	Doc: "fault-injection hooks (package-level func vars named Fault*) must be " +
		"nil by default, nil-guarded at call sites, and never assigned outside tests",
	Run: run,
}

var hookName = regexp.MustCompile(`^Fault[A-Z]`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkDecls(pass, f)
		parent := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if !isHook(obj) {
				return true
			}
			// For qualified references (pkg.FaultX) the use site is the
			// whole selector expression.
			ref := ast.Node(id)
			if sel, ok := parent[id].(*ast.SelectorExpr); ok && sel.Sel == id {
				ref = sel
			}
			switch p := parent[ref].(type) {
			case *ast.CallExpr:
				if p.Fun == ref {
					if !guarded(pass, parent, p, obj) {
						pass.Reportf(p.Pos(), "call of fault hook %s is not nil-guarded (guard with `if %s != nil`); the hook is nil outside chaos tests", obj.Name(), obj.Name())
					}
					return true
				}
			case *ast.BinaryExpr:
				if (p.Op == token.EQL || p.Op == token.NEQ) && (isNil(pass, p.X) || isNil(pass, p.Y)) {
					return true // nil check
				}
			case *ast.AssignStmt:
				for _, lhs := range p.Lhs {
					if lhs == ref {
						pass.Reportf(ref.Pos(), "fault hook %s assigned outside _test.go; hooks must stay nil in production and be armed only by tests", obj.Name())
						return true
					}
				}
			}
			pass.Reportf(ref.Pos(), "fault hook %s escapes (used as a value); hooks may only be called under a nil guard or compared against nil", obj.Name())
			return true
		})
	}
	return nil
}

// checkDecls flags package-level Fault* declarations with initializers.
func checkDecls(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			if len(vs.Values) == 0 {
				continue
			}
			for _, name := range vs.Names {
				if isHook(pass.TypesInfo.Defs[name]) {
					pass.Reportf(name.Pos(), "fault hook %s must be nil by default (declare without an initializer)", name.Name)
				}
			}
		}
	}
}

// isHook reports whether obj is a package-level func-typed var named Fault*.
func isHook(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !hookName.MatchString(v.Name()) {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}

// guarded reports whether call sits under a `hook != nil` check: either
// as the right operand of && whose left side checks the hook, or inside
// the body of an if whose condition checks it. The walk stops at function
// boundaries — a guard outside a closure does not cover the closure's
// body (the hook may be re-read after the guard ran).
func guarded(pass *analysis.Pass, parent map[ast.Node]ast.Node, call *ast.CallExpr, obj types.Object) bool {
	for cur, p := ast.Node(call), parent[call]; p != nil; cur, p = p, parent[p] {
		switch pn := p.(type) {
		case *ast.BinaryExpr:
			if pn.Op == token.LAND && cur == pn.Y && hasNilCheck(pass, pn.X, obj) {
				return true
			}
		case *ast.IfStmt:
			if cur == pn.Body && hasNilCheck(pass, pn.Cond, obj) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// hasNilCheck reports whether e contains `obj != nil` (or `nil != obj`).
func hasNilCheck(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ {
			return true
		}
		if (resolves(pass, b.X, obj) && isNil(pass, b.Y)) ||
			(resolves(pass, b.Y, obj) && isNil(pass, b.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func resolves(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e] == obj
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel] == obj
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// parentMap records each node's syntactic parent within f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parent := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}
