package faulthook_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/faulthook"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", faulthook.Analyzer, "a")
}
