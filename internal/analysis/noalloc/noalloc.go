// Package noalloc pins the allocation discipline of the warm solve
// paths: a function annotated //malsched:noalloc (last line of its doc
// comment) is rejected if its body contains an allocating construct. The
// warm paths earned single-digit allocs/op over several PRs and benchgate
// only notices a regression after it lands; this analyzer turns the
// discipline into a build-time error instead.
//
// Flagged constructs: fmt.* and errors.New calls, slice/map composite
// literals, make and new, closures (func literals), append onto a fresh
// slice (a literal or call result — growth the caller can never reuse),
// non-constant string concatenation, string<->[]byte/[]rune conversions,
// and interface boxing of non-pointer concrete values at call sites.
//
// The check is intraprocedural by design: calls into helpers that
// allocate on cold paths only (workspace grow(), fallbacks to the cold
// solver) stay legal, exactly like the amortized-zero contract the
// benchmarks measure. Annotate the leaf hot functions, not the
// orchestration above them.
package noalloc

import (
	"go/ast"
	"go/types"

	"malsched/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //malsched:noalloc must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.DirectiveAt(fn.Pos(), "noalloc") == nil {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in //malsched:noalloc function %s", fn.Name.Name)
			return false // its body is the closure's business
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map literal allocates in //malsched:noalloc function %s", fn.Name.Name)
			}
		case *ast.BinaryExpr:
			checkConcat(pass, fn, n)
		case *ast.CallExpr:
			checkCall(pass, fn, n)
		}
		return true
	})
}

// checkConcat flags non-constant string concatenation.
func checkConcat(pass *analysis.Pass, fn *ast.FuncDecl, b *ast.BinaryExpr) {
	if b.Op.String() != "+" {
		return
	}
	tv := pass.TypesInfo.Types[b]
	if tv.Value != nil { // folded at compile time
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
		pass.Reportf(b.Pos(), "string concatenation allocates in //malsched:noalloc function %s", fn.Name.Name)
	}
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Conversions: string <-> []byte/[]rune copy their operand.
	if fune := ast.Unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := info.Types[fune]; ok && tv.IsType() {
			if convAllocates(tv.Type, info.Types[call.Args[0]].Type) {
				pass.Reportf(call.Pos(), "string/byte-slice conversion allocates in //malsched:noalloc function %s", fn.Name.Name)
			}
			return
		}
	}
	// Builtins and well-known allocating packages.
	if obj := callee(info, call); obj != nil {
		switch obj := obj.(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in //malsched:noalloc function %s (reuse a workspace buffer)", fn.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in //malsched:noalloc function %s", fn.Name.Name)
			case "append":
				if len(call.Args) > 0 {
					switch ast.Unparen(call.Args[0]).(type) {
					case *ast.CompositeLit, *ast.CallExpr:
						pass.Reportf(call.Pos(), "append onto a fresh slice allocates in //malsched:noalloc function %s", fn.Name.Name)
					}
				}
			}
			return
		default:
			if pkg := obj.Pkg(); pkg != nil && obj.Parent() == pkg.Scope() &&
				(pkg.Path() == "fmt" || (pkg.Path() == "errors" && obj.Name() == "New")) {
				pass.Reportf(call.Pos(), "%s.%s allocates in //malsched:noalloc function %s", pkg.Name(), obj.Name(), fn.Name.Name)
				return
			}
		}
	}
	checkBoxing(pass, fn, call)
}

// checkBoxing flags arguments whose concrete value is boxed into an
// interface parameter. Pointers (and pointer-shaped types) fit an
// interface without allocating; constants are skipped as noise (small
// values are interned by the runtime).
func checkBoxing(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, ok := param.Underlying().(*types.Interface); !ok {
			continue
		}
		tv := pass.TypesInfo.Types[arg]
		if tv.Value != nil || tv.IsNil() {
			continue
		}
		if boxAllocates(tv.Type) {
			pass.Reportf(arg.Pos(), "boxing %s into interface parameter allocates in //malsched:noalloc function %s (pass a pointer or restructure)", tv.Type, fn.Name.Name)
		}
	}
}

func boxAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		// unsafe.Pointer is pointer-shaped; everything else boxes.
		return t.Underlying().(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}

// convAllocates reports whether converting from -> to copies memory:
// string <-> []byte / []rune in either direction.
func convAllocates(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	st, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	bt, ok := st.Elem().Underlying().(*types.Basic)
	return ok && (bt.Kind() == types.Byte || bt.Kind() == types.Rune ||
		bt.Kind() == types.Uint8 || bt.Kind() == types.Int32)
}

// callee resolves the called object for idents and selectors.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch funExpr := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[funExpr]
	case *ast.SelectorExpr:
		return info.Uses[funExpr.Sel]
	}
	return nil
}
