// Package a exercises noalloc: flagging and non-flagging cases.
package a

import "fmt"

type workspace struct {
	buf []int
	n   int
}

// hot is a well-behaved warm path: loops, arithmetic, reslicing and
// calls into helpers are all fine.
//
//malsched:noalloc
func hot(ws *workspace, xs []int) int {
	ws.buf = ws.buf[:0]
	t := 0
	for _, x := range xs {
		t += x
	}
	ws.n = t
	return helper(t)
}

// helper is unannotated: it may allocate freely even when called from a
// noalloc function (the amortized-zero contract is per function).
func helper(n int) int {
	tmp := make([]int, 0, n)
	return cap(tmp)
}

//malsched:noalloc
func sprint(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt\.Sprintf allocates`
}

//malsched:noalloc
func fresh(n int) []int {
	return make([]int, n) // want `make allocates`
}

//malsched:noalloc
func boxed() *int {
	return new(int) // want `new allocates`
}

//malsched:noalloc
func lit() []int {
	return []int{1, 2, 3} // want `slice/map literal allocates`
}

//malsched:noalloc
func litMap() map[string]int {
	return map[string]int{"a": 1} // want `slice/map literal allocates`
}

//malsched:noalloc
func structLitIsFine(n int) workspace {
	return workspace{n: n}
}

//malsched:noalloc
func clo(n int) func() int {
	return func() int { return n } // want `closure allocates`
}

//malsched:noalloc
func appendFresh(xs []int) []int {
	return append(fresh(0), xs...) // want `append onto a fresh slice allocates`
}

//malsched:noalloc
func appendReused(ws *workspace, x int) {
	ws.buf = append(ws.buf, x)
}

//malsched:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//malsched:noalloc
func concatConst() string {
	return "a" + "b"
}

//malsched:noalloc
func conv(bs []byte) string {
	return string(bs) // want `conversion allocates`
}

//malsched:noalloc
func box(x int) any {
	return sink(x) // want `boxing int into interface parameter allocates`
}

//malsched:noalloc
func boxPointerIsFine(ws *workspace) any {
	return sink(ws)
}

//malsched:noalloc
func boxConstIsSkipped() any {
	return sink(1)
}

func sink(v any) any { return v }

// cold has no annotation and allocates freely.
func cold() []int {
	return append(make([]int, 0), 1, 2, 3)
}
