package noalloc_test

import (
	"testing"

	"malsched/internal/analysis/analysistest"
	"malsched/internal/analysis/noalloc"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata/src", noalloc.Analyzer, "a")
}
