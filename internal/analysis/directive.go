package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one //malsched:<verb> [args] annotation comment. The
// vocabulary (DESIGN.md §10): detach, bounded, noalloc. Directives are
// written like //go: directives — no space after the slashes — and apply
// to the line they sit on and to the line immediately following their
// comment group, so both the trailing and the preceding-comment styles
// work:
//
//	//malsched:detach accepted job outlives its submitter
//	res, err := s.solveOne(context.Background(), &req)
//
//	go cleanup() //malsched:detach shutdown path, not a request
type Directive struct {
	Verb string // "detach", "bounded", "noalloc", ...
	Args string // free-form reason / arguments, may be empty
	Pos  token.Pos
}

const directivePrefix = "//malsched:"

// fileDirectives maps effective source line -> directives applying there.
func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	m := make(map[int][]Directive)
	for _, g := range f.Comments {
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, args, _ := strings.Cut(text, " ")
			d := Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}
			own := fset.Position(c.Pos()).Line
			m[own] = append(m[own], d)
			if next := fset.Position(g.End()).Line + 1; next != own {
				m[next] = append(m[next], d)
			}
		}
	}
	return m
}

// DirectiveAt returns the first //malsched:<verb> directive applying to
// the source line of pos, or nil. A directive applies to its own line and
// to the line immediately after its comment group (see Directive).
func (p *Pass) DirectiveAt(pos token.Pos, verb string) *Directive {
	f := p.File(pos)
	if f == nil {
		return nil
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]Directive)
	}
	m, ok := p.directives[f]
	if !ok {
		m = fileDirectives(p.Fset, f)
		p.directives[f] = m
	}
	for _, d := range m[p.Fset.Position(pos).Line] {
		if d.Verb == verb {
			return &d
		}
	}
	return nil
}
