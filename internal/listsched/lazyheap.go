package listsched

import (
	"fmt"

	"malsched/internal/allot"
	"malsched/internal/schedule"
)

// RunLazyHeap is the previous phase-2 scheduler, retained as a differential
// oracle: a ready heap of per-task entries whose cached starts are
// invalidated globally (by version stamp) on every commit and recomputed
// lazily at pop time. It places every task at exactly the same start as
// Run — the bucketed scheduler was built to be byte-identical to this one —
// but degrades to Theta(n^2 log n) queue churn when every commit moves
// every queued start (the independent_full adversarial shape). It always
// runs with fresh buffers; use Run/RunWith everywhere outside tests and
// benchmarks.
func RunLazyHeap(in *allot.Instance, alloc []int) (*schedule.Schedule, error) {
	if err := validate(in, alloc); err != nil {
		return nil, err
	}
	n := in.G.N()

	// lazyEntry is one READY task: start is its earliest feasible start as
	// of profile version stamp — exact when stamp is current, otherwise a
	// lower bound (commits only ever raise the profile).
	type lazyEntry struct {
		start float64
		task  int32
		stamp uint32
	}
	less := func(a, b lazyEntry) bool {
		if a.start != b.start {
			return a.start < b.start
		}
		return a.task < b.task
	}
	var heap []lazyEntry
	push := func(e lazyEntry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() lazyEntry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		//malsched:bounded heap sift-down walks one root-to-leaf path, depth <= log n
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				break
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
		return top
	}

	var prof schedule.Profile
	var version uint32
	indeg := make([]int32, n)
	ready := make([]float64, n)
	dur := make([]float64, n)
	s := &schedule.Schedule{M: in.M, Items: make([]schedule.Item, n)}
	for j := 0; j < n; j++ {
		indeg[j] = int32(len(in.G.Preds(j)))
		dur[j] = in.Tasks[j].Time(alloc[j])
		if indeg[j] == 0 {
			// Empty profile: the earliest fit at ready time 0 is 0 exactly.
			push(lazyEntry{start: 0, task: int32(j), stamp: version})
		}
	}

	nsched := 0
	for len(heap) > 0 {
		e := pop()
		j := int(e.task)
		if e.stamp != version {
			// Stale lower bound: recompute against the current profile and
			// requeue, resuming the walk from the stale start (the true
			// earliest fit is at least e.start).
			from := ready[j]
			if e.start > from {
				from = e.start
			}
			e.start = prof.EarliestFit(in.M, from, dur[j], alloc[j])
			e.stamp = version
			push(e)
			continue
		}
		it := schedule.Item{Task: j, Start: e.start, Duration: dur[j], Alloc: alloc[j]}
		s.Items[j] = it
		prof.Add(it.Start, it.End(), it.Alloc)
		version++
		nsched++
		end := it.End()
		for _, k := range in.G.Succs(j) {
			if end > ready[k] {
				ready[k] = end
			}
			if indeg[k]--; indeg[k] == 0 {
				st := prof.EarliestFit(in.M, ready[k], dur[k], alloc[k])
				push(lazyEntry{start: st, task: int32(k), stamp: version})
			}
		}
	}
	if nsched != n {
		// Unreachable after validate (the DAG is acyclic), kept as a guard.
		return nil, fmt.Errorf("listsched: no ready task (cycle?)")
	}
	return s, nil
}
