package listsched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"malsched/internal/allot"
	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/malleable"
)

func TestCapAllotment(t *testing.T) {
	got := CapAllotment([]int{1, 5, 3, 7}, 3)
	want := []int{1, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CapAllotment = %v, want %v", got, want)
			break
		}
	}
	// Degenerate inputs are clamped up to 1.
	if got := CapAllotment([]int{0}, 2); got[0] != 1 {
		t.Errorf("CapAllotment clamped 0 to %d, want 1", got[0])
	}
}

func unitTasks(n, m int) []malleable.Task {
	out := make([]malleable.Task, n)
	for i := range out {
		out[i] = malleable.Sequential("u", 1, m)
	}
	return out
}

func TestRunChainSequential(t *testing.T) {
	// Chain of 3 unit tasks: schedule must be back-to-back, makespan 3.
	in := &allot.Instance{G: gen.Chain(3), Tasks: unitTasks(3, 2), M: 2}
	s, err := Run(in, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(in.G); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); math.Abs(got-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3", got)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(s.Items[j].Start-float64(j)) > 1e-9 {
			t.Errorf("task %d starts at %v, want %d", j, s.Items[j].Start, j)
		}
	}
}

func TestRunIndependentPacks(t *testing.T) {
	// 4 independent unit tasks, each on 1 processor, m=2: two rounds,
	// makespan 2 (Graham list scheduling is tight here).
	in := &allot.Instance{G: gen.Independent(4), Tasks: unitTasks(4, 2), M: 2}
	s, err := Run(in, []int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); math.Abs(got-2) > 1e-9 {
		t.Errorf("makespan = %v, want 2", got)
	}
}

func TestRunWideTaskWaits(t *testing.T) {
	// Independent: one 2-processor task and one 1-processor long task on
	// m=2. LIST starts the zero-start candidate first; the wide task must
	// wait for full capacity.
	g := dag.New(2)
	in := &allot.Instance{
		G: g,
		Tasks: []malleable.Task{
			malleable.NewTask("wide", []float64{10, 2}),
			malleable.NewTask("long", []float64{5, 5}),
		},
		M: 2,
	}
	s, err := Run(in, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(in.G); err != nil {
		t.Fatal(err)
	}
	// Both candidates can start at 0; task 0 wins the tie (smaller index),
	// then task 1 starts when capacity frees at t=2.
	if s.Items[0].Start != 0 {
		t.Errorf("wide task starts at %v, want 0", s.Items[0].Start)
	}
	if math.Abs(s.Items[1].Start-2) > 1e-9 {
		t.Errorf("long task starts at %v, want 2", s.Items[1].Start)
	}
}

func TestRunRejectsBadAllotment(t *testing.T) {
	in := &allot.Instance{G: gen.Chain(2), Tasks: unitTasks(2, 2), M: 2}
	if _, err := Run(in, []int{1}); err == nil {
		t.Error("short allotment accepted")
	}
	if _, err := Run(in, []int{0, 1}); err == nil {
		t.Error("zero allotment accepted")
	}
	if _, err := Run(in, []int{3, 1}); err == nil {
		t.Error("oversized allotment accepted")
	}
}

// Property: LIST always yields a feasible schedule on random instances and
// never idles the whole machine while a ready task exists (checked
// indirectly via the Graham bound against the trivial certificates: Cmax <=
// L(alpha) + W(alpha)/m for single-processor allotments).
func TestRunFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(14)
		m := 1 + r.Intn(6)
		g := gen.ErdosDAG(n, r.Float64()*0.4, r)
		in := gen.Instance(g, gen.FamilyMixed, m, r)
		alloc := make([]int, n)
		for j := range alloc {
			alloc[j] = 1 + r.Intn(m)
		}
		s, err := Run(in, alloc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := s.Verify(in.G); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Graham-style sanity for unit allotments: when every task uses one
		// processor, Cmax <= L + W (weak but catches gross idling bugs).
		if m == 1 {
			total := 0.0
			for j := range in.Tasks {
				total += in.Tasks[j].Time(1)
			}
			if s.Makespan() > total+1e-6 {
				t.Logf("seed %d: single machine idles: %v > %v", seed, s.Makespan(), total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Errorf("LIST feasibility property failed: %v", err)
	}
}

// Graham bound for all-unit allotments: Cmax <= W/m + (1 - 1/m) L where L is
// the critical path and W the total work, the classical list-scheduling
// guarantee. LIST is a list scheduler, so the bound must hold when every
// allotment is 1.
func TestGrahamBoundUnitAllotments(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		m := 2 + rng.Intn(4)
		g := gen.ErdosDAG(n, 0.3, rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		alloc := make([]int, n)
		w := make([]float64, n)
		total := 0.0
		for j := range alloc {
			alloc[j] = 1
			w[j] = in.Tasks[j].Time(1)
			total += w[j]
		}
		length, _, _ := g.CriticalPath(w)
		s, err := Run(in, alloc)
		if err != nil {
			t.Fatal(err)
		}
		bound := total/float64(m) + (1-1/float64(m))*length
		if s.Makespan() > bound+1e-6 {
			t.Errorf("trial %d: Cmax=%v exceeds Graham bound %v", trial, s.Makespan(), bound)
		}
	}
}

func TestRunDetectsCycle(t *testing.T) {
	g := dag.New(2)
	g.MustEdge(0, 1)
	g.MustEdge(1, 0)
	in := &allot.Instance{G: g, Tasks: unitTasks(2, 2), M: 2}
	if _, err := Run(in, []int{1, 1}); err == nil {
		t.Error("cyclic instance accepted")
	}
}

func TestRunEmptyInstance(t *testing.T) {
	in := &allot.Instance{G: dag.New(0), M: 2}
	s, err := Run(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 0 {
		t.Errorf("empty schedule makespan = %v", s.Makespan())
	}
}
