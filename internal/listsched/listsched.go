// Package listsched implements the second phase of the two-phase algorithm:
// the variant of Graham's list scheduling shown in Table 1 of the paper
// (procedure LIST). Given the phase-1 allotment alpha' and the allotment
// parameter mu, every task's allotment is capped at mu processors
// (l_j = min{l'_j, mu}), and tasks are placed one at a time: among the READY
// tasks (all predecessors already scheduled), the task with the smallest
// earliest feasible starting time is scheduled next, never moving previously
// placed tasks (non-preemptive).
//
// The scheduler maintains the free-capacity profile incrementally (a
// schedule.Profile updated in place as items are committed) and keeps READY
// tasks in a priority queue keyed by their earliest feasible start, so each
// task's placement walks the busy-processor step function from its ready
// time instead of rescanning every placed item. The cost is
// O((n + E) log n + n*steps) — steps being the profile size — plus the
// queue maintenance for entries whose cached start a commit invalidates;
// on typical DAG workloads few entries are invalidated per commit and the
// total stays near-linear, while the adversarial extreme (every task
// allotted the whole machine, so each commit moves every queued start)
// degrades to Theta(n^2 log n) queue churn. Both regimes remain orders of
// magnitude below the reference implementation's rescans (RunReference,
// O(n^2) placed-item scans per task: ~700x slower on the saturated shape
// already at n=500 — see the independent_full scenarios of BenchmarkList
// and BenchmarkListReference — and ~2600x at n=1000). Both implementations place every task at the same start
// time whenever distinct event times of the instance are separated by more
// than the reference's 1e-9 capacity-check tolerance (the profile scheduler
// is exact; the reference blurs sub-eps gaps) — which holds for every real
// workload here and is enforced on random and canned instances by
// differential tests.
package listsched

import (
	"fmt"

	"malsched/internal/allot"
	"malsched/internal/schedule"
)

// CapAllotment returns the phase-2 allotment l_j = min{l'_j, mu}.
func CapAllotment(alpha []int, mu int) []int {
	out := make([]int, len(alpha))
	for j, l := range alpha {
		out[j] = min(l, mu)
		if out[j] < 1 {
			out[j] = 1
		}
	}
	return out
}

// entry is one READY task in the priority queue. start is its earliest
// feasible start time as of profile version stamp: exact when stamp equals
// the current version, and otherwise a lower bound, because committing an
// item only ever raises the profile and can only push starts later.
type entry struct {
	start float64
	task  int32
	stamp uint32
}

// Workspace holds the reusable scheduler state: the capacity profile, the
// ready queue and the per-task arrays. All of it is grown geometrically and
// reused across runs, so a warm RunWith does near-zero allocation beyond
// the returned schedule. A Workspace is owned by one goroutine at a time;
// it is not safe for concurrent use.
type Workspace struct {
	prof    schedule.Profile
	heap    []entry
	indeg   []int32
	ready   []float64
	dur     []float64
	version uint32
}

// NewWorkspace returns an empty workspace ready for RunWith. The zero
// value is also usable.
func NewWorkspace() *Workspace { return &Workspace{} }

func (ws *Workspace) reset(n int) {
	ws.prof.Reset()
	ws.heap = ws.heap[:0]
	ws.version = 0
	if cap(ws.indeg) < n {
		// Grow geometrically so a pooled workspace fed ever-larger
		// instances amortises the per-task arrays instead of reallocating
		// them on every run.
		c := 2 * cap(ws.indeg)
		if c < n {
			c = n
		}
		ws.indeg = make([]int32, n, c)
		ws.ready = make([]float64, n, c)
		ws.dur = make([]float64, n, c)
	}
	ws.indeg = ws.indeg[:n]
	ws.ready = ws.ready[:n]
	ws.dur = ws.dur[:n]
	for j := 0; j < n; j++ {
		ws.ready[j] = 0
	}
}

// less orders the ready queue by earliest start, ties broken by smaller
// task index — the same deterministic rule the reference implementation
// applies when scanning tasks in index order.
func less(a, b entry) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	return a.task < b.task
}

func (ws *Workspace) push(e entry) {
	ws.heap = append(ws.heap, e)
	h := ws.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (ws *Workspace) pop() entry {
	h := ws.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	ws.heap = h[:last]
	h = ws.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// validate checks the allotment vector and the precedence graph, shared by
// Run and RunReference.
func validate(in *allot.Instance, alloc []int) error {
	n := in.G.N()
	if len(alloc) != n {
		return fmt.Errorf("listsched: allotment length %d != n=%d", len(alloc), n)
	}
	for j, l := range alloc {
		if l < 1 || l > in.M {
			return fmt.Errorf("listsched: allotment %d for task %d out of [1,%d]", l, j, in.M)
		}
	}
	return in.G.Validate()
}

// Run executes LIST: it schedules every task of the instance with the given
// (already capped) allotment and returns a feasible schedule. It implements
// Table 1 of the paper with deterministic tie-breaking (smaller task index
// first).
func Run(in *allot.Instance, alloc []int) (*schedule.Schedule, error) {
	return RunWith(in, alloc, nil)
}

// RunWith is Run with a reusable workspace: the capacity profile, ready
// queue and per-task buffers live in ws and are reused across calls (a nil
// ws runs with fresh buffers). The returned schedule never aliases
// workspace memory.
func RunWith(in *allot.Instance, alloc []int, ws *Workspace) (*schedule.Schedule, error) {
	if err := validate(in, alloc); err != nil {
		return nil, err
	}
	n := in.G.N()
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.reset(n)

	s := &schedule.Schedule{M: in.M, Items: make([]schedule.Item, n)}
	for j := 0; j < n; j++ {
		ws.indeg[j] = int32(len(in.G.Preds(j)))
		ws.dur[j] = in.Tasks[j].Time(alloc[j])
		if ws.indeg[j] == 0 {
			// Empty profile: the earliest fit at ready time 0 is 0 exactly.
			ws.push(entry{start: 0, task: int32(j), stamp: ws.version})
		}
	}

	nsched := 0
	for len(ws.heap) > 0 {
		e := ws.pop()
		j := int(e.task)
		if e.stamp != ws.version {
			// Stale lower bound: recompute against the current profile and
			// requeue. Because stale keys never overestimate, a fresh entry
			// at the top of the queue is the true minimum — the task the
			// reference implementation's full rescan would select. The walk
			// resumes from the stale start rather than the ready time: the
			// true earliest fit is at least e.start (commits only raise the
			// profile), so the already-known-busy prefix is skipped.
			from := ws.ready[j]
			if e.start > from {
				from = e.start
			}
			e.start = ws.prof.EarliestFit(in.M, from, ws.dur[j], alloc[j])
			e.stamp = ws.version
			ws.push(e)
			continue
		}
		it := schedule.Item{Task: j, Start: e.start, Duration: ws.dur[j], Alloc: alloc[j]}
		s.Items[j] = it
		ws.prof.Add(it.Start, it.End(), it.Alloc)
		ws.version++
		nsched++
		end := it.End()
		for _, k := range in.G.Succs(j) {
			if end > ws.ready[k] {
				ws.ready[k] = end
			}
			if ws.indeg[k]--; ws.indeg[k] == 0 {
				st := ws.prof.EarliestFit(in.M, ws.ready[k], ws.dur[k], alloc[k])
				ws.push(entry{start: st, task: int32(k), stamp: ws.version})
			}
		}
	}
	if nsched != n {
		// Unreachable after validate (the DAG is acyclic), kept as a guard.
		return nil, fmt.Errorf("listsched: no ready task (cycle?)")
	}
	return s, nil
}
