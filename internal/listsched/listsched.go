// Package listsched implements the second phase of the two-phase algorithm:
// the variant of Graham's list scheduling shown in Table 1 of the paper
// (procedure LIST). Given the phase-1 allotment alpha' and the allotment
// parameter mu, every task's allotment is capped at mu processors
// (l_j = min{l'_j, mu}), and tasks are placed one at a time: among the READY
// tasks (all predecessors already scheduled), the task with the smallest
// earliest feasible starting time is scheduled next, never moving previously
// placed tasks (non-preemptive).
//
// The scheduler maintains the busy-processor profile incrementally (a
// schedule.Profile over a tiered, chunked timeline) and keeps READY tasks in
// a calendar queue keyed by their cached earliest feasible start: one bucket
// per distinct start time with a min-heap of bucket keys on top, and inside
// each bucket the tasks grouped by (duration, allotment) equivalence class,
// each group a min-heap of task indices. Cached starts are lower bounds
// (committing an item only ever raises the profile), so the queue reproduces
// the (start, task-index) selection of the reference implementation exactly:
// the head is re-verified against the current profile before every commit.
//
// The grouping is what makes re-verification cheap. Tasks of one class are
// interchangeable to EarliestFit, so one probe settles a whole group: it
// either commits the group's smallest index at the bucket key or moves the
// entire group — an O(1) slice splice, not a per-task reshuffle — to its
// exact new start. Each bucket also keeps conservative min-duration and
// min-allotment aggregates, so a bucket whose easiest member cannot start at
// its key advances wholesale without touching any group. A commit therefore
// touches only the buckets its profile raise actually shifted. The previous
// per-entry lazy heap (retained as RunLazyHeap) recomputed one task per pop:
// on shapes where every commit moves every queued start — independent tasks
// allotted the whole machine, Theta(n^2 log n) there; mixed allotments from
// a bounded class set, quadratic per-task churn — the calendar queue does
// one bucket move or one group splice instead, O((n + E + B log n)) with B
// the number of group moves (B is one per commit on the saturated shape, and
// bounded by distinct classes per congestion region on mixed shapes). When
// every task has a distinct (duration, allotment) pair the groups degenerate
// to singletons and the behaviour matches the lazy heap. Both
// implementations place every task at the same start time whenever distinct
// event times of the instance are separated by more than the reference's
// 1e-9 capacity-check tolerance (the profile scheduler is exact; the
// reference blurs sub-eps gaps) — which holds for every real workload here
// and is enforced on random and canned instances by differential tests.
package listsched

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"malsched/internal/allot"
	"malsched/internal/cancelflag"
	"malsched/internal/schedule"
)

// CapAllotment returns the phase-2 allotment l_j = min{l'_j, mu}.
func CapAllotment(alpha []int, mu int) []int {
	out := make([]int, len(alpha))
	for j, l := range alpha {
		out[j] = min(l, mu)
		if out[j] < 1 {
			out[j] = 1
		}
	}
	return out
}

// classKey identifies an equivalence class of tasks for EarliestFit: two
// READY tasks with the same duration and allotment have the same earliest
// feasible start from any common lower bound.
type classKey struct {
	dur  float64
	need int32
}

// group is all tasks of one class filed under one bucket, a min-heap by
// task index. When stamp equals the workspace commit epoch the bucket key
// is the exact earliest start of every member; otherwise it is a lower
// bound.
type group struct {
	class int32
	stamp uint32
	tasks []int32
}

// bucket is one rung of the calendar queue: every READY task whose cached
// earliest start is key, as class groups. minDur/minNeed are conservative
// aggregates — lower bounds over the members, tightened on arrival and
// never recomputed on removal — valid for wholesale advancing because
// EarliestFit is monotone in both duration and allotment. advT records the
// commit epoch of the bucket's last wholesale probe, so each bucket is
// probed at most once per commit.
//
// Groups live in stable slots and gheap orders the slot ids as a min-heap
// by group head (smallest task index), with pos tracking each slot's heap
// position. Stable ids keep the class-lookup map (gpos) untouched by heap
// sifts, and sifts themselves swap int32s; finding the next candidate
// group is O(1) where a flat scan over frontier buckets holding hundreds
// of classes was the dominant cost.
type bucket struct {
	key     float64
	minDur  float64
	minNeed int32
	advT    uint32
	live    bool
	slots   []group
	free    []int32
	gheap   []int32
	pos     []int32 // pos[slot] = index into gheap
}

// handle is one entry of the bucket-key min-heap. Handles are invalidated
// lazily: a handle is stale when its bucket died or moved to another key
// (live buckets have unique keys, so key equality identifies the match).
type handle struct {
	key float64
	b   int32
}

// Workspace holds the reusable scheduler state: the capacity profile, the
// calendar queue and the per-task arrays. All of it is flat int32/float64
// storage grown geometrically and reused across runs, so a warm RunWith
// does near-zero allocation beyond the returned schedule. A Workspace is
// owned by one goroutine at a time; it is not safe for concurrent use.
type Workspace struct {
	// Cancel, when non-nil, is polled every cancelCheckEvery loop
	// iterations of RunWith and aborts the run with
	// cancelflag.ErrCanceled once set (the phase-2 half of end-to-end
	// solve cancellation; phase 1 polls the same flag per pivot).
	Cancel *cancelflag.Flag

	prof  schedule.Profile
	indeg []int32
	ready []float64
	dur   []float64

	classKeys map[classKey]int32
	classDur  []float64
	classNeed []int32

	buckets []bucket
	used    int32 // buckets handed out since reset (freeb aside)
	freeb   []int32
	byKey   map[float64]int32
	gpos    map[int64]int32 // bucket<<32|class -> index into bucket.groups
	handles []handle
	pool    [][]int32 // recycled group task heaps
	curT    uint32
}

// NewWorkspace returns an empty workspace ready for RunWith. The zero
// value is also usable.
func NewWorkspace() *Workspace { return &Workspace{} }

func (ws *Workspace) reset(n int) {
	ws.prof.Reset()
	for i := int32(0); i < ws.used; i++ {
		b := &ws.buckets[i]
		for _, si := range b.gheap {
			ws.pool = append(ws.pool, b.slots[si].tasks[:0])
		}
		for si := range b.slots {
			b.slots[si] = group{}
		}
		b.slots = b.slots[:0]
		b.free = b.free[:0]
		b.gheap = b.gheap[:0]
		b.pos = b.pos[:0]
		b.live = false
	}
	ws.used = 0
	ws.freeb = ws.freeb[:0]
	ws.handles = ws.handles[:0]
	ws.classDur = ws.classDur[:0]
	ws.classNeed = ws.classNeed[:0]
	if ws.byKey == nil {
		ws.byKey = make(map[float64]int32)
		ws.gpos = make(map[int64]int32)
		ws.classKeys = make(map[classKey]int32)
	} else {
		clear(ws.byKey)
		clear(ws.gpos)
		clear(ws.classKeys)
	}
	ws.curT = 0
	if cap(ws.indeg) < n {
		// Grow geometrically so a pooled workspace fed ever-larger
		// instances amortises the per-task arrays instead of reallocating
		// them on every run.
		c := 2 * cap(ws.indeg)
		if c < n {
			c = n
		}
		ws.indeg = make([]int32, n, c)
		ws.ready = make([]float64, n, c)
		ws.dur = make([]float64, n, c)
	}
	ws.indeg = ws.indeg[:n]
	ws.ready = ws.ready[:n]
	ws.dur = ws.dur[:n]
	for j := 0; j < n; j++ {
		ws.ready[j] = 0
	}
}

// normKey folds -0.0 into +0.0 so float64 map keys compare like the float
// values do.
func normKey(k float64) float64 {
	if k == 0 {
		return 0
	}
	return k
}

func gposKey(bi, class int32) int64 { return int64(bi)<<32 | int64(class) }

// classID interns a (duration, allotment) class.
func (ws *Workspace) classID(dur float64, need int32) int32 {
	ck := classKey{dur, need}
	if c, ok := ws.classKeys[ck]; ok {
		return c
	}
	c := int32(len(ws.classDur))
	ws.classKeys[ck] = c
	ws.classDur = append(ws.classDur, dur)
	ws.classNeed = append(ws.classNeed, need)
	return c
}

// newBucket hands out a dead-pool or fresh bucket keyed k, with aggregates
// primed for min-tightening by arrivals.
func (ws *Workspace) newBucket(k float64) int32 {
	var bi int32
	if n := len(ws.freeb); n > 0 {
		bi = ws.freeb[n-1]
		ws.freeb = ws.freeb[:n-1]
	} else {
		if int(ws.used) == len(ws.buckets) {
			ws.buckets = append(ws.buckets, bucket{})
		}
		bi = ws.used
		ws.used++
	}
	b := &ws.buckets[bi]
	b.key = k
	b.minDur = math.Inf(1)
	b.minNeed = math.MaxInt32
	b.advT = ws.curT
	b.live = true
	b.slots = b.slots[:0]
	b.free = b.free[:0]
	b.gheap = b.gheap[:0]
	b.pos = b.pos[:0]
	return bi
}

// siftUp restores the group heap upward from heap index hi.
func siftUp(b *bucket, hi int) {
	for hi > 0 {
		parent := (hi - 1) / 2
		if b.slots[b.gheap[hi]].tasks[0] >= b.slots[b.gheap[parent]].tasks[0] {
			break
		}
		b.gheap[hi], b.gheap[parent] = b.gheap[parent], b.gheap[hi]
		b.pos[b.gheap[hi]] = int32(hi)
		b.pos[b.gheap[parent]] = int32(parent)
		hi = parent
	}
}

// siftDown restores the group heap downward from heap index hi.
//
//malsched:noalloc
func siftDown(b *bucket, hi int) {
	//malsched:bounded heap sift-down walks one root-to-leaf path, depth <= log n
	for {
		l, r := 2*hi+1, 2*hi+2
		smallest := hi
		if l < len(b.gheap) && b.slots[b.gheap[l]].tasks[0] < b.slots[b.gheap[smallest]].tasks[0] {
			smallest = l
		}
		if r < len(b.gheap) && b.slots[b.gheap[r]].tasks[0] < b.slots[b.gheap[smallest]].tasks[0] {
			smallest = r
		}
		if smallest == hi {
			break
		}
		b.gheap[hi], b.gheap[smallest] = b.gheap[smallest], b.gheap[hi]
		b.pos[b.gheap[hi]] = int32(hi)
		b.pos[b.gheap[smallest]] = int32(smallest)
		hi = smallest
	}
}

// addSlot files group g in a fresh slot of b and pushes it onto the group
// heap, returning the slot id.
func addSlot(b *bucket, g group) int32 {
	var si int32
	if n := len(b.free); n > 0 {
		si = b.free[n-1]
		b.free = b.free[:n-1]
		b.slots[si] = g
	} else {
		si = int32(len(b.slots))
		b.slots = append(b.slots, g)
		b.pos = append(b.pos, 0)
	}
	b.gheap = append(b.gheap, si)
	b.pos[si] = int32(len(b.gheap) - 1)
	siftUp(b, len(b.gheap)-1)
	return si
}

// dropSlot detaches slot si from b's group heap and frees the slot; the
// caller has already copied the group out.
func dropSlot(b *bucket, si int32) {
	hi := int(b.pos[si])
	last := len(b.gheap) - 1
	if hi != last {
		b.gheap[hi] = b.gheap[last]
		b.pos[b.gheap[hi]] = int32(hi)
	}
	b.gheap = b.gheap[:last]
	if hi < last {
		siftDown(b, hi)
		siftUp(b, hi)
	}
	b.slots[si] = group{}
	b.free = append(b.free, si)
}

// bucketAt returns the live bucket keyed k, creating (and publishing a
// handle for) one if needed.
func (ws *Workspace) bucketAt(k float64) int32 {
	k = normKey(k)
	if bi, ok := ws.byKey[k]; ok {
		return bi
	}
	bi := ws.newBucket(k)
	ws.byKey[k] = bi
	ws.pushHandle(handle{key: k, b: bi})
	return bi
}

// kill retires an emptied bucket.
func (ws *Workspace) kill(bi int32) {
	b := &ws.buckets[bi]
	b.live = false
	delete(ws.byKey, b.key)
	ws.freeb = append(ws.freeb, bi)
}

// pushHandle inserts a bucket-key handle into the min-heap.
func (ws *Workspace) pushHandle(h handle) {
	ws.handles = append(ws.handles, h)
	hs := ws.handles
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hs[i].key >= hs[parent].key {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
}

func (ws *Workspace) popHandle() {
	hs := ws.handles
	last := len(hs) - 1
	hs[0] = hs[last]
	ws.handles = hs[:last]
	hs = ws.handles
	i := 0
	//malsched:bounded heap sift-down walks one root-to-leaf path, depth <= log n
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(hs) && hs[l].key < hs[smallest].key {
			smallest = l
		}
		if r < len(hs) && hs[r].key < hs[smallest].key {
			smallest = r
		}
		if smallest == i {
			break
		}
		hs[i], hs[smallest] = hs[smallest], hs[i]
		i = smallest
	}
}

// pushTask inserts task j into a group's index-ordered min-heap.
func pushTask(tasks []int32, j int32) []int32 {
	tasks = append(tasks, j)
	i := len(tasks) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if tasks[i] >= tasks[parent] {
			break
		}
		tasks[i], tasks[parent] = tasks[parent], tasks[i]
		i = parent
	}
	return tasks
}

func popTask(tasks []int32) []int32 {
	last := len(tasks) - 1
	tasks[0] = tasks[last]
	tasks = tasks[:last]
	i := 0
	//malsched:bounded heap sift-down walks one root-to-leaf path, depth <= log n
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(tasks) && tasks[l] < tasks[smallest] {
			smallest = l
		}
		if r < len(tasks) && tasks[r] < tasks[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		tasks[i], tasks[smallest] = tasks[smallest], tasks[i]
		i = smallest
	}
	return tasks
}

// insertTask files a newly READY task under its freshly computed exact
// start k. Joining a group re-certifies it: a window at k fits the class
// now, and every member's cached bound is k, so the whole group is exact.
func (ws *Workspace) insertTask(j int32, k float64, need int32) {
	c := ws.classID(ws.dur[j], need)
	bi := ws.bucketAt(k)
	b := &ws.buckets[bi]
	if d := ws.classDur[c]; d < b.minDur {
		b.minDur = d
	}
	if need < b.minNeed {
		b.minNeed = need
	}
	pk := gposKey(bi, c)
	if si, ok := ws.gpos[pk]; ok {
		g := &b.slots[si]
		g.tasks = pushTask(g.tasks, j)
		g.stamp = ws.curT
		if g.tasks[0] == j {
			siftUp(b, int(b.pos[si])) // head decreased
		}
		return
	}
	var ts []int32
	if n := len(ws.pool); n > 0 {
		ts = ws.pool[n-1]
		ws.pool = ws.pool[:n-1]
	}
	ws.gpos[pk] = addSlot(b, group{class: c, stamp: ws.curT, tasks: append(ts, j)})
}

// removeGroup detaches the group in slot si from bucket bi (the bucket's
// aggregates stay conservatively small) and returns it.
func (ws *Workspace) removeGroup(bi, si int32) group {
	b := &ws.buckets[bi]
	g := b.slots[si]
	delete(ws.gpos, gposKey(bi, g.class))
	dropSlot(b, si)
	return g
}

// addGroup files group g under bucket bi, splicing it in whole or merging
// (smaller heap into larger) with the bucket's existing group of the same
// class. exact reports that g's members are known to start exactly at the
// bucket key; merging with an exact side certifies both — the class fits at
// the key now, and every member's cached bound is at least the key.
func (ws *Workspace) addGroup(bi int32, g group, exact bool) {
	b := &ws.buckets[bi]
	if d := ws.classDur[g.class]; d < b.minDur {
		b.minDur = d
	}
	if nd := ws.classNeed[g.class]; nd < b.minNeed {
		b.minNeed = nd
	}
	pk := gposKey(bi, g.class)
	if si, ok := ws.gpos[pk]; ok {
		dst := &b.slots[si]
		exact = exact || dst.stamp == ws.curT
		prevHead := dst.tasks[0]
		small, big := g.tasks, dst.tasks
		if len(small) > len(big) {
			small, big = big, small
		}
		for _, t := range small {
			big = pushTask(big, t)
		}
		dst.tasks = big
		ws.pool = append(ws.pool, small[:0])
		if exact {
			dst.stamp = ws.curT
		}
		if dst.tasks[0] != prevHead {
			siftUp(b, int(b.pos[si])) // head decreased
		}
		return
	}
	if exact {
		g.stamp = ws.curT
	}
	ws.gpos[pk] = addSlot(b, g)
}

// moveBucket advances bucket bi wholesale to key k (> its current key):
// every cached start in it is raised to k, still a valid lower bound
// because the wholesale probe used the bucket's aggregate lower bounds.
// Without a bucket at k this is an O(1) rekey.
func (ws *Workspace) moveBucket(bi int32, k float64) {
	k = normKey(k)
	b := &ws.buckets[bi]
	delete(ws.byKey, b.key)
	if di, ok := ws.byKey[k]; ok {
		for len(b.gheap) > 0 {
			// Detaching the heap's last entry keeps every drop O(1).
			si := b.gheap[len(b.gheap)-1]
			ws.addGroup(di, ws.removeGroup(bi, si), false)
		}
		b.live = false
		ws.freeb = append(ws.freeb, bi)
		return
	}
	b.key = k
	ws.byKey[k] = bi
	ws.pushHandle(handle{key: k, b: bi})
}

// popHead removes the head task of the group in slot si of bucket bi,
// retiring the group and the bucket as they empty; died reports that the
// bucket was killed (its top-of-heap handle is the caller's to pop).
func (ws *Workspace) popHead(bi, si int32) (j int32, died bool) {
	b := &ws.buckets[bi]
	g := &b.slots[si]
	j = g.tasks[0]
	g.tasks = popTask(g.tasks)
	if len(g.tasks) == 0 {
		gg := ws.removeGroup(bi, si)
		ws.pool = append(ws.pool, gg.tasks[:0])
		if len(b.gheap) == 0 {
			ws.kill(bi)
			return j, true
		}
	} else {
		siftDown(b, int(b.pos[si])) // head increased
	}
	return j, false
}

// validate checks the allotment vector and the precedence graph, shared by
// Run, RunLazyHeap and RunReference.
func validate(in *allot.Instance, alloc []int) error {
	n := in.G.N()
	if len(alloc) != n {
		return fmt.Errorf("listsched: allotment length %d != n=%d", len(alloc), n)
	}
	for j, l := range alloc {
		if l < 1 || l > in.M {
			return fmt.Errorf("listsched: allotment %d for task %d out of [1,%d]", l, j, in.M)
		}
	}
	return in.G.Validate()
}

// parallelPrepMin is the task count from which the initial per-task pass
// (in-degrees and allotted durations) fans out over spare processors.
const parallelPrepMin = 100_000

// prep fills indeg and dur for all tasks, in parallel past parallelPrepMin
// when processors are spare. Both fills are pure per-task reads, so the
// result is identical either way.
func (ws *Workspace) prep(in *allot.Instance, alloc []int) {
	n := in.G.N()
	fill := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			ws.indeg[j] = int32(len(in.G.Preds(j)))
			ws.dur[j] = in.Tasks[j].Time(alloc[j])
		}
	}
	procs := runtime.GOMAXPROCS(0)
	if n < parallelPrepMin || procs < 2 {
		fill(0, n)
		return
	}
	if procs > 8 {
		procs = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		lo, hi := w*n/procs, (w+1)*n/procs
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill(lo, hi)
		}()
	}
	wg.Wait()
}

// Run executes LIST: it schedules every task of the instance with the given
// (already capped) allotment and returns a feasible schedule. It implements
// Table 1 of the paper with deterministic tie-breaking (smaller task index
// first).
func Run(in *allot.Instance, alloc []int) (*schedule.Schedule, error) {
	return RunWith(in, alloc, nil)
}

// RunWith is Run with a reusable workspace: the capacity profile, calendar
// queue and per-task buffers live in ws and are reused across calls (a nil
// ws runs with fresh buffers). The returned schedule never aliases
// workspace memory.
func RunWith(in *allot.Instance, alloc []int, ws *Workspace) (*schedule.Schedule, error) {
	if err := validate(in, alloc); err != nil {
		return nil, err
	}
	n := in.G.N()
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.reset(n)
	ws.prep(in, alloc)

	s := &schedule.Schedule{M: in.M, Items: make([]schedule.Item, n)}
	for j := 0; j < n; j++ {
		// Sources enter the (empty-profile) queue at start 0 exactly.
		// Ascending order keeps every pushTask an O(1) append: the new
		// element is never smaller than its heap parent.
		if ws.indeg[j] == 0 {
			ws.insertTask(int32(j), 0, int32(alloc[j]))
		}
	}

	// cancelCheckEvery spaces the cancellation checkpoints: commits run
	// ~1 µs warm, so 1024 iterations bound abort latency near a
	// millisecond while keeping the check off the per-commit profile.
	const cancelCheckEvery = 1024
	nsched := 0
	for spins := 0; nsched < n && len(ws.handles) > 0; spins++ {
		if spins%cancelCheckEvery == 0 && ws.Cancel.Canceled() {
			return nil, cancelflag.ErrCanceled
		}
		h := ws.handles[0]
		bi := h.b
		b := &ws.buckets[bi]
		if !b.live || b.key != h.key {
			ws.popHandle() // stale: bucket died or moved
			continue
		}
		k := b.key

		commitSi := int32(-1)
		if last, ok := ws.prof.LastTime(); !ok || k >= last {
			// The profile is empty from k on: every member of every group
			// fits at k exactly; the smallest head commits.
			commitSi = b.gheap[0]
		} else {
			if b.advT != ws.curT {
				// One wholesale probe per bucket per epoch: if even the
				// easiest member (shortest duration, smallest allotment)
				// cannot start at k, the whole bucket advances at once.
				b.advT = ws.curT
				if st := ws.prof.EarliestFit(in.M, k, b.minDur, int(b.minNeed)); st > k {
					ws.popHandle()
					ws.moveBucket(bi, st)
					continue
				}
			}
			si := b.gheap[0]
			g := &b.slots[si]
			if g.stamp == ws.curT {
				commitSi = si // certified this epoch: k is exact
			} else {
				// One probe settles the whole class: commit its head at k,
				// or splice the group to its exact new start. Moved-away
				// groups did not fit at k, so the next head is still the
				// smallest index that can start at k.
				st := ws.prof.EarliestFit(in.M, k, ws.classDur[g.class], int(ws.classNeed[g.class]))
				if st == k {
					g.stamp = ws.curT
					commitSi = si
				} else {
					gg := ws.removeGroup(bi, si)
					if len(b.gheap) == 0 {
						ws.popHandle()
						ws.kill(bi)
					}
					ws.addGroup(ws.bucketAt(st), gg, true)
					continue
				}
			}
		}

		// Commit the head at k: it is the global minimum (start, index).
		j, died := ws.popHead(bi, commitSi)
		if died {
			ws.popHandle()
		}
		it := schedule.Item{Task: int(j), Start: k, Duration: ws.dur[j], Alloc: alloc[j]}
		s.Items[j] = it
		ws.prof.Add(it.Start, it.End(), it.Alloc)
		ws.curT++
		nsched++
		end := it.End()
		for _, succ := range in.G.Succs(int(j)) {
			if end > ws.ready[succ] {
				ws.ready[succ] = end
			}
			if ws.indeg[succ]--; ws.indeg[succ] == 0 {
				st := ws.prof.EarliestFit(in.M, ws.ready[succ], ws.dur[succ], alloc[succ])
				ws.insertTask(int32(succ), st, int32(alloc[succ]))
			}
		}
	}
	if nsched != n {
		// Unreachable after validate (the DAG is acyclic), kept as a guard.
		return nil, fmt.Errorf("listsched: no ready task (cycle?)")
	}
	return s, nil
}
