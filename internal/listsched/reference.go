package listsched

import (
	"fmt"
	"math"
	"sort"

	"malsched/internal/allot"
	"malsched/internal/schedule"
)

// RunReference is the straightforward O(n^2 * k^2) implementation of LIST:
// every iteration rescans all unscheduled tasks, and each candidate start
// re-derives capacity from the full list of placed items. It is retained as
// the differential-testing oracle for Run (both must place every task at
// the same start time) and as the benchmark baseline the profile scheduler
// is measured against; production paths should call Run.
func RunReference(in *allot.Instance, alloc []int) (*schedule.Schedule, error) {
	if err := validate(in, alloc); err != nil {
		return nil, err
	}
	n := in.G.N()
	s := &schedule.Schedule{M: in.M, Items: make([]schedule.Item, n)}
	scheduled := make([]bool, n)
	nsched := 0
	// placed tracks the items already committed, for capacity queries.
	var placed []schedule.Item

	for nsched < n {
		// READY = tasks whose predecessors are all scheduled.
		best, bestStart := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if scheduled[j] {
				continue
			}
			ready := true
			readyAt := 0.0
			for _, p := range in.G.Preds(j) {
				if !scheduled[p] {
					ready = false
					break
				}
				if end := s.Items[p].End(); end > readyAt {
					readyAt = end
				}
			}
			if !ready {
				continue
			}
			dur := in.Tasks[j].Time(alloc[j])
			start := earliestFit(placed, in.M, readyAt, dur, alloc[j])
			if start < bestStart {
				best, bestStart = j, start
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("listsched: no ready task (cycle?)")
		}
		it := schedule.Item{
			Task:     best,
			Start:    bestStart,
			Duration: in.Tasks[best].Time(alloc[best]),
			Alloc:    alloc[best],
		}
		s.Items[best] = it
		placed = append(placed, it)
		scheduled[best] = true
		nsched++
	}
	return s, nil
}

// earliestFit returns the earliest time t >= readyAt such that need
// processors are simultaneously free throughout [t, t+dur), given the
// already placed items on m processors. Candidate start times are readyAt
// and the completion times of placed items (shifting any start earlier
// would cross one of these events).
func earliestFit(placed []schedule.Item, m int, readyAt, dur float64, need int) float64 {
	cands := []float64{readyAt}
	for _, it := range placed {
		if e := it.End(); e > readyAt {
			cands = append(cands, e)
		}
	}
	sort.Float64s(cands)
	for _, t := range cands {
		if fits(placed, m, t, dur, need) {
			return t
		}
	}
	// Unreachable: after the last completion the machine is empty.
	return cands[len(cands)-1]
}

// fits reports whether need processors are free on [t, t+dur) for machine
// size m given the placed items.
func fits(placed []schedule.Item, m int, t, dur float64, need int) bool {
	const eps = 1e-9
	// The busy level within [t, t+dur) changes only at item starts/ends;
	// checking at t and at every event inside the window suffices.
	points := []float64{t}
	for _, it := range placed {
		if it.Start > t+eps && it.Start < t+dur-eps {
			points = append(points, it.Start)
		}
	}
	for _, pt := range points {
		busy := 0
		for _, it := range placed {
			if it.Start <= pt+eps && it.End() > pt+eps {
				busy += it.Alloc
			}
		}
		if busy+need > m {
			return false
		}
	}
	return true
}
