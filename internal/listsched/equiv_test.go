package listsched

import (
	"fmt"
	"math/rand"
	"testing"

	"malsched/internal/dag"
	"malsched/internal/gen"
	"malsched/internal/schedule"
	"malsched/internal/sim"
)

// buildDAG constructs one graph of the named family, the same families the
// phase-2 scenarios cover.
func buildDAG(family string, n int, p float64, rng *rand.Rand) *dag.DAG {
	switch family {
	case "chain":
		return gen.Chain(n)
	case "independent":
		return gen.Independent(n)
	case "forkjoin":
		return gen.ForkJoin(n - 2)
	case "layered":
		w := 4
		return gen.Layered((n+w-1)/w, w, 3, rng)
	case "outtree":
		return gen.OutTree(n, rng)
	case "erdos":
		return gen.ErdosDAG(n, p, rng)
	default:
		panic("unknown dag family " + family)
	}
}

var equivFamilies = []string{"chain", "independent", "forkjoin", "layered", "outtree", "erdos"}

// sameSchedule reports the first difference between two schedules; the
// profile scheduler and the reference must agree bit for bit.
func sameSchedule(t *testing.T, a, b *schedule.Schedule) {
	t.Helper()
	if a.M != b.M || len(a.Items) != len(b.Items) {
		t.Fatalf("shape differs: m=%d/%d items=%d/%d", a.M, b.M, len(a.Items), len(b.Items))
	}
	for j := range a.Items {
		if a.Items[j] != b.Items[j] {
			t.Fatalf("task %d differs: profile %+v, reference %+v", j, a.Items[j], b.Items[j])
		}
	}
}

// TestRunMatchesReference is the differential test for the profile
// scheduler: across DAG families, machine sizes and allotments, Run must
// place every task exactly where the retained seed implementation does.
func TestRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ws := NewWorkspace() // shared across runs: reuse must not leak state
	for trial := 0; trial < 60; trial++ {
		family := equivFamilies[trial%len(equivFamilies)]
		n := 3 + rng.Intn(40)
		m := 1 + rng.Intn(16)
		g := buildDAG(family, n, 0.1+0.3*rng.Float64(), rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		alloc := make([]int, g.N())
		for j := range alloc {
			alloc[j] = 1 + rng.Intn(m)
		}
		t.Run(fmt.Sprintf("%s_n%d_m%d", family, g.N(), m), func(t *testing.T) {
			want, err := RunReference(in, alloc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunWith(in, alloc, ws)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, got, want)
		})
	}
}

// TestRunMatchesReferenceLarger spot-checks the equivalence at sizes where
// the reference is still tolerable but the ready sets get wide.
func TestRunMatchesReferenceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("reference implementation is quadratic")
	}
	rng := rand.New(rand.NewSource(78))
	for _, cfg := range []struct {
		family string
		n, m   int
		p      float64
	}{
		{"layered", 240, 32, 0},
		{"erdos", 200, 64, 0.02},
		{"independent", 300, 24, 0},
	} {
		g := buildDAG(cfg.family, cfg.n, cfg.p, rng)
		in := gen.Instance(g, gen.FamilyMixed, cfg.m, rng)
		alloc := make([]int, g.N())
		for j := range alloc {
			alloc[j] = 1 + rng.Intn(cfg.m)
		}
		want, err := RunReference(in, alloc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(in, alloc)
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, got, want)
	}
}

// TestRunPhase2Invariants is the randomized phase-2 property test: for
// seeded instances across DAG families, the scheduler's output must pass
// both feasibility oracles — the interval-based Verify and the
// discrete-event Replay that binds concrete processor IDs.
func TestRunPhase2Invariants(t *testing.T) {
	cases := []struct {
		family string
		n, m   int
		p      float64
		seed   int64
	}{
		{"chain", 50, 8, 0, 1},
		{"independent", 120, 16, 0, 2},
		{"forkjoin", 80, 12, 0, 3},
		{"layered", 200, 32, 0, 4},
		{"layered", 1000, 64, 0, 5},
		{"outtree", 300, 24, 0, 6},
		{"erdos", 150, 16, 0.05, 7},
		{"erdos", 600, 128, 0.01, 8},
	}
	if !testing.Short() {
		cases = append(cases,
			struct {
				family string
				n, m   int
				p      float64
				seed   int64
			}{"layered", 4000, 256, 0, 9},
		)
	}
	ws := NewWorkspace()
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_n%d_m%d", tc.family, tc.n, tc.m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			g := buildDAG(tc.family, tc.n, tc.p, rng)
			in := gen.Instance(g, gen.FamilyMixed, tc.m, rng)
			alloc := make([]int, g.N())
			for j := range alloc {
				alloc[j] = 1 + rng.Intn(tc.m)
			}
			s, err := RunWith(in, alloc, ws)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(in.G); err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Replay(s)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Makespan > s.Makespan()+1e-9 {
				t.Errorf("replay makespan %v exceeds schedule makespan %v", rep.Makespan, s.Makespan())
			}
		})
	}
}

// TestWorkspaceReuseMatchesFresh runs the same instance repeatedly through
// one workspace interleaved with unrelated instances; results must be
// identical to fresh runs every time.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ws := NewWorkspace()
	g := gen.ErdosDAG(30, 0.2, rng)
	in := gen.Instance(g, gen.FamilyMixed, 8, rng)
	alloc := make([]int, 30)
	for j := range alloc {
		alloc[j] = 1 + rng.Intn(8)
	}
	fresh, err := Run(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	other := gen.Instance(gen.Layered(10, 5, 2, rng), gen.FamilyPowerLaw, 16, rng)
	otherAlloc := make([]int, other.G.N())
	for j := range otherAlloc {
		otherAlloc[j] = 1 + rng.Intn(16)
	}
	for round := 0; round < 3; round++ {
		warm, err := RunWith(in, alloc, ws)
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, warm, fresh)
		if _, err := RunWith(other, otherAlloc, ws); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunMatchesReferenceSaturated pins the adversarial shape for the lazy
// ready-heap (every task allotted the whole machine, every commit
// invalidating the entire queue) to the reference implementation.
func TestRunMatchesReferenceSaturated(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	in := gen.Instance(gen.Independent(120), gen.FamilyMixed, 8, rng)
	alloc := make([]int, 120)
	for j := range alloc {
		alloc[j] = 8
	}
	want, err := RunReference(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(in, alloc)
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, got, want)
}
