package listsched

import (
	"fmt"
	"math/rand"
	"testing"

	"malsched/internal/gen"
)

// TestRunMatchesLazyHeap is the second differential tier: RunReference is
// quadratic in placed items and unusable past a few hundred tasks, so the
// retained lazy-heap scheduler — itself pinned byte-identical to the
// reference at small n — serves as the oracle at the sizes where the bucket
// queue's wholesale advances and exactness fast paths actually engage.
func TestRunMatchesLazyHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ws := NewWorkspace() // shared: reuse must not leak state between shapes
	for trial := 0; trial < 36; trial++ {
		family := equivFamilies[trial%len(equivFamilies)]
		n := 200 + rng.Intn(1800)
		if testing.Short() && n > 600 {
			n = 600
		}
		m := 4 + rng.Intn(125)
		g := buildDAG(family, n, 0.002+0.02*rng.Float64(), rng)
		in := gen.Instance(g, gen.FamilyMixed, m, rng)
		alloc := make([]int, g.N())
		for j := range alloc {
			alloc[j] = 1 + rng.Intn(m)
		}
		t.Run(fmt.Sprintf("%s_n%d_m%d", family, g.N(), m), func(t *testing.T) {
			want, err := RunLazyHeap(in, alloc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunWith(in, alloc, ws)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, got, want)
		})
	}
}

// TestRunMatchesLazyHeapSaturated drives the adversarial independent_full
// shape (every task allotted the whole machine) at a size where the lazy
// heap's global invalidation is already expensive but still tractable, plus
// near-saturated variants where tasks pack two abreast — shapes that
// exercise the wholesale bucket advance on every commit.
func TestRunMatchesLazyHeapSaturated(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ws := NewWorkspace()
	for _, cfg := range []struct {
		name  string
		n, m  int
		aFrac float64 // allotment as a fraction of m
	}{
		{"full_n1000_m16", 1000, 16, 1.0},
		{"half_n1000_m16", 1000, 16, 0.5},
		{"full_n2000_m64", 2000, 64, 1.0},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			if testing.Short() && cfg.n > 1000 {
				t.Skip("short mode")
			}
			in := gen.Instance(gen.Independent(cfg.n), gen.FamilyMixed, cfg.m, rng)
			alloc := make([]int, cfg.n)
			for j := range alloc {
				alloc[j] = max(1, int(float64(cfg.m)*cfg.aFrac))
			}
			want, err := RunLazyHeap(in, alloc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunWith(in, alloc, ws)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, got, want)
		})
	}
}
